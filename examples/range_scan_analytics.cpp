// Scenario: analytics range scans over a store that is simultaneously
// absorbing a write burst (the paper's §V-F / Table V setting).
//
// Shows (1) the hybrid iterator returning a correct, ordered view spanning
// Main-LSM and Dev-LSM mid-burst, and (2) how an eager rollback restores
// scan performance by moving data back behind the host's caches.
//
//   $ build/examples/range_scan_analytics
#include <cstdio>
#include <memory>

#include "core/kvaccel_db.h"
#include "fs/simfs.h"
#include "harness/presets.h"
#include "harness/workload.h"
#include "sim/cpu_pool.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

using namespace kvaccel;

namespace {

// One "analytics query": scan `span` consecutive keys from `start`.
double TimedScan(sim::SimEnv* env, core::KvaccelDB* db, uint64_t start,
                 int span, int* rows_out) {
  Nanos t0 = env->Now();
  auto it = db->NewIterator({});
  int rows = 0;
  for (it->Seek(harness::MakeKey(start, 8)); it->Valid() && rows < span;
       it->Next()) {
    rows++;
  }
  *rows_out = rows;
  return ToMicros(env->Now() - t0);
}

}  // namespace

int main() {
  const double kScale = 0.125;
  sim::SimEnv env;
  ssd::HybridSsd ssd(&env, harness::PaperSsdConfig(kScale));
  fs::SimFs fs(&ssd, 0);
  sim::CpuPool cpu(&env, "host", 8);
  lsm::DbEnv denv{&env, &ssd, &fs, &cpu};

  env.Spawn("analytics", [&] {
    std::unique_ptr<core::KvaccelDB> db;
    core::KvaccelOptions kv_opts =
        harness::PaperKvaccelOptions(core::RollbackScheme::kDisabled, kScale);
    if (!core::KvaccelDB::Open(harness::PaperDbOptions(2, false, kScale),
                               kv_opts, denv, &db)
             .ok()) {
      return;
    }

    // Base dataset: 150k sequential rows.
    for (uint64_t i = 0; i < 150000; i++) {
      db->Put({}, harness::MakeKey(i, 8), Value::Synthetic(i, 4096));
    }
    db->WaitForCompactionIdle();

    // A write burst drives the store into stalls; part of the new rows land
    // in the Dev-LSM via redirection.
    for (uint64_t i = 150000; i < 250000; i++) {
      db->Put({}, harness::MakeKey(i, 8), Value::Synthetic(i, 4096));
    }
    printf("rows redirected to device during burst: %llu\n",
           static_cast<unsigned long long>(
               db->kv_stats().redirected_writes));

    // Scan while data is split across the interfaces.
    int rows = 0;
    double us_split = TimedScan(&env, db.get(), 140000, 5000, &rows);
    printf("scan mid-burst (hybrid view): %d rows in %.0f us (%.0f "
           "rows/ms)\n",
           rows, us_split, rows / (us_split / 1000.0));

    // Correctness: the hybrid iterator must see every row exactly once.
    auto it = db->NewIterator({});
    uint64_t count = 0, expect = 0;
    bool ordered = true;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      if (it->key() != Slice(harness::MakeKey(expect, 8))) ordered = false;
      expect++;
      count++;
    }
    printf("full scan: %llu rows (expected 250000), ordered=%s\n",
           static_cast<unsigned long long>(count), ordered ? "yes" : "NO");

    // Roll back, then rescan: now everything is served by Main-LSM with its
    // block cache — the Table V bottleneck is gone.
    db->WaitForCompactionIdle();
    db->RollbackNow();
    double us_merged = TimedScan(&env, db.get(), 140000, 5000, &rows);
    printf("scan after rollback:          %d rows in %.0f us (%.0f "
           "rows/ms)\n",
           rows, us_merged, rows / (us_merged / 1000.0));
    printf("%s\n", us_merged <= us_split
                       ? "rollback restored scan performance."
                       : "(scan was already main-resident)");
    db->Close();
  });

  env.Run();
  return 0;
}
