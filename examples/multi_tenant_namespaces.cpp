// Scenario: multi-tenancy on one hybrid SSD (paper §V-D).
//
// The disaggregated NAND space supports multiple NVMe namespaces, each with
// its own block sub-region (file system + Main-LSM) and KV sub-region
// (Dev-LSM). Two tenants run isolated KVACCEL stacks on ONE device and only
// contend on the shared physical resources (channels, PCIe link, firmware
// core) — never on each other's data or capacity.
//
//   $ build/examples/multi_tenant_namespaces
#include <cstdio>
#include <memory>

#include "core/kvaccel_db.h"
#include "fs/simfs.h"
#include "harness/presets.h"
#include "sim/cpu_pool.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

using namespace kvaccel;

namespace {

struct Tenant {
  int nsid;
  std::unique_ptr<fs::SimFs> fs;
  std::unique_ptr<core::KvaccelDB> db;
  uint64_t writes = 0;
  Nanos finished_at = 0;
};

}  // namespace

int main() {
  const double kScale = 0.125;
  sim::SimEnv env;
  ssd::SsdConfig ssd_config = harness::PaperSsdConfig(kScale);
  ssd_config.num_namespaces = 2;  // two isolated tenants
  ssd::HybridSsd ssd(&env, ssd_config);
  sim::CpuPool host_cpu(&env, "host", 8);

  Tenant tenants[2];
  for (int t = 0; t < 2; t++) {
    tenants[t].nsid = t;
    tenants[t].fs = std::make_unique<fs::SimFs>(&ssd, t);
  }

  // Each tenant ingests its own keyspace concurrently.
  std::vector<sim::SimEnv::Thread*> threads;
  for (int t = 0; t < 2; t++) {
    threads.push_back(env.Spawn("tenant-" + std::to_string(t), [&, t] {
      Tenant& me = tenants[t];
      lsm::DbEnv denv{&env, &ssd, me.fs.get(), &host_cpu};
      lsm::DbOptions db_opts = harness::PaperDbOptions(2, false, kScale);
      core::KvaccelOptions kv_opts =
          harness::PaperKvaccelOptions(core::RollbackScheme::kEager, kScale);
      // NOTE: each tenant's Dev-LSM lives in its own namespace quota.
      if (!core::KvaccelDB::Open(db_opts, kv_opts, denv, &me.db).ok()) return;

      for (int i = 0; i < 60000; i++) {
        char key[32];
        snprintf(key, sizeof(key), "t%d-%010d", t, i);
        if (!me.db->Put({}, key, Value::Synthetic(i, 4096)).ok()) break;
        me.writes++;
      }
      me.finished_at = env.Now();
    }));
  }
  env.Spawn("closer", [&] {
    for (auto* th : threads) env.Join(th);
    // Cross-tenant isolation check before closing: tenant 0 must not see
    // tenant 1's keys and vice versa.
    Value v;
    bool isolated =
        tenants[0].db->Get({}, "t1-0000000001", &v).IsNotFound() &&
        tenants[1].db->Get({}, "t0-0000000001", &v).IsNotFound() &&
        tenants[0].db->Get({}, "t0-0000000001", &v).ok() &&
        tenants[1].db->Get({}, "t1-0000000001", &v).ok();
    printf("tenant isolation: %s\n", isolated ? "OK" : "VIOLATED");
    for (int t = 0; t < 2; t++) {
      printf("tenant %d: %llu writes in %.1f s, redirected=%llu, "
             "kv-region pages used=%llu\n",
             t, static_cast<unsigned long long>(tenants[t].writes),
             ToSecs(tenants[t].finished_at),
             static_cast<unsigned long long>(
                 tenants[t].db->kv_stats().redirected_writes),
             static_cast<unsigned long long>(ssd.KvUsedPages(t)));
      tenants[t].db->Close();
    }
    printf("shared device totals: NAND written %.1f MB, PCIe moved %.1f MB\n",
           ssd.nand().bytes_written() / 1e6, ssd.pcie().total_bytes() / 1e6);
  });

  env.Run();
  return 0;
}
