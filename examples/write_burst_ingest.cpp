// Scenario: bursty ingestion (the paper's motivating write-intensive
// workload — think log/telemetry ingestion that arrives in waves).
//
// Runs the same burst pattern against a plain RocksDB-equivalent and against
// KVACCEL on the same device model, then compares per-burst latency: the
// baseline's bursts collide with compaction (write stalls); KVACCEL bypasses
// them through the device's KV interface.
//
//   $ build/examples/write_burst_ingest
#include <algorithm>
#include <cstdio>

#include "common/random.h"
#include <memory>
#include <vector>

#include "core/kvaccel_db.h"
#include "fs/simfs.h"
#include "harness/presets.h"
#include "harness/workload.h"
#include "sim/cpu_pool.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

using namespace kvaccel;

namespace {

struct BurstReport {
  std::vector<double> burst_seconds;  // wall time of each burst
  double total_seconds = 0;
  uint64_t stalls = 0;
  uint64_t redirected = 0;
};

// 8 bursts of 100k x 4 KB writes (~400 MB each) with short idle gaps.
// Keys are random (telemetry keyed by device/session id), which is what
// makes compaction non-trivial and stalls bite.
template <typename PutFn>
void RunBursts(sim::SimEnv* env, PutFn put, BurstReport* report) {
  Random64 rng(4242);
  uint64_t seed = 0;
  for (int burst = 0; burst < 8; burst++) {
    Nanos t0 = env->Now();
    for (int i = 0; i < 100000; i++) {
      char kb[32];
      snprintf(kb, sizeof(kb), "evt%012llu",
               static_cast<unsigned long long>(rng.Uniform(1ull << 40)));
      if (!put(Slice(kb), Value::Synthetic(seed++, 4096)).ok()) return;
    }
    report->burst_seconds.push_back(ToSecs(env->Now() - t0));
    env->SleepFor(FromSecs(1));  // quiet period between waves
  }
  report->total_seconds = ToSecs(env->Now());
}

}  // namespace

int main() {
  const double kScale = 0.125;
  BurstReport baseline, kvaccel;

  {
    sim::SimEnv env;
    ssd::HybridSsd ssd(&env, harness::PaperSsdConfig(kScale));
    fs::SimFs fs(&ssd, 0);
    sim::CpuPool cpu(&env, "host", 8);
    lsm::DbEnv denv{&env, &ssd, &fs, &cpu};
    env.Spawn("baseline", [&] {
      std::unique_ptr<lsm::DB> db;
      if (!lsm::DB::Open(harness::PaperDbOptions(2, true, kScale), denv, &db)
               .ok()) {
        return;
      }
      RunBursts(&env, [&](const Slice& k, const Value& v) {
        return db->Put({}, k, v);
      }, &baseline);
      baseline.stalls = db->stats().stall_events;
      db->Close();
    });
    env.Run();
  }
  {
    sim::SimEnv env;
    ssd::HybridSsd ssd(&env, harness::PaperSsdConfig(kScale));
    fs::SimFs fs(&ssd, 0);
    sim::CpuPool cpu(&env, "host", 8);
    lsm::DbEnv denv{&env, &ssd, &fs, &cpu};
    env.Spawn("kvaccel", [&] {
      std::unique_ptr<core::KvaccelDB> db;
      if (!core::KvaccelDB::Open(
               harness::PaperDbOptions(2, false, kScale),
               harness::PaperKvaccelOptions(core::RollbackScheme::kEager,
                                            kScale),
               denv, &db)
               .ok()) {
        return;
      }
      RunBursts(&env, [&](const Slice& k, const Value& v) {
        return db->Put({}, k, v);
      }, &kvaccel);
      kvaccel.redirected = db->kv_stats().redirected_writes;
      db->Close();
    });
    env.Run();
  }

  printf("burst completion times (s):\n");
  printf("%-8s %10s %10s\n", "burst", "RocksDB", "KVAccel");
  for (size_t i = 0; i < baseline.burst_seconds.size(); i++) {
    printf("%-8zu %10.2f %10.2f\n", i, baseline.burst_seconds[i],
           i < kvaccel.burst_seconds.size() ? kvaccel.burst_seconds[i] : -1);
  }
  double base_worst = *std::max_element(baseline.burst_seconds.begin(),
                                        baseline.burst_seconds.end());
  double kv_worst = *std::max_element(kvaccel.burst_seconds.begin(),
                                      kvaccel.burst_seconds.end());
  printf("\nworst burst: RocksDB %.2f s vs KVAccel %.2f s\n", base_worst,
         kv_worst);
  printf("baseline stall events: %llu; kvaccel redirected writes: %llu\n",
         static_cast<unsigned long long>(baseline.stalls),
         static_cast<unsigned long long>(kvaccel.redirected));
  printf("%s\n", kv_worst < base_worst
                     ? "KVACCEL absorbed the bursts the baseline stalled on."
                     : "(no advantage at this configuration)");
  return 0;
}
