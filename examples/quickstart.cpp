// Quickstart: open a KVACCEL database on a simulated hybrid dual-interface
// SSD, write/read/scan some data, and inspect what the framework did.
//
//   $ build/examples/quickstart
//
// Everything runs inside the deterministic simulation: you build the world
// (SSD, file system, host CPU), spawn your application logic as a simulated
// thread, and call SimEnv::Run().
#include <cstdio>
#include <memory>

#include "core/kvaccel_db.h"
#include "fs/simfs.h"
#include "harness/presets.h"
#include "sim/cpu_pool.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

using namespace kvaccel;

int main() {
  // 1. Build the simulated world: a Cosmos+-like hybrid SSD (block + KV
  //    interfaces on one device), an ext4-like file system on the block
  //    region, and an 8-core host.
  sim::SimEnv env;
  ssd::HybridSsd ssd(&env, harness::PaperSsdConfig(/*scale=*/0.125));
  fs::SimFs fs(&ssd, /*nsid=*/0);
  sim::CpuPool host_cpu(&env, "host", 8);
  lsm::DbEnv denv{&env, &ssd, &fs, &host_cpu};

  env.Spawn("app", [&] {
    // 2. Open KVACCEL: a RocksDB-style Main-LSM plus the in-device Dev-LSM
    //    write buffer, glued by detector/controller/metadata/rollback.
    lsm::DbOptions db_opts =
        harness::PaperDbOptions(/*compaction_threads=*/2,
                                /*enable_slowdown=*/false, /*scale=*/0.125);
    core::KvaccelOptions kv_opts =
        harness::PaperKvaccelOptions(core::RollbackScheme::kEager, 0.125);
    std::unique_ptr<core::KvaccelDB> db;
    Status s = core::KvaccelDB::Open(db_opts, kv_opts, denv, &db);
    if (!s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return;
    }

    // 3. Writes: small inline values work like any KV store.
    db->Put({}, "language", Value::Inline("C++20"));
    db->Put({}, "paper", Value::Inline("KVACCEL (IPDPS'25)"));
    db->Put({}, "device", Value::Inline("hybrid dual-interface SSD"));

    // 4. Reads.
    Value v;
    if (db->Get({}, "paper", &v).ok()) {
      printf("paper    = %s\n", v.Materialize().c_str());
    }
    db->Delete({}, "language");
    printf("language = %s\n",
           db->Get({}, "language", &v).IsNotFound() ? "<deleted>" : "?");

    // 5. Bulk load with synthetic 4 KB values (the benchmark trick: full
    //    device accounting, no 4 KB of real bytes per op).
    for (uint64_t i = 0; i < 20000; i++) {
      char key[32];
      snprintf(key, sizeof(key), "bulk%08llu",
               static_cast<unsigned long long>(i));
      db->Put({}, key, Value::Synthetic(/*seed=*/i, /*size=*/4096));
    }

    // 6. Range scan across BOTH interfaces (hybrid iterator, paper Fig 10).
    auto it = db->NewIterator({});
    int n = 0;
    for (it->Seek("bulk00010000"); it->Valid() && n < 5; it->Next(), n++) {
      Value val = Value::DecodeOrDie(it->value());
      printf("scan[%d]  = %s (%llu B)\n", n, it->key().ToString().c_str(),
             static_cast<unsigned long long>(val.logical_size()));
    }

    // 7. What happened under the hood?
    const core::KvaccelStats& ks = db->kv_stats();
    printf("\n-- kvaccel internals --\n");
    printf("direct writes      : %llu\n",
           static_cast<unsigned long long>(ks.direct_writes));
    printf("redirected writes  : %llu (served by the KV interface during "
           "stalls)\n",
           static_cast<unsigned long long>(ks.redirected_writes));
    printf("detector checks    : %llu\n",
           static_cast<unsigned long long>(ks.detector_checks));
    printf("rollbacks          : %llu (%llu pairs returned to Main-LSM)\n",
           static_cast<unsigned long long>(ks.rollbacks),
           static_cast<unsigned long long>(ks.rollback_entries));
    printf("virtual time       : %.2f s\n", ToSecs(env.Now()));
    printf("device NAND written: %.1f MB\n",
           ssd.nand().bytes_written() / 1e6);
    db->Close();
  });

  env.Run();
  printf("done.\n");
  return 0;
}
