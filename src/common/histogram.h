// Latency histogram with exponentially spaced buckets; provides the P50/P99/
// P99.9 percentiles the paper's Figures 3 and 12 report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kvaccel {

class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t Count() const { return count_; }
  uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  uint64_t Max() const { return max_; }
  double Average() const;
  // p in (0, 100]; linear interpolation within the bucket.
  double Percentile(double p) const;
  std::string ToString() const;

 private:
  friend class HistogramTestPeer;  // truncates layouts to test Merge folding

  // Exponentially spaced bucket upper bounds (ratio ~1.1), 1 .. ~1e13.
  static const std::vector<uint64_t>& BucketLimits();
  static size_t BucketFor(uint64_t value);

  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
  std::vector<uint64_t> buckets_;
};

}  // namespace kvaccel
