// Status: a lightweight, copyable result type used across the whole library
// for operations that can fail without an exceptional control path (I/O,
// lookups, decoding). Mirrors the RocksDB/LevelDB convention the paper's
// host stack is written against.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace kvaccel {

class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,
    kCorruption,
    kNotSupported,
    kInvalidArgument,
    kIOError,
    kBusy,
    kTryAgain,
    kAborted,
    kNoSpace,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = {}) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = {}) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg = {}) {
    return Status(Code::kNotSupported, msg);
  }
  static Status InvalidArgument(std::string_view msg = {}) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg = {}) {
    return Status(Code::kIOError, msg);
  }
  static Status Busy(std::string_view msg = {}) {
    return Status(Code::kBusy, msg);
  }
  static Status TryAgain(std::string_view msg = {}) {
    return Status(Code::kTryAgain, msg);
  }
  static Status Aborted(std::string_view msg = {}) {
    return Status(Code::kAborted, msg);
  }
  static Status NoSpace(std::string_view msg = {}) {
    return Status(Code::kNoSpace, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsTryAgain() const { return code_ == Code::kTryAgain; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }

  Code code() const { return code_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = CodeName(code_);
    if (!msg_.empty()) {
      out += ": ";
      out += msg_;
    }
    return out;
  }

  const std::string& message() const { return msg_; }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kNotFound: return "NotFound";
      case Code::kCorruption: return "Corruption";
      case Code::kNotSupported: return "NotSupported";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kIOError: return "IOError";
      case Code::kBusy: return "Busy";
      case Code::kTryAgain: return "TryAgain";
      case Code::kAborted: return "Aborted";
      case Code::kNoSpace: return "NoSpace";
    }
    return "Unknown";
  }

  Code code_ = Code::kOk;
  std::string msg_;
};

}  // namespace kvaccel
