#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

namespace kvaccel {

const std::vector<uint64_t>& Histogram::BucketLimits() {
  static const std::vector<uint64_t> limits = [] {
    std::vector<uint64_t> v;
    uint64_t limit = 1;
    while (limit < 10'000'000'000'000ull) {
      v.push_back(limit);
      uint64_t next = limit + std::max<uint64_t>(1, limit / 10);
      limit = next;
    }
    v.push_back(UINT64_MAX);
    return v;
  }();
  return limits;
}

size_t Histogram::BucketFor(uint64_t value) {
  const auto& limits = BucketLimits();
  // First bucket whose upper bound is >= value.
  auto it = std::lower_bound(limits.begin(), limits.end(), value);
  return static_cast<size_t>(it - limits.begin());
}

Histogram::Histogram()
    : count_(0), sum_(0), min_(UINT64_MAX), max_(0),
      buckets_(BucketLimits().size(), 0) {}

void Histogram::Add(uint64_t value) {
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  buckets_[BucketFor(value)]++;
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  // Layouts always match for histograms built here (one static bucket
  // table); a mismatched layout (e.g. deserialized from a different build)
  // must not index out of range: merge the shared prefix and fold the
  // excess into the overflow bucket, preserving count/sum/min/max exactly
  // and percentiles up to bucket resolution.
  size_t shared = std::min(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < shared; i++) {
    buckets_[i] += other.buckets_[i];
  }
  for (size_t i = shared; i < other.buckets_.size(); i++) {
    buckets_.back() += other.buckets_[i];
  }
}

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::Average() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const auto& limits = BucketLimits();
  double threshold = static_cast<double>(count_) * (p / 100.0);
  double cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    cumulative += static_cast<double>(buckets_[b]);
    if (cumulative >= threshold) {
      uint64_t lo = (b == 0) ? 0 : limits[b - 1];
      uint64_t hi = limits[b];
      if (hi == UINT64_MAX) hi = max_;
      // Interpolate within the bucket.
      double left = cumulative - static_cast<double>(buckets_[b]);
      double frac = buckets_[b] == 0
                        ? 1.0
                        : (threshold - left) / static_cast<double>(buckets_[b]);
      double r = static_cast<double>(lo) +
                 frac * static_cast<double>(hi - lo);
      return std::min(r, static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu avg=%.2f min=%llu max=%llu p50=%.1f p99=%.1f "
           "p99.9=%.1f",
           static_cast<unsigned long long>(count_), Average(),
           static_cast<unsigned long long>(Min()),
           static_cast<unsigned long long>(max_), Percentile(50),
           Percentile(99), Percentile(99.9));
  return buf;
}

}  // namespace kvaccel
