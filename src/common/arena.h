// Arena: bump allocator backing memtable skiplists. Nodes allocated from an
// arena are freed wholesale when the memtable is dropped, which is both the
// RocksDB idiom and the reason memtable size accounting (ApproximateMemoryUsage)
// is O(1).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace kvaccel {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes) {
    assert(bytes > 0);
    if (bytes <= alloc_bytes_remaining_) {
      char* result = alloc_ptr_;
      alloc_ptr_ += bytes;
      alloc_bytes_remaining_ -= bytes;
      return result;
    }
    return AllocateFallback(bytes);
  }

  char* AllocateAligned(size_t bytes) {
    constexpr size_t kAlign = alignof(std::max_align_t);
    size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (kAlign - 1);
    size_t slop = (current_mod == 0 ? 0 : kAlign - current_mod);
    size_t needed = bytes + slop;
    if (needed <= alloc_bytes_remaining_) {
      char* result = alloc_ptr_ + slop;
      alloc_ptr_ += needed;
      alloc_bytes_remaining_ -= needed;
      return result;
    }
    // AllocateFallback always returns max_align_t-aligned memory.
    return AllocateFallback(bytes);
  }

  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kBlockSize = 1 << 20;  // 1 MiB

  char* AllocateFallback(size_t bytes) {
    if (bytes > kBlockSize / 4) {
      // Large object: dedicated allocation so we don't waste block space.
      return AllocateNewBlock(bytes);
    }
    alloc_ptr_ = AllocateNewBlock(kBlockSize);
    alloc_bytes_remaining_ = kBlockSize;
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }

  char* AllocateNewBlock(size_t block_bytes) {
    blocks_.push_back(std::make_unique<char[]>(block_bytes));
    memory_usage_.fetch_add(block_bytes + sizeof(blocks_.back()),
                            std::memory_order_relaxed);
    return blocks_.back().get();
  }

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

}  // namespace kvaccel
