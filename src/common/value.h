// Value: the unit stored against a key. Two representations share one API:
//
//  - Inline:    real bytes, used by the public API, tests and examples.
//  - Synthetic: a (seed, logical_size) descriptor that regenerates its bytes
//               deterministically on demand. Used by the benchmark harness to
//               model the paper's 4 KB values without moving/storing 4 KB per
//               op. All device/PCIe/CPU *accounting* uses logical_size(), so
//               every bandwidth and stall dynamic matches a real-bytes run.
//
// The distinction is invisible to the LSM layers: they store the compact
// encoding and account logical bytes. DESIGN.md §1 documents the substitution.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace kvaccel {

class Value {
 public:
  Value() = default;

  static Value Inline(std::string bytes) {
    Value v;
    v.kind_ = Kind::kInline;
    v.bytes_ = std::move(bytes);
    return v;
  }

  static Value InlineFrom(const Slice& bytes) {
    return Inline(bytes.ToString());
  }

  static Value Synthetic(uint64_t seed, uint32_t logical_size) {
    Value v;
    v.kind_ = Kind::kSynthetic;
    v.seed_ = seed;
    v.synthetic_size_ = logical_size;
    return v;
  }

  bool is_inline() const { return kind_ == Kind::kInline; }
  bool is_synthetic() const { return kind_ == Kind::kSynthetic; }

  // Bytes this value represents on the wire / on NAND (drives all bandwidth
  // and capacity accounting).
  uint64_t logical_size() const {
    return is_inline() ? bytes_.size() : synthetic_size_;
  }

  uint64_t seed() const { return seed_; }

  // Inline bytes; only valid for inline values.
  const std::string& inline_bytes() const { return bytes_; }

  // Regenerates the full byte payload (identity for inline values).
  std::string Materialize() const;

  // Compact on-disk / in-memtable encoding.
  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, Value* out);
  static Value DecodeOrDie(Slice encoded);

  bool operator==(const Value& o) const {
    if (kind_ != o.kind_) return Materialize() == o.Materialize();
    if (is_inline()) return bytes_ == o.bytes_;
    return seed_ == o.seed_ && synthetic_size_ == o.synthetic_size_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

 private:
  enum class Kind : uint8_t { kInline = 0, kSynthetic = 1 };

  Kind kind_ = Kind::kInline;
  std::string bytes_;
  uint64_t seed_ = 0;
  uint32_t synthetic_size_ = 0;
};

}  // namespace kvaccel
