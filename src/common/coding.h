// Little-endian fixed-width and varint encoders/decoders used by the WAL,
// SST, manifest and NVMe-KV payload formats.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace kvaccel {

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

void EncodeFixed16(char* dst, uint16_t value);
void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);

uint16_t DecodeFixed16(const char* ptr);
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

// Each GetX parses from the front of *input, advancing it. Returns false on
// malformed/short input (input is left in an unspecified advanced state).
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

// Low-level varint parsing over [p, limit); returns nullptr on error.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* v);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* v);

int VarintLength(uint64_t v);

}  // namespace kvaccel
