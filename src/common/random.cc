#include "common/random.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>

namespace kvaccel {

namespace {

// Exact-sum horizon for zeta. Beyond this the integral tail takes over; the
// cache below makes the exact region cheap to share, so it can be generous.
constexpr uint64_t kZetaExactLimit = uint64_t{1} << 20;

// Per-theta checkpoints of exact prefix sums: theta (bit pattern) -> map of
// n -> sum(i=1..n) i^-theta. A lookup extends the largest checkpoint <= n
// incrementally, so M generators over the same keyspace pay the O(n) sum
// once, and a grown keyspace pays only the delta. Extending left-to-right
// from a checkpoint adds terms in the same order as a fresh sum, so cached
// and uncached results are bit-identical.
std::mutex g_zeta_mu;
std::map<uint64_t, std::map<uint64_t, double>>& ZetaCheckpoints() {
  static auto* m = new std::map<uint64_t, std::map<uint64_t, double>>();
  return *m;
}
std::atomic<uint64_t> g_zeta_terms{0};

}  // namespace

uint64_t ZipfianGenerator::ZetaTermsComputed() {
  return g_zeta_terms.load(std::memory_order_relaxed);
}

double ZipfianGenerator::Pow(double a, double b) { return std::pow(a, b); }

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  const uint64_t exact_n = n < kZetaExactLimit ? n : kZetaExactLimit;
  uint64_t theta_key = 0;
  static_assert(sizeof(theta_key) == sizeof(theta), "double must be 64-bit");
  std::memcpy(&theta_key, &theta, sizeof(theta_key));

  double sum = 0;
  uint64_t from = 1;
  {
    std::lock_guard<std::mutex> lock(g_zeta_mu);
    auto& checkpoints = ZetaCheckpoints()[theta_key];
    auto it = checkpoints.upper_bound(exact_n);
    if (it != checkpoints.begin()) {
      --it;
      sum = it->second;
      from = it->first + 1;
    }
    for (uint64_t i = from; i <= exact_n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (exact_n >= from) {
      g_zeta_terms.fetch_add(exact_n - from + 1, std::memory_order_relaxed);
      checkpoints[exact_n] = sum;
    }
  }

  if (n > kZetaExactLimit) {
    // integral of x^-theta from the exact horizon to n
    if (theta == 1.0) {
      sum += std::log(static_cast<double>(n) /
                      static_cast<double>(kZetaExactLimit));
    } else {
      sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(kZetaExactLimit), 1.0 - theta)) /
             (1.0 - theta);
    }
  }
  return sum;
}

}  // namespace kvaccel
