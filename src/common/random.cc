#include "common/random.h"

#include <cmath>

namespace kvaccel {

double ZipfianGenerator::Pow(double a, double b) { return std::pow(a, b); }

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // Exact sum is O(n); for large n use the standard truncation + integral
  // approximation, accurate enough for workload shaping.
  const uint64_t kExact = 10000;
  double sum = 0;
  uint64_t limit = n < kExact ? n : kExact;
  for (uint64_t i = 1; i <= limit; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > kExact) {
    // integral of x^-theta from kExact to n
    if (theta == 1.0) {
      sum += std::log(static_cast<double>(n) / static_cast<double>(kExact));
    } else {
      sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(kExact), 1.0 - theta)) /
             (1.0 - theta);
    }
  }
  return sum;
}

}  // namespace kvaccel
