#include "common/hash.h"

#include <cstring>

#include "common/coding.h"

namespace kvaccel {

uint32_t Hash32(const char* data, size_t n, uint32_t seed) {
  const uint32_t m = 0xc6a4a793;
  const uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w = DecodeFixed32(data);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<unsigned char>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<unsigned char>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<unsigned char>(data[0]);
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  const uint64_t m = 0x9e3779b97f4a7c15ull;
  uint64_t h = seed ^ (n * m);
  while (n >= 8) {
    uint64_t w = DecodeFixed64(data);
    data += 8;
    n -= 8;
    w *= m;
    w ^= w >> 29;
    h ^= w;
    h *= m;
  }
  uint64_t tail = 0;
  for (size_t i = 0; i < n; i++) {
    tail = (tail << 8) | static_cast<unsigned char>(data[i]);
  }
  h ^= tail;
  h *= m;
  h ^= h >> 32;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

}  // namespace kvaccel
