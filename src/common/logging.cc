#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace kvaccel {
namespace {

std::atomic<int> g_level{[] {
  const char* env = std::getenv("KVX_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  if (strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (strcmp(env, "off") == 0) return static_cast<int>(LogLevel::kOff);
  return static_cast<int>(LogLevel::kWarn);
}()};

const char* Name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return static_cast<LogLevel>(g_level.load()); }

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level));
}

void Logger::Logv(LogLevel level, const char* fmt, va_list ap) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[2048];
  vsnprintf(buf, sizeof(buf), fmt, ap);
  fprintf(stderr, "[%s] %s\n", Name(level), buf);
}

#define KVX_DEFINE_LOG_FN(FnName, Level)         \
  void FnName(const char* fmt, ...) {            \
    va_list ap;                                  \
    va_start(ap, fmt);                           \
    Logger::Logv(Level, fmt, ap);                \
    va_end(ap);                                  \
  }

KVX_DEFINE_LOG_FN(LogDebug, LogLevel::kDebug)
KVX_DEFINE_LOG_FN(LogInfo, LogLevel::kInfo)
KVX_DEFINE_LOG_FN(LogWarn, LogLevel::kWarn)
KVX_DEFINE_LOG_FN(LogError, LogLevel::kError)

#undef KVX_DEFINE_LOG_FN

}  // namespace kvaccel
