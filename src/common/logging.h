// Minimal leveled logger. Quiet by default (benches print structured results,
// not logs); enable via KVX_LOG_LEVEL env or SetLevel for debugging.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace kvaccel {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level();
  static void SetLevel(LogLevel level);
  static void Logv(LogLevel level, const char* fmt, va_list ap);
};

void LogDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void LogInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void LogWarn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void LogError(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace kvaccel
