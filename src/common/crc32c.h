// CRC32C (Castagnoli) checksums protecting WAL records, SST blocks and
// NVMe-KV payloads against corruption in the simulated device.
#pragma once

#include <cstddef>
#include <cstdint>

namespace kvaccel::crc32c {

// Returns the crc32c of concat(A, data[0,n-1]) where init_crc is the crc32c
// of A. Use Value() for a fresh buffer.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

// crc values stored on disk are masked so that computing the crc of a string
// that embeds a crc does not degenerate (same trick as LevelDB).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace kvaccel::crc32c
