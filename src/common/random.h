// Deterministic PRNGs for workloads and tests. All randomness in the library
// flows through these (never std::random_device) so simulation runs are
// bit-reproducible.
#pragma once

#include <cstdint>

namespace kvaccel {

// xorshift128+ generator: fast, 64-bit output, decent statistical quality for
// workload generation.
class Random64 {
 public:
  explicit Random64(uint64_t seed) {
    // SplitMix64 seeding so nearby seeds give unrelated streams.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Returns true with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Skewed: pick base uniformly in [0, max_log] and return uniform in
  // [0, 2^base) — handy for size distributions.
  uint64_t Skewed(int max_log) {
    return Uniform(uint64_t{1} << Uniform(static_cast<uint64_t>(max_log + 1)));
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

// Zipfian key-popularity generator (Gray et al. quick method) for skewed
// workloads beyond the paper's uniform db_bench defaults. theta must be in
// (0, 1); 0.99 is the YCSB default.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t num_items, double theta, uint64_t seed)
      : items_(num_items < 1 ? 1 : num_items), theta_(theta), rng_(seed) {
    zetan_ = Zeta(items_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - Pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() { return FromUniform(rng_.NextDouble()); }

  // Maps a uniform draw u in [0, 1] to a rank in [0, items). Public so tests
  // can hammer the u -> 1.0 boundary without fishing for an RNG state.
  uint64_t FromUniform(double u) const {
    double uz = u * zetan_;
    uint64_t rank;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + Pow(0.5, theta_)) {
      rank = 1;  // also out of range when items_ == 1; clamped below
    } else {
      rank = static_cast<uint64_t>(static_cast<double>(items_) *
                                   Pow(eta_ * u - eta_ + 1.0, alpha_));
    }
    // The power term reaches 1.0 as u -> 1.0 (and can exceed it once eta*u
    // rounds up), which lands the cast exactly on items_ — one past the last
    // valid rank. Clamp every branch to the tail rank.
    return rank >= items_ ? items_ - 1 : rank;
  }

  uint64_t items() const { return items_; }

  // Total exact zeta terms summed process-wide; a cache hit adds none. Test
  // hook for the constructor-cost regression (see workload_test.cc).
  static uint64_t ZetaTermsComputed();

 private:
  static double Pow(double a, double b);
  static double Zeta(uint64_t n, double theta);

  uint64_t items_;
  double theta_;
  Random64 rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

// Hotspot key popularity: a contiguous hot front of the keyspace receives a
// fixed share of draws (default: 90% of ops hit the first 10% of keys).
// Unlike the scrambled Zipfian, the hot set is a contiguous range, which is
// what exercises range-based machinery (the KVACCEL Detector, scans).
class HotspotGenerator {
 public:
  HotspotGenerator(uint64_t num_items, double hot_frac, double hot_op_frac,
                   uint64_t seed)
      : items_(num_items < 1 ? 1 : num_items),
        hot_op_frac_(hot_op_frac),
        rng_(seed) {
    hot_items_ = static_cast<uint64_t>(static_cast<double>(items_) * hot_frac);
    if (hot_items_ < 1) hot_items_ = 1;
    if (hot_items_ > items_) hot_items_ = items_;
  }

  uint64_t Next() {
    uint64_t cold = items_ - hot_items_;
    if (cold == 0 || rng_.NextDouble() < hot_op_frac_) {
      return rng_.Uniform(hot_items_);
    }
    return hot_items_ + rng_.Uniform(cold);
  }

  uint64_t hot_items() const { return hot_items_; }

 private:
  uint64_t items_;
  uint64_t hot_items_;
  double hot_op_frac_;
  Random64 rng_;
};

}  // namespace kvaccel
