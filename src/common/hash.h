// 32/64-bit non-cryptographic hashing used by the bloom filters, block cache
// shards and the KVACCEL metadata manager hash table.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace kvaccel {

// MurmurHash2-style 32-bit hash (LevelDB-compatible shape).
uint32_t Hash32(const char* data, size_t n, uint32_t seed);

// 64-bit avalanche hash (xxhash-like finalizer over 8-byte chunks).
uint64_t Hash64(const char* data, size_t n, uint64_t seed = 0);

inline uint32_t HashSlice32(const Slice& s, uint32_t seed = 0xbc9f1d34) {
  return Hash32(s.data(), s.size(), seed);
}

inline uint64_t HashSlice64(const Slice& s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

}  // namespace kvaccel
