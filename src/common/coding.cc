#include "common/coding.h"

#include <cstring>

namespace kvaccel {

void EncodeFixed16(char* dst, uint16_t value) {
  dst[0] = static_cast<char>(value & 0xff);
  dst[1] = static_cast<char>((value >> 8) & 0xff);
}

void EncodeFixed32(char* dst, uint32_t value) {
  for (int i = 0; i < 4; i++) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void EncodeFixed64(char* dst, uint64_t value) {
  for (int i = 0; i < 8; i++) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[2];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

uint16_t DecodeFixed16(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  return static_cast<uint16_t>(p[0]) | (static_cast<uint16_t>(p[1]) << 8);
}

uint32_t DecodeFixed32(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t DecodeFixed64(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  uint64_t v = 0;
  for (int i = 7; i >= 0; i--) {
    v = (v << 8) | p[i];
  }
  return v;
}

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* v) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<unsigned char>(*p);
    p++;
    if (byte & 0x80) {
      result |= ((byte & 0x7f) << shift);
    } else {
      result |= (byte << shift);
      *v = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* v) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    p++;
    if (byte & 0x80) {
      result |= ((byte & 0x7f) << shift);
    } else {
      result |= (byte << shift);
      *v = result;
      return p;
    }
  }
  return nullptr;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint32Ptr(p, limit, value);
  if (q == nullptr) return false;
  *input = Slice(q, static_cast<size_t>(limit - q));
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint64Ptr(p, limit, value);
  if (q == nullptr) return false;
  *input = Slice(q, static_cast<size_t>(limit - q));
  return true;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    len++;
  }
  return len;
}

}  // namespace kvaccel
