#include "common/value.h"

#include <cassert>

#include "common/coding.h"
#include "common/random.h"

namespace kvaccel {

std::string Value::Materialize() const {
  if (is_inline()) return bytes_;
  std::string out;
  out.resize(synthetic_size_);
  Random64 rng(seed_);
  size_t i = 0;
  while (i + 8 <= out.size()) {
    EncodeFixed64(out.data() + i, rng.Next());
    i += 8;
  }
  uint64_t tail = rng.Next();
  while (i < out.size()) {
    out[i++] = static_cast<char>(tail & 0xff);
    tail >>= 8;
  }
  return out;
}

void Value::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(kind_));
  if (is_inline()) {
    PutLengthPrefixedSlice(dst, bytes_);
  } else {
    PutFixed64(dst, seed_);
    PutVarint32(dst, synthetic_size_);
  }
}

bool Value::DecodeFrom(Slice* input, Value* out) {
  if (input->empty()) return false;
  auto kind = static_cast<Kind>((*input)[0]);
  input->remove_prefix(1);
  if (kind == Kind::kInline) {
    Slice bytes;
    if (!GetLengthPrefixedSlice(input, &bytes)) return false;
    *out = InlineFrom(bytes);
    return true;
  }
  if (kind == Kind::kSynthetic) {
    uint64_t seed;
    uint32_t size;
    if (!GetFixed64(input, &seed)) return false;
    if (!GetVarint32(input, &size)) return false;
    *out = Synthetic(seed, size);
    return true;
  }
  return false;
}

Value Value::DecodeOrDie(Slice encoded) {
  Value v;
  bool ok = DecodeFrom(&encoded, &v);
  assert(ok);
  (void)ok;
  return v;
}

}  // namespace kvaccel
