// Time and size units. The virtual clock ticks in nanoseconds (uint64_t
// Nanos) so that the paper's sub-microsecond overheads (Table VI: 0.20 µs key
// check, 0.45 µs insert, ...) are representable exactly. Rates are bytes per
// second (double).
#pragma once

#include <cstdint>

namespace kvaccel {

using Nanos = uint64_t;

constexpr Nanos kNanosPerMicro = 1'000;
constexpr Nanos kNanosPerMilli = 1'000'000;
constexpr Nanos kNanosPerSec = 1'000'000'000;

constexpr Nanos FromMicros(double us) {
  return static_cast<Nanos>(us * 1e3 + 0.5);
}
constexpr Nanos FromMillis(double ms) {
  return static_cast<Nanos>(ms * 1e6 + 0.5);
}
constexpr Nanos FromSecs(double s) {
  return static_cast<Nanos>(s * 1e9 + 0.5);
}
constexpr double ToSecs(Nanos t) { return static_cast<double>(t) / 1e9; }
constexpr double ToMicros(Nanos t) { return static_cast<double>(t) / 1e3; }

constexpr uint64_t KiB(uint64_t n) { return n << 10; }
constexpr uint64_t MiB(uint64_t n) { return n << 20; }
constexpr uint64_t GiB(uint64_t n) { return n << 30; }

constexpr double MBps(double n) { return n * 1'000'000.0; }  // bytes/sec

// Virtual nanoseconds a transfer of `bytes` takes at `bytes_per_sec`.
inline double TransferNanosExact(uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0 || bytes_per_sec <= 0) return 0;
  return static_cast<double>(bytes) * 1e9 / bytes_per_sec;
}

inline Nanos TransferNanos(uint64_t bytes, double bytes_per_sec) {
  return static_cast<Nanos>(TransferNanosExact(bytes, bytes_per_sec) + 0.5);
}

}  // namespace kvaccel
