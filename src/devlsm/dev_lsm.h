// Dev-LSM: the LSM-based key-value write buffer running *inside* the hybrid
// SSD (paper §V-B/§V-E), as in PinK/iLSM-style KV-SSD firmware extended with
// the paper's iterator-based bulky range scan and reset commands.
//
// Placement of costs — every host-visible operation models the full command
// round trip on shared device resources:
//   PCIe link       key/value payload DMA (both directions)
//   firmware core   a single Cortex-A9-speed CpuPool from HybridSsd
//   NAND channels   flush writes, per-run point-read probes, scan reads
//   KV region quota capacity accounting against the disaggregated space
//
// There is deliberately NO device-side read cache for iterator operations:
// Table V's range-query result (KVACCEL ~3x slower than RocksDB) follows
// directly from that omission, which the paper calls out as the bottleneck.
//
// Commands are serialized by a firmware command mutex (single command queue,
// single core), which is what backs KVACCEL's isolation argument (§V-G).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/units.h"
#include "common/value.h"
#include "obs/trace.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

namespace kvaccel::devlsm {

struct DevLsmOptions {
  // Device-DRAM write buffer threshold (logical bytes) before a NAND flush.
  uint64_t memtable_bytes = 32ull << 20;
  // Merge device-side runs when more than this many L0 runs accumulate.
  // The paper disables Dev-LSM compaction for write-only workloads.
  bool compaction_enabled = true;
  int l0_run_trigger = 8;

  // Firmware CPU costs (nominal ns, scaled by the ARM core's speed factor).
  // PUT: 16 us nominal -> 64 us on the Cortex-A9, matching published
  // Cosmos+ KV-SSD store latencies (~50-100 us per 4 KB pair).
  double put_fw_ns = 24000;
  double get_fw_ns = 4000;
  double flush_fw_ns_per_byte = 0.6;
  double compact_fw_ns_per_byte = 1.2;
  double scan_fw_ns_per_entry = 300;

  // DMA chunk for the bulky range scan (paper §V-E: 512 KB, the platform's
  // maximum DMA transfer unit).
  uint64_t dma_chunk = 512 << 10;

  // --- Extension (paper Table V discussion / future work) ---
  // Device-DRAM read cache for iterator batches. The paper attributes
  // KVACCEL's 3x range-query deficit to the LACK of exactly this cache;
  // enabling it lets bench_ablation_dev_read_cache quantify the claim.
  // Bytes of device DRAM dedicated to cached pages (0 = no cache, the
  // paper's configuration).
  uint64_t read_cache_bytes = 0;
};

struct DevLsmStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t compound_cmds = 0;     // PutCompound commands issued
  uint64_t compound_entries = 0;  // entries carried by those commands
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bulk_scans = 0;
  uint64_t scan_chunks = 0;
  uint64_t resets = 0;
  uint64_t read_cache_hits = 0;
  uint64_t read_cache_misses = 0;
};

class DevLsm {
 public:
  // One entry streamed out of a bulk scan.
  struct ScanEntry {
    std::string key;
    Value value;
    bool tombstone = false;
    // Host-assigned version (see Put); 0 when the writer didn't supply one.
    uint64_t host_seq = 0;
  };

  DevLsm(ssd::HybridSsd* ssd, int nsid, const DevLsmOptions& options);
  ~DevLsm();

  // ---- Host-facing KV interface (NVMe-KV command semantics) ----
  // `host_seq` optionally tags the pair with a host-side version number
  // (KVACCEL allocates these from the Main-LSM sequence space so crash
  // recovery can order device pairs against host data). Internal ordering
  // uses a device counter either way.
  Status Put(const Slice& key, const Value& value, uint64_t host_seq = 0);
  Status Delete(const Slice& key, uint64_t host_seq = 0);  // tombstone
  // Compound command (paper §IV, [33]): N puts/deletes ride one NVMe
  // command — one command/completion overhead and one DMA for the whole
  // payload, with the per-pair firmware cost amortized (NAND cost stays
  // per-entry, paid when the device memtable flushes). Entries are applied
  // atomically with respect to other commands (single firmware queue).
  struct BatchPut {
    std::string key;
    Value value;
    uint64_t host_seq = 0;
    bool tombstone = false;  // redirected Delete riding the compound command
  };
  Status PutCompound(const std::vector<BatchPut>& entries);
  // NotFound for absent keys and tombstones.
  Status Get(const Slice& key, Value* value);
  bool Exist(const Slice& key);

  // Iterator-based bulky range scan over a snapshot of the Dev-LSM (paper
  // §V-E): entries stream newest-version-only, in key order, in
  // dma_chunk-sized device->host transfers. `fn` runs host-side after each
  // chunk lands. The command mutex is released between chunks, so PUTs
  // redirected during a long scan are served rather than queued behind it;
  // they are not part of the snapshot.
  Status BulkScan(const std::function<void(const ScanEntry&)>& fn);

  // Device-side iterator for range queries (paper §V-F). Seek/Next fetch
  // dma_chunk batches through the same scan machinery — uncached, so every
  // batch pays device latency.
  class Iterator;
  std::unique_ptr<Iterator> NewIterator();

  // Drops all buffered pairs and frees the KV region pages (paper §V-E
  // step 8: reset after rollback).
  Status Reset() { return ResetUpTo(UINT64_MAX); }
  // Snapshot-bounded reset: drops only entries whose device sequence is
  // <= `up_to_seq` (e.g. LastSeq() captured before a rollback scan), so
  // pairs redirected *during* the rollback survive for the next one
  // (DESIGN.md §5 extension).
  Status ResetUpTo(uint64_t up_to_seq);
  // Device sequence of the most recent write (0 if none yet).
  uint64_t LastSeq() const { return next_seq_ - 1; }

  bool Empty() const;
  uint64_t NumLiveEntries() const;
  uint64_t LogicalBytes() const;
  const DevLsmStats& stats() const { return stats_; }
  uint64_t used_pages() const { return ssd_->KvUsedPages(nsid_); }

 private:
  struct Entry {
    Value value;
    bool tombstone = false;
    uint64_t seq = 0;       // device-internal ordering
    uint64_t host_seq = 0;  // host-assigned version (0 = unversioned)
  };
  // A sorted immutable run persisted in the KV region.
  struct Run {
    std::vector<std::pair<std::string, Entry>> entries;
    uint64_t logical_bytes = 0;
    uint64_t pages = 0;
  };

  Status FlushMemtableLocked();
  Status CompactRunsLocked();
  using MergedView = std::vector<std::pair<std::string, Entry>>;
  // Newest-version-only view of the whole Dev-LSM (memtable + runs), cached
  // until the next mutation so scan-heavy workloads (rollback, range
  // queries) don't rebuild it per batch.
  std::shared_ptr<const MergedView> SnapshotLocked() const;
  uint64_t EntryLogical(const Slice& key, const Entry& e) const;

  ssd::HybridSsd* ssd_;
  int nsid_;
  DevLsmOptions options_;
  sim::SimEnv* env_;

  mutable sim::SimMutex cmd_mu_;  // firmware command queue serialization
  std::map<std::string, Entry> memtable_;
  uint64_t memtable_logical_ = 0;
  std::vector<Run> runs_;  // oldest first
  uint64_t next_seq_ = 1;
  uint64_t mutation_epoch_ = 0;  // bumped by every state change
  mutable std::shared_ptr<const MergedView> snapshot_cache_;
  mutable uint64_t snapshot_epoch_ = UINT64_MAX;
  // Device-DRAM read cache (extension): tracks which keys' pages are
  // resident; NAND reads are skipped on hits. Invalidated wholesale on
  // mutation epochs (simple firmware cache discipline).
  struct ReadCache {
    uint64_t capacity_bytes = 0;
    uint64_t used_bytes = 0;
    uint64_t epoch = UINT64_MAX;
    std::map<std::string, uint64_t> resident;  // key -> bytes
  };
  mutable ReadCache read_cache_;
  // True (and accounts a hit) if `key`'s page is cached; otherwise records
  // the page as resident (evicting oldest keys beyond capacity) and returns
  // false so the caller charges the NAND read.
  bool ReadCacheLookupOrFill(const std::string& key, uint64_t bytes);
  DevLsmStats stats_;

  // Command spans on the "devlsm" trace track (DESIGN.md §8). Point
  // commands (PUT/GET) coalesce into busy windows; flush/compaction/scan
  // chunks/reset are discrete spans. Null tracer = all of this is inert.
  obs::Tracer* tracer_ = nullptr;
  uint32_t tr_dev_ = 0;
  obs::CoalescingSpan put_span_;
  obs::CoalescingSpan get_span_;
};

// Host-side cursor over the device iterator protocol. Returns user keys and
// decoded values; tombstones are surfaced (callers filter).
//
// The merged view is pinned when the iterator is opened (the device holds
// the snapshot for the iterator handle's lifetime, as NVMe-KV iterators do).
// Without this, a rollback completing between batches would make the
// device's entries vanish mid-scan while the md snapshot still routes their
// keys to the device — the hybrid reader would silently drop keys.
class DevLsm::Iterator {
 public:
  Iterator(DevLsm* dev, std::shared_ptr<const MergedView> view)
      : dev_(dev), view_(std::move(view)) {}

  void SeekToFirst() { Seek(Slice()); }
  void Seek(const Slice& user_key);
  void Next();
  bool Valid() const { return pos_ < buffer_.size(); }
  const std::string& key() const { return buffer_[pos_].key; }
  const Value& value() const { return buffer_[pos_].value; }
  bool tombstone() const { return buffer_[pos_].tombstone; }

 private:
  void FetchBatch(const Slice& start_after, bool inclusive);

  DevLsm* dev_;
  std::shared_ptr<const MergedView> view_;  // snapshot pinned at open
  std::vector<ScanEntry> buffer_;
  size_t pos_ = 0;
  bool exhausted_ = false;
};

}  // namespace kvaccel::devlsm
