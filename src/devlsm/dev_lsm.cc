#include "devlsm/dev_lsm.h"

#include <algorithm>
#include <cassert>

#include "sim/fault.h"

namespace kvaccel::devlsm {

namespace {
// Fixed NVMe command/completion footprint on the link, beyond the payload.
constexpr uint64_t kCommandOverheadBytes = 64;
}  // namespace

DevLsm::DevLsm(ssd::HybridSsd* ssd, int nsid, const DevLsmOptions& options)
    : ssd_(ssd), nsid_(nsid), options_(options), env_(ssd->env()) {
  tracer_ = env_->tracer();
  if (tracer_ != nullptr) {
    tr_dev_ = tracer_->RegisterTrack("devlsm");
    put_span_.Init(tracer_, tr_dev_, "dev.put", FromMicros(50));
    get_span_.Init(tracer_, tr_dev_, "dev.get", FromMicros(50));
  }
}

DevLsm::~DevLsm() {
  // The tracer outlives the DB world; close out coalesced busy windows so
  // the last burst isn't lost (see obs::CoalescingSpan lifetime rule).
  put_span_.Flush();
  get_span_.Flush();
}

uint64_t DevLsm::EntryLogical(const Slice& key, const Entry& e) const {
  return key.size() + 8 + (e.tombstone ? 0 : e.value.logical_size());
}

Status DevLsm::Put(const Slice& key, const Value& value, uint64_t host_seq) {
  sim::SimLockGuard l(cmd_mu_);
  if (sim::SimCrashed(env_)) return Status::IOError("simulated crash");
  if (sim::FaultAt(env_, "devlsm.put.transient")) {
    return Status::IOError("injected: KV store command failed");
  }
  stats_.puts++;
  Nanos cmd_start = tracer_ != nullptr ? env_->Now() : 0;
  ssd_->trace().Record(env_->Now(), ssd::nvme::Opcode::kKvStore, nsid_,
                       key.size() + value.logical_size());
  ssd_->PcieToDevice(kCommandOverheadBytes + key.size() +
                     value.logical_size());
  ssd_->firmware()->Consume(options_.put_fw_ns);

  Entry e;
  e.value = value;
  e.tombstone = false;
  e.seq = next_seq_++;
  e.host_seq = host_seq;
  std::string k = key.ToString();
  auto old = memtable_.find(k);
  if (old != memtable_.end()) {
    memtable_logical_ -= EntryLogical(k, old->second);
  }
  memtable_logical_ += EntryLogical(key, e);
  memtable_.insert_or_assign(std::move(k), e);
  mutation_epoch_++;
  if (tracer_ != nullptr) {
    put_span_.Add(cmd_start, env_->Now(),
                  key.size() + value.logical_size());
  }
  if (memtable_logical_ >= options_.memtable_bytes) {
    Status s = FlushMemtableLocked();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status DevLsm::Delete(const Slice& key, uint64_t host_seq) {
  sim::SimLockGuard l(cmd_mu_);
  if (sim::SimCrashed(env_)) return Status::IOError("simulated crash");
  if (sim::FaultAt(env_, "devlsm.put.transient")) {
    return Status::IOError("injected: KV delete command failed");
  }
  stats_.deletes++;
  Nanos cmd_start = tracer_ != nullptr ? env_->Now() : 0;
  ssd_->trace().Record(env_->Now(), ssd::nvme::Opcode::kKvDelete, nsid_,
                       key.size());
  ssd_->PcieToDevice(kCommandOverheadBytes + key.size());
  ssd_->firmware()->Consume(options_.put_fw_ns);
  Entry e;
  e.tombstone = true;
  e.seq = next_seq_++;
  e.host_seq = host_seq;
  std::string k = key.ToString();
  auto old = memtable_.find(k);
  if (old != memtable_.end()) {
    memtable_logical_ -= EntryLogical(k, old->second);
  }
  memtable_logical_ += EntryLogical(key, e);
  memtable_.insert_or_assign(std::move(k), e);
  mutation_epoch_++;
  if (tracer_ != nullptr) put_span_.Add(cmd_start, env_->Now(), key.size());
  if (memtable_logical_ >= options_.memtable_bytes) {
    Status s = FlushMemtableLocked();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status DevLsm::PutCompound(const std::vector<BatchPut>& entries) {
  if (entries.empty()) return Status::OK();
  sim::SimLockGuard l(cmd_mu_);
  if (sim::SimCrashed(env_)) return Status::IOError("simulated crash");
  if (sim::FaultAt(env_, "devlsm.put.transient")) {
    return Status::IOError("injected: KV compound command failed");
  }
  uint64_t payload = 0;
  for (const BatchPut& e : entries) {
    payload += e.key.size() + (e.tombstone ? 0 : e.value.logical_size());
  }
  Nanos cmd_start = tracer_ != nullptr ? env_->Now() : 0;
  ssd_->trace().Record(env_->Now(), ssd::nvme::Opcode::kKvCompound, nsid_,
                       payload);
  ssd_->PcieToDevice(kCommandOverheadBytes + payload);
  // Command handling once; per-pair insert work amortizes to roughly a
  // third of a standalone PUT (no per-command parsing/completion).
  ssd_->firmware()->Consume(options_.put_fw_ns +
                            options_.put_fw_ns / 3.0 *
                                static_cast<double>(entries.size() - 1));
  stats_.compound_cmds++;
  stats_.compound_entries += entries.size();
  for (const BatchPut& bp : entries) {
    Entry e;
    if (bp.tombstone) {
      stats_.deletes++;
    } else {
      stats_.puts++;
      e.value = bp.value;
    }
    e.tombstone = bp.tombstone;
    e.seq = next_seq_++;
    e.host_seq = bp.host_seq;
    auto old = memtable_.find(bp.key);
    if (old != memtable_.end()) {
      memtable_logical_ -= EntryLogical(bp.key, old->second);
    }
    memtable_logical_ += EntryLogical(bp.key, e);
    memtable_.insert_or_assign(bp.key, e);
  }
  mutation_epoch_++;
  if (tracer_ != nullptr) {
    tracer_->Complete(tr_dev_, "dev.put_compound", cmd_start, env_->Now(),
                      payload);
  }
  if (memtable_logical_ >= options_.memtable_bytes) {
    return FlushMemtableLocked();
  }
  return Status::OK();
}

Status DevLsm::Get(const Slice& key, Value* value) {
  sim::SimLockGuard l(cmd_mu_);
  if (sim::SimCrashed(env_)) return Status::IOError("simulated crash");
  if (sim::FaultAt(env_, "devlsm.get.transient")) {
    return Status::IOError("injected: KV retrieve command failed");
  }
  stats_.gets++;
  Nanos cmd_start = tracer_ != nullptr ? env_->Now() : 0;
  ssd_->trace().Record(env_->Now(), ssd::nvme::Opcode::kKvRetrieve, nsid_,
                       key.size());
  ssd_->PcieToDevice(kCommandOverheadBytes + key.size());
  ssd_->firmware()->Consume(options_.get_fw_ns);

  std::string k = key.ToString();
  const Entry* found = nullptr;
  auto mit = memtable_.find(k);
  if (mit != memtable_.end()) {
    found = &mit->second;  // device DRAM: no NAND read
  } else {
    // Probe runs newest-first; each probe reads one NAND page unless a
    // configured device read cache holds it (paper config: no cache — the
    // Table V bottleneck).
    for (auto rit = runs_.rbegin(); rit != runs_.rend() && !found; ++rit) {
      const auto& entries = rit->entries;
      auto it = std::lower_bound(
          entries.begin(), entries.end(), k,
          [](const auto& a, const std::string& b) { return a.first < b; });
      if (!ReadCacheLookupOrFill(k, ssd_->config().page_size)) {
        ssd_->NandRead(ssd_->config().page_size);
      }
      if (it != entries.end() && it->first == k) found = &it->second;
    }
  }
  if (found == nullptr || found->tombstone) {
    if (tracer_ != nullptr) get_span_.Add(cmd_start, env_->Now(), key.size());
    return Status::NotFound("not in Dev-LSM");
  }
  *value = found->value;
  ssd_->PcieToHost(found->value.logical_size());
  if (tracer_ != nullptr) {
    get_span_.Add(cmd_start, env_->Now(), found->value.logical_size());
  }
  return Status::OK();
}

bool DevLsm::Exist(const Slice& key) {
  sim::SimLockGuard l(cmd_mu_);
  ssd_->trace().Record(env_->Now(), ssd::nvme::Opcode::kKvExist, nsid_,
                       key.size());
  ssd_->PcieToDevice(kCommandOverheadBytes + key.size());
  ssd_->firmware()->Consume(options_.get_fw_ns);
  std::string k = key.ToString();
  auto mit = memtable_.find(k);
  if (mit != memtable_.end()) return !mit->second.tombstone;
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {
    const auto& entries = rit->entries;
    auto it = std::lower_bound(
        entries.begin(), entries.end(), k,
        [](const auto& a, const std::string& b) { return a.first < b; });
    ssd_->NandRead(ssd_->config().page_size);
    if (it != entries.end() && it->first == k) return !it->second.tombstone;
  }
  return false;
}

Status DevLsm::FlushMemtableLocked() {
  if (memtable_.empty()) return Status::OK();
  Nanos flush_start = tracer_ != nullptr ? env_->Now() : 0;
  Run run;
  run.entries.assign(memtable_.begin(), memtable_.end());
  for (const auto& [k, e] : run.entries) {
    run.logical_bytes += EntryLogical(k, e);
  }
  const uint64_t page = ssd_->config().page_size;
  run.pages = (run.logical_bytes + page - 1) / page;

  Status s = ssd_->KvAllocPages(nsid_, run.pages);
  if (!s.ok() && options_.compaction_enabled) {
    // Try to reclaim space by merging runs, then retry once.
    Status cs = CompactRunsLocked();
    if (cs.ok()) s = ssd_->KvAllocPages(nsid_, run.pages);
  }
  if (!s.ok()) return s;

  ssd_->firmware()->Consume(options_.flush_fw_ns_per_byte *
                            static_cast<double>(run.logical_bytes));
  const uint64_t flushed_bytes = run.logical_bytes;
  ssd_->NandWrite(run.logical_bytes);
  runs_.push_back(std::move(run));
  memtable_.clear();
  memtable_logical_ = 0;
  mutation_epoch_++;
  stats_.flushes++;
  if (tracer_ != nullptr) {
    tracer_->Complete(tr_dev_, "dev.flush", flush_start, env_->Now(),
                      flushed_bytes);
  }

  if (options_.compaction_enabled &&
      static_cast<int>(runs_.size()) > options_.l0_run_trigger) {
    return CompactRunsLocked();
  }
  return Status::OK();
}

Status DevLsm::CompactRunsLocked() {
  if (runs_.size() < 2) return Status::OK();
  Nanos compact_start = tracer_ != nullptr ? env_->Now() : 0;
  uint64_t in_bytes = 0;
  uint64_t in_pages = 0;
  for (const auto& r : runs_) {
    in_bytes += r.logical_bytes;
    in_pages += r.pages;
  }
  ssd_->NandRead(in_bytes);
  ssd_->firmware()->Consume(options_.compact_fw_ns_per_byte *
                            static_cast<double>(in_bytes));

  // Newest wins; tombstones are retained (they may shadow Main-LSM data).
  std::map<std::string, Entry> merged;
  for (const auto& r : runs_) {
    for (const auto& [k, e] : r.entries) {
      auto it = merged.find(k);
      if (it == merged.end() || it->second.seq < e.seq) merged[k] = e;
    }
  }
  Run out;
  out.entries.assign(merged.begin(), merged.end());
  for (const auto& [k, e] : out.entries) {
    out.logical_bytes += EntryLogical(k, e);
  }
  const uint64_t page = ssd_->config().page_size;
  out.pages = (out.logical_bytes + page - 1) / page;

  ssd_->NandWrite(out.logical_bytes);
  ssd_->KvFreePages(nsid_, in_pages);
  Status s = ssd_->KvAllocPages(nsid_, out.pages);
  if (!s.ok()) return s;
  uint64_t erase_blocks =
      std::max<uint64_t>(1, in_pages / ssd_->config().pages_per_block);
  ssd_->NandEraseBlocks(erase_blocks);
  runs_.clear();
  runs_.push_back(std::move(out));
  mutation_epoch_++;
  stats_.compactions++;
  if (tracer_ != nullptr) {
    tracer_->Complete(tr_dev_, "dev.compact", compact_start, env_->Now(),
                      in_bytes);
  }
  return Status::OK();
}

bool DevLsm::ReadCacheLookupOrFill(const std::string& key, uint64_t bytes) {
  if (options_.read_cache_bytes == 0) return false;
  if (read_cache_.epoch != mutation_epoch_) {
    // Firmware invalidates the whole cache when the store mutates.
    read_cache_.resident.clear();
    read_cache_.used_bytes = 0;
    read_cache_.epoch = mutation_epoch_;
    read_cache_.capacity_bytes = options_.read_cache_bytes;
  }
  auto it = read_cache_.resident.find(key);
  if (it != read_cache_.resident.end()) {
    stats_.read_cache_hits++;
    return true;
  }
  stats_.read_cache_misses++;
  read_cache_.used_bytes += bytes;
  read_cache_.resident.emplace(key, bytes);
  while (read_cache_.used_bytes > read_cache_.capacity_bytes &&
         !read_cache_.resident.empty()) {
    auto victim = read_cache_.resident.begin();
    read_cache_.used_bytes -= victim->second;
    read_cache_.resident.erase(victim);
  }
  return false;
}

std::shared_ptr<const DevLsm::MergedView> DevLsm::SnapshotLocked() const {
  if (snapshot_epoch_ == mutation_epoch_ && snapshot_cache_ != nullptr) {
    return snapshot_cache_;
  }
  std::map<std::string, Entry> merged;
  for (const auto& r : runs_) {
    for (const auto& [k, e] : r.entries) {
      auto it = merged.find(k);
      if (it == merged.end() || it->second.seq < e.seq) merged[k] = e;
    }
  }
  for (const auto& [k, e] : memtable_) {
    auto it = merged.find(k);
    if (it == merged.end() || it->second.seq < e.seq) merged[k] = e;
  }
  snapshot_cache_ = std::make_shared<const MergedView>(merged.begin(),
                                                       merged.end());
  snapshot_epoch_ = mutation_epoch_;
  return snapshot_cache_;
}

Status DevLsm::BulkScan(const std::function<void(const ScanEntry&)>& fn) {
  std::shared_ptr<const MergedView> view_snapshot;
  {
    // Snapshot under the command mutex, then release it: a rollback-sized
    // scan must not block concurrent redirected PUTs for its whole duration.
    sim::SimLockGuard l(cmd_mu_);
    stats_.bulk_scans++;
    ssd_->trace().Record(env_->Now(), ssd::nvme::Opcode::kKvBulkScan, nsid_,
                         0);
    view_snapshot = SnapshotLocked();
  }
  const MergedView& view = *view_snapshot;

  // Stream in dma_chunk-sized bursts: NAND read, firmware serialization,
  // then one DMA to host memory (paper §V-E steps 3-6).
  std::vector<ScanEntry> chunk_entries;
  uint64_t chunk_bytes = 0;
  auto ship_chunk = [&]() {
    if (chunk_entries.empty()) return;
    {
      sim::SimLockGuard l(cmd_mu_);
      stats_.scan_chunks++;
      Nanos chunk_start = tracer_ != nullptr ? env_->Now() : 0;
      ssd_->NandRead(chunk_bytes);
      ssd_->firmware()->Consume(options_.scan_fw_ns_per_entry *
                                static_cast<double>(chunk_entries.size()));
      ssd_->PcieToHost(chunk_bytes);
      if (tracer_ != nullptr) {
        tracer_->Complete(tr_dev_, "dev.scan_chunk", chunk_start, env_->Now(),
                          chunk_bytes);
      }
    }
    for (const auto& e : chunk_entries) fn(e);
    chunk_entries.clear();
    chunk_bytes = 0;
  };

  for (const auto& [k, e] : view) {
    ScanEntry out;
    out.key = k;
    out.value = e.value;
    out.tombstone = e.tombstone;
    out.host_seq = e.host_seq;
    chunk_bytes += EntryLogical(k, e);
    chunk_entries.push_back(std::move(out));
    if (chunk_bytes >= options_.dma_chunk) ship_chunk();
  }
  ship_chunk();
  return Status::OK();
}

Status DevLsm::ResetUpTo(uint64_t up_to_seq) {
  sim::SimLockGuard l(cmd_mu_);
  stats_.resets++;
  Nanos reset_start = tracer_ != nullptr ? env_->Now() : 0;
  ssd_->trace().Record(env_->Now(), ssd::nvme::Opcode::kKvReset, nsid_, 0);

  uint64_t old_pages = 0;
  for (const auto& r : runs_) old_pages += r.pages;

  // Survivors: entries written after the snapshot bound.
  std::map<std::string, Entry> surviving_mem;
  for (const auto& [k, e] : memtable_) {
    if (e.seq > up_to_seq) surviving_mem.emplace(k, e);
  }
  Run surviving_run;
  for (const auto& r : runs_) {
    for (const auto& [k, e] : r.entries) {
      if (e.seq > up_to_seq) surviving_run.entries.emplace_back(k, e);
    }
  }

  memtable_ = std::move(surviving_mem);
  memtable_logical_ = 0;
  for (const auto& [k, e] : memtable_) memtable_logical_ += EntryLogical(k, e);

  runs_.clear();
  if (old_pages > 0) {
    ssd_->KvFreePages(nsid_, old_pages);
    ssd_->NandEraseBlocks(
        std::max<uint64_t>(1, old_pages / ssd_->config().pages_per_block));
  }
  if (!surviving_run.entries.empty()) {
    std::sort(surviving_run.entries.begin(), surviving_run.entries.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second.seq > b.second.seq;  // newest first
              });
    surviving_run.entries.erase(
        std::unique(surviving_run.entries.begin(),
                    surviving_run.entries.end(),
                    [](const auto& a, const auto& b) {
                      return a.first == b.first;
                    }),
        surviving_run.entries.end());
    for (const auto& [k, e] : surviving_run.entries) {
      surviving_run.logical_bytes += EntryLogical(k, e);
    }
    const uint64_t page = ssd_->config().page_size;
    surviving_run.pages = (surviving_run.logical_bytes + page - 1) / page;
    Status s = ssd_->KvAllocPages(nsid_, surviving_run.pages);
    if (!s.ok()) return s;
    ssd_->NandWrite(surviving_run.logical_bytes);
    runs_.push_back(std::move(surviving_run));
  }
  ssd_->firmware()->Consume(options_.put_fw_ns);
  mutation_epoch_++;
  if (tracer_ != nullptr) {
    tracer_->Complete(tr_dev_, "dev.reset", reset_start, env_->Now());
  }
  return Status::OK();
}

bool DevLsm::Empty() const {
  return memtable_.empty() && runs_.empty();
}

uint64_t DevLsm::NumLiveEntries() const {
  // Upper bound without merging: memtable plus run entries.
  uint64_t n = memtable_.size();
  for (const auto& r : runs_) n += r.entries.size();
  return n;
}

uint64_t DevLsm::LogicalBytes() const {
  uint64_t bytes = memtable_logical_;
  for (const auto& r : runs_) bytes += r.logical_bytes;
  return bytes;
}

// ---------------- Iterator ----------------

std::unique_ptr<DevLsm::Iterator> DevLsm::NewIterator() {
  // Opening the iterator pins the snapshot (one firmware command); batches
  // then stream from the pinned view so later PUTs/resets don't shift it.
  sim::SimLockGuard l(cmd_mu_);
  ssd_->trace().Record(env_->Now(), ssd::nvme::Opcode::kKvIterOpen, nsid_, 0);
  return std::make_unique<Iterator>(this, SnapshotLocked());
}

void DevLsm::Iterator::Seek(const Slice& user_key) {
  exhausted_ = false;
  buffer_.clear();
  pos_ = 0;
  FetchBatch(user_key, /*inclusive=*/true);
}

void DevLsm::Iterator::Next() {
  assert(Valid());
  pos_++;
  if (pos_ >= buffer_.size() && !exhausted_) {
    std::string last = buffer_.empty() ? std::string() : buffer_.back().key;
    FetchBatch(last, /*inclusive=*/false);
  }
}

void DevLsm::Iterator::FetchBatch(const Slice& start, bool inclusive) {
  buffer_.clear();
  pos_ = 0;
  DevLsm* dev = dev_;
  sim::SimLockGuard l(dev->cmd_mu_);
  dev->ssd_->trace().Record(dev->env_->Now(),
                            ssd::nvme::Opcode::kKvIterNext, dev->nsid_, 0);
  const MergedView& view = *view_;  // pinned at open, not re-snapshotted
  auto it = std::lower_bound(
      view.begin(), view.end(), start.ToString(),
      [](const auto& a, const std::string& b) { return a.first < b; });
  if (!inclusive && it != view.end() && Slice(it->first) == start) ++it;

  uint64_t batch_bytes = 0;
  while (it != view.end() && batch_bytes < dev->options_.dma_chunk) {
    ScanEntry e;
    e.key = it->first;
    e.value = it->second.value;
    e.tombstone = it->second.tombstone;
    batch_bytes += dev->EntryLogical(e.key, it->second);
    buffer_.push_back(std::move(e));
    ++it;
  }
  exhausted_ = (it == view.end());
  if (!buffer_.empty()) {
    // Uncached range scan: unlike the rollback's full sequential bulk scan,
    // an arbitrary-range batch gathers entries scattered across the runs, so
    // without a device read cache every entry costs a random NAND page read
    // — the Table V bottleneck the paper names ("without a read cache ...
    // its range query performance lags behind significantly").
    const uint64_t page = dev->ssd_->config().page_size;
    for (const ScanEntry& e : buffer_) {
      // Extension: with a device read cache configured, resident pages skip
      // the NAND round trip (paper: the absence of this cache is the
      // Table V bottleneck).
      if (!dev->ReadCacheLookupOrFill(e.key, page)) {
        dev->ssd_->NandRead(page);
      }
    }
    dev->ssd_->firmware()->Consume(
        dev->options_.scan_fw_ns_per_entry *
        static_cast<double>(buffer_.size()));
    dev->ssd_->PcieToHost(batch_bytes);
  }
}

}  // namespace kvaccel::devlsm
