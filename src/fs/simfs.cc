#include "fs/simfs.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <fstream>

#include "sim/fault.h"

namespace kvaccel::fs {

// ---------------- SimFs ----------------

SimFs::SimFs(ssd::HybridSsd* ssd, int nsid, uint64_t writeback_chunk)
    : ssd_(ssd), nsid_(nsid), writeback_chunk_(writeback_chunk) {
  total_sectors_ = ssd->BlockCapacitySectors(nsid);
  free_sectors_ = total_sectors_;
  free_map_[0] = total_sectors_;
}

Status SimFs::AllocSectors(uint64_t sectors, std::vector<Extent>* out) {
  if (sectors > free_sectors_) {
    return Status::NoSpace("file system full");
  }
  uint64_t need = sectors;
  // First-fit over the free map; consumes runs front-to-back.
  while (need > 0) {
    assert(!free_map_.empty());
    auto it = free_map_.begin();
    uint64_t lba = it->first;
    uint64_t len = it->second;
    uint64_t take = std::min(len, need);
    free_map_.erase(it);
    if (take < len) free_map_[lba + take] = len - take;
    if (!out->empty() && out->back().lba + out->back().sectors == lba) {
      out->back().sectors += take;
    } else {
      out->push_back({lba, take});
    }
    need -= take;
  }
  free_sectors_ -= sectors;
  return Status::OK();
}

void SimFs::FreeExtents(const std::vector<Extent>& extents) {
  for (const Extent& e : extents) {
    if (e.sectors == 0) continue;
    free_sectors_ += e.sectors;
    // Coalesce with neighbours.
    uint64_t lba = e.lba;
    uint64_t len = e.sectors;
    auto next = free_map_.lower_bound(lba);
    if (next != free_map_.end() && lba + len == next->first) {
      len += next->second;
      next = free_map_.erase(next);
    }
    if (next != free_map_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second == lba) {
        lba = prev->first;
        len += prev->second;
        free_map_.erase(prev);
      }
    }
    free_map_[lba] = len;
  }
}

Status SimFs::NewWritableFile(const std::string& name,
                              std::unique_ptr<WritableFile>* file) {
  auto it = files_.find(name);
  if (it != files_.end()) {
    // Recreate semantics (O_TRUNC): free the old storage.
    for (const Extent& e : it->second->extents) {
      ssd_->BlockTrim(nsid_, e.lba, e.sectors);
    }
    FreeExtents(it->second->extents);
    files_.erase(it);
  }
  auto inode = std::make_shared<Inode>();
  inode->name = name;
  inode->open_for_write = true;
  files_[name] = inode;
  *file = std::make_unique<WritableFile>(this, inode);
  return Status::OK();
}

Status SimFs::NewRandomAccessFile(
    const std::string& name, std::unique_ptr<RandomAccessFile>* file) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound(name);
  *file = std::make_unique<RandomAccessFile>(const_cast<SimFs*>(this),
                                             it->second);
  return Status::OK();
}

Status SimFs::DeleteFile(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound(name);
  // TRIM the file's sectors so the FTL learns they are dead (reduces GC
  // relocation work — the SSD-friendly behaviour of a real ext4 discard).
  for (const Extent& e : it->second->extents) {
    ssd_->BlockTrim(nsid_, e.lba, e.sectors);
  }
  FreeExtents(it->second->extents);
  it->second->extents.clear();
  files_.erase(it);
  return Status::OK();
}

Status SimFs::RenameFile(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound(from);
  std::shared_ptr<Inode> inode = it->second;
  files_.erase(it);
  auto old = files_.find(to);
  if (old != files_.end()) {
    for (const Extent& e : old->second->extents) {
      ssd_->BlockTrim(nsid_, e.lba, e.sectors);
    }
    FreeExtents(old->second->extents);
    files_.erase(old);
  }
  inode->name = to;
  files_[to] = inode;
  return Status::OK();
}

bool SimFs::FileExists(const std::string& name) const {
  return files_.count(name) > 0;
}

Status SimFs::GetFileSize(const std::string& name, uint64_t* logical,
                          uint64_t* physical) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound(name);
  *logical = it->second->logical_size;
  if (physical != nullptr) *physical = it->second->data.size();
  return Status::OK();
}

void SimFs::DropAllDirty() {
  for (auto& [name, inode] : files_) {
    assert(inode->dirty_physical <= inode->data.size());
    inode->data.resize(inode->data.size() - inode->dirty_physical);
    inode->logical_size -=
        std::min(inode->logical_size, inode->dirty_logical);
    inode->dirty_physical = 0;
    inode->dirty_logical = 0;
    // Bytes that were written back but never covered by a BlockFlush sat in
    // the device write cache; the torn-writeback fault loses them too.
    if (inode->unsynced_physical > 0 &&
        sim::FaultAt(ssd_->env(), "simfs.powercut.torn")) {
      inode->data.resize(inode->data.size() -
                         std::min<uint64_t>(inode->data.size(),
                                            inode->unsynced_physical));
      inode->logical_size -=
          std::min(inode->logical_size, inode->unsynced_logical);
    }
    inode->unsynced_physical = 0;
    inode->unsynced_logical = 0;
  }
}

void SimFs::MarkAllSynced() {
  for (auto& [name, inode] : files_) {
    inode->unsynced_logical = 0;
    inode->unsynced_physical = 0;
  }
}

Status SimFs::DumpToHostDir(const std::string& dir) const {
  namespace stdfs = std::filesystem;
  std::error_code ec;
  stdfs::create_directories(dir, ec);
  if (ec) return Status::IOError("create " + dir + ": " + ec.message());
  std::ofstream index(stdfs::path(dir) / "KVX_INDEX",
                      std::ios::binary | std::ios::trunc);
  if (!index) return Status::IOError("open " + dir + "/KVX_INDEX");
  for (const auto& [name, inode] : files_) {
    // One index line per file: "<logical_size> <name>". Names are flat
    // (no '/' or whitespace), so a space-delimited line is unambiguous.
    index << inode->logical_size << ' ' << name << '\n';
    std::ofstream out(stdfs::path(dir) / name,
                      std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("open " + dir + "/" + name);
    out.write(inode->data.data(),
              static_cast<std::streamsize>(inode->data.size()));
    if (!out) return Status::IOError("write " + dir + "/" + name);
  }
  index.flush();
  if (!index) return Status::IOError("write " + dir + "/KVX_INDEX");
  return Status::OK();
}

Status SimFs::LoadFromHostDir(const std::string& dir) {
  namespace stdfs = std::filesystem;
  std::ifstream index(stdfs::path(dir) / "KVX_INDEX", std::ios::binary);
  if (!index) return Status::NotFound(dir + "/KVX_INDEX");
  uint64_t logical;
  std::string name;
  while (index >> logical >> name) {
    std::ifstream in(stdfs::path(dir) / name,
                     std::ios::binary | std::ios::ate);
    if (!in) return Status::IOError("open " + dir + "/" + name);
    auto size = static_cast<std::streamsize>(in.tellg());
    std::string data(static_cast<size_t>(size), '\0');
    in.seekg(0);
    if (size > 0) in.read(data.data(), size);
    if (!in) return Status::IOError("read " + dir + "/" + name);
    auto inode = std::make_shared<Inode>();
    inode->name = name;
    inode->data = std::move(data);
    inode->logical_size = logical;
    files_[name] = std::move(inode);
  }
  return Status::OK();
}

std::vector<std::string> SimFs::GetChildren() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, inode] : files_) names.push_back(name);
  return names;
}

// ---------------- WritableFile ----------------

WritableFile::WritableFile(SimFs* fs, std::shared_ptr<Inode> inode)
    : fs_(fs), inode_(std::move(inode)),
      writeback_chunk_(fs->writeback_chunk()) {}

WritableFile::~WritableFile() {
  // No device I/O from a destructor (it may run outside the simulation);
  // dirty bytes simply remain in the page cache.
  closed_ = true;
  inode_->open_for_write = false;
}

uint64_t WritableFile::logical_size() const { return inode_->logical_size; }
uint64_t WritableFile::physical_size() const { return inode_->data.size(); }

Status WritableFile::Append(const Slice& physical, uint64_t logical) {
  if (closed_) return Status::InvalidArgument("append to closed file");
  inode_->data.append(physical.data(), physical.size());
  inode_->logical_size += logical;
  inode_->dirty_logical += logical;
  inode_->dirty_physical += physical.size();
  if (writeback_chunk_ != kLazyWriteback &&
      inode_->dirty_logical >= writeback_chunk_) {
    return WriteBack(/*partial=*/false);
  }
  return Status::OK();
}

Status WritableFile::WriteBack(bool partial) {
  const uint64_t page = fs_->ssd_->config().page_size;
  const uint64_t chunk =
      writeback_chunk_ == kLazyWriteback ? page : writeback_chunk_;
  uint64_t dirty = inode_->dirty_logical;
  uint64_t to_write = partial ? dirty : dirty - (dirty % chunk);
  if (to_write == 0) return Status::OK();
  // Sector-granular accounting; the final partial sector of a file is only
  // charged once, at the forced (Sync) writeback.
  uint64_t sectors = partial ? (to_write + page - 1) / page : to_write / page;
  if (sectors == 0) return Status::OK();
  std::vector<Extent> extents;
  Status s = fs_->AllocSectors(sectors, &extents);
  if (!s.ok()) return s;
  for (const Extent& e : extents) {
    Status ws = device_side_
                    ? fs_->ssd_->BlockWriteInternal(fs_->nsid_, e.lba,
                                                    e.sectors)
                    : fs_->ssd_->BlockWrite(fs_->nsid_, e.lba, e.sectors);
    if (!ws.ok()) return ws;
  }
  for (Extent& e : extents) {
    if (!inode_->extents.empty() &&
        inode_->extents.back().lba + inode_->extents.back().sectors == e.lba) {
      inode_->extents.back().sectors += e.sectors;
    } else {
      inode_->extents.push_back(e);
    }
  }
  inode_->allocated_sectors += sectors;
  // Retire the written share of the dirty physical bytes proportionally.
  uint64_t phys_written =
      dirty == 0 ? inode_->dirty_physical
                 : static_cast<uint64_t>(
                       static_cast<double>(inode_->dirty_physical) *
                       static_cast<double>(to_write) /
                       static_cast<double>(dirty));
  phys_written = std::min(inode_->dirty_physical, phys_written);
  inode_->dirty_physical -= phys_written;
  inode_->dirty_logical -= std::min(inode_->dirty_logical, to_write);
  if (inode_->dirty_logical == 0) {
    phys_written += inode_->dirty_physical;
    inode_->dirty_physical = 0;
  }
  // Written back, but only durable once a BlockFlush covers it.
  inode_->unsynced_logical += to_write;
  inode_->unsynced_physical += phys_written;
  return Status::OK();
}

Status WritableFile::Flush() {
  if (closed_) return Status::InvalidArgument("flush of closed file");
  return WriteBack(/*partial=*/true);
}

Status WritableFile::Sync() {
  Status s = Flush();
  if (!s.ok()) return s;
  s = fs_->ssd_->BlockFlush(fs_->nsid_);
  if (!s.ok()) return s;
  fs_->MarkAllSynced();
  return Status::OK();
}

Status WritableFile::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  inode_->open_for_write = false;
  return Status::OK();
}

// ---------------- RandomAccessFile ----------------

Status RandomAccessFile::Read(uint64_t offset, size_t n,
                              std::string* out) const {
  out->clear();
  const uint64_t physical = inode_->data.size();
  if (offset >= physical) return Status::OK();  // EOF: empty read
  n = std::min<uint64_t>(n, physical - offset);
  // Charge device time in logical bytes, proportional to the physical slice,
  // rounded up to whole sectors (device reads are page-granular).
  const uint64_t page = fs_->ssd_->config().page_size;
  double scale =
      physical == 0 ? 1.0
                    : static_cast<double>(inode_->logical_size) /
                          static_cast<double>(physical);
  uint64_t logical_bytes = static_cast<uint64_t>(
      static_cast<double>(n) * std::max(1.0, scale) + 0.5);
  uint64_t sectors = std::max<uint64_t>(1, (logical_bytes + page - 1) / page);
  // The LBA only matters for bounds accounting (timing is LBA-independent),
  // so clamp it inside the block region.
  uint64_t cap = fs_->ssd_->BlockCapacitySectors(fs_->nsid_);
  sectors = std::min(sectors, cap);
  uint64_t lba = inode_->extents.empty() ? 0 : inode_->extents.front().lba;
  if (lba + sectors > cap) lba = cap - sectors;
  Status s = device_side_
                 ? fs_->ssd_->BlockReadInternal(fs_->nsid_, lba, sectors)
                 : fs_->ssd_->BlockRead(fs_->nsid_, lba, sectors);
  if (!s.ok()) return s;
  // Copy after the device wait: appended-only data makes [offset, offset+n)
  // immutable once written.
  out->assign(inode_->data, offset, n);
  if (!out->empty()) {
    sim::SimEnv* env = fs_->ssd_->env();
    if (sim::FaultAt(env, "simfs.read.bitflip")) {
      // Latent media corruption: flip one bit of the returned payload.
      sim::FaultInjector* inj = env->fault_injector();
      size_t byte = inj->Rand(out->size());
      (*out)[byte] = static_cast<char>(
          static_cast<unsigned char>((*out)[byte]) ^ (1u << inj->Rand(8)));
    }
    if (sim::FaultAt(env, "simfs.read.short")) {
      out->resize(env->fault_injector()->Rand(out->size()));
    }
  }
  return Status::OK();
}

}  // namespace kvaccel::fs
