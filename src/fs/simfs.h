// SimFs: an extent-based file system over the HybridSsd block interface —
// the stand-in for ext4 in the paper's host stack (Fig. 6a).
//
// Split of responsibilities (DESIGN.md §1): file *contents* live host-side in
// the inode (the compact physical encoding), while the device carries timing,
// capacity and FTL state. Each file tracks two sizes:
//   - physical: bytes actually buffered in memory (compact Value encodings);
//   - logical:  bytes the file represents on the device (synthetic values
//     count at full size). All LBA allocation and I/O timing uses the
//     logical size, so bandwidth behaviour matches a real-bytes run.
//
// Page-cache model: appends land in the in-memory inode ("page cache") and
// become dirty bytes. Dirty bytes reach the device when
//   - they exceed the file's writeback chunk (streaming files: SSTs), or
//   - the file is Sync()ed (SSTs at finish, MANIFEST per edit), or never —
// a file whose writeback chunk is kLazyWriteback only writes on Sync. Close()
// does NOT write back, and DeleteFile drops dirty bytes without any device
// I/O. This mirrors ext4 + unsynced-WAL db_bench behaviour, where a WAL
// deleted right after its memtable flushed often never touches the device —
// which is what lets write bursts run at memtable speed (paper Fig. 2's
// 150-200 Kops/s peaks).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "ssd/hybrid_ssd.h"

namespace kvaccel::fs {

struct Extent {
  uint64_t lba = 0;
  uint64_t sectors = 0;
};

class SimFs;

// Sentinel writeback chunk: never write back except on Sync().
constexpr uint64_t kLazyWriteback = UINT64_MAX;

// Internal file state; exposed for tests/introspection.
struct Inode {
  std::string name;
  std::string data;           // physical (compact) bytes ("page cache")
  uint64_t logical_size = 0;  // device-accounted bytes
  uint64_t allocated_sectors = 0;
  std::vector<Extent> extents;
  bool open_for_write = false;
  // Appended but not yet written back to the device.
  uint64_t dirty_logical = 0;
  uint64_t dirty_physical = 0;
  // Written back but not yet covered by a device cache flush (BlockFlush).
  // A power cut may tear these when the simfs.powercut.torn fault is armed.
  uint64_t unsynced_logical = 0;
  uint64_t unsynced_physical = 0;
};

class WritableFile {
 public:
  WritableFile(SimFs* fs, std::shared_ptr<Inode> inode);
  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  // Appends `physical` bytes representing `logical` device bytes.
  Status Append(const Slice& physical, uint64_t logical);
  Status Append(const Slice& physical) {
    return Append(physical, physical.size());
  }
  // Forces buffered data to the device (partial trailing sector included).
  Status Flush();
  // Flush + device cache flush (fsync).
  Status Sync();
  // Marks the handle closed. Dirty bytes stay in the page cache (readable,
  // dropped for free on delete, lost on SimFs::DropAllDirty "power cut").
  Status Close();
  // Per-file writeback threshold; kLazyWriteback = only Sync writes back.
  void set_writeback_chunk(uint64_t bytes) { writeback_chunk_ = bytes; }
  // Device-side writer (NDP offload): writebacks charge NAND only, no PCIe —
  // the bytes are produced by the firmware merge, not DMA'd from the host.
  void set_device_side(bool v) { device_side_ = v; }

  uint64_t logical_size() const;
  uint64_t physical_size() const;

 private:
  friend class SimFs;
  // Writes buffered logical bytes to the device. When `partial` is false,
  // only whole writeback chunks are issued and the remainder stays buffered.
  Status WriteBack(bool partial);

  SimFs* fs_;
  std::shared_ptr<Inode> inode_;
  uint64_t writeback_chunk_;
  bool closed_ = false;
  bool device_side_ = false;
};

class RandomAccessFile {
 public:
  RandomAccessFile(SimFs* fs, std::shared_ptr<Inode> inode)
      : fs_(fs), inode_(std::move(inode)) {}

  // Reads `n` physical bytes at physical `offset`; device timing is charged
  // proportionally in logical bytes. Short reads at EOF return the available
  // prefix.
  Status Read(uint64_t offset, size_t n, std::string* out) const;

  // Device-side reader (NDP offload): reads charge NAND only, no PCIe — the
  // bytes feed the firmware merge and never cross the link.
  void set_device_side(bool v) { device_side_ = v; }

  uint64_t physical_size() const { return inode_->data.size(); }
  uint64_t logical_size() const { return inode_->logical_size; }

 private:
  SimFs* fs_;
  std::shared_ptr<Inode> inode_;
  bool device_side_ = false;
};

class SimFs {
 public:
  // Files live in the block region of namespace `nsid` on `ssd`.
  SimFs(ssd::HybridSsd* ssd, int nsid, uint64_t writeback_chunk = 256 * 1024);

  Status NewWritableFile(const std::string& name,
                         std::unique_ptr<WritableFile>* file);
  Status NewRandomAccessFile(const std::string& name,
                             std::unique_ptr<RandomAccessFile>* file) const;
  Status DeleteFile(const std::string& name);
  Status RenameFile(const std::string& from, const std::string& to);
  bool FileExists(const std::string& name) const;
  Status GetFileSize(const std::string& name, uint64_t* logical,
                     uint64_t* physical = nullptr) const;
  std::vector<std::string> GetChildren() const;

  // Power-cut semantics: every file loses its dirty (never-written-back)
  // tail, as the real page cache would across a crash. With the
  // simfs.powercut.torn fault armed, a file may additionally lose its
  // written-back-but-unflushed tail (device write cache torn by the cut).
  void DropAllDirty();

  // Host-directory round trip for offline tooling (kvaccel_check): dump
  // writes every file's physical bytes to `<dir>/<name>` plus a KVX_INDEX
  // recording logical sizes; load repopulates this SimFs from such a dump.
  // Loaded files carry no extents or dirty state — reads are served from the
  // inode page cache and device timing stays well-defined (LBA-clamped).
  Status DumpToHostDir(const std::string& dir) const;
  Status LoadFromHostDir(const std::string& dir);

  uint64_t free_sectors() const { return free_sectors_; }
  uint64_t total_sectors() const { return total_sectors_; }
  uint64_t writeback_chunk() const { return writeback_chunk_; }
  ssd::HybridSsd* ssd() { return ssd_; }
  int nsid() const { return nsid_; }

 private:
  friend class WritableFile;
  friend class RandomAccessFile;

  // Allocates `sectors` (possibly as multiple extents). Fails with NoSpace.
  Status AllocSectors(uint64_t sectors, std::vector<Extent>* out);
  void FreeExtents(const std::vector<Extent>& extents);
  // A BlockFlush is a device-wide cache flush: every file's unsynced bytes
  // become durable.
  void MarkAllSynced();

  ssd::HybridSsd* ssd_;
  int nsid_;
  uint64_t writeback_chunk_;
  uint64_t total_sectors_;
  uint64_t free_sectors_;
  std::map<uint64_t, uint64_t> free_map_;  // lba -> run length (sectors)
  std::map<std::string, std::shared_ptr<Inode>> files_;
};

}  // namespace kvaccel::fs
