#include "core/replicated_kvaccel_db.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string>
#include <utility>

#include "fs/simfs.h"
#include "sim/backoff.h"
#include "sim/fault.h"

namespace kvaccel::core {

namespace {
bool IsTransient(const Status& s) {
  return s.IsIOError() || s.IsBusy() || s.IsTryAgain();
}
bool IsStaleEpoch(const Status& s) {
  return s.IsAborted() &&
         s.ToString().find("stale epoch") != std::string::npos;
}
// Fixed per-record framing overhead charged to the link (type, seq range,
// counts, checksum).
constexpr uint64_t kRecordHeaderBytes = 16;
// Per-entry framing of a redirect intent (key length, host_seq, tombstone).
constexpr uint64_t kIntentEntryBytes = 24;
// Jitter-seed offset so the backup node's retry streams decorrelate from the
// primary's (same spirit as the sharded router's per-shard offsets).
constexpr uint64_t kBackupSeedOffset = 0x51DEC0DE;
}  // namespace

// ---------------- Durable fencing epoch ----------------

uint64_t ReadFenceEpoch(fs::SimFs* fs) {
  if (fs == nullptr || !fs->FileExists("FENCE")) return 0;
  uint64_t size = 0;
  if (!fs->GetFileSize("FENCE", &size).ok() || size == 0 || size > 32) {
    return 0;
  }
  std::unique_ptr<fs::RandomAccessFile> file;
  if (!fs->NewRandomAccessFile("FENCE", &file).ok()) return 0;
  std::string buf;
  if (!file->Read(0, size, &buf).ok()) return 0;
  return strtoull(buf.c_str(), nullptr, 10);
}

Status WriteFenceEpoch(fs::SimFs* fs, uint64_t epoch) {
  if (fs == nullptr) return Status::InvalidArgument("fence: null fs");
  std::unique_ptr<fs::WritableFile> file;
  Status s = fs->NewWritableFile("FENCE.tmp", &file);
  if (!s.ok()) return s;
  s = file->Append(std::to_string(epoch));
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) return s;
  return fs->RenameFile("FENCE.tmp", "FENCE");
}

ReplicatedKvaccelDB::ReplicatedKvaccelDB(const ReplOptions& options,
                                         const ReplNode& backup_node,
                                         sim::SimEnv* env)
    : options_(options),
      backup_node_(backup_node),
      env_(env),
      net_rng_(options.net_jitter_seed) {}

ReplicatedKvaccelDB::~ReplicatedKvaccelDB() { assert(closed_); }

Status ReplicatedKvaccelDB::Open(const lsm::DbOptions& main_options,
                                 const KvaccelOptions& kv_options,
                                 const ReplOptions& repl_options,
                                 const ReplNode& primary,
                                 const ReplNode& backup, sim::SimEnv* env,
                                 std::unique_ptr<ReplicatedKvaccelDB>* db) {
  if (primary.ssd == nullptr || primary.fs == nullptr ||
      primary.host_cpu == nullptr || backup.ssd == nullptr ||
      backup.fs == nullptr || backup.host_cpu == nullptr) {
    return Status::InvalidArgument("repl: both nodes need ssd/fs/cpu");
  }
  auto impl = std::unique_ptr<ReplicatedKvaccelDB>(
      new ReplicatedKvaccelDB(repl_options, backup, env));
  impl->link_ = std::make_unique<sim::NetLink>(
      env, "netlink", repl_options.net_bytes_per_sec,
      repl_options.net_latency);

  // Adopt the durable fencing epoch: the max of the configured epoch and the
  // FENCE files on either node (a rejoined ex-primary carries the bumped
  // epoch of the promotion that deposed it), persisted back to both nodes so
  // a later split finds it even on a wiped peer.
  impl->epoch_ = std::max(repl_options.epoch,
                          std::max(ReadFenceEpoch(primary.fs),
                                   ReadFenceEpoch(backup.fs)));
  Status s = WriteFenceEpoch(primary.fs, impl->epoch_);
  if (s.ok()) s = WriteFenceEpoch(backup.fs, impl->epoch_);
  if (!s.ok()) {
    impl->Close();
    return s;
  }

  // Backup first, so the primary's very first shipped record has a home.
  // The standby runs passive: no redirection (its Dev-LSM is a mirror fed by
  // the replication stream, not by its own Detector), no rollback actor (it
  // drains only on the primary's kRollback signal), synced WAL in both ack
  // modes so applied => durable => served after promotion.
  lsm::DbOptions bopts = main_options;
  bopts.wal_sync = true;
  bopts.wal_shipper = nullptr;
  bopts.manifest_shipper = nullptr;
  bopts.io_retry_jitter_seed += kBackupSeedOffset;
  KvaccelOptions bkv = kv_options;
  bkv.redirection_enabled = false;
  bkv.rollback = RollbackScheme::kDisabled;
  bkv.scrub.enabled = false;
  bkv.kv_device = nullptr;
  bkv.external_dev = backup.dev;
  bkv.redirect_admission = nullptr;
  bkv.redirect_arbiter = nullptr;
  bkv.redirect_shipper = nullptr;
  bkv.rollback_shipper = nullptr;
  bkv.ndp_device = backup.ndp;
  bkv.dev_retry_jitter_seed += kBackupSeedOffset;
  lsm::DbEnv benv;
  benv.env = env;
  benv.ssd = backup.ssd;
  benv.fs = backup.fs;
  benv.host_cpu = backup.host_cpu;
  impl->dev_retry_opts_ = bkv;
  s = KvaccelDB::Open(bopts, bkv, benv, &impl->backup_);
  if (!s.ok()) {
    impl->Close();
    return s;
  }

  if (repl_options.ack == ReplAck::kAsync) {
    ReplicatedKvaccelDB* self = impl.get();
    impl->shipper_ = env->Spawn("repl-shipper", [self] { self->ShipperLoop(); });
  }

  // Primary with the shipping hooks installed. Its Open drains any surviving
  // Dev-LSM residue into its Main-LSM first (§VI-D); Bootstrap below then
  // streams the merged state across, so hook order doesn't lose anything.
  ReplicatedKvaccelDB* self = impl.get();
  lsm::DbOptions popts = main_options;
  popts.wal_shipper = [self](const lsm::WriteBatch& group,
                             uint64_t first_seq) {
    return self->ShipWalBatch(group, first_seq);
  };
  popts.manifest_shipper = [self](const std::string& edit,
                                  uint64_t last_seq) {
    self->ShipManifestEdit(edit, last_seq);
  };
  KvaccelOptions pkv = kv_options;
  pkv.external_dev = primary.dev;
  pkv.redirect_shipper =
      [self](const std::vector<devlsm::DevLsm::BatchPut>& entries) {
        return self->ShipRedirectIntent(entries);
      };
  pkv.rollback_shipper = [self] { self->ShipRollback(); };
  pkv.ndp_device = primary.ndp;
  lsm::DbEnv penv;
  penv.env = env;
  penv.ssd = primary.ssd;
  penv.fs = primary.fs;
  penv.host_cpu = primary.host_cpu;
  s = KvaccelDB::Open(popts, pkv, penv, &impl->primary_);
  if (!s.ok()) {
    impl->Close();
    return s;
  }

  s = impl->Bootstrap();
  if (!s.ok()) {
    impl->Close();
    return s;
  }
  // After bootstrap the backup holds everything up to the primary's current
  // sequence clock: that is the initial applied watermark and the WAL
  // high-water mark late/duplicate records are compared against.
  impl->applied_seq_ = impl->primary_->main()->LastSequence();
  impl->backup_wal_seq_ = impl->backup_->main()->LastSequence();

  // Lease starts fresh; the heartbeat actor keeps it renewed while idle.
  impl->lease_expiry_ = env->Now() + repl_options.lease_duration;
  impl->backup_last_applied_ns_ = env->Now();
  if (repl_options.heartbeat_period > 0) {
    impl->heartbeat_ =
        env->Spawn("repl-heartbeat", [self] { self->HeartbeatLoop(); });
  }
  *db = std::move(impl);
  return Status::OK();
}

// ---------------- Fencing ----------------

void ReplicatedKvaccelDB::NoteLeaseState() {
  if (env_->Now() >= lease_expiry_ && !lease_lapsed_noted_) {
    lease_lapsed_noted_ = true;
    stats_.lease_expirations++;
  }
}

void ReplicatedKvaccelDB::RenewLease() {
  if (deposed_) return;
  Nanos fresh = env_->Now() + options_.lease_duration;
  if (fresh > lease_expiry_) lease_expiry_ = fresh;
  lease_lapsed_noted_ = false;
}

Status ReplicatedKvaccelDB::CheckFence() {
  NoteLeaseState();
  if (!fenced()) return Status::OK();
  stats_.fenced_write_rejects++;
  return Status::Busy(deposed_
                          ? "repl: primary deposed (stale fencing epoch)"
                          : "repl: primary fenced (lease expired)");
}

void ReplicatedKvaccelDB::HeartbeatLoop() {
  for (;;) {
    {
      sim::SimLockGuard l(hb_mu_);
      if (hb_stop_) break;
      hb_cv_.WaitFor(hb_mu_, options_.heartbeat_period);
      if (hb_stop_) break;
    }
    NoteLeaseState();
    if (sim::SimCrashed(env_) || deposed_) continue;
    Record rec;
    rec.type = Record::Type::kHeartbeat;
    rec.bytes = kRecordHeaderBytes;
    rec.epoch = epoch_;
    sim::SimLockGuard l(ship_mu_);
    // SendAndApply renews the lease on success; a partition leaves the lease
    // to lapse and a stale-epoch rejection deposes the primary.
    (void)SendAndApply(&rec, /*forever=*/false);
  }
}

Status ReplicatedKvaccelDB::DetachBackup(bool force) {
  if (backup_ == nullptr) return Status::OK();
  if (!force && env_->Now() < backup_promote_safe_at()) {
    return Status::Busy(
        "repl: primary lease may still be live; detaching now could ack a "
        "write on both sides of the split");
  }
  detach_requested_ = true;
  if (shipper_ != nullptr) {
    // Park the shipper between records; a record stuck in transient retries
    // bails out on detach_requested_ and is counted as lost tail.
    sim::SimLockGuard l(q_mu_);
    q_cv_.NotifyAll();
    while (shipper_busy_) q_cv_.Wait(q_mu_);
  }
  sim::SimLockGuard l(ship_mu_);  // serialize with sync ships and heartbeats
  Status s = backup_->Close();
  backup_.reset();
  return s;
}

// ---------------- Foreground forwarding ----------------

Status ReplicatedKvaccelDB::Write(const lsm::WriteOptions& wopts,
                                  lsm::WriteBatch* batch) {
  Status s = CheckFence();
  if (!s.ok()) return s;
  return primary_->Write(wopts, batch);
}

Status ReplicatedKvaccelDB::Put(const lsm::WriteOptions& wopts,
                                const Slice& key, const Value& value) {
  Status s = CheckFence();
  if (!s.ok()) return s;
  return primary_->Put(wopts, key, value);
}

Status ReplicatedKvaccelDB::Delete(const lsm::WriteOptions& wopts,
                                   const Slice& key) {
  Status s = CheckFence();
  if (!s.ok()) return s;
  return primary_->Delete(wopts, key);
}

Status ReplicatedKvaccelDB::Get(const lsm::ReadOptions& ropts,
                                const Slice& key, Value* value) {
  return primary_->Get(ropts, key, value);
}

std::unique_ptr<lsm::Iterator> ReplicatedKvaccelDB::NewIterator(
    const lsm::ReadOptions& ropts) {
  return primary_->NewIterator(ropts);
}

Status ReplicatedKvaccelDB::FlushAll() { return primary_->FlushAll(); }

Status ReplicatedKvaccelDB::WaitForCompactionIdle() {
  return primary_->WaitForCompactionIdle();
}

Status ReplicatedKvaccelDB::RollbackNow() {
  Status s = CheckFence();
  if (!s.ok()) return s;
  return primary_->RollbackNow();
}

Status ReplicatedKvaccelDB::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (heartbeat_ != nullptr) {
    {
      sim::SimLockGuard l(hb_mu_);
      hb_stop_ = true;
      hb_cv_.NotifyAll();
    }
    env_->Join(heartbeat_);
    heartbeat_ = nullptr;
  }
  if (shipper_ != nullptr) {
    {
      sim::SimLockGuard l(q_mu_);
      stopping_ = true;
      paused_ = false;
      q_cv_.NotifyAll();
    }
    // The loop drains the remaining queue before exiting; once the pair has
    // crashed each leftover record fails fast and is counted as lost tail.
    env_->Join(shipper_);
    shipper_ = nullptr;
  }
  Status first;
  if (primary_ != nullptr) first = primary_->Close();
  if (backup_ != nullptr) {
    Status s = backup_->Close();
    if (first.ok()) first = s;
  }
  return first;
}

// ---------------- Primary-side hooks ----------------

Status ReplicatedKvaccelDB::ShipWalBatch(const lsm::WriteBatch& group,
                                         uint64_t first_seq) {
  Record rec;
  rec.type = Record::Type::kWalBatch;
  rec.batch.Append(group);
  rec.batch.SetSequence(first_seq);
  rec.first_seq = first_seq;
  rec.count = group.Count();
  rec.last_seq = first_seq + rec.count - 1;
  rec.bytes = group.Contents().size() + kRecordHeaderBytes;
  stats_.wal_records++;
  stats_.wal_entries += rec.count;
  last_assigned_seq_ = std::max(last_assigned_seq_, rec.last_seq);
  return Ship(std::move(rec));
}

Status ReplicatedKvaccelDB::ShipRedirectIntent(
    const std::vector<devlsm::DevLsm::BatchPut>& entries) {
  if (entries.empty()) return Status::OK();
  Record rec;
  rec.type = Record::Type::kRedirectIntent;
  rec.entries = entries;
  rec.first_seq = entries.front().host_seq;
  rec.count = static_cast<uint32_t>(entries.size());
  rec.last_seq = entries.back().host_seq;
  rec.bytes = kRecordHeaderBytes;
  for (const auto& e : entries) {
    rec.bytes += e.key.size() + e.value.logical_size() + kIntentEntryBytes;
  }
  stats_.intent_records++;
  stats_.intent_entries += rec.count;
  last_assigned_seq_ = std::max(last_assigned_seq_, rec.last_seq);
  return Ship(std::move(rec));
}

void ReplicatedKvaccelDB::ShipRollback() {
  Record rec;
  rec.type = Record::Type::kRollback;
  rec.bytes = kRecordHeaderBytes;
  stats_.rollback_records++;
  // Best-effort by design: a lost rollback signal only delays the backup's
  // mirror drain (the mirror is a superset; promote drains it by sequence
  // comparison anyway).
  (void)Ship(std::move(rec));
}

void ReplicatedKvaccelDB::ShipManifestEdit(const std::string& edit,
                                           uint64_t last_seq) {
  (void)last_seq;
  Record rec;
  rec.type = Record::Type::kManifestEdit;
  rec.bytes = edit.size() + kRecordHeaderBytes;
  rec.epoch = epoch_;
  stats_.manifest_records++;
  if (options_.ack == ReplAck::kSync) {
    // Advisory: charge the wire inline but never fail the version install.
    sim::SimLockGuard l(ship_mu_);
    if (SendOverLink(rec.bytes).ok()) {
      stats_.records_applied++;
    } else {
      stats_.manifest_drops++;
    }
    return;
  }
  // Async: never block a version install on queue pressure — drop instead.
  sim::SimLockGuard l(q_mu_);
  if (stopping_ || queue_.size() >= options_.async_queue_cap ||
      queue_bytes_ >= options_.async_queue_max_bytes) {
    stats_.manifest_drops++;
    return;
  }
  queue_bytes_ += rec.bytes;
  queue_.push_back(std::move(rec));
  stats_.async_queue_peak =
      std::max(stats_.async_queue_peak, static_cast<uint64_t>(queue_.size()));
  stats_.async_queue_bytes_peak =
      std::max(stats_.async_queue_bytes_peak, queue_bytes_);
  q_cv_.NotifyAll();
}

// ---------------- Shipping machinery ----------------

Status ReplicatedKvaccelDB::Ship(Record rec) {
  rec.epoch = epoch_;
  if (options_.ack == ReplAck::kSync) {
    Nanos t0 = env_->Now();
    sim::SimLockGuard l(ship_mu_);  // FIFO: one record on the wire at a time
    Status s = SendAndApply(&rec, /*forever=*/false);
    stats_.sync_ship_ns += env_->Now() - t0;
    if (!s.ok()) stats_.ship_failures++;
    return s;
  }
  sim::SimLockGuard l(q_mu_);
  while ((queue_.size() >= options_.async_queue_cap ||
          queue_bytes_ >= options_.async_queue_max_bytes) &&
         !stopping_) {
    if (sim::SimCrashed(env_)) {
      return Status::IOError("repl: pair down");
    }
    // Timed wait: the crash latch can be set by any thread, so poll it.
    q_cv_.WaitFor(q_mu_, FromMicros(200));
  }
  if (stopping_) return Status::IOError("repl: shutting down");
  queue_bytes_ += rec.bytes;
  queue_.push_back(std::move(rec));
  stats_.async_queue_peak =
      std::max(stats_.async_queue_peak, static_cast<uint64_t>(queue_.size()));
  stats_.async_queue_bytes_peak =
      std::max(stats_.async_queue_bytes_peak, queue_bytes_);
  q_cv_.NotifyAll();
  return Status::OK();
}

void ReplicatedKvaccelDB::ShipperLoop() {
  sim::SimLockGuard l(q_mu_);
  for (;;) {
    while (!stopping_ && (paused_ || queue_.empty())) {
      q_cv_.Wait(q_mu_);
    }
    if (queue_.empty()) {
      if (stopping_) break;
      continue;
    }
    Record rec = std::move(queue_.front());
    queue_.pop_front();
    queue_bytes_ -= rec.bytes;
    // net.reorder: a later queued record overtakes this one on the wire.
    bool swapped = false;
    Record held;
    if (!queue_.empty() && sim::FaultAt(env_, "net.reorder")) {
      stats_.reorder_swaps++;
      swapped = true;
      held = std::move(rec);
      rec = std::move(queue_.front());
      queue_.pop_front();
      queue_bytes_ -= rec.bytes;
    }
    shipper_busy_ = true;
    q_cv_.NotifyAll();  // backpressured producers may refill the freed slot
    q_mu_.Unlock();
    Status s = SendAndApply(&rec, /*forever=*/true);
    Status hs = Status::OK();
    if (swapped) hs = SendAndApply(&held, /*forever=*/true);
    q_mu_.Lock();
    shipper_busy_ = false;
    if (!s.ok()) {
      stats_.ship_failures++;
      RecordLoss(rec);
    }
    if (swapped && !hs.ok()) {
      stats_.ship_failures++;
      RecordLoss(held);
    }
    q_cv_.NotifyAll();
  }
}

void ReplicatedKvaccelDB::RecordLoss(const Record& rec) {
  if (rec.type == Record::Type::kManifestEdit ||
      rec.type == Record::Type::kRollback ||
      rec.type == Record::Type::kHeartbeat) {
    if (rec.type == Record::Type::kManifestEdit) stats_.manifest_drops++;
    return;
  }
  stats_.lost_entries += rec.count;
  if (stats_.lost_seq_min == 0 || rec.first_seq < stats_.lost_seq_min) {
    stats_.lost_seq_min = rec.first_seq;
  }
}

Status ReplicatedKvaccelDB::SendAndApply(Record* rec, bool forever) {
  Nanos backoff = 0;
  for (;;) {
    Status s = SendOverLink(rec->bytes);
    if (s.ok()) s = ApplyOnBackup(rec);
    if (s.ok()) {
      // The record is on the peer even if the ack below is lost: the applied
      // watermark and the promote-safety clock advance before the ack draw.
      if (rec->last_seq > 0) {
        applied_seq_ = std::max(applied_seq_, rec->last_seq);
      }
      backup_last_applied_ns_ = env_->Now();
      if (sim::FaultAt(env_, "net.partition.ack")) {
        stats_.ack_losses++;
        s = Status::IOError("repl: ack lost (partitioned)");
      }
    }
    if (s.ok()) {
      if (sim::FaultAt(env_, "net.dup")) {
        // Duplicate delivery: the record charges the wire and applies a
        // second time; exact-sequence application makes the copy a no-op.
        stats_.dup_records++;
        if (SendOverLink(rec->bytes).ok()) (void)ApplyOnBackup(rec);
      }
      if (rec->type == Record::Type::kHeartbeat) {
        stats_.heartbeat_records++;
      } else {
        stats_.records_applied++;
      }
      RenewLease();
      return Status::OK();
    }
    if (IsStaleEpoch(s)) {
      // The peer (or its durable FENCE file) is at a newer fencing epoch:
      // this primary was deposed while partitioned. Permanent, by design.
      stats_.fenced_records++;
      deposed_ = true;
      return s;
    }
    if (!forever || sim::SimCrashed(env_) || !IsTransient(s) ||
        detach_requested_) {
      return s;
    }
    // Async keeps cycling until the pair crashes: a transient must not
    // punch a hole in the applied prefix.
    backoff = sim::NextDecorrelatedDelay(&net_rng_, options_.net_retry_backoff,
                                         options_.net_retry_backoff_cap,
                                         backoff);
    env_->SleepFor(backoff);
  }
}

Status ReplicatedKvaccelDB::SendOverLink(uint64_t bytes) {
  Status s = link_->Send(bytes);
  Nanos backoff = 0;
  for (int attempt = 0; !s.ok() && !sim::SimCrashed(env_) &&
                        attempt < options_.net_retry_limit;
       attempt++) {
    stats_.net_retries++;
    backoff = sim::NextDecorrelatedDelay(&net_rng_, options_.net_retry_backoff,
                                         options_.net_retry_backoff_cap,
                                         backoff);
    env_->SleepFor(backoff);
    s = link_->Send(bytes);
  }
  if (s.ok()) stats_.repl_bytes += bytes;
  return s;
}

Status ReplicatedKvaccelDB::ApplyOnBackup(Record* rec) {
  if (backup_ == nullptr) {
    // The backup node was detached for promotion. Its durable FENCE epoch is
    // the fencing authority: once promotion bumped it, any record from this
    // (now stale) primary is rejected and the sender deposes itself.
    if (rec->epoch < ReadFenceEpoch(backup_node_.fs)) {
      return Status::Aborted("repl: fenced: stale epoch");
    }
    return Status::Aborted("repl: backup detached");
  }
  if (rec->epoch < epoch_) {
    return Status::Aborted("repl: fenced: stale epoch");
  }
  switch (rec->type) {
    case Record::Type::kWalBatch: {
      if (rec->first_seq <= backup_wal_seq_) {
        // Duplicate or reordered delivery: the backup WAL must stay
        // sequence-ascending, so a late record takes the WAL-bypassing
        // exact-sequence ingest path instead (idempotent — newer versions
        // of the same key already applied keep winning by sequence).
        std::vector<lsm::IngestEntry> ing;
        ing.reserve(rec->count);
        uint64_t seq = rec->first_seq;
        Status ps = rec->batch.ForEach(
            [&](lsm::ValueType type, const Slice& key, const Value& value) {
              lsm::IngestEntry e;
              e.key = key.ToString();
              e.value = value;
              e.tombstone = type != lsm::ValueType::kValue;
              e.seq = seq++;
              ing.push_back(std::move(e));
            });
        if (!ps.ok()) return ps;
        return IngestOnBackup(std::move(ing));
      }
      lsm::WriteOptions wo;
      wo.sync = true;
      wo.replicated_seq = rec->first_seq;
      Status s = backup_->main()->Write(wo, &rec->batch);
      if (s.ok()) backup_wal_seq_ = std::max(backup_wal_seq_, rec->last_seq);
      return s;
    }
    case Record::Type::kRedirectIntent:
      return ApplyIntentOnBackup(rec);
    case Record::Type::kRollback:
      // Mirror the primary's drain: move the backup's Dev-LSM mirror into
      // its Main-LSM by sequence comparison, then reset the mirror.
      return backup_->CrashMetadataAndRecover(nullptr);
    case Record::Type::kManifestEdit:
      return Status::OK();  // advisory; bytes were the payload
    case Record::Type::kHeartbeat:
      return Status::OK();  // the round trip is the payload
  }
  return Status::OK();
}

Status ReplicatedKvaccelDB::ApplyIntentOnBackup(Record* rec) {
  Detector* det = backup_->detector();
  devlsm::DevLsm* dev = backup_->dev();
  const KvaccelOptions& kv = dev_retry_opts_;
  if (det->device_healthy(env_->Now())) {
    // Mirror into the backup's own Dev-LSM, through the same transient-retry
    // + circuit-breaker discipline the primary's Controller uses, so a
    // backup-side device fault degrades exactly like a primary-side one.
    Status s = dev->PutCompound(rec->entries);
    Nanos backoff = 0;
    int attempt = 0;
    while (!s.ok() && IsTransient(s) && !sim::SimCrashed(env_) &&
           attempt < kv.dev_retry_limit) {
      attempt++;
      stats_.net_retries++;
      backoff = sim::NextDecorrelatedDelay(&net_rng_, kv.dev_retry_backoff,
                                           kv.dev_retry_backoff_cap, backoff);
      env_->SleepFor(backoff);
      s = dev->PutCompound(rec->entries);
    }
    if (s.ok()) {
      det->ReportDeviceSuccess();
      return s;
    }
    if (IsTransient(s)) det->ReportDeviceFailure(env_->Now());
    if (sim::SimCrashed(env_)) return s;
    // Fall through: device unhealthy — degrade to the host path below. The
    // half-open probe (device_healthy after the cooldown) routes a later
    // intent back through the device automatically.
  }
  // Host-path degrade: ingest at the original sequences. Device-path data
  // never rides the WAL (same rule as the rollback drain), which also keeps
  // the backup WAL's sequence order intact — intent sequences can be older
  // than WAL batches already applied.
  std::vector<lsm::IngestEntry> ing;
  ing.reserve(rec->entries.size());
  for (const auto& e : rec->entries) {
    lsm::IngestEntry ie;
    ie.key = e.key;
    ie.value = e.value;
    ie.tombstone = e.tombstone;
    ie.seq = e.host_seq;
    ing.push_back(std::move(ie));
  }
  Status s = IngestOnBackup(std::move(ing));
  if (s.ok()) stats_.backup_dev_fallbacks++;
  return s;
}

Status ReplicatedKvaccelDB::IngestOnBackup(std::vector<lsm::IngestEntry> ing) {
  // Ingest wants strictly ascending keys; within-batch duplicates keep the
  // newest version (the older one was invisible anyway).
  std::stable_sort(ing.begin(), ing.end(),
                   [](const lsm::IngestEntry& a, const lsm::IngestEntry& b) {
                     return a.key < b.key || (a.key == b.key && a.seq < b.seq);
                   });
  std::vector<lsm::IngestEntry> dedup;
  dedup.reserve(ing.size());
  for (auto& e : ing) {
    if (!dedup.empty() && dedup.back().key == e.key) {
      dedup.back() = std::move(e);
    } else {
      dedup.push_back(std::move(e));
    }
  }
  return backup_->main()->IngestSortedBatch(dedup);
}

// ---------------- Test hooks ----------------

void ReplicatedKvaccelDB::PauseShipping(bool paused) {
  sim::SimLockGuard l(q_mu_);
  paused_ = paused;
  q_cv_.NotifyAll();
}

void ReplicatedKvaccelDB::DrainShipping() {
  sim::SimLockGuard l(q_mu_);
  while (!queue_.empty() || shipper_busy_) {
    q_cv_.Wait(q_mu_);
  }
}

// ---------------- Bootstrap (re-pair after failover) ----------------

Status ReplicatedKvaccelDB::Bootstrap() {
  lsm::ReadOptions ro;
  uint64_t pending_bytes = 0;
  auto charge = [&](uint64_t b) -> Status {
    pending_bytes += b;
    if (pending_bytes < (256u << 10)) return Status::OK();
    Status s = SendOverLink(pending_bytes);
    pending_bytes = 0;
    return s;
  };

  // State flows in via IngestSortedBatch, never the backup's WAL: the stream
  // is in key order, not sequence order, and a WAL with regressing sequences
  // is a checker error. Ingest is the same WAL-bypassing, exact-sequence
  // path the rollback drain uses.
  std::vector<lsm::IngestEntry> batch;
  auto flush_batch = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    Status s = backup_->main()->IngestSortedBatch(batch);
    batch.clear();
    return s;
  };

  // Forward pass: every live primary key missing or stale on the backup is
  // shipped at its exact primary sequence.
  auto it = primary_->main()->NewIterator(ro);
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    std::string key = it->key().ToString();
    Value v;
    lsm::SequenceNumber pseq = 0;
    Status s = primary_->main()->GetWithSequence(ro, key, &v, &pseq);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    Value bv;
    lsm::SequenceNumber bseq = 0;
    Status bs = backup_->main()->GetWithSequence(ro, key, &bv, &bseq);
    if (!bs.ok() && !bs.IsNotFound()) return bs;
    if (bseq >= pseq) continue;  // backup already at (or past) this version
    lsm::IngestEntry e;
    e.key = key;
    e.value = v;
    e.seq = pseq;
    batch.push_back(std::move(e));
    s = charge(key.size() + v.logical_size() + kIntentEntryBytes);
    if (!s.ok()) return s;
    if (batch.size() >= 512) {
      s = flush_batch();
      if (!s.ok()) return s;
    }
  }
  if (!it->status().ok()) return it->status();
  Status s = flush_batch();
  if (!s.ok()) return s;

  // Reverse pass: keys live on the backup but deleted on the primary get the
  // primary's tombstone sequence (or a fresh one when the tombstone was
  // already elided). The backup iterator yields ascending keys, so the
  // tombstone batch is already ingest-sorted.
  auto bit = backup_->main()->NewIterator(ro);
  for (bit->SeekToFirst(); bit->Valid(); bit->Next()) {
    std::string key = bit->key().ToString();
    Value v;
    lsm::SequenceNumber pseq = 0;
    s = primary_->main()->GetWithSequence(ro, key, &v, &pseq);
    if (s.ok()) continue;  // forward pass covered it
    if (!s.IsNotFound()) return s;
    lsm::IngestEntry e;
    e.key = key;
    e.tombstone = true;
    e.seq = pseq != 0 ? pseq : primary_->main()->AllocateSequence(1);
    batch.push_back(std::move(e));
    s = charge(key.size() + kIntentEntryBytes);
    if (!s.ok()) return s;
  }
  if (!bit->status().ok()) return bit->status();
  s = flush_batch();
  if (!s.ok()) return s;
  if (pending_bytes > 0) return SendOverLink(pending_bytes);
  return Status::OK();
}

}  // namespace kvaccel::core
