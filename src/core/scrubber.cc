#include "core/scrubber.h"

#include <algorithm>
#include <vector>

namespace kvaccel::core {

void Scrubber::Start() {
  thread_ = env_->Spawn("kvaccel-scrub", [this] { Loop(); });
}

void Scrubber::Stop() {
  if (thread_ == nullptr) return;
  {
    sim::SimLockGuard l(mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  env_->Join(thread_);
  thread_ = nullptr;
}

void Scrubber::Loop() {
  sim::SimLockGuard l(mu_);
  while (!stop_) {
    if (cv_.WaitFor(mu_, options_.scrub.period)) continue;
    // The verify itself does device I/O and yields; run it unlocked so Stop
    // can interleave (same shape as RollbackManager::Loop).
    mu_.Unlock();
    StepOnce();
    mu_.Lock();
  }
}

Status Scrubber::StepOnce() {
  if (resync_deferred_) {
    stats_.deferred_for_resync++;
    return Status::OK();
  }
  if (detector_ != nullptr && detector_->stall_detected()) {
    stats_.skipped_busy++;
    return Status::OK();
  }
  std::vector<lsm::SstFileInfo> files = db_->ListSstFiles();
  if (files.empty()) return Status::OK();

  // Round-robin by file number: the smallest live number above the cursor;
  // wrapping counts a completed pass over the whole file set.
  const lsm::SstFileInfo* pick = nullptr;
  for (const auto& f : files) {
    if (f.number > cursor_ && (pick == nullptr || f.number < pick->number)) {
      pick = &f;
    }
  }
  if (pick == nullptr) {
    cursor_ = 0;
    stats_.passes++;
    for (const auto& f : files) {
      if (pick == nullptr || f.number < pick->number) pick = &f;
    }
  }
  cursor_ = pick->number;

  // Drop streaks for files no longer live (compacted away between steps).
  for (auto it = fail_streak_.begin(); it != fail_streak_.end();) {
    uint64_t number = it->first;
    bool live = std::any_of(files.begin(), files.end(), [&](const auto& f) {
      return f.number == number;
    });
    it = live ? std::next(it) : fail_streak_.erase(it);
  }

  uint64_t bytes = 0;
  Status s = db_->VerifySstFile(pick->number, &bytes);
  stats_.bytes_scanned += bytes;
  if (s.ok()) {
    stats_.files_scanned++;
    fail_streak_.erase(pick->number);
  } else if (s.IsNotFound()) {
    // Compacted away since listing: benign, not a corruption.
    s = Status::OK();
  } else {
    stats_.corruptions++;
    int streak = ++fail_streak_[pick->number];
    if (streak >= options_.scrub.escalate_after && detector_ != nullptr) {
      stats_.escalations++;
      detector_->ReportDeviceFailure(env_->Now());
      fail_streak_[pick->number] = 0;  // re-arm; don't re-trip every step
    }
  }
  return s;
}

}  // namespace kvaccel::core
