// KvaccelDB: the KVACCEL system facade (paper Fig. 7b) — RocksDB-equivalent
// Main-LSM on the block interface + Dev-LSM write buffer on the key-value
// interface of the same hybrid SSD, glued by the four software modules:
//
//   Detector          polls Main-LSM stall signals every 0.1 s
//   Controller        per-op path decision (this class's Put/Get/Delete)
//   Metadata Manager  hash table: which keys' newest version is device-side
//   Rollback Manager  drains Dev-LSM back into Main-LSM when calm
//
// Unlike the baselines, KVACCEL's Main-LSM runs with the slowdown mechanism
// OFF (paper §VI-B: "KVACCEL does not employ any slowdown mechanisms"):
// imminent stalls redirect writes to the device instead of throttling them.
#pragma once

#include <memory>

#include "common/random.h"
#include "core/config.h"
#include "core/detector.h"
#include "core/metadata_manager.h"
#include "core/scrubber.h"
#include "devlsm/dev_lsm.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "ndp/offload_planner.h"

namespace kvaccel::core {

class RollbackManager;

class KvaccelDB {
 public:
  static Status Open(const lsm::DbOptions& main_options,
                     const KvaccelOptions& kv_options, const lsm::DbEnv& env,
                     std::unique_ptr<KvaccelDB>* db);
  ~KvaccelDB();

  // ---- Point operations (Controller write/read paths, paper §V-C) ----
  // All foreground writes funnel through Write: the Controller makes its
  // path decision once per batch, so a redirected group costs one compound
  // device command instead of N point commands. Put/Delete are one-entry
  // batches.
  Status Write(const lsm::WriteOptions& wopts, lsm::WriteBatch* batch);
  Status Put(const lsm::WriteOptions& wopts, const Slice& key,
             const Value& value);
  Status Delete(const lsm::WriteOptions& wopts, const Slice& key);
  Status Get(const lsm::ReadOptions& ropts, const Slice& key, Value* value);

  // ---- Range queries (paper §V-F, Fig. 10) ----
  std::unique_ptr<lsm::Iterator> NewIterator(const lsm::ReadOptions& ropts);

  // ---- Maintenance ----
  Status FlushAll() { return main_->FlushAll(); }
  Status WaitForCompactionIdle() { return main_->WaitForCompactionIdle(); }
  // Forces a full rollback immediately (lazy-after-workload runs, tests).
  Status RollbackNow();
  // §VI-D recovery: lose the volatile metadata table, then restore
  // consistency by rolling every Dev-LSM pair back into Main-LSM.
  // Reports the recovery duration.
  Status CrashMetadataAndRecover(Nanos* recovery_duration);
  Status Close();

  // ---- Introspection ----
  sim::SimEnv* sim_env() { return env_; }
  lsm::DB* main() { return main_.get(); }
  devlsm::DevLsm* dev() { return dev_; }
  Detector* detector() { return detector_.get(); }
  MetadataManager* metadata() { return md_.get(); }
  // Null unless KvaccelOptions::scrub.enabled.
  Scrubber* scrubber() { return scrubber_.get(); }
  // Null unless an NdpDevice was attached with planner mode != kOff.
  ndp::OffloadPlanner* offload_planner() { return planner_.get(); }
  const KvaccelStats& kv_stats() const { return kv_stats_; }
  // Unified foreground-op stats (both paths) for the figures.
  const lsm::DbStats& stats() const { return agg_stats_; }
  lsm::DbStats& mutable_stats() { return agg_stats_; }
  bool rollback_in_progress() const;

 private:
  KvaccelDB(const KvaccelOptions& kv_options, const lsm::DbEnv& env);

  bool ShouldRedirect() const;
  // Dev-LSM compound put with transient-error retries; on budget exhaustion
  // latches the device unhealthy via the Detector and returns the error so
  // the caller falls back to the host path.
  Status DevPutWithRetry(const std::vector<devlsm::DevLsm::BatchPut>& entries);

  KvaccelOptions options_;
  lsm::DbEnv denv_;
  sim::SimEnv* env_;

  std::unique_ptr<lsm::DB> main_;
  // dev_ points at owned_dev_ unless options_.external_dev attached a
  // device that outlives this KvaccelDB (crash/reopen tests).
  devlsm::DevLsm* dev_ = nullptr;
  std::unique_ptr<devlsm::DevLsm> owned_dev_;
  std::unique_ptr<MetadataManager> md_;
  std::unique_ptr<Detector> detector_;
  std::unique_ptr<RollbackManager> rollback_;
  std::unique_ptr<Scrubber> scrubber_;
  std::unique_ptr<ndp::OffloadPlanner> planner_;

  KvaccelStats kv_stats_;
  lsm::DbStats agg_stats_;
  // Decorrelated-jitter stream for DevPutWithRetry backoff (sim/backoff.h).
  Random64 dev_retry_rng_;
  bool closed_ = false;
};

// Rollback Manager (paper §V-E): returns cached Dev-LSM pairs to Main-LSM
// when the Detector reports no write stall, using the iterator-based bulky
// range scan, then resets the Dev-LSM.
class RollbackManager {
 public:
  RollbackManager(KvaccelDB* owner, const KvaccelOptions& options)
      : owner_(owner), options_(options) {}

  void Start(sim::SimEnv* env);
  void Stop();

  // Drains the Dev-LSM into Main-LSM. When `trust_metadata` is true (normal
  // rollback), entries whose metadata record was superseded by a newer
  // Main-LSM write are skipped; recovery after metadata loss replays all.
  Status Execute(bool trust_metadata);

  bool in_progress() const { return in_progress_; }

 private:
  void Loop();

  KvaccelDB* owner_;
  KvaccelOptions options_;
  sim::SimEnv* env_ = nullptr;

  sim::SimMutex mu_;
  sim::SimCondVar cv_;
  bool stop_ = false;
  bool in_progress_ = false;
  sim::SimEnv::Thread* thread_ = nullptr;
};

}  // namespace kvaccel::core
