#include "core/sharded_kvaccel_db.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "lsm/iterator.h"

namespace kvaccel::core {

namespace {

// Cross-shard merge order: plain user-key order. Shards partition the key
// space, so no two children ever surface the same key.
struct KeyOrder {
  int Compare(const Slice& a, const Slice& b) const { return a.compare(b); }
};

// Big-endian value of the first 8 key bytes, zero-padded on the right so
// that prefixes sort below their extensions ("ab" < "ab\x01...").
uint64_t RangePoint(const Slice& key) {
  uint64_t v = 0;
  size_t n = std::min<size_t>(key.size(), 8);
  for (size_t i = 0; i < n; i++) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(key.data()[i]))
         << (56 - 8 * i);
  }
  return v;
}

// Union of possibly-overlapping intervals, replayed into `out` in time order
// so the aggregate recorder looks like one DB that stalled whenever any
// shard did.
void UnionIntervals(std::vector<sim::IntervalRecorder::Interval> ivs,
                    sim::IntervalRecorder* out) {
  std::sort(ivs.begin(), ivs.end(),
            [](const sim::IntervalRecorder::Interval& a,
               const sim::IntervalRecorder::Interval& b) {
              return a.start != b.start ? a.start < b.start : a.end < b.end;
            });
  bool open = false;
  Nanos cur_start = 0, cur_end = 0;
  for (const auto& iv : ivs) {
    if (!open) {
      open = true;
      cur_start = iv.start;
      cur_end = iv.end;
    } else if (iv.start <= cur_end) {
      cur_end = std::max(cur_end, iv.end);
    } else {
      out->Begin(cur_start);
      out->End(cur_end);
      cur_start = iv.start;
      cur_end = iv.end;
    }
  }
  if (open) {
    out->Begin(cur_start);
    out->End(cur_end);
  }
}

void CollectClosed(const sim::IntervalRecorder& r, Nanos now,
                   std::vector<sim::IntervalRecorder::Interval>* out) {
  sim::IntervalRecorder copy = r;
  copy.CloseAt(now);
  out->insert(out->end(), copy.intervals().begin(), copy.intervals().end());
}

}  // namespace

ShardedKvaccelDB::ShardedKvaccelDB(const ShardingOptions& sharding,
                                   const ShardEnv& env)
    : sharding_(sharding), env_(env.env), ssd_(env.ssd) {}

ShardedKvaccelDB::~ShardedKvaccelDB() = default;

Status ShardedKvaccelDB::Open(const lsm::DbOptions& main_options,
                              const KvaccelOptions& kv_options,
                              const ShardingOptions& sharding,
                              const ShardEnv& env,
                              std::unique_ptr<ShardedKvaccelDB>* db) {
  db->reset();
  if (env.env == nullptr || env.ssd == nullptr || env.host_cpu == nullptr) {
    return Status::InvalidArgument("sharded open: incomplete environment");
  }
  const int n = sharding.num_shards;
  if (n < 1) return Status::InvalidArgument("num_shards must be >= 1");
  ssd::HybridSsd* kv_ssd =
      kv_options.kv_device != nullptr ? kv_options.kv_device : env.ssd;
  if (sharding.external_devs.empty() &&
      n > kv_ssd->config().num_namespaces) {
    return Status::InvalidArgument(
        "num_shards exceeds the device's namespace count");
  }
  if (sharding.external_fs.empty() && n > env.ssd->config().num_namespaces) {
    return Status::InvalidArgument(
        "num_shards exceeds the device's namespace count");
  }
  if (!sharding.external_fs.empty() &&
      static_cast<int>(sharding.external_fs.size()) != n) {
    return Status::InvalidArgument("external_fs size != num_shards");
  }
  if (!sharding.external_devs.empty() &&
      static_cast<int>(sharding.external_devs.size()) != n) {
    return Status::InvalidArgument("external_devs size != num_shards");
  }
  if (kv_options.external_dev != nullptr && n > 1) {
    return Status::InvalidArgument(
        "use ShardingOptions::external_devs for sharded external devices");
  }

  auto sdb = std::unique_ptr<ShardedKvaccelDB>(
      new ShardedKvaccelDB(sharding, env));

  // Redirect budget: explicit, or 90% of the device's aggregate KV capacity.
  if (sharding.redirect_budget_bytes > 0) {
    sdb->redirect_budget_bytes_ = sharding.redirect_budget_bytes;
  } else {
    uint64_t kv_pages = 0;
    for (int i = 0; i < n; i++) kv_pages += kv_ssd->KvCapacityPages(i);
    sdb->redirect_budget_bytes_ =
        kv_pages * kv_ssd->config().page_size * 9 / 10;
  }

  if (sharding.arbiter_share > 0) {
    double rate =
        sharding.arbiter_share * env.ssd->config().nand_bytes_per_sec;
    sdb->arbiter_ = std::make_unique<sim::FairShareArbiter>(
        env.env, "device-bw", rate, sharding.arbiter_burst_bytes);
  }

  sdb->shards_.resize(static_cast<size_t>(n));
  ShardedKvaccelDB* self = sdb.get();
  for (int i = 0; i < n; i++) {
    Shard& sh = sdb->shards_[static_cast<size_t>(i)];
    if (!sharding.external_fs.empty()) {
      sh.fs = sharding.external_fs[static_cast<size_t>(i)];
    } else {
      sh.owned_fs = std::make_unique<fs::SimFs>(env.ssd, /*nsid=*/i);
      sh.fs = sh.owned_fs.get();
    }
    if (!sharding.external_devs.empty()) {
      sh.dev = sharding.external_devs[static_cast<size_t>(i)];
    } else {
      sh.owned_dev =
          std::make_unique<devlsm::DevLsm>(kv_ssd, /*nsid=*/i, kv_options.dev);
      sh.dev = sh.owned_dev.get();
    }

    lsm::DbOptions shard_main = main_options;
    KvaccelOptions shard_kv = kv_options;
    shard_kv.external_dev = sh.dev;
    // Distinct jitter streams per shard: co-located retriers spreading over
    // decorrelated schedules is the whole point of the jittered backoff.
    shard_main.io_retry_jitter_seed += static_cast<uint64_t>(i) * 0x9E3779B9;
    shard_kv.dev_retry_jitter_seed += static_cast<uint64_t>(i) * 0x9E3779B9;
    shard_kv.redirect_admission = [self, i](uint64_t bytes) {
      return self->AdmitRedirect(i, bytes);
    };
    if (sdb->arbiter_ != nullptr) {
      sim::FairShareArbiter* arb = sdb->arbiter_.get();
      int client = arb->RegisterClient("shard" + std::to_string(i));
      shard_kv.redirect_arbiter = [arb, client](uint64_t bytes) {
        return arb->Acquire(client, bytes);
      };
      shard_main.compaction_io_arbiter = [arb, client](uint64_t bytes) {
        return arb->Acquire(client, bytes);
      };
    }

    lsm::DbEnv denv;
    denv.env = env.env;
    denv.ssd = env.ssd;
    denv.fs = sh.fs;
    denv.host_cpu = env.host_cpu;
    Status s = KvaccelDB::Open(shard_main, shard_kv, denv, &sh.db);
    if (!s.ok()) {
      // Close the shards that did open so their destructors are happy.
      for (int j = 0; j < i; j++) {
        sdb->shards_[static_cast<size_t>(j)].db->Close();
      }
      return s;
    }
  }

  *db = std::move(sdb);
  return Status::OK();
}

int ShardedKvaccelDB::ShardOf(const Slice& key) const {
  const uint64_t n = static_cast<uint64_t>(shards_.size());
  if (n <= 1) return 0;
  if (sharding_.partition == ShardPartition::kHash) {
    return static_cast<int>(HashSlice64(key) % n);
  }
  // Multiply-shift maps [0, 2^64) onto [0, n) in n equal, ordered slices.
  unsigned __int128 v = RangePoint(key);
  return static_cast<int>((v * n) >> 64);
}

Status ShardedKvaccelDB::Write(const lsm::WriteOptions& wopts,
                               lsm::WriteBatch* batch) {
  if (shards_.size() == 1) return shards_[0].db->Write(wopts, batch);
  if (batch->Count() == 0) return Status::OK();

  // Single probe pass: most batches (and every 1-entry batch) stay whole.
  int first_shard = -1;
  bool multi = false;
  Status s = batch->ForEach(
      [this, &first_shard, &multi](lsm::ValueType, const Slice& key,
                                   const Value&) {
        int sh = ShardOf(key);
        if (first_shard < 0) {
          first_shard = sh;
        } else if (sh != first_shard) {
          multi = true;
        }
      });
  if (!s.ok()) return s;
  if (!multi) return shards_[static_cast<size_t>(first_shard)].db->Write(
      wopts, batch);

  std::vector<lsm::WriteBatch> parts(shards_.size());
  s = batch->ForEach([this, &parts](lsm::ValueType type, const Slice& key,
                                    const Value& value) {
    lsm::WriteBatch& part = parts[static_cast<size_t>(ShardOf(key))];
    if (type == lsm::ValueType::kValue) {
      part.Put(key, value);
    } else {
      part.Delete(key);
    }
  });
  if (!s.ok()) return s;
  for (size_t i = 0; i < parts.size(); i++) {
    if (parts[i].Count() == 0) continue;
    s = shards_[i].db->Write(wopts, &parts[i]);
    if (!s.ok()) return s;  // earlier shards stay committed (torn batch)
  }
  return Status::OK();
}

Status ShardedKvaccelDB::Put(const lsm::WriteOptions& wopts, const Slice& key,
                             const Value& value) {
  return shards_[static_cast<size_t>(ShardOf(key))].db->Put(wopts, key, value);
}

Status ShardedKvaccelDB::Delete(const lsm::WriteOptions& wopts,
                                const Slice& key) {
  return shards_[static_cast<size_t>(ShardOf(key))].db->Delete(wopts, key);
}

Status ShardedKvaccelDB::Get(const lsm::ReadOptions& ropts, const Slice& key,
                             Value* value) {
  return shards_[static_cast<size_t>(ShardOf(key))].db->Get(ropts, key, value);
}

std::unique_ptr<lsm::Iterator> ShardedKvaccelDB::NewIterator(
    const lsm::ReadOptions& ropts) {
  std::vector<std::unique_ptr<lsm::Iterator>> children;
  children.reserve(shards_.size());
  for (auto& sh : shards_) children.push_back(sh.db->NewIterator(ropts));
  return std::make_unique<lsm::MergingIterator<KeyOrder>>(KeyOrder{},
                                                          std::move(children));
}

Status ShardedKvaccelDB::FlushAll() {
  for (auto& sh : shards_) {
    Status s = sh.db->FlushAll();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedKvaccelDB::WaitForCompactionIdle() {
  for (auto& sh : shards_) {
    Status s = sh.db->WaitForCompactionIdle();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedKvaccelDB::RollbackNow() {
  Status first;
  for (auto& sh : shards_) {
    Status s = sh.db->RollbackNow();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

Status ShardedKvaccelDB::RollbackShardNow(int shard) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  return shards_[static_cast<size_t>(shard)].db->RollbackNow();
}

Status ShardedKvaccelDB::CrashMetadataAndRecover(Nanos* recovery_duration) {
  Nanos total = 0;
  Status first;
  for (auto& sh : shards_) {
    Nanos d = 0;
    Status s = sh.db->CrashMetadataAndRecover(&d);
    total += d;
    if (!s.ok() && first.ok()) first = s;
  }
  if (recovery_duration != nullptr) *recovery_duration = total;
  return first;
}

Status ShardedKvaccelDB::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  Status first;
  for (auto& sh : shards_) {
    Status s = sh.db->Close();
    if (!s.ok() && first.ok()) first = s;
  }
  // Shards quiesced above: release their arbiter slots so a departed
  // client's stale start tag can't distort fairness for whatever registers
  // next (clients were registered 0..N-1 in shard order at Open).
  if (arbiter_ != nullptr) {
    for (int i = 0; i < static_cast<int>(shards_.size()); i++) {
      arbiter_->DeregisterClient(i);
    }
  }
  return first;
}

bool ShardedKvaccelDB::AdmitRedirect(int shard, uint64_t bytes) const {
  const uint64_t budget = redirect_budget_bytes_;
  if (budget == 0) return true;
  const uint64_t mine =
      shards_[static_cast<size_t>(shard)].dev->LogicalBytes();
  if (sharding_.redirect_policy == RedirectBudgetPolicy::kPerShard) {
    return mine + bytes <= budget / shards_.size();
  }
  // Global policy: the fleet shares one pool, but while several shards are
  // stalling simultaneously each may hold at most an equal split of it —
  // the Detector picture decides how many ways the budget divides.
  uint64_t total = 0;
  uint64_t stalled = 0;
  for (const auto& sh : shards_) {
    total += sh.dev->LogicalBytes();
    if (sh.db->detector()->stall_detected()) stalled++;
  }
  if (total + bytes > budget) return false;
  uint64_t ways = std::max<uint64_t>(stalled, 1);
  return mine + bytes <= budget / ways;
}

void ShardedKvaccelDB::AggregateDbStats(bool main_side,
                                        lsm::DbStats* out) const {
  *out = lsm::DbStats{};
  const Nanos now = env_->Now();
  std::vector<sim::IntervalRecorder::Interval> stalls, slowdowns;
  for (const auto& sh : shards_) {
    const lsm::DbStats& s =
        main_side ? sh.db->main()->stats() : sh.db->stats();
    out->writes_completed.MergeFrom(s.writes_completed);
    out->reads_completed.MergeFrom(s.reads_completed);
    out->seeks_completed.MergeFrom(s.seeks_completed);
    out->put_latency.Merge(s.put_latency);
    out->get_latency.Merge(s.get_latency);
    out->seek_latency.Merge(s.seek_latency);
    out->stall_events += s.stall_events;
    out->slowdown_events += s.slowdown_events;
    out->flush_count += s.flush_count;
    out->flush_bytes += s.flush_bytes;
    out->compaction_count += s.compaction_count;
    out->compaction_bytes_read += s.compaction_bytes_read;
    out->compaction_bytes_written += s.compaction_bytes_written;
    out->split_compactions += s.split_compactions;
    out->subcompaction_count += s.subcompaction_count;
    out->intra_l0_compactions += s.intra_l0_compactions;
    out->compaction_throttle_ns += s.compaction_throttle_ns;
    out->orphan_files_removed += s.orphan_files_removed;
    out->ndp_compactions += s.ndp_compactions;
    out->ndp_bytes_written += s.ndp_bytes_written;
    out->ndp_fallbacks += s.ndp_fallbacks;
    out->writes_total += s.writes_total;
    out->write_bytes_total += s.write_bytes_total;
    out->reads_total += s.reads_total;
    out->seeks_total += s.seeks_total;
    out->io_retries += s.io_retries;
    out->background_errors += s.background_errors;
    out->write_groups += s.write_groups;
    out->group_commit_size.Merge(s.group_commit_size);
    CollectClosed(s.stall_regions, now, &stalls);
    CollectClosed(s.slowdown_regions, now, &slowdowns);
  }
  UnionIntervals(std::move(stalls), &out->stall_regions);
  UnionIntervals(std::move(slowdowns), &out->slowdown_regions);
}

const lsm::DbStats& ShardedKvaccelDB::AggregateStats() const {
  AggregateDbStats(/*main_side=*/false, &agg_fg_);
  return agg_fg_;
}

const lsm::DbStats& ShardedKvaccelDB::AggregateMainStats() const {
  AggregateDbStats(/*main_side=*/true, &agg_main_);
  return agg_main_;
}

KvaccelStats ShardedKvaccelDB::AggregateKvStats() const {
  KvaccelStats out;
  for (const auto& sh : shards_) {
    const KvaccelStats& s = sh.db->kv_stats();
    out.detector_checks += s.detector_checks;
    out.redirected_writes += s.redirected_writes;
    out.direct_writes += s.direct_writes;
    out.redirected_batches += s.redirected_batches;
    out.redirect_batch_latency.Merge(s.redirect_batch_latency);
    out.redirect_admission_rejects += s.redirect_admission_rejects;
    out.redirect_arbiter_wait_ns += s.redirect_arbiter_wait_ns;
    out.dev_reads += s.dev_reads;
    out.main_reads += s.main_reads;
    out.rollbacks += s.rollbacks;
    out.rollback_entries += s.rollback_entries;
    out.rollback_total_ns += s.rollback_total_ns;
    out.md_inserts += s.md_inserts;
    out.md_checks += s.md_checks;
    out.md_deletes += s.md_deletes;
    out.dev_retries += s.dev_retries;
    out.fallback_writes += s.fallback_writes;
    out.device_unhealthy_events += s.device_unhealthy_events;
  }
  return out;
}

lsm::BlockCacheStats ShardedKvaccelDB::AggregateBlockCacheStats() const {
  lsm::BlockCacheStats out;
  for (const auto& sh : shards_) {
    lsm::BlockCacheStats s = sh.db->main()->GetBlockCacheStats();
    out.hits += s.hits;
    out.misses += s.misses;
    out.usage_bytes += s.usage_bytes;
    out.capacity_bytes += s.capacity_bytes;
  }
  return out;
}

devlsm::DevLsmStats ShardedKvaccelDB::AggregateDevStats() const {
  devlsm::DevLsmStats out;
  for (const auto& sh : shards_) {
    const devlsm::DevLsmStats& s = sh.dev->stats();
    out.puts += s.puts;
    out.gets += s.gets;
    out.deletes += s.deletes;
    out.compound_cmds += s.compound_cmds;
    out.compound_entries += s.compound_entries;
    out.flushes += s.flushes;
    out.compactions += s.compactions;
    out.bulk_scans += s.bulk_scans;
    out.scan_chunks += s.scan_chunks;
    out.resets += s.resets;
    out.read_cache_hits += s.read_cache_hits;
    out.read_cache_misses += s.read_cache_misses;
  }
  return out;
}

}  // namespace kvaccel::core
