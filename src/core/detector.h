// Write Stall Detector (paper §V-C): a thread detached from the DB that
// every 0.1 s polls the three Main-LSM components associated with a write
// stall — L0 SST count, memtable size, pending compaction bytes — and
// publishes (a) whether the Controller should redirect writes and (b)
// whether the Rollback Manager may run. Each check costs 1.37 µs (Table VI).
#pragma once

#include <cstdint>

#include "core/config.h"
#include "lsm/db.h"
#include "obs/trace.h"
#include "sim/cpu_pool.h"
#include "sim/sim_env.h"

namespace kvaccel::core {

class Detector {
 public:
  Detector(lsm::DB* main_db, sim::SimEnv* env, sim::CpuPool* host_cpu,
           const KvaccelOptions& options, KvaccelStats* stats)
      : db_(main_db), env_(env), cpu_(host_cpu), options_(options),
        stats_(stats) {}

  void Start() {
    tracer_ = env_->tracer();
    if (tracer_ != nullptr) tr_kvaccel_ = tracer_->RegisterTrack("kvaccel");
    thread_ = env_->Spawn("kvaccel-detector", [this] { Loop(); });
  }

  void Stop() {
    if (thread_ == nullptr) return;
    {
      sim::SimLockGuard l(mu_);
      stop_ = true;
      cv_.NotifyAll();
    }
    env_->Join(thread_);
    thread_ = nullptr;
    // Close an open redirect window so the trace has no dangling 'B'.
    if (tracer_ != nullptr && stall_detected_) {
      tracer_->End(tr_kvaccel_, "stall.redirect");
    }
  }

  // Latest published state (read by the Controller on every operation —
  // a flag read, not a fresh poll).
  bool stall_detected() const { return stall_detected_; }
  int calm_streak() const { return calm_streak_; }
  lsm::StallSignals last_signals() const { return last_signals_; }

  // Force an immediate poll (used by tests and by rollback bootstrap).
  void PollNow() { CheckOnce(); }

  // ---- Device-health circuit breaker (fault-injection PR) ----
  // The Controller reports the outcome of Dev-LSM commands here. After the
  // retry budget is exhausted the device is latched unhealthy and the
  // Controller stops redirecting; after `device_unhealthy_cooldown` a single
  // write is allowed through as a half-open probe, and its success closes
  // the circuit again.
  bool device_healthy(Nanos now) const {
    return device_healthy_ || now >= device_retry_at_;
  }
  void ReportDeviceFailure(Nanos now) {
    if (device_healthy_) {
      device_healthy_ = false;
      stats_->device_unhealthy_events++;
    }
    device_retry_at_ = now + options_.device_unhealthy_cooldown;
  }
  void ReportDeviceSuccess() { device_healthy_ = true; }

 private:
  void Loop() {
    sim::SimLockGuard l(mu_);
    while (!stop_) {
      if (cv_.WaitFor(mu_, options_.detector_period)) continue;
      CheckOnce();
    }
  }

  void CheckOnce() {
    cpu_->Charge(options_.detector_cpu_ns);
    env_->SleepFor(static_cast<Nanos>(options_.detector_cpu_ns + 0.5));
    stats_->detector_checks++;
    lsm::StallSignals sig = db_->GetStallSignals();
    last_signals_ = sig;
    // Redirect when a *stall* is active or about to hit: the Main-LSM (run
    // without slowdown under KVACCEL) serves writes at full speed right up
    // to its stop triggers, so the switch point is the edge of the stop
    // conditions, not the earlier slowdown thresholds.
    bool l0_at_edge = sig.l0_stop_trigger > 0 &&
                      sig.l0_files >= sig.l0_stop_trigger - 1;
    bool flush_backlogged =
        sig.max_write_buffer_number > 1 &&
        sig.immutable_memtables >= sig.max_write_buffer_number - 1;
    bool pending_at_edge =
        sig.hard_pending_limit > 0 &&
        sig.pending_compaction_bytes >=
            sig.hard_pending_limit - sig.hard_pending_limit / 10;
    bool was_stalled = stall_detected_;
    stall_detected_ =
        sig.stalled || l0_at_edge || flush_backlogged || pending_at_edge;
    if (tracer_ != nullptr && stall_detected_ != was_stalled) {
      if (stall_detected_) {
        tracer_->Begin(tr_kvaccel_, "stall.redirect");
      } else {
        tracer_->End(tr_kvaccel_, "stall.redirect");
      }
    }
    if (stall_detected_) {
      calm_streak_ = 0;
    } else {
      calm_streak_++;
    }
  }

  lsm::DB* db_;
  sim::SimEnv* env_;
  sim::CpuPool* cpu_;
  const KvaccelOptions& options_;
  KvaccelStats* stats_;

  sim::SimMutex mu_;
  sim::SimCondVar cv_;
  bool stop_ = false;
  sim::SimEnv::Thread* thread_ = nullptr;

  bool stall_detected_ = false;
  int calm_streak_ = 0;
  lsm::StallSignals last_signals_;

  obs::Tracer* tracer_ = nullptr;  // redirect-window track (DESIGN.md §8)
  uint32_t tr_kvaccel_ = 0;

  bool device_healthy_ = true;
  Nanos device_retry_at_ = 0;  // half-open probe time while unhealthy
};

}  // namespace kvaccel::core
