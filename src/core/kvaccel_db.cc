#include "core/kvaccel_db.h"

#include <cassert>
#include <string>
#include <utility>
#include <vector>

#include "core/hybrid_iterator.h"
#include "obs/trace.h"
#include "sim/backoff.h"
#include "sim/fault.h"

namespace kvaccel::core {

namespace {
bool IsTransient(const Status& s) {
  return s.IsIOError() || s.IsBusy() || s.IsTryAgain();
}
}  // namespace

// ---------------- Open / lifecycle ----------------

KvaccelDB::KvaccelDB(const KvaccelOptions& kv_options, const lsm::DbEnv& env)
    : options_(kv_options), denv_(env), env_(env.env),
      dev_retry_rng_(kv_options.dev_retry_jitter_seed) {}

Status KvaccelDB::Open(const lsm::DbOptions& main_options,
                       const KvaccelOptions& kv_options,
                       const lsm::DbEnv& env,
                       std::unique_ptr<KvaccelDB>* db) {
  auto impl = std::unique_ptr<KvaccelDB>(new KvaccelDB(kv_options, env));

  // Single-device (hybrid split) by default; §V-D multi-device when a
  // second SSD is supplied. An external (device-owned) Dev-LSM survives a
  // host crash/reopen, so redirected pairs can be recovered below. Resolved
  // before the Main-LSM opens: its compactions need the elision guard from
  // their very first job.
  if (kv_options.external_dev != nullptr) {
    impl->dev_ = kv_options.external_dev;
  } else {
    ssd::HybridSsd* kv_ssd =
        kv_options.kv_device != nullptr ? kv_options.kv_device : env.ssd;
    impl->owned_dev_ = std::make_unique<devlsm::DevLsm>(kv_ssd, /*nsid=*/0,
                                                        kv_options.dev);
    impl->dev_ = impl->owned_dev_.get();
  }

  // KVACCEL runs its Main-LSM without the slowdown mechanism: redirection
  // replaces throttling (paper §VI-B). While the Dev-LSM holds redirected
  // pairs, Main-LSM compactions must not elide tombstones: a deleted key's
  // older redirected version would otherwise be resurrected when recovery
  // drains the device ordered by sequence number (§VI-D).
  lsm::DbOptions opts = main_options;
  opts.enable_slowdown = false;
  devlsm::DevLsm* dev = impl->dev_;
  opts.allow_tombstone_elision = [dev] { return dev->Empty(); };

  // Device-offloaded compaction (DESIGN.md §13): a per-DB OffloadPlanner in
  // front of the shared NdpDevice. The hook must be in place before the
  // Main-LSM opens — its compaction workers may pick a job immediately.
  if (kv_options.ndp_device != nullptr &&
      kv_options.ndp_planner.mode != ndp::OffloadMode::kOff) {
    ndp::NdpDevice* ndev = kv_options.ndp_device;
    impl->planner_ = std::make_unique<ndp::OffloadPlanner>(
        env.env, env.host_cpu, ndev->cpu(), kv_options.ndp_planner);
    ndp::OffloadPlanner* planner = impl->planner_.get();
    opts.compaction_offload = [planner, ndev](const lsm::OffloadJobInfo& job,
                                              lsm::OffloadGrant* grant) {
      if (!planner->ShouldOffload(job)) return false;
      ndp::CompactDescriptor d;
      d.level = job.level;
      d.output_level = job.output_level;
      d.input_bytes = job.input_bytes;
      d.input_files = job.input_files;
      d.subranges = job.subranges;
      uint64_t cmd_id = 0;
      Status bs = ndev->BeginCompact(d, &cmd_id);
      if (!bs.ok()) {
        // Command never reached the device: open the breaker, run host-side.
        planner->ReportDeviceFailure();
        return false;
      }
      grant->merge_cpu = [ndev](uint64_t bytes) { ndev->MergeCpu(bytes); };
      grant->finish = [planner, ndev, cmd_id](bool ok, uint64_t files,
                                              uint64_t bytes) {
        Status fin = ndev->FinishCompact(cmd_id, ok, files, bytes);
        if (ok && fin.ok()) {
          planner->ReportDeviceSuccess();
        } else if (!ok) {
          planner->ReportDeviceFailure();
        }
        return fin;
      };
      return true;
    };
  }

  Status s = lsm::DB::Open(opts, env, &impl->main_);
  if (!s.ok()) return s;
  if (impl->planner_ != nullptr) {
    lsm::DB* main = impl->main_.get();
    impl->planner_->set_signals_provider(
        [main] { return main->GetStallSignals(); });
  }
  impl->md_ = std::make_unique<MetadataManager>(
      env.env, env.host_cpu, impl->options_, &impl->kv_stats_);
  impl->detector_ = std::make_unique<Detector>(
      impl->main_.get(), env.env, env.host_cpu, impl->options_,
      &impl->kv_stats_);
  impl->rollback_ =
      std::make_unique<RollbackManager>(impl.get(), impl->options_);

  // Recovery after a host crash: pairs still cached device-side have no
  // metadata records (the hash table is volatile), so drain them back into
  // Main-LSM ordered by sequence number before serving traffic (§VI-D).
  if (!impl->dev_->Empty()) {
    s = impl->rollback_->Execute(/*trust_metadata=*/false);
    if (!s.ok()) {
      impl->main_->Close();
      impl->closed_ = true;
      return s;
    }
  }

  impl->detector_->Start();
  if (impl->options_.rollback != RollbackScheme::kDisabled) {
    impl->rollback_->Start(env.env);
  }
  if (impl->options_.scrub.enabled) {
    impl->scrubber_ = std::make_unique<Scrubber>(
        impl->main_.get(), impl->detector_.get(), env.env, impl->options_);
    impl->scrubber_->Start();
  }
  *db = std::move(impl);
  return Status::OK();
}

KvaccelDB::~KvaccelDB() { assert(closed_); }

Status KvaccelDB::Close() {
  if (closed_) return Status::OK();
  if (scrubber_ != nullptr) scrubber_->Stop();
  if (rollback_ != nullptr) rollback_->Stop();
  if (detector_ != nullptr) detector_->Stop();
  Status s = main_->Close();
  closed_ = true;
  return s;
}

bool KvaccelDB::rollback_in_progress() const {
  return rollback_ != nullptr && rollback_->in_progress();
}

// ---------------- Controller: write path (paper §V-C) ----------------

bool KvaccelDB::ShouldRedirect() const {
  // Redirection stays available during rollback: the snapshot-bounded reset
  // (DevLsm::ResetUpTo) keeps concurrently redirected pairs safe. A device
  // latched unhealthy by the circuit breaker is skipped until its half-open
  // probe time.
  return options_.redirection_enabled && detector_->stall_detected() &&
         detector_->device_healthy(env_->Now());
}

Status KvaccelDB::DevPutWithRetry(
    const std::vector<devlsm::DevLsm::BatchPut>& entries) {
  Status s = dev_->PutCompound(entries);
  Nanos backoff = 0;
  int attempt = 0;
  while (!s.ok() && IsTransient(s) && attempt < options_.dev_retry_limit) {
    attempt++;
    kv_stats_.dev_retries++;
    // Decorrelated jitter, capped: shards/nodes sharing the device spread
    // their retry waves instead of re-colliding in lockstep.
    backoff = sim::NextDecorrelatedDelay(&dev_retry_rng_,
                                         options_.dev_retry_backoff,
                                         options_.dev_retry_backoff_cap,
                                         backoff);
    env_->SleepFor(backoff);
    s = dev_->PutCompound(entries);
  }
  if (s.ok()) {
    detector_->ReportDeviceSuccess();
  } else if (IsTransient(s)) {
    detector_->ReportDeviceFailure(env_->Now());
  }
  return s;
}

Status KvaccelDB::Write(const lsm::WriteOptions& wopts,
                        lsm::WriteBatch* batch) {
  const uint32_t count = batch->Count();
  if (count == 0) return Status::OK();
  Nanos start = env_->Now();
  Status s;
  bool redirect = ShouldRedirect();
  if (redirect && options_.redirect_admission &&
      !options_.redirect_admission(batch->LogicalSize())) {
    // Sharded engine: this shard's slice of the Dev-LSM capacity budget is
    // exhausted — compete fairly by falling back to the host path.
    kv_stats_.redirect_admission_rejects++;
    redirect = false;
  }
  if (redirect) {
    // Stall path: serve the whole batch from the key-value interface as one
    // compound command. Pairs land on the device first; only then do the
    // metadata records flip, so a concurrent reader never chases a record to
    // a not-yet-written pair. The batch is versioned from the Main-LSM
    // sequence space so crash recovery can order it against host-side data.
    lsm::SequenceNumber seq = main_->AllocateSequence(count);
    std::vector<devlsm::DevLsm::BatchPut> entries;
    entries.reserve(count);
    lsm::SequenceNumber next = seq;
    s = batch->ForEach(
        [&](lsm::ValueType type, const Slice& key, const Value& value) {
          devlsm::DevLsm::BatchPut bp;
          bp.key = key.ToString();
          bp.value = value;
          bp.host_seq = next++;
          bp.tombstone = (type == lsm::ValueType::kDeletion);
          entries.push_back(std::move(bp));
        });
    if (s.ok() && options_.redirect_arbiter) {
      // Reserve the redirect DMA's bandwidth on the shared-device arbiter
      // before issuing the command, so a compaction-heavy neighbor shard
      // cannot monopolize the link ahead of this stalled shard's escape path.
      kv_stats_.redirect_arbiter_wait_ns += static_cast<uint64_t>(
          options_.redirect_arbiter(batch->LogicalSize()));
    }
    if (s.ok()) {
      Nanos dev_start = env_->Now();
      s = DevPutWithRetry(entries);
      // Kill point: crash after the compound command landed on the device
      // but before the metadata records flip. The pairs are durable
      // device-side with their host sequence numbers, so reopen's
      // metadata-less drain recovers them — the window this site exists to
      // prove (single-authority invariant across the flip).
      if (s.ok() && sim::FaultAt(env_, "crash.redirect.mid")) {
        s = Status::IOError("simulated crash");
      }
      // Ship the Dev-LSM intent to the backup BEFORE the metadata flip acks
      // the batch: an acked redirected write must be reconstructible on
      // failover even though this node's device KV region is gone. A ship
      // failure leaves the write unacked; the device-side entries it leaked
      // are superseded by recovery's sequence comparison.
      if (s.ok() && options_.redirect_shipper) {
        s = options_.redirect_shipper(entries);
      }
      if (s.ok()) {
        kv_stats_.redirect_batch_latency.Add(env_->Now() - dev_start);
        std::vector<std::pair<std::string, uint64_t>> recs;
        recs.reserve(entries.size());
        for (auto& e : entries) recs.emplace_back(std::move(e.key), e.host_seq);
        md_->InsertBatch(recs);
        kv_stats_.redirected_writes += count;
        kv_stats_.redirected_batches++;
      }
    }
    if (!s.ok()) {
      // Device full/unavailable: fall back to the normal (stalling) path.
      // Counted as fallback so a dead device shows up in bench reports.
      s = main_->Write(wopts, batch);
      if (s.ok()) {
        (void)batch->ForEach(
            [&](lsm::ValueType, const Slice& key, const Value&) {
              if (md_->Check(key)) md_->Delete(key);
            });
      }
      kv_stats_.direct_writes += count;
      kv_stats_.fallback_writes += count;
    }
  } else {
    s = main_->Write(wopts, batch);
    kv_stats_.direct_writes += count;
    // Path (3-1): overlapping pairs in Dev-LSM are now stale.
    if (s.ok() && !dev_->Empty()) {
      (void)batch->ForEach([&](lsm::ValueType, const Slice& key, const Value&) {
        if (md_->Check(key)) md_->Delete(key);
      });
    }
  }
  Nanos now = env_->Now();
  agg_stats_.writes_total += count;
  agg_stats_.write_bytes_total += batch->LogicalSize();
  agg_stats_.writes_completed.Add(now, count);
  agg_stats_.put_latency.Add(now - start);
  return s;
}

Status KvaccelDB::Put(const lsm::WriteOptions& wopts, const Slice& key,
                      const Value& value) {
  lsm::WriteBatch batch;
  batch.Put(key, value);
  return Write(wopts, &batch);
}

Status KvaccelDB::Delete(const lsm::WriteOptions& wopts, const Slice& key) {
  lsm::WriteBatch batch;
  batch.Delete(key);
  return Write(wopts, &batch);
}

// ---------------- Controller: read path ----------------

Status KvaccelDB::Get(const lsm::ReadOptions& ropts, const Slice& key,
                      Value* value) {
  Nanos start = env_->Now();
  Status s;
  // (1) Metadata Manager locates the key; (2) Main-LSM when the record is
  // absent or the Dev-LSM is empty; (3) Dev-LSM otherwise.
  if (!dev_->Empty() && md_->Check(key)) {
    s = dev_->Get(key, value);
    kv_stats_.dev_reads++;
  } else {
    s = main_->Get(ropts, key, value);
    kv_stats_.main_reads++;
  }
  Nanos now = env_->Now();
  agg_stats_.reads_total++;
  agg_stats_.reads_completed.Add(now, 1);
  agg_stats_.get_latency.Add(now - start);
  return s;
}

std::unique_ptr<lsm::Iterator> KvaccelDB::NewIterator(
    const lsm::ReadOptions& ropts) {
  return std::make_unique<HybridIterator>(main_->NewIterator(ropts),
                                          dev_->NewIterator(), md_.get());
}

// ---------------- Rollback / recovery ----------------

Status KvaccelDB::RollbackNow() { return rollback_->Execute(true); }

Status KvaccelDB::CrashMetadataAndRecover(Nanos* recovery_duration) {
  md_->LoseAll();
  Nanos t0 = env_->Now();
  Status s = rollback_->Execute(/*trust_metadata=*/false);
  if (recovery_duration != nullptr) *recovery_duration = env_->Now() - t0;
  return s;
}

// ---------------- RollbackManager ----------------

void RollbackManager::Start(sim::SimEnv* env) {
  env_ = env;
  thread_ = env->Spawn("kvaccel-rollback", [this] { Loop(); });
}

void RollbackManager::Stop() {
  if (thread_ == nullptr) return;
  {
    sim::SimLockGuard l(mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  env_->Join(thread_);
  thread_ = nullptr;
}

void RollbackManager::Loop() {
  sim::SimLockGuard l(mu_);
  while (!stop_) {
    if (cv_.WaitFor(mu_, options_.detector_period)) continue;
    if (owner_->dev()->Empty()) continue;
    int needed = options_.rollback == RollbackScheme::kEager
                     ? options_.eager_calm_periods
                     : options_.lazy_calm_periods;
    if (owner_->detector()->stall_detected()) continue;
    if (owner_->detector()->calm_streak() < needed) continue;
    // Release the scheduling lock across the (long) rollback itself.
    mu_.Unlock();
    Execute(true);
    mu_.Lock();
  }
}

Status RollbackManager::Execute(bool trust_metadata) {
  if (in_progress_) return Status::Busy("rollback already running");
  devlsm::DevLsm* dev = owner_->dev();
  if (dev->Empty()) return Status::OK();
  in_progress_ = true;
  Nanos start = owner_->sim_env()->Now();
  obs::Tracer* tracer = owner_->sim_env()->tracer();
  uint32_t track = 0;
  if (tracer != nullptr) track = tracer->RegisterTrack("kvaccel");
  // Snapshot bound: only pairs written up to here are scanned and reset;
  // anything redirected during the drain survives for the next rollback.
  uint64_t snapshot_seq = dev->LastSeq();

  MetadataManager* md = owner_->metadata();
  lsm::DB* main = owner_->main();
  uint64_t merged = 0;
  Status ingest_error;

  // The bulk scan streams in key order, so batches are already sorted —
  // they bulk-load into Main-LSM as L0 SSTs at their original sequence
  // numbers, skipping the WAL/memtable double-write (DB::IngestSortedBatch).
  std::vector<lsm::IngestEntry> batch;
  uint64_t batch_bytes = 0;
  uint64_t drained_bytes = 0;
  auto flush_batch = [&]() {
    if (batch.empty() || !ingest_error.ok()) return;
    Status s = main->IngestSortedBatch(batch);
    if (!s.ok()) {
      ingest_error = s;
      return;
    }
    for (const auto& e : batch) {
      // Clear each record unless a newer redirected version appeared
      // during the drain.
      uint64_t md_seq = md->GetSeq(e.key);
      if (md_seq != 0 && md_seq <= e.seq) md->Delete(e.key);
      merged++;
    }
    drained_bytes += batch_bytes;
    batch.clear();
    batch_bytes = 0;
  };

  Status status = dev->BulkScan([&](const devlsm::DevLsm::ScanEntry& e) {
    // Kill point: a crash mid-drain must leave every not-yet-reset pair on
    // the device for the next recovery pass (ResetUpTo runs only at the end).
    if (sim::FaultAt(owner_->sim_env(), "crash.rollback.mid")) {
      ingest_error = Status::IOError("simulated crash");
      return;
    }
    if (!ingest_error.ok()) return;
    if (trust_metadata) {
      // Skip pairs superseded either by a newer Main-LSM write (their
      // metadata record was deleted on the 3-1 path) or by a re-redirection
      // during this very rollback (record seq is newer than the scanned
      // pair's).
      uint64_t md_seq = md->GetSeq(e.key);
      if (md_seq == 0 || md_seq > e.host_seq) return;
    } else {
      // Recovery after metadata loss (paper §VI-D): the hash table is gone,
      // so order the device pair against Main-LSM by sequence number.
      Value unused;
      lsm::SequenceNumber main_seq = 0;
      Status gs = main->GetWithSequence({}, e.key, &unused, &main_seq);
      if (!gs.ok() && !gs.IsNotFound()) return;
      if (main_seq >= e.host_seq) return;  // host already has a newer version
    }
    batch.push_back(
        {e.key, e.value, e.tombstone, lsm::SequenceNumber{e.host_seq}});
    batch_bytes += e.key.size() + 8 + e.value.logical_size();
    if (batch_bytes >= (64ull << 20)) flush_batch();
  });
  flush_batch();
  if (status.ok()) status = ingest_error;
  if (tracer != nullptr) {
    tracer->Complete(track, "rollback.drain", start, owner_->sim_env()->Now(),
                     drained_bytes);
  }
  if (status.ok()) status = dev->ResetUpTo(snapshot_seq);
  if (tracer != nullptr) tracer->Instant(track, "rollback.reset");
  // Tell the backup its mirrored intents are now covered by Main-LSM data.
  // Rollback ingests bypass the WAL stream, so without this signal the
  // backup's mirror would grow without bound.
  if (status.ok() && options_.rollback_shipper) options_.rollback_shipper();
  KvaccelStats& ks = const_cast<KvaccelStats&>(owner_->kv_stats());
  ks.rollbacks++;
  ks.rollback_entries += merged;
  ks.rollback_total_ns += owner_->sim_env()->Now() - start;
  if (tracer != nullptr) {
    tracer->Complete(track, "rollback", start, owner_->sim_env()->Now());
  }
  in_progress_ = false;
  return status;
}

}  // namespace kvaccel::core
