// Metadata Manager (paper §V-C): an in-memory hash table recording which
// user keys currently have their newest version in the Dev-LSM. It is the
// consistency keystone: membership decides the read path, and a normal-path
// write deletes the entry ("the latest key-value pair is now in Main-LSM").
//
// Exact membership (not a bloom filter) is required for read-your-writes
// across path switches. Costs are charged per Table VI. Volatile by design:
// a crash loses it, and recovery rebuilds from a full Dev-LSM scan (§VI-D).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/units.h"
#include "core/config.h"
#include "sim/cpu_pool.h"
#include "sim/sim_env.h"

namespace kvaccel::core {

class MetadataManager {
 public:
  MetadataManager(sim::SimEnv* env, sim::CpuPool* host_cpu,
                  const KvaccelOptions& options, KvaccelStats* stats)
      : env_(env), cpu_(host_cpu), options_(options), stats_(stats) {}

  // Records that `key`'s newest version lives in the Dev-LSM, written with
  // host sequence number `seq` (lets rollback recognize records superseded
  // by a re-redirection that happened during its scan).
  void Insert(const Slice& key, uint64_t seq) {
    Charge(options_.md_insert_ns);
    stats_->md_inserts++;
    keys_[key.ToString()] = seq;
  }

  // Bulk insert for one redirected batch: same per-record hash-table cost as
  // Insert, but charged as a single CPU burst (one bookkeeping sleep instead
  // of N), mirroring how the batch rode a single device command.
  void InsertBatch(const std::vector<std::pair<std::string, uint64_t>>& recs) {
    if (recs.empty()) return;
    Charge(options_.md_insert_ns * static_cast<double>(recs.size()));
    stats_->md_inserts += recs.size();
    for (const auto& [key, seq] : recs) keys_[key] = seq;
  }

  // Membership test ("key check").
  bool Check(const Slice& key) {
    Charge(options_.md_check_ns);
    stats_->md_checks++;
    return keys_.count(key.ToString()) > 0;
  }

  // Sequence of the recorded device-side version; 0 when absent. Costs a
  // key check.
  uint64_t GetSeq(const Slice& key) {
    Charge(options_.md_check_ns);
    stats_->md_checks++;
    auto it = keys_.find(key.ToString());
    return it == keys_.end() ? 0 : it->second;
  }

  // Removes the record (newest version is now in Main-LSM, or rolled back).
  void Delete(const Slice& key) {
    Charge(options_.md_delete_ns);
    stats_->md_deletes++;
    keys_.erase(key.ToString());
  }

  // One-shot copy of the key set, taken when a snapshot iterator is built:
  // tie arbitration between the main-LSM and Dev-LSM cursors must use the
  // authority map as of iterator creation, not live state, or a rollback
  // completing mid-scan flips authority under the reader. Charged as one
  // check (a real store would publish a versioned epoch pointer, not copy).
  std::unordered_set<std::string> SnapshotKeySet() {
    Charge(options_.md_check_ns);
    stats_->md_checks++;
    std::unordered_set<std::string> out;
    out.reserve(keys_.size());
    for (const auto& [key, seq] : keys_) out.insert(key);
    return out;
  }

  // Uncharged dump of the table for offline integrity checking.
  std::vector<std::pair<std::string, uint64_t>> Entries() const {
    return {keys_.begin(), keys_.end()};
  }

  // Crash simulation: drops the volatile table (paper §VI-D).
  void LoseAll() { keys_.clear(); }

  size_t Size() const { return keys_.size(); }
  bool Empty() const { return keys_.empty(); }

 private:
  void Charge(double ns) {
    // Sub-microsecond bookkeeping: account CPU busy time and op latency.
    cpu_->Charge(ns);
    env_->SleepFor(static_cast<Nanos>(ns + 0.5));
  }

  sim::SimEnv* env_;
  sim::CpuPool* cpu_;
  const KvaccelOptions& options_;
  KvaccelStats* stats_;
  std::unordered_map<std::string, uint64_t> keys_;  // key -> host seq
};

}  // namespace kvaccel::core
