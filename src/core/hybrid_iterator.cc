#include "core/hybrid_iterator.h"

namespace kvaccel::core {

void HybridIterator::AdvanceDevPast(const Slice& user_key) {
  while (dev_->Valid() && Slice(dev_->key()) == user_key) dev_->Next();
}

void HybridIterator::AdvanceMainPast(const Slice& user_key) {
  while (main_->Valid() && main_->key() == user_key) main_->Next();
}

void HybridIterator::ChooseNext() {
  valid_ = false;
  for (;;) {
    bool m = main_->Valid();
    bool d = dev_->Valid();
    if (!m && !d) return;

    // Pick the side with the smaller key; ties arbitrated by metadata.
    bool take_dev;
    if (m && d) {
      int cmp = Slice(dev_->key()).compare(main_->key());
      if (cmp < 0) {
        take_dev = true;
      } else if (cmp > 0) {
        take_dev = false;
      } else {
        // Same user key on both sides: the Metadata Manager snapshot taken
        // at iterator creation knows where the newest version lived then.
        take_dev = md_snapshot_.count(main_->key().ToString()) > 0;
      }
    } else {
      take_dev = d;
    }

    if (take_dev) {
      std::string key = dev_->key();
      bool tomb = dev_->tombstone();
      Value val = dev_->value();
      AdvanceDevPast(key);
      AdvanceMainPast(key);  // same key on the main side is stale
      if (tomb) continue;    // deleted during redirection: hide entirely
      current_key_ = std::move(key);
      current_value_.clear();
      val.EncodeTo(&current_value_);
      current_from_dev_ = true;
      valid_ = true;
      return;
    }

    std::string key = main_->key().ToString();
    current_value_.assign(main_->value().data(), main_->value().size());
    AdvanceMainPast(key);
    AdvanceDevPast(key);  // stale device copy, if any
    current_key_ = std::move(key);
    current_from_dev_ = false;
    valid_ = true;
    return;
  }
}

void HybridIterator::Next() {
  // ChooseNext already advanced both sides past the current key.
  ChooseNext();
}

}  // namespace kvaccel::core
