// ReplicatedKvaccelDB: a two-node HA pair (DESIGN.md §12). The primary is a
// full KVACCEL stack serving all traffic; the backup is a warm standby on its
// own SSD/file system/CPU that receives the primary's commit stream over a
// simulated interconnect (sim::NetLink) and applies it at the primary's
// sequence numbers, so a failover promotes a byte-consistent replica instead
// of replaying from scratch.
//
// Five record types ride the link, in ship order:
//
//   kWalBatch       every group-commit WAL batch, shipped by the leader after
//                   local WAL sync and applied on the backup as a
//                   replicated-sequence write (lsm::WriteOptions::
//                   replicated_seq) — the RDMA-index-replication idea from
//                   PAPERS.md: stream the already-ordered commit stream, do
//                   not re-run the write path.
//   kRedirectIntent the KVACCEL twist: a redirected batch's Dev-LSM intent
//                   (keys, values, host sequence range, tombstone marks),
//                   shipped after the compound command is durable on the
//                   PRIMARY's device but before the metadata flip acks it.
//                   The backup mirrors the intent into its OWN Dev-LSM (or
//                   degrades to its host path when its device is unhealthy),
//                   so an acked redirected write survives failover even
//                   though the primary's device KV region is gone.
//   kRollback       the primary finished a rollback drain: its Dev-LSM data
//                   is now in its Main-LSM (via WAL-bypassing ingest), so
//                   the backup drains its mirror the same way.
//   kManifestEdit   advisory VersionEdit stream (bytes charged to the link;
//                   the backup builds its own versions from applied writes).
//   kHeartbeat      an empty lease-renewal record from a background beater;
//                   its round trip is what keeps the primary's lease fresh
//                   when no client writes flow.
//
// Ack modes (--repl_ack):
//   sync    a write is acknowledged only after its record is applied on the
//           backup; every acked write survives failover.
//   async   records queue (bounded by entries AND bytes) and ship from a
//           background actor; acks don't wait. On a crash the un-applied
//           tail — bounded by the queue capacity — is lost, and reported via
//           ReplStats.
//
// Partitions, leases and fencing epochs (DESIGN.md §12): every record carries
// the pair's fencing epoch. The primary holds a virtual-time lease renewed by
// each successful record round trip (heartbeats keep it fresh when idle);
// when a partition cuts the link the lease lapses and the primary self-fences
// into read-only — client writes fail with Busy, so no write is ever acked on
// both sides of a split. The backup may be detached for promotion only after
// the lease plus a safety margin has verifiably lapsed (DetachBackup refuses
// earlier). Promotion bumps the durable fencing epoch (a synced FENCE file on
// the node's file system); when the partition heals, the deposed primary's
// next record is rejected with a stale-epoch error and it deposes itself
// permanently. Reconciliation (quarantine the diverged tail, delta resync,
// rejoin as backup) lives in check::RejoinNode beside PromoteNode: core
// cannot depend on the checker layer.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/kvaccel_db.h"
#include "sim/net_link.h"

namespace kvaccel::fs {
class SimFs;
}

namespace kvaccel::core {

enum class ReplAck { kSync, kAsync };

// One node's caller-owned world. Both nodes share the one SimEnv (one
// simulation clock); each has its own SSD, file system and host CPU so a
// crash protocol can wipe exactly one side.
struct ReplNode {
  ssd::HybridSsd* ssd = nullptr;
  fs::SimFs* fs = nullptr;
  sim::CpuPool* host_cpu = nullptr;
  devlsm::DevLsm* dev = nullptr;  // external (device-owned) Dev-LSM
  // Per-node NDP engine (offloaded compaction runs on the node's OWN ssd);
  // a shared KvaccelOptions::ndp_device would bind both nodes to one device,
  // so the replicated Open overrides it from here. nullptr = host-only.
  ndp::NdpDevice* ndp = nullptr;
};

struct ReplOptions {
  ReplAck ack = ReplAck::kSync;
  // Interconnect: defaults model a 10 GbE-class link.
  double net_bytes_per_sec = 1.25e9;
  Nanos net_latency = FromMicros(30);
  // Async mode: records queued ahead of the shipper; producers block when
  // full — by entry count or by bytes (backpressure is what bounds the loss
  // tail in both dimensions).
  size_t async_queue_cap = 64;
  uint64_t async_queue_max_bytes = 4ull << 20;
  // Transient send retries (net.send.transient) before a record fails (sync)
  // or keeps cycling (async retries until the pair crashes).
  int net_retry_limit = 3;
  Nanos net_retry_backoff = FromMicros(100);
  Nanos net_retry_backoff_cap = FromMillis(10);
  uint64_t net_jitter_seed = 0x4E7B0FF;
  // Virtual-time lease + fencing (DESIGN.md §12). Every successful record
  // round trip (heartbeats included) extends the primary's write lease by
  // lease_duration; a primary whose lease has lapsed rejects client writes.
  // The backup may only be detached for promotion once the primary's lease
  // has verifiably lapsed: last applied record + lease + safety margin.
  Nanos lease_duration = FromMillis(50);
  Nanos heartbeat_period = FromMillis(10);
  Nanos promote_safety_margin = FromMillis(10);
  // Fencing epoch the pair starts at. Open adopts the max of this and the
  // durable FENCE epochs found on either node, and persists it to both.
  uint64_t epoch = 1;
};

struct ReplStats {
  uint64_t wal_records = 0;
  uint64_t wal_entries = 0;
  uint64_t intent_records = 0;
  uint64_t intent_entries = 0;
  uint64_t rollback_records = 0;
  uint64_t manifest_records = 0;
  uint64_t manifest_drops = 0;  // advisory stream dropped on pressure
  uint64_t repl_bytes = 0;      // bytes charged to the link
  uint64_t records_applied = 0;
  uint64_t net_retries = 0;
  uint64_t ship_failures = 0;   // records dropped; async: the lost tail
  uint64_t lost_entries = 0;    // entries in dropped wal/intent records
  uint64_t lost_seq_min = 0;    // first seq of the earliest dropped record
  uint64_t backup_dev_fallbacks = 0;  // intents degraded to the host path
  uint64_t async_queue_peak = 0;
  uint64_t async_queue_bytes_peak = 0;
  Nanos sync_ship_ns = 0;       // foreground time spent shipping (sync mode)
  // Partition/fencing surface.
  uint64_t heartbeat_records = 0;     // lease renewals applied on the backup
  uint64_t fenced_write_rejects = 0;  // client writes refused while fenced
  uint64_t lease_expirations = 0;     // fresh -> lapsed transitions
  uint64_t fenced_records = 0;        // records rejected: stale epoch
  uint64_t ack_losses = 0;            // net.partition.ack fires (applied,
                                      // ack lost, write NOT acked)
  uint64_t dup_records = 0;           // net.dup fires (record applied twice)
  uint64_t reorder_swaps = 0;         // net.reorder fires (async swap)
};

// Durable fencing epoch: a small synced "FENCE" file on the node's file
// system, written via the tmp-then-rename idiom. 0 = no fence recorded.
uint64_t ReadFenceEpoch(fs::SimFs* fs);
Status WriteFenceEpoch(fs::SimFs* fs, uint64_t epoch);

class ReplicatedKvaccelDB {
 public:
  static Status Open(const lsm::DbOptions& main_options,
                     const KvaccelOptions& kv_options,
                     const ReplOptions& repl_options, const ReplNode& primary,
                     const ReplNode& backup, sim::SimEnv* env,
                     std::unique_ptr<ReplicatedKvaccelDB>* db);
  ~ReplicatedKvaccelDB();

  // Foreground interface: everything serves from the primary. Writes are
  // rejected with Busy while the primary is fenced (lease lapsed or deposed);
  // reads keep serving — fencing makes the node read-only, not dead.
  Status Write(const lsm::WriteOptions& wopts, lsm::WriteBatch* batch);
  Status Put(const lsm::WriteOptions& wopts, const Slice& key,
             const Value& value);
  Status Delete(const lsm::WriteOptions& wopts, const Slice& key);
  Status Get(const lsm::ReadOptions& ropts, const Slice& key, Value* value);
  std::unique_ptr<lsm::Iterator> NewIterator(const lsm::ReadOptions& ropts);
  Status FlushAll();
  Status WaitForCompactionIdle();
  Status RollbackNow();
  // Drains the async queue (fail-fast per record once the pair has crashed),
  // stops the shipper, closes primary then backup. Errors are collected but
  // both nodes always end closed.
  Status Close();

  // Split-brain prevention, promotion side: releases the backup node so the
  // caller can PromoteNode it under a bumped epoch. Refuses with Busy until
  // backup_promote_safe_at() — the instant the primary's lease (granted at
  // the last record the backup applied) has certainly lapsed, plus the
  // safety margin — unless forced. After detach the pair keeps serving reads
  // (and rejects writes once its own lease lapses); a healed ship attempt
  // reads the backup node's durable FENCE epoch and deposes the primary.
  Status DetachBackup(bool force = false);
  bool backup_detached() const { return backup_ == nullptr; }

  // ---- Introspection ----
  KvaccelDB* primary() { return primary_.get(); }
  KvaccelDB* backup() { return backup_.get(); }
  sim::NetLink* link() { return link_.get(); }
  const ReplStats& repl_stats() const { return stats_; }
  ReplAck ack() const { return options_.ack; }
  // Highest sequence handed to the replication stream.
  uint64_t last_assigned_seq() const { return last_assigned_seq_; }
  // Verification frontier: every acked write with first_seq <= this is
  // applied on the backup. No losses => last_assigned_seq(); with a dropped
  // record it stops just short of the earliest hole.
  uint64_t applied_frontier() const {
    return stats_.lost_seq_min == 0 ? last_assigned_seq_
                                    : stats_.lost_seq_min - 1;
  }
  // True applied watermark: the highest sequence actually applied on the
  // backup (ack-lost records count — they ARE on the backup). This is the
  // divergence frontier RejoinNode quarantines the deposed tail against.
  uint64_t applied_seq() const { return applied_seq_; }
  // Fencing surface.
  uint64_t epoch() const { return epoch_; }
  bool deposed() const { return deposed_; }
  bool fenced() const { return deposed_ || env_->Now() >= lease_expiry_; }
  Nanos lease_expiry() const { return lease_expiry_; }
  Nanos backup_promote_safe_at() const {
    return backup_last_applied_ns_ + options_.lease_duration +
           options_.promote_safety_margin;
  }
  // Async queue occupancy in bytes (the ha.repl.queue_bytes gauge).
  uint64_t queue_bytes() const { return queue_bytes_; }

  // ---- Test hooks (async mode) ----
  // Holds the shipper so a test can build a known queue backlog.
  void PauseShipping(bool paused);
  // Blocks until the queue is empty and no record is mid-apply.
  void DrainShipping();

 private:
  struct Record {
    enum class Type {
      kWalBatch,
      kRedirectIntent,
      kRollback,
      kManifestEdit,
      kHeartbeat
    };
    Type type = Type::kWalBatch;
    lsm::WriteBatch batch;  // kWalBatch payload
    std::vector<devlsm::DevLsm::BatchPut> entries;  // kRedirectIntent payload
    uint64_t first_seq = 0;
    uint64_t last_seq = 0;  // highest sequence carried (0 when none)
    uint32_t count = 0;  // entries carried (0 for rollback/manifest/heartbeat)
    uint64_t bytes = 0;  // serialized size charged to the link
    uint64_t epoch = 0;  // fencing epoch stamped at ship time
  };

  ReplicatedKvaccelDB(const ReplOptions& options, const ReplNode& backup_node,
                      sim::SimEnv* env);

  // Primary-side hooks (installed into the primary's options at Open).
  Status ShipWalBatch(const lsm::WriteBatch& group, uint64_t first_seq);
  Status ShipRedirectIntent(
      const std::vector<devlsm::DevLsm::BatchPut>& entries);
  void ShipRollback();
  void ShipManifestEdit(const std::string& edit, uint64_t last_seq);

  // One record end to end: link transfer (+bounded transient retries), then
  // apply on the backup, then the protocol-level net.* adversaries (ack
  // loss, duplication). `forever` (async) keeps cycling on transient
  // failures until the pair crashes; a drop is recorded as lost tail. A
  // stale-epoch rejection deposes the primary permanently (non-transient).
  Status SendAndApply(Record* rec, bool forever);
  Status SendOverLink(uint64_t bytes);
  Status ApplyOnBackup(Record* rec);
  Status ApplyIntentOnBackup(Record* rec);
  // WAL-bypassing exact-sequence ingest on the backup (sorts + dedups).
  Status IngestOnBackup(std::vector<lsm::IngestEntry> ing);
  void RecordLoss(const Record& rec);

  // Fencing internals.
  Status CheckFence();   // Busy while fenced; counts the reject
  void RenewLease();     // on any successful round trip
  void NoteLeaseState(); // counts fresh -> lapsed transitions
  void HeartbeatLoop();

  // Sync: applies inline under ship_mu_ (FIFO). Async: enqueues with
  // backpressure; fails only if the pair crashes while waiting.
  Status Ship(Record rec);
  void ShipperLoop();

  // Streams the primary's existing contents to a freshly attached backup
  // (promote -> re-pair lifecycle). Two-sided merge at exact sequences.
  Status Bootstrap();

  ReplOptions options_;
  ReplNode backup_node_;
  // Backup-side Dev-LSM retry/breaker discipline (sanitized copy of the
  // pair's KvaccelOptions; hooks cleared).
  KvaccelOptions dev_retry_opts_;
  sim::SimEnv* env_;

  std::unique_ptr<sim::NetLink> link_;
  std::unique_ptr<KvaccelDB> primary_;
  std::unique_ptr<KvaccelDB> backup_;

  sim::SimMutex ship_mu_;  // sync mode: one record on the wire at a time
  Random64 net_rng_;

  // Async shipper state (all under q_mu_).
  sim::SimMutex q_mu_;
  sim::SimCondVar q_cv_;
  std::deque<Record> queue_;
  uint64_t queue_bytes_ = 0;
  bool shipper_busy_ = false;
  bool paused_ = false;
  bool stopping_ = false;
  sim::SimEnv::Thread* shipper_ = nullptr;

  // Heartbeat actor (its own mutex so lease renewals never contend with the
  // queue protocol; the ship itself serializes under ship_mu_).
  sim::SimMutex hb_mu_;
  sim::SimCondVar hb_cv_;
  bool hb_stop_ = false;
  sim::SimEnv::Thread* heartbeat_ = nullptr;

  // Fencing state. Cooperative scheduler: mutated only between yield points.
  uint64_t epoch_ = 1;
  Nanos lease_expiry_ = 0;
  bool lease_lapsed_noted_ = false;
  bool deposed_ = false;
  bool detach_requested_ = false;  // bails a shipper stuck in retries
  Nanos backup_last_applied_ns_ = 0;
  uint64_t applied_seq_ = 0;
  uint64_t backup_wal_seq_ = 0;  // highest seq applied via the backup's WAL

  ReplStats stats_;
  uint64_t last_assigned_seq_ = 0;
  bool closed_ = false;
};

}  // namespace kvaccel::core
