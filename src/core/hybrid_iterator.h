// HybridIterator (paper §V-F, Fig. 10): aggregates the Main-LSM iterator and
// the Dev-LSM device iterator into one range query over the whole database.
// An iterator comparator chooses, at each step, the iterator holding the
// smaller key; on equal keys the Metadata Manager arbitrates which side has
// the newest version. Dev-LSM tombstones hide the key from both sides.
//
// Snapshot discipline (DESIGN.md §9): all three inputs are pinned at
// construction — the main-LSM iterator's snapshot, the device iterator's
// merged view, and a copy of the Metadata Manager's key set for tie
// arbitration. A rollback draining the device mid-scan therefore cannot
// drop keys or flip a tie to a side whose copy was already retired; the
// scan observes the authority map as of its creation.
//
// Exposes the standard lsm::Iterator surface: key() is the user key,
// value() the encoded Value payload.
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/metadata_manager.h"
#include "devlsm/dev_lsm.h"
#include "lsm/iterator.h"

namespace kvaccel::core {

class HybridIterator : public lsm::Iterator {
 public:
  HybridIterator(std::unique_ptr<lsm::Iterator> main_iter,
                 std::unique_ptr<devlsm::DevLsm::Iterator> dev_iter,
                 MetadataManager* md)
      : main_(std::move(main_iter)),
        dev_(std::move(dev_iter)),
        md_snapshot_(md->SnapshotKeySet()) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    main_->SeekToFirst();
    dev_->SeekToFirst();
    ChooseNext();
  }

  void Seek(const Slice& target) override {
    main_->Seek(target);
    dev_->Seek(target);
    ChooseNext();
  }

  void Next() override;

  Slice key() const override { return Slice(current_key_); }
  Slice value() const override { return Slice(current_value_); }
  Status status() const override { return main_->status(); }

  // Which side produced the current entry (observability/tests).
  bool current_from_dev() const { return current_from_dev_; }

 private:
  // The "iterator comparator": evaluates both cursors and captures the next
  // live entry, advancing past duplicates and device tombstones.
  void ChooseNext();
  void AdvanceDevPast(const Slice& user_key);
  void AdvanceMainPast(const Slice& user_key);

  std::unique_ptr<lsm::Iterator> main_;
  std::unique_ptr<devlsm::DevLsm::Iterator> dev_;
  // Authority map as of iterator creation (see header comment).
  std::unordered_set<std::string> md_snapshot_;

  bool valid_ = false;
  bool current_from_dev_ = false;
  std::string current_key_;
  std::string current_value_;
};

}  // namespace kvaccel::core
