// ShardedKvaccelDB: shard-per-core engine (DESIGN.md §11).
//
// Routes one key space across N full KVACCEL stacks — each shard owns its
// own WAL, memtable, version set, Metadata Manager, Detector and Dev-LSM
// namespace — while every shard runs against the *same* SimEnv/HybridSsd:
// one PCIe link, one NAND array, one firmware core, one KV region. That
// shared-device contention is the point; two mechanisms arbitrate it:
//
//   FairShareArbiter   deep-compaction I/O and redirect DMA of all shards
//                      reserve bandwidth on one SFQ token bucket, so a
//                      compaction-heavy shard queues behind a light shard's
//                      redirects instead of starving them (sim/arbiter.h).
//   Redirect budget    shards compete for Dev-LSM capacity under a global or
//                      per-shard policy; the global split follows the
//                      Detector picture (stalled shards divide the budget).
//
// Determinism: shards are opened, written, iterated and closed in index
// order, and the arbiter's grant order is a pure function of the call
// sequence — same seed, byte-identical reports.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/kvaccel_db.h"
#include "fs/simfs.h"
#include "sim/arbiter.h"

namespace kvaccel::core {

enum class ShardPartition {
  kHash,   // Hash64(key) % N — uniform regardless of key shape
  kRange,  // first 8 key bytes, big-endian, multiply-shift split
};

enum class RedirectBudgetPolicy {
  // One budget for the whole device; while several shards stall, each may
  // hold at most budget / (number of stalled shards) — the Detector picture
  // feeds the split.
  kGlobal,
  // Static budget / N slice per shard, regardless of who is stalling.
  kPerShard,
};

struct ShardingOptions {
  int num_shards = 1;
  ShardPartition partition = ShardPartition::kHash;
  RedirectBudgetPolicy redirect_policy = RedirectBudgetPolicy::kGlobal;
  // Serving rate of the fair-share arbiter as a fraction of the device NAND
  // bandwidth. 1.0 = arbitrate at full device speed (ordering fairness only
  // kicks in under contention); < 1 additionally caps the background +
  // redirect traffic; 0 disables the arbiter entirely (each shard falls back
  // to its own compaction_rate_limit bucket, redirects unarbitrated).
  double arbiter_share = 1.0;
  uint64_t arbiter_burst_bytes = 1ull << 20;
  // Total Dev-LSM redirect budget in logical bytes across all shards.
  // 0 = derive: 90% of the device's aggregate KV-region capacity.
  uint64_t redirect_budget_bytes = 0;
  // Externally owned per-shard resources (crash/reopen tests): when
  // non-empty, must hold exactly num_shards entries; shard i uses entry i.
  // The file systems and Dev-LSMs then survive a Close/reopen of the router
  // (the device outlives the simulated host).
  std::vector<fs::SimFs*> external_fs;
  std::vector<devlsm::DevLsm*> external_devs;
};

// The shared world a sharded engine runs in. Per-shard file systems and
// Dev-LSMs are created (or attached) by Open, one per SSD namespace, so the
// SsdConfig must declare num_namespaces >= num_shards.
struct ShardEnv {
  sim::SimEnv* env = nullptr;
  ssd::HybridSsd* ssd = nullptr;
  sim::CpuPool* host_cpu = nullptr;
};

class ShardedKvaccelDB {
 public:
  static Status Open(const lsm::DbOptions& main_options,
                     const KvaccelOptions& kv_options,
                     const ShardingOptions& sharding, const ShardEnv& env,
                     std::unique_ptr<ShardedKvaccelDB>* db);
  ~ShardedKvaccelDB();

  // ---- Point operations (routed by ShardOf) ----
  // A multi-shard batch is split into per-shard sub-batches applied in shard
  // index order; atomicity is per shard, not across shards (an error may
  // leave earlier shards committed — callers treat the batch as ambiguous,
  // exactly like a torn crash).
  Status Write(const lsm::WriteOptions& wopts, lsm::WriteBatch* batch);
  Status Put(const lsm::WriteOptions& wopts, const Slice& key,
             const Value& value);
  Status Delete(const lsm::WriteOptions& wopts, const Slice& key);
  Status Get(const lsm::ReadOptions& ropts, const Slice& key, Value* value);

  // Cross-shard range query: K-way merge over per-shard hybrid iterators.
  // Shards hold disjoint key sets, so the merge is a strict global order.
  std::unique_ptr<lsm::Iterator> NewIterator(const lsm::ReadOptions& ropts);

  // ---- Maintenance (all loops run in shard index order) ----
  Status FlushAll();
  Status WaitForCompactionIdle();
  Status RollbackNow();
  Status RollbackShardNow(int shard);
  // §VI-D recovery across the fleet: every shard loses its volatile
  // metadata table, then drains its Dev-LSM namespace back into its
  // Main-LSM. Reports the total (sequential) recovery duration.
  Status CrashMetadataAndRecover(Nanos* recovery_duration);
  Status Close();

  // ---- Routing ----
  int ShardOf(const Slice& key) const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // ---- Introspection ----
  KvaccelDB* shard(int i) { return shards_[i].db.get(); }
  fs::SimFs* shard_fs(int i) { return shards_[i].fs; }
  sim::FairShareArbiter* arbiter() { return arbiter_.get(); }
  const ShardingOptions& sharding() const { return sharding_; }
  uint64_t redirect_budget_bytes() const { return redirect_budget_bytes_; }
  sim::SimEnv* sim_env() { return env_; }

  // Aggregate views across shards (counters summed, histograms and
  // per-second series merged, stall/slowdown regions unioned). Recomputed on
  // every call; the returned reference stays valid until the next call.
  const lsm::DbStats& AggregateStats() const;
  const lsm::DbStats& AggregateMainStats() const;
  KvaccelStats AggregateKvStats() const;
  lsm::BlockCacheStats AggregateBlockCacheStats() const;
  devlsm::DevLsmStats AggregateDevStats() const;

 private:
  struct Shard {
    std::unique_ptr<fs::SimFs> owned_fs;
    std::unique_ptr<devlsm::DevLsm> owned_dev;
    fs::SimFs* fs = nullptr;
    devlsm::DevLsm* dev = nullptr;
    std::unique_ptr<KvaccelDB> db;
  };

  ShardedKvaccelDB(const ShardingOptions& sharding, const ShardEnv& env);

  // Dev-LSM capacity admission for shard `shard` wanting `bytes` more.
  bool AdmitRedirect(int shard, uint64_t bytes) const;
  void AggregateDbStats(bool main_side, lsm::DbStats* out) const;

  ShardingOptions sharding_;
  sim::SimEnv* env_;
  ssd::HybridSsd* ssd_;
  uint64_t redirect_budget_bytes_ = 0;

  // Declared before shards_: shards close/destroy first, so their arbiter
  // callbacks never outlive the arbiter.
  std::unique_ptr<sim::FairShareArbiter> arbiter_;
  std::vector<Shard> shards_;

  mutable lsm::DbStats agg_fg_;    // AggregateStats cache
  mutable lsm::DbStats agg_main_;  // AggregateMainStats cache
  bool closed_ = false;
};

}  // namespace kvaccel::core
