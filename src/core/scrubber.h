// Online scrubber (DESIGN.md §9): a low-priority virtual-time actor that
// incrementally re-reads SST blocks and verifies checksums and metadata
// cross-links (key order, recorded range, entry count, max sequence) during
// idle device bandwidth. Latent media corruption — the simfs.read.bitflip
// class — is otherwise only found when a foreground read happens to touch
// the damaged block; the scrubber bounds that detection latency.
//
// Discipline:
//  - wakes every ScrubOptions::period and verifies at most ONE file;
//  - skips the wake-up entirely while the Detector reports stall pressure
//    (foreground writes own the bandwidth during a stall);
//  - a file failing verification `escalate_after` consecutive times is
//    escalated through the Detector's device-health circuit breaker, the
//    same path a dead Dev-LSM takes (persistent media trouble should stop
//    redirection too, not just log).
#pragma once

#include <cstdint>
#include <map>

#include "core/config.h"
#include "core/detector.h"
#include "lsm/db.h"
#include "sim/sim_env.h"

namespace kvaccel::core {

struct ScrubStats {
  uint64_t files_scanned = 0;   // files fully verified clean
  uint64_t bytes_scanned = 0;   // logical bytes re-read
  uint64_t passes = 0;          // full sweeps over the live file set
  uint64_t corruptions = 0;     // failed verifications (incl. repeats)
  uint64_t escalations = 0;     // circuit-breaker reports to the Detector
  uint64_t skipped_busy = 0;    // wake-ups skipped under stall pressure
  uint64_t deferred_for_resync = 0;  // wake-ups skipped during resync
};

class Scrubber {
 public:
  Scrubber(lsm::DB* main_db, Detector* detector, sim::SimEnv* env,
           const KvaccelOptions& options)
      : db_(main_db), detector_(detector), env_(env), options_(options) {}

  void Start();
  void Stop();

  // One scrub step (at most one file), callable directly from tests without
  // the background thread. Returns the verification status of the file it
  // examined (OK when idle-skipped or nothing to scrub).
  Status StepOnce();

  const ScrubStats& stats() const { return stats_; }

  // Reconciliation catch-up (DESIGN.md §12): while a deposed peer is being
  // resynced from this node, scrub wake-ups are deferred so the resync reads
  // don't compete with serving traffic for device bandwidth. Cooperative
  // scheduler: a plain flag flipped between yield points is safe.
  void SetResyncDeferred(bool deferred) { resync_deferred_ = deferred; }
  bool resync_deferred() const { return resync_deferred_; }

 private:
  void Loop();

  lsm::DB* db_;
  Detector* detector_;
  sim::SimEnv* env_;
  const KvaccelOptions& options_;

  sim::SimMutex mu_;
  sim::SimCondVar cv_;
  bool stop_ = false;
  bool resync_deferred_ = false;
  sim::SimEnv::Thread* thread_ = nullptr;

  // Round-robin position: smallest live file number > cursor_ goes next.
  uint64_t cursor_ = 0;
  // Consecutive verification failures per file (cleared on success or when
  // the file leaves the version).
  std::map<uint64_t, int> fail_streak_;
  ScrubStats stats_;
};

}  // namespace kvaccel::core
