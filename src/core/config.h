// KVACCEL configuration, calibrated to the paper's measurements:
//  - Detector/Rollback polling every 0.1 s (§VI-A);
//  - Detector check cost 1.37 µs; metadata insert/check/delete costs
//    0.45/0.20/0.28 µs (Table VI);
//  - rollback DMA chunk 512 KB (§V-E);
//  - lazy vs eager rollback scheduling (§V-E).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/units.h"
#include "devlsm/dev_lsm.h"
#include "ndp/ndp_device.h"
#include "ndp/offload_planner.h"
#include "ssd/hybrid_ssd.h"

namespace kvaccel::core {

enum class RollbackScheme {
  kLazy,   // wait until the workload will not be disturbed (write-heavy)
  kEager,  // roll back as soon as resources free up (read-heavy)
  kDisabled,  // never roll back during the run (paper Fig. 12 setup)
};

struct KvaccelOptions {
  // Detector (paper §V-C, §VI-A).
  Nanos detector_period = FromMillis(100);
  double detector_cpu_ns = 1370;  // 1.37 us per check (Table VI)

  // Metadata Manager per-op host costs (Table VI).
  double md_insert_ns = 450;
  double md_check_ns = 200;
  double md_delete_ns = 280;

  // Rollback Manager.
  RollbackScheme rollback = RollbackScheme::kLazy;
  // Eager: start as soon as this many consecutive calm detector periods.
  int eager_calm_periods = 1;
  // Lazy: require a longer quiet streak before touching the device.
  int lazy_calm_periods = 10;

  // Device-side write buffer.
  devlsm::DevLsmOptions dev;

  // Redirect writes when the Detector reports an imminent stall.
  bool redirection_enabled = true;

  // Device-error policy for the redirected write path. A Dev-LSM command
  // that fails transiently (IOError/Busy/TryAgain) is retried up to
  // dev_retry_limit times with exponential virtual-time backoff starting at
  // dev_retry_backoff. When the budget is exhausted the Detector latches the
  // device unhealthy, all writes fall back to the host path, and after
  // device_unhealthy_cooldown a single half-open probe may re-enable it.
  int dev_retry_limit = 3;
  Nanos dev_retry_backoff = FromMicros(200);
  // Dev-LSM retry delays use decorrelated jitter (sim/backoff.h) bounded by
  // this cap; the seed is offset per shard/node so co-located retriers
  // don't hammer the device in lockstep.
  Nanos dev_retry_backoff_cap = FromMillis(10);
  uint64_t dev_retry_jitter_seed = 0xDE77E4;
  Nanos device_unhealthy_cooldown = FromSecs(5);

  // Multi-device deployment (paper §V-D): host the key-value interface on a
  // second SSD instead of the hybrid single-device split. nullptr (default)
  // = single-device (Dev-LSM shares the Main-LSM's device).
  ssd::HybridSsd* kv_device = nullptr;

  // --- Device-offloaded compaction (NDP, DESIGN.md §13). Not owned; the
  // world (harness/test) creates one NdpDevice per SSD so sharded engines
  // share it, like the SSD itself. nullptr (or planner mode kOff) = every
  // compaction runs host-side. ---
  ndp::NdpDevice* ndp_device = nullptr;
  // Placement policy for the per-DB OffloadPlanner.
  ndp::PlannerOptions ndp_planner;

  // Externally owned Dev-LSM to attach instead of creating a fresh one.
  // Crash-recovery tests use this to keep redirected pairs alive across a
  // simulated host reboot (the device outlives the host process). Not owned.
  devlsm::DevLsm* external_dev = nullptr;

  // --- Sharded-engine hooks (DESIGN.md §11). Both optional; unset =
  // standalone single-shard behavior. ---
  // Redirect admission control: called with the batch's logical bytes before
  // a redirect; returning false forces the host (stalling) path. The sharded
  // router wires this to the global-vs-per-shard Dev-LSM capacity budget so
  // shards compete for redirect space instead of one filling the device.
  std::function<bool(uint64_t bytes)> redirect_admission;
  // Device-bandwidth arbitration for the redirect DMA: called with the
  // compound command's payload bytes before the device put; blocks in
  // virtual time until the reservation is granted and returns the ns queued.
  std::function<Nanos(uint64_t bytes)> redirect_arbiter;

  // --- Replication hooks (HA pair, DESIGN.md §12). Both optional. ---
  // Called after a redirected batch is durable in the Dev-LSM, BEFORE the
  // metadata flip acks it: ships the batch's Dev-LSM intent (keys, values,
  // host sequence range, tombstone marks) to the backup so the write can be
  // reconstructed on failover even though this node's device KV region is
  // gone. A non-OK return fails the redirect (the write is unacked and the
  // leaked device entries are superseded by recovery's seq comparison).
  std::function<Status(const std::vector<devlsm::DevLsm::BatchPut>& entries)>
      redirect_shipper;
  // Called after a rollback drain completes: tells the backup its mirrored
  // intents are now covered by the primary's Main-LSM (shipped via the WAL
  // stream is wrong — rollback ingests bypass the WAL — so the backup drains
  // its own mirror on this signal).
  std::function<void()> rollback_shipper;

  // Online scrubber (DESIGN.md §9): a low-priority actor that re-reads SST
  // blocks with checksum verification during idle bandwidth. Off by default
  // so existing benchmarks/tests keep their exact virtual-time schedules.
  struct ScrubOptions {
    bool enabled = false;
    // Wake-up cadence; each wake-up verifies at most one SST, and only when
    // the Detector sees no stall pressure (idle-bandwidth discipline).
    Nanos period = FromMillis(500);
    // Consecutive verification failures of the same file before the
    // scrubber escalates through the Detector's device-health circuit
    // breaker (transients get this many chances to clear first).
    int escalate_after = 3;
  };
  ScrubOptions scrub;
};

struct KvaccelStats {
  uint64_t detector_checks = 0;
  uint64_t redirected_writes = 0;   // served by Dev-LSM during stalls
  uint64_t direct_writes = 0;       // served by Main-LSM
  // Redirected groups: one PutCompound command per batch (tentpole path).
  uint64_t redirected_batches = 0;
  Histogram redirect_batch_latency;  // ns per redirected batch (device RTT)
  // Sharded engine: redirects refused by the capacity budget (the batch
  // took the host path instead) and time queued on the bandwidth arbiter.
  uint64_t redirect_admission_rejects = 0;
  uint64_t redirect_arbiter_wait_ns = 0;
  uint64_t dev_reads = 0;           // Gets answered by Dev-LSM
  uint64_t main_reads = 0;
  uint64_t rollbacks = 0;
  uint64_t rollback_entries = 0;
  Nanos rollback_total_ns = 0;
  uint64_t md_inserts = 0;
  uint64_t md_checks = 0;
  uint64_t md_deletes = 0;
  // Device-fault handling (fault-injection PR).
  uint64_t dev_retries = 0;       // Dev-LSM command retries after transients
  uint64_t fallback_writes = 0;   // entries rerouted to the host path after
                                  // the device retry budget ran out
  uint64_t device_unhealthy_events = 0;  // unhealthy latches (circuit opens)
};

}  // namespace kvaccel::core
