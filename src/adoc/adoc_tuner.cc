#include "adoc/adoc_tuner.h"

#include <algorithm>

namespace kvaccel::adoc {

AdocTuner::AdocTuner(lsm::DB* db, sim::SimEnv* env,
                     const lsm::DbOptions& db_options,
                     const AdocOptions& options)
    : db_(db), env_(env), db_options_(db_options), options_(options) {}

void AdocTuner::Start() {
  thread_ = env_->Spawn("adoc-tuner", [this] { TuningLoop(); });
}

void AdocTuner::Stop() {
  if (thread_ == nullptr) return;
  {
    sim::SimLockGuard l(mu_);
    stop_requested_ = true;
    cv_.NotifyAll();
  }
  env_->Join(thread_);
  thread_ = nullptr;
}

void AdocTuner::TuningLoop() {
  sim::SimLockGuard l(mu_);
  while (!stop_requested_) {
    if (cv_.WaitFor(mu_, options_.tuning_period)) {
      continue;  // notified: re-check stop flag
    }
    TuneOnce();
  }
}

void AdocTuner::TuneOnce() {
  stats_.tuning_rounds++;
  lsm::StallSignals sig = db_->GetStallSignals();

  // Overflow detection at the memtable->L0 boundary: L0 backlog or immutable
  // memtables queueing up means compaction/flush cannot keep pace.
  bool l0_pressure =
      sig.l0_files >= static_cast<int>(
                          static_cast<double>(db_options_.l0_slowdown_writes_trigger) *
                          options_.l0_pressure_fraction);
  bool imm_pressure = sig.immutable_memtables >= 1;
  bool pending_pressure =
      sig.pending_compaction_bytes >
      db_options_.soft_pending_compaction_bytes_limit / 2;
  bool overflow = l0_pressure || imm_pressure || pending_pressure;

  int threads = db_->compaction_threads();
  uint64_t buffer = db_->write_buffer_size();

  if (overflow) {
    calm_streak_ = 0;
    if (threads < options_.max_compaction_threads) {
      db_->SetCompactionThreads(threads + 1);
      // Subcompaction width follows the thread budget: a wider budget is
      // useless to the one L0->L1 job unless it may also split wider.
      db_->SetMaxSubcompactions(threads + 1);
      stats_.thread_increases++;
    } else if (buffer < options_.max_write_buffer) {
      // Threads saturated: absorb the burst with a bigger batch instead —
      // but never grow past what the hard pending-compaction limit can
      // absorb, or the "relief" valve would steer straight into a stall.
      uint64_t target = std::min(options_.max_write_buffer, buffer * 2);
      target = std::min(target, SafeBufferCeiling(sig));
      if (target > buffer) {
        db_->SetWriteBufferSize(target);
        stats_.buffer_increases++;
      } else {
        stats_.buffer_growth_clamped++;
      }
    }
  } else {
    calm_streak_++;
    if (calm_streak_ >= options_.calm_periods_to_decay) {
      // One knob per decay event, in LIFO order (buffer grows last, so it
      // decays first); resetting the streak means the other knob needs a
      // fresh calm run — a single calm window can't whipsaw both.
      calm_streak_ = 0;
      if (buffer > options_.min_write_buffer) {
        db_->SetWriteBufferSize(
            std::max(options_.min_write_buffer, buffer / 2));
        stats_.buffer_decreases++;
      } else if (threads > options_.min_compaction_threads) {
        db_->SetCompactionThreads(threads - 1);
        db_->SetMaxSubcompactions(std::max(1, threads - 1));
        stats_.thread_decreases++;
      }
    }
  }
}

uint64_t AdocTuner::SafeBufferCeiling(const lsm::StallSignals& sig) const {
  // Every byte buffered beyond what compaction absorbs becomes
  // pending-compaction debt at the next flush. With up to
  // max_write_buffer_number buffers queueable, cap each at its share of half
  // the remaining headroom to the hard limit, so one more burst cannot cross
  // it outright.
  uint64_t hard = sig.hard_pending_limit;
  if (hard == 0) return UINT64_MAX;  // no hard stop configured
  if (sig.pending_compaction_bytes >= hard) return 0;
  uint64_t headroom = (hard - sig.pending_compaction_bytes) / 2;
  int bufs = std::max(1, sig.max_write_buffer_number);
  return headroom / static_cast<uint64_t>(bufs);
}

}  // namespace kvaccel::adoc
