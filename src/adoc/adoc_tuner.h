// ADOC baseline (Yu et al., FAST '23): automatic dataflow harmonization for
// LSM-KVS. The reproduction implements the two knobs the KVACCEL paper
// measures ADOC by:
//   1. dynamically increasing the number of compaction threads when data
//      overflows at the flush/L0 boundary (raising host CPU usage — Fig 12c);
//   2. dynamically growing the write-buffer (batch) size to absorb bursts;
// and, like the original, it "still falls back to slowdowns as a last
// resort" (paper §III-A) — the underlying DB keeps its delayed-write
// mechanism unless the experiment disables it.
//
// The tuner is a monitor thread sampling StallSignals on a fixed period and
// nudging both knobs up under overflow pressure / decaying them when calm.
#pragma once

#include <cstdint>

#include "lsm/db.h"
#include "sim/sim_env.h"

namespace kvaccel::adoc {

struct AdocOptions {
  Nanos tuning_period = FromMillis(100);
  int min_compaction_threads = 1;
  int max_compaction_threads = 4;
  uint64_t min_write_buffer = 64ull << 20;
  uint64_t max_write_buffer = 256ull << 20;
  // Overflow pressure thresholds, as fractions of the stall triggers.
  double l0_pressure_fraction = 0.5;
  // Consecutive calm periods before decaying a knob back down.
  int calm_periods_to_decay = 20;
};

struct AdocStats {
  uint64_t tuning_rounds = 0;
  uint64_t thread_increases = 0;
  uint64_t thread_decreases = 0;
  uint64_t buffer_increases = 0;
  uint64_t buffer_decreases = 0;
  // Buffer growths vetoed because they would overrun the headroom to the
  // hard pending-compaction stall threshold.
  uint64_t buffer_growth_clamped = 0;
};

class AdocTuner {
 public:
  AdocTuner(lsm::DB* db, sim::SimEnv* env, const lsm::DbOptions& db_options,
            const AdocOptions& options);

  // Spawns the tuning thread.
  void Start();
  // Signals the thread to exit and joins it.
  void Stop();

  const AdocStats& stats() const { return stats_; }

 private:
  void TuningLoop();
  void TuneOnce();
  // Largest write-buffer size growth may reach without risking a straight
  // run into the hard pending-compaction stall (see TuneOnce).
  uint64_t SafeBufferCeiling(const lsm::StallSignals& sig) const;

  lsm::DB* db_;
  sim::SimEnv* env_;
  lsm::DbOptions db_options_;
  AdocOptions options_;
  AdocStats stats_;

  sim::SimMutex mu_;
  sim::SimCondVar cv_;
  bool stop_requested_ = false;
  sim::SimEnv::Thread* thread_ = nullptr;
  int calm_streak_ = 0;
};

}  // namespace kvaccel::adoc
