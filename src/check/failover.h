// Failover promotion and partition reconciliation for the two-node HA pair
// (DESIGN.md §12).
//
// PromoteNode turns a surviving backup node into a serving primary:
//
//   1. Offline DbChecker pass over the node's Main-LSM files (the node just
//      absorbed a crash protocol — torn WAL tails and orphan SSTs are legal;
//      errors are repaired with DbChecker::Repair and re-checked).
//   2. KvaccelDB::Open with the node's external Dev-LSM attached: a
//      non-empty mirror (replicated redirect intents not yet covered by a
//      rollback signal) is drained into the Main-LSM by the §VI-D
//      sequence-comparison recovery that Open already performs.
//   3. Live dual-interface check (CheckDualInterface) on the promoted node.
//
// Promotion after a partition additionally bumps the node's durable fencing
// epoch (`new_epoch`): the FENCE file is written before the node opens, so a
// healed, deposed primary's first shipped record finds the newer epoch and
// self-fences permanently.
//
// RejoinNode is the other half of partition tolerance: it reconciles a
// healed, deposed primary against the serving node and brings it back as a
// consistent replica:
//
//   1. Quarantine the diverged tail: offline Check, then Repair with the
//      divergence frontier (the highest sequence the old backup had applied
//      when it was detached) — SSTs and WAL batches above the frontier were
//      never acked anywhere and are cut.
//   2. Adopt the new fencing epoch (durable FENCE write).
//   3. Open the node and walk both DBs: every key where the nodes disagree
//      is shipped from the serving node over a resync NetLink, charged in
//      256 KiB chunks (optionally through a FairShareArbiter client so the
//      resync shares bandwidth fairly with serving traffic).
//   4. Apply on the rejoining node: kDelta ships flushed SST-state via the
//      WAL-bypassing IngestSortedBatch path at exact serving sequences (the
//      RDMA-index-replication idea from PAPERS.md — zero bytes through the
//      write path); kWalReplay re-runs every entry through the full write
//      path for comparison (the report carries both byte counts so the
//      delta-vs-replay claim is measurable).
//   5. Verify convergence: both nodes' live key sets and iterator order must
//      match byte-identically.
//
// While a resync is in flight the serving node's Scrubber is deferred
// (scrub.deferred_for_resync) so reconciliation I/O does not compete with
// client traffic.
//
// This lives in the check layer, not core: promotion and reconciliation ARE
// checker/repair workflows, and core cannot depend on kvx_check.
#pragma once

#include <memory>
#include <string>

#include "check/db_checker.h"
#include "core/kvaccel_db.h"
#include "core/replicated_kvaccel_db.h"
#include "sim/arbiter.h"

namespace kvaccel::check {

struct FailoverReport {
  Nanos promote_ns = 0;          // wall (virtual) time for steps 1-3
  uint64_t drained_entries = 0;  // Dev-LSM mirror entries re-hosted at open
  bool repaired = false;         // offline Repair had to run
  int checker_errors = 0;        // errors AFTER repair (0 = clean promote)
  int checker_warnings = 0;
  uint64_t fence_epoch = 0;      // durable epoch the node serves under
  std::string first_error;       // first surviving error, for the trace
};

// Promotes the surviving node described by (main_options, kv_options, node).
// Option structs are the node's own (hooks cleared by the caller; this
// function also clears replication hooks defensively — a promoted node is a
// single node until it re-pairs). Must run on a simulated thread; the node's
// DB must be closed and its crash protocol (DropAllDirty/ClearCrash) done.
// `new_epoch` != 0 persists a bumped fencing epoch before the node opens
// (partition promotions MUST bump so the deposed primary gets fenced).
Status PromoteNode(const lsm::DbOptions& main_options,
                   const core::KvaccelOptions& kv_options,
                   const core::ReplNode& node, sim::SimEnv* env,
                   FailoverReport* report,
                   std::unique_ptr<core::KvaccelDB>* promoted,
                   uint64_t new_epoch = 0);

enum class ResyncMode { kWalReplay, kDelta };

struct RejoinOptions {
  ResyncMode mode = ResyncMode::kDelta;
  // Divergence frontier: the highest sequence applied on the old backup
  // (ReplicatedKvaccelDB::applied_seq() at detach/close). Everything above
  // it on the rejoining node is unacked divergence and is quarantined.
  // UINT64_MAX skips tail quarantine (pure catch-up resync).
  uint64_t frontier = UINT64_MAX;
  // Fencing epoch to adopt (0 = keep whatever the node's FENCE file holds).
  uint64_t new_epoch = 0;
  // Resync interconnect (same defaults as ReplOptions).
  double net_bytes_per_sec = 1.25e9;
  Nanos net_latency = FromMicros(30);
  // Optional: route resync link charges through a FairShareArbiter client so
  // reconciliation shares bandwidth with serving traffic. The client slot
  // must be registered by the caller; -1 = no arbitration.
  sim::FairShareArbiter* arbiter = nullptr;
  int arbiter_client = -1;
};

struct RejoinReport {
  Nanos rejoin_ns = 0;            // wall (virtual) time end to end
  bool repaired = false;          // offline Repair ran (it always does)
  int checker_errors = 0;         // errors AFTER repair (0 = clean rejoin)
  int checker_warnings = 0;
  uint64_t fence_epoch = 0;       // epoch the node rejoined under
  uint64_t quarantined_keys = 0;  // keys whose diverged version was replaced
  uint64_t resync_entries = 0;    // entries shipped (puts + tombstones)
  uint64_t resync_bytes = 0;      // payload charged to the resync link
  uint64_t write_path_bytes = 0;  // bytes pushed through the node's write
                                  // path (0 in delta mode — that's the point)
  uint64_t wal_replay_bytes = 0;  // what full WAL replay would have moved
  uint64_t scrub_deferred = 0;    // serving-side scrub wake-ups deferred
  std::string first_error;
};

// Reconciles the healed node described by (main_options, kv_options, node)
// against `serving` and leaves it closed, converged and fenced at
// options.new_epoch — ready to re-pair as the backup of a fresh
// ReplicatedKvaccelDB::Open. Must run on a simulated thread; the node's DB
// must be closed (its crash protocol done if it crashed rather than healed).
// `serving` stays open and serving throughout.
Status RejoinNode(const lsm::DbOptions& main_options,
                  const core::KvaccelOptions& kv_options,
                  const core::ReplNode& node, core::KvaccelDB* serving,
                  const RejoinOptions& options, sim::SimEnv* env,
                  RejoinReport* report);

}  // namespace kvaccel::check
