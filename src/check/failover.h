// Failover promotion for the two-node HA pair (DESIGN.md §12).
//
// PromoteNode turns a surviving backup node into a serving primary:
//
//   1. Offline DbChecker pass over the node's Main-LSM files (the node just
//      absorbed a crash protocol — torn WAL tails and orphan SSTs are legal;
//      errors are repaired with DbChecker::Repair and re-checked).
//   2. KvaccelDB::Open with the node's external Dev-LSM attached: a
//      non-empty mirror (replicated redirect intents not yet covered by a
//      rollback signal) is drained into the Main-LSM by the §VI-D
//      sequence-comparison recovery that Open already performs.
//   3. Live dual-interface check (CheckDualInterface) on the promoted node.
//
// This lives in the check layer, not core: promotion IS a checker/repair
// workflow, and core cannot depend on kvx_check.
#pragma once

#include <memory>
#include <string>

#include "check/db_checker.h"
#include "core/kvaccel_db.h"
#include "core/replicated_kvaccel_db.h"

namespace kvaccel::check {

struct FailoverReport {
  Nanos promote_ns = 0;          // wall (virtual) time for steps 1-3
  uint64_t drained_entries = 0;  // Dev-LSM mirror entries re-hosted at open
  bool repaired = false;         // offline Repair had to run
  int checker_errors = 0;        // errors AFTER repair (0 = clean promote)
  int checker_warnings = 0;
  std::string first_error;       // first surviving error, for the trace
};

// Promotes the surviving node described by (main_options, kv_options, node).
// Option structs are the node's own (hooks cleared by the caller; this
// function also clears replication hooks defensively — a promoted node is a
// single node until it re-pairs). Must run on a simulated thread; the node's
// DB must be closed and its crash protocol (DropAllDirty/ClearCrash) done.
Status PromoteNode(const lsm::DbOptions& main_options,
                   const core::KvaccelOptions& kv_options,
                   const core::ReplNode& node, sim::SimEnv* env,
                   FailoverReport* report,
                   std::unique_ptr<core::KvaccelDB>* promoted);

}  // namespace kvaccel::check
