#include "check/failover.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "sim/net_link.h"

namespace kvaccel::check {

namespace {
// Per-entry framing overhead on the resync wire (matches the replication
// shipper's kIntentEntryBytes: seq + sizes + type).
constexpr uint64_t kResyncEntryBytes = 24;
constexpr uint64_t kResyncChunkBytes = 256u << 10;
}  // namespace

Status PromoteNode(const lsm::DbOptions& main_options,
                   const core::KvaccelOptions& kv_options,
                   const core::ReplNode& node, sim::SimEnv* env,
                   FailoverReport* report,
                   std::unique_ptr<core::KvaccelDB>* promoted,
                   uint64_t new_epoch) {
  FailoverReport local;
  FailoverReport* rep = report != nullptr ? report : &local;
  *rep = FailoverReport{};
  Nanos t0 = env->Now();

  // Partition promotions fence the deposed primary by bumping the durable
  // epoch BEFORE this node serves a single write: once the FENCE file holds
  // the new epoch, any record the old primary ships after heal is rejected
  // as stale and deposes it permanently (DESIGN.md §12).
  uint64_t epoch = core::ReadFenceEpoch(node.fs);
  if (new_epoch > epoch) {
    Status fs = core::WriteFenceEpoch(node.fs, new_epoch);
    if (!fs.ok()) {
      rep->first_error = fs.ToString();
      return fs;
    }
    epoch = new_epoch;
  }
  rep->fence_epoch = epoch;

  lsm::DbOptions opts = main_options;
  opts.wal_shipper = nullptr;
  opts.manifest_shipper = nullptr;
  core::KvaccelOptions kv = kv_options;
  kv.external_dev = node.dev;
  kv.redirect_shipper = nullptr;
  kv.rollback_shipper = nullptr;

  lsm::DbEnv denv;
  denv.env = env;
  denv.ssd = node.ssd;
  denv.fs = node.fs;
  denv.host_cpu = node.host_cpu;

  // Step 1: offline verification, repair on errors, then re-check. A torn
  // WAL tail or orphan SST is a warning (legal after a crash); anything the
  // repair cannot clear fails the promotion.
  DbChecker checker(opts, denv);
  CheckReport cr = checker.Check();
  if (cr.errors() > 0) {
    rep->repaired = true;
    Status rs = checker.Repair(&cr);
    if (!rs.ok()) {
      rep->checker_errors = cr.errors();
      rep->first_error = rs.ToString();
      return rs;
    }
    cr = checker.Check();
  }
  rep->checker_errors = cr.errors();
  rep->checker_warnings = cr.warnings();
  if (cr.errors() > 0) {
    for (const auto& issue : cr.issues) {
      if (issue.severity == CheckIssue::Severity::kError) {
        rep->first_error = issue.what;
        break;
      }
    }
    return Status::Corruption("promote: checker errors after repair: " +
                              rep->first_error);
  }

  // Step 2: open. KvaccelDB::Open replays the WAL and then drains a
  // non-empty attached Dev-LSM (the replicated mirror) into the Main-LSM by
  // sequence comparison — this is where redirected writes that died with the
  // primary's device get re-hosted.
  std::unique_ptr<core::KvaccelDB> db;
  Status s = core::KvaccelDB::Open(opts, kv, denv, &db);
  if (!s.ok()) {
    rep->first_error = s.ToString();
    return s;
  }
  rep->drained_entries = db->kv_stats().rollback_entries;

  // Step 3: live dual-interface invariant on the promoted node.
  CheckReport live;
  DbChecker::CheckDualInterface(db.get(), &live);
  rep->checker_errors += live.errors();
  rep->checker_warnings += live.warnings();
  if (live.errors() > 0) {
    for (const auto& issue : live.issues) {
      if (issue.severity == CheckIssue::Severity::kError) {
        rep->first_error = issue.what;
        break;
      }
    }
    (void)db->Close();
    return Status::Corruption("promote: dual-interface errors: " +
                              rep->first_error);
  }

  rep->promote_ns = env->Now() - t0;
  *promoted = std::move(db);
  return Status::OK();
}

namespace {

// The reconciliation body proper; split out so RejoinNode can wrap it with
// the scrub-deferral bracket and the always-close of the rejoining DB.
Status RejoinBody(const lsm::DbOptions& main_options,
                  const core::KvaccelOptions& kv_options,
                  const core::ReplNode& node, core::KvaccelDB* serving,
                  const RejoinOptions& options, sim::SimEnv* env,
                  RejoinReport* rep, std::unique_ptr<core::KvaccelDB>* out) {
  lsm::DbOptions opts = main_options;
  opts.wal_shipper = nullptr;
  opts.manifest_shipper = nullptr;
  core::KvaccelOptions kv = kv_options;
  kv.external_dev = node.dev;
  kv.redirect_shipper = nullptr;
  kv.rollback_shipper = nullptr;

  lsm::DbEnv denv;
  denv.env = env;
  denv.ssd = node.ssd;
  denv.fs = node.fs;
  denv.host_cpu = node.host_cpu;

  // Step 1: quarantine the diverged tail. Repair always runs here — even a
  // checker-clean node can hold unacked entries above the frontier (they
  // committed locally before the partition fenced the node), and only the
  // frontier cut removes them. Then the node must re-check clean.
  DbChecker checker(opts, denv);
  CheckReport cr = checker.Check();
  rep->repaired = true;
  Status s = checker.Repair(&cr, options.frontier);
  if (!s.ok()) {
    rep->checker_errors = cr.errors();
    rep->first_error = s.ToString();
    return s;
  }
  cr = checker.Check();
  rep->checker_errors = cr.errors();
  rep->checker_warnings = cr.warnings();
  if (cr.errors() > 0) {
    for (const auto& issue : cr.issues) {
      if (issue.severity == CheckIssue::Severity::kError) {
        rep->first_error = issue.what;
        break;
      }
    }
    return Status::Corruption("rejoin: checker errors after repair: " +
                              rep->first_error);
  }

  // Step 2: adopt the serving side's fencing epoch durably, so a node that
  // crashes mid-rejoin still comes back fenced against its own stale past.
  uint64_t epoch = core::ReadFenceEpoch(node.fs);
  if (options.new_epoch > epoch) {
    s = core::WriteFenceEpoch(node.fs, options.new_epoch);
    if (!s.ok()) {
      rep->first_error = s.ToString();
      return s;
    }
    epoch = options.new_epoch;
  }
  rep->fence_epoch = epoch;

  // Step 3: make the serving Main-LSM authoritative before diffing — drain
  // its Dev-LSM residue (same order the replicated Open uses) and, in delta
  // mode, flush so what ships really is SST-resident state, not memtable
  // contents replayed through a write path.
  s = serving->RollbackNow();
  if (!s.ok()) {
    rep->first_error = s.ToString();
    return s;
  }
  if (options.mode == ResyncMode::kDelta) {
    s = serving->FlushAll();
    if (!s.ok()) {
      rep->first_error = s.ToString();
      return s;
    }
  }

  std::unique_ptr<core::KvaccelDB> db;
  s = core::KvaccelDB::Open(opts, kv, denv, &db);
  if (!s.ok()) {
    rep->first_error = s.ToString();
    return s;
  }
  core::KvaccelDB* node_db = db.get();
  *out = std::move(db);

  // Both nodes must agree on one sequence space after the rejoin (the next
  // re-pair's watermarks assume it). Advance the serving clock past anything
  // the rejoining node still holds; IngestSortedBatch advances the rejoining
  // node's clock past the sequences shipped to it.
  uint64_t node_last = node_db->main()->LastSequence();
  while (serving->main()->LastSequence() < node_last) {
    uint64_t gap = node_last - serving->main()->LastSequence();
    serving->main()->AllocateSequence(static_cast<uint32_t>(
        std::min<uint64_t>(gap, std::numeric_limits<uint32_t>::max())));
  }

  // The resync interconnect: every shipped byte pays wire time, in 256 KiB
  // chunks, optionally queued through the caller's FairShareArbiter client
  // so reconciliation traffic shares bandwidth instead of starving serving
  // I/O (Acquire blocks the simulated thread until granted).
  sim::NetLink link(env, "resync", options.net_bytes_per_sec,
                    options.net_latency);
  uint64_t pending_bytes = 0;
  auto charge = [&](uint64_t b) -> Status {
    rep->resync_bytes += b;
    pending_bytes += b;
    if (pending_bytes < kResyncChunkBytes) return Status::OK();
    if (options.arbiter != nullptr && options.arbiter_client >= 0) {
      options.arbiter->Acquire(options.arbiter_client, pending_bytes);
    }
    Status cs = link.Send(pending_bytes);
    pending_bytes = 0;
    return cs;
  };
  auto drain_link = [&]() -> Status {
    if (pending_bytes == 0) return Status::OK();
    if (options.arbiter != nullptr && options.arbiter_client >= 0) {
      options.arbiter->Acquire(options.arbiter_client, pending_bytes);
    }
    Status cs = link.Send(pending_bytes);
    pending_bytes = 0;
    return cs;
  };

  const bool delta = options.mode == ResyncMode::kDelta;
  lsm::ReadOptions ro;
  lsm::WriteOptions wo;
  std::vector<lsm::IngestEntry> batch;
  auto flush_batch = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    Status fs = node_db->main()->IngestSortedBatch(batch);
    batch.clear();
    return fs;
  };

  // Step 4, forward pass: every serving key whose version differs on the
  // rejoining node ships across. Delta mode lands it through the
  // WAL-bypassing ingest path at its exact serving sequence; WAL-replay mode
  // re-runs it through the full write path for comparison.
  auto it = serving->main()->NewIterator(ro);
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    std::string key = it->key().ToString();
    Value sv;
    lsm::SequenceNumber sseq = 0;
    s = serving->main()->GetWithSequence(ro, key, &sv, &sseq);
    if (s.IsNotFound()) continue;  // raced a deletion; reverse pass's job
    if (!s.ok()) return s;
    Value nv;
    lsm::SequenceNumber nseq = 0;
    Status ns = node_db->main()->GetWithSequence(ro, key, &nv, &nseq);
    if (!ns.ok() && !ns.IsNotFound()) return ns;
    if (ns.ok() && nv == sv) continue;  // converged
    if (nseq > options.frontier) rep->quarantined_keys++;

    uint64_t payload = key.size() + sv.logical_size() + kResyncEntryBytes;
    rep->resync_entries++;
    rep->wal_replay_bytes += payload;
    s = charge(payload);
    if (!s.ok()) return s;
    if (delta) {
      lsm::IngestEntry e;
      e.key = key;
      e.value = sv;
      // The serving version's own sequence, unless the node holds a newer
      // (diverged, value-different) sequence that would shadow it.
      e.seq = sseq > nseq ? sseq : serving->main()->AllocateSequence(1);
      batch.push_back(std::move(e));
      if (batch.size() >= 512) {
        s = flush_batch();
        if (!s.ok()) return s;
      }
    } else {
      // Straight into the Main-LSM write path (WAL + memtable): replay must
      // not take the stall-redirect detour into the Dev-LSM mirror, which
      // the convergence walk below would never see.
      rep->write_path_bytes += payload;
      s = node_db->main()->Put(wo, key, sv);
      if (!s.ok()) return s;
    }
  }
  if (!it->status().ok()) return it->status();
  s = flush_batch();
  if (!s.ok()) return s;

  // Step 4, reverse pass: keys live on the rejoining node but gone on the
  // serving one become tombstones. Collected first, applied after — the
  // node's iterator must not see its own DB mutate underneath it.
  struct PendingDelete {
    std::string key;
    lsm::SequenceNumber serving_seq;  // serving tombstone's seq (0 = elided)
    lsm::SequenceNumber node_seq;     // version being buried
  };
  std::vector<PendingDelete> deletes;
  auto nit = node_db->main()->NewIterator(ro);
  for (nit->SeekToFirst(); nit->Valid(); nit->Next()) {
    std::string key = nit->key().ToString();
    Value sv;
    lsm::SequenceNumber sseq = 0;
    s = serving->main()->GetWithSequence(ro, key, &sv, &sseq);
    if (s.ok()) continue;  // forward pass covered it
    if (!s.IsNotFound()) return s;
    Value nv;
    lsm::SequenceNumber nseq = 0;
    Status ns = node_db->main()->GetWithSequence(ro, key, &nv, &nseq);
    if (!ns.ok() && !ns.IsNotFound()) return ns;
    if (nseq > options.frontier) rep->quarantined_keys++;
    deletes.push_back(PendingDelete{std::move(key), sseq, nseq});
  }
  if (!nit->status().ok()) return nit->status();
  for (auto& d : deletes) {
    uint64_t payload = d.key.size() + kResyncEntryBytes;
    rep->resync_entries++;
    rep->wal_replay_bytes += payload;
    s = charge(payload);
    if (!s.ok()) return s;
    if (delta) {
      lsm::IngestEntry e;
      e.key = std::move(d.key);
      e.tombstone = true;
      // The serving tombstone's sequence when it still exists and buries the
      // node's version; otherwise a fresh one from the shared clock.
      e.seq = (d.serving_seq > d.node_seq)
                  ? d.serving_seq
                  : serving->main()->AllocateSequence(1);
      batch.push_back(std::move(e));  // node iterator order: already sorted
      if (batch.size() >= 512) {
        s = flush_batch();
        if (!s.ok()) return s;
      }
    } else {
      rep->write_path_bytes += payload;
      s = node_db->main()->Delete(wo, d.key);
      if (!s.ok()) return s;
    }
  }
  s = flush_batch();
  if (!s.ok()) return s;
  s = drain_link();
  if (!s.ok()) return s;

  // Step 5: convergence proof — lockstep walk of both live key spaces, byte
  // comparison of every key and value. This is the acceptance bar: after
  // reconciliation the nodes are indistinguishable.
  auto si = serving->main()->NewIterator(ro);
  auto vi = node_db->main()->NewIterator(ro);
  si->SeekToFirst();
  vi->SeekToFirst();
  while (si->Valid() && vi->Valid()) {
    if (si->key() != vi->key()) {
      rep->first_error = "diverged key: serving=" + si->key().ToString() +
                         " node=" + vi->key().ToString();
      return Status::Corruption("rejoin: " + rep->first_error);
    }
    if (si->value() != vi->value()) {
      rep->first_error = "diverged value at key " + si->key().ToString();
      return Status::Corruption("rejoin: " + rep->first_error);
    }
    si->Next();
    vi->Next();
  }
  if (si->Valid() != vi->Valid()) {
    rep->first_error = si->Valid()
                           ? "node is missing keys from " + si->key().ToString()
                           : "node has extra keys from " + vi->key().ToString();
    return Status::Corruption("rejoin: " + rep->first_error);
  }
  if (!si->status().ok()) return si->status();
  if (!vi->status().ok()) return vi->status();
  return Status::OK();
}

}  // namespace

Status RejoinNode(const lsm::DbOptions& main_options,
                  const core::KvaccelOptions& kv_options,
                  const core::ReplNode& node, core::KvaccelDB* serving,
                  const RejoinOptions& options, sim::SimEnv* env,
                  RejoinReport* report) {
  RejoinReport local;
  RejoinReport* rep = report != nullptr ? report : &local;
  *rep = RejoinReport{};
  Nanos t0 = env->Now();

  // Bracket the whole reconciliation with scrub deferral on the serving
  // node: resync reads and serving traffic already share the device; the
  // background scrubber should not pile on (satellite: DESIGN.md §12).
  core::Scrubber* scrub = serving->scrubber();
  uint64_t scrub_base = scrub != nullptr ? scrub->stats().deferred_for_resync
                                         : 0;
  if (scrub != nullptr) scrub->SetResyncDeferred(true);

  std::unique_ptr<core::KvaccelDB> db;
  Status s = RejoinBody(main_options, kv_options, node, serving, options, env,
                        rep, &db);
  if (db != nullptr) {
    Status cs = db->Close();
    if (s.ok()) s = cs;
  }
  if (scrub != nullptr) {
    rep->scrub_deferred = scrub->stats().deferred_for_resync - scrub_base;
    scrub->SetResyncDeferred(false);
  }
  if (!s.ok() && rep->first_error.empty()) rep->first_error = s.ToString();
  rep->rejoin_ns = env->Now() - t0;
  return s;
}

}  // namespace kvaccel::check
