#include "check/failover.h"

namespace kvaccel::check {

Status PromoteNode(const lsm::DbOptions& main_options,
                   const core::KvaccelOptions& kv_options,
                   const core::ReplNode& node, sim::SimEnv* env,
                   FailoverReport* report,
                   std::unique_ptr<core::KvaccelDB>* promoted) {
  FailoverReport local;
  FailoverReport* rep = report != nullptr ? report : &local;
  *rep = FailoverReport{};
  Nanos t0 = env->Now();

  lsm::DbOptions opts = main_options;
  opts.wal_shipper = nullptr;
  opts.manifest_shipper = nullptr;
  core::KvaccelOptions kv = kv_options;
  kv.external_dev = node.dev;
  kv.redirect_shipper = nullptr;
  kv.rollback_shipper = nullptr;

  lsm::DbEnv denv;
  denv.env = env;
  denv.ssd = node.ssd;
  denv.fs = node.fs;
  denv.host_cpu = node.host_cpu;

  // Step 1: offline verification, repair on errors, then re-check. A torn
  // WAL tail or orphan SST is a warning (legal after a crash); anything the
  // repair cannot clear fails the promotion.
  DbChecker checker(opts, denv);
  CheckReport cr = checker.Check();
  if (cr.errors() > 0) {
    rep->repaired = true;
    Status rs = checker.Repair(&cr);
    if (!rs.ok()) {
      rep->checker_errors = cr.errors();
      rep->first_error = rs.ToString();
      return rs;
    }
    cr = checker.Check();
  }
  rep->checker_errors = cr.errors();
  rep->checker_warnings = cr.warnings();
  if (cr.errors() > 0) {
    for (const auto& issue : cr.issues) {
      if (issue.severity == CheckIssue::Severity::kError) {
        rep->first_error = issue.what;
        break;
      }
    }
    return Status::Corruption("promote: checker errors after repair: " +
                              rep->first_error);
  }

  // Step 2: open. KvaccelDB::Open replays the WAL and then drains a
  // non-empty attached Dev-LSM (the replicated mirror) into the Main-LSM by
  // sequence comparison — this is where redirected writes that died with the
  // primary's device get re-hosted.
  std::unique_ptr<core::KvaccelDB> db;
  Status s = core::KvaccelDB::Open(opts, kv, denv, &db);
  if (!s.ok()) {
    rep->first_error = s.ToString();
    return s;
  }
  rep->drained_entries = db->kv_stats().rollback_entries;

  // Step 3: live dual-interface invariant on the promoted node.
  CheckReport live;
  DbChecker::CheckDualInterface(db.get(), &live);
  rep->checker_errors += live.errors();
  rep->checker_warnings += live.warnings();
  if (live.errors() > 0) {
    for (const auto& issue : live.issues) {
      if (issue.severity == CheckIssue::Severity::kError) {
        rep->first_error = issue.what;
        break;
      }
    }
    (void)db->Close();
    return Status::Corruption("promote: dual-interface errors: " +
                              rep->first_error);
  }

  rep->promote_ns = env->Now() - t0;
  *promoted = std::move(db);
  return Status::OK();
}

}  // namespace kvaccel::check
