#include "check/model_db.h"

namespace kvaccel::check {

void ModelDb::Put(const std::string& key, const Value& value) {
  last_seq_++;
  live_[key] = Entry{value, last_seq_};
}

void ModelDb::Delete(const std::string& key) {
  last_seq_++;
  live_.erase(key);
}

bool ModelDb::Get(const std::string& key, Value* value) const {
  auto it = live_.find(key);
  if (it == live_.end()) return false;
  if (value != nullptr) *value = it->second.value;
  return true;
}

bool ModelDb::Contains(const std::string& key) const {
  return live_.count(key) > 0;
}

}  // namespace kvaccel::check
