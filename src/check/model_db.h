// ModelDb: the in-memory oracle the nemesis harness compares KvaccelDB
// against (DESIGN.md §9). It implements the semantics a correct KV store
// must show — last write wins, deletes hide keys, iteration is key-ordered
// over live keys only — with none of the machinery under test: no LSM, no
// device, no recovery. Every acknowledged operation is applied here
// synchronously, so after any crash-recovery cycle the real DB must agree
// with this map modulo the single in-flight (unacknowledged) operation.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/value.h"

namespace kvaccel::check {

class ModelDb {
 public:
  struct Entry {
    Value value;
    uint64_t seq = 0;  // model op sequence of the deciding write
  };

  void Put(const std::string& key, const Value& value);
  void Delete(const std::string& key);
  // false when the key is absent (never written, or deleted).
  bool Get(const std::string& key, Value* value) const;
  bool Contains(const std::string& key) const;

  // Live keys in order — what a full scan of the real DB must produce.
  const std::map<std::string, Entry>& live() const { return live_; }
  size_t size() const { return live_.size(); }
  // Model op sequence of the most recent mutation (diagnostics).
  uint64_t last_seq() const { return last_seq_; }

 private:
  std::map<std::string, Entry> live_;
  uint64_t last_seq_ = 0;
};

}  // namespace kvaccel::check
