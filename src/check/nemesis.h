// Nemesis: model-oracle simulation testing (DESIGN.md §9).
//
// RunNemesis drives a seeded random op stream (put / delete / batch write /
// get / seek+scan / forced rollback) against a full KVACCEL stack while a
// seeded fault-and-crash schedule arms one crash site per cycle — including
// mid-rollback and mid-redirect kill points — then runs the crash protocol
// (close, drop page cache, clear latch, reopen) and verifies the recovered
// DB against an in-memory ModelDb: every live key at its exact value, every
// deleted key absent, and a full hybrid-iterator walk in model order.
//
// Everything is deterministic from NemesisOptions::seed: the same options
// replay the exact same op stream, fault schedule and virtual-time
// interleaving, so a failure is reproducible from its header line alone.
// On divergence the full op trace is dumped to trace_dump_dir (when set) and
// ParseNemesisTrace turns that file back into the options that reproduce it.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace kvaccel::check {

struct NemesisOptions {
  uint64_t seed = 0x5EED;
  int cycles = 30;
  int ops_per_cycle = 150;
  uint64_t key_space = 400;
  uint32_t value_size = 4096;
  // > 1 runs the schedule against a ShardedKvaccelDB (one namespace, WAL and
  // Detector per shard, fair-share arbiter on). Crash cycles may arm a
  // second kill site so the machine can die while one shard is mid-rollback
  // and another mid-flush; recovery verifies every shard's acked writes and
  // the cross-shard iterator order. 1 = the plain single-shard stack,
  // byte-compatible with earlier schedules.
  int shards = 1;
  // Two-node HA pair (DESIGN.md §12): the op stream drives a
  // ReplicatedKvaccelDB instead of a single stack, the crash table gains the
  // replication sites (crash.net.send.mid, net.send.transient), and every
  // cycle ends in a failover: the pair dies, the backup is promoted
  // (check::PromoteNode) and verified against the oracle, the dead node is
  // wiped, and the pair re-forms with roles swapped. Forces shards == 1.
  bool ha = false;
  // 0 = sync acks (every acked write must be served by the promoted node),
  // 1 = async acks (a bounded, reported tail may be lost).
  int repl_ack = 0;
  // Partition nemesis (DESIGN.md §12): instead of crash-site cycles, the HA
  // schedule rotates partition scenarios — symmetric cut with failover,
  // asymmetric ack-loss cut with failover, a brief cut healed before the
  // lease lapses (no promotion), and a flapping-link chaos cycle (delay
  // spikes, duplicates, transient drops). Full cycles verify the fencing
  // protocol end to end: the partitioned primary self-fences on lease lapse
  // (no write acked on both sides of the split), the backup promotes under a
  // bumped fencing epoch, the healed primary deposes itself on the first
  // stale-epoch rejection, and check::RejoinNode reconciles it back in as a
  // byte-identical replica. Forces ha == true and sync acks.
  bool net_partition = false;
  // Reconciliation transport for the rejoin step: 0 = WAL replay (every
  // entry re-runs the write path), 1 = delta resync (flushed state ships
  // through the WAL-bypassing ingest path; zero write-path bytes).
  int resync_mode = 1;
  // Device-offloaded compaction (DESIGN.md §13): attach an NdpDevice and
  // force every compaction through the COMPACT path. The crash table gains
  // the offload kill points — the first cycles rotate through every
  // crash.ndp.* site so each one is exercised, then the combined table is
  // drawn from — and transient cycles also arm ndp.compact.transient so
  // recovery is verified under device rejections and host fallbacks.
  bool ndp = false;
  // When non-empty: on divergence, write the op trace to
  // <trace_dump_dir>/nemesis-<seed>.trace on the host file system.
  std::string trace_dump_dir;
  // Self-test hook: corrupt one model entry after this cycle's recovery so
  // the harness must detect (and dump) a divergence. -1 = never.
  int corrupt_model_at_cycle = -1;
};

struct NemesisResult {
  bool ok = true;
  std::string error;       // first divergence, empty when ok
  std::string trace;       // full deterministic op trace (header + op lines)
  std::string trace_path;  // non-empty if the trace was dumped to disk
  int cycles_run = 0;
  int crashes = 0;         // cycles that actually died at a crash site
  uint64_t ops_executed = 0;
  // HA mode only.
  int failovers = 0;                    // promotions performed (one per cycle)
  uint64_t ha_lost_entries = 0;         // async tail entries lost, summed
  uint64_t ha_drained_entries = 0;      // mirror entries re-hosted at promote
  uint64_t ha_backup_dev_fallbacks = 0; // intents degraded to the host path
  // Partition nemesis only (net_partition).
  int partitions = 0;                   // partition windows opened
  int rejoins = 0;                      // deposed primaries reconciled back
  uint64_t ha_fenced_rejects = 0;       // writes refused by a fenced primary
  uint64_t ha_resync_entries = 0;       // entries shipped by RejoinNode
  uint64_t ha_resync_bytes = 0;         // payload charged to the resync link
  uint64_t ha_write_path_bytes = 0;     // resync bytes through the write path
  uint64_t ha_wal_replay_bytes = 0;     // what full WAL replay would have moved
  uint64_t ha_quarantined_keys = 0;     // diverged versions replaced at rejoin
};

// Builds its own simulation world and runs the whole schedule; returns after
// the virtual-time run completes.
NemesisResult RunNemesis(const NemesisOptions& options);

// Reads the header line of a dumped trace back into `out` so one command
// replays the failing schedule.
Status ParseNemesisTrace(const std::string& path, NemesisOptions* out);

}  // namespace kvaccel::check

