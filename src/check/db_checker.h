// DbChecker: offline consistency verification and repair for the Main-LSM
// on-disk state, plus live checks of KVACCEL's dual-interface invariant
// (DESIGN.md §9).
//
// Check() replays the MANIFEST without mutating anything (VersionSet::
// Recover rewrites a fresh manifest; the checker must not) and then
// cross-checks, per the invariant catalogue:
//   - CURRENT points at a readable MANIFEST; every edit decodes;
//   - every live SST exists, opens, passes per-block CRC, holds strictly
//     ascending internal keys inside its recorded [smallest, largest],
//     and matches its recorded entry count and max sequence;
//   - L1+ files are disjoint in user-key space (level non-overlap);
//   - no file's max sequence exceeds the replayed last_sequence
//     (sequence monotonicity — LogAndApply stamps last_sequence into
//     every edit, so the replayed value is current);
//   - WAL files at/after the manifest's log number decode record-by-record
//     as WriteBatches with ascending sequences; a torn tail is benign,
//     corruption before valid records is not.
// Orphan SSTs and stale logs are warnings: a power cut legally strands
// partially flushed files.
//
// Repair() rebuilds a checker-passing state from whatever survived:
// corrupt SSTs and stale manifests are quarantined (renamed *.bad), the
// valid prefix of each WAL is salvaged, and a fresh MANIFEST is written
// with every good SST at L0 under its original number — the L0 max_seq
// shadow check keeps reads sequence-correct, exactly as IngestSortedBatch
// relies on. Uncorrupted keys therefore stay readable.
//
// The volatile half of the invariant (Metadata Manager vs Dev-LSM) cannot
// be seen from files; CheckDualInterface/RepairDualInterface run against a
// live KvaccelDB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "lsm/db.h"
#include "lsm/options.h"
#include "lsm/version.h"

namespace kvaccel::core {
class KvaccelDB;
}

namespace kvaccel::check {

struct CheckIssue {
  enum class Severity { kWarning, kError };
  Severity severity = Severity::kError;
  std::string what;
};

struct CheckReport {
  std::vector<CheckIssue> issues;
  // Repair() records what it did here.
  std::vector<std::string> actions;
  // Inventory actually examined (a report that checked nothing is not a
  // clean report).
  int manifest_edits = 0;
  int sst_files_checked = 0;
  int wal_files_checked = 0;

  void Error(std::string what);
  void Warn(std::string what);
  int errors() const;
  int warnings() const;
  bool ok() const { return errors() == 0; }
  std::string ToString() const;
};

class DbChecker {
 public:
  DbChecker(const lsm::DbOptions& options, const lsm::DbEnv& env)
      : options_(options), denv_(env) {
    // The checker always verifies block CRCs, whatever the DB ran with.
    options_.verify_checksums = true;
  }

  // Offline verification of the files in the DbEnv's file system. Must run
  // on a simulated thread (reads charge device time); the DB must be closed.
  CheckReport Check();

  // Offline repair (see file comment). Also must run on a simulated thread
  // against a closed DB. Reports actions into `report`.
  //
  // `max_valid_seq` is the fencing frontier for partition reconciliation
  // (DESIGN.md §12): entries above it were never acknowledged anywhere (the
  // deposed primary's diverged tail), so any SST whose max_seq exceeds it is
  // quarantined and each WAL is additionally cut at the first batch that
  // crosses it. UINT64_MAX (the default) disables frontier enforcement.
  Status Repair(CheckReport* report, uint64_t max_valid_seq = UINT64_MAX);

  // Live dual-interface invariant: every Metadata Manager entry resolvable
  // in the Dev-LSM at the recorded sequence, no key authoritative in both
  // paths, no unsuperseded device residue without a metadata record.
  static void CheckDualInterface(core::KvaccelDB* db, CheckReport* report);
  // Drains orphaned Dev-LSM residue back to the host: drops the (possibly
  // inconsistent) metadata table and re-runs sequence-ordered recovery.
  static Status RepairDualInterface(core::KvaccelDB* db);

  static std::string SstName(uint64_t number);
  static std::string LogName(uint64_t number);

 private:
  // Result of replaying the MANIFEST chain offline.
  struct ManifestState {
    std::string manifest_name;
    uint64_t log_number = 0;
    uint64_t next_file_number = 0;
    lsm::SequenceNumber last_sequence = 0;
    std::vector<std::vector<lsm::FileMetaPtr>> levels;
    ManifestState() : levels(lsm::kNumLevels) {}
  };

  Status ReplayManifest(ManifestState* state, CheckReport* report);
  // Full-content verification of one SST; fills `meta` (number/level unset)
  // from what was actually read when non-null.
  Status VerifySst(const std::string& name, uint64_t number,
                   lsm::FileMetaData* meta);
  void CheckWal(const ManifestState& state, CheckReport* report);

  lsm::DbOptions options_;
  lsm::DbEnv denv_;
};

}  // namespace kvaccel::check
