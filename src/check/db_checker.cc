#include "check/db_checker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "core/kvaccel_db.h"
#include "lsm/dbformat.h"
#include "lsm/sst.h"
#include "lsm/wal.h"
#include "lsm/write_batch.h"

namespace kvaccel::check {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

std::string U64(uint64_t v) { return std::to_string(v); }

}  // namespace

// ---------------- CheckReport ----------------

void CheckReport::Error(std::string what) {
  issues.push_back({CheckIssue::Severity::kError, std::move(what)});
}

void CheckReport::Warn(std::string what) {
  issues.push_back({CheckIssue::Severity::kWarning, std::move(what)});
}

int CheckReport::errors() const {
  int n = 0;
  for (const auto& i : issues) {
    if (i.severity == CheckIssue::Severity::kError) n++;
  }
  return n;
}

int CheckReport::warnings() const {
  return static_cast<int>(issues.size()) - errors();
}

std::string CheckReport::ToString() const {
  std::string out = "check: " + U64(errors()) + " error(s), " +
                    U64(warnings()) + " warning(s) [" + U64(manifest_edits) +
                    " manifest edit(s), " + U64(sst_files_checked) +
                    " sst(s), " + U64(wal_files_checked) + " wal(s)]\n";
  for (const auto& i : issues) {
    out += (i.severity == CheckIssue::Severity::kError ? "  [E] " : "  [W] ");
    out += i.what;
    out += '\n';
  }
  for (const auto& a : actions) {
    out += "  [R] " + a + '\n';
  }
  return out;
}

// ---------------- Naming ----------------

std::string DbChecker::SstName(uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%06llu.sst",
           static_cast<unsigned long long>(number));
  return buf;
}

std::string DbChecker::LogName(uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%06llu.log",
           static_cast<unsigned long long>(number));
  return buf;
}

// ---------------- Manifest replay (read-only) ----------------

Status DbChecker::ReplayManifest(ManifestState* state, CheckReport* report) {
  if (!denv_.fs->FileExists("CURRENT")) {
    return Status::Corruption("CURRENT missing");
  }
  std::unique_ptr<fs::RandomAccessFile> current;
  Status s = denv_.fs->NewRandomAccessFile("CURRENT", &current);
  if (!s.ok()) return s;
  std::string manifest_name;
  s = current->Read(0, current->physical_size(), &manifest_name);
  if (!s.ok()) return s;
  if (!denv_.fs->FileExists(manifest_name)) {
    return Status::Corruption("CURRENT points at missing " + manifest_name);
  }
  state->manifest_name = manifest_name;

  std::unique_ptr<fs::RandomAccessFile> file;
  s = denv_.fs->NewRandomAccessFile(manifest_name, &file);
  if (!s.ok()) return s;
  lsm::LogReader reader(std::move(file));
  std::string payload;
  Status rs = Status::OK();
  while (reader.ReadRecord(&payload, &rs)) {
    lsm::VersionEdit edit;
    s = lsm::VersionEdit::DecodeFrom(payload, &edit);
    if (!s.ok()) {
      return Status::Corruption(manifest_name + ": undecodable edit: " +
                                s.ToString());
    }
    report->manifest_edits++;
    if (edit.has_log_number()) state->log_number = edit.log_number();
    if (edit.has_next_file_number()) {
      state->next_file_number = edit.next_file_number();
    }
    if (edit.has_last_sequence()) state->last_sequence = edit.last_sequence();
    for (const auto& [level, number] : edit.deleted()) {
      if (level < 0 || level >= lsm::kNumLevels) {
        return Status::Corruption(manifest_name + ": delete at bad level " +
                                  U64(level));
      }
      auto& files = state->levels[level];
      auto it = std::find_if(files.begin(), files.end(), [&](const auto& f) {
        return f->number == number;
      });
      if (it == files.end()) {
        report->Warn(manifest_name + ": edit deletes unknown file " +
                     U64(number) + " at L" + U64(level));
      } else {
        files.erase(it);
      }
    }
    for (const auto& [level, f] : edit.added()) {
      if (level < 0 || level >= lsm::kNumLevels) {
        return Status::Corruption(manifest_name + ": add at bad level " +
                                  U64(level));
      }
      state->levels[level].push_back(f);
    }
  }
  // A torn tail (crash between append and sync) ends iteration cleanly;
  // a bad record with valid records after it is reported as corruption.
  return rs;
}

// ---------------- SST verification ----------------

Status DbChecker::VerifySst(const std::string& name, uint64_t number,
                            lsm::FileMetaData* meta) {
  std::shared_ptr<lsm::SstReader> reader;
  Status s = lsm::SstReader::Open(options_, denv_.fs, name, number,
                                  /*cache=*/nullptr, &reader);
  if (!s.ok()) return s;
  lsm::ReadOptions ropts;
  ropts.verify_checksums = true;
  ropts.fill_cache = false;
  lsm::InternalKeyComparator icmp;
  auto iter = reader->NewIterator(ropts);
  uint64_t entries = 0;
  lsm::SequenceNumber max_seq = 0;
  std::string prev, smallest, largest;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    Slice key = iter->key();
    if (!prev.empty() && icmp.Compare(Slice(prev), key) >= 0) {
      return Status::Corruption(name + ": internal keys out of order");
    }
    if (entries == 0) smallest.assign(key.data(), key.size());
    prev.assign(key.data(), key.size());
    max_seq = std::max(max_seq, lsm::ExtractSequence(key));
    entries++;
  }
  if (!iter->status().ok()) return iter->status();
  largest = prev;
  if (meta != nullptr) {
    meta->num_entries = entries;
    meta->max_seq = max_seq;
    meta->smallest = smallest;
    meta->largest = largest;
    (void)denv_.fs->GetFileSize(name, &meta->logical_size);
  }
  return Status::OK();
}

// ---------------- WAL tail sanity ----------------

void DbChecker::CheckWal(const ManifestState& state, CheckReport* report) {
  for (const std::string& name : denv_.fs->GetChildren()) {
    if (name.size() != 10 || name.substr(6) != ".log") continue;
    uint64_t number = strtoull(name.c_str(), nullptr, 10);
    if (number < state.log_number) {
      report->Warn("stale WAL " + name + " (manifest log number " +
                   U64(state.log_number) + ")");
      continue;
    }
    std::unique_ptr<fs::RandomAccessFile> file;
    Status s = denv_.fs->NewRandomAccessFile(name, &file);
    if (!s.ok()) {
      report->Error(name + ": " + s.ToString());
      continue;
    }
    lsm::LogReader reader(std::move(file));
    std::string payload;
    Status rs = Status::OK();
    uint64_t next_seq = 0;
    bool first = true;
    while (reader.ReadRecord(&payload, &rs)) {
      lsm::WriteBatch batch;
      Status ps = lsm::WriteBatch::ParseFrom(payload, &batch);
      if (!ps.ok()) {
        report->Error(name + ": WAL record does not parse as a batch: " +
                      ps.ToString());
        break;
      }
      if (!first && batch.Sequence() < next_seq) {
        report->Error(name + ": WAL sequences regress (" +
                      U64(batch.Sequence()) + " after " + U64(next_seq) + ")");
      }
      next_seq = batch.Sequence() + batch.Count();
      first = false;
    }
    if (!rs.ok()) {
      // Mid-log corruption (valid records after the bad one): not a torn
      // tail, so the DB would refuse recovery here too.
      report->Error(name + ": " + rs.ToString());
    }
    report->wal_files_checked++;
  }
}

// ---------------- Check ----------------

CheckReport DbChecker::Check() {
  CheckReport report;
  ManifestState st;
  Status s = ReplayManifest(&st, &report);
  if (!s.ok()) {
    report.Error("MANIFEST: " + s.ToString());
    return report;
  }

  lsm::InternalKeyComparator icmp;
  std::set<uint64_t> live;
  for (int level = 0; level < lsm::kNumLevels; level++) {
    for (const auto& f : st.levels[level]) {
      if (!live.insert(f->number).second) {
        report.Error("file " + U64(f->number) +
                     " appears twice in the manifest");
      }
      std::string name = SstName(f->number);
      if (!denv_.fs->FileExists(name)) {
        report.Error("MANIFEST references missing SST " + name + " at L" +
                     U64(level));
        continue;
      }
      lsm::FileMetaData observed;
      s = VerifySst(name, f->number, &observed);
      report.sst_files_checked++;
      if (!s.ok()) {
        report.Error(name + ": " + s.ToString());
        continue;
      }
      if (observed.num_entries != f->num_entries) {
        report.Error(name + ": entry count " + U64(observed.num_entries) +
                     " != recorded " + U64(f->num_entries));
      }
      if (observed.max_seq != f->max_seq) {
        report.Error(name + ": max seq " + U64(observed.max_seq) +
                     " != recorded " + U64(f->max_seq));
      }
      if (observed.smallest != f->smallest || observed.largest != f->largest) {
        report.Error(name + ": key range differs from recorded range");
      }
      if (f->max_seq > st.last_sequence) {
        report.Error(name + ": max seq " + U64(f->max_seq) +
                     " exceeds manifest last_sequence " +
                     U64(st.last_sequence) + " (sequence monotonicity)");
      }
    }
  }

  // Level non-overlap (L1+ only; L0 legally overlaps).
  for (int level = 1; level < lsm::kNumLevels; level++) {
    auto files = st.levels[level];
    std::sort(files.begin(), files.end(), [&](const auto& a, const auto& b) {
      return icmp.Compare(Slice(a->smallest), Slice(b->smallest)) < 0;
    });
    for (size_t i = 1; i < files.size(); i++) {
      Slice prev_largest = lsm::ExtractUserKey(files[i - 1]->largest);
      Slice cur_smallest = lsm::ExtractUserKey(files[i]->smallest);
      int cmp = prev_largest.compare(cur_smallest);
      if (cmp > 0) {
        report.Error("L" + U64(level) + " files " + U64(files[i - 1]->number) +
                     " and " + U64(files[i]->number) +
                     " overlap in user-key space");
      } else if (cmp == 0) {
        // A user key's versions split across two files: point lookups probe
        // one file per level, so this deserves eyes even if no query has
        // tripped on it yet.
        report.Warn("L" + U64(level) + " files " + U64(files[i - 1]->number) +
                    " and " + U64(files[i]->number) +
                    " share a boundary user key");
      }
    }
  }

  // Inventory sweep: orphans and strangers are warnings (a power cut legally
  // strands a partially flushed SST; recovery simply never references it).
  for (const std::string& name : denv_.fs->GetChildren()) {
    if (name == "CURRENT" || name == "CURRENT.tmp" || name == "KVX_INDEX" ||
        name == "FENCE" || name == "FENCE.tmp" || name == st.manifest_name) {
      continue;
    }
    if (EndsWith(name, ".bad")) {
      report.Warn("quarantined file " + name);
      continue;
    }
    if (StartsWith(name, "MANIFEST-")) {
      report.Warn("stale manifest " + name);
      continue;
    }
    if (name.size() == 10 && name.substr(6) == ".sst") {
      uint64_t number = strtoull(name.c_str(), nullptr, 10);
      if (live.count(number) == 0) {
        report.Warn("orphan SST " + name + " (not referenced by MANIFEST)");
      }
      continue;
    }
    if (name.size() == 10 && name.substr(6) == ".log") continue;  // below
    report.Warn("unknown file " + name);
  }

  CheckWal(st, &report);
  return report;
}

// ---------------- Repair ----------------

Status DbChecker::Repair(CheckReport* report, uint64_t max_valid_seq) {
  std::vector<std::pair<uint64_t, std::string>> ssts, logs;
  std::vector<std::string> manifests;
  uint64_t max_number = 0;
  for (const std::string& name : denv_.fs->GetChildren()) {
    if (name.size() == 10 && name.substr(6) == ".sst") {
      uint64_t n = strtoull(name.c_str(), nullptr, 10);
      ssts.emplace_back(n, name);
      max_number = std::max(max_number, n);
    } else if (name.size() == 10 && name.substr(6) == ".log") {
      uint64_t n = strtoull(name.c_str(), nullptr, 10);
      logs.emplace_back(n, name);
      max_number = std::max(max_number, n);
    } else if (StartsWith(name, "MANIFEST-") && !EndsWith(name, ".bad")) {
      manifests.push_back(name);
      uint64_t n = strtoull(name.c_str() + 9, nullptr, 10);
      max_number = std::max(max_number, n);
    }
  }
  std::sort(ssts.begin(), ssts.end());
  std::sort(logs.begin(), logs.end());

  // 1. Keep every SST that passes full verification; quarantine the rest.
  std::vector<lsm::FileMetaPtr> good;
  lsm::SequenceNumber last_sequence = 0;
  for (const auto& [number, name] : ssts) {
    auto meta = std::make_shared<lsm::FileMetaData>();
    meta->number = number;
    Status s = VerifySst(name, number, meta.get());
    if (s.ok() && meta->num_entries > 0 && meta->max_seq > max_valid_seq) {
      // Diverged tail: entries above the fencing frontier were never acked
      // anywhere, so the whole file is quarantined (resync restores any
      // acked keys it straddled from the serving node).
      Status rs = denv_.fs->RenameFile(name, name + ".bad");
      if (!rs.ok()) return rs;
      report->actions.push_back("quarantined " + name +
                                ": diverged tail (max_seq " +
                                U64(meta->max_seq) + " > frontier " +
                                U64(max_valid_seq) + ")");
    } else if (s.ok() && meta->num_entries > 0) {
      last_sequence = std::max(last_sequence, meta->max_seq);
      good.push_back(std::move(meta));
      report->actions.push_back("kept SST " + name);
    } else {
      Status rs = denv_.fs->RenameFile(name, name + ".bad");
      if (!rs.ok()) return rs;
      report->actions.push_back(
          "quarantined " + name + ": " +
          (s.ok() ? std::string("empty table") : s.ToString()));
    }
  }

  // 2. Salvage the valid prefix of every WAL (recovery replays them all:
  // the new manifest's log number is the smallest surviving log).
  uint64_t log_number = 0;
  for (const auto& [number, name] : logs) {
    std::unique_ptr<fs::RandomAccessFile> file;
    Status s = denv_.fs->NewRandomAccessFile(name, &file);
    if (!s.ok()) return s;
    lsm::LogReader reader(std::move(file));
    std::vector<std::string> valid;
    std::string payload;
    Status rs = Status::OK();
    bool cut = false;
    bool frontier_cut = false;
    while (reader.ReadRecord(&payload, &rs)) {
      lsm::WriteBatch batch;
      if (!lsm::WriteBatch::ParseFrom(payload, &batch).ok()) {
        cut = true;  // framing survived but the payload is damaged
        break;
      }
      if (batch.Count() > 0 &&
          batch.Sequence() + batch.Count() - 1 > max_valid_seq) {
        // First batch past the fencing frontier: this and everything after
        // it is the diverged tail a partitioned primary WAL-appended but
        // never got acked — drop it so recovery cannot resurrect it.
        cut = true;
        frontier_cut = true;
        break;
      }
      valid.push_back(payload);
    }
    if (!rs.ok()) cut = true;
    if (cut) {
      std::unique_ptr<fs::WritableFile> out;
      s = denv_.fs->NewWritableFile(name, &out);  // O_TRUNC semantics
      if (!s.ok()) return s;
      lsm::LogWriter writer(std::move(out));
      for (const std::string& rec : valid) {
        s = writer.AddRecord(rec, rec.size());
        if (!s.ok()) return s;
      }
      s = writer.Sync();
      if (!s.ok()) return s;
      s = writer.Close();
      if (!s.ok()) return s;
      report->actions.push_back(
          "salvaged " + U64(valid.size()) + " record(s) of " + name +
          (frontier_cut ? " (diverged tail cut at frontier " +
                              U64(max_valid_seq) + ")"
                        : ""));
    }
    if (log_number == 0 || number < log_number) log_number = number;
  }

  // 3. Fresh MANIFEST: one snapshot edit, every good SST at L0 under its
  // original number. The L0 probe path picks the highest-sequence decider
  // among overlapping files (the max_seq shadow check), so losing the level
  // structure never loses sequence correctness.
  uint64_t manifest_number = max_number + 1;
  std::string manifest_name = "MANIFEST-";
  {
    char buf[16];
    snprintf(buf, sizeof(buf), "%06llu",
             static_cast<unsigned long long>(manifest_number));
    manifest_name += buf;
  }
  lsm::VersionEdit snapshot;
  snapshot.SetLogNumber(log_number);
  snapshot.SetNextFileNumber(manifest_number + 1);
  snapshot.SetLastSequence(last_sequence);
  for (const auto& f : good) snapshot.AddFile(0, f);
  std::unique_ptr<fs::WritableFile> mfile;
  Status s = denv_.fs->NewWritableFile(manifest_name, &mfile);
  if (!s.ok()) return s;
  lsm::LogWriter mwriter(std::move(mfile));
  std::string payload;
  snapshot.EncodeTo(&payload);
  s = mwriter.AddRecord(payload, payload.size());
  if (!s.ok()) return s;
  s = mwriter.Sync();
  if (!s.ok()) return s;
  s = mwriter.Close();
  if (!s.ok()) return s;
  report->actions.push_back("rebuilt " + manifest_name + " with " +
                            U64(good.size()) + " SST(s) at L0");

  // 4. Quarantine the manifests the rebuild replaces.
  for (const std::string& name : manifests) {
    s = denv_.fs->RenameFile(name, name + ".bad");
    if (!s.ok()) return s;
    report->actions.push_back("quarantined " + name);
  }

  // 5. Repoint CURRENT atomically (the LevelDB idiom).
  std::unique_ptr<fs::WritableFile> tmp;
  s = denv_.fs->NewWritableFile("CURRENT.tmp", &tmp);
  if (!s.ok()) return s;
  s = tmp->Append(manifest_name);
  if (!s.ok()) return s;
  s = tmp->Sync();
  if (!s.ok()) return s;
  s = tmp->Close();
  if (!s.ok()) return s;
  return denv_.fs->RenameFile("CURRENT.tmp", "CURRENT");
}

// ---------------- Live dual-interface invariant ----------------

void DbChecker::CheckDualInterface(core::KvaccelDB* db, CheckReport* report) {
  // Newest-version-only device view with host sequence numbers.
  std::map<std::string, uint64_t> dev_view;
  if (!db->dev()->Empty()) {
    (void)db->dev()->BulkScan([&](const devlsm::DevLsm::ScanEntry& e) {
      dev_view[e.key] = e.host_seq;
    });
  }
  std::set<std::string> md_keys;
  for (const auto& [key, md_seq] : db->metadata()->Entries()) {
    md_keys.insert(key);
    auto it = dev_view.find(key);
    if (it == dev_view.end()) {
      report->Error("metadata entry not resolvable in Dev-LSM: " + key);
      continue;
    }
    if (it->second != md_seq) {
      report->Error("metadata seq " + U64(md_seq) + " != device host seq " +
                    U64(it->second) + " for " + key);
    }
    Value unused;
    lsm::SequenceNumber main_seq = 0;
    Status s = db->main()->GetWithSequence({}, key, &unused, &main_seq);
    if (!s.ok() && !s.IsNotFound()) {
      report->Error("main read failed for " + key + ": " + s.ToString());
      continue;
    }
    if (md_seq != 0 && main_seq >= md_seq) {
      report->Error("key authoritative in both paths: " + key + " (main seq " +
                    U64(main_seq) + " >= md seq " + U64(md_seq) + ")");
    }
  }
  // Device entries without a metadata record: fine while superseded by a
  // newer host write (the 3-1 path deleted the record); fatal when the
  // device copy is the newest version — no read path reaches it, and a
  // trusted rollback would drop it.
  for (const auto& [key, host_seq] : dev_view) {
    if (md_keys.count(key) > 0) continue;
    if (host_seq == 0) {
      report->Warn("unversioned device entry without metadata: " + key);
      continue;
    }
    Value unused;
    lsm::SequenceNumber main_seq = 0;
    Status s = db->main()->GetWithSequence({}, key, &unused, &main_seq);
    if (!s.ok() && !s.IsNotFound()) {
      report->Error("main read failed for " + key + ": " + s.ToString());
      continue;
    }
    if (main_seq >= host_seq) {
      report->Warn("superseded device residue: " + key);
    } else {
      report->Error("orphaned device entry holds newest version of " + key +
                    " (host seq " + U64(host_seq) + " > main seq " +
                    U64(main_seq) + ") with no metadata record");
    }
  }
}

Status DbChecker::RepairDualInterface(core::KvaccelDB* db) {
  // Drop the (possibly inconsistent) volatile table and re-run the
  // sequence-ordered metadata-less recovery: every device pair either wins
  // by sequence (drained to the host) or is superseded (dropped), after
  // which the device is empty and the invariant holds vacuously.
  return db->CrashMetadataAndRecover(nullptr);
}

}  // namespace kvaccel::check
