#include "check/nemesis.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/failover.h"
#include "check/model_db.h"
#include "common/random.h"
#include "common/value.h"
#include "core/kvaccel_db.h"
#include "core/replicated_kvaccel_db.h"
#include "core/sharded_kvaccel_db.h"
#include "devlsm/dev_lsm.h"
#include "fs/simfs.h"
#include "lsm/db.h"
#include "ndp/ndp_device.h"
#include "ndp/offload_planner.h"
#include "sim/cpu_pool.h"
#include "sim/fault.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

namespace kvaccel::check {

namespace {

// Crash sites armed round the schedule, with the nth-hit ceiling matched to
// how often each site is hit per cycle (WAL sites fire per write; flush,
// manifest and compaction sites only every few thousand written bytes;
// rollback and redirect sites only when those paths actually run).
struct CrashSite {
  const char* name;
  uint64_t max_nth;
};
constexpr CrashSite kCrashSites[] = {
    {"crash.wal.post_append", 40}, {"crash.wal.post_sync", 40},
    {"crash.flush.mid", 6},        {"crash.manifest.pre_sync", 4},
    {"crash.manifest.post_sync", 4}, {"crash.compaction.mid", 4},
    {"crash.subcompaction.mid", 8}, {"crash.rollback.mid", 8},
    {"crash.redirect.mid", 3},
};
constexpr int kNumCrashSites =
    static_cast<int>(sizeof(kCrashSites) / sizeof(kCrashSites[0]));

// Offload kill points, armed only for --ndp schedules (DESIGN.md §13): mid
// device merge, mid device subcompaction merge, and after the merge finished
// but before the result capsule reaches the host (outputs become uninstalled
// strays the reopen must reap).
constexpr CrashSite kNdpCrashSites[] = {
    {"crash.ndp.merge.mid", 4},
    {"crash.ndp.submerge.mid", 8},
    {"crash.ndp.result.pre", 3},
};
constexpr int kNumNdpCrashSites =
    static_cast<int>(sizeof(kNdpCrashSites) / sizeof(kNdpCrashSites[0]));

std::string NemKey(uint64_t n) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string U64(uint64_t v) { return std::to_string(v); }

// The two states an in-flight (error-returning) write op may have left a key
// in; recovery must surface exactly one of them.
struct Ambiguous {
  bool had_pre = false;  // key existed before the op
  Value pre;
  bool post_is_delete = false;
  Value post;
};

// Aggressive Main-LSM shape: tiny memtable and low L0 triggers so flushes,
// compactions, stall pressure (and therefore redirection) all happen inside
// a 150-op cycle.
lsm::DbOptions NemesisDbOptions() {
  lsm::DbOptions o;
  o.write_buffer_size = 64 << 10;
  o.max_bytes_for_level_base = 512 << 10;
  o.target_file_size = 64 << 10;
  o.block_size = 4 << 10;
  o.block_cache_capacity = 1 << 20;
  o.l0_compaction_trigger = 4;
  o.l0_slowdown_writes_trigger = 4;
  o.l0_stop_writes_trigger = 5;
  // Two workers with an aggressive split threshold so range-partitioned
  // subcompactions (and crash.subcompaction.mid) are exercised every cycle.
  o.compaction_threads = 2;
  o.max_subcompactions = 2;
  o.max_subcompaction_input = 64 << 10;
  o.wal_sync = true;  // acknowledged <=> durable: the oracle's ground truth
  return o;
}

core::KvaccelOptions NemesisKvOptions(devlsm::DevLsm* dev) {
  core::KvaccelOptions o;
  o.detector_period = FromMillis(1);
  o.dev.memtable_bytes = 128 << 10;
  o.dev.dma_chunk = 64 << 10;
  // Rollbacks happen only at the op stream's explicit RollbackNow draws, so
  // the schedule stays a pure function of the seed.
  o.rollback = core::RollbackScheme::kDisabled;
  o.external_dev = dev;  // the device outlives every simulated host reboot
  return o;
}

// Uniform handle over the two engines the schedule can drive. shards == 1
// keeps the plain KvaccelDB path (and its exact virtual-time schedule);
// the branches below are host-side only, so they cost no virtual time.
struct NemesisDb {
  std::unique_ptr<core::KvaccelDB> single;
  std::unique_ptr<core::ShardedKvaccelDB> sharded;

  bool open() const { return single != nullptr || sharded != nullptr; }
  void reset() {
    single.reset();
    sharded.reset();
  }
  Status Put(const Slice& k, const Value& v) {
    return sharded ? sharded->Put({}, k, v) : single->Put({}, k, v);
  }
  Status Delete(const Slice& k) {
    return sharded ? sharded->Delete({}, k) : single->Delete({}, k);
  }
  Status Write(lsm::WriteBatch* b) {
    return sharded ? sharded->Write({}, b) : single->Write({}, b);
  }
  Status Get(const Slice& k, Value* v) {
    return sharded ? sharded->Get({}, k, v) : single->Get({}, k, v);
  }
  std::unique_ptr<lsm::Iterator> NewIterator() {
    return sharded ? sharded->NewIterator({}) : single->NewIterator({});
  }
  Status Close() { return sharded ? sharded->Close() : single->Close(); }
  Status BackgroundError() {
    if (sharded) {
      for (int i = 0; i < sharded->num_shards(); i++) {
        Status s = sharded->shard(i)->main()->GetBackgroundError();
        if (!s.ok()) return s;
      }
      return Status::OK();
    }
    return single->main()->GetBackgroundError();
  }
};

// HA crash table: every single-node site (the injector is env-global, so any
// of them can also trip inside the BACKUP's apply path — killing the pair
// mid-replication) plus the interconnect kill point.
constexpr CrashSite kHaCrashSites[] = {
    {"crash.wal.post_append", 40}, {"crash.wal.post_sync", 40},
    {"crash.flush.mid", 6},        {"crash.manifest.pre_sync", 4},
    {"crash.manifest.post_sync", 4}, {"crash.compaction.mid", 4},
    {"crash.subcompaction.mid", 8}, {"crash.rollback.mid", 8},
    {"crash.redirect.mid", 3},     {"crash.net.send.mid", 6},
};
constexpr int kNumHaCrashSites =
    static_cast<int>(sizeof(kHaCrashSites) / sizeof(kHaCrashSites[0]));

// Two-node schedule: drive the pair, kill it, promote the backup, verify
// against the oracle, wipe the dead node, swap roles, re-pair. Sync acks
// verify exactly (plus the usual single-in-flight ambiguity); async acks
// verify that each key recovered to SOME state of its acked-write chain for
// this pair generation (the lost tail is a suffix of the ship queue, so each
// key may only roll back to an earlier acked state), with the total loss
// bounded by the queue capacity.
NemesisResult RunNemesisHa(const NemesisOptions& opt) {
  NemesisResult result;
  std::ostringstream trace;
  const bool async = opt.repl_ack == 1;
  trace << "nemesis-trace-v1 seed=" << opt.seed << " cycles=" << opt.cycles
        << " ops_per_cycle=" << opt.ops_per_cycle
        << " key_space=" << opt.key_space << " value_size=" << opt.value_size
        << " corrupt_model_at_cycle=" << opt.corrupt_model_at_cycle
        << " shards=1 ha=1 repl_ack=" << (async ? 1 : 0) << "\n";

  sim::SimEnv env;
  ssd::SsdConfig ssd_config;
  ssd_config.capacity_bytes = 2ull << 30;
  ssd_config.num_namespaces = 1;
  // Each node owns a full device + host world; only the one SimEnv clock and
  // the fault injector are shared.
  ssd::HybridSsd ssd_a(&env, ssd_config);
  ssd::HybridSsd ssd_b(&env, ssd_config);
  sim::CpuPool cpu_a(&env, "host-a", 8);
  sim::CpuPool cpu_b(&env, "host-b", 8);
  sim::FaultInjector inj(&env, opt.seed);
  env.set_fault_injector(&inj);

  struct Node {
    ssd::HybridSsd* ssd = nullptr;
    sim::CpuPool* cpu = nullptr;
    std::unique_ptr<fs::SimFs> fs;
    std::unique_ptr<devlsm::DevLsm> dev;
  };
  Node nodes[2];
  nodes[0].ssd = &ssd_a;
  nodes[0].cpu = &cpu_a;
  nodes[1].ssd = &ssd_b;
  nodes[1].cpu = &cpu_b;
  for (auto& n : nodes) {
    n.fs = std::make_unique<fs::SimFs>(n.ssd, 0);
    n.dev = std::make_unique<devlsm::DevLsm>(n.ssd, 0,
                                             NemesisKvOptions(nullptr).dev);
  }

  env.Spawn("nemesis-ha", [&] {
    Random64 rng(opt.seed);
    lsm::DbOptions db_opts = NemesisDbOptions();
    core::KvaccelOptions kv_opts = NemesisKvOptions(nullptr);
    kv_opts.external_dev = nullptr;  // per-node devs attach via ReplNode
    core::ReplOptions repl_opts;
    repl_opts.ack = async ? core::ReplAck::kAsync : core::ReplAck::kSync;
    repl_opts.async_queue_cap = 8;  // small cap => tight loss bound
    // Worst case lost tail: the full queue plus the record mid-flight and
    // the record mid-enqueue, each carrying at most one 8-entry batch.
    const uint64_t loss_bound = (repl_opts.async_queue_cap + 2) * 8;

    int pri = 0;  // nodes[pri] is the current primary
    auto repl_node = [&](int i) {
      core::ReplNode rn;
      rn.ssd = nodes[i].ssd;
      rn.fs = nodes[i].fs.get();
      rn.host_cpu = nodes[i].cpu;
      rn.dev = nodes[i].dev.get();
      return rn;
    };

    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    Status s = core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, repl_opts,
                                               repl_node(pri),
                                               repl_node(1 - pri), &env, &pair);
    if (!s.ok()) {
      result.ok = false;
      result.error = "initial pair open failed: " + s.ToString();
      trace << "DIVERGENCE: " << result.error << "\n";
      return;
    }

    ModelDb model;
    uint64_t next_seed = 1;

    auto diverge = [&](const std::string& what) {
      result.ok = false;
      if (result.error.empty()) result.error = what;
      trace << "DIVERGENCE: " << what << "\n";
    };

    for (int cycle = 0; cycle < opt.cycles && result.ok; cycle++) {
      const CrashSite& site = kHaCrashSites[rng.Uniform(kNumHaCrashSites)];
      sim::FaultRule rule;
      rule.nth_hit = 1 + rng.Uniform(site.max_nth);
      rule.max_fires = 1;
      inj.Arm(site.name, rule);
      // One draw arms both transient families: the device-put one underneath
      // the redirect path and the interconnect one underneath every ship.
      bool transient = rng.Uniform(4) == 0;
      if (transient) {
        sim::FaultRule t;
        t.probability = 0.02;
        inj.Arm("devlsm.put.transient", t);
        inj.Arm("net.send.transient", t);
      }
      trace << "cycle=" << cycle << " site=" << site.name
            << " nth=" << rule.nth_hit << " transient=" << (transient ? 1 : 0)
            << "\n";

      std::map<std::string, Ambiguous> ambiguous;
      auto note_pre = [&](const std::string& key, Ambiguous* a) {
        a->had_pre = model.Get(key, &a->pre);
      };
      // Async acceptance chains: per key touched this pair generation, every
      // state it legitimately passed through (start state first, then each
      // acked write; errored-op post states ride in `ambiguous`).
      struct KeyVersion {
        bool present = false;
        Value v;
      };
      std::map<std::string, std::vector<KeyVersion>> chain;
      auto chain_of = [&](const std::string& key)
          -> std::vector<KeyVersion>* {
        if (!async) return nullptr;
        auto it = chain.find(key);
        if (it != chain.end()) return &it->second;
        KeyVersion start;
        start.present = model.Get(key, &start.v);
        return &chain.emplace(key, std::vector<KeyVersion>{start})
                    .first->second;
      };
      auto chain_put = [&](const std::string& key, const Value& v) {
        if (auto* c = chain_of(key)) c->push_back({true, v});
      };
      auto chain_del = [&](const std::string& key) {
        if (auto* c = chain_of(key)) c->push_back({false, Value()});
      };
      bool crashed = false;

      for (int op = 0; op < opt.ops_per_cycle && !crashed; op++) {
        result.ops_executed++;
        uint64_t draw = rng.Uniform(100);
        if (draw < 50) {
          std::string key = NemKey(rng.Uniform(opt.key_space));
          uint64_t seed = next_seed++;
          Value value = Value::Synthetic(seed, opt.value_size);
          Ambiguous a;
          note_pre(key, &a);
          a.post = value;
          Status ps = pair->Put({}, key, value);
          trace << "op=" << op << " put k=" << key << " s=" << seed << " -> "
                << (ps.ok() ? "ok" : "err") << "\n";
          if (ps.ok()) {
            chain_put(key, value);
            model.Put(key, value);
          } else {
            (void)chain_of(key);  // start state becomes acceptable
            ambiguous[key] = a;
            crashed = true;
          }
        } else if (draw < 60) {
          std::string key = NemKey(rng.Uniform(opt.key_space));
          Ambiguous a;
          note_pre(key, &a);
          a.post_is_delete = true;
          Status ds = pair->Delete({}, key);
          trace << "op=" << op << " del k=" << key << " -> "
                << (ds.ok() ? "ok" : "err") << "\n";
          if (ds.ok()) {
            chain_del(key);
            model.Delete(key);
          } else {
            (void)chain_of(key);
            ambiguous[key] = a;
            crashed = true;
          }
        } else if (draw < 70) {
          int n = 2 + static_cast<int>(rng.Uniform(7));
          lsm::WriteBatch batch;
          std::map<std::string, Ambiguous> batch_amb;
          trace << "op=" << op << " batch n=" << n;
          for (int e = 0; e < n; e++) {
            std::string key = NemKey(rng.Uniform(opt.key_space));
            Ambiguous a;
            note_pre(key, &a);
            if (rng.Uniform(5) == 0) {
              a.post_is_delete = true;
              batch.Delete(key);
              trace << " del:" << key;
            } else {
              uint64_t seed = next_seed++;
              a.post = Value::Synthetic(seed, opt.value_size);
              batch.Put(key, a.post);
              trace << " put:" << key << ":" << seed;
            }
            batch_amb[key] = a;
          }
          Status bs = pair->Write({}, &batch);
          trace << " -> " << (bs.ok() ? "ok" : "err") << "\n";
          if (bs.ok()) {
            (void)batch.ForEach([&](lsm::ValueType type, const Slice& key,
                                    const Value& value) {
              if (type == lsm::ValueType::kValue) {
                chain_put(key.ToString(), value);
                model.Put(key.ToString(), value);
              } else {
                chain_del(key.ToString());
                model.Delete(key.ToString());
              }
            });
          } else {
            for (auto& [key, a] : batch_amb) {
              (void)chain_of(key);
              ambiguous[key] = a;
            }
            crashed = true;
          }
        } else if (draw < 85) {
          std::string key = NemKey(rng.Uniform(opt.key_space));
          Value got, want;
          bool want_present = model.Get(key, &want);
          Status gs = pair->Get({}, key, &got);
          trace << "op=" << op << " get k=" << key << " -> "
                << (gs.ok() ? "hit" : gs.IsNotFound() ? "miss" : "err")
                << "\n";
          if (gs.ok()) {
            if (!want_present) {
              diverge("cycle " + U64(cycle) + " get " + key +
                      ": present but model says deleted/absent");
              break;
            }
            if (got != want) {
              diverge("cycle " + U64(cycle) + " get " + key +
                      ": value mismatch (got seed " + U64(got.seed()) +
                      ", want seed " + U64(want.seed()) + ")");
              break;
            }
          } else if (gs.IsNotFound()) {
            if (want_present) {
              diverge("cycle " + U64(cycle) + " get " + key +
                      ": NotFound but model holds seed " + U64(want.seed()));
              break;
            }
          } else {
            crashed = true;
          }
        } else if (draw < 95) {
          std::string start = NemKey(rng.Uniform(opt.key_space));
          auto it = pair->NewIterator({});
          it->Seek(start);
          auto mit = model.live().lower_bound(start);
          int matched = 0;
          bool scan_ok = true;
          for (int e = 0; e < 10; e++) {
            if (mit == model.live().end()) {
              if (it->Valid()) scan_ok = false;
              break;
            }
            if (!it->Valid() || it->key().ToString() != mit->first ||
                Value::DecodeOrDie(it->value()) != mit->second.value) {
              scan_ok = false;
              break;
            }
            matched++;
            it->Next();
            ++mit;
          }
          trace << "op=" << op << " scan k=" << start << " n=" << matched
                << " -> " << (scan_ok ? "ok" : "mismatch") << "\n";
          if (!scan_ok) {
            if (inj.crashed() || !it->status().ok()) {
              crashed = true;
            } else {
              diverge("cycle " + U64(cycle) + " scan from " + start +
                      " diverged after " + U64(matched) + " entries");
              break;
            }
          }
        } else {
          Status rs = pair->RollbackNow();
          trace << "op=" << op << " rollback -> " << (rs.ok() ? "ok" : "err")
                << "\n";
          if (!rs.ok()) crashed = true;
        }
        if (inj.crashed() ||
            !pair->primary()->main()->GetBackgroundError().ok()) {
          crashed = true;
        }
      }
      inj.Disarm(site.name);
      if (transient) {
        inj.Disarm("devlsm.put.transient");
        inj.Disarm("net.send.transient");
      }
      if (!result.ok) break;
      if (crashed) result.crashes++;
      trace << (crashed ? "crash" : "clean") << " cycle=" << cycle << "\n";

      // The pair is dead. Close drains the async queue (each record fails
      // fast under the crash latch and is recorded as lost tail), then both
      // nodes lose their page caches.
      (void)pair->Close();
      core::ReplStats st = pair->repl_stats();
      pair.reset();
      for (auto& n : nodes) n.fs->DropAllDirty();
      inj.ClearCrash();
      if (st.lost_entries > loss_bound) {
        diverge("cycle " + U64(cycle) + " async loss " +
                U64(st.lost_entries) + " exceeds bound " + U64(loss_bound));
        break;
      }
      if (!async && st.lost_entries > 0) {
        diverge("cycle " + U64(cycle) + " sync mode lost " +
                U64(st.lost_entries) + " acked entries");
        break;
      }

      // Failover: promote the surviving backup and serve from it.
      check::FailoverReport frep;
      std::unique_ptr<core::KvaccelDB> promoted;
      s = check::PromoteNode(db_opts, kv_opts, repl_node(1 - pri), &env,
                             &frep, &promoted);
      if (!s.ok()) {
        diverge("cycle " + U64(cycle) +
                " promote failed: " + s.ToString() +
                (frep.first_error.empty() ? "" : " (" + frep.first_error +
                                                     ")"));
        break;
      }
      result.failovers++;
      result.ha_lost_entries += st.lost_entries;
      result.ha_drained_entries += frep.drained_entries;
      result.ha_backup_dev_fallbacks += st.backup_dev_fallbacks;
      trace << "failover cycle=" << cycle << " lost=" << st.lost_entries
            << " drained=" << frep.drained_entries
            << " repaired=" << (frep.repaired ? 1 : 0)
            << " warnings=" << frep.checker_warnings << "\n";

      if (cycle == opt.corrupt_model_at_cycle) {
        // Self-test: force the oracle out of sync; the sweep below MUST
        // catch it. Drop the key from the per-cycle acceptance sets so the
        // async adopt-reality path can't paper over the corruption.
        std::string key = model.size() > 0 ? model.live().begin()->first
                                           : NemKey(0);
        model.Put(key, Value::Synthetic(0xDEADBEEF, opt.value_size));
        chain.erase(key);
        ambiguous.erase(key);
        trace << "inject-model-corruption k=" << key << "\n";
      }

      // --- full-keyspace sweep against the oracle, on the PROMOTED node ---
      uint64_t rolled_back = 0;
      for (uint64_t k = 0; k < opt.key_space && result.ok; k++) {
        std::string key = NemKey(k);
        Value got;
        Status gs = promoted->Get({}, key, &got);
        if (!gs.ok() && !gs.IsNotFound()) {
          diverge("cycle " + U64(cycle) + " promoted get " + key +
                  " failed: " + gs.ToString());
          break;
        }
        auto amb = ambiguous.find(key);
        const bool amb_post_ok =
            amb != ambiguous.end() &&
            (gs.ok() ? (!amb->second.post_is_delete && got == amb->second.post)
                     : amb->second.post_is_delete);
        if (async) {
          auto cit = chain.find(key);
          if (cit == chain.end()) {
            // Untouched this pair generation: applied and durable long ago,
            // so it must match the model exactly.
            Value want;
            if (model.Get(key, &want)) {
              if (gs.IsNotFound()) {
                diverge("cycle " + U64(cycle) + " settled key " + key +
                        " lost (model seed " + U64(want.seed()) + ")");
              } else if (got != want) {
                diverge("cycle " + U64(cycle) + " settled key " + key +
                        " recovered wrong value (got seed " +
                        U64(got.seed()) + ")");
              }
            } else if (gs.ok()) {
              diverge("cycle " + U64(cycle) + " deleted/absent key " + key +
                      " resurrected (seed " + U64(got.seed()) + ")");
            }
            continue;
          }
          // Touched: acceptable iff it matches some acked state of the chain
          // (the lost tail is a queue suffix => per-key rollback to an
          // earlier acked state) or the in-flight op's post state.
          bool accepted = amb_post_ok;
          for (const KeyVersion& kv : cit->second) {
            if (accepted) break;
            if (gs.ok() ? (kv.present && got == kv.v) : !kv.present) {
              accepted = true;
            }
          }
          if (!accepted) {
            diverge("cycle " + U64(cycle) + " key " + key +
                    " recovered to alien state" +
                    (gs.ok() ? " (seed " + U64(got.seed()) + ")" : " (absent)"));
            continue;
          }
          // Adopt reality so the next cycle verifies exactly.
          Value want;
          bool want_present = model.Get(key, &want);
          bool matches_model =
              gs.ok() ? (want_present && got == want) : !want_present;
          if (!matches_model) rolled_back++;
          if (gs.ok()) {
            model.Put(key, got);
          } else {
            model.Delete(key);
          }
          continue;
        }
        // Sync mode: exact, with the single-in-flight ambiguity.
        if (amb != ambiguous.end()) {
          const Ambiguous& a = amb->second;
          if (gs.ok()) {
            if (!a.post_is_delete && got == a.post) {
              model.Put(key, a.post);
            } else if (a.had_pre && got == a.pre) {
              // pre-state: model already holds it
            } else {
              diverge("cycle " + U64(cycle) + " ambiguous key " + key +
                      " recovered to alien value (seed " + U64(got.seed()) +
                      ")");
            }
          } else {
            if (a.post_is_delete) {
              model.Delete(key);
            } else if (!a.had_pre) {
              // pre-state: never existed
            } else {
              diverge("cycle " + U64(cycle) + " ambiguous key " + key +
                      " lost both pre and post state");
            }
          }
          continue;
        }
        Value want;
        if (model.Get(key, &want)) {
          if (gs.IsNotFound()) {
            diverge("cycle " + U64(cycle) + " sync-acked key " + key +
                    " lost after failover (model seed " + U64(want.seed()) +
                    ")");
          } else if (got != want) {
            diverge("cycle " + U64(cycle) + " key " + key +
                    " recovered wrong value (got seed " + U64(got.seed()) +
                    ", want seed " + U64(want.seed()) + ")");
          }
        } else if (gs.ok()) {
          diverge("cycle " + U64(cycle) + " deleted/absent key " + key +
                  " resurrected (seed " + U64(got.seed()) + ")");
        }
      }
      if (!result.ok) {
        (void)promoted->Close();
        break;
      }

      // --- full iterator walk on the promoted node: exact order + values ---
      {
        auto it = promoted->NewIterator({});
        it->SeekToFirst();
        auto mit = model.live().begin();
        uint64_t pos = 0;
        while (result.ok) {
          if (mit == model.live().end()) {
            if (it->Valid()) {
              diverge("cycle " + U64(cycle) + " iterator has extra key " +
                      it->key().ToString() + " past model end");
            }
            break;
          }
          if (!it->Valid()) {
            diverge("cycle " + U64(cycle) + " iterator ended at entry " +
                    U64(pos) + ", model still holds " + mit->first);
            break;
          }
          if (it->key().ToString() != mit->first) {
            diverge("cycle " + U64(cycle) + " iterator order: got " +
                    it->key().ToString() + ", want " + mit->first);
            break;
          }
          if (Value::DecodeOrDie(it->value()) != mit->second.value) {
            diverge("cycle " + U64(cycle) + " iterator value mismatch at " +
                    mit->first);
            break;
          }
          it->Next();
          ++mit;
          pos++;
        }
        if (result.ok && !it->status().ok()) {
          diverge("cycle " + U64(cycle) +
                  " iterator error: " + it->status().ToString());
        }
      }
      (void)promoted->Close();
      promoted.reset();
      if (!result.ok) break;
      trace << "recover cycle=" << cycle << " live=" << model.size()
            << " rolled_back=" << rolled_back << "\n";

      // Wipe the dead node (its fs state and device KV region are gone) and
      // re-form the pair with roles swapped; Bootstrap streams the promoted
      // node's state to the fresh backup.
      nodes[pri].fs = std::make_unique<fs::SimFs>(nodes[pri].ssd, 0);
      (void)nodes[pri].dev->Reset();
      pri = 1 - pri;
      s = core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, repl_opts,
                                          repl_node(pri), repl_node(1 - pri),
                                          &env, &pair);
      if (!s.ok()) {
        diverge("cycle " + U64(cycle) +
                " re-pair open failed: " + s.ToString());
        break;
      }
      result.cycles_run++;
    }
    if (pair != nullptr) (void)pair->Close();
  });
  env.Run();

  result.trace = trace.str();
  if (!result.ok && !opt.trace_dump_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.trace_dump_dir, ec);
    std::string path =
        opt.trace_dump_dir + "/nemesis-" + U64(opt.seed) + ".trace";
    std::ofstream out(path, std::ios::trunc);
    if (out) {
      out << result.trace;
      out.close();
      result.trace_path = path;
    }
  }
  return result;
}

// Partition nemesis (DESIGN.md §12): rotates four partition scenarios over
// the HA pair instead of crash sites, always under sync acks. Kinds by
// cycle % 4:
//   0  symmetric partition -> lease lapse -> self-fence -> promote under a
//      bumped epoch -> heal -> stale-epoch depose -> RejoinNode -> re-pair
//   1  asymmetric (ack-loss) partition: doomed writes APPLY on the backup
//      but are never acked (the split-brain trap), then the cut goes full
//      and the same failover/reconcile flow runs
//   2  brief partition healed before the lease lapses: no promotion, the
//      pair carries on, the applied watermark must not regress
//   3  flapping link: delay spikes, duplicates and transient drops under
//      live traffic; the pair must neither fence permanently nor diverge
// Both nodes are held to the model oracle: the serving node by direct sweep
// and iterator walk, the rejoined node first by RejoinNode's byte-identical
// convergence proof and then — after re-pairing — by a sweep of the fresh
// backup.
NemesisResult RunNemesisHaPartition(const NemesisOptions& opt) {
  NemesisResult result;
  std::ostringstream trace;
  const bool delta = opt.resync_mode != 0;
  trace << "nemesis-trace-v1 seed=" << opt.seed << " cycles=" << opt.cycles
        << " ops_per_cycle=" << opt.ops_per_cycle
        << " key_space=" << opt.key_space << " value_size=" << opt.value_size
        << " corrupt_model_at_cycle=" << opt.corrupt_model_at_cycle
        << " shards=1 ha=1 repl_ack=0 net_partition=1 resync_mode="
        << (delta ? 1 : 0) << "\n";

  sim::SimEnv env;
  ssd::SsdConfig ssd_config;
  ssd_config.capacity_bytes = 2ull << 30;
  ssd_config.num_namespaces = 1;
  ssd::HybridSsd ssd_a(&env, ssd_config);
  ssd::HybridSsd ssd_b(&env, ssd_config);
  sim::CpuPool cpu_a(&env, "host-a", 8);
  sim::CpuPool cpu_b(&env, "host-b", 8);
  sim::FaultInjector inj(&env, opt.seed);
  env.set_fault_injector(&inj);

  struct Node {
    ssd::HybridSsd* ssd = nullptr;
    sim::CpuPool* cpu = nullptr;
    std::unique_ptr<fs::SimFs> fs;
    std::unique_ptr<devlsm::DevLsm> dev;
  };
  Node nodes[2];
  nodes[0].ssd = &ssd_a;
  nodes[0].cpu = &cpu_a;
  nodes[1].ssd = &ssd_b;
  nodes[1].cpu = &cpu_b;
  for (auto& n : nodes) {
    n.fs = std::make_unique<fs::SimFs>(n.ssd, 0);
    n.dev = std::make_unique<devlsm::DevLsm>(n.ssd, 0,
                                             NemesisKvOptions(nullptr).dev);
  }

  env.Spawn("nemesis-ha-partition", [&] {
    Random64 rng(opt.seed);
    lsm::DbOptions db_opts = NemesisDbOptions();
    core::KvaccelOptions kv_opts = NemesisKvOptions(nullptr);
    kv_opts.external_dev = nullptr;  // per-node devs attach via ReplNode
    core::ReplOptions repl_opts;    // sync acks: partitions must never lose
    repl_opts.ack = core::ReplAck::kSync;

    int pri = 0;  // nodes[pri] is the current primary
    auto repl_node = [&](int i) {
      core::ReplNode rn;
      rn.ssd = nodes[i].ssd;
      rn.fs = nodes[i].fs.get();
      rn.host_cpu = nodes[i].cpu;
      rn.dev = nodes[i].dev.get();
      return rn;
    };

    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    std::unique_ptr<core::KvaccelDB> promoted;
    Status s = core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, repl_opts,
                                               repl_node(pri),
                                               repl_node(1 - pri), &env, &pair);
    if (!s.ok()) {
      result.ok = false;
      result.error = "initial pair open failed: " + s.ToString();
      trace << "DIVERGENCE: " << result.error << "\n";
      return;
    }

    ModelDb model;
    uint64_t next_seed = 1;
    std::map<std::string, Ambiguous> ambiguous;

    auto diverge = [&](const std::string& what) {
      result.ok = false;
      if (result.error.empty()) result.error = what;
      trace << "DIVERGENCE: " << what << "\n";
    };
    auto note_pre = [&](const std::string& key, Ambiguous* a) {
      a->had_pre = model.Get(key, &a->pre);
    };

    // Seeded op mix against whichever node currently serves. `faulty` cycles
    // (the flapping link) may see write errors: a failed sync ship leaves
    // the entry in the WAL but not the memtable, so the key reads as its
    // pre-state until a later reopen — it goes into `ambiguous` and the
    // end-of-cycle sweep adopts whichever state recovered. Fault-free phases
    // treat any op error as a divergence.
    struct OpsTarget {
      std::function<Status(const std::string&, const Value&)> put;
      std::function<Status(const std::string&)> del;
      std::function<Status(lsm::WriteBatch*)> write;
      std::function<Status(const std::string&, Value*)> get;
      std::function<std::unique_ptr<lsm::Iterator>()> newit;
      std::function<Status()> rollback;
    };
    auto run_ops = [&](const OpsTarget& t, int n, bool faulty, int cycle) {
      for (int op = 0; op < n && result.ok; op++) {
        result.ops_executed++;
        uint64_t draw = rng.Uniform(100);
        if (draw < 50) {
          std::string key = NemKey(rng.Uniform(opt.key_space));
          uint64_t seed = next_seed++;
          Value value = Value::Synthetic(seed, opt.value_size);
          Ambiguous a;
          note_pre(key, &a);
          a.post = value;
          Status ps = t.put(key, value);
          trace << "op=" << op << " put k=" << key << " s=" << seed << " -> "
                << (ps.ok() ? "ok" : "err") << "\n";
          if (ps.ok()) {
            model.Put(key, value);
            ambiguous.erase(key);
          } else if (faulty) {
            ambiguous[key] = a;
          } else {
            diverge("cycle " + U64(cycle) + " fault-free put " + key +
                    " failed: " + ps.ToString());
          }
        } else if (draw < 60) {
          std::string key = NemKey(rng.Uniform(opt.key_space));
          Ambiguous a;
          note_pre(key, &a);
          a.post_is_delete = true;
          Status ds = t.del(key);
          trace << "op=" << op << " del k=" << key << " -> "
                << (ds.ok() ? "ok" : "err") << "\n";
          if (ds.ok()) {
            model.Delete(key);
            ambiguous.erase(key);
          } else if (faulty) {
            ambiguous[key] = a;
          } else {
            diverge("cycle " + U64(cycle) + " fault-free del " + key +
                    " failed: " + ds.ToString());
          }
        } else if (draw < 70) {
          int n_entries = 2 + static_cast<int>(rng.Uniform(7));
          lsm::WriteBatch batch;
          std::map<std::string, Ambiguous> batch_amb;
          trace << "op=" << op << " batch n=" << n_entries;
          for (int e = 0; e < n_entries; e++) {
            std::string key = NemKey(rng.Uniform(opt.key_space));
            Ambiguous a;
            note_pre(key, &a);
            if (rng.Uniform(5) == 0) {
              a.post_is_delete = true;
              batch.Delete(key);
              trace << " del:" << key;
            } else {
              uint64_t seed = next_seed++;
              a.post = Value::Synthetic(seed, opt.value_size);
              batch.Put(key, a.post);
              trace << " put:" << key << ":" << seed;
            }
            batch_amb[key] = a;
          }
          Status bs = t.write(&batch);
          trace << " -> " << (bs.ok() ? "ok" : "err") << "\n";
          if (bs.ok()) {
            (void)batch.ForEach([&](lsm::ValueType type, const Slice& key,
                                    const Value& value) {
              if (type == lsm::ValueType::kValue) {
                model.Put(key.ToString(), value);
              } else {
                model.Delete(key.ToString());
              }
              ambiguous.erase(key.ToString());
            });
          } else if (faulty) {
            for (auto& [key, a] : batch_amb) ambiguous[key] = a;
          } else {
            diverge("cycle " + U64(cycle) + " fault-free batch failed: " +
                    bs.ToString());
          }
        } else if (draw < 85) {
          std::string key = NemKey(rng.Uniform(opt.key_space));
          Value got, want;
          bool want_present = model.Get(key, &want);
          Status gs = t.get(key, &got);
          trace << "op=" << op << " get k=" << key << " -> "
                << (gs.ok() ? "hit" : gs.IsNotFound() ? "miss" : "err")
                << "\n";
          if (!gs.ok() && !gs.IsNotFound()) {
            diverge("cycle " + U64(cycle) + " get " + key +
                    " errored: " + gs.ToString());
            break;
          }
          if (ambiguous.count(key) != 0) continue;  // resolved by the sweep
          if (gs.ok()) {
            if (!want_present) {
              diverge("cycle " + U64(cycle) + " get " + key +
                      ": present but model says deleted/absent");
            } else if (got != want) {
              diverge("cycle " + U64(cycle) + " get " + key +
                      ": value mismatch (got seed " + U64(got.seed()) +
                      ", want seed " + U64(want.seed()) + ")");
            }
          } else if (want_present) {
            diverge("cycle " + U64(cycle) + " get " + key +
                    ": NotFound but model holds seed " + U64(want.seed()));
          }
        } else if (draw < 95) {
          std::string start = NemKey(rng.Uniform(opt.key_space));
          auto it = t.newit();
          it->Seek(start);
          if (faulty || !ambiguous.empty()) {
            // Keys with in-flight ambiguity make exact scan comparison
            // unsound; walk for the I/O but verify via gets and the sweep.
            int walked = 0;
            for (int e = 0; e < 10 && it->Valid(); e++, it->Next()) walked++;
            trace << "op=" << op << " scan k=" << start << " n=" << walked
                  << " -> unverified\n";
            continue;
          }
          auto mit = model.live().lower_bound(start);
          int matched = 0;
          bool scan_ok = true;
          for (int e = 0; e < 10; e++) {
            if (mit == model.live().end()) {
              if (it->Valid()) scan_ok = false;
              break;
            }
            if (!it->Valid() || it->key().ToString() != mit->first ||
                Value::DecodeOrDie(it->value()) != mit->second.value) {
              scan_ok = false;
              break;
            }
            matched++;
            it->Next();
            ++mit;
          }
          trace << "op=" << op << " scan k=" << start << " n=" << matched
                << " -> " << (scan_ok ? "ok" : "mismatch") << "\n";
          if (!scan_ok) {
            diverge("cycle " + U64(cycle) + " scan from " + start +
                    " diverged after " + U64(matched) + " entries");
          }
        } else {
          Status rs = t.rollback();
          trace << "op=" << op << " rollback -> " << (rs.ok() ? "ok" : "err")
                << "\n";
          if (!rs.ok() && !faulty) {
            diverge("cycle " + U64(cycle) +
                    " fault-free rollback failed: " + rs.ToString());
          }
        }
      }
    };
    auto pair_target = [&]() {
      OpsTarget t;
      t.put = [&](const std::string& k, const Value& v) {
        return pair->Put({}, k, v);
      };
      t.del = [&](const std::string& k) { return pair->Delete({}, k); };
      t.write = [&](lsm::WriteBatch* b) { return pair->Write({}, b); };
      t.get = [&](const std::string& k, Value* v) {
        return pair->Get({}, k, v);
      };
      t.newit = [&]() { return pair->NewIterator({}); };
      t.rollback = [&]() { return pair->RollbackNow(); };
      return t;
    };
    auto db_target = [&](core::KvaccelDB* db) {
      OpsTarget t;
      t.put = [db](const std::string& k, const Value& v) {
        return db->Put({}, k, v);
      };
      t.del = [db](const std::string& k) { return db->Delete({}, k); };
      t.write = [db](lsm::WriteBatch* b) { return db->Write({}, b); };
      t.get = [db](const std::string& k, Value* v) {
        return db->Get({}, k, v);
      };
      t.newit = [db]() { return db->NewIterator({}); };
      t.rollback = [db]() { return db->RollbackNow(); };
      return t;
    };

    // Full-keyspace sweep: resolves `ambiguous` keys by adopting whichever
    // legal state recovered (pre or post), verifies everything else exactly,
    // then walks the iterator against the (now exact) model.
    auto sweep_and_walk = [&](const OpsTarget& t, int cycle,
                              const char* who) {
      if (cycle == opt.corrupt_model_at_cycle) {
        std::string key = model.size() > 0 ? model.live().begin()->first
                                           : NemKey(0);
        model.Put(key, Value::Synthetic(0xDEADBEEF, opt.value_size));
        ambiguous.erase(key);
        trace << "inject-model-corruption k=" << key << "\n";
      }
      for (uint64_t k = 0; k < opt.key_space && result.ok; k++) {
        std::string key = NemKey(k);
        Value got;
        Status gs = t.get(key, &got);
        if (!gs.ok() && !gs.IsNotFound()) {
          diverge("cycle " + U64(cycle) + " " + who + " get " + key +
                  " failed: " + gs.ToString());
          break;
        }
        auto amb = ambiguous.find(key);
        if (amb != ambiguous.end()) {
          const Ambiguous& a = amb->second;
          if (gs.ok()) {
            if (!a.post_is_delete && got == a.post) {
              model.Put(key, a.post);
            } else if (a.had_pre && got == a.pre) {
              // pre-state: model already holds it
            } else {
              diverge("cycle " + U64(cycle) + " " + who + " ambiguous key " +
                      key + " recovered to alien value (seed " +
                      U64(got.seed()) + ")");
            }
          } else {
            if (a.post_is_delete) {
              model.Delete(key);
            } else if (!a.had_pre) {
              // pre-state: never existed
            } else {
              diverge("cycle " + U64(cycle) + " " + who + " ambiguous key " +
                      key + " lost both pre and post state");
            }
          }
          continue;
        }
        Value want;
        if (model.Get(key, &want)) {
          if (gs.IsNotFound()) {
            diverge("cycle " + U64(cycle) + " " + who + " acked key " + key +
                    " lost (model seed " + U64(want.seed()) + ")");
          } else if (got != want) {
            diverge("cycle " + U64(cycle) + " " + who + " key " + key +
                    " holds wrong value (got seed " + U64(got.seed()) +
                    ", want seed " + U64(want.seed()) + ")");
          }
        } else if (gs.ok()) {
          diverge("cycle " + U64(cycle) + " " + who +
                  " deleted/absent key " + key + " resurrected (seed " +
                  U64(got.seed()) + ")");
        }
      }
      ambiguous.clear();
      if (!result.ok) return;
      auto it = t.newit();
      it->SeekToFirst();
      auto mit = model.live().begin();
      uint64_t pos = 0;
      while (result.ok) {
        if (mit == model.live().end()) {
          if (it->Valid()) {
            diverge("cycle " + U64(cycle) + " " + who +
                    " iterator has extra key " + it->key().ToString() +
                    " past model end");
          }
          break;
        }
        if (!it->Valid()) {
          diverge("cycle " + U64(cycle) + " " + who +
                  " iterator ended at entry " + U64(pos) +
                  ", model still holds " + mit->first);
          break;
        }
        if (it->key().ToString() != mit->first) {
          diverge("cycle " + U64(cycle) + " " + who + " iterator order: got " +
                  it->key().ToString() + ", want " + mit->first);
          break;
        }
        if (Value::DecodeOrDie(it->value()) != mit->second.value) {
          diverge("cycle " + U64(cycle) + " " + who +
                  " iterator value mismatch at " + mit->first);
          break;
        }
        it->Next();
        ++mit;
        pos++;
      }
      if (result.ok && !it->status().ok()) {
        diverge("cycle " + U64(cycle) + " " + who +
                " iterator error: " + it->status().ToString());
      }
    };

    const Nanos fence_wait = 2 * repl_opts.lease_duration +
                             2 * repl_opts.promote_safety_margin;

    for (int cycle = 0; cycle < opt.cycles && result.ok; cycle++) {
      const int kind = cycle % 4;
      static const char* kKindName[] = {"sym", "ack", "blip", "flap"};
      trace << "cycle=" << cycle << " kind=" << kKindName[kind] << "\n";

      // Phase A: fault-free traffic on the healthy pair.
      run_ops(pair_target(), opt.ops_per_cycle / 2, /*faulty=*/false, cycle);
      if (!result.ok) break;

      if (kind == 3) {
        // Flapping link: spikes, duplicates and transient drops under live
        // traffic. Duplicates must be idempotent (exact-sequence apply) and
        // a transient ship failure must fail the write cleanly; the pair
        // must come out neither deposed nor permanently fenced.
        sim::FaultRule delay;
        delay.probability = 0.10;
        inj.Arm("net.delay", delay);
        sim::FaultRule dup;
        dup.probability = 0.05;
        inj.Arm("net.dup", dup);
        sim::FaultRule drop;
        drop.probability = 0.05;
        inj.Arm("net.send.transient", drop);
        run_ops(pair_target(), opt.ops_per_cycle, /*faulty=*/true, cycle);
        inj.Disarm("net.delay");
        inj.Disarm("net.dup");
        inj.Disarm("net.send.transient");
        if (!result.ok) break;
        if (pair->deposed()) {
          diverge("cycle " + U64(cycle) + " flapping link deposed the pair");
          break;
        }
        // Let heartbeats renew any transiently-lapsed lease before probing.
        env.SleepFor(2 * repl_opts.heartbeat_period);
        // Heal probe: with the link quiet again this write must land, which
        // also proves the lease recovered from any transient lapse.
        std::string pk = NemKey(rng.Uniform(opt.key_space));
        Value pv = Value::Synthetic(next_seed++, opt.value_size);
        Status hs = pair->Put({}, pk, pv);
        trace << "heal probe k=" << pk << " -> " << (hs.ok() ? "ok" : "err")
              << "\n";
        if (!hs.ok()) {
          diverge("cycle " + U64(cycle) +
                  " healed pair refused a write: " + hs.ToString());
          break;
        }
        model.Put(pk, pv);
        ambiguous.erase(pk);
        sweep_and_walk(pair_target(), cycle, "pair");
        if (!result.ok) break;
        trace << "recover cycle=" << cycle << " live=" << model.size()
              << "\n";
        result.cycles_run++;
        continue;
      }

      if (kind == 2) {
        // Brief partition healed before the lease lapses: no promotion, no
        // fencing, and the applied watermark must be monotone through it.
        const uint64_t applied_before = pair->applied_seq();
        sim::FaultRule cut;
        cut.probability = 1.0;
        inj.Arm("net.partition.sym", cut);
        result.partitions++;
        trace << "partition cycle=" << cycle << " type=blip\n";
        for (int i = 0; i < 4 && result.ok; i++) {
          std::string key = NemKey(rng.Uniform(opt.key_space));
          Ambiguous a;
          note_pre(key, &a);
          a.post = Value::Synthetic(next_seed++, opt.value_size);
          Status ps = pair->Put({}, key, a.post);
          trace << "doomed put k=" << key << " -> "
                << (ps.ok() ? "ok" : "err") << "\n";
          if (ps.ok()) {
            diverge("cycle " + U64(cycle) +
                    " write acked across a symmetric partition");
            break;
          }
          // Failed sync ship: WAL holds it, memtable does not — the key
          // reads as pre-state until a reopen; a later rejoin repairs the
          // stale tail. The model keeps pre.
          ambiguous[key] = a;
        }
        inj.Disarm("net.partition.sym");
        if (!result.ok) break;
        // Heal: heartbeats renew the lease and traffic resumes.
        env.SleepFor(2 * repl_opts.heartbeat_period);
        run_ops(pair_target(), opt.ops_per_cycle / 2, /*faulty=*/false,
                cycle);
        if (!result.ok) break;
        if (pair->deposed()) {
          diverge("cycle " + U64(cycle) + " healed blip deposed the pair");
          break;
        }
        if (pair->applied_seq() < applied_before) {
          diverge("cycle " + U64(cycle) + " applied watermark regressed: " +
                  U64(pair->applied_seq()) + " < " + U64(applied_before));
          break;
        }
        sweep_and_walk(pair_target(), cycle, "pair");
        if (!result.ok) break;
        trace << "recover cycle=" << cycle << " live=" << model.size()
              << "\n";
        result.cycles_run++;
        continue;
      }

      // ---- kinds 0/1: full partition -> fence -> promote -> heal ->
      //      reconcile -> re-pair with roles swapped ----
      const bool sym = kind == 0;
      sim::FaultRule cut;
      cut.probability = 1.0;
      inj.Arm(sym ? "net.partition.sym" : "net.partition.ack", cut);
      result.partitions++;
      trace << "partition cycle=" << cycle << " type="
            << (sym ? "sym" : "ack") << "\n";

      // Split-brain guard: detaching while the primary's lease may still be
      // live MUST refuse — promoting now could ack a write on both sides.
      Status ds = pair->DetachBackup();
      if (!ds.IsBusy()) {
        diverge("cycle " + U64(cycle) +
                " DetachBackup under a live lease did not refuse (" +
                ds.ToString() + ")");
        break;
      }

      // Doomed writes into the partition. Symmetric: the record never
      // reaches the backup (pre-state everywhere). Ack-loss: the record
      // APPLIES on the backup but the ack is lost — the promoted node will
      // serve the post-state even though the client saw an error. Either
      // way the client write MUST fail: that is the no-dual-ack guarantee.
      for (int i = 0; i < 8 && result.ok; i++) {
        std::string key = NemKey(rng.Uniform(opt.key_space));
        Ambiguous a;
        note_pre(key, &a);
        a.post = Value::Synthetic(next_seed++, opt.value_size);
        Status ps = pair->Put({}, key, a.post);
        trace << "doomed put k=" << key << " -> "
              << (ps.ok() ? "ok" : "err") << "\n";
        if (ps.ok()) {
          diverge("cycle " + U64(cycle) + " write acked across a " +
                  (sym ? std::string("symmetric") : std::string("ack")) +
                  " partition");
          break;
        }
        ambiguous[key] = a;
      }
      if (!result.ok) break;
      if (!sym) {
        // The one-way cut degrades to a full cut (heartbeats were still
        // landing on the backup, which keeps the detach guard conservative);
        // from here the backup's applied clock freezes and the lease lapses.
        inj.Arm("net.partition.sym", cut);
      }

      // Lease lapse -> self-fence: no write may be acked by the partitioned
      // primary from here on.
      env.SleepFor(fence_wait);
      if (!pair->fenced()) {
        diverge("cycle " + U64(cycle) +
                " lease did not lapse under a full partition");
        break;
      }
      {
        std::string key = NemKey(rng.Uniform(opt.key_space));
        Status fs2 = pair->Put({}, key,
                               Value::Synthetic(next_seed++, opt.value_size));
        trace << "fenced probe k=" << key << " -> "
              << (fs2.ok() ? "ok" : "rejected") << "\n";
        if (fs2.ok()) {
          diverge("cycle " + U64(cycle) + " fenced primary acked a write");
          break;
        }
        if (!fs2.IsBusy()) {
          diverge("cycle " + U64(cycle) +
                  " fenced write failed with the wrong status: " +
                  fs2.ToString());
          break;
        }
      }

      const uint64_t frontier = pair->applied_seq();
      const uint64_t next_epoch = pair->epoch() + 1;

      // The lease has verifiably lapsed: detach must now be allowed.
      ds = pair->DetachBackup();
      if (!ds.ok()) {
        diverge("cycle " + U64(cycle) +
                " DetachBackup after lease lapse refused: " + ds.ToString());
        break;
      }

      check::FailoverReport frep;
      s = check::PromoteNode(db_opts, kv_opts, repl_node(1 - pri), &env,
                             &frep, &promoted, next_epoch);
      if (!s.ok()) {
        diverge("cycle " + U64(cycle) + " promote failed: " + s.ToString() +
                (frep.first_error.empty() ? ""
                                          : " (" + frep.first_error + ")"));
        break;
      }
      result.failovers++;
      result.ha_drained_entries += frep.drained_entries;
      trace << "failover cycle=" << cycle << " epoch=" << frep.fence_epoch
            << " drained=" << frep.drained_entries
            << " repaired=" << (frep.repaired ? 1 : 0) << "\n";

      // The promoted node against the oracle: doomed keys resolve to pre
      // (symmetric) or post (ack-loss) and the model adopts reality.
      sweep_and_walk(db_target(promoted.get()), cycle, "promoted");
      if (!result.ok) break;

      // Phase C: serve from the promoted node while the old primary is
      // still partitioned; its writes must keep failing.
      run_ops(db_target(promoted.get()), opt.ops_per_cycle / 4,
              /*faulty=*/false, cycle);
      if (!result.ok) break;
      {
        Status probe = pair->Put({}, NemKey(rng.Uniform(opt.key_space)),
                                 Value::Synthetic(next_seed++,
                                                  opt.value_size));
        if (probe.ok()) {
          diverge("cycle " + U64(cycle) +
                  " partitioned old primary acked a write during phase C");
          break;
        }
      }

      // Heal. The old primary's next heartbeat finds the bumped durable
      // epoch on the backup node and deposes itself permanently.
      inj.Disarm("net.partition.sym");
      if (!sym) inj.Disarm("net.partition.ack");
      env.SleepFor(3 * repl_opts.heartbeat_period);
      if (!pair->deposed()) {
        diverge("cycle " + U64(cycle) +
                " healed primary did not depose on the stale epoch");
        break;
      }
      {
        Status probe = pair->Put({}, NemKey(rng.Uniform(opt.key_space)),
                                 Value::Synthetic(next_seed++,
                                                  opt.value_size));
        if (probe.ok()) {
          diverge("cycle " + U64(cycle) + " deposed primary acked a write");
          break;
        }
      }

      core::ReplStats st = pair->repl_stats();
      (void)pair->Close();
      pair.reset();
      result.ha_fenced_rejects += st.fenced_write_rejects;
      if (st.lost_entries > 0) {
        diverge("cycle " + U64(cycle) + " sync mode lost " +
                U64(st.lost_entries) + " acked entries");
        break;
      }
      if (st.fenced_records == 0) {
        diverge("cycle " + U64(cycle) +
                " no stale-epoch rejection recorded after heal");
        break;
      }
      trace << "fence cycle=" << cycle
            << " rejects=" << st.fenced_write_rejects
            << " lease_expirations=" << st.lease_expirations
            << " stale_epoch=" << st.fenced_records << "\n";

      // Reconcile the deposed node against the promoted one and hold it to
      // the byte-identical convergence proof inside RejoinNode.
      RejoinOptions ro;
      ro.mode = delta ? ResyncMode::kDelta : ResyncMode::kWalReplay;
      ro.frontier = frontier;
      ro.new_epoch = next_epoch;
      RejoinReport rrep;
      s = RejoinNode(db_opts, kv_opts, repl_node(pri), promoted.get(), ro,
                     &env, &rrep);
      if (!s.ok()) {
        diverge("cycle " + U64(cycle) + " rejoin failed: " + s.ToString() +
                (rrep.first_error.empty() ? ""
                                          : " (" + rrep.first_error + ")"));
        break;
      }
      result.rejoins++;
      result.ha_resync_entries += rrep.resync_entries;
      result.ha_resync_bytes += rrep.resync_bytes;
      result.ha_write_path_bytes += rrep.write_path_bytes;
      result.ha_wal_replay_bytes += rrep.wal_replay_bytes;
      result.ha_quarantined_keys += rrep.quarantined_keys;
      trace << "rejoin cycle=" << cycle << " mode="
            << (delta ? "delta" : "wal") << " entries=" << rrep.resync_entries
            << " bytes=" << rrep.resync_bytes
            << " write_path=" << rrep.write_path_bytes
            << " wal_replay=" << rrep.wal_replay_bytes
            << " quarantined=" << rrep.quarantined_keys << "\n";
      if (delta && rrep.write_path_bytes != 0) {
        diverge("cycle " + U64(cycle) +
                " delta resync pushed bytes through the write path");
        break;
      }
      if (delta && rrep.resync_entries > 0 &&
          rrep.write_path_bytes >= rrep.wal_replay_bytes) {
        diverge("cycle " + U64(cycle) +
                " delta resync moved no fewer write-path bytes than replay");
        break;
      }
      if (!delta && rrep.write_path_bytes != rrep.wal_replay_bytes) {
        diverge("cycle " + U64(cycle) +
                " wal-replay byte accounting diverged");
        break;
      }

      // Re-pair with roles swapped: the promoted node is the new primary,
      // the reconciled node its backup. Open adopts the bumped epoch from
      // the durable FENCE files.
      (void)promoted->Close();
      promoted.reset();
      pri = 1 - pri;
      s = core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, repl_opts,
                                          repl_node(pri), repl_node(1 - pri),
                                          &env, &pair);
      if (!s.ok()) {
        diverge("cycle " + U64(cycle) +
                " re-pair open failed: " + s.ToString());
        break;
      }
      if (pair->epoch() != next_epoch) {
        diverge("cycle " + U64(cycle) + " re-paired at epoch " +
                U64(pair->epoch()) + ", want " + U64(next_epoch));
        break;
      }

      // Both nodes to the oracle: the serving primary through the pair, the
      // reconciled backup directly.
      sweep_and_walk(pair_target(), cycle, "pair");
      if (!result.ok) break;
      {
        core::KvaccelDB* backup = pair->backup();
        OpsTarget bt = db_target(backup);
        for (uint64_t k = 0; k < opt.key_space && result.ok; k++) {
          std::string key = NemKey(k);
          Value got, want;
          bool want_present = model.Get(key, &want);
          Status gs = bt.get(key, &got);
          if (!gs.ok() && !gs.IsNotFound()) {
            diverge("cycle " + U64(cycle) + " backup get " + key +
                    " failed: " + gs.ToString());
            break;
          }
          if (gs.ok() != want_present ||
              (want_present && gs.ok() && got != want)) {
            diverge("cycle " + U64(cycle) + " rejoined backup diverges at " +
                    key);
            break;
          }
        }
      }
      if (!result.ok) break;
      trace << "recover cycle=" << cycle << " live=" << model.size() << "\n";
      result.cycles_run++;
    }
    if (promoted != nullptr) (void)promoted->Close();
    if (pair != nullptr) (void)pair->Close();
  });
  env.Run();

  result.trace = trace.str();
  if (!result.ok && !opt.trace_dump_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.trace_dump_dir, ec);
    std::string path =
        opt.trace_dump_dir + "/nemesis-" + U64(opt.seed) + ".trace";
    std::ofstream out(path, std::ios::trunc);
    if (out) {
      out << result.trace;
      out.close();
      result.trace_path = path;
    }
  }
  return result;
}

}  // namespace

NemesisResult RunNemesis(const NemesisOptions& opt) {
  if (opt.net_partition) return RunNemesisHaPartition(opt);
  if (opt.ha) return RunNemesisHa(opt);
  NemesisResult result;
  std::ostringstream trace;
  const int shards = std::max(1, opt.shards);
  trace << "nemesis-trace-v1 seed=" << opt.seed << " cycles=" << opt.cycles
        << " ops_per_cycle=" << opt.ops_per_cycle
        << " key_space=" << opt.key_space << " value_size=" << opt.value_size
        << " corrupt_model_at_cycle=" << opt.corrupt_model_at_cycle
        << " shards=" << shards << " ndp=" << (opt.ndp ? 1 : 0) << "\n";

  sim::SimEnv env;
  ssd::SsdConfig ssd_config;
  ssd_config.capacity_bytes = 2ull << 30;
  ssd_config.num_namespaces = shards;
  ssd::HybridSsd ssd(&env, ssd_config);
  // One file system per shard namespace; they model the device, so they
  // outlive every simulated host reboot (only their dirty pages die).
  std::vector<std::unique_ptr<fs::SimFs>> shard_fs;
  for (int i = 0; i < shards; i++) {
    shard_fs.push_back(std::make_unique<fs::SimFs>(&ssd, i));
  }
  fs::SimFs& fs = *shard_fs[0];
  sim::CpuPool host_cpu(&env, "host", 8);
  sim::FaultInjector inj(&env, opt.seed);
  env.set_fault_injector(&inj);
  // The NDP engine is device silicon: like the Dev-LSMs it outlives every
  // simulated host reboot (host-side planners re-attach to it on reopen).
  std::unique_ptr<ndp::NdpDevice> ndp_dev;
  if (opt.ndp) ndp_dev = std::make_unique<ndp::NdpDevice>(&ssd);

  env.Spawn("nemesis-main", [&] {
    Random64 rng(opt.seed);
    lsm::DbOptions db_opts = NemesisDbOptions();
    // Dev-LSMs likewise survive reboots, one per shard namespace.
    std::vector<std::unique_ptr<devlsm::DevLsm>> devs;
    for (int i = 0; i < shards; i++) {
      devs.push_back(std::make_unique<devlsm::DevLsm>(
          &ssd, i, NemesisKvOptions(nullptr).dev));
    }
    core::KvaccelOptions kv_opts = NemesisKvOptions(devs[0].get());
    if (opt.ndp) {
      kv_opts.ndp_device = ndp_dev.get();
      kv_opts.ndp_planner.mode = ndp::OffloadMode::kForce;
    }
    lsm::DbEnv denv{&env, &ssd, &fs, &host_cpu};
    core::ShardingOptions sharding;
    sharding.num_shards = shards;
    for (auto& f : shard_fs) sharding.external_fs.push_back(f.get());
    for (auto& d : devs) sharding.external_devs.push_back(d.get());
    core::ShardEnv senv{&env, &ssd, &host_cpu};

    auto open_db = [&](NemesisDb* out) -> Status {
      if (shards > 1) {
        core::KvaccelOptions kv = kv_opts;
        kv.external_dev = nullptr;  // the router attaches external_devs
        return core::ShardedKvaccelDB::Open(db_opts, kv, sharding, senv,
                                            &out->sharded);
      }
      return core::KvaccelDB::Open(db_opts, kv_opts, denv, &out->single);
    };

    NemesisDb db;
    Status s = open_db(&db);
    if (!s.ok()) {
      result.ok = false;
      result.error = "initial open failed: " + s.ToString();
      trace << "DIVERGENCE: " << result.error << "\n";
      return;
    }

    ModelDb model;
    uint64_t next_seed = 1;

    auto diverge = [&](const std::string& what) {
      result.ok = false;
      if (result.error.empty()) result.error = what;
      trace << "DIVERGENCE: " << what << "\n";
    };

    for (int cycle = 0; cycle < opt.cycles && result.ok; cycle++) {
      // NDP schedules rotate through every offload kill point first (so each
      // crash.ndp.* site is exercised no matter the seed), then draw from
      // the combined table.
      const CrashSite* site_ptr;
      if (opt.ndp && cycle < kNumNdpCrashSites) {
        site_ptr = &kNdpCrashSites[cycle];
      } else if (opt.ndp) {
        int pick =
            static_cast<int>(rng.Uniform(kNumCrashSites + kNumNdpCrashSites));
        site_ptr = pick < kNumCrashSites
                       ? &kCrashSites[pick]
                       : &kNdpCrashSites[pick - kNumCrashSites];
      } else {
        site_ptr = &kCrashSites[rng.Uniform(kNumCrashSites)];
      }
      const CrashSite& site = *site_ptr;
      sim::FaultRule rule;
      rule.nth_hit = 1 + rng.Uniform(site.max_nth);
      rule.max_fires = 1;
      inj.Arm(site.name, rule);
      // Sharded runs arm a second kill site alongside the rollback one: the
      // sites are env-global, so with several shards flushing independently
      // the machine can die while one shard is mid-rollback and another is
      // mid-flush — whichever site trips first kills the whole box.
      bool dual = shards > 1 && strcmp(site.name, "crash.rollback.mid") == 0;
      uint64_t dual_nth = 0;
      if (dual) {
        sim::FaultRule second;
        second.nth_hit = dual_nth = 1 + rng.Uniform(6);
        second.max_fires = 1;
        inj.Arm("crash.flush.mid", second);
      }
      // Some cycles also see transient device-put failures, exercising the
      // retry/fallback path underneath the crash schedule.
      bool transient = rng.Uniform(4) == 0;
      if (transient) {
        sim::FaultRule t;
        t.probability = 0.02;
        inj.Arm("devlsm.put.transient", t);
        if (opt.ndp) {
          // COMPACT rejections under the same cycles: the planner must fall
          // back to the host merge and recovery must still match the oracle.
          sim::FaultRule nt;
          nt.probability = 0.25;
          inj.Arm("ndp.compact.transient", nt);
        }
      }
      trace << "cycle=" << cycle << " site=" << site.name
            << " nth=" << rule.nth_hit << " transient=" << (transient ? 1 : 0);
      if (dual) trace << " dual=crash.flush.mid nth2=" << dual_nth;
      trace << "\n";

      std::map<std::string, Ambiguous> ambiguous;
      // Records pre-op state for every key of a write op, so a failure can
      // mark them ambiguous.
      auto note_pre = [&](const std::string& key, Ambiguous* a) {
        a->had_pre = model.Get(key, &a->pre);
      };
      bool crashed = false;

      for (int op = 0; op < opt.ops_per_cycle && !crashed; op++) {
        result.ops_executed++;
        uint64_t draw = rng.Uniform(100);
        if (draw < 50) {
          // --- put ---
          std::string key = NemKey(rng.Uniform(opt.key_space));
          uint64_t seed = next_seed++;
          Value value = Value::Synthetic(seed, opt.value_size);
          Ambiguous a;
          note_pre(key, &a);
          a.post = value;
          Status ps = db.Put(key, value);
          trace << "op=" << op << " put k=" << key << " s=" << seed << " -> "
                << (ps.ok() ? "ok" : "err") << "\n";
          if (ps.ok()) {
            model.Put(key, value);
          } else {
            ambiguous[key] = a;
            crashed = true;
          }
        } else if (draw < 60) {
          // --- delete ---
          std::string key = NemKey(rng.Uniform(opt.key_space));
          Ambiguous a;
          note_pre(key, &a);
          a.post_is_delete = true;
          Status ds = db.Delete(key);
          trace << "op=" << op << " del k=" << key << " -> "
                << (ds.ok() ? "ok" : "err") << "\n";
          if (ds.ok()) {
            model.Delete(key);
          } else {
            ambiguous[key] = a;
            crashed = true;
          }
        } else if (draw < 70) {
          // --- batch write (atomic group of 2-8 mixed puts/deletes) ---
          int n = 2 + static_cast<int>(rng.Uniform(7));
          lsm::WriteBatch batch;
          std::map<std::string, Ambiguous> batch_amb;  // last op per key wins
          trace << "op=" << op << " batch n=" << n;
          for (int e = 0; e < n; e++) {
            std::string key = NemKey(rng.Uniform(opt.key_space));
            Ambiguous a;
            note_pre(key, &a);
            if (rng.Uniform(5) == 0) {
              a.post_is_delete = true;
              batch.Delete(key);
              trace << " del:" << key;
            } else {
              uint64_t seed = next_seed++;
              a.post = Value::Synthetic(seed, opt.value_size);
              batch.Put(key, a.post);
              trace << " put:" << key << ":" << seed;
            }
            batch_amb[key] = a;
          }
          Status bs = db.Write(&batch);
          trace << " -> " << (bs.ok() ? "ok" : "err") << "\n";
          if (bs.ok()) {
            // Replay into the model in batch order (later entries win).
            (void)batch.ForEach([&](lsm::ValueType type, const Slice& key,
                                    const Value& value) {
              if (type == lsm::ValueType::kValue) {
                model.Put(key.ToString(), value);
              } else {
                model.Delete(key.ToString());
              }
            });
          } else {
            for (auto& [key, a] : batch_amb) ambiguous[key] = a;
            crashed = true;
          }
        } else if (draw < 85) {
          // --- get-verify ---
          std::string key = NemKey(rng.Uniform(opt.key_space));
          Value got, want;
          bool want_present = model.Get(key, &want);
          Status gs = db.Get(key, &got);
          trace << "op=" << op << " get k=" << key << " -> "
                << (gs.ok() ? "hit" : gs.IsNotFound() ? "miss" : "err")
                << "\n";
          if (gs.ok()) {
            if (!want_present) {
              diverge("cycle " + U64(cycle) + " get " + key +
                      ": present but model says deleted/absent");
              break;
            }
            if (got != want) {
              diverge("cycle " + U64(cycle) + " get " + key +
                      ": value mismatch (got seed " + U64(got.seed()) +
                      ", want seed " + U64(want.seed()) + ")");
              break;
            }
          } else if (gs.IsNotFound()) {
            if (want_present) {
              diverge("cycle " + U64(cycle) + " get " + key +
                      ": NotFound but model holds seed " + U64(want.seed()));
              break;
            }
          } else {
            crashed = true;  // read error only happens under the crash latch
          }
        } else if (draw < 95) {
          // --- seek + short scan-verify ---
          std::string start = NemKey(rng.Uniform(opt.key_space));
          auto it = db.NewIterator();
          it->Seek(start);
          auto mit = model.live().lower_bound(start);
          int matched = 0;
          bool scan_ok = true;
          for (int e = 0; e < 10; e++) {
            if (mit == model.live().end()) {
              if (it->Valid()) scan_ok = false;
              break;
            }
            if (!it->Valid() || it->key().ToString() != mit->first ||
                Value::DecodeOrDie(it->value()) != mit->second.value) {
              scan_ok = false;
              break;
            }
            matched++;
            it->Next();
            ++mit;
          }
          trace << "op=" << op << " scan k=" << start << " n=" << matched
                << " -> " << (scan_ok ? "ok" : "mismatch") << "\n";
          if (!scan_ok) {
            if (inj.crashed() || !it->status().ok()) {
              crashed = true;  // device died mid-scan, not a model divergence
            } else {
              diverge("cycle " + U64(cycle) + " scan from " + start +
                      " diverged after " + U64(matched) + " entries");
              break;
            }
          }
        } else {
          // --- forced rollback (drain Dev-LSM into Main-LSM) ---
          // Sharded mode rolls back one seeded-random shard, so concurrent
          // drains on other shards keep running under the armed kill sites.
          int rb_shard =
              db.sharded ? static_cast<int>(rng.Uniform(shards)) : 0;
          Status rs = db.sharded ? db.sharded->RollbackShardNow(rb_shard)
                                 : db.single->RollbackNow();
          trace << "op=" << op << " rollback";
          if (db.sharded) trace << " shard=" << rb_shard;
          trace << " -> " << (rs.ok() ? "ok" : "err") << "\n";
          // State-preserving either way: a mid-drain crash leaves every
          // unreset pair on the device for the reopen drain.
          if (!rs.ok()) crashed = true;
        }
        if (inj.crashed() || !db.BackgroundError().ok()) {
          crashed = true;  // background thread hit the kill point
        }
      }
      inj.Disarm(site.name);
      if (dual) inj.Disarm("crash.flush.mid");
      if (transient) {
        inj.Disarm("devlsm.put.transient");
        if (opt.ndp) inj.Disarm("ndp.compact.transient");
      }
      if (!result.ok) break;
      if (crashed) result.crashes++;
      trace << (crashed ? "crash" : "clean") << " cycle=" << cycle << "\n";

      // Crash protocol: the machine is dead — close tolerating errors, lose
      // every shard's page cache, clear the latch, reopen (which drains
      // every shard's device).
      (void)db.Close();
      db.reset();
      for (auto& f : shard_fs) f->DropAllDirty();
      inj.ClearCrash();
      s = open_db(&db);
      if (!s.ok()) {
        diverge("cycle " + U64(cycle) +
                " recovery open failed: " + s.ToString());
        break;
      }

      if (cycle == opt.corrupt_model_at_cycle) {
        // Self-test: force the oracle out of sync; verification below MUST
        // catch it, proving the harness detects real divergences.
        std::string key = model.size() > 0 ? model.live().begin()->first
                                           : NemKey(0);
        model.Put(key, Value::Synthetic(0xDEADBEEF, opt.value_size));
        trace << "inject-model-corruption k=" << key << "\n";
      }

      // --- full-keyspace sweep against the oracle ---
      for (uint64_t k = 0; k < opt.key_space && result.ok; k++) {
        std::string key = NemKey(k);
        Value got;
        Status gs = db.Get(key, &got);
        if (!gs.ok() && !gs.IsNotFound()) {
          diverge("cycle " + U64(cycle) + " recovered get " + key +
                  " failed: " + gs.ToString());
          break;
        }
        auto amb = ambiguous.find(key);
        if (amb != ambiguous.end()) {
          // The one in-flight op: either state is legal; adopt what the DB
          // actually holds so the oracle tracks reality from here on.
          const Ambiguous& a = amb->second;
          if (gs.ok()) {
            if (!a.post_is_delete && got == a.post) {
              model.Put(key, a.post);
            } else if (a.had_pre && got == a.pre) {
              // pre-state: model already holds it
            } else {
              diverge("cycle " + U64(cycle) + " ambiguous key " + key +
                      " recovered to alien value (seed " + U64(got.seed()) +
                      ")");
            }
          } else {
            if (a.post_is_delete) {
              model.Delete(key);
            } else if (!a.had_pre) {
              // pre-state: never existed
            } else {
              diverge("cycle " + U64(cycle) + " ambiguous key " + key +
                      " lost both pre and post state");
            }
          }
          continue;
        }
        Value want;
        if (model.Get(key, &want)) {
          if (gs.IsNotFound()) {
            diverge("cycle " + U64(cycle) + " acknowledged key " + key +
                    " lost (model seed " + U64(want.seed()) + ")");
          } else if (got != want) {
            diverge("cycle " + U64(cycle) + " key " + key +
                    " recovered wrong value (got seed " + U64(got.seed()) +
                    ", want seed " + U64(want.seed()) + ")");
          }
        } else if (gs.ok()) {
          diverge("cycle " + U64(cycle) + " deleted/absent key " + key +
                  " resurrected (seed " + U64(got.seed()) + ")");
        }
      }
      if (!result.ok) break;

      // --- full hybrid-iterator walk: exact key order and values ---
      // (In sharded mode this walks the cross-shard merging iterator, so it
      // verifies global key order across every shard's recovered state.)
      {
        auto it = db.NewIterator();
        it->SeekToFirst();
        auto mit = model.live().begin();
        uint64_t pos = 0;
        while (result.ok) {
          if (mit == model.live().end()) {
            if (it->Valid()) {
              diverge("cycle " + U64(cycle) + " iterator has extra key " +
                      it->key().ToString() + " past model end");
            }
            break;
          }
          if (!it->Valid()) {
            diverge("cycle " + U64(cycle) + " iterator ended at entry " +
                    U64(pos) + ", model still holds " + mit->first);
            break;
          }
          if (it->key().ToString() != mit->first) {
            diverge("cycle " + U64(cycle) + " iterator order: got " +
                    it->key().ToString() + ", want " + mit->first);
            break;
          }
          if (Value::DecodeOrDie(it->value()) != mit->second.value) {
            diverge("cycle " + U64(cycle) + " iterator value mismatch at " +
                    mit->first);
            break;
          }
          it->Next();
          ++mit;
          pos++;
        }
        if (result.ok && !it->status().ok()) {
          diverge("cycle " + U64(cycle) +
                  " iterator error: " + it->status().ToString());
        }
      }
      if (result.ok) {
        trace << "recover cycle=" << cycle << " live=" << model.size()
              << "\n";
      }
      result.cycles_run++;
    }
    if (db.open()) (void)db.Close();
  });
  env.Run();

  result.trace = trace.str();
  if (!result.ok && !opt.trace_dump_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.trace_dump_dir, ec);
    std::string path =
        opt.trace_dump_dir + "/nemesis-" + U64(opt.seed) + ".trace";
    std::ofstream out(path, std::ios::trunc);
    if (out) {
      out << result.trace;
      out.close();
      result.trace_path = path;
    }
  }
  return result;
}

Status ParseNemesisTrace(const std::string& path, NemesisOptions* out) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open trace: " + path);
  std::string header;
  if (!std::getline(in, header)) {
    return Status::Corruption("empty trace: " + path);
  }
  std::istringstream tokens(header);
  std::string tok;
  if (!(tokens >> tok) || tok != "nemesis-trace-v1") {
    return Status::Corruption("not a nemesis trace: " + path);
  }
  while (tokens >> tok) {
    size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      return Status::Corruption("bad trace header token: " + tok);
    }
    std::string name = tok.substr(0, eq);
    long long value = strtoll(tok.c_str() + eq + 1, nullptr, 10);
    if (name == "seed") {
      out->seed = static_cast<uint64_t>(value);
    } else if (name == "cycles") {
      out->cycles = static_cast<int>(value);
    } else if (name == "ops_per_cycle") {
      out->ops_per_cycle = static_cast<int>(value);
    } else if (name == "key_space") {
      out->key_space = static_cast<uint64_t>(value);
    } else if (name == "value_size") {
      out->value_size = static_cast<uint32_t>(value);
    } else if (name == "corrupt_model_at_cycle") {
      out->corrupt_model_at_cycle = static_cast<int>(value);
    } else if (name == "shards") {
      out->shards = static_cast<int>(value);
    } else if (name == "ndp") {
      out->ndp = value != 0;
    } else if (name == "ha") {
      out->ha = value != 0;
    } else if (name == "repl_ack") {
      out->repl_ack = static_cast<int>(value);
    } else if (name == "net_partition") {
      out->net_partition = value != 0;
    } else if (name == "resync_mode") {
      out->resync_mode = static_cast<int>(value);
    }  // unknown keys: forward compatibility, ignore
  }
  return Status::OK();
}

}  // namespace kvaccel::check

