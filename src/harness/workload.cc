#include "harness/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <memory>

#include "check/failover.h"
#include "common/random.h"
#include "devlsm/dev_lsm.h"
#include "fs/simfs.h"
#include "harness/fault_profiles.h"
#include "obs/trace.h"
#include "sim/cpu_pool.h"
#include "sim/fault.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

namespace kvaccel::harness {

std::string MakeKey(uint64_t v, size_t key_size) {
  std::string key(key_size, '\0');
  for (size_t i = 0; i < key_size; i++) {
    key[key_size - 1 - i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  return key;
}

namespace {

bool ParseMixField(const std::string& field, TenantProfile* prof,
                   std::string* err) {
  const size_t eq = field.find('=');
  if (eq == std::string::npos) {
    if (err != nullptr) *err = "expected k=v, got '" + field + "'";
    return false;
  }
  const std::string k = field.substr(0, eq);
  const std::string v = field.substr(eq + 1);
  char* end = nullptr;
  const double num = strtod(v.c_str(), &end);
  const bool numeric = end != v.c_str() && *end == '\0';
  if (k == "dist") {
    if (v == "uniform") {
      prof->dist = KeyDist::kUniform;
    } else if (v == "zipfian") {
      prof->dist = KeyDist::kZipfian;
    } else if (v == "hotspot") {
      prof->dist = KeyDist::kHotspot;
    } else {
      if (err != nullptr) *err = "unknown dist '" + v + "'";
      return false;
    }
    return true;
  }
  if (!numeric || num < 0) {
    if (err != nullptr) *err = "bad value for '" + k + "': '" + v + "'";
    return false;
  }
  if (k == "put") {
    prof->mix.put_pct = num;
  } else if (k == "get") {
    prof->mix.get_pct = num;
  } else if (k == "del") {
    prof->mix.delete_pct = num;
  } else if (k == "scan") {
    prof->mix.scan_pct = num;
  } else if (k == "scanlen") {
    prof->mix.scan_len = static_cast<int>(num);
  } else if (k == "theta") {
    if (num <= 0 || num >= 1) {
      if (err != nullptr) *err = "theta must be in (0, 1)";
      return false;
    }
    prof->zipf_theta = num;
    prof->dist = KeyDist::kZipfian;
  } else if (k == "hot_frac") {
    prof->hotspot_frac = num;
    prof->dist = KeyDist::kHotspot;
  } else if (k == "hot_ops") {
    prof->hotspot_opfrac = num;
    prof->dist = KeyDist::kHotspot;
  } else {
    if (err != nullptr) *err = "unknown mix field '" + k + "'";
    return false;
  }
  return true;
}

}  // namespace

bool ParseWorkloadMix(const std::string& spec,
                      std::vector<TenantProfile>* profiles, std::string* err) {
  profiles->clear();
  size_t seg_start = 0;
  while (seg_start <= spec.size()) {
    size_t seg_end = spec.find(';', seg_start);
    if (seg_end == std::string::npos) seg_end = spec.size();
    const std::string seg = spec.substr(seg_start, seg_end - seg_start);
    if (seg.empty()) {
      if (err != nullptr) *err = "empty mix segment";
      return false;
    }
    TenantProfile prof;
    bool preset_seeded = false;
    bool pcts_zeroed = false;
    size_t f_start = 0;
    bool first = true;
    bool ok = true;
    while (f_start <= seg.size() && ok) {
      size_t f_end = seg.find(',', f_start);
      if (f_end == std::string::npos) f_end = seg.size();
      const std::string field = seg.substr(f_start, f_end - f_start);
      // A leading preset name seeds the profile; k=v fields override it.
      if (first && field.find('=') == std::string::npos) {
        if (LookupMixPreset(field, &prof.mix)) {
          preset_seeded = true;
        } else {
          if (err != nullptr) *err = "unknown mix preset '" + field + "'";
          ok = false;
        }
      } else {
        // The first explicit percentage replaces the default pure-put mix
        // wholesale (so "get=100" means reads only, not 100+100).
        const std::string k = field.substr(0, field.find('='));
        if (!preset_seeded && !pcts_zeroed &&
            (k == "put" || k == "get" || k == "del" || k == "scan")) {
          prof.mix = OpMix{0, 0, 0, 0, prof.mix.scan_len};
          pcts_zeroed = true;
        }
        ok = ParseMixField(field, &prof, err);
      }
      first = false;
      f_start = f_end + 1;
    }
    if (!ok) return false;
    const double total = prof.mix.put_pct + prof.mix.get_pct +
                         prof.mix.delete_pct + prof.mix.scan_pct;
    if (total <= 0 || total > 100.0001) {
      if (err != nullptr) {
        *err = "mix percentages must sum to (0, 100]";
      }
      return false;
    }
    profiles->push_back(prof);
    seg_start = seg_end + 1;
  }
  return true;
}

namespace {

// Reservoir of recently written keys so read threads hit live data.
class KeyReservoir {
 public:
  explicit KeyReservoir(size_t capacity) : capacity_(capacity) {}

  // Algorithm R: uniform sample over the whole write history, so reads hit
  // keys at every depth of the tree (as db_bench's uniform key draw does).
  void Offer(uint64_t key, Random64* rng) {
    seen_++;
    if (keys_.size() < capacity_) {
      keys_.push_back(key);
    } else if (rng->Uniform(seen_) < capacity_) {
      keys_[rng->Uniform(keys_.size())] = key;
    }
  }

  bool Sample(Random64* rng, uint64_t* key) const {
    if (keys_.empty()) return false;
    *key = keys_[rng->Uniform(keys_.size())];
    return true;
  }

  bool empty() const { return keys_.empty(); }

 private:
  size_t capacity_;
  uint64_t seen_ = 0;
  std::vector<uint64_t> keys_;
};

// Per-tenant foreground accounting. `service` measures issue -> completion;
// `arrival` measures scheduled-arrival -> completion (open-loop modes), the
// coordinated-omission-free number (DESIGN.md §14).
struct TenantState {
  Histogram service;
  Histogram arrival;
  uint64_t ops = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;
  uint64_t ttl_deletes = 0;
  uint64_t scheduled = 0;
  uint64_t deadline_misses = 0;
  uint64_t abandoned = 0;
};

struct Shared {
  SystemUnderTest* sut = nullptr;
  sim::SimEnv* env = nullptr;
  Nanos window_start = 0;
  Nanos window_end = 0;
  uint64_t writes_done = 0;
  uint64_t reads_done = 0;
  uint64_t scan_ops_done = 0;
  KeyReservoir reservoir{1 << 16};
  // Per-tenant foreground accounting (index = tenant id; size >= 1).
  std::vector<TenantState> tenants;
  bool stop = false;
  // Partition runs: a fenced primary refuses writes (Busy) until the link
  // heals and the lease renews; writers back off and retry instead of
  // treating the window as end-of-run. Non-recoverable errors still end
  // the writer.
  bool ride_out_write_errors = false;
  uint64_t write_errors_ridden = 0;
};

// Tenant key span: slice width (tenants carve key_space into equal
// contiguous slices; one tenant owns the whole space).
uint64_t TenantSpan(const WorkloadConfig& wl) {
  return std::max<uint64_t>(1, wl.key_space / std::max(1, wl.tenants));
}

// Draws key offsets in [0, span) shaped by a tenant profile. The uniform
// path draws from the caller's RNG with the exact historical sequence, so
// default-profile runs stay byte-identical to the pre-matrix harness.
class KeyChooser {
 public:
  KeyChooser(const TenantProfile& prof, uint64_t span, uint64_t seed)
      : span_(span) {
    if (prof.dist == KeyDist::kZipfian) {
      zipf_ = std::make_unique<ZipfianGenerator>(span, prof.zipf_theta, seed);
    } else if (prof.dist == KeyDist::kHotspot) {
      hot_ = std::make_unique<HotspotGenerator>(span, prof.hotspot_frac,
                                                prof.hotspot_opfrac, seed);
    }
  }

  uint64_t Next(Random64* rng) {
    if (zipf_ != nullptr) {
      // Scramble the rank so the hot set spreads across the whole slice
      // (YCSB's scrambled Zipfian) instead of piling onto its front — the
      // contiguous-hot-range case is what kHotspot is for.
      return Mix(zipf_->Next()) % span_;
    }
    if (hot_ != nullptr) return hot_->Next();
    return rng->Uniform(span_);
  }

 private:
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  uint64_t span_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  std::unique_ptr<HotspotGenerator> hot_;
};

// Lazily generates absolute arrival ticks for one actor: a Poisson process
// (exponential gaps) whose instantaneous rate follows the configured curve.
// Virtual-time-driven and per-actor-seeded, so schedules are deterministic.
class ArrivalSchedule {
 public:
  ArrivalSchedule(const WorkloadConfig& wl, Nanos start, double rate_ops,
                  uint64_t seed)
      : wl_(wl),
        start_(start),
        rate_(std::max(rate_ops, 1e-3)),
        rng_(seed),
        next_(start) {}

  Nanos Next() {
    const double r = RateAt(next_);
    // Exponential gap with mean 1/r; log1p(-u) keeps precision near u=0.
    const double gap_s = -std::log1p(-rng_.NextDouble()) / r;
    next_ += std::max<Nanos>(1, FromSecs(gap_s));
    return next_;
  }

 private:
  double RateAt(Nanos t) const {
    constexpr double kPi = 3.14159265358979323846;
    const double s = ToSecs(t - start_);
    switch (wl_.arrival) {
      case Arrival::kDiurnal: {
        // One "day" per period: trough (min_frac * rate) at t=0, peak (rate)
        // mid-period.
        const double phase = 2.0 * kPi * s / wl_.diurnal_period_s;
        const double f =
            wl_.diurnal_min_frac +
            (1.0 - wl_.diurnal_min_frac) * 0.5 * (1.0 - std::cos(phase));
        return rate_ * f;
      }
      case Arrival::kSpike:
        return std::fmod(s, wl_.spike_every_s) < wl_.spike_dur_s
                   ? rate_ * wl_.spike_mult
                   : rate_;
      default:
        return rate_;
    }
  }

  const WorkloadConfig& wl_;
  Nanos start_;
  double rate_;
  Random64 rng_;
  Nanos next_;
};

void WriterLoop(const WorkloadConfig& wl, Shared* sh, uint64_t thread_seed,
                int tenant) {
  Random64 rng(thread_seed);
  uint64_t value_seed = thread_seed << 32;
  const int batch_size = std::max(1, wl.batch_size);
  // Tenant t draws from its contiguous key-space slice; with one tenant the
  // slice is the whole space and the draw sequence is unchanged.
  const uint64_t span = TenantSpan(wl);
  const uint64_t base = static_cast<uint64_t>(tenant) * span;
  // Skewed popularity applies to the classic workloads too; the default
  // uniform profile reproduces the historical draw sequence exactly.
  KeyChooser chooser(wl.ProfileFor(tenant), span, thread_seed + 104729);
  TenantState& ts = sh->tenants[static_cast<size_t>(tenant)];
  lsm::WriteBatch batch;
  std::vector<uint64_t> drawn;
  drawn.reserve(batch_size);
  while (!sh->stop && sh->env->Now() < sh->window_end) {
    batch.Clear();
    drawn.clear();
    for (int i = 0; i < batch_size; i++) {
      uint64_t k = base + chooser.Next(&rng);
      batch.Put(MakeKey(k, wl.key_size),
                Value::Synthetic(value_seed++, wl.value_size));
      drawn.push_back(k);
    }
    Nanos op_start = sh->env->Now();
    Status s = sh->sut->Write(&batch);
    if (!s.ok()) {
      if (sh->ride_out_write_errors &&
          (s.IsBusy() || s.IsIOError() || s.IsTryAgain())) {
        sh->write_errors_ridden++;
        sh->env->SleepFor(FromMillis(1));
        continue;
      }
      break;  // e.g. file system full: end of useful run
    }
    ts.ops += static_cast<uint64_t>(batch_size);
    ts.puts += static_cast<uint64_t>(batch_size);
    ts.service.Add(static_cast<uint64_t>(sh->env->Now() - op_start));
    sh->writes_done += static_cast<uint64_t>(batch_size);
    for (uint64_t k : drawn) sh->reservoir.Offer(k, &rng);
  }
}

// One actor of the mixed workload matrix (DESIGN.md §14): an open-loop (or
// closed, with arrival == kClosed) stream of put/get/delete/scan ops over the
// actor's tenant slice, with optional TTL churn. Open-loop, the actor is a
// single server draining its own arrival schedule: it sleeps until the next
// scheduled tick when idle and issues immediately (late) when backlogged, so
// queueing delay behind a stall lands in the arrival-latency histogram
// instead of silently stretching the schedule (coordinated omission).
void MixedLoop(const WorkloadConfig& wl, Shared* sh, uint64_t thread_seed,
               int tenant, double rate_ops) {
  Random64 rng(thread_seed);
  uint64_t value_seed = thread_seed << 32;
  const TenantProfile& prof = wl.ProfileFor(tenant);
  const uint64_t span = TenantSpan(wl);
  const uint64_t base = static_cast<uint64_t>(tenant) * span;
  KeyChooser chooser(prof, span, thread_seed + 104729);
  const bool open_loop = wl.arrival != Arrival::kClosed;
  ArrivalSchedule sched(wl, sh->window_start, rate_ops,
                        thread_seed + 15485863);
  const Nanos deadline = FromMicros(wl.deadline_us);
  TenantState& ts = sh->tenants[static_cast<size_t>(tenant)];
  // Keys this actor wrote with a TTL, with their expiry ticks. TTLs are
  // constant, so the front is always the earliest expiry.
  std::deque<std::pair<Nanos, uint64_t>> ttl_due;
  lsm::ReadOptions scan_ropts;
  scan_ropts.readahead_blocks = 16;

  while (!sh->stop) {
    Nanos sched_at = 0;
    if (open_loop) {
      sched_at = sched.Next();
      if (sched_at >= sh->window_end) break;
      ts.scheduled++;
      if (sh->env->Now() >= sh->window_end) {
        // The window closed with this arrival still queued behind the
        // backlog: a latency casualty, not an omission. Keep draining the
        // schedule so every missed in-window arrival is counted.
        ts.abandoned++;
        ts.deadline_misses++;
        continue;
      }
      if (sh->env->Now() < sched_at) sh->env->SleepUntil(sched_at);
    } else if (sh->env->Now() >= sh->window_end) {
      break;
    }

    // TTL churn: delete entries whose TTL lapsed by now.
    while (!ttl_due.empty() && ttl_due.front().first <= sh->env->Now()) {
      const uint64_t k = ttl_due.front().second;
      ttl_due.pop_front();
      if (sh->sut->Delete(MakeKey(k, wl.key_size)).ok()) {
        ts.ttl_deletes++;
        sh->writes_done++;
      }
    }

    const Nanos issue = sh->env->Now();
    if (!open_loop) sched_at = issue;
    const double pick = rng.NextDouble() * 100.0;
    Status s;
    if (pick < prof.mix.put_pct) {
      const uint64_t k = base + chooser.Next(&rng);
      s = sh->sut->Put(MakeKey(k, wl.key_size),
                       Value::Synthetic(value_seed++, wl.value_size));
      if (s.ok()) {
        ts.puts++;
        sh->writes_done++;
        sh->reservoir.Offer(k, &rng);
        if (wl.ttl_frac > 0 && rng.NextDouble() < wl.ttl_frac) {
          ttl_due.emplace_back(issue + FromSecs(wl.ttl_s), k);
        }
      }
    } else if (pick < prof.mix.put_pct + prof.mix.get_pct) {
      const uint64_t k = base + chooser.Next(&rng);
      Value v;
      (void)sh->sut->Get(MakeKey(k, wl.key_size), &v);
      ts.gets++;
      sh->reads_done++;
    } else if (pick <
               prof.mix.put_pct + prof.mix.get_pct + prof.mix.delete_pct) {
      // Churn: deletes follow the same popularity shape as writes, so hot
      // data is also what gets tombstoned.
      const uint64_t k = base + chooser.Next(&rng);
      s = sh->sut->Delete(MakeKey(k, wl.key_size));
      if (s.ok()) {
        ts.deletes++;
        sh->writes_done++;
      }
    } else {
      const uint64_t k = base + chooser.Next(&rng);
      auto it = sh->sut->NewIterator(scan_ropts);
      it->Seek(MakeKey(k, wl.key_size));
      sh->scan_ops_done++;  // the Seek
      for (int n = 0; n < prof.mix.scan_len && it->Valid(); n++) {
        it->Next();
        sh->scan_ops_done++;
      }
      ts.scans++;
    }
    if (!s.ok()) {
      if (sh->ride_out_write_errors &&
          (s.IsBusy() || s.IsIOError() || s.IsTryAgain())) {
        sh->write_errors_ridden++;
        sh->env->SleepFor(FromMillis(1));
        continue;
      }
      break;  // e.g. file system full: end of useful run
    }
    const Nanos done = sh->env->Now();
    ts.ops++;
    ts.service.Add(static_cast<uint64_t>(done - issue));
    ts.arrival.Add(static_cast<uint64_t>(done - sched_at));
    if (done > sched_at + deadline) ts.deadline_misses++;
  }
}

void ReaderLoop(const WorkloadConfig& wl, Shared* sh, uint64_t thread_seed) {
  Random64 rng(thread_seed);
  while (!sh->stop && sh->env->Now() < sh->window_end) {
    if (sh->reservoir.empty()) {
      sh->env->SleepFor(FromMicros(100));
      continue;
    }
    uint64_t k = 0;
    sh->reservoir.Sample(&rng, &k);
    Value v;
    (void)sh->sut->Get(MakeKey(k, wl.key_size), &v);
    sh->reads_done++;
  }
}

void SeekLoop(const WorkloadConfig& wl, Shared* sh, uint64_t thread_seed) {
  Random64 rng(thread_seed);
  // Long range scans benefit from iterator readahead (RocksDB ramps
  // auto-readahead up to 256 KB on sequential access).
  lsm::ReadOptions scan_ropts;
  scan_ropts.readahead_blocks = 16;
  for (uint64_t i = 0; i < wl.seek_ops && !sh->stop; i++) {
    uint64_t k = rng.Uniform(wl.key_space);
    auto it = sh->sut->NewIterator(scan_ropts);
    it->Seek(MakeKey(k, wl.key_size));
    sh->scan_ops_done++;  // the Seek
    for (int n = 0; n < wl.nexts_per_seek && it->Valid(); n++) {
      it->Next();
      sh->scan_ops_done++;
    }
  }
}

// Mirrors every subsystem's existing stats structs into the registry at
// snapshot time (DESIGN.md §8 naming: <layer>.<component>.<metric>). The
// callbacks read live objects, so Snapshot() must run while the world is
// still open (before SystemUnderTest::Close()).
void RegisterWorldMetrics(obs::MetricsRegistry* registry,
                          SystemUnderTest* sut, ssd::HybridSsd* ssd,
                          sim::CpuPool* host_cpu, ndp::NdpDevice* ndp_dev,
                          sim::FaultInjector* injector, obs::Tracer* tracer) {
  registry->AddSource([sut](obs::MetricsSnapshot* snap) {
    const lsm::DbStats& ms = sut->main_stats();
    snap->SetCounter("lsm.writes_total", ms.writes_total);
    snap->SetCounter("lsm.write_bytes_total", ms.write_bytes_total);
    snap->SetCounter("lsm.reads_total", ms.reads_total);
    snap->SetCounter("lsm.seeks_total", ms.seeks_total);
    snap->SetCounter("lsm.flush.count", ms.flush_count);
    snap->SetCounter("lsm.flush.bytes", ms.flush_bytes);
    snap->SetCounter("lsm.compaction.count", ms.compaction_count);
    snap->SetCounter("lsm.compaction.bytes_read", ms.compaction_bytes_read);
    snap->SetCounter("lsm.compaction.bytes_written",
                     ms.compaction_bytes_written);
    snap->SetCounter("lsm.compaction.split_jobs", ms.split_compactions);
    snap->SetCounter("lsm.compaction.subcompactions", ms.subcompaction_count);
    snap->SetCounter("lsm.compaction.intra_l0", ms.intra_l0_compactions);
    snap->SetCounter("lsm.compaction.throttle_ns", ms.compaction_throttle_ns);
    snap->SetCounter("lsm.orphan_files_removed", ms.orphan_files_removed);
    snap->SetGauge("lsm.compaction.queue_depth",
                   sut->db()->GetStallSignals().compaction_queue_depth);
    snap->SetCounter("lsm.stall.events", ms.stall_events);
    snap->SetCounter("lsm.slowdown.events", ms.slowdown_events);
    snap->SetCounter("lsm.io_retries", ms.io_retries);
    snap->SetCounter("lsm.background_errors", ms.background_errors);
    snap->SetCounter("lsm.write_groups", ms.write_groups);
    snap->SetHistogram("lsm.group_commit_size", ms.group_commit_size);
    const lsm::DbStats& fg = sut->stats();
    snap->SetHistogram("db.put_latency_ns", fg.put_latency);
    snap->SetHistogram("db.get_latency_ns", fg.get_latency);
    snap->SetHistogram("db.seek_latency_ns", fg.seek_latency);
    lsm::BlockCacheStats cache = sut->db()->GetBlockCacheStats();
    snap->SetCounter("lsm.block_cache.hits", cache.hits);
    snap->SetCounter("lsm.block_cache.misses", cache.misses);
    snap->SetCounter("lsm.block_cache.usage_bytes", cache.usage_bytes);
    snap->SetCounter("lsm.block_cache.capacity_bytes", cache.capacity_bytes);
    snap->SetGauge("lsm.block_cache.hit_rate", cache.hit_rate());
  });

  registry->AddSource([ssd](obs::MetricsSnapshot* snap) {
    snap->SetCounter("ssd.link.busy_ns",
                     static_cast<uint64_t>(ssd->pcie().busy_ns()));
    snap->SetCounter("ssd.nand.busy_ns",
                     static_cast<uint64_t>(ssd->nand().busy_ns()));
    snap->SetCounter("ssd.nand.bytes_read", ssd->nand().bytes_read());
    snap->SetCounter("ssd.nand.bytes_written", ssd->nand().bytes_written());
    snap->SetCounter("ssd.nand.blocks_erased", ssd->nand().blocks_erased());
    const ssd::Ftl& ftl = ssd->block_ftl(0);
    snap->SetCounter("ssd.ftl.valid_pages", ftl.valid_pages());
    snap->SetCounter("ssd.ftl.free_blocks", ftl.free_blocks());
    snap->SetCounter("ssd.ftl.relocated_pages", ftl.relocated_pages());
    snap->SetCounter("ssd.ftl.erased_blocks", ftl.erased_blocks());
    snap->SetCounter("ssd.ftl.gc_runs", ftl.gc_runs());
    snap->SetGauge("ssd.ftl.write_amplification", ftl.write_amplification());
    snap->SetGauge("ssd.firmware.busy_seconds",
                   ssd->firmware()->busy_seconds());
  });

  if (sut->is_kvaccel()) {
    registry->AddSource([sut](obs::MetricsSnapshot* snap) {
      // Single shard: the facade's own counters. Sharded: fleet aggregates
      // under the same names, so dashboards read both the same way.
      core::KvaccelStats ks = sut->kvaccel_stats();
      snap->SetCounter("kvaccel.detector.checks", ks.detector_checks);
      snap->SetCounter("kvaccel.redirect.writes", ks.redirected_writes);
      snap->SetCounter("kvaccel.redirect.batches", ks.redirected_batches);
      snap->SetCounter("kvaccel.direct.writes", ks.direct_writes);
      snap->SetCounter("kvaccel.rollback.count", ks.rollbacks);
      snap->SetCounter("kvaccel.rollback.entries", ks.rollback_entries);
      snap->SetCounter("kvaccel.rollback.total_ns", ks.rollback_total_ns);
      snap->SetCounter("kvaccel.read.dev", ks.dev_reads);
      snap->SetCounter("kvaccel.read.main", ks.main_reads);
      snap->SetCounter("kvaccel.md.inserts", ks.md_inserts);
      snap->SetCounter("kvaccel.md.checks", ks.md_checks);
      snap->SetCounter("kvaccel.md.deletes", ks.md_deletes);
      snap->SetCounter("kvaccel.dev.retries", ks.dev_retries);
      snap->SetCounter("kvaccel.fallback_writes", ks.fallback_writes);
      snap->SetCounter("kvaccel.device_unhealthy_events",
                       ks.device_unhealthy_events);
      snap->SetHistogram("kvaccel.redirect.batch_latency_ns",
                         ks.redirect_batch_latency);
      snap->SetCounter("kvaccel.redirect.admission_rejects",
                       ks.redirect_admission_rejects);
      snap->SetCounter("kvaccel.redirect.arbiter_wait_ns",
                       ks.redirect_arbiter_wait_ns);
      // Sharded: how many shards' Detectors currently see a stall.
      double active = 0;
      if (sut->sharded() != nullptr) {
        core::ShardedKvaccelDB* shd = sut->sharded();
        for (int i = 0; i < shd->num_shards(); i++) {
          if (shd->shard(i)->detector()->stall_detected()) active += 1;
        }
      } else if (sut->kvaccel()->detector()->stall_detected()) {
        active = 1;
      }
      snap->SetGauge("kvaccel.redirect.active", active);
      core::KvaccelDB* kv = sut->kvaccel();
      if (kv != nullptr && kv->scrubber() != nullptr) {
        const core::ScrubStats& sc = kv->scrubber()->stats();
        snap->SetCounter("scrub.files_scanned", sc.files_scanned);
        snap->SetCounter("scrub.bytes_scanned", sc.bytes_scanned);
        snap->SetCounter("scrub.passes", sc.passes);
        snap->SetCounter("scrub.corruptions", sc.corruptions);
        snap->SetCounter("scrub.escalations", sc.escalations);
        snap->SetCounter("scrub.skipped_busy", sc.skipped_busy);
        snap->SetCounter("scrub.deferred_for_resync", sc.deferred_for_resync);
      }
      devlsm::DevLsmStats ds = sut->devlsm_stats();
      snap->SetCounter("devlsm.puts", ds.puts);
      snap->SetCounter("devlsm.gets", ds.gets);
      snap->SetCounter("devlsm.deletes", ds.deletes);
      snap->SetCounter("devlsm.compound_cmds", ds.compound_cmds);
      snap->SetCounter("devlsm.compound_entries", ds.compound_entries);
      snap->SetCounter("devlsm.flushes", ds.flushes);
      snap->SetCounter("devlsm.compactions", ds.compactions);
      snap->SetCounter("devlsm.bulk_scans", ds.bulk_scans);
      snap->SetCounter("devlsm.scan_chunks", ds.scan_chunks);
      snap->SetCounter("devlsm.resets", ds.resets);
    });
  }

  // Device-offloaded compaction (DESIGN.md §13): the engine's own counters
  // plus the per-DB planner decisions (summed across shards).
  if (ndp_dev != nullptr) {
    registry->AddSource([sut, ndp_dev](obs::MetricsSnapshot* snap) {
      const ndp::NdpStats& ns = ndp_dev->stats();
      snap->SetCounter("ndp.commands", ns.commands);
      snap->SetCounter("ndp.rejected", ns.rejected);
      snap->SetCounter("ndp.jobs_completed", ns.jobs_completed);
      snap->SetCounter("ndp.jobs_failed", ns.jobs_failed);
      snap->SetCounter("ndp.merge_bytes", ns.merge_bytes);
      snap->SetCounter("ndp.command_bytes", ns.command_bytes);
      snap->SetCounter("ndp.result_bytes", ns.result_bytes);
      snap->SetGauge("ndp.cpu.busy_seconds", ndp_dev->cpu()->busy_seconds());
      ndp::PlannerStats ps;
      auto add = [&ps](const ndp::OffloadPlanner* p) {
        if (p == nullptr) return;
        ps.device_jobs += p->stats().device_jobs;
        ps.host_jobs += p->stats().host_jobs;
        ps.flips += p->stats().flips;
        ps.cooldown_rejects += p->stats().cooldown_rejects;
        ps.failures += p->stats().failures;
      };
      if (sut->sharded() != nullptr) {
        core::ShardedKvaccelDB* shd = sut->sharded();
        for (int i = 0; i < shd->num_shards(); i++) {
          add(shd->shard(i)->offload_planner());
        }
      } else if (sut->kvaccel() != nullptr) {
        add(sut->kvaccel()->offload_planner());
      }
      snap->SetCounter("ndp.planner.device_jobs", ps.device_jobs);
      snap->SetCounter("ndp.planner.host_jobs", ps.host_jobs);
      snap->SetCounter("ndp.planner.flips", ps.flips);
      snap->SetCounter("ndp.planner.cooldown_rejects", ps.cooldown_rejects);
      snap->SetCounter("ndp.planner.failures", ps.failures);
      const lsm::DbStats& ms = sut->main_stats();
      snap->SetCounter("ndp.compactions", ms.ndp_compactions);
      snap->SetCounter("ndp.bytes_written", ms.ndp_bytes_written);
      snap->SetCounter("ndp.fallbacks", ms.ndp_fallbacks);
    });
  }

  // HA pair (DESIGN.md §12): replication-stream counters.
  if (sut->pair() != nullptr) {
    core::ReplicatedKvaccelDB* pair = sut->pair();
    registry->AddSource([pair](obs::MetricsSnapshot* snap) {
      const core::ReplStats& rs = pair->repl_stats();
      snap->SetCounter("repl.wal_records", rs.wal_records);
      snap->SetCounter("repl.wal_entries", rs.wal_entries);
      snap->SetCounter("repl.intent_records", rs.intent_records);
      snap->SetCounter("repl.intent_entries", rs.intent_entries);
      snap->SetCounter("repl.rollback_records", rs.rollback_records);
      snap->SetCounter("repl.manifest_records", rs.manifest_records);
      snap->SetCounter("repl.manifest_drops", rs.manifest_drops);
      snap->SetCounter("repl.bytes", rs.repl_bytes);
      snap->SetCounter("repl.records_applied", rs.records_applied);
      snap->SetCounter("repl.net_retries", rs.net_retries);
      snap->SetCounter("repl.ship_failures", rs.ship_failures);
      snap->SetCounter("repl.backup_dev_fallbacks", rs.backup_dev_fallbacks);
      snap->SetCounter("repl.async_queue_peak", rs.async_queue_peak);
      snap->SetCounter("repl.async_queue_bytes_peak",
                       rs.async_queue_bytes_peak);
      snap->SetCounter("repl.sync_ship_ns", rs.sync_ship_ns);
      snap->SetCounter("repl.heartbeats", rs.heartbeat_records);
      snap->SetCounter("repl.fenced_write_rejects", rs.fenced_write_rejects);
      snap->SetCounter("repl.lease_expirations", rs.lease_expirations);
      snap->SetCounter("repl.stale_epoch_rejects", rs.fenced_records);
      snap->SetCounter("repl.ack_losses", rs.ack_losses);
      snap->SetCounter("repl.dup_records", rs.dup_records);
      snap->SetCounter("repl.reorder_swaps", rs.reorder_swaps);
      snap->SetCounter("repl.net.messages", pair->link()->messages());
      snap->SetCounter("repl.net.drops", pair->link()->drops());
      snap->SetCounter("repl.net.partition_drops",
                       pair->link()->partition_drops());
      snap->SetCounter("repl.net.delay_spikes", pair->link()->delay_spikes());
      snap->SetGauge("ha.repl.queue_bytes",
                     static_cast<double>(pair->queue_bytes()));
      snap->SetGauge("ha.epoch", static_cast<double>(pair->epoch()));
      snap->SetGauge("ha.fenced", pair->fenced() ? 1.0 : 0.0);
    });
  }

  // Per-shard roll-up (DESIGN.md §11): dotted shard.<i>.* names so the flat
  // snapshot sorts all of one shard's metrics together.
  if (sut->sharded() != nullptr) {
    core::ShardedKvaccelDB* shd = sut->sharded();
    registry->AddSource([shd](obs::MetricsSnapshot* snap) {
      for (int i = 0; i < shd->num_shards(); i++) {
        const std::string p = "shard." + std::to_string(i) + ".";
        core::KvaccelDB* kv = shd->shard(i);
        const lsm::DbStats& fg = kv->stats();
        snap->SetCounter(p + "lsm.writes_total", fg.writes_total);
        snap->SetCounter(p + "lsm.write_bytes_total", fg.write_bytes_total);
        snap->SetCounter(p + "lsm.stall.events",
                         kv->main()->stats().stall_events);
        snap->SetHistogram(p + "db.put_latency_ns", fg.put_latency);
        const core::KvaccelStats& ks = kv->kv_stats();
        snap->SetCounter(p + "kvaccel.redirect.writes", ks.redirected_writes);
        snap->SetCounter(p + "kvaccel.redirect.admission_rejects",
                         ks.redirect_admission_rejects);
        snap->SetCounter(p + "kvaccel.redirect.arbiter_wait_ns",
                         ks.redirect_arbiter_wait_ns);
        snap->SetCounter(p + "kvaccel.rollback.count", ks.rollbacks);
        if (shd->arbiter() != nullptr) {
          const sim::FairShareArbiter::ClientStats& cs =
              shd->arbiter()->client_stats(i);
          snap->SetCounter(p + "arbiter.grants", cs.grants);
          snap->SetCounter(p + "arbiter.granted_bytes", cs.granted_bytes);
          snap->SetCounter(p + "arbiter.throttles", cs.throttles);
          snap->SetCounter(p + "arbiter.throttle_ns", cs.throttle_ns);
        }
      }
    });
  }

  registry->AddSource(
      [host_cpu, injector, tracer](obs::MetricsSnapshot* snap) {
        snap->SetGauge("host.cpu.busy_seconds", host_cpu->busy_seconds());
        if (injector != nullptr) {
          snap->SetCounter("sim.faults.injected", injector->total_fires());
        }
        if (tracer != nullptr) {
          snap->SetCounter("obs.trace.events", tracer->num_events());
          snap->SetCounter("obs.trace.dropped", tracer->dropped_events());
          snap->SetCounter("obs.trace.tracks", tracer->num_tracks());
        }
      });
}

}  // namespace

RunResult RunBenchmark(const BenchConfig& config) {
  sim::SimEnv env;
  // The tracer must attach before any component is built: HybridSsd's
  // constructor registers the PCIe/NAND busy tracks off env.tracer().
  std::unique_ptr<obs::Tracer> tracer;
  if (!config.trace_out.empty()) {
    tracer = std::make_unique<obs::Tracer>(&env);
    env.set_tracer(tracer.get());
  }
  obs::MetricsRegistry registry;
  ssd::SsdConfig ssd_config = PaperSsdConfig(config.scale);
  if (config.nand_mbps > 0) ssd_config.nand_bytes_per_sec = config.nand_mbps * 1e6;
  // Sharded engine: one SSD namespace per shard; the router builds one SimFs
  // per namespace itself, so no world-level file system exists (two SimFs on
  // one namespace would both think they own its LBA space).
  const bool sharded =
      config.sut.kind == SystemKind::kKvaccel && config.sut.shards > 1;
  if (sharded) ssd_config.num_namespaces = config.sut.shards;
  ssd::HybridSsd ssd(&env, ssd_config);
  std::unique_ptr<fs::SimFs> fs;
  if (!sharded) fs = std::make_unique<fs::SimFs>(&ssd, 0);
  sim::CpuPool host_cpu(&env, "host", 8);  // Table II: usage limited to 8
  lsm::DbEnv denv{&env, &ssd, fs.get(), &host_cpu};

  // Two-node HA pair (DESIGN.md §12): build the backup node's world — its
  // own SSD, file system and 8-core host — plus caller-owned Dev-LSM
  // instances for both nodes (the backup's must outlive the pair so the
  // post-run failover can re-attach it).
  SutConfig sut_cfg = config.sut;
  const bool ha =
      config.sut.kind == SystemKind::kKvaccel && config.sut.ha && !sharded;
  std::unique_ptr<ssd::HybridSsd> ssd_b;
  std::unique_ptr<fs::SimFs> fs_b;
  std::unique_ptr<sim::CpuPool> cpu_b;
  std::unique_ptr<devlsm::DevLsm> dev_a, dev_b;
  if (ha) {
    ssd_b = std::make_unique<ssd::HybridSsd>(&env, ssd_config);
    fs_b = std::make_unique<fs::SimFs>(ssd_b.get(), 0);
    cpu_b = std::make_unique<sim::CpuPool>(&env, "host-b", 8);
    const devlsm::DevLsmOptions dev_opts =
        SystemUnderTest::BuildKvOptions(sut_cfg).dev;
    dev_a = std::make_unique<devlsm::DevLsm>(&ssd, 0, dev_opts);
    dev_b = std::make_unique<devlsm::DevLsm>(ssd_b.get(), 0, dev_opts);
    sut_cfg.ha_primary = {&ssd, fs.get(), &host_cpu, dev_a.get()};
    sut_cfg.ha_backup = {ssd_b.get(), fs_b.get(), cpu_b.get(), dev_b.get()};
  }

  // Device-offloaded compaction (DESIGN.md §13): one NdpDevice per SSD —
  // shared by all shards of a sharded engine; one per node for an HA pair.
  std::unique_ptr<ndp::NdpDevice> ndp_dev, ndp_dev_b;
  if (config.sut.kind == SystemKind::kKvaccel &&
      config.sut.ndp_mode != ndp::OffloadMode::kOff) {
    ndp::NdpConfig nc;
    nc.cores = config.sut.ndp_cores;
    ndp_dev = std::make_unique<ndp::NdpDevice>(&ssd, nc);
    sut_cfg.ndp_device = ndp_dev.get();
    if (ha) {
      ndp_dev_b = std::make_unique<ndp::NdpDevice>(ssd_b.get(), nc);
      sut_cfg.ha_primary.ndp = ndp_dev.get();
      sut_cfg.ha_backup.ndp = ndp_dev_b.get();
    }
  }

  sim::FaultInjector injector(&env, config.fault_seed);
  if (!config.fault_profile.empty()) {
    env.set_fault_injector(&injector);
    if (!ApplyFaultProfile(&injector, config.fault_profile)) {
      fprintf(stderr, "unknown fault profile '%s'\n",
              config.fault_profile.c_str());
      exit(2);
    }
  }
  // Partition window (DESIGN.md §12): the injector must be live even without
  // a canned fault profile so the net-nemesis thread can cut the link.
  const bool partition_run = ha && sut_cfg.net_partition_dur_s > 0;
  if (partition_run) env.set_fault_injector(&injector);

  RunResult result;
  Shared sh;
  sh.env = &env;
  sh.tenants.resize(static_cast<size_t>(std::max(1, config.workload.tenants)));

  env.Spawn("bench-main", [&] {
    std::unique_ptr<SystemUnderTest> sut;
    Status s = SystemUnderTest::Open(sut_cfg, denv, &sut);
    if (!s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return;
    }
    sh.sut = sut.get();
    result.name = sut->name();
    RegisterWorldMetrics(&registry, sut.get(), &ssd, &host_cpu, ndp_dev.get(),
                         config.fault_profile.empty() ? nullptr : &injector,
                         tracer.get());

    const WorkloadConfig& wl = config.workload;

    // Workload D: bulk preload, then settle compaction before measuring.
    if (wl.type == WorkloadConfig::Type::kSeekRandom) {
      uint64_t preload_bytes = static_cast<uint64_t>(
          static_cast<double>(wl.preload_bytes) * config.scale);
      uint64_t ops = preload_bytes / wl.value_size;
      Random64 rng(wl.seed);
      uint64_t value_seed = 1;
      for (uint64_t i = 0; i < ops; i++) {
        uint64_t k = rng.Uniform(wl.key_space);
        Status ps = sut->Put(MakeKey(k, wl.key_size),
                             Value::Synthetic(value_seed++, wl.value_size));
        if (!ps.ok()) break;
      }
      sut->FlushAll();
      sut->WaitForCompactionIdle();
    }

    sh.window_start = env.Now();
    sh.window_end = sh.window_start + wl.duration;

    // Net nemesis: cut the interconnect symmetrically for the configured
    // window. The primary's lease lapses, writes bounce off the fence
    // (writers back off), and after the heal the heartbeat renews the lease
    // and traffic resumes — the post-run block then measures the full
    // promote + rejoin drill.
    std::vector<sim::SimEnv::Thread*> workers;
    if (partition_run) {
      sh.ride_out_write_errors = true;
      workers.push_back(env.Spawn("net-nemesis", [&] {
        env.SleepFor(static_cast<Nanos>(sut_cfg.net_partition_start_s * 1e9));
        sim::FaultRule cut;
        cut.probability = 1.0;
        injector.Arm("net.partition.sym", cut);
        env.SleepFor(static_cast<Nanos>(sut_cfg.net_partition_dur_s * 1e9));
        injector.Disarm("net.partition.sym");
      }));
    }

    // Writer t=0 keeps the historical seed (wl.seed + 1) so a
    // --writer_threads=1 run is bit-identical to the single-writer driver;
    // extra writers get well-separated streams clear of the reader seeds.
    auto writer_seed = [&wl](int t) {
      return t == 0 ? wl.seed + 1 : wl.seed + 1 + 7919ull * t;
    };
    auto spawn_writers = [&](std::vector<sim::SimEnv::Thread*>* out) {
      // At least one writer per tenant so every tenant's stream is live.
      int writers = std::max({1, wl.writer_threads, wl.tenants});
      for (int t = 0; t < writers; t++) {
        int tenant = wl.tenants > 1 ? t % wl.tenants : 0;
        out->push_back(env.Spawn(
            "writer" + std::to_string(t),
            [&, t, tenant] { WriterLoop(wl, &sh, writer_seed(t), tenant); }));
      }
    };

    switch (wl.type) {
      case WorkloadConfig::Type::kFillRandom:
        spawn_writers(&workers);
        break;
      case WorkloadConfig::Type::kReadWhileWriting:
        spawn_writers(&workers);
        for (int t = 0; t < wl.read_threads; t++) {
          workers.push_back(env.Spawn(
              "reader" + std::to_string(t),
              [&, t] { ReaderLoop(wl, &sh, wl.seed + 2 + t); }));
        }
        break;
      case WorkloadConfig::Type::kSeekRandom:
        sh.window_end = sh.window_start + FromSecs(100000);  // op-bounded
        workers.push_back(env.Spawn(
            "seeker", [&] { SeekLoop(wl, &sh, wl.seed + 1); }));
        break;
      case WorkloadConfig::Type::kMixed: {
        // Actors mirror the writer topology (>= 1 per tenant); the open-loop
        // rate splits evenly across tenants, then across a tenant's actors.
        const int actors = std::max({1, wl.writer_threads, wl.tenants});
        std::vector<int> per_tenant(
            static_cast<size_t>(std::max(1, wl.tenants)), 0);
        for (int t = 0; t < actors; t++) {
          per_tenant[static_cast<size_t>(wl.tenants > 1 ? t % wl.tenants
                                                        : 0)]++;
        }
        const double tenant_rate = wl.arrival_rate / std::max(1, wl.tenants);
        for (int t = 0; t < actors; t++) {
          const int tenant = wl.tenants > 1 ? t % wl.tenants : 0;
          const double rate =
              tenant_rate / per_tenant[static_cast<size_t>(tenant)];
          workers.push_back(env.Spawn(
              "mixed" + std::to_string(t), [&, t, tenant, rate] {
                MixedLoop(wl, &sh, writer_seed(t), tenant, rate);
              }));
        }
        break;
      }
    }
    for (auto* w : workers) env.Join(w);
    Nanos window_end = std::min(env.Now(), sh.window_end);
    if (wl.type == WorkloadConfig::Type::kSeekRandom) window_end = env.Now();

    // ---- Harvest ----
    const Nanos t0 = sh.window_start;
    const Nanos t1 = std::max(window_end, t0 + 1);
    result.seconds = ToSecs(t1 - t0);

    const lsm::DbStats& fg = sut->stats();
    const lsm::DbStats& ms = sut->main_stats();
    result.write_kops =
        static_cast<double>(sh.writes_done) / result.seconds / 1e3;
    result.read_kops =
        static_cast<double>(sh.reads_done) / result.seconds / 1e3;
    result.scan_kops =
        static_cast<double>(sh.scan_ops_done) / result.seconds / 1e3;
    result.write_mbps = static_cast<double>(sh.writes_done) *
                        (wl.value_size + wl.key_size + 8) / result.seconds /
                        1e6;
    result.put_avg_us = fg.put_latency.Average() / 1e3;
    result.put_p99_us = fg.put_latency.Percentile(99) / 1e3;
    result.put_p999_us = fg.put_latency.Percentile(99.9) / 1e3;
    result.get_p99_us = fg.get_latency.Percentile(99) / 1e3;
    result.cpu_pct = host_cpu.UtilizationBetween(t0, t1) * 100.0;
    if (result.cpu_pct > 0) {
      result.efficiency = result.write_mbps / result.cpu_pct;
    }
    result.stall_events = ms.stall_events;
    result.slowdown_events = ms.slowdown_events;
    result.write_groups = ms.write_groups;
    result.group_commit_mean = ms.group_commit_size.Average();
    result.group_commit_max = ms.group_commit_size.Max();
    result.slowdown_periods = ms.slowdown_regions.Count() +
                              (ms.slowdown_regions.open() ? 1 : 0);

    size_t first_sec = static_cast<size_t>(t0 / kNanosPerSec);
    size_t last_sec = static_cast<size_t>((t1 - 1) / kNanosPerSec);
    for (size_t sec = first_sec; sec <= last_sec; sec++) {
      result.per_sec_write_kops.push_back(fg.writes_completed.Bucket(sec) /
                                          1e3);
      result.per_sec_read_kops.push_back(fg.reads_completed.Bucket(sec) /
                                         1e3);
      result.per_sec_pcie_mbps.push_back(
          ssd.pcie().traffic().Bucket(sec) / 1e6);
    }

    // Stall regions and derived PCIe signals (Figs 4, 5, 14).
    sim::IntervalRecorder regions = ms.stall_regions;  // copy
    regions.CloseAt(t1);
    const double nand_bps = ssd.nand().total_bytes_per_sec();
    for (const auto& iv : regions.intervals()) {
      if (iv.end <= t0 || iv.start >= t1) continue;
      Nanos a = std::max(iv.start, t0);
      Nanos b = std::min(iv.end, t1);
      result.stall_regions_sec.emplace_back(ToSecs(a - t0), ToSecs(b - t0));
      result.stalled_seconds += ToSecs(b - a);
    }
    // Sample PCIe utilisation during stalls at fine granularity (125 ms
    // buckets — the scale-adjusted equivalent of the paper's 1 s Intel PCM
    // sampling; see DESIGN.md §3).
    const sim::TimeSeries& fine = ssd.pcie().traffic_fine();
    const Nanos fine_width = fine.bucket_width();
    const double fine_capacity =
        nand_bps * (static_cast<double>(fine_width) / kNanosPerSec);
    size_t first_fine = static_cast<size_t>(t0 / fine_width);
    size_t last_fine = static_cast<size_t>((t1 - 1) / fine_width);
    for (size_t b = first_fine; b <= last_fine; b++) {
      Nanos mid = static_cast<Nanos>(b) * fine_width + fine_width / 2;
      if (!regions.Contains(mid)) continue;
      double bytes = fine.Bucket(b);
      double util = std::min(1.0, bytes / fine_capacity);
      result.stall_pcie_util.push_back(util);
      if (util < 0.002) {
        result.zero_traffic_stall_seconds +=
            static_cast<double>(fine_width) / kNanosPerSec;
      }
    }

    result.compactions = ms.compaction_count;
    result.split_compactions = ms.split_compactions;
    result.subcompactions = ms.subcompaction_count;
    result.intra_l0_compactions = ms.intra_l0_compactions;
    result.compaction_throttle_seconds =
        static_cast<double>(ms.compaction_throttle_ns) / kNanosPerSec;

    result.fault_injected = injector.total_fires();
    result.io_retries = ms.io_retries;
    result.background_errors = ms.background_errors;

    // Device-offloaded compaction (DESIGN.md §13).
    if (ndp_dev != nullptr) {
      result.ndp_mode =
          sut_cfg.ndp_mode == ndp::OffloadMode::kForce ? 1 : 0;
      result.ndp_compactions = ms.ndp_compactions;
      result.ndp_mb_written =
          static_cast<double>(ms.ndp_bytes_written) / 1e6;
      result.ndp_fallbacks = ms.ndp_fallbacks;
      const ndp::NdpStats& ns = ndp_dev->stats();
      result.ndp_commands = ns.commands;
      result.ndp_rejected = ns.rejected;
      result.ndp_cpu_busy_seconds = ndp_dev->cpu()->busy_seconds();
      ndp::PlannerStats ps;
      auto add = [&ps](const ndp::OffloadPlanner* p) {
        if (p == nullptr) return;
        ps.device_jobs += p->stats().device_jobs;
        ps.host_jobs += p->stats().host_jobs;
        ps.flips += p->stats().flips;
        ps.cooldown_rejects += p->stats().cooldown_rejects;
      };
      if (sut->sharded() != nullptr) {
        core::ShardedKvaccelDB* shd = sut->sharded();
        for (int i = 0; i < shd->num_shards(); i++) {
          add(shd->shard(i)->offload_planner());
        }
      } else if (sut->kvaccel() != nullptr) {
        add(sut->kvaccel()->offload_planner());
      }
      result.ndp_planner_device_jobs = ps.device_jobs;
      result.ndp_planner_host_jobs = ps.host_jobs;
      result.ndp_planner_flips = ps.flips;
      result.ndp_planner_cooldown_rejects = ps.cooldown_rejects;
    }
    if (sut->is_kvaccel()) {
      core::KvaccelStats ks = sut->kvaccel_stats();
      result.redirected_writes = ks.redirected_writes;
      result.rollbacks = ks.rollbacks;
      result.detector_checks = ks.detector_checks;
      result.redirected_batches = ks.redirected_batches;
      result.dev_retries = ks.dev_retries;
      result.fallback_writes = ks.fallback_writes;
    }

    // Per-shard breakdown + fairness headline (DESIGN.md §11).
    if (sut->sharded() != nullptr) {
      core::ShardedKvaccelDB* shd = sut->sharded();
      uint64_t min_writes = 0, max_writes = 0;
      for (int i = 0; i < shd->num_shards(); i++) {
        core::KvaccelDB* kv = shd->shard(i);
        const lsm::DbStats& sfg = kv->stats();
        ShardSummary ss;
        ss.shard = i;
        ss.writes = sfg.writes_total;
        ss.write_kops =
            static_cast<double>(sfg.writes_total) / result.seconds / 1e3;
        ss.put_p50_us = sfg.put_latency.Percentile(50) / 1e3;
        ss.put_p99_us = sfg.put_latency.Percentile(99) / 1e3;
        const core::KvaccelStats& ks = kv->kv_stats();
        ss.redirected_writes = ks.redirected_writes;
        ss.redirect_admission_rejects = ks.redirect_admission_rejects;
        ss.rollbacks = ks.rollbacks;
        sim::IntervalRecorder sr = kv->main()->stats().stall_regions;
        sr.CloseAt(t1);
        for (const auto& iv : sr.intervals()) {
          if (iv.end <= t0 || iv.start >= t1) continue;
          ss.stalled_seconds +=
              ToSecs(std::min(iv.end, t1) - std::max(iv.start, t0));
        }
        if (shd->arbiter() != nullptr) {
          const sim::FairShareArbiter::ClientStats& cs =
              shd->arbiter()->client_stats(i);
          ss.arbiter_grants = cs.grants;
          ss.arbiter_granted_bytes = cs.granted_bytes;
          ss.arbiter_throttles = cs.throttles;
          ss.arbiter_throttle_seconds =
              static_cast<double>(cs.throttle_ns) / kNanosPerSec;
        }
        if (i == 0 || ss.writes < min_writes) min_writes = ss.writes;
        if (i == 0 || ss.writes > max_writes) max_writes = ss.writes;
        result.shards.push_back(ss);
      }
      if (min_writes > 0) {
        result.shard_fairness_ratio = static_cast<double>(max_writes) /
                                      static_cast<double>(min_writes);
      }
    }

    // Per-tenant breakdown (multi-tenant runs; the mixed matrix always
    // reports its tenants, even with one).
    const bool mixed = wl.type == WorkloadConfig::Type::kMixed;
    if (mixed || wl.tenants > 1) {
      for (int t = 0; t < std::max(1, wl.tenants); t++) {
        const TenantState& st = sh.tenants[static_cast<size_t>(t)];
        TenantSummary ts;
        ts.tenant = t;
        ts.ops = st.ops;
        ts.put_p50_us = st.service.Percentile(50) / 1e3;
        ts.put_p99_us = st.service.Percentile(99) / 1e3;
        ts.put_p999_us = st.service.Percentile(99.9) / 1e3;
        ts.puts = st.puts;
        ts.gets = st.gets;
        ts.deletes = st.deletes;
        ts.scans = st.scans;
        ts.ttl_deletes = st.ttl_deletes;
        ts.scheduled_ops = st.scheduled;
        ts.deadline_misses = st.deadline_misses;
        ts.abandoned_ops = st.abandoned;
        ts.arrival_p50_us = st.arrival.Percentile(50) / 1e3;
        ts.arrival_p99_us = st.arrival.Percentile(99) / 1e3;
        ts.arrival_p999_us = st.arrival.Percentile(99.9) / 1e3;
        result.tenants.push_back(ts);
      }
    }
    // Mixed matrix rollup (the report's open_loop block).
    if (mixed) {
      result.mixed_run = 1;
      result.arrival_mode = static_cast<int>(wl.arrival);
      Histogram all_service, all_arrival;
      for (const TenantState& st : sh.tenants) {
        all_service.Merge(st.service);
        all_arrival.Merge(st.arrival);
        result.scheduled_ops += st.scheduled;
        result.completed_ops += st.ops;
        result.abandoned_ops += st.abandoned;
        result.deadline_misses += st.deadline_misses;
        result.ttl_deletes += st.ttl_deletes;
        result.mixed_puts += st.puts;
        result.mixed_gets += st.gets;
        result.mixed_deletes += st.deletes;
        result.mixed_scans += st.scans;
      }
      result.service_p50_us = all_service.Percentile(50) / 1e3;
      result.service_p99_us = all_service.Percentile(99) / 1e3;
      result.service_p999_us = all_service.Percentile(99.9) / 1e3;
      result.arrival_p50_us = all_arrival.Percentile(50) / 1e3;
      result.arrival_p99_us = all_arrival.Percentile(99) / 1e3;
      result.arrival_p999_us = all_arrival.Percentile(99.9) / 1e3;
    }

    lsm::BlockCacheStats cache = sut->cache_stats();
    result.cache_hits = cache.hits;
    result.cache_misses = cache.misses;
    result.cache_hit_rate = cache.hit_rate();
    // Snapshot while the world is still open — the registry sources read
    // live component state.
    result.metrics = registry.Snapshot();
    sut->Close();

    // HA pair: harvest the replication counters (authoritative after Close —
    // async mode records its lost tail there), then measure an actual
    // failover: the primary node is "lost", both file systems drop unsynced
    // pages, and the backup is checked, repaired and promoted.
    if (sut->pair() != nullptr) {
      const core::ReplStats rs = sut->pair()->repl_stats();
      result.ha_repl_ack = sut_cfg.repl_ack_async ? 1 : 0;
      result.ha_wal_records = rs.wal_records;
      result.ha_intent_records = rs.intent_records;
      result.ha_repl_mb = static_cast<double>(rs.repl_bytes) / 1e6;
      result.ha_net_retries = rs.net_retries;
      result.ha_ship_failures = rs.ship_failures;
      result.ha_lost_entries = rs.lost_entries;
      result.ha_backup_dev_fallbacks = rs.backup_dev_fallbacks;
      result.ha_async_queue_peak = rs.async_queue_peak;
      result.ha_sync_ship_ms = static_cast<double>(rs.sync_ship_ns) / 1e6;
      result.ha_heartbeats = rs.heartbeat_records;
      result.ha_fenced_rejects = rs.fenced_write_rejects;
      result.ha_lease_expirations = rs.lease_expirations;
      result.ha_net_partition = partition_run ? 1 : 0;
      // Divergence frontier and epoch for the partition drill below, read
      // before the node images change hands.
      const uint64_t frontier = sut->pair()->applied_seq();
      const uint64_t next_epoch = sut->pair()->epoch() + 1;

      // Crash failover drops both nodes' unsynced pages (the measurement is
      // "promote after losing the primary"). A partition drill crashes
      // nobody — both nodes survive the split with their caches intact, so
      // the rejoin below measures the true divergence delta, not a
      // full bootstrap.
      if (!partition_run) {
        if (fs != nullptr) fs->DropAllDirty();
        fs_b->DropAllDirty();
      }
      check::FailoverReport frep;
      std::unique_ptr<core::KvaccelDB> promoted;
      // A partition drill promotes under a bumped durable epoch so the
      // deposed primary is fenced out; the plain failover measurement keeps
      // its historical timing (no FENCE write).
      Status fo = check::PromoteNode(SystemUnderTest::BuildDbOptions(sut_cfg),
                                     SystemUnderTest::BuildKvOptions(sut_cfg),
                                     sut_cfg.ha_backup, &env, &frep, &promoted,
                                     partition_run ? next_epoch : 0);
      result.ha_failover_ms = static_cast<double>(frep.promote_ns) / 1e6;
      result.ha_failover_drained = frep.drained_entries;
      result.ha_failover_checker_errors = frep.checker_errors;
      result.ha_failover_checker_warnings = frep.checker_warnings;
      result.ha_fence_epoch = frep.fence_epoch;
      if (!fo.ok()) {
        fprintf(stderr, "ha failover: %s\n", fo.ToString().c_str());
        if (result.ha_failover_checker_errors == 0) {
          result.ha_failover_checker_errors = 1;
        }
      } else {
        // Partition drill, second half: reconcile the deposed primary
        // against the promoted node and report the resync economics.
        if (partition_run) {
          check::RejoinOptions rj;
          rj.mode = sut_cfg.resync_mode != 0 ? check::ResyncMode::kDelta
                                             : check::ResyncMode::kWalReplay;
          rj.frontier = frontier;
          rj.new_epoch = next_epoch;
          check::RejoinReport rrep;
          Status rj_s = check::RejoinNode(
              SystemUnderTest::BuildDbOptions(sut_cfg),
              SystemUnderTest::BuildKvOptions(sut_cfg), sut_cfg.ha_primary,
              promoted.get(), rj, &env, &rrep);
          result.ha_resync_mode = sut_cfg.resync_mode != 0 ? 1 : 0;
          result.ha_rejoin_ms = static_cast<double>(rrep.rejoin_ns) / 1e6;
          result.ha_resync_entries = rrep.resync_entries;
          result.ha_resync_bytes = rrep.resync_bytes;
          result.ha_write_path_bytes = rrep.write_path_bytes;
          result.ha_wal_replay_bytes = rrep.wal_replay_bytes;
          result.ha_quarantined_keys = rrep.quarantined_keys;
          result.ha_scrub_deferred = rrep.scrub_deferred;
          result.ha_rejoin_checker_errors = rrep.checker_errors;
          if (!rj_s.ok()) {
            fprintf(stderr, "ha rejoin: %s\n", rj_s.ToString().c_str());
            if (result.ha_rejoin_checker_errors == 0) {
              result.ha_rejoin_checker_errors = 1;
            }
          }
        }
        (void)promoted->Close();
      }
    }
    // Sharded: the per-shard file systems die with the SUT, so the offline
    // image (one subdirectory per shard) must be exported before it goes.
    if (sut->sharded() != nullptr && !config.db_dump_dir.empty()) {
      core::ShardedKvaccelDB* shd = sut->sharded();
      for (int i = 0; i < shd->num_shards(); i++) {
        Status ds = shd->shard_fs(i)->DumpToHostDir(
            config.db_dump_dir + "/shard" + std::to_string(i));
        if (!ds.ok()) {
          fprintf(stderr, "db dump: %s\n", ds.ToString().c_str());
        }
      }
    }
  });

  env.Run();
  if (tracer != nullptr) {
    std::string trace_error;
    if (!tracer->WriteChromeTrace(config.trace_out, &trace_error)) {
      fprintf(stderr, "trace: %s\n", trace_error.c_str());
    }
  }
  // Export the final on-"disk" image (everything is synced after Close) so
  // kvaccel_check can verify the run's end state offline. Sharded runs
  // exported per shard inside the simulation (no world-level fs exists).
  if (!config.db_dump_dir.empty() && fs != nullptr) {
    Status ds = fs->DumpToHostDir(config.db_dump_dir);
    if (!ds.ok()) {
      fprintf(stderr, "db dump: %s\n", ds.ToString().c_str());
    }
  }
  return result;
}

}  // namespace kvaccel::harness
