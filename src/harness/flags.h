// Minimal --key=value flag parsing shared by the bench binaries.
//   --seconds=N   virtual workload duration (default: per-bench)
//   --scale=F     size scale; 1.0 = paper scale (default 0.125)
//   --paper       shorthand for --scale=1.0 --seconds=600
//   --threads=N   restrict to one compaction-thread count (default: sweep)
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

namespace kvaccel::harness {

struct BenchFlags {
  double scale = 0.125;
  double seconds = 60;
  int threads = 0;  // 0 = bench default / sweep

  static BenchFlags Parse(int argc, char** argv, double default_seconds) {
    BenchFlags f;
    f.seconds = default_seconds;
    for (int i = 1; i < argc; i++) {
      const char* arg = argv[i];
      if (strncmp(arg, "--scale=", 8) == 0) {
        f.scale = atof(arg + 8);
      } else if (strncmp(arg, "--seconds=", 10) == 0) {
        f.seconds = atof(arg + 10);
      } else if (strncmp(arg, "--threads=", 10) == 0) {
        f.threads = atoi(arg + 10);
      } else if (strcmp(arg, "--paper") == 0) {
        f.scale = 1.0;
        f.seconds = 600;
      }
    }
    return f;
  }
};

}  // namespace kvaccel::harness
