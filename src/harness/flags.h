// Minimal --key=value flag parsing shared by the bench binaries.
//   --seconds=N        virtual workload duration (default: per-bench)
//   --scale=F          size scale; 1.0 = paper scale (default 0.125)
//   --paper            shorthand for --scale=1.0 --seconds=600
//   --threads=N        restrict to one compaction-thread count (default: sweep)
//   --writer_threads=N concurrent writer actors (default 1)
//   --batch_size=N     entries per WriteBatch a writer submits (default 1)
//   --fault_profile=P  arm a canned fault profile for the run (default none):
//                        flaky-nvme   rare transient block/KV command errors
//                        bitrot       ~1-in-10k file reads flip one bit
//                        power-cut    dropped dirty cache loses a torn tail
//                        devlsm-dead  every Dev-LSM command fails (fallback)
//                      (catalogue lives in harness/fault_profiles.h)
//   --fault_seed=N     fault injector RNG seed (default 1); the same
//                      profile+seed reproduces the same fault sequence
//   --trace_out=FILE   write a Chrome trace-event JSON of the run (load in
//                      Perfetto / chrome://tracing); empty = tracing off
//   --json_out=FILE    write the machine-readable kvaccel-run-v1 report
//   --nemesis_seed=N   nemesis schedule seed echoed into the report config
//                      block (0 = no nemesis accompanied this run)
//   --trace_dump_dir=D directory nemesis divergence traces are dumped to;
//                      echoed into the report config block
//   --max_subcompactions=N  cap on range-partitioned subcompactions per job
//                      (0 = DbOptions default; 1 disables splitting)
//   --compaction_rate_limit=F  deep-compaction I/O cap as a fraction of
//                      device NAND bandwidth, in (0, 1]; 0 = unlimited
//   --nand_mbps=F      override the simulated device NAND bandwidth in MB/s
//                      (ablation hook; 0 = preset 630 MB/s)
//   --shards=N         KVACCEL only: shard-per-core engine with N shards,
//                      one SSD namespace/WAL/memtable/Detector each
//                      (default 1 = the plain single-shard facade)
//   --tenants=N        carve the key space into N per-tenant slices with at
//                      least one writer each; per-tenant p50/p99 reported
//   --shard_partition=hash|range  key-to-shard mapping (default hash)
//   --redirect_policy=global|per_shard  how shards compete for the Dev-LSM
//                      redirect capacity budget (default global)
//   --arbiter_share=F  fair-share device-bandwidth arbiter serving rate as a
//                      fraction of NAND bandwidth in [0, 1]; 0 disables
//                      (default 1.0)
//   --ndp=MODE         KVACCEL only: device-offloaded compaction placement —
//                        off    every compaction runs host-side (default)
//                        auto   OffloadPlanner picks host vs device per job
//                        force  every picked job is granted to the device
//   --ndp_cores=N      dedicated NDP cores on the device (0 = share the
//                      single Dev-LSM firmware core; default 2)
//   --workload_mix=SPEC  mixed-matrix op streams (DESIGN.md §14):
//                      ';'-separated per-tenant segments, each a preset
//                      (write-heavy, balanced, churn, analytics) or k=v
//                      fields (put=,get=,del=,scan=,scanlen=,dist=,theta=,
//                      hot_frac=,hot_ops=)
//   --arrival=MODE     closed | poisson | diurnal | spike — open-loop modes
//                      schedule arrivals in virtual time and also measure
//                      latency from the scheduled tick (no coordinated
//                      omission)
//   --arrival_rate=F   total scheduled ops/s across tenants (default 20000)
//   --zipf_theta=F     Zipfian key popularity with this theta in (0, 1)
//   --hotspot=FRAC:OPFRAC  hotspot key popularity — the first FRAC of each
//                      tenant slice receives OPFRAC of the draws
//   --ttl_frac=F       fraction of mixed-matrix puts tagged with a TTL and
//                      deleted after --ttl_s virtual seconds
//   --deadline_us=F    arrival-deadline for per-tenant deadline-miss
//                      counters (default 1000)
//
// Values are validated: a non-numeric, negative, or trailing-garbage value
// aborts with a clear message instead of silently parsing to 0.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace kvaccel::harness {

// strtod with full validation; exits(2) with a clear diagnostic on a value
// that is not a finite non-negative number (min_value tightens the bound).
inline double ParseFlagDouble(const char* text, const char* flag,
                              double min_value = 0.0) {
  char* end = nullptr;
  errno = 0;
  double v = strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) {
    fprintf(stderr, "invalid value for %s: '%s' (expected a number)\n", flag,
            text);
    exit(2);
  }
  if (v < min_value) {
    fprintf(stderr, "invalid value for %s: %s (must be >= %g)\n", flag, text,
            min_value);
    exit(2);
  }
  return v;
}

// strtol with full validation; exits(2) on non-numeric, out-of-range, or
// below-minimum values.
inline long ParseFlagInt(const char* text, const char* flag,
                         long min_value = 0) {
  char* end = nullptr;
  errno = 0;
  long v = strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    fprintf(stderr, "invalid value for %s: '%s' (expected an integer)\n",
            flag, text);
    exit(2);
  }
  if (v < min_value) {
    fprintf(stderr, "invalid value for %s: %s (must be >= %ld)\n", flag, text,
            min_value);
    exit(2);
  }
  return v;
}

// strtoull with full validation (rejects a leading '-', which strtoull would
// silently wrap); exits(2) on bad input.
inline unsigned long long ParseFlagUint64(const char* text, const char* flag) {
  const char* p = text;
  while (*p == ' ') p++;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || *p == '-') {
    fprintf(stderr,
            "invalid value for %s: '%s' (expected a non-negative integer)\n",
            flag, text);
    exit(2);
  }
  return v;
}

struct BenchFlags {
  double scale = 0.125;
  double seconds = 60;
  int threads = 0;  // 0 = bench default / sweep
  int writer_threads = 1;
  int batch_size = 1;
  std::string fault_profile;  // empty = no fault injection
  unsigned long long fault_seed = 1;
  std::string trace_out;  // empty = tracing disabled
  std::string json_out;   // empty = no JSON report
  unsigned long long nemesis_seed = 0;  // 0 = no nemesis schedule
  std::string trace_dump_dir;           // empty = no divergence dumps
  int max_subcompactions = 0;     // 0 = DbOptions default; 1 = disabled
  double compaction_rate_limit = 0;  // fraction of NAND bandwidth; 0 = off
  double nand_mbps = 0;           // 0 = device preset
  int shards = 1;                 // sharded KVACCEL engine; 1 = plain facade
  int tenants = 1;                // key-space slices with dedicated writers
  std::string shard_partition = "hash";    // hash | range
  std::string redirect_policy = "global";  // global | per_shard
  double arbiter_share = 1.0;     // fraction of NAND bandwidth; 0 = off
  std::string ndp = "off";        // off | auto | force
  int ndp_cores = 2;              // 0 = share the firmware core
  // Mixed workload matrix (DESIGN.md §14).
  std::string workload_mix;       // empty = default pure-put profile
  std::string arrival = "closed"; // closed | poisson | diurnal | spike
  double arrival_rate = 20000;    // scheduled ops/s across tenants
  double zipf_theta = 0;          // 0 = uniform; else Zipfian theta in (0,1)
  std::string hotspot;            // "FRAC:OPFRAC"; empty = off
  double ttl_frac = 0;            // fraction of puts tagged with a TTL
  double ttl_s = 2;               // TTL in virtual seconds
  double deadline_us = 1000;      // arrival-deadline for miss counters

  static BenchFlags Parse(int argc, char** argv, double default_seconds) {
    BenchFlags f;
    f.seconds = default_seconds;
    for (int i = 1; i < argc; i++) {
      const char* arg = argv[i];
      if (strncmp(arg, "--scale=", 8) == 0) {
        f.scale = ParseFlagDouble(arg + 8, "--scale");
      } else if (strncmp(arg, "--seconds=", 10) == 0) {
        f.seconds = ParseFlagDouble(arg + 10, "--seconds");
      } else if (strncmp(arg, "--threads=", 10) == 0) {
        f.threads = static_cast<int>(ParseFlagInt(arg + 10, "--threads"));
      } else if (strncmp(arg, "--writer_threads=", 17) == 0) {
        f.writer_threads = static_cast<int>(
            ParseFlagInt(arg + 17, "--writer_threads", /*min_value=*/1));
      } else if (strncmp(arg, "--batch_size=", 13) == 0) {
        f.batch_size = static_cast<int>(
            ParseFlagInt(arg + 13, "--batch_size", /*min_value=*/1));
      } else if (strncmp(arg, "--fault_profile=", 16) == 0) {
        f.fault_profile = arg + 16;
      } else if (strncmp(arg, "--fault_seed=", 13) == 0) {
        f.fault_seed = ParseFlagUint64(arg + 13, "--fault_seed");
      } else if (strncmp(arg, "--trace_out=", 12) == 0) {
        f.trace_out = arg + 12;
      } else if (strncmp(arg, "--json_out=", 11) == 0) {
        f.json_out = arg + 11;
      } else if (strncmp(arg, "--nemesis_seed=", 15) == 0) {
        f.nemesis_seed = ParseFlagUint64(arg + 15, "--nemesis_seed");
      } else if (strncmp(arg, "--trace_dump_dir=", 17) == 0) {
        f.trace_dump_dir = arg + 17;
      } else if (strncmp(arg, "--max_subcompactions=", 21) == 0) {
        f.max_subcompactions = static_cast<int>(
            ParseFlagInt(arg + 21, "--max_subcompactions"));
      } else if (strncmp(arg, "--compaction_rate_limit=", 24) == 0) {
        f.compaction_rate_limit =
            ParseFlagDouble(arg + 24, "--compaction_rate_limit");
        if (f.compaction_rate_limit > 1.0) {
          fprintf(stderr,
                  "invalid value for --compaction_rate_limit: %s "
                  "(must be a fraction in [0, 1])\n",
                  arg + 24);
          exit(2);
        }
      } else if (strncmp(arg, "--nand_mbps=", 12) == 0) {
        f.nand_mbps = ParseFlagDouble(arg + 12, "--nand_mbps");
      } else if (strncmp(arg, "--shards=", 9) == 0) {
        f.shards =
            static_cast<int>(ParseFlagInt(arg + 9, "--shards", /*min_value=*/1));
      } else if (strncmp(arg, "--tenants=", 10) == 0) {
        f.tenants = static_cast<int>(
            ParseFlagInt(arg + 10, "--tenants", /*min_value=*/1));
      } else if (strncmp(arg, "--shard_partition=", 18) == 0) {
        f.shard_partition = arg + 18;
        if (f.shard_partition != "hash" && f.shard_partition != "range") {
          fprintf(stderr,
                  "invalid value for --shard_partition: '%s' "
                  "(expected hash or range)\n",
                  arg + 18);
          exit(2);
        }
      } else if (strncmp(arg, "--redirect_policy=", 18) == 0) {
        f.redirect_policy = arg + 18;
        if (f.redirect_policy != "global" && f.redirect_policy != "per_shard") {
          fprintf(stderr,
                  "invalid value for --redirect_policy: '%s' "
                  "(expected global or per_shard)\n",
                  arg + 18);
          exit(2);
        }
      } else if (strncmp(arg, "--arbiter_share=", 16) == 0) {
        f.arbiter_share = ParseFlagDouble(arg + 16, "--arbiter_share");
        if (f.arbiter_share > 1.0) {
          fprintf(stderr,
                  "invalid value for --arbiter_share: %s "
                  "(must be a fraction in [0, 1])\n",
                  arg + 16);
          exit(2);
        }
      } else if (strncmp(arg, "--ndp=", 6) == 0) {
        f.ndp = arg + 6;
        if (f.ndp != "off" && f.ndp != "auto" && f.ndp != "force") {
          fprintf(stderr,
                  "invalid value for --ndp: '%s' "
                  "(expected off, auto or force)\n",
                  arg + 6);
          exit(2);
        }
      } else if (strncmp(arg, "--ndp_cores=", 12) == 0) {
        f.ndp_cores =
            static_cast<int>(ParseFlagInt(arg + 12, "--ndp_cores"));
      } else if (strncmp(arg, "--workload_mix=", 15) == 0) {
        f.workload_mix = arg + 15;
      } else if (strncmp(arg, "--arrival=", 10) == 0) {
        f.arrival = arg + 10;
        if (f.arrival != "closed" && f.arrival != "poisson" &&
            f.arrival != "diurnal" && f.arrival != "spike") {
          fprintf(stderr,
                  "invalid value for --arrival: '%s' "
                  "(expected closed, poisson, diurnal or spike)\n",
                  arg + 10);
          exit(2);
        }
      } else if (strncmp(arg, "--arrival_rate=", 15) == 0) {
        f.arrival_rate =
            ParseFlagDouble(arg + 15, "--arrival_rate", /*min_value=*/1);
      } else if (strncmp(arg, "--zipf_theta=", 13) == 0) {
        f.zipf_theta = ParseFlagDouble(arg + 13, "--zipf_theta");
        if (f.zipf_theta <= 0 || f.zipf_theta >= 1) {
          fprintf(stderr,
                  "invalid value for --zipf_theta: %s "
                  "(must be in (0, 1))\n",
                  arg + 13);
          exit(2);
        }
      } else if (strncmp(arg, "--hotspot=", 10) == 0) {
        f.hotspot = arg + 10;
      } else if (strncmp(arg, "--ttl_frac=", 11) == 0) {
        f.ttl_frac = ParseFlagDouble(arg + 11, "--ttl_frac");
        if (f.ttl_frac > 1.0) {
          fprintf(stderr,
                  "invalid value for --ttl_frac: %s "
                  "(must be a fraction in [0, 1])\n",
                  arg + 11);
          exit(2);
        }
      } else if (strncmp(arg, "--ttl_s=", 8) == 0) {
        f.ttl_s = ParseFlagDouble(arg + 8, "--ttl_s");
      } else if (strncmp(arg, "--deadline_us=", 14) == 0) {
        f.deadline_us = ParseFlagDouble(arg + 14, "--deadline_us");
      } else if (strcmp(arg, "--paper") == 0) {
        f.scale = 1.0;
        f.seconds = 600;
      }
    }
    return f;
  }
};

}  // namespace kvaccel::harness
