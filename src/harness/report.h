// Console reporting helpers shared by the bench binaries: aligned tables,
// ASCII time-series plots, CDFs and shape checks (every bench prints the
// paper's rows/series plus PASS/FAIL against the expected *shape*).
#pragma once

#include <string>
#include <vector>

#include "harness/workload.h"

namespace kvaccel::harness {

// "== Figure 11: ... ==" style banner.
void PrintBanner(const std::string& title);

// Compact ASCII chart of a per-second series (one row of braille-ish bars),
// followed by a CSV line for exact values.
void PrintSeries(const std::string& label, const std::vector<double>& values,
                 const std::string& unit);

// Prints stall regions as [start, end) second pairs.
void PrintStallRegions(const RunResult& r);

// Standard per-run summary row.
void PrintResultRow(const RunResult& r);
void PrintResultHeader();

// Empirical CDF printout: P(value <= x) at the given probe points.
void PrintCdf(const std::string& label, std::vector<double> samples,
              const std::vector<double>& probes);

// Shape assertion: prints "SHAPE PASS"/"SHAPE FAIL" and tracks a global
// failure flag returned by ShapeFailures().
bool CheckShape(bool ok, const std::string& description);
int ShapeFailures();

// Every CheckShape verdict recorded so far, in call order — the JSON report
// embeds these so a run's PASS/FAIL is machine-readable.
struct ShapeCheck {
  std::string description;
  bool ok = false;
};
const std::vector<ShapeCheck>& ShapeResults();

}  // namespace kvaccel::harness
