#include "harness/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace kvaccel::harness {

namespace {
int g_shape_failures = 0;
std::vector<ShapeCheck> g_shape_checks;
}

void PrintBanner(const std::string& title) {
  printf("\n================================================================\n");
  printf("%s\n", title.c_str());
  printf("================================================================\n");
}

void PrintSeries(const std::string& label, const std::vector<double>& values,
                 const std::string& unit) {
  if (values.empty()) {
    printf("%-24s (empty)\n", label.c_str());
    return;
  }
  double max = *std::max_element(values.begin(), values.end());
  static const char* kBars[] = {" ", ".", ":", "-", "=", "+", "*", "#", "@"};
  std::string chart;
  for (double v : values) {
    int level = max <= 0 ? 0
                         : static_cast<int>(std::round(v / max * 8.0));
    level = std::clamp(level, 0, 8);
    chart += kBars[level];
  }
  printf("%-24s max=%9.1f %s |%s|\n", label.c_str(), max, unit.c_str(),
         chart.c_str());
  printf("  csv,%s", label.c_str());
  for (double v : values) printf(",%.1f", v);
  printf("\n");
}

void PrintStallRegions(const RunResult& r) {
  printf("  stall regions (s):");
  if (r.stall_regions_sec.empty()) printf(" none");
  for (const auto& [a, b] : r.stall_regions_sec) {
    printf(" [%.1f,%.1f)", a, b);
  }
  printf("  total=%.1fs events=%llu\n", r.stalled_seconds,
         static_cast<unsigned long long>(r.stall_events));
}

void PrintResultHeader() {
  printf("%-14s %9s %9s %9s %9s %9s %7s %7s %10s %10s\n", "system",
         "write", "read", "p99(us)", "p99.9", "MB/s", "cpu%", "eff",
         "slowdowns", "stalls");
  printf("%-14s %9s %9s %9s %9s %9s %7s %7s %10s %10s\n", "", "Kops/s",
         "Kops/s", "", "(us)", "", "", "", "", "");
}

void PrintResultRow(const RunResult& r) {
  printf("%-14s %9.1f %9.1f %9.1f %9.1f %9.1f %7.1f %7.2f %10llu %10llu\n",
         r.name.c_str(), r.write_kops, r.read_kops, r.put_p99_us,
         r.put_p999_us, r.write_mbps, r.cpu_pct, r.efficiency,
         static_cast<unsigned long long>(r.slowdown_events),
         static_cast<unsigned long long>(r.stall_events));
}

void PrintCdf(const std::string& label, std::vector<double> samples,
              const std::vector<double>& probes) {
  std::sort(samples.begin(), samples.end());
  printf("%s (n=%zu):\n", label.c_str(), samples.size());
  for (double p : probes) {
    size_t below = static_cast<size_t>(
        std::upper_bound(samples.begin(), samples.end(), p) -
        samples.begin());
    double frac =
        samples.empty() ? 0.0
                        : static_cast<double>(below) /
                              static_cast<double>(samples.size());
    printf("  P(util <= %4.0f%%) = %5.1f%%\n", p * 100.0, frac * 100.0);
  }
}

bool CheckShape(bool ok, const std::string& description) {
  printf("  [%s] %s\n", ok ? "SHAPE PASS" : "SHAPE FAIL", description.c_str());
  if (!ok) g_shape_failures++;
  g_shape_checks.push_back({description, ok});
  return ok;
}

int ShapeFailures() { return g_shape_failures; }

const std::vector<ShapeCheck>& ShapeResults() { return g_shape_checks; }

}  // namespace kvaccel::harness
