// SystemUnderTest: a uniform facade over the three LSM-KVS the paper
// compares — stock RocksDB-equivalent, ADOC (RocksDB + tuner), and KVACCEL —
// so one workload driver exercises them all.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "adoc/adoc_tuner.h"
#include "core/kvaccel_db.h"
#include "harness/presets.h"
#include "lsm/db.h"

namespace kvaccel::harness {

enum class SystemKind { kRocksDB, kAdoc, kKvaccel };

inline const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kRocksDB: return "RocksDB";
    case SystemKind::kAdoc: return "ADOC";
    case SystemKind::kKvaccel: return "KVAccel";
  }
  return "?";
}

struct SutConfig {
  SystemKind kind = SystemKind::kRocksDB;
  int compaction_threads = 1;
  bool enable_slowdown = true;  // RocksDB/ADOC variants (Figs 2-3)
  core::RollbackScheme rollback = core::RollbackScheme::kLazy;
  double scale = 1.0;
  // Subcompaction width cap (DESIGN.md §10); 0 keeps the DbOptions default.
  // 1 disables range-partitioned subcompactions entirely.
  int max_subcompactions = 0;
  // Deep-compaction I/O cap as a fraction of device NAND bandwidth; 0 = off.
  double compaction_rate_limit = 0;
  // Ablation hook: adjust the DbOptions after the preset is built.
  std::function<void(lsm::DbOptions&)> db_tweak;
};

class SystemUnderTest {
 public:
  static Status Open(const SutConfig& config, const lsm::DbEnv& env,
                     std::unique_ptr<SystemUnderTest>* sut) {
    auto s = std::unique_ptr<SystemUnderTest>(new SystemUnderTest());
    s->config_ = config;
    lsm::DbOptions db_opts = PaperDbOptions(
        config.compaction_threads, config.enable_slowdown, config.scale);
    if (config.max_subcompactions > 0) {
      db_opts.max_subcompactions = config.max_subcompactions;
    }
    if (config.compaction_rate_limit > 0) {
      db_opts.compaction_rate_limit = config.compaction_rate_limit;
    }
    if (config.db_tweak) config.db_tweak(db_opts);
    Status st;
    switch (config.kind) {
      case SystemKind::kRocksDB:
        st = lsm::DB::Open(db_opts, env, &s->db_);
        break;
      case SystemKind::kAdoc: {
        // ADOC(n): starts at 1 thread, may scale up to n (Table III budget).
        lsm::DbOptions adoc_opts = db_opts;
        adoc_opts.compaction_threads = 1;
        st = lsm::DB::Open(adoc_opts, env, &s->db_);
        if (st.ok()) {
          s->tuner_ = std::make_unique<adoc::AdocTuner>(
              s->db_.get(), env.env, adoc_opts,
              PaperAdocOptions(config.compaction_threads, config.scale));
          s->tuner_->Start();
        }
        break;
      }
      case SystemKind::kKvaccel: {
        core::KvaccelOptions kv_opts =
            PaperKvaccelOptions(config.rollback, config.scale);
        // Paper §VI-C: for the write-only workload, rollback and Dev-LSM
        // compaction are both disabled (lazy rollback after the workload).
        if (config.rollback == core::RollbackScheme::kDisabled) {
          kv_opts.dev.compaction_enabled = false;
        }
        st = core::KvaccelDB::Open(db_opts, kv_opts, env, &s->kvaccel_);
        break;
      }
    }
    if (!st.ok()) return st;
    *sut = std::move(s);
    return Status::OK();
  }

  Status Put(const Slice& key, const Value& value) {
    return kvaccel_ ? kvaccel_->Put({}, key, value)
                    : db_->Put({}, key, value);
  }
  // Batched write: the whole batch takes one trip down the write pipeline
  // (one Controller decision for KVACCEL, one group-commit slot otherwise).
  Status Write(lsm::WriteBatch* batch) {
    return kvaccel_ ? kvaccel_->Write({}, batch) : db_->Write({}, batch);
  }
  Status Delete(const Slice& key) {
    return kvaccel_ ? kvaccel_->Delete({}, key) : db_->Delete({}, key);
  }
  Status Get(const Slice& key, Value* value) {
    return kvaccel_ ? kvaccel_->Get({}, key, value)
                    : db_->Get({}, key, value);
  }
  std::unique_ptr<lsm::Iterator> NewIterator(
      const lsm::ReadOptions& ropts = {}) {
    return kvaccel_ ? kvaccel_->NewIterator(ropts) : db_->NewIterator(ropts);
  }

  Status FlushAll() {
    return kvaccel_ ? kvaccel_->FlushAll() : db_->FlushAll();
  }
  Status WaitForCompactionIdle() {
    return kvaccel_ ? kvaccel_->WaitForCompactionIdle()
                    : db_->WaitForCompactionIdle();
  }
  Status Close() {
    if (tuner_ != nullptr) tuner_->Stop();
    return kvaccel_ ? kvaccel_->Close() : db_->Close();
  }

  // Foreground-op stats (unified view for KVACCEL; DB stats otherwise).
  const lsm::DbStats& stats() const {
    return kvaccel_ ? kvaccel_->stats() : db_->stats();
  }
  // The Main-LSM's internal stats (stall/slowdown regions, background work).
  const lsm::DbStats& main_stats() const {
    return kvaccel_ ? kvaccel_->main()->stats() : db_->stats();
  }

  SystemKind kind() const { return config_.kind; }
  std::string name() const {
    return std::string(SystemName(config_.kind)) + "(" +
           std::to_string(config_.compaction_threads) + ")";
  }
  lsm::DB* db() { return kvaccel_ ? kvaccel_->main() : db_.get(); }
  core::KvaccelDB* kvaccel() { return kvaccel_.get(); }
  adoc::AdocTuner* tuner() { return tuner_.get(); }

 private:
  SystemUnderTest() = default;

  SutConfig config_;
  std::unique_ptr<lsm::DB> db_;
  std::unique_ptr<core::KvaccelDB> kvaccel_;
  std::unique_ptr<adoc::AdocTuner> tuner_;
};

}  // namespace kvaccel::harness
