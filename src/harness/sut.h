// SystemUnderTest: a uniform facade over the three LSM-KVS the paper
// compares — stock RocksDB-equivalent, ADOC (RocksDB + tuner), and KVACCEL —
// so one workload driver exercises them all.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "adoc/adoc_tuner.h"
#include "core/kvaccel_db.h"
#include "core/replicated_kvaccel_db.h"
#include "core/sharded_kvaccel_db.h"
#include "harness/presets.h"
#include "lsm/db.h"

namespace kvaccel::harness {

enum class SystemKind { kRocksDB, kAdoc, kKvaccel };

inline const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kRocksDB: return "RocksDB";
    case SystemKind::kAdoc: return "ADOC";
    case SystemKind::kKvaccel: return "KVAccel";
  }
  return "?";
}

struct SutConfig {
  SystemKind kind = SystemKind::kRocksDB;
  int compaction_threads = 1;
  bool enable_slowdown = true;  // RocksDB/ADOC variants (Figs 2-3)
  core::RollbackScheme rollback = core::RollbackScheme::kLazy;
  double scale = 1.0;
  // Subcompaction width cap (DESIGN.md §10); 0 keeps the DbOptions default.
  // 1 disables range-partitioned subcompactions entirely.
  int max_subcompactions = 0;
  // Deep-compaction I/O cap as a fraction of device NAND bandwidth; 0 = off.
  double compaction_rate_limit = 0;
  // Sharded engine (KVACCEL only, DESIGN.md §11): > 1 opens a
  // ShardedKvaccelDB with one namespace/WAL/memtable/Detector per shard.
  int shards = 1;
  core::ShardPartition shard_partition = core::ShardPartition::kHash;
  core::RedirectBudgetPolicy redirect_policy =
      core::RedirectBudgetPolicy::kGlobal;
  // Fair-share arbiter serving rate as a fraction of NAND bandwidth; 0 = off.
  double arbiter_share = 1.0;
  // Device-offloaded compaction (KVACCEL only, DESIGN.md §13). The runner
  // creates one world-owned NdpDevice per SSD when mode != kOff; HA pairs
  // carry per-node devices in ha_primary.ndp / ha_backup.ndp instead.
  ndp::OffloadMode ndp_mode = ndp::OffloadMode::kOff;
  int ndp_cores = 2;  // 0 = share the device's firmware core
  ndp::NdpDevice* ndp_device = nullptr;
  // Two-node HA pair (KVACCEL only, shards == 1, DESIGN.md §12): the runner
  // builds both node worlds and the SUT opens a ReplicatedKvaccelDB over
  // them. All traffic serves from the primary.
  bool ha = false;
  bool repl_ack_async = false;  // false = sync acks, true = async
  double net_mbps = 1250;       // interconnect bandwidth (10 GbE-class)
  double net_latency_us = 30;
  // Lease fencing knobs (0 = ReplOptions defaults: 50 ms lease renewed by
  // 10 ms heartbeats). The primary self-fences when the lease lapses; the
  // backup may only be promoted once the lease has verifiably lapsed.
  double lease_ms = 0;
  double heartbeat_ms = 0;
  // Fencing epoch the pair starts at (0 = default 1; Open adopts the max of
  // this and the durable FENCE epochs found on either node).
  uint64_t fence_epoch = 0;
  core::ReplNode ha_primary;
  core::ReplNode ha_backup;
  // Partition window (HA only): net_partition_start_s seconds into the
  // measurement window the interconnect takes a symmetric cut for
  // net_partition_dur_s seconds. The primary self-fences when its lease
  // lapses (writers ride out the Busy window and resume on heal), and the
  // post-run failover becomes a full partition drill: promote under a bumped
  // epoch, then reconcile the deposed node back with check::RejoinNode.
  // 0 duration = no partition.
  double net_partition_start_s = 0;
  double net_partition_dur_s = 0;
  // Reconciliation transport for the post-run rejoin measurement:
  // 1 = delta resync (flushed state via the ingest path, zero write-path
  // bytes), 0 = WAL replay (every entry re-runs the write path).
  int resync_mode = 1;
  // Ablation hook: adjust the DbOptions after the preset is built.
  std::function<void(lsm::DbOptions&)> db_tweak;
};

class SystemUnderTest {
 public:
  // The DbOptions / KvaccelOptions a given SutConfig opens with. Exposed so
  // the runner can rebuild the exact same options for post-run workflows
  // (e.g. promoting the HA backup after the pair is closed).
  static lsm::DbOptions BuildDbOptions(const SutConfig& config) {
    lsm::DbOptions db_opts = PaperDbOptions(
        config.compaction_threads, config.enable_slowdown, config.scale);
    if (config.max_subcompactions > 0) {
      db_opts.max_subcompactions = config.max_subcompactions;
    }
    if (config.compaction_rate_limit > 0) {
      db_opts.compaction_rate_limit = config.compaction_rate_limit;
    }
    if (config.db_tweak) config.db_tweak(db_opts);
    return db_opts;
  }
  static core::KvaccelOptions BuildKvOptions(const SutConfig& config) {
    core::KvaccelOptions kv_opts =
        PaperKvaccelOptions(config.rollback, config.scale);
    // Paper §VI-C: for the write-only workload, rollback and Dev-LSM
    // compaction are both disabled (lazy rollback after the workload).
    if (config.rollback == core::RollbackScheme::kDisabled) {
      kv_opts.dev.compaction_enabled = false;
    }
    kv_opts.ndp_planner.mode = config.ndp_mode;
    kv_opts.ndp_device = config.ndp_device;
    return kv_opts;
  }

  static Status Open(const SutConfig& config, const lsm::DbEnv& env,
                     std::unique_ptr<SystemUnderTest>* sut) {
    auto s = std::unique_ptr<SystemUnderTest>(new SystemUnderTest());
    s->config_ = config;
    lsm::DbOptions db_opts = BuildDbOptions(config);
    Status st;
    switch (config.kind) {
      case SystemKind::kRocksDB:
        st = lsm::DB::Open(db_opts, env, &s->db_);
        break;
      case SystemKind::kAdoc: {
        // ADOC(n): starts at 1 thread, may scale up to n (Table III budget).
        lsm::DbOptions adoc_opts = db_opts;
        adoc_opts.compaction_threads = 1;
        st = lsm::DB::Open(adoc_opts, env, &s->db_);
        if (st.ok()) {
          s->tuner_ = std::make_unique<adoc::AdocTuner>(
              s->db_.get(), env.env, adoc_opts,
              PaperAdocOptions(config.compaction_threads, config.scale));
          s->tuner_->Start();
        }
        break;
      }
      case SystemKind::kKvaccel: {
        core::KvaccelOptions kv_opts = BuildKvOptions(config);
        if (config.ha) {
          if (config.shards > 1) {
            return Status::InvalidArgument("HA pair requires shards == 1");
          }
          core::ReplOptions ro;
          ro.ack = config.repl_ack_async ? core::ReplAck::kAsync
                                         : core::ReplAck::kSync;
          if (config.net_mbps > 0) ro.net_bytes_per_sec = config.net_mbps * 1e6;
          if (config.net_latency_us > 0) {
            ro.net_latency = FromMicros(static_cast<Nanos>(config.net_latency_us));
          }
          if (config.lease_ms > 0) {
            ro.lease_duration = FromMicros(
                static_cast<Nanos>(config.lease_ms * 1000));
          }
          if (config.heartbeat_ms > 0) {
            ro.heartbeat_period = FromMicros(
                static_cast<Nanos>(config.heartbeat_ms * 1000));
          }
          if (config.fence_epoch > 0) ro.epoch = config.fence_epoch;
          st = core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                               config.ha_primary,
                                               config.ha_backup, env.env,
                                               &s->pair_);
          break;
        }
        if (config.shards > 1) {
          core::ShardingOptions sharding;
          sharding.num_shards = config.shards;
          sharding.partition = config.shard_partition;
          sharding.redirect_policy = config.redirect_policy;
          sharding.arbiter_share = config.arbiter_share;
          core::ShardEnv senv{env.env, env.ssd, env.host_cpu};
          st = core::ShardedKvaccelDB::Open(db_opts, kv_opts, sharding, senv,
                                            &s->sharded_);
        } else {
          st = core::KvaccelDB::Open(db_opts, kv_opts, env, &s->kvaccel_);
        }
        break;
      }
    }
    if (!st.ok()) return st;
    *sut = std::move(s);
    return Status::OK();
  }

  Status Put(const Slice& key, const Value& value) {
    if (pair_) return pair_->Put({}, key, value);
    if (sharded_) return sharded_->Put({}, key, value);
    return kvaccel_ ? kvaccel_->Put({}, key, value)
                    : db_->Put({}, key, value);
  }
  // Batched write: the whole batch takes one trip down the write pipeline
  // (one Controller decision for KVACCEL, one group-commit slot otherwise).
  Status Write(lsm::WriteBatch* batch) {
    if (pair_) return pair_->Write({}, batch);
    if (sharded_) return sharded_->Write({}, batch);
    return kvaccel_ ? kvaccel_->Write({}, batch) : db_->Write({}, batch);
  }
  Status Delete(const Slice& key) {
    if (pair_) return pair_->Delete({}, key);
    if (sharded_) return sharded_->Delete({}, key);
    return kvaccel_ ? kvaccel_->Delete({}, key) : db_->Delete({}, key);
  }
  Status Get(const Slice& key, Value* value) {
    if (pair_) return pair_->Get({}, key, value);
    if (sharded_) return sharded_->Get({}, key, value);
    return kvaccel_ ? kvaccel_->Get({}, key, value)
                    : db_->Get({}, key, value);
  }
  std::unique_ptr<lsm::Iterator> NewIterator(
      const lsm::ReadOptions& ropts = {}) {
    if (pair_) return pair_->NewIterator(ropts);
    if (sharded_) return sharded_->NewIterator(ropts);
    return kvaccel_ ? kvaccel_->NewIterator(ropts) : db_->NewIterator(ropts);
  }

  Status FlushAll() {
    if (pair_) return pair_->FlushAll();
    if (sharded_) return sharded_->FlushAll();
    return kvaccel_ ? kvaccel_->FlushAll() : db_->FlushAll();
  }
  Status WaitForCompactionIdle() {
    if (pair_) return pair_->WaitForCompactionIdle();
    if (sharded_) return sharded_->WaitForCompactionIdle();
    return kvaccel_ ? kvaccel_->WaitForCompactionIdle()
                    : db_->WaitForCompactionIdle();
  }
  Status Close() {
    if (tuner_ != nullptr) tuner_->Stop();
    if (pair_) return pair_->Close();
    if (sharded_) return sharded_->Close();
    return kvaccel_ ? kvaccel_->Close() : db_->Close();
  }

  // Foreground-op stats (unified view for KVACCEL; DB stats otherwise).
  // For a sharded SUT this is the cross-shard aggregate, recomputed per call.
  const lsm::DbStats& stats() const {
    if (sharded_) return sharded_->AggregateStats();
    core::KvaccelDB* kv = kv_view();
    return kv ? kv->stats() : db_->stats();
  }
  // The Main-LSM's internal stats (stall/slowdown regions, background work).
  const lsm::DbStats& main_stats() const {
    if (sharded_) return sharded_->AggregateMainStats();
    core::KvaccelDB* kv = kv_view();
    return kv ? kv->main()->stats() : db_->stats();
  }
  bool is_kvaccel() const {
    return kv_view() != nullptr || sharded_ != nullptr;
  }
  // Facade-level KVACCEL counters: single shard's, or the fleet aggregate.
  core::KvaccelStats kvaccel_stats() const {
    if (sharded_) return sharded_->AggregateKvStats();
    core::KvaccelDB* kv = kv_view();
    return kv ? kv->kv_stats() : core::KvaccelStats{};
  }
  lsm::BlockCacheStats cache_stats() {
    if (sharded_) return sharded_->AggregateBlockCacheStats();
    return db()->GetBlockCacheStats();
  }
  devlsm::DevLsmStats devlsm_stats() const {
    if (sharded_) return sharded_->AggregateDevStats();
    core::KvaccelDB* kv = kv_view();
    return kv ? kv->dev()->stats() : devlsm::DevLsmStats{};
  }

  SystemKind kind() const { return config_.kind; }
  std::string name() const {
    std::string n = std::string(SystemName(config_.kind)) + "(" +
                    std::to_string(config_.compaction_threads) + ")";
    if (config_.shards > 1) n += "x" + std::to_string(config_.shards);
    if (pair_) {
      n += pair_->ack() == core::ReplAck::kSync ? "+HA(sync)" : "+HA(async)";
    }
    return n;
  }
  // Representative DB for cache/SST introspection: shard 0 when sharded,
  // the primary's Main-LSM for an HA pair.
  lsm::DB* db() {
    if (sharded_) return sharded_->shard(0)->main();
    core::KvaccelDB* kv = kv_view();
    return kv ? kv->main() : db_.get();
  }
  core::KvaccelDB* kvaccel() { return kv_view(); }
  core::ShardedKvaccelDB* sharded() { return sharded_.get(); }
  core::ReplicatedKvaccelDB* pair() { return pair_.get(); }
  adoc::AdocTuner* tuner() { return tuner_.get(); }

 private:
  SystemUnderTest() = default;

  // The KvaccelDB serving foreground traffic: the standalone instance, or the
  // HA pair's primary.
  core::KvaccelDB* kv_view() const {
    if (pair_) return pair_->primary();
    return kvaccel_.get();
  }

  SutConfig config_;
  std::unique_ptr<lsm::DB> db_;
  std::unique_ptr<core::KvaccelDB> kvaccel_;
  std::unique_ptr<core::ShardedKvaccelDB> sharded_;
  std::unique_ptr<core::ReplicatedKvaccelDB> pair_;
  std::unique_ptr<adoc::AdocTuner> tuner_;
};

}  // namespace kvaccel::harness
