// Machine-readable run reports (--json_out): one JSON document per bench
// invocation carrying the config echo, every run's summary + per-second
// series + metrics snapshot, and the shape-check verdicts. Schema
// "kvaccel-run-v1" (DESIGN.md §8); identical seeds produce byte-identical
// files, so reports can be diffed mechanically across PRs (BENCH_*.json).
#pragma once

#include <string>
#include <vector>

#include "harness/workload.h"

namespace kvaccel::harness {

// Serializes `runs` (with the shared `config` echo and the global CheckShape
// verdicts) to `path`. Returns false and prints to stderr on I/O failure.
bool WriteJsonReport(const std::string& path, const BenchConfig& config,
                     const std::vector<RunResult>& runs);

// The document body (no file I/O) — what tests assert against.
std::string JsonReportString(const BenchConfig& config,
                             const std::vector<RunResult>& runs);

}  // namespace kvaccel::harness
