#include "harness/report_json.h"

#include <cstdio>

#include "harness/report.h"
#include "obs/json.h"

namespace kvaccel::harness {

namespace {

const char* WorkloadName(WorkloadConfig::Type type) {
  switch (type) {
    case WorkloadConfig::Type::kFillRandom:
      return "fillrandom";
    case WorkloadConfig::Type::kReadWhileWriting:
      return "readwhilewriting";
    case WorkloadConfig::Type::kSeekRandom:
      return "seekrandom";
    case WorkloadConfig::Type::kMixed:
      return "mixed";
  }
  return "?";
}

const char* ArrivalName(Arrival a) {
  switch (a) {
    case Arrival::kClosed:
      return "closed";
    case Arrival::kPoisson:
      return "poisson";
    case Arrival::kDiurnal:
      return "diurnal";
    case Arrival::kSpike:
      return "spike";
  }
  return "?";
}

const char* KeyDistName(KeyDist d) {
  switch (d) {
    case KeyDist::kUniform:
      return "uniform";
    case KeyDist::kZipfian:
      return "zipfian";
    case KeyDist::kHotspot:
      return "hotspot";
  }
  return "?";
}

void WriteSeries(obs::JsonWriter* w, const std::string& key,
                 const std::vector<double>& values) {
  w->Key(key);
  w->BeginArray();
  for (double v : values) w->Double(v);
  w->EndArray();
}

void WriteRun(obs::JsonWriter* w, const RunResult& r) {
  w->BeginObject();
  w->Field("name", r.name);
  w->Field("seconds", r.seconds);

  w->Key("summary");
  w->BeginObject();
  w->Field("write_kops", r.write_kops);
  w->Field("read_kops", r.read_kops);
  w->Field("scan_kops", r.scan_kops);
  w->Field("write_mbps", r.write_mbps);
  w->Field("put_avg_us", r.put_avg_us);
  w->Field("put_p99_us", r.put_p99_us);
  w->Field("put_p999_us", r.put_p999_us);
  w->Field("get_p99_us", r.get_p99_us);
  w->Field("cpu_pct", r.cpu_pct);
  w->Field("efficiency", r.efficiency);
  w->Field("stall_events", r.stall_events);
  w->Field("stalled_seconds", r.stalled_seconds);
  w->Field("slowdown_events", r.slowdown_events);
  w->Field("slowdown_periods", r.slowdown_periods);
  w->Field("zero_traffic_stall_seconds", r.zero_traffic_stall_seconds);
  w->Field("write_groups", r.write_groups);
  w->Field("group_commit_mean", r.group_commit_mean);
  w->Field("group_commit_max", r.group_commit_max);
  w->Field("redirected_writes", r.redirected_writes);
  w->Field("redirected_batches", r.redirected_batches);
  w->Field("rollbacks", r.rollbacks);
  w->Field("detector_checks", r.detector_checks);
  w->Field("fault_injected", r.fault_injected);
  w->Field("io_retries", r.io_retries);
  w->Field("background_errors", r.background_errors);
  w->Field("dev_retries", r.dev_retries);
  w->Field("fallback_writes", r.fallback_writes);
  w->Field("cache_hits", r.cache_hits);
  w->Field("cache_misses", r.cache_misses);
  w->Field("cache_hit_rate", r.cache_hit_rate);
  w->Field("compactions", r.compactions);
  w->Field("split_compactions", r.split_compactions);
  w->Field("subcompactions", r.subcompactions);
  w->Field("intra_l0_compactions", r.intra_l0_compactions);
  w->Field("compaction_throttle_seconds", r.compaction_throttle_seconds);
  if (!r.shards.empty()) {
    w->Field("shard_fairness_ratio", r.shard_fairness_ratio);
  }
  w->EndObject();

  // Device-offloaded compaction (DESIGN.md §13): present only when an NDP
  // engine was attached to the run.
  if (r.ndp_mode >= 0) {
    w->Key("ndp");
    w->BeginObject();
    w->Field("mode", r.ndp_mode == 1 ? "force" : "auto");
    w->Field("compactions", r.ndp_compactions);
    w->Field("mb_written", r.ndp_mb_written);
    w->Field("fallbacks", r.ndp_fallbacks);
    w->Field("commands", r.ndp_commands);
    w->Field("rejected", r.ndp_rejected);
    w->Field("planner_device_jobs", r.ndp_planner_device_jobs);
    w->Field("planner_host_jobs", r.ndp_planner_host_jobs);
    w->Field("planner_flips", r.ndp_planner_flips);
    w->Field("planner_cooldown_rejects", r.ndp_planner_cooldown_rejects);
    w->Field("cpu_busy_seconds", r.ndp_cpu_busy_seconds);
    w->EndObject();
  }

  // HA pair (DESIGN.md §12): replication stream + measured failover.
  if (r.ha_repl_ack >= 0) {
    w->Key("ha");
    w->BeginObject();
    w->Field("repl_ack", r.ha_repl_ack == 1 ? "async" : "sync");
    w->Field("wal_records", r.ha_wal_records);
    w->Field("intent_records", r.ha_intent_records);
    w->Field("repl_mb", r.ha_repl_mb);
    w->Field("net_retries", r.ha_net_retries);
    w->Field("ship_failures", r.ha_ship_failures);
    w->Field("lost_entries", r.ha_lost_entries);
    w->Field("backup_dev_fallbacks", r.ha_backup_dev_fallbacks);
    w->Field("async_queue_peak", r.ha_async_queue_peak);
    w->Field("sync_ship_ms", r.ha_sync_ship_ms);
    w->Field("net_partition", r.ha_net_partition);
    w->Field("heartbeats", r.ha_heartbeats);
    w->Field("fenced_write_rejects", r.ha_fenced_rejects);
    w->Field("lease_expirations", r.ha_lease_expirations);
    w->Key("failover");
    w->BeginObject();
    w->Field("promote_ms", r.ha_failover_ms);
    w->Field("drained_entries", r.ha_failover_drained);
    w->Field("checker_errors", r.ha_failover_checker_errors);
    w->Field("checker_warnings", r.ha_failover_checker_warnings);
    w->Field("fence_epoch", r.ha_fence_epoch);
    w->EndObject();
    // Partition drill: the post-run RejoinNode reconciliation measurement.
    if (r.ha_resync_mode >= 0) {
      w->Key("rejoin");
      w->BeginObject();
      w->Field("resync_mode", r.ha_resync_mode == 1 ? "delta" : "wal");
      w->Field("rejoin_ms", r.ha_rejoin_ms);
      w->Field("resync_entries", r.ha_resync_entries);
      w->Field("resync_bytes", r.ha_resync_bytes);
      w->Field("write_path_bytes", r.ha_write_path_bytes);
      w->Field("wal_replay_bytes", r.ha_wal_replay_bytes);
      w->Field("quarantined_keys", r.ha_quarantined_keys);
      w->Field("scrub_deferred", r.ha_scrub_deferred);
      w->Field("checker_errors", r.ha_rejoin_checker_errors);
      w->EndObject();
    }
    w->EndObject();
  }

  if (!r.shards.empty()) {
    w->Key("shards");
    w->BeginArray();
    for (const ShardSummary& s : r.shards) {
      w->BeginObject();
      w->Field("shard", s.shard);
      w->Field("writes", s.writes);
      w->Field("write_kops", s.write_kops);
      w->Field("put_p50_us", s.put_p50_us);
      w->Field("put_p99_us", s.put_p99_us);
      w->Field("redirected_writes", s.redirected_writes);
      w->Field("redirect_admission_rejects", s.redirect_admission_rejects);
      w->Field("rollbacks", s.rollbacks);
      w->Field("stalled_seconds", s.stalled_seconds);
      w->Field("arbiter_grants", s.arbiter_grants);
      w->Field("arbiter_granted_bytes", s.arbiter_granted_bytes);
      w->Field("arbiter_throttles", s.arbiter_throttles);
      w->Field("arbiter_throttle_seconds", s.arbiter_throttle_seconds);
      w->EndObject();
    }
    w->EndArray();
  }

  // Mixed workload matrix (DESIGN.md §14): arrival accounting measured from
  // each op's scheduled tick, alongside the classic service-time view.
  if (r.mixed_run == 1) {
    w->Key("open_loop");
    w->BeginObject();
    w->Field("arrival", r.arrival_mode == 1   ? "poisson"
                        : r.arrival_mode == 2 ? "diurnal"
                        : r.arrival_mode == 3 ? "spike"
                                              : "closed");
    w->Field("scheduled_ops", r.scheduled_ops);
    w->Field("completed_ops", r.completed_ops);
    w->Field("abandoned_ops", r.abandoned_ops);
    w->Field("deadline_misses", r.deadline_misses);
    w->Field("ttl_deletes", r.ttl_deletes);
    w->Field("puts", r.mixed_puts);
    w->Field("gets", r.mixed_gets);
    w->Field("deletes", r.mixed_deletes);
    w->Field("scans", r.mixed_scans);
    w->Field("service_p50_us", r.service_p50_us);
    w->Field("service_p99_us", r.service_p99_us);
    w->Field("service_p999_us", r.service_p999_us);
    w->Field("arrival_p50_us", r.arrival_p50_us);
    w->Field("arrival_p99_us", r.arrival_p99_us);
    w->Field("arrival_p999_us", r.arrival_p999_us);
    w->EndObject();
  }

  if (!r.tenants.empty()) {
    w->Key("tenants");
    w->BeginArray();
    for (const TenantSummary& t : r.tenants) {
      w->BeginObject();
      w->Field("tenant", t.tenant);
      w->Field("ops", t.ops);
      w->Field("put_p50_us", t.put_p50_us);
      w->Field("put_p99_us", t.put_p99_us);
      w->Field("put_p999_us", t.put_p999_us);
      w->Field("puts", t.puts);
      w->Field("gets", t.gets);
      w->Field("deletes", t.deletes);
      w->Field("scans", t.scans);
      w->Field("ttl_deletes", t.ttl_deletes);
      w->Field("scheduled_ops", t.scheduled_ops);
      w->Field("deadline_misses", t.deadline_misses);
      w->Field("abandoned_ops", t.abandoned_ops);
      w->Field("arrival_p50_us", t.arrival_p50_us);
      w->Field("arrival_p99_us", t.arrival_p99_us);
      w->Field("arrival_p999_us", t.arrival_p999_us);
      w->EndObject();
    }
    w->EndArray();
  }

  w->Key("per_second");
  w->BeginObject();
  WriteSeries(w, "write_kops", r.per_sec_write_kops);
  WriteSeries(w, "read_kops", r.per_sec_read_kops);
  WriteSeries(w, "pcie_mbps", r.per_sec_pcie_mbps);
  w->EndObject();

  w->Key("stall_regions_sec");
  w->BeginArray();
  for (const auto& [a, b] : r.stall_regions_sec) {
    w->BeginArray();
    w->Double(a);
    w->Double(b);
    w->EndArray();
  }
  w->EndArray();

  w->Key("metrics");
  r.metrics.WriteJson(w);
  w->EndObject();
}

}  // namespace

std::string JsonReportString(const BenchConfig& config,
                             const std::vector<RunResult>& runs) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("schema", "kvaccel-run-v1");

  w.Key("config");
  w.BeginObject();
  w.Field("system", SystemName(config.sut.kind));
  w.Field("workload", WorkloadName(config.workload.type));
  w.Field("seconds", ToSecs(config.workload.duration));
  w.Field("scale", config.scale);
  w.Field("compaction_threads", config.sut.compaction_threads);
  w.Field("value_size", config.workload.value_size);
  w.Field("key_space", config.workload.key_space);
  w.Field("read_threads", config.workload.read_threads);
  w.Field("writer_threads", config.workload.writer_threads);
  w.Field("batch_size", config.workload.batch_size);
  w.Field("seed", config.workload.seed);
  w.Field("workload_mix", config.workload.mix_spec);
  w.Field("arrival", ArrivalName(config.workload.arrival));
  w.Field("arrival_rate", config.workload.arrival_rate);
  w.Field("key_dist", KeyDistName(config.workload.default_profile.dist));
  w.Field("zipf_theta", config.workload.default_profile.zipf_theta);
  w.Field("hotspot_frac", config.workload.default_profile.hotspot_frac);
  w.Field("hotspot_opfrac", config.workload.default_profile.hotspot_opfrac);
  w.Field("ttl_frac", config.workload.ttl_frac);
  w.Field("ttl_s", config.workload.ttl_s);
  w.Field("deadline_us", config.workload.deadline_us);
  w.Field("max_subcompactions", config.sut.max_subcompactions);
  w.Field("compaction_rate_limit", config.sut.compaction_rate_limit);
  w.Field("shards", config.sut.shards);
  w.Field("tenants", config.workload.tenants);
  w.Field("shard_partition",
          config.sut.shard_partition == core::ShardPartition::kRange
              ? "range"
              : "hash");
  w.Field("redirect_policy",
          config.sut.redirect_policy == core::RedirectBudgetPolicy::kPerShard
              ? "per_shard"
              : "global");
  w.Field("arbiter_share", config.sut.arbiter_share);
  w.Field("ndp", config.sut.ndp_mode == ndp::OffloadMode::kForce  ? "force"
               : config.sut.ndp_mode == ndp::OffloadMode::kAuto ? "auto"
                                                                : "off");
  w.Field("ndp_cores", config.sut.ndp_cores);
  w.Field("ha", config.sut.ha);
  w.Field("repl_ack", config.sut.repl_ack_async ? "async" : "sync");
  w.Field("net_mbps", config.sut.net_mbps);
  w.Field("net_latency_us", config.sut.net_latency_us);
  w.Field("net_partition_start_s", config.sut.net_partition_start_s);
  w.Field("net_partition_dur_s", config.sut.net_partition_dur_s);
  w.Field("resync_mode", config.sut.resync_mode == 1 ? "delta" : "wal");
  w.Field("fault_profile", config.fault_profile);
  w.Field("fault_seed", config.fault_seed);
  w.Field("nemesis_seed", config.nemesis_seed);
  w.Field("trace_dump_dir", config.trace_dump_dir);
  w.EndObject();

  w.Key("runs");
  w.BeginArray();
  for (const RunResult& r : runs) WriteRun(&w, r);
  w.EndArray();

  w.Key("shape_checks");
  w.BeginArray();
  for (const ShapeCheck& c : ShapeResults()) {
    w.BeginObject();
    w.Field("description", c.description);
    w.Field("ok", c.ok);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.str();
}

bool WriteJsonReport(const std::string& path, const BenchConfig& config,
                     const std::vector<RunResult>& runs) {
  std::string body = JsonReportString(config, runs);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "json report: cannot open %s\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = std::fputc('\n', f) != EOF && ok;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) fprintf(stderr, "json report: write to %s failed\n", path.c_str());
  return ok;
}

}  // namespace kvaccel::harness
