// db_bench-equivalent workload driver (Table IV):
//   A: fillrandom          — 1 unbounded write thread, 4 B keys, 4 KB values
//   B: readwhilewriting    — 1 write + 1 read thread, 9:1 write/read
//   C: readwhilewriting    — 8:2
//   D: seekrandom          — Seek + 1024 Next after an initial bulk fill
//
// Beyond the paper's closed-loop Table IV gauntlet, the `mixed` workload
// matrix (DESIGN.md §14) drives skewed (Zipfian/hotspot), time-varying
// (Poisson/diurnal/spike) open-loop op streams with TTL churn, scans and
// per-tenant profiles, measuring latency from each op's *scheduled* arrival
// so stall queueing is not hidden by coordinated omission.
//
// RunBenchmark assembles a fresh simulation world (SSD, file system, 8-core
// host) per configuration, drives the workload for a virtual-time window and
// extracts every signal the paper's figures need.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "harness/presets.h"
#include "harness/sut.h"
#include "obs/metrics.h"

namespace kvaccel::harness {

// Key-popularity shape for key draws within a tenant's key-space slice.
enum class KeyDist {
  kUniform,
  kZipfian,  // scrambled Zipfian ranks (YCSB-style), hot keys spread out
  kHotspot,  // contiguous hot range at the front of the slice
};

// Arrival process for the mixed workload. kClosed issues the next op as soon
// as the previous completes (classic db_bench); the rest schedule arrivals in
// virtual time as a Poisson process whose instantaneous rate follows the
// named curve, and latency is additionally measured from the scheduled tick.
enum class Arrival { kClosed, kPoisson, kDiurnal, kSpike };

// Op mix + key-popularity shape for one tenant's stream.
struct TenantProfile {
  OpMix mix;
  KeyDist dist = KeyDist::kUniform;
  double zipf_theta = 0.99;    // dist == kZipfian; must be in (0, 1)
  double hotspot_frac = 0.1;   // dist == kHotspot: hot fraction of the slice
  double hotspot_opfrac = 0.9; // ... receiving this fraction of draws
};

struct WorkloadConfig {
  enum class Type { kFillRandom, kReadWhileWriting, kSeekRandom, kMixed };

  Type type = Type::kFillRandom;
  Nanos duration = FromSecs(60);
  uint64_t key_space = 1ull << 31;  // 4-byte key space (Table IV)
  size_t key_size = 4;
  uint32_t value_size = 4096;
  // Reader threads run unthrottled (db_bench readwhilewriting): workload B
  // approximates the paper's 9:1 mix with one reader, C's 8:2 with two.
  int read_threads = 1;
  // Concurrent writer actors; >1 exercises the group-commit queue. Writer 0
  // keeps the historical seed so N=1 reproduces the single-writer runs.
  int writer_threads = 1;
  // Entries per WriteBatch each writer submits per operation.
  int batch_size = 1;
  // Multi-tenant mode: tenants > 1 carves the key space into equal
  // contiguous slices, one per tenant, and tags each writer with a tenant
  // (writer t serves tenant t % tenants; at least one writer per tenant is
  // spawned). Per-tenant op counts and latency percentiles are reported.
  int tenants = 1;
  // seekrandom (workload D): bulk-filled bytes, then seek_ops range queries.
  uint64_t preload_bytes = 20ull << 30;  // paper: 20 GB (scaled by runner)
  uint64_t seek_ops = 60000;
  int nexts_per_seek = 1024;
  uint64_t seed = 42;

  // ---- Mixed workload matrix (Type::kMixed; DESIGN.md §14) ----
  // Default stream profile, used by every tenant without an explicit entry
  // in `profiles`. Tenant t uses profiles[t % profiles.size()].
  TenantProfile default_profile;
  std::vector<TenantProfile> profiles;
  std::string mix_spec;  // raw --workload_mix text, echoed into the report
  Arrival arrival = Arrival::kClosed;
  // Total scheduled ops/s across all tenants (open-loop modes). The rate is
  // split evenly across tenants, then across each tenant's actors.
  double arrival_rate = 20000;
  // Diurnal curve: rate swings sinusoidally between min_frac*rate (trough,
  // at t=0) and rate (peak) with this period.
  double diurnal_period_s = 20;
  double diurnal_min_frac = 0.25;
  // Spike curve: rate*spike_mult for spike_dur_s at the top of every
  // spike_every_s window, base rate otherwise.
  double spike_every_s = 10;
  double spike_dur_s = 1;
  double spike_mult = 8;
  // TTL churn: this fraction of puts is tagged with a TTL; the writing actor
  // deletes the key once ttl_s of virtual time elapse.
  double ttl_frac = 0;
  double ttl_s = 2;
  // An op completing more than this after its scheduled arrival counts as a
  // deadline miss (closed mode: measured from issue).
  double deadline_us = 1000;

  // Profile for tenant t (see `profiles`).
  const TenantProfile& ProfileFor(int t) const {
    if (profiles.empty()) return default_profile;
    return profiles[static_cast<size_t>(t) % profiles.size()];
  }
};

// Parses a --workload_mix spec into per-tenant profiles: ';'-separated
// segments, one per tenant (tenant t gets segment t % count). Each segment
// is a preset name (LookupMixPreset) or a comma list of k=v fields:
//   put=70,get=20,del=5,scan=5[,scanlen=N][,dist=uniform|zipfian|hotspot]
//   [,theta=F][,hot_frac=F][,hot_ops=F]
// A preset name may be followed by k=v overrides ("churn,dist=zipfian").
// Returns false and sets *err on a malformed spec.
bool ParseWorkloadMix(const std::string& spec,
                      std::vector<TenantProfile>* profiles, std::string* err);

struct BenchConfig {
  SutConfig sut;
  WorkloadConfig workload;
  // Global scale knob: shrinks LSM thresholds, device capacity and preload
  // together (DESIGN.md §3). 1.0 = paper scale.
  double scale = 0.125;
  // Ablation hook: override the device bandwidth (0 = preset 630 MB/s).
  double nand_mbps = 0;
  // Fault injection: canned profile name (see harness/fault_profiles.h;
  // "" = no faults) and the injector's RNG seed.
  std::string fault_profile;
  uint64_t fault_seed = 1;
  // Non-empty: attach an obs::Tracer to the run and write the Chrome
  // trace-event JSON here when it finishes (see DESIGN.md §8). Empty =
  // tracing fully disabled (no tracer object exists).
  std::string trace_out;
  // Integrity knobs (DESIGN.md §9). nemesis_seed and trace_dump_dir are
  // echoed into the kvaccel-run-v1 config block so a report names the exact
  // nemesis schedule that accompanied the run; db_dump_dir exports the final
  // SimFs image to a host directory for offline kvaccel_check.
  uint64_t nemesis_seed = 0;
  std::string trace_dump_dir;
  std::string db_dump_dir;
};

// Per-shard slice of a sharded run (DESIGN.md §11).
struct ShardSummary {
  int shard = 0;
  uint64_t writes = 0;           // foreground writes routed to this shard
  double write_kops = 0;
  double put_p50_us = 0;
  double put_p99_us = 0;
  uint64_t redirected_writes = 0;
  uint64_t redirect_admission_rejects = 0;
  uint64_t rollbacks = 0;
  double stalled_seconds = 0;
  // Fair-share device-bandwidth arbiter accounting for this shard's client.
  uint64_t arbiter_grants = 0;
  uint64_t arbiter_granted_bytes = 0;
  uint64_t arbiter_throttles = 0;
  double arbiter_throttle_seconds = 0;
};

// Per-tenant slice of a multi-tenant run. Service percentiles measure from
// op issue; arrival percentiles measure from the scheduled arrival tick
// (open-loop modes), so queueing behind a stall is included — the
// coordinated-omission-free view (DESIGN.md §14).
struct TenantSummary {
  int tenant = 0;
  uint64_t ops = 0;
  double put_p50_us = 0;   // service-time percentiles, all op kinds
  double put_p99_us = 0;
  double put_p999_us = 0;
  // Mixed-matrix op counts (zero outside Type::kMixed).
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;
  uint64_t ttl_deletes = 0;
  // Open-loop arrival accounting.
  uint64_t scheduled_ops = 0;
  uint64_t deadline_misses = 0;
  uint64_t abandoned_ops = 0;  // scheduled inside the window, never issued
  double arrival_p50_us = 0;
  double arrival_p99_us = 0;
  double arrival_p999_us = 0;
};

struct RunResult {
  std::string name;
  double seconds = 0;  // measurement window length

  double write_kops = 0;
  double read_kops = 0;
  double scan_kops = 0;  // seeks+nexts per second (Table V)
  double write_mbps = 0;

  double put_avg_us = 0, put_p99_us = 0, put_p999_us = 0;
  double get_p99_us = 0;

  double cpu_pct = 0;      // mean host CPU utilisation over the window
  double efficiency = 0;   // Eq. (1): MB/s / CPU%

  std::vector<double> per_sec_write_kops;
  std::vector<double> per_sec_read_kops;
  std::vector<double> per_sec_pcie_mbps;
  // Stall (writers fully blocked) regions, in window-relative seconds.
  std::vector<std::pair<double, double>> stall_regions_sec;
  uint64_t stall_events = 0;
  // Delayed writes (every write RocksDB paced) and distinct slowdown periods
  // (what the paper's "258 / 433 instances" count).
  uint64_t slowdown_events = 0;
  uint64_t slowdown_periods = 0;
  double stalled_seconds = 0;

  // Fig. 5: per-second PCIe utilisation (fraction of device bandwidth)
  // sampled over seconds that intersect a write-stall region.
  std::vector<double> stall_pcie_util;
  // Fig. 14: seconds inside stall regions with ~zero PCIe traffic.
  double zero_traffic_stall_seconds = 0;

  // Group commit observability (Main-LSM writer queue).
  uint64_t write_groups = 0;
  double group_commit_mean = 0;  // entries per group
  uint64_t group_commit_max = 0;

  // KVACCEL-specific.
  uint64_t redirected_writes = 0;
  uint64_t rollbacks = 0;
  uint64_t detector_checks = 0;
  uint64_t redirected_batches = 0;

  // Fault-injection observability (--fault_profile runs).
  uint64_t fault_injected = 0;      // total injector fires
  uint64_t io_retries = 0;          // Main-LSM transient-error retries
  uint64_t background_errors = 0;   // latched flush/compaction failures
  uint64_t dev_retries = 0;         // Dev-LSM command retries (KVACCEL)
  uint64_t fallback_writes = 0;     // host-path fallbacks after dead device

  // SST block cache (Main-LSM).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0;  // hits / lookups, 0 when no lookups

  // Compaction scheduler (Main-LSM, DESIGN.md §10).
  uint64_t compactions = 0;             // jobs installed
  uint64_t split_compactions = 0;       // jobs that ran range-partitioned
  uint64_t subcompactions = 0;          // sub-ranges executed by split jobs
  uint64_t intra_l0_compactions = 0;    // L0->L0 pressure-relief merges
  double compaction_throttle_seconds = 0;  // time parked on the rate limiter

  // Two-node HA pair (DESIGN.md §12). ha_repl_ack is the gate: -1 = not an
  // HA run, 0 = sync acks, 1 = async. After the window the runner fails the
  // primary over to the backup and reports the promotion itself.
  int ha_repl_ack = -1;
  uint64_t ha_wal_records = 0;        // replicated group-commit batches
  uint64_t ha_intent_records = 0;     // replicated redirected-write intents
  double ha_repl_mb = 0;              // bytes shipped over the interconnect
  uint64_t ha_net_retries = 0;
  uint64_t ha_ship_failures = 0;
  uint64_t ha_lost_entries = 0;       // async tail lost at the cutover
  uint64_t ha_backup_dev_fallbacks = 0;
  uint64_t ha_async_queue_peak = 0;
  double ha_sync_ship_ms = 0;         // foreground time spent shipping (sync)
  double ha_failover_ms = 0;          // backup promotion wall time
  uint64_t ha_failover_drained = 0;   // mirror entries re-hosted at promote
  int ha_failover_checker_errors = 0;
  int ha_failover_checker_warnings = 0;
  // Partition/fencing/reconciliation (runs with a partition window).
  int ha_net_partition = 0;           // 1 = a partition window was injected
  uint64_t ha_heartbeats = 0;         // lease renewals applied on the backup
  uint64_t ha_fenced_rejects = 0;     // writes refused by the fenced primary
  uint64_t ha_lease_expirations = 0;
  uint64_t ha_fence_epoch = 0;        // epoch the promoted node serves under
  int ha_resync_mode = -1;            // -1 = no rejoin measured, 0 wal, 1 delta
  double ha_rejoin_ms = 0;            // RejoinNode wall time
  uint64_t ha_resync_entries = 0;     // entries shipped by the rejoin
  uint64_t ha_resync_bytes = 0;       // payload charged to the resync link
  uint64_t ha_write_path_bytes = 0;   // resync bytes through the write path
  uint64_t ha_wal_replay_bytes = 0;   // what full WAL replay would have moved
  uint64_t ha_quarantined_keys = 0;   // diverged versions replaced at rejoin
  uint64_t ha_scrub_deferred = 0;     // serving scrub wake-ups deferred
  int ha_rejoin_checker_errors = 0;

  // Device-offloaded compaction (DESIGN.md §13). ndp_mode is the gate:
  // -1 = no NDP engine attached, 0 = auto placement, 1 = force.
  int ndp_mode = -1;
  uint64_t ndp_compactions = 0;      // jobs that completed device-side
  double ndp_mb_written = 0;         // output MB produced device-side
  uint64_t ndp_fallbacks = 0;        // offloaded jobs rerun on the host
  uint64_t ndp_commands = 0;         // COMPACT descriptors accepted
  uint64_t ndp_rejected = 0;         // transient device rejections
  uint64_t ndp_planner_device_jobs = 0;
  uint64_t ndp_planner_host_jobs = 0;
  uint64_t ndp_planner_flips = 0;
  uint64_t ndp_planner_cooldown_rejects = 0;
  double ndp_cpu_busy_seconds = 0;   // busy time on the device's NDP cores

  // Sharded engine (DESIGN.md §11): one entry per shard, plus the fairness
  // headline — max/min per-shard foreground-write throughput (0 when any
  // shard saw no writes; 1.0 = perfectly even).
  std::vector<ShardSummary> shards;
  double shard_fairness_ratio = 0;
  // Multi-tenant runs: one entry per tenant (empty when tenants <= 1 and the
  // workload is not the mixed matrix, which always reports its tenants).
  std::vector<TenantSummary> tenants;

  // Mixed workload matrix rollup (DESIGN.md §14). mixed_run gates the
  // report's open_loop block; arrival_mode mirrors Arrival (0 closed,
  // 1 poisson, 2 diurnal, 3 spike).
  int mixed_run = 0;
  int arrival_mode = 0;
  uint64_t scheduled_ops = 0;    // arrivals the rate curve produced in-window
  uint64_t completed_ops = 0;
  uint64_t abandoned_ops = 0;    // scheduled, never issued (backlog at end)
  uint64_t deadline_misses = 0;  // completed late + abandoned
  uint64_t ttl_deletes = 0;
  uint64_t mixed_puts = 0;
  uint64_t mixed_gets = 0;
  uint64_t mixed_deletes = 0;
  uint64_t mixed_scans = 0;
  double service_p50_us = 0;   // issue -> completion
  double service_p99_us = 0;
  double service_p999_us = 0;
  double arrival_p50_us = 0;   // scheduled arrival -> completion
  double arrival_p99_us = 0;
  double arrival_p999_us = 0;

  // Full registry snapshot harvested at window end (obs/metrics.h); the
  // machine-readable superset of the scalar fields above.
  obs::MetricsSnapshot metrics;
};

// Encodes `v` as a fixed-width big-endian key (lexicographic == numeric).
std::string MakeKey(uint64_t v, size_t key_size);

RunResult RunBenchmark(const BenchConfig& config);

}  // namespace kvaccel::harness
