// db_bench-equivalent workload driver (Table IV):
//   A: fillrandom          — 1 unbounded write thread, 4 B keys, 4 KB values
//   B: readwhilewriting    — 1 write + 1 read thread, 9:1 write/read
//   C: readwhilewriting    — 8:2
//   D: seekrandom          — Seek + 1024 Next after an initial bulk fill
//
// RunBenchmark assembles a fresh simulation world (SSD, file system, 8-core
// host) per configuration, drives the workload for a virtual-time window and
// extracts every signal the paper's figures need.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "harness/sut.h"
#include "obs/metrics.h"

namespace kvaccel::harness {

struct WorkloadConfig {
  enum class Type { kFillRandom, kReadWhileWriting, kSeekRandom };

  Type type = Type::kFillRandom;
  Nanos duration = FromSecs(60);
  uint64_t key_space = 1ull << 31;  // 4-byte key space (Table IV)
  size_t key_size = 4;
  uint32_t value_size = 4096;
  // Reader threads run unthrottled (db_bench readwhilewriting): workload B
  // approximates the paper's 9:1 mix with one reader, C's 8:2 with two.
  int read_threads = 1;
  // Concurrent writer actors; >1 exercises the group-commit queue. Writer 0
  // keeps the historical seed so N=1 reproduces the single-writer runs.
  int writer_threads = 1;
  // Entries per WriteBatch each writer submits per operation.
  int batch_size = 1;
  // Multi-tenant mode: tenants > 1 carves the key space into equal
  // contiguous slices, one per tenant, and tags each writer with a tenant
  // (writer t serves tenant t % tenants; at least one writer per tenant is
  // spawned). Per-tenant op counts and latency percentiles are reported.
  int tenants = 1;
  // seekrandom (workload D): bulk-filled bytes, then seek_ops range queries.
  uint64_t preload_bytes = 20ull << 30;  // paper: 20 GB (scaled by runner)
  uint64_t seek_ops = 60000;
  int nexts_per_seek = 1024;
  uint64_t seed = 42;
};

struct BenchConfig {
  SutConfig sut;
  WorkloadConfig workload;
  // Global scale knob: shrinks LSM thresholds, device capacity and preload
  // together (DESIGN.md §3). 1.0 = paper scale.
  double scale = 0.125;
  // Ablation hook: override the device bandwidth (0 = preset 630 MB/s).
  double nand_mbps = 0;
  // Fault injection: canned profile name (see harness/fault_profiles.h;
  // "" = no faults) and the injector's RNG seed.
  std::string fault_profile;
  uint64_t fault_seed = 1;
  // Non-empty: attach an obs::Tracer to the run and write the Chrome
  // trace-event JSON here when it finishes (see DESIGN.md §8). Empty =
  // tracing fully disabled (no tracer object exists).
  std::string trace_out;
  // Integrity knobs (DESIGN.md §9). nemesis_seed and trace_dump_dir are
  // echoed into the kvaccel-run-v1 config block so a report names the exact
  // nemesis schedule that accompanied the run; db_dump_dir exports the final
  // SimFs image to a host directory for offline kvaccel_check.
  uint64_t nemesis_seed = 0;
  std::string trace_dump_dir;
  std::string db_dump_dir;
};

// Per-shard slice of a sharded run (DESIGN.md §11).
struct ShardSummary {
  int shard = 0;
  uint64_t writes = 0;           // foreground writes routed to this shard
  double write_kops = 0;
  double put_p50_us = 0;
  double put_p99_us = 0;
  uint64_t redirected_writes = 0;
  uint64_t redirect_admission_rejects = 0;
  uint64_t rollbacks = 0;
  double stalled_seconds = 0;
  // Fair-share device-bandwidth arbiter accounting for this shard's client.
  uint64_t arbiter_grants = 0;
  uint64_t arbiter_granted_bytes = 0;
  uint64_t arbiter_throttles = 0;
  double arbiter_throttle_seconds = 0;
};

// Per-tenant slice of a multi-tenant run.
struct TenantSummary {
  int tenant = 0;
  uint64_t ops = 0;
  double put_p50_us = 0;
  double put_p99_us = 0;
};

struct RunResult {
  std::string name;
  double seconds = 0;  // measurement window length

  double write_kops = 0;
  double read_kops = 0;
  double scan_kops = 0;  // seeks+nexts per second (Table V)
  double write_mbps = 0;

  double put_avg_us = 0, put_p99_us = 0, put_p999_us = 0;
  double get_p99_us = 0;

  double cpu_pct = 0;      // mean host CPU utilisation over the window
  double efficiency = 0;   // Eq. (1): MB/s / CPU%

  std::vector<double> per_sec_write_kops;
  std::vector<double> per_sec_read_kops;
  std::vector<double> per_sec_pcie_mbps;
  // Stall (writers fully blocked) regions, in window-relative seconds.
  std::vector<std::pair<double, double>> stall_regions_sec;
  uint64_t stall_events = 0;
  // Delayed writes (every write RocksDB paced) and distinct slowdown periods
  // (what the paper's "258 / 433 instances" count).
  uint64_t slowdown_events = 0;
  uint64_t slowdown_periods = 0;
  double stalled_seconds = 0;

  // Fig. 5: per-second PCIe utilisation (fraction of device bandwidth)
  // sampled over seconds that intersect a write-stall region.
  std::vector<double> stall_pcie_util;
  // Fig. 14: seconds inside stall regions with ~zero PCIe traffic.
  double zero_traffic_stall_seconds = 0;

  // Group commit observability (Main-LSM writer queue).
  uint64_t write_groups = 0;
  double group_commit_mean = 0;  // entries per group
  uint64_t group_commit_max = 0;

  // KVACCEL-specific.
  uint64_t redirected_writes = 0;
  uint64_t rollbacks = 0;
  uint64_t detector_checks = 0;
  uint64_t redirected_batches = 0;

  // Fault-injection observability (--fault_profile runs).
  uint64_t fault_injected = 0;      // total injector fires
  uint64_t io_retries = 0;          // Main-LSM transient-error retries
  uint64_t background_errors = 0;   // latched flush/compaction failures
  uint64_t dev_retries = 0;         // Dev-LSM command retries (KVACCEL)
  uint64_t fallback_writes = 0;     // host-path fallbacks after dead device

  // SST block cache (Main-LSM).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0;  // hits / lookups, 0 when no lookups

  // Compaction scheduler (Main-LSM, DESIGN.md §10).
  uint64_t compactions = 0;             // jobs installed
  uint64_t split_compactions = 0;       // jobs that ran range-partitioned
  uint64_t subcompactions = 0;          // sub-ranges executed by split jobs
  uint64_t intra_l0_compactions = 0;    // L0->L0 pressure-relief merges
  double compaction_throttle_seconds = 0;  // time parked on the rate limiter

  // Two-node HA pair (DESIGN.md §12). ha_repl_ack is the gate: -1 = not an
  // HA run, 0 = sync acks, 1 = async. After the window the runner fails the
  // primary over to the backup and reports the promotion itself.
  int ha_repl_ack = -1;
  uint64_t ha_wal_records = 0;        // replicated group-commit batches
  uint64_t ha_intent_records = 0;     // replicated redirected-write intents
  double ha_repl_mb = 0;              // bytes shipped over the interconnect
  uint64_t ha_net_retries = 0;
  uint64_t ha_ship_failures = 0;
  uint64_t ha_lost_entries = 0;       // async tail lost at the cutover
  uint64_t ha_backup_dev_fallbacks = 0;
  uint64_t ha_async_queue_peak = 0;
  double ha_sync_ship_ms = 0;         // foreground time spent shipping (sync)
  double ha_failover_ms = 0;          // backup promotion wall time
  uint64_t ha_failover_drained = 0;   // mirror entries re-hosted at promote
  int ha_failover_checker_errors = 0;
  int ha_failover_checker_warnings = 0;
  // Partition/fencing/reconciliation (runs with a partition window).
  int ha_net_partition = 0;           // 1 = a partition window was injected
  uint64_t ha_heartbeats = 0;         // lease renewals applied on the backup
  uint64_t ha_fenced_rejects = 0;     // writes refused by the fenced primary
  uint64_t ha_lease_expirations = 0;
  uint64_t ha_fence_epoch = 0;        // epoch the promoted node serves under
  int ha_resync_mode = -1;            // -1 = no rejoin measured, 0 wal, 1 delta
  double ha_rejoin_ms = 0;            // RejoinNode wall time
  uint64_t ha_resync_entries = 0;     // entries shipped by the rejoin
  uint64_t ha_resync_bytes = 0;       // payload charged to the resync link
  uint64_t ha_write_path_bytes = 0;   // resync bytes through the write path
  uint64_t ha_wal_replay_bytes = 0;   // what full WAL replay would have moved
  uint64_t ha_quarantined_keys = 0;   // diverged versions replaced at rejoin
  uint64_t ha_scrub_deferred = 0;     // serving scrub wake-ups deferred
  int ha_rejoin_checker_errors = 0;

  // Device-offloaded compaction (DESIGN.md §13). ndp_mode is the gate:
  // -1 = no NDP engine attached, 0 = auto placement, 1 = force.
  int ndp_mode = -1;
  uint64_t ndp_compactions = 0;      // jobs that completed device-side
  double ndp_mb_written = 0;         // output MB produced device-side
  uint64_t ndp_fallbacks = 0;        // offloaded jobs rerun on the host
  uint64_t ndp_commands = 0;         // COMPACT descriptors accepted
  uint64_t ndp_rejected = 0;         // transient device rejections
  uint64_t ndp_planner_device_jobs = 0;
  uint64_t ndp_planner_host_jobs = 0;
  uint64_t ndp_planner_flips = 0;
  uint64_t ndp_planner_cooldown_rejects = 0;
  double ndp_cpu_busy_seconds = 0;   // busy time on the device's NDP cores

  // Sharded engine (DESIGN.md §11): one entry per shard, plus the fairness
  // headline — max/min per-shard foreground-write throughput (0 when any
  // shard saw no writes; 1.0 = perfectly even).
  std::vector<ShardSummary> shards;
  double shard_fairness_ratio = 0;
  // Multi-tenant runs: one entry per tenant (empty when tenants <= 1).
  std::vector<TenantSummary> tenants;

  // Full registry snapshot harvested at window end (obs/metrics.h); the
  // machine-readable superset of the scalar fields above.
  obs::MetricsSnapshot metrics;
};

// Encodes `v` as a fixed-width big-endian key (lexicographic == numeric).
std::string MakeKey(uint64_t v, size_t key_size);

RunResult RunBenchmark(const BenchConfig& config);

}  // namespace kvaccel::harness
