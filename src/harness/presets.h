// Experiment presets mirroring the paper's setup tables:
//   Table I  — Cosmos+ OpenSSD (630 MB/s NAND, PCIe Gen2 x8, 1 ARM core)
//   Table II — host with 8 usable cores
//   Table III— LSM configurations (MT 128 MB; 1/2/4 compaction threads)
//   Table IV — workloads A-D (4 B keys, 4 KB values)
//
// `scale` shrinks all byte thresholds and the key space together so the full
// suite runs in minutes while preserving stall periodicity and every relative
// result. scale=1.0 reproduces paper-scale parameters.
#pragma once

#include <string>

#include "adoc/adoc_tuner.h"
#include "core/config.h"
#include "lsm/options.h"
#include "ssd/config.h"

namespace kvaccel::harness {

inline ssd::SsdConfig PaperSsdConfig(double scale = 1.0) {
  ssd::SsdConfig c;
  // 1 TB device in the paper; the experiments touch tens of GB. Size the
  // simulated capacity generously above the touched working set (scaled) so
  // capacity never interferes with the stall dynamics under test.
  c.capacity_bytes = static_cast<uint64_t>(256.0 * scale * (1ull << 30));
  if (c.capacity_bytes < (1ull << 30)) c.capacity_bytes = 1ull << 30;
  c.channels = 4;
  c.ways_per_channel = 8;
  c.nand_bytes_per_sec = 630.0 * 1e6;   // measured device peak
  c.pcie_bytes_per_sec = 4.0 * 1e9;     // PCIe Gen2 x8 theoretical
  c.firmware_cores = 1;                 // single Cortex-A9 for Dev-LSM
  c.firmware_speed = 0.25;
  c.block_region_fraction = 0.75;
  return c;
}

inline lsm::DbOptions PaperDbOptions(int compaction_threads,
                                     bool enable_slowdown,
                                     double scale = 1.0) {
  lsm::DbOptions o;
  o.write_buffer_size =
      static_cast<uint64_t>(128.0 * scale * (1ull << 20));  // Table III
  o.max_write_buffer_number = 2;
  o.l0_compaction_trigger = 4;
  // RocksDB default trigger family [9].
  o.l0_slowdown_writes_trigger = 8;
  o.l0_stop_writes_trigger = 12;
  o.max_bytes_for_level_base =
      static_cast<uint64_t>(256.0 * scale * (1ull << 20));
  o.target_file_size = static_cast<uint64_t>(64.0 * scale * (1ull << 20));
  o.soft_pending_compaction_bytes_limit =
      static_cast<uint64_t>(2.0 * scale * (1ull << 30));
  o.hard_pending_compaction_bytes_limit =
      static_cast<uint64_t>(8.0 * scale * (1ull << 30));
  o.compaction_threads = compaction_threads;
  // Merge phases span whole compactions, scaled with everything else.
  o.compaction_io_chunk = static_cast<uint64_t>(1024.0 * scale * (1 << 20));
  o.enable_slowdown = enable_slowdown;
  o.delayed_write_rate = 8.0 * 1e6;  // ~2 Kops/s of 4 KB values (Fig. 2)
  o.block_cache_capacity = static_cast<uint64_t>(64.0 * scale * (1ull << 20));
  // Client-side per-op CPU: calibrated to db_bench's observed ~150-200 Kops/s
  // burst rate with one write thread.
  o.put_cpu_ns = 5000;
  o.get_cpu_ns = 3000;
  return o;
}

inline core::KvaccelOptions PaperKvaccelOptions(
    core::RollbackScheme rollback, double scale = 1.0) {
  core::KvaccelOptions o;
  o.detector_period = FromMillis(100);  // §VI-A: refresh every 0.1 s
  o.rollback = rollback;
  o.dev.memtable_bytes = static_cast<uint64_t>(32.0 * scale * (1ull << 20));
  o.dev.dma_chunk = 512 << 10;  // §V-E
  o.dev.compaction_enabled = true;
  return o;
}

// Operation mix for the --workload=mixed matrix (DESIGN.md §14).
// Percentages are out of 100; scan_len is Nexts issued after each Seek.
struct OpMix {
  double put_pct = 100;
  double get_pct = 0;
  double delete_pct = 0;
  double scan_pct = 0;
  int scan_len = 64;
};

// Canned mixes for --workload_mix; a spec segment may also spell the
// percentages out (`put=70,get=20,del=5,scan=5`). Catalogue:
//   write-heavy — YCSB-A-ish update-dominant stream
//   balanced    — mixed point ops with a little churn and scanning
//   churn       — delete/TTL-heavy ingest (tombstone pressure)
//   analytics   — long scans over a read-mostly stream
inline bool LookupMixPreset(const std::string& name, OpMix* out) {
  if (name == "write-heavy") {
    *out = OpMix{90, 10, 0, 0, 64};
  } else if (name == "balanced") {
    *out = OpMix{50, 40, 5, 5, 64};
  } else if (name == "churn") {
    *out = OpMix{45, 25, 30, 0, 64};
  } else if (name == "analytics") {
    *out = OpMix{10, 40, 0, 50, 512};
  } else {
    return false;
  }
  return true;
}

inline adoc::AdocOptions PaperAdocOptions(int max_threads,
                                          double scale = 1.0) {
  adoc::AdocOptions o;
  o.tuning_period = FromMillis(100);
  o.min_compaction_threads = 1;
  o.max_compaction_threads = max_threads;
  // Batch-size range: 1x .. 4x of the (scaled) baseline memtable.
  o.min_write_buffer = static_cast<uint64_t>(128.0 * scale * (1ull << 20));
  o.max_write_buffer = o.min_write_buffer * 2;
  return o;
}

}  // namespace kvaccel::harness
