// Canned fault profiles for bench runs and CI (--fault_profile=<name>).
// A profile arms a small set of fault sites on a FaultInjector; combined
// with --fault_seed the whole faulty run is reproducible bit-for-bit.
//
//   flaky-nvme   rare transient command failures on the block and KV paths
//                (exercises the retry/backoff machinery end to end)
//   bitrot       latent read corruption: ~1-in-10k file reads return one
//                flipped bit (exercises checksum verification paths)
//   power-cut    every dropped dirty cache additionally loses a torn
//                trailing-sector tail (exercises crash recovery)
//   devlsm-dead  every Dev-LSM command fails (exercises the host-path
//                fallback and the device-health circuit breaker)
#pragma once

#include <string>

#include "sim/fault.h"

namespace kvaccel::harness {

// Arms `inj` according to the named profile. Returns false when the name is
// unknown; "" and "none" are valid no-ops.
inline bool ApplyFaultProfile(sim::FaultInjector* inj,
                              const std::string& name) {
  if (name.empty() || name == "none") return true;
  sim::FaultRule rule;
  if (name == "flaky-nvme") {
    rule.probability = 1e-4;
    inj->Arm("ssd.block.write.transient", rule);
    inj->Arm("ssd.block.read.transient", rule);
    rule.probability = 1e-5;
    inj->Arm("ssd.block.flush.transient", rule);
    inj->Arm("devlsm.put.transient", rule);
    return true;
  }
  if (name == "bitrot") {
    rule.probability = 1e-4;
    inj->Arm("simfs.read.bitflip", rule);
    return true;
  }
  if (name == "power-cut") {
    rule.probability = 1.0;
    inj->Arm("simfs.powercut.torn", rule);
    return true;
  }
  if (name == "devlsm-dead") {
    rule.probability = 1.0;
    inj->Arm("devlsm.put.transient", rule);
    return true;
  }
  return false;
}

}  // namespace kvaccel::harness
