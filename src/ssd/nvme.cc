#include "ssd/nvme.h"

namespace kvaccel::ssd::nvme {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kRead: return "READ";
    case Opcode::kWrite: return "WRITE";
    case Opcode::kFlush: return "FLUSH";
    case Opcode::kDatasetMgmt: return "DSM";
    case Opcode::kKvStore: return "KV_STORE";
    case Opcode::kKvRetrieve: return "KV_RETRIEVE";
    case Opcode::kKvDelete: return "KV_DELETE";
    case Opcode::kKvExist: return "KV_EXIST";
    case Opcode::kKvList: return "KV_LIST";
    case Opcode::kKvIterOpen: return "KV_ITER_OPEN";
    case Opcode::kKvIterNext: return "KV_ITER_NEXT";
    case Opcode::kKvBulkScan: return "KV_BULK_SCAN";
    case Opcode::kKvReset: return "KV_RESET";
    case Opcode::kKvCompound: return "KV_COMPOUND";
  }
  return "UNKNOWN";
}

}  // namespace kvaccel::ssd::nvme
