// Configuration of the simulated hybrid dual-interface SSD, defaulted to the
// Cosmos+ OpenSSD prototype of the paper (Table I): 1 TB NAND, 4 channels ×
// 8 ways, ~630 MB/s device bandwidth, PCIe Gen2 ×8 (4 GB/s theoretical), a
// single ARM Cortex-A9 core running the key-value firmware.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace kvaccel::ssd {

struct SsdConfig {
  // --- Geometry ---
  int channels = 4;
  int ways_per_channel = 8;
  // Simplification vs. real Cosmos+ (16 KB pages): page == 4 KB == one LBA
  // sector, so the FTL maps sectors directly. Timing is carried by the
  // channel bandwidth model, not per-page constants, so this does not change
  // any bandwidth result.
  uint64_t page_size = 4096;
  uint64_t pages_per_block = 256;  // 1 MiB erase blocks
  // Logical capacity of the whole device (block + KV regions). Scaled down
  // from 1 TB by default so unit tests can exercise GC; benches override.
  uint64_t capacity_bytes = 8ull << 30;
  // Physical overprovisioning factor (extra NAND beyond logical capacity).
  double overprovision = 0.07;

  // --- Performance ---
  // Aggregate sustained NAND bandwidth (the paper's ~630 MB/s), divided
  // evenly across channels.
  double nand_bytes_per_sec = 630.0 * 1e6;
  // PCIe Gen2 x8 theoretical maximum.
  double pcie_bytes_per_sec = 4.0 * 1e9;
  // Fixed access latencies added per NAND operation.
  Nanos read_latency = FromMicros(45);
  Nanos program_latency = FromMicros(200);
  Nanos erase_latency = FromMillis(2);

  // --- Disaggregation (paper §V-D) ---
  // Fraction of the logical NAND address space left of the disaggregation
  // point (block interface). The remainder backs the key-value region.
  double block_region_fraction = 0.75;

  // --- Firmware (device-side compute) ---
  int firmware_cores = 1;
  // Cortex-A9 @ 1 GHz vs. host Xeon: nominal work units take ~4x longer.
  double firmware_speed = 0.25;

  // --- Namespaces (multi-tenancy, paper §V-D) ---
  int num_namespaces = 1;

  // GC trigger: collect when free physical blocks drop below this fraction.
  double gc_free_threshold = 0.08;

  uint64_t total_pages() const { return capacity_bytes / page_size; }
  uint64_t block_region_pages() const {
    return static_cast<uint64_t>(static_cast<double>(total_pages()) *
                                 block_region_fraction);
  }
  uint64_t kv_region_pages() const {
    return total_pages() - block_region_pages();
  }
};

}  // namespace kvaccel::ssd
