// HybridSsd: the dual-interface SSD of paper §V-D.
//
// The logical NAND flash address space is split at the *disaggregation point*
// into a block region (per-namespace page-mapped FTL, consumed by the file
// system / Main-LSM) and a key-value region (consumed by the in-device
// Dev-LSM). Both regions share the same NAND channels, the same PCIe link and
// the same firmware core — so redirected KV writes genuinely compete with
// compaction I/O for the one device, which is the resource dynamic the whole
// paper is about.
//
// Data plane note (DESIGN.md §1): the device carries *timing, capacity and
// traffic accounting*; payload bytes live host-side (SimFs) or in the DevLsm
// structures. This is the standard simulator split and does not change any
// bandwidth or latency result.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "obs/trace.h"
#include "sim/cpu_pool.h"
#include "sim/resource.h"
#include "sim/sim_env.h"
#include "ssd/config.h"
#include "ssd/ftl.h"
#include "ssd/nand_flash.h"
#include "ssd/nvme.h"

namespace kvaccel::ssd {

class HybridSsd {
 public:
  HybridSsd(sim::SimEnv* env, const SsdConfig& config);

  const SsdConfig& config() const { return config_; }
  sim::SimEnv* env() const { return env_; }

  // ---------- Block interface (NVM command set) ----------
  // Sector == page (see SsdConfig). `lba` is namespace-relative.
  Status BlockWrite(int nsid, uint64_t lba, uint64_t sectors);
  Status BlockRead(int nsid, uint64_t lba, uint64_t sectors);
  // Device-internal block I/O for the NDP offload engine (DESIGN.md §13):
  // identical FTL/NAND path and fault sites, but no PCIe transfer — the data
  // moves NAND -> firmware SRAM -> NAND without ever crossing the link.
  Status BlockWriteInternal(int nsid, uint64_t lba, uint64_t sectors);
  Status BlockReadInternal(int nsid, uint64_t lba, uint64_t sectors);
  Status BlockTrim(int nsid, uint64_t lba, uint64_t sectors);
  Status BlockFlush(int nsid);
  // Number of sectors the block region of `nsid` exposes.
  uint64_t BlockCapacitySectors(int nsid) const;

  // ---------- Key-value interface plumbing ----------
  // DevLsm (src/devlsm) implements the KV command semantics; it uses these
  // primitives so every byte and cycle lands on the shared device resources.
  Nanos PcieToDevice(uint64_t bytes);  // host -> device DMA
  Nanos PcieToHost(uint64_t bytes);    // device -> host DMA
  Nanos NandRead(uint64_t bytes);
  Nanos NandWrite(uint64_t bytes);
  Nanos NandEraseBlocks(uint64_t blocks);
  sim::CpuPool* firmware() { return firmware_.get(); }

  // KV-region capacity bookkeeping (namespace-scoped quota).
  Status KvAllocPages(int nsid, uint64_t pages);
  void KvFreePages(int nsid, uint64_t pages);
  uint64_t KvUsedPages(int nsid) const;
  uint64_t KvCapacityPages(int nsid) const;

  // ---------- Shared observability ----------
  sim::RateResource& pcie() { return *pcie_; }
  const sim::RateResource& pcie() const { return *pcie_; }
  NandFlash& nand() { return *nand_; }
  const NandFlash& nand() const { return *nand_; }
  nvme::CommandTrace& trace() { return trace_; }
  const Ftl& block_ftl(int nsid) const { return *namespaces_[nsid].block_ftl; }

 private:
  struct Namespace {
    std::unique_ptr<Ftl> block_ftl;
    uint64_t block_pages = 0;
    uint64_t kv_quota_pages = 0;
    uint64_t kv_used_pages = 0;
  };

  bool ValidNsid(int nsid) const {
    return nsid >= 0 && nsid < static_cast<int>(namespaces_.size());
  }

  Status BlockWriteImpl(int nsid, uint64_t lba, uint64_t sectors,
                        bool over_pcie);
  Status BlockReadImpl(int nsid, uint64_t lba, uint64_t sectors,
                       bool over_pcie);

  sim::SimEnv* env_;
  SsdConfig config_;
  std::unique_ptr<sim::RateResource> pcie_;
  std::unique_ptr<NandFlash> nand_;
  std::unique_ptr<sim::CpuPool> firmware_;
  std::vector<Namespace> namespaces_;
  nvme::CommandTrace trace_;
  obs::CoalescingSpan pcie_span_;
};

}  // namespace kvaccel::ssd
