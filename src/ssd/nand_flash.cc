#include "ssd/nand_flash.h"

#include <algorithm>

namespace kvaccel::ssd {

NandFlash::NandFlash(sim::SimEnv* env, const SsdConfig& config)
    : env_(env), config_(config) {
  double per_channel = config.nand_bytes_per_sec / config.channels;
  for (int i = 0; i < config.channels; i++) {
    channels_.push_back(std::make_unique<sim::RateResource>(
        env, "nand-ch" + std::to_string(i), per_channel));
  }
  if (obs::Tracer* tracer = env->tracer()) {
    channel_spans_.resize(channels_.size());
    for (size_t i = 0; i < channels_.size(); i++) {
      uint32_t track =
          tracer->RegisterTrack("ssd.nand-ch" + std::to_string(i));
      obs::CoalescingSpan* span = &channel_spans_[i];
      span->Init(tracer, track, "nand.busy", FromMicros(50));
      channels_[i]->set_busy_callback(
          [span](Nanos start, Nanos end, uint64_t bytes) {
            span->Add(start, end, bytes);
          });
      tracer->AddFlusher([span] { span->Flush(); });
    }
  }
}

double NandFlash::total_bytes_per_sec() const {
  return config_.nand_bytes_per_sec;
}

Nanos NandFlash::StripedTransfer(uint64_t bytes, Nanos fixed_latency) {
  if (bytes == 0) return env_->Now();
  // Stripe page-sized chunks round-robin over the channels. For transfers
  // smaller than one page the single owning channel carries it all.
  const uint64_t stripe = config_.page_size;
  const size_t n = channels_.size();
  std::vector<uint64_t> share(n, 0);
  uint64_t remaining = bytes;
  size_t ch = next_channel_;
  while (remaining > 0) {
    uint64_t chunk = std::min(remaining, stripe);
    share[ch] += chunk;
    remaining -= chunk;
    ch = (ch + 1) % n;
  }
  next_channel_ = ch;
  Nanos done = env_->Now();
  for (size_t i = 0; i < n; i++) {
    if (share[i] > 0) done = std::max(done, channels_[i]->TransferAsync(share[i]));
  }
  env_->SleepUntil(done + fixed_latency);
  return env_->Now();
}

Nanos NandFlash::Read(uint64_t bytes) {
  bytes_read_ += bytes;
  return StripedTransfer(bytes, config_.read_latency);
}

Nanos NandFlash::Write(uint64_t bytes) {
  bytes_written_ += bytes;
  return StripedTransfer(bytes, config_.program_latency);
}

Nanos NandFlash::Erase(uint64_t blocks) {
  if (blocks == 0) return env_->Now();
  blocks_erased_ += blocks;
  // Erases parallelize across channels; model the aggregate delay.
  uint64_t per_channel =
      (blocks + channels_.size() - 1) / channels_.size();
  env_->SleepFor(config_.erase_latency * per_channel);
  return env_->Now();
}

}  // namespace kvaccel::ssd
