// Page-mapped Flash Translation Layer with greedy garbage collection.
//
// The FTL tracks the logical→physical page mapping, per-block valid counts,
// and a free-block pool with overprovisioned headroom. Overwrites invalidate
// the previous physical page; when the free pool drops below the GC
// threshold, greedy victim selection relocates the fewest valid pages. The
// cost of GC data movement is charged to the NAND model through a caller-
// provided callback, so garbage collection competes for the same device
// bandwidth as everything else (paper §V-D: both interfaces share the FTL
// mechanisms of a conventional SSD).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/status.h"

namespace kvaccel::ssd {

class Ftl {
 public:
  struct Options {
    uint64_t logical_pages = 0;
    uint64_t pages_per_block = 256;
    double overprovision = 0.07;
    // Run GC when free blocks fall below this fraction of physical blocks.
    double gc_free_threshold = 0.08;
  };

  // Charged whenever GC moves data: (relocated_pages, erased_blocks).
  using GcIoFn = std::function<void(uint64_t, uint64_t)>;

  Ftl(const Options& options, GcIoFn gc_io);

  // Maps `count` logical pages starting at `lpn` to fresh physical pages,
  // invalidating any previous mapping. Fails with NoSpace when the device is
  // genuinely full (no reclaimable invalid pages).
  Status Write(uint64_t lpn, uint64_t count);

  // Unmaps (invalidates) the range; harmless on unmapped pages.
  Status Trim(uint64_t lpn, uint64_t count);

  bool IsMapped(uint64_t lpn) const;

  uint64_t logical_pages() const { return options_.logical_pages; }
  uint64_t valid_pages() const { return valid_pages_; }
  uint64_t free_blocks() const { return free_blocks_.size(); }
  uint64_t physical_blocks() const { return physical_blocks_; }
  uint64_t relocated_pages() const { return relocated_pages_; }
  uint64_t erased_blocks() const { return erased_blocks_; }
  uint64_t gc_runs() const { return gc_runs_; }

  // Write amplification observed so far: (host + GC writes) / host writes.
  double write_amplification() const {
    if (host_written_pages_ == 0) return 1.0;
    return static_cast<double>(host_written_pages_ + relocated_pages_) /
           static_cast<double>(host_written_pages_);
  }

 private:
  static constexpr uint64_t kUnmapped = UINT64_MAX;
  static constexpr uint64_t kInvalid = UINT64_MAX;  // rmap: stale page
  static constexpr uint64_t kFree = UINT64_MAX - 1;

  // Allocates one physical page from the active block (sealing and pulling
  // from the free pool as needed). Returns kUnmapped if out of space.
  uint64_t AllocPage();
  void InvalidatePhysical(uint64_t ppn);
  void MaybeGc();
  bool GcOnce();

  Options options_;
  GcIoFn gc_io_;
  uint64_t physical_blocks_;
  std::vector<uint64_t> map_;        // lpn -> ppn
  std::vector<uint64_t> rmap_;       // ppn -> lpn, kInvalid or kFree
  std::vector<uint32_t> block_valid_;
  std::vector<uint8_t> block_is_free_;
  std::deque<uint64_t> free_blocks_;
  uint64_t active_block_ = kUnmapped;
  uint64_t active_next_page_ = 0;
  uint64_t valid_pages_ = 0;
  uint64_t host_written_pages_ = 0;
  uint64_t relocated_pages_ = 0;
  uint64_t erased_blocks_ = 0;
  uint64_t gc_runs_ = 0;
};

}  // namespace kvaccel::ssd
