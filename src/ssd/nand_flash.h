// NAND flash timing model: one RateResource per channel plus fixed per-op
// access latencies. Multi-page transfers stripe across channels (round-robin
// start) so a single stream reaches full device bandwidth when the channels
// are idle, while concurrent streams queue per channel — exactly the
// contention the paper's compaction-vs-redirected-writes analysis relies on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/resource.h"
#include "sim/sim_env.h"
#include "ssd/config.h"

namespace kvaccel::ssd {

class NandFlash {
 public:
  NandFlash(sim::SimEnv* env, const SsdConfig& config);

  // Blocking, striped transfers. Return completion time.
  Nanos Read(uint64_t bytes);
  Nanos Write(uint64_t bytes);
  // Blocking erase of `blocks` erase blocks.
  Nanos Erase(uint64_t blocks);

  double total_bytes_per_sec() const;
  int channels() const { return static_cast<int>(channels_.size()); }
  const sim::RateResource& channel(int i) const { return *channels_[i]; }

  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t blocks_erased() const { return blocks_erased_; }

  // Total channel busy time (sum over channels) — `ssd.nand.busy_ns`.
  Nanos busy_ns() const {
    Nanos total = 0;
    for (const auto& ch : channels_) total += ch->busy_ns();
    return total;
  }

 private:
  Nanos StripedTransfer(uint64_t bytes, Nanos fixed_latency);

  sim::SimEnv* env_;
  SsdConfig config_;
  std::vector<std::unique_ptr<sim::RateResource>> channels_;
  // One per channel when tracing; addresses must stay stable (sized once in
  // the constructor) because the channel busy callbacks point into it.
  std::vector<obs::CoalescingSpan> channel_spans_;
  size_t next_channel_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t blocks_erased_ = 0;
};

}  // namespace kvaccel::ssd
