// NVMe command-set vocabulary for the hybrid dual-interface SSD.
//
// The block region speaks the NVM command set (READ/WRITE/FLUSH/DSM) and the
// key-value region speaks the NVMe Key-Value command set (STORE/RETRIEVE/
// DELETE/EXIST/LIST), as in paper §IV. The iterator-based bulk range scan and
// the Dev-LSM reset used by KVACCEL's rollback (paper §V-E) are modeled as
// vendor-specific opcodes, mirroring how the authors extended the iLSM/
// iterator KV-SSD firmware. Every executed command is appended to a trace
// ring that tests and the overhead bench inspect.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/units.h"

namespace kvaccel::ssd::nvme {

enum class Opcode : uint8_t {
  // NVM (block) command set
  kRead = 0x02,
  kWrite = 0x01,
  kFlush = 0x00,
  kDatasetMgmt = 0x09,  // TRIM
  // Key-Value command set
  kKvStore = 0x81,
  kKvRetrieve = 0x02 | 0x80,
  kKvDelete = 0x10 | 0x80,
  kKvExist = 0x14 | 0x80,
  kKvList = 0x06 | 0x80,
  // Vendor-specific extensions (paper §V-E/§V-F)
  kKvIterOpen = 0xc0,
  kKvIterNext = 0xc1,
  kKvBulkScan = 0xc2,
  kKvReset = 0xc3,
  // Compound command (paper §IV, [33]): several KV operations submitted and
  // completed as one NVMe command.
  kKvCompound = 0xc4,
};

const char* OpcodeName(Opcode op);

// One executed command, as recorded by the device trace.
struct CommandRecord {
  Nanos time = 0;
  Opcode opcode = Opcode::kFlush;
  int nsid = 0;
  uint64_t bytes = 0;  // payload moved over PCIe for this command
};

// Bounded trace of recently executed commands.
class CommandTrace {
 public:
  explicit CommandTrace(size_t capacity = 1 << 16) : capacity_(capacity) {}

  void Record(Nanos time, Opcode opcode, int nsid, uint64_t bytes) {
    if (!enabled_) return;
    if (records_.size() == capacity_) records_.pop_front();
    records_.push_back({time, opcode, nsid, bytes});
    total_count_++;
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  const std::deque<CommandRecord>& records() const { return records_; }
  uint64_t total_count() const { return total_count_; }

  uint64_t CountOf(Opcode op) const {
    uint64_t n = 0;
    for (const auto& r : records_) {
      if (r.opcode == op) n++;
    }
    return n;
  }

 private:
  size_t capacity_;
  bool enabled_ = true;
  std::deque<CommandRecord> records_;
  uint64_t total_count_ = 0;
};

}  // namespace kvaccel::ssd::nvme
