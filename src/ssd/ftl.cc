#include "ssd/ftl.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace kvaccel::ssd {

Ftl::Ftl(const Options& options, GcIoFn gc_io)
    : options_(options), gc_io_(std::move(gc_io)) {
  assert(options.logical_pages > 0);
  assert(options.pages_per_block > 0);
  uint64_t logical_blocks =
      (options.logical_pages + options.pages_per_block - 1) /
      options.pages_per_block;
  physical_blocks_ = static_cast<uint64_t>(std::ceil(
      static_cast<double>(logical_blocks) * (1.0 + options.overprovision)));
  physical_blocks_ = std::max(physical_blocks_, logical_blocks + 2);
  map_.assign(options.logical_pages, kUnmapped);
  rmap_.assign(physical_blocks_ * options.pages_per_block, kFree);
  block_valid_.assign(physical_blocks_, 0);
  block_is_free_.assign(physical_blocks_, 1);
  for (uint64_t b = 0; b < physical_blocks_; b++) free_blocks_.push_back(b);
}

uint64_t Ftl::AllocPage() {
  if (active_block_ == kUnmapped ||
      active_next_page_ == options_.pages_per_block) {
    if (free_blocks_.empty()) return kUnmapped;
    active_block_ = free_blocks_.front();
    free_blocks_.pop_front();
    block_is_free_[active_block_] = 0;
    active_next_page_ = 0;
  }
  return active_block_ * options_.pages_per_block + active_next_page_++;
}

void Ftl::InvalidatePhysical(uint64_t ppn) {
  assert(rmap_[ppn] != kFree && rmap_[ppn] != kInvalid);
  rmap_[ppn] = kInvalid;
  uint64_t block = ppn / options_.pages_per_block;
  assert(block_valid_[block] > 0);
  block_valid_[block]--;
}

Status Ftl::Write(uint64_t lpn, uint64_t count) {
  if (lpn + count > options_.logical_pages) {
    return Status::InvalidArgument("FTL write beyond logical capacity");
  }
  for (uint64_t i = 0; i < count; i++) {
    uint64_t l = lpn + i;
    MaybeGc();
    uint64_t ppn = AllocPage();
    if (ppn == kUnmapped) return Status::NoSpace("FTL out of NAND blocks");
    if (map_[l] != kUnmapped) {
      InvalidatePhysical(map_[l]);
      valid_pages_--;
    }
    map_[l] = ppn;
    rmap_[ppn] = l;
    block_valid_[ppn / options_.pages_per_block]++;
    valid_pages_++;
    host_written_pages_++;
  }
  return Status::OK();
}

Status Ftl::Trim(uint64_t lpn, uint64_t count) {
  if (lpn + count > options_.logical_pages) {
    return Status::InvalidArgument("FTL trim beyond logical capacity");
  }
  for (uint64_t i = 0; i < count; i++) {
    uint64_t l = lpn + i;
    if (map_[l] != kUnmapped) {
      InvalidatePhysical(map_[l]);
      map_[l] = kUnmapped;
      valid_pages_--;
    }
  }
  return Status::OK();
}

bool Ftl::IsMapped(uint64_t lpn) const {
  return lpn < map_.size() && map_[lpn] != kUnmapped;
}

void Ftl::MaybeGc() {
  uint64_t threshold = std::max<uint64_t>(
      2, static_cast<uint64_t>(static_cast<double>(physical_blocks_) *
                               options_.gc_free_threshold));
  while (free_blocks_.size() < threshold) {
    if (!GcOnce()) break;
  }
}

bool Ftl::GcOnce() {
  // Greedy victim: sealed block with the fewest valid pages. Blocks that are
  // entirely valid reclaim nothing — if only those remain, GC cannot help.
  uint64_t victim = kUnmapped;
  uint32_t best_valid = static_cast<uint32_t>(options_.pages_per_block);
  for (uint64_t b = 0; b < physical_blocks_; b++) {
    if (b == active_block_ || block_is_free_[b]) continue;
    if (block_valid_[b] < best_valid) {
      best_valid = block_valid_[b];
      victim = b;
    }
  }
  if (victim == kUnmapped || best_valid == options_.pages_per_block) {
    return false;
  }
  gc_runs_++;
  uint64_t moved = 0;
  for (uint64_t p = 0; p < options_.pages_per_block; p++) {
    uint64_t ppn = victim * options_.pages_per_block + p;
    uint64_t lpn = rmap_[ppn];
    if (lpn == kFree || lpn == kInvalid) continue;
    uint64_t dst = AllocPage();
    if (dst == kUnmapped) return false;  // shouldn't happen mid-GC
    rmap_[ppn] = kInvalid;
    block_valid_[victim]--;
    map_[lpn] = dst;
    rmap_[dst] = lpn;
    block_valid_[dst / options_.pages_per_block]++;
    moved++;
  }
  // Erase and return to the pool.
  for (uint64_t p = 0; p < options_.pages_per_block; p++) {
    rmap_[victim * options_.pages_per_block + p] = kFree;
  }
  assert(block_valid_[victim] == 0);
  free_blocks_.push_back(victim);
  block_is_free_[victim] = 1;
  relocated_pages_ += moved;
  erased_blocks_++;
  if (gc_io_) gc_io_(moved, 1);
  return true;
}

}  // namespace kvaccel::ssd
