#include "ssd/hybrid_ssd.h"

#include <cassert>

#include "sim/fault.h"

namespace kvaccel::ssd {

HybridSsd::HybridSsd(sim::SimEnv* env, const SsdConfig& config)
    : env_(env), config_(config) {
  pcie_ = std::make_unique<sim::RateResource>(env, "pcie",
                                              config.pcie_bytes_per_sec);
  if (obs::Tracer* tracer = env->tracer()) {
    pcie_span_.Init(tracer, tracer->RegisterTrack("ssd.pcie"), "pcie.busy",
                    FromMicros(50));
    pcie_->set_busy_callback([this](Nanos start, Nanos end, uint64_t bytes) {
      pcie_span_.Add(start, end, bytes);
    });
    tracer->AddFlusher([this] { pcie_span_.Flush(); });
  }
  nand_ = std::make_unique<NandFlash>(env, config);
  firmware_ = std::make_unique<sim::CpuPool>(
      env, "ssd-firmware", config.firmware_cores, config.firmware_speed);

  assert(config.num_namespaces >= 1);
  uint64_t block_pages_per_ns =
      config.block_region_pages() / config.num_namespaces;
  uint64_t kv_pages_per_ns = config.kv_region_pages() / config.num_namespaces;
  for (int i = 0; i < config.num_namespaces; i++) {
    Namespace ns;
    ns.block_pages = block_pages_per_ns;
    ns.kv_quota_pages = kv_pages_per_ns;
    Ftl::Options fopt;
    fopt.logical_pages = block_pages_per_ns;
    fopt.pages_per_block = config.pages_per_block;
    fopt.overprovision = config.overprovision;
    fopt.gc_free_threshold = config.gc_free_threshold;
    // GC traffic is charged against the shared NAND channels.
    ns.block_ftl = std::make_unique<Ftl>(
        fopt, [this](uint64_t pages, uint64_t blocks) {
          uint64_t bytes = pages * config_.page_size;
          nand_->Read(bytes);
          nand_->Write(bytes);
          nand_->Erase(blocks);
        });
    namespaces_.push_back(std::move(ns));
  }
}

uint64_t HybridSsd::BlockCapacitySectors(int nsid) const {
  assert(ValidNsid(nsid));
  return namespaces_[nsid].block_pages;
}

Status HybridSsd::BlockWriteImpl(int nsid, uint64_t lba, uint64_t sectors,
                                 bool over_pcie) {
  if (!ValidNsid(nsid)) return Status::InvalidArgument("bad nsid");
  if (sim::SimCrashed(env_)) return Status::IOError("simulated crash");
  if (sim::FaultAt(env_, "ssd.block.write.transient")) {
    return Status::IOError("injected: block write failed");
  }
  uint64_t bytes = sectors * config_.page_size;
  trace_.Record(env_->Now(), nvme::Opcode::kWrite, nsid, bytes);
  if (over_pcie) pcie_->Transfer(bytes);
  Status s = namespaces_[nsid].block_ftl->Write(lba, sectors);
  if (!s.ok()) return s;
  nand_->Write(bytes);
  return Status::OK();
}

Status HybridSsd::BlockWrite(int nsid, uint64_t lba, uint64_t sectors) {
  return BlockWriteImpl(nsid, lba, sectors, /*over_pcie=*/true);
}

Status HybridSsd::BlockWriteInternal(int nsid, uint64_t lba,
                                     uint64_t sectors) {
  return BlockWriteImpl(nsid, lba, sectors, /*over_pcie=*/false);
}

Status HybridSsd::BlockReadImpl(int nsid, uint64_t lba, uint64_t sectors,
                                bool over_pcie) {
  if (!ValidNsid(nsid)) return Status::InvalidArgument("bad nsid");
  if (lba + sectors > namespaces_[nsid].block_pages) {
    return Status::InvalidArgument("read beyond block region");
  }
  if (sim::SimCrashed(env_)) return Status::IOError("simulated crash");
  if (sim::FaultAt(env_, "ssd.block.read.transient")) {
    return Status::IOError("injected: block read failed");
  }
  if (sim::FaultAt(env_, "ssd.block.read.timeout")) {
    // Command timeout: the host gives up after a long device stall.
    env_->SleepFor(FromMillis(10));
    return Status::IOError("injected: block read timed out");
  }
  uint64_t bytes = sectors * config_.page_size;
  trace_.Record(env_->Now(), nvme::Opcode::kRead, nsid, bytes);
  nand_->Read(bytes);
  if (over_pcie) pcie_->Transfer(bytes);
  return Status::OK();
}

Status HybridSsd::BlockRead(int nsid, uint64_t lba, uint64_t sectors) {
  return BlockReadImpl(nsid, lba, sectors, /*over_pcie=*/true);
}

Status HybridSsd::BlockReadInternal(int nsid, uint64_t lba, uint64_t sectors) {
  return BlockReadImpl(nsid, lba, sectors, /*over_pcie=*/false);
}

Status HybridSsd::BlockTrim(int nsid, uint64_t lba, uint64_t sectors) {
  if (!ValidNsid(nsid)) return Status::InvalidArgument("bad nsid");
  trace_.Record(env_->Now(), nvme::Opcode::kDatasetMgmt, nsid, 0);
  return namespaces_[nsid].block_ftl->Trim(lba, sectors);
}

Status HybridSsd::BlockFlush(int nsid) {
  if (!ValidNsid(nsid)) return Status::InvalidArgument("bad nsid");
  if (sim::SimCrashed(env_)) return Status::IOError("simulated crash");
  if (sim::FaultAt(env_, "ssd.block.flush.transient")) {
    return Status::IOError("injected: flush failed");
  }
  trace_.Record(env_->Now(), nvme::Opcode::kFlush, nsid, 0);
  // Write cache flush: modeled as a fixed device-side round trip.
  env_->SleepFor(FromMicros(20));
  return Status::OK();
}

Nanos HybridSsd::PcieToDevice(uint64_t bytes) { return pcie_->Transfer(bytes); }
Nanos HybridSsd::PcieToHost(uint64_t bytes) { return pcie_->Transfer(bytes); }
Nanos HybridSsd::NandRead(uint64_t bytes) { return nand_->Read(bytes); }
Nanos HybridSsd::NandWrite(uint64_t bytes) { return nand_->Write(bytes); }
Nanos HybridSsd::NandEraseBlocks(uint64_t blocks) {
  return nand_->Erase(blocks);
}

Status HybridSsd::KvAllocPages(int nsid, uint64_t pages) {
  if (!ValidNsid(nsid)) return Status::InvalidArgument("bad nsid");
  Namespace& ns = namespaces_[nsid];
  if (ns.kv_used_pages + pages > ns.kv_quota_pages) {
    return Status::NoSpace("KV region quota exhausted");
  }
  ns.kv_used_pages += pages;
  return Status::OK();
}

void HybridSsd::KvFreePages(int nsid, uint64_t pages) {
  assert(ValidNsid(nsid));
  Namespace& ns = namespaces_[nsid];
  assert(ns.kv_used_pages >= pages);
  ns.kv_used_pages -= pages;
}

uint64_t HybridSsd::KvUsedPages(int nsid) const {
  assert(ValidNsid(nsid));
  return namespaces_[nsid].kv_used_pages;
}

uint64_t HybridSsd::KvCapacityPages(int nsid) const {
  assert(ValidNsid(nsid));
  return namespaces_[nsid].kv_quota_pages;
}

}  // namespace kvaccel::ssd
