#include "sim/fault.h"

#include "sim/sim_env.h"

namespace kvaccel::sim {

void FaultInjector::Arm(const std::string& site, const FaultRule& rule) {
  SiteState& st = sites_[site];
  st.rule = rule;
  st.armed = true;
  st.hits = 0;
  st.fires = 0;
}

void FaultInjector::Disarm(const std::string& site) {
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
}

void FaultInjector::Clear() {
  for (auto& [name, st] : sites_) st.armed = false;
  crashed_ = false;
}

bool FaultInjector::ShouldFail(const std::string& site) {
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return false;
  SiteState& st = it->second;
  const FaultRule& r = st.rule;
  if (r.window_start != 0 || r.window_end != 0) {
    Nanos now = env_->Now();
    if (now < r.window_start || now >= r.window_end) return false;
  }
  st.hits++;
  if (r.max_fires >= 0 && st.fires >= static_cast<uint64_t>(r.max_fires)) {
    return false;
  }
  bool fire;
  if (r.nth_hit != 0) {
    fire = (st.hits == r.nth_hit);
  } else {
    fire = (r.probability > 0.0 && rng_.NextDouble() < r.probability);
  }
  if (!fire) return false;
  st.fires++;
  total_fires_++;
  if (site.compare(0, 6, "crash.") == 0) crashed_ = true;
  return true;
}

uint64_t FaultInjector::hits(const std::string& site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fires(const std::string& site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

bool FaultAt(SimEnv* env, const std::string& site) {
  if (env == nullptr) return false;
  FaultInjector* f = env->fault_injector();
  if (f == nullptr) return false;
  return f->ShouldFail(site);
}

bool SimCrashed(SimEnv* env) {
  if (env == nullptr) return false;
  FaultInjector* f = env->fault_injector();
  return f != nullptr && f->crashed();
}

}  // namespace kvaccel::sim
