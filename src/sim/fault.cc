#include "sim/fault.h"

#include "sim/sim_env.h"

namespace kvaccel::sim {

void FaultInjector::Arm(const std::string& site, const FaultRule& rule) {
  SiteState& st = sites_[site];
  st.rule = rule;
  st.armed = true;
  st.hits = 0;
  st.fires = 0;
}

void FaultInjector::Disarm(const std::string& site) {
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
}

void FaultInjector::Clear() {
  for (auto& [name, st] : sites_) st.armed = false;
  crashed_ = false;
}

bool FaultInjector::ShouldFail(const std::string& site) {
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return false;
  SiteState& st = it->second;
  const FaultRule& r = st.rule;
  if (r.window_start != 0 || r.window_end != 0) {
    Nanos now = env_->Now();
    if (now < r.window_start || now >= r.window_end) return false;
  }
  st.hits++;
  if (r.max_fires >= 0 && st.fires >= static_cast<uint64_t>(r.max_fires)) {
    return false;
  }
  bool fire;
  if (r.nth_hit != 0) {
    fire = (st.hits == r.nth_hit);
  } else {
    fire = (r.probability > 0.0 && rng_.NextDouble() < r.probability);
  }
  if (!fire) return false;
  st.fires++;
  total_fires_++;
  if (site.compare(0, 6, "crash.") == 0) crashed_ = true;
  return true;
}

uint64_t FaultInjector::hits(const std::string& site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fires(const std::string& site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

const std::vector<FaultSiteInfo>& KnownFaultSites() {
  static const std::vector<FaultSiteInfo> kSites = {
      {"ssd.block.write.transient", "BlockWrite fails with IOError"},
      {"ssd.block.read.transient", "BlockRead fails with IOError"},
      {"ssd.block.flush.transient", "BlockFlush fails with IOError"},
      {"ssd.block.read.timeout", "BlockRead stalls ~10ms then IOError"},
      {"devlsm.put.transient", "Dev-LSM Put/Delete/PutCompound fail"},
      {"devlsm.get.transient", "Dev-LSM Get fails"},
      {"simfs.read.bitflip", "one bit of the returned payload flips"},
      {"simfs.read.short", "read returns a prefix of the request"},
      {"simfs.powercut.torn",
       "DropAllDirty tears a suffix of unflushed bytes"},
      {"net.send.transient", "NetLink::Send drops the message"},
      {"net.partition.sym",
       "symmetric partition: the wire is cut in both directions"},
      {"net.partition.tx",
       "asymmetric partition: outbound messages are eaten on the wire"},
      {"net.partition.ack",
       "asymmetric partition: record applied on the peer, ack lost"},
      {"net.delay", "a seeded 100us-1ms delay spike rides on this message"},
      {"net.dup", "the record is delivered (and applied) twice"},
      {"net.reorder", "two queued async records swap places on the wire"},
      {"ndp.compact.transient",
       "device rejects a COMPACT command; job falls back to host"},
      {"crash.wal.post_append", "after WAL append, before sync"},
      {"crash.wal.post_sync", "after WAL sync, before memtable apply"},
      {"crash.flush.mid", "mid-way through an L0 flush"},
      {"crash.manifest.pre_sync", "MANIFEST record appended, not synced"},
      {"crash.manifest.post_sync", "MANIFEST synced, version not applied"},
      {"crash.compaction.mid", "mid-way through a compaction"},
      {"crash.subcompaction.mid", "mid-way through one compaction sub-range"},
      {"crash.rollback.mid", "mid-way through a rollback drain"},
      {"crash.redirect.mid",
       "redirected batch durable on device, metadata not flipped"},
      {"crash.net.send.mid",
       "pair-wide power loss with a replication record in flight"},
      {"crash.ndp.merge.mid", "mid-way through a device-offloaded merge"},
      {"crash.ndp.submerge.mid",
       "mid-way through one offloaded compaction sub-range"},
      {"crash.ndp.result.pre",
       "offloaded merge done, output metadata still in flight to the host"},
  };
  return kSites;
}

bool FaultAt(SimEnv* env, const std::string& site) {
  if (env == nullptr) return false;
  FaultInjector* f = env->fault_injector();
  if (f == nullptr) return false;
  return f->ShouldFail(site);
}

bool SimCrashed(SimEnv* env) {
  if (env == nullptr) return false;
  FaultInjector* f = env->fault_injector();
  return f != nullptr && f->crashed();
}

}  // namespace kvaccel::sim
