// FairShareArbiter: a multi-client token-bucket bandwidth arbiter with
// start-time-fair-queuing (SFQ) ordering.
//
// This generalizes the per-DB deep-compaction rate limiter (a single busy-
// until token bucket in DbImpl) to N clients sharing one device: each shard
// of the sharded engine registers as a client and routes its deep-compaction
// I/O and redirect DMA reservations through Acquire(). Grants are ordered by
// per-client virtual start tags, so a compaction-heavy shard that has already
// consumed a lot of bandwidth queues behind a light shard's redirect even
// when it asked first — the fairness property the single-bucket limiter
// cannot provide.
//
// Semantics: Acquire(client, bytes) blocks the calling simulated thread (in
// virtual time) until the reservation's tokens are available, then reserves
// `bytes` worth of serving time and returns immediately — callers overlap
// their actual device I/O with the reservation, exactly like a token-bucket
// rate limiter in front of real hardware. A small burst allowance keeps
// isolated requests latency-free.
//
// Determinism: the waiting set is ordered by (virtual tag, arrival ticket);
// SimMutex/SimCondVar hand-offs are FIFO, so the grant sequence is a pure
// function of the call sequence.
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/sim_env.h"

namespace kvaccel::sim {

class FairShareArbiter {
 public:
  struct ClientStats {
    std::string name;
    uint64_t grants = 0;         // Acquire calls served
    uint64_t granted_bytes = 0;  // total bytes reserved
    uint64_t throttles = 0;      // grants that had to queue
    uint64_t throttle_ns = 0;    // total virtual ns spent queued
  };

  // `bytes_per_sec` is the serving rate of the shared bucket; <= 0 turns the
  // arbiter into a no-op (Acquire returns immediately). `burst_bytes` of
  // credit may accumulate while the bucket is idle.
  FairShareArbiter(SimEnv* env, std::string name, double bytes_per_sec,
                   uint64_t burst_bytes = 1ull << 20)
      : env_(env),
        name_(std::move(name)),
        bytes_per_sec_(bytes_per_sec),
        burst_ns_(bytes_per_sec > 0
                      ? static_cast<double>(burst_bytes) * 1e9 / bytes_per_sec
                      : 0) {}

  FairShareArbiter(const FairShareArbiter&) = delete;
  FairShareArbiter& operator=(const FairShareArbiter&) = delete;

  // Registers a client slot; returns its id. Call before the simulation
  // schedule depends on the arbiter (registration order defines ids).
  // Recycles the most recently deregistered slot first, resetting its stats.
  int RegisterClient(std::string client_name) {
    SimLockGuard l(mu_);
    if (!free_slots_.empty()) {
      int id = free_slots_.back();
      free_slots_.pop_back();
      vtag_[id] = 0;
      stats_[id] = ClientStats{};
      stats_[id].name = std::move(client_name);
      return id;
    }
    vtag_.push_back(0);
    stats_.push_back(ClientStats{});
    stats_.back().name = std::move(client_name);
    return static_cast<int>(stats_.size()) - 1;
  }

  // Releases a client slot on shard/node close. The caller must have
  // quiesced the client first: no Acquire may be in flight or issued for
  // this id afterwards. Clears the slot's start tag so a departed client's
  // stale tag can't distort fairness for a future occupant of the recycled
  // id (e.g. a node promoted after failover); the accumulated stats survive
  // for end-of-run reporting until the slot is reused.
  void DeregisterClient(int client) {
    SimLockGuard l(mu_);
    if (client < 0 || client >= static_cast<int>(vtag_.size())) return;
    for (int freed : free_slots_) {
      if (freed == client) return;  // already released
    }
    vtag_[client] = 0;
    free_slots_.push_back(client);
  }

  // Blocks until `bytes` of bandwidth are granted to `client`; returns the
  // virtual ns the caller spent queued (0 when served immediately).
  Nanos Acquire(int client, uint64_t bytes) {
    if (bytes == 0 || bytes_per_sec_ <= 0) return 0;
    const Nanos arrival = env_->Now();
    mu_.Lock();
    // SFQ start tag: resume from this client's own consumption history, but
    // never behind the global virtual clock — an idle client re-enters at
    // the front instead of burning its idle period as credit-for-debt.
    double tag = std::max(vnow_, vtag_[client]);
    vtag_[client] = tag + static_cast<double>(bytes);
    const std::pair<double, uint64_t> key{tag, next_ticket_++};
    queue_.insert(key);
    for (;;) {
      const double now = static_cast<double>(env_->Now());
      const bool head = (*queue_.begin() == key);
      const double avail_at = busy_until_ns_ - burst_ns_;
      if (head && now >= avail_at) break;
      if (head) {
        cv_.WaitFor(mu_, static_cast<Nanos>(avail_at - now) + 1);
      } else {
        cv_.Wait(mu_);
      }
    }
    queue_.erase(key);
    vnow_ = std::max(vnow_, tag);
    const double now = static_cast<double>(env_->Now());
    busy_until_ns_ = std::max(busy_until_ns_, now - burst_ns_) +
                     static_cast<double>(bytes) * 1e9 / bytes_per_sec_;
    ClientStats& cs = stats_[client];
    cs.grants++;
    cs.granted_bytes += bytes;
    const Nanos waited = env_->Now() - arrival;
    if (waited > 0) {
      cs.throttles++;
      cs.throttle_ns += static_cast<uint64_t>(waited);
    }
    cv_.NotifyAll();
    mu_.Unlock();
    return waited;
  }

  double bytes_per_sec() const { return bytes_per_sec_; }
  const std::string& name() const { return name_; }
  int num_clients() const { return static_cast<int>(stats_.size()); }
  // Reading stats mid-run is safe under the cooperative scheduler (plain
  // code never yields mid-update).
  const ClientStats& client_stats(int client) const { return stats_[client]; }

 private:
  SimEnv* env_;
  std::string name_;
  double bytes_per_sec_;
  double burst_ns_;

  SimMutex mu_;
  SimCondVar cv_;
  double vnow_ = 0;            // global virtual clock (bytes)
  double busy_until_ns_ = 0;   // bucket exhaustion instant
  uint64_t next_ticket_ = 0;   // arrival order tie-breaker
  std::set<std::pair<double, uint64_t>> queue_;  // (tag, ticket)
  std::vector<double> vtag_;   // per-client virtual finish tag (bytes)
  std::vector<ClientStats> stats_;
  std::vector<int> free_slots_;  // deregistered ids awaiting reuse
};

}  // namespace kvaccel::sim
