// NetLink: the simulated host-to-host interconnect for the HA pair — a FIFO
// bandwidth server (same idiom as the PCIe link's RateResource) plus a fixed
// propagation latency and an adversarial fault surface (DESIGN.md §12):
//
//   net.send.transient    this message is dropped; the sender sees an IOError
//                         and may retry (counted in drops())
//   net.partition.sym     symmetric partition: the wire is cut in both
//                         directions — the message never charges the link and
//                         the sender sees an IOError (partition_drops())
//   net.partition.tx      asymmetric partition, forward direction: the
//                         message is silently eaten on the way out — same
//                         observable as net.partition.sym from this side
//   net.delay             a seeded delay/jitter spike (100µs–1ms) is added on
//                         top of serialization + propagation (delay_spikes())
//   crash.net.send.mid    whole-pair power loss while the message is in
//                         flight: it charged the wire but was never applied
//                         on the receiver (latches the crash latch like every
//                         crash.* site)
//
// Two more net.* sites live in the replication protocol layer rather than on
// the wire, because only the sender's RPC loop knows about acks and record
// ordering (registered in KnownFaultSites() beside the sites above):
//
//   net.partition.ack     asymmetric partition, return direction: the record
//                         was applied on the receiver but the ack never came
//                         back (checked by ReplicatedKvaccelDB::SendAndApply)
//   net.dup               the record is delivered (and applied) twice
//   net.reorder           two queued async records swap places on the wire
//
// Delivery is synchronous from the simulation's point of view: Send() blocks
// the calling simulated thread for serialization (bytes / bandwidth, FIFO
// behind earlier messages) plus the propagation latency, then returns OK,
// after which the caller applies the message on the receiver. A Send that
// returns an error means the receiver never saw the message. While the crash
// latch is set every Send fails fast — the peer is down. When no net.* site
// is armed the timing is byte-identical to the pre-partition link.
//
// Single cooperative scheduler, state mutated only between yield points — no
// locking (see SimEnv header).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/random.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/fault.h"
#include "sim/resource.h"
#include "sim/sim_env.h"

namespace kvaccel::sim {

class NetLink {
 public:
  NetLink(SimEnv* env, std::string name, double bytes_per_sec, Nanos latency,
          uint64_t jitter_seed = 0x4E7D31A5)
      : env_(env),
        latency_(latency),
        pipe_(env, std::move(name), bytes_per_sec),
        jitter_rng_(jitter_seed) {}
  NetLink(const NetLink&) = delete;
  NetLink& operator=(const NetLink&) = delete;

  // Ships one `bytes`-sized message to the peer. Blocks for wire time +
  // latency (+ an armed delay spike). IOError when the message is dropped
  // (transient), the link is partitioned, or the pair crashed while it was
  // in flight.
  Status Send(uint64_t bytes) {
    if (SimCrashed(env_)) {
      return Status::IOError(pipe_.name() + ": peer down");
    }
    if (FaultAt(env_, "net.partition.sym")) {
      partition_drops_++;
      return Status::IOError(pipe_.name() + ": partitioned");
    }
    if (FaultAt(env_, "net.partition.tx")) {
      partition_drops_++;
      return Status::IOError(pipe_.name() + ": partitioned (tx)");
    }
    if (FaultAt(env_, "net.send.transient")) {
      drops_++;
      return Status::IOError(pipe_.name() + ": send dropped");
    }
    pipe_.Transfer(bytes);
    if (latency_ > 0) env_->SleepFor(latency_);
    if (FaultAt(env_, "net.delay")) {
      delay_spikes_++;
      env_->SleepFor(FromMicros(100) +
                     Nanos(jitter_rng_.Uniform(FromMicros(900))));
    }
    if (FaultAt(env_, "crash.net.send.mid")) {
      return Status::IOError(pipe_.name() + ": crashed in flight");
    }
    if (SimCrashed(env_)) {
      return Status::IOError(pipe_.name() + ": peer down");
    }
    messages_++;
    return Status::OK();
  }

  Nanos latency() const { return latency_; }
  uint64_t messages() const { return messages_; }
  uint64_t drops() const { return drops_; }
  uint64_t partition_drops() const { return partition_drops_; }
  uint64_t delay_spikes() const { return delay_spikes_; }
  const RateResource& pipe() const { return pipe_; }
  RateResource& pipe() { return pipe_; }

 private:
  SimEnv* env_;
  Nanos latency_;
  RateResource pipe_;
  Random64 jitter_rng_;        // delay-spike widths (seeded, reproducible)
  uint64_t messages_ = 0;         // delivered
  uint64_t drops_ = 0;            // net.send.transient fires
  uint64_t partition_drops_ = 0;  // net.partition.{sym,tx} fires
  uint64_t delay_spikes_ = 0;     // net.delay fires
};

}  // namespace kvaccel::sim
