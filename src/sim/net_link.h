// NetLink: the simulated host-to-host interconnect for the HA pair — a FIFO
// bandwidth server (same idiom as the PCIe link's RateResource) plus a fixed
// propagation latency and two named fault sites:
//
//   net.send.transient    this message is dropped; the sender sees an IOError
//                         and may retry (counted in drops())
//   crash.net.send.mid    whole-pair power loss while the message is in
//                         flight: it charged the wire but was never applied
//                         on the receiver (latches the crash latch like every
//                         crash.* site)
//
// Delivery is synchronous from the simulation's point of view: Send() blocks
// the calling simulated thread for serialization (bytes / bandwidth, FIFO
// behind earlier messages) plus the propagation latency, then returns OK,
// after which the caller applies the message on the receiver. A Send that
// returns an error means the receiver never saw the message. While the crash
// latch is set every Send fails fast — the peer is down.
//
// Single cooperative scheduler, state mutated only between yield points — no
// locking (see SimEnv header).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/units.h"
#include "sim/fault.h"
#include "sim/resource.h"
#include "sim/sim_env.h"

namespace kvaccel::sim {

class NetLink {
 public:
  NetLink(SimEnv* env, std::string name, double bytes_per_sec, Nanos latency)
      : env_(env),
        latency_(latency),
        pipe_(env, std::move(name), bytes_per_sec) {}
  NetLink(const NetLink&) = delete;
  NetLink& operator=(const NetLink&) = delete;

  // Ships one `bytes`-sized message to the peer. Blocks for wire time +
  // latency. IOError when the message is dropped (transient) or the pair
  // crashed while it was in flight.
  Status Send(uint64_t bytes) {
    if (SimCrashed(env_)) {
      return Status::IOError(pipe_.name() + ": peer down");
    }
    if (FaultAt(env_, "net.send.transient")) {
      drops_++;
      return Status::IOError(pipe_.name() + ": send dropped");
    }
    pipe_.Transfer(bytes);
    if (latency_ > 0) env_->SleepFor(latency_);
    if (FaultAt(env_, "crash.net.send.mid")) {
      return Status::IOError(pipe_.name() + ": crashed in flight");
    }
    if (SimCrashed(env_)) {
      return Status::IOError(pipe_.name() + ": peer down");
    }
    messages_++;
    return Status::OK();
  }

  Nanos latency() const { return latency_; }
  uint64_t messages() const { return messages_; }
  uint64_t drops() const { return drops_; }
  const RateResource& pipe() const { return pipe_; }
  RateResource& pipe() { return pipe_; }

 private:
  SimEnv* env_;
  Nanos latency_;
  RateResource pipe_;
  uint64_t messages_ = 0;  // delivered
  uint64_t drops_ = 0;     // net.send.transient fires
};

}  // namespace kvaccel::sim
