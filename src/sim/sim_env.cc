#include "sim/sim_env.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace kvaccel::sim {
namespace {

thread_local SimEnv* tls_env = nullptr;
thread_local SimEnv::Thread* tls_current = nullptr;

const std::string kEmptyName;

}  // namespace

SimEnv::SimEnv() = default;

SimEnv::~SimEnv() {
  // Normal lifecycle: Run() already drove every thread to kDone and joined.
  // If Run() was never called (or threw), release any parked real threads so
  // their std::threads can be joined; they skip/abandon their body via
  // ShutdownSignal.
  {
    std::lock_guard<std::mutex> l(mu_);
    shutting_down_.store(true);
    for (auto& t : threads_) {
      if (t->state != State::kDone) {
        t->state = State::kRunning;
        t->cv.notify_one();
      }
    }
  }
  for (auto& t : threads_) {
    if (t->real.joinable()) t->real.join();
  }
}

SimEnv* SimEnv::Current() { return tls_env; }

const std::string& SimEnv::CurrentThreadName() {
  return tls_current != nullptr ? tls_current->name : kEmptyName;
}

void SimEnv::CheckInSimThread() const {
  assert(tls_env == this && tls_current != nullptr &&
         "Sim primitive called outside a simulated thread");
}

SimEnv::Thread* SimEnv::Spawn(std::string name, std::function<void()> fn,
                              bool daemon) {
  std::lock_guard<std::mutex> l(mu_);
  auto t = std::make_unique<Thread>();
  t->name = std::move(name);
  t->seq = next_seq_++;
  t->daemon = daemon;
  t->fn = std::move(fn);
  t->state = State::kReady;
  t->wake_time = Now();
  Thread* raw = t.get();
  threads_.push_back(std::move(t));
  raw->real = std::thread([this, raw] { ThreadMain(raw); });
  return raw;
}

void SimEnv::ThreadMain(Thread* t) {
  tls_env = this;
  tls_current = t;
  {
    std::unique_lock<std::mutex> l(mu_);
    t->cv.wait(l, [&] { return t->state == State::kRunning; });
  }
  if (!shutting_down()) {
    try {
      t->fn();
    } catch (const ShutdownSignal&) {
      // Cooperative teardown of a daemon/abandoned thread.
    }
  }
  std::lock_guard<std::mutex> l(mu_);
  t->state = State::kDone;
  for (Thread* j : t->joiners) {
    WakeLocked(j);
  }
  t->joiners.clear();
  sched_cv_.notify_all();
}

bool SimEnv::MinCandidateLocked(const Thread* exclude, Nanos* time,
                                uint64_t* seq) const {
  bool found = false;
  for (const auto& t : threads_) {
    if (t.get() == exclude || t->state == State::kDone) continue;
    Nanos key;
    if (t->state == State::kReady) {
      key = t->wake_time;
    } else if (t->state == State::kBlocked && t->has_deadline) {
      key = t->deadline;
    } else {
      continue;
    }
    if (!found || key < *time || (key == *time && t->seq < *seq)) {
      found = true;
      *time = key;
      *seq = t->seq;
    }
  }
  return found;
}

void SimEnv::SleepUntilLocked(std::unique_lock<std::mutex>& lock, Thread* self,
                              Nanos t) {
  if (shutting_down()) throw ShutdownSignal{};
  Nanos wake = std::max(t, Now());
  Nanos ct = 0;
  uint64_t cseq = 0;
  if (!MinCandidateLocked(self, &ct, &cseq) || wake < ct ||
      (wake == ct && self->seq < cseq)) {
    // Fast path: no other runnable thread would execute before `wake`, so
    // advancing the clock in place is equivalent to a full reschedule.
    now_.store(wake, std::memory_order_relaxed);
    return;
  }
  self->state = State::kReady;
  self->wake_time = wake;
  sched_cv_.notify_all();
  self->cv.wait(lock, [&] { return self->state == State::kRunning; });
  if (shutting_down()) throw ShutdownSignal{};
}

void SimEnv::SleepUntil(Nanos t) {
  CheckInSimThread();
  std::unique_lock<std::mutex> l(mu_);
  SleepUntilLocked(l, tls_current, t);
}

void SimEnv::SleepFor(Nanos d) { SleepUntil(Now() + d); }

void SimEnv::BlockCurrentLocked(std::unique_lock<std::mutex>& lock,
                                Thread* self, bool has_deadline,
                                Nanos deadline) {
  if (shutting_down()) throw ShutdownSignal{};
  self->state = State::kBlocked;
  self->has_deadline = has_deadline;
  self->deadline = deadline;
  self->timed_out = false;
  sched_cv_.notify_all();
  self->cv.wait(lock, [&] { return self->state == State::kRunning; });
  if (shutting_down()) throw ShutdownSignal{};
}

void SimEnv::WakeLocked(Thread* t) {
  if (t->state != State::kBlocked) return;
  t->state = State::kReady;
  t->wake_time = Now();
  t->has_deadline = false;
}

void SimEnv::Join(Thread* t) {
  CheckInSimThread();
  std::unique_lock<std::mutex> l(mu_);
  if (t->state == State::kDone) return;
  t->joiners.push_back(tls_current);
  BlockCurrentLocked(l, tls_current, false, 0);
}

void SimEnv::Run() {
  std::unique_lock<std::mutex> l(mu_);
  running_ = true;
  for (;;) {
    bool all_done = true;
    bool non_daemon_alive = false;
    for (const auto& t : threads_) {
      if (t->state != State::kDone) {
        all_done = false;
        if (!t->daemon) non_daemon_alive = true;
      }
    }
    if (all_done) break;
    if (!non_daemon_alive) shutting_down_.store(true);

    // Pick the next thread to dispatch: minimum (time, seq) over runnable
    // candidates. During shutdown every live thread is dispatched so it can
    // observe ShutdownSignal.
    Thread* next = nullptr;
    Nanos best_time = 0;
    uint64_t best_seq = 0;
    for (const auto& t : threads_) {
      if (t->state == State::kDone) continue;
      Nanos key;
      if (shutting_down()) {
        key = Now();
      } else if (t->state == State::kReady) {
        key = t->wake_time;
      } else if (t->state == State::kBlocked && t->has_deadline) {
        key = t->deadline;
      } else {
        continue;
      }
      if (next == nullptr || key < best_time ||
          (key == best_time && t->seq < best_seq)) {
        next = t.get();
        best_time = key;
        best_seq = t->seq;
      }
    }

    if (next == nullptr) {
      std::string who;
      for (const auto& t : threads_) {
        if (t->state != State::kDone) {
          if (!who.empty()) who += ", ";
          who += t->name;
        }
      }
      running_ = false;
      throw std::runtime_error("SimEnv deadlock: blocked threads [" + who +
                               "] with no runnable candidate");
    }

    if (best_time > Now()) now_.store(best_time, std::memory_order_relaxed);
    if (next->state == State::kBlocked) {
      // Timed wait expired (or shutdown is flushing a blocked thread).
      next->timed_out = next->has_deadline;
      next->has_deadline = false;
    }
    next->state = State::kRunning;
    next->cv.notify_one();
    sched_cv_.wait(l, [&] { return next->state != State::kRunning; });
  }
  running_ = false;
  l.unlock();
  for (auto& t : threads_) {
    if (t->real.joinable()) t->real.join();
  }
}

// ---------------- SimMutex ----------------

void SimMutex::LockLocked(std::unique_lock<std::mutex>& lock, SimEnv* env,
                          SimEnv::Thread* self) {
  if (env->shutting_down()) {
    // Teardown: ownership discipline no longer matters; let unwinding guards
    // pair up without blocking on threads that will never run again.
    owner_ = self;
    return;
  }
  assert(owner_ != self && "recursive SimMutex lock");
  if (owner_ == nullptr) {
    owner_ = self;
    return;
  }
  waiters_.push_back(self);
  env->BlockCurrentLocked(lock, self, false, 0);
  assert(owner_ == self);
}

void SimMutex::UnlockLocked(SimEnv* env) {
  if (owner_ != tls_current && env->shutting_down()) {
    // A guard unwinding through ShutdownSignal may not actually hold the
    // mutex (e.g. interrupted inside SimCondVar::Wait before re-acquiring).
    return;
  }
  assert(owner_ == tls_current && "unlocking a SimMutex not held");
  // FIFO handoff; skip any waiter flushed by shutdown.
  while (!waiters_.empty()) {
    SimEnv::Thread* next = waiters_.front();
    waiters_.pop_front();
    if (next->state == SimEnv::State::kBlocked) {
      owner_ = next;
      env->WakeLocked(next);
      return;
    }
  }
  owner_ = nullptr;
}

void SimMutex::Lock() {
  SimEnv* env = SimEnv::Current();
  assert(env != nullptr);
  std::unique_lock<std::mutex> l(env->mu_);
  LockLocked(l, env, tls_current);
}

void SimMutex::Unlock() {
  SimEnv* env = SimEnv::Current();
  assert(env != nullptr);
  std::lock_guard<std::mutex> l(env->mu_);
  UnlockLocked(env);
}

bool SimMutex::HeldByCurrent() const { return owner_ == tls_current; }

// ---------------- SimCondVar ----------------

void SimCondVar::Wait(SimMutex& m) {
  SimEnv* env = SimEnv::Current();
  assert(env != nullptr);
  SimEnv::Thread* self = tls_current;
  std::unique_lock<std::mutex> l(env->mu_);
  waiters_.push_back(self);
  m.UnlockLocked(env);
  env->BlockCurrentLocked(l, self, false, 0);
  m.LockLocked(l, env, self);
}

bool SimCondVar::WaitFor(SimMutex& m, Nanos timeout) {
  SimEnv* env = SimEnv::Current();
  assert(env != nullptr);
  SimEnv::Thread* self = tls_current;
  std::unique_lock<std::mutex> l(env->mu_);
  waiters_.push_back(self);
  m.UnlockLocked(env);
  env->BlockCurrentLocked(l, self, true, env->Now() + timeout);
  if (self->timed_out) {
    auto it = std::find(waiters_.begin(), waiters_.end(), self);
    if (it != waiters_.end()) waiters_.erase(it);
  }
  m.LockLocked(l, env, self);
  return !self->timed_out;
}

void SimCondVar::NotifyOne() {
  SimEnv* env = SimEnv::Current();
  assert(env != nullptr);
  std::lock_guard<std::mutex> l(env->mu_);
  while (!waiters_.empty()) {
    SimEnv::Thread* t = waiters_.front();
    waiters_.pop_front();
    if (t->state == SimEnv::State::kBlocked) {
      env->WakeLocked(t);
      return;
    }
  }
}

void SimCondVar::NotifyAll() {
  SimEnv* env = SimEnv::Current();
  assert(env != nullptr);
  std::lock_guard<std::mutex> l(env->mu_);
  while (!waiters_.empty()) {
    SimEnv::Thread* t = waiters_.front();
    waiters_.pop_front();
    if (t->state == SimEnv::State::kBlocked) env->WakeLocked(t);
  }
}

}  // namespace kvaccel::sim
