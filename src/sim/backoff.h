// Decorrelated-jitter retry backoff (virtual time).
//
// Exponential backoff without jitter makes N shards/nodes that hit the same
// transient fault retry in lockstep: every retry wave lands on the device at
// the same virtual instant and collides again. NextDecorrelatedDelay spreads
// the waves with the "decorrelated jitter" recurrence
//
//   delay_0 = base
//   delay_n = min(cap, uniform(base, prev * 3))
//
// which keeps the expected delay growing roughly exponentially while
// decorrelating concurrent retriers, and bounds every delay by `cap` so a
// long fault can't push a single sleep into the minutes. Deterministic: the
// spread is a pure function of the caller's Random64 stream, so a pinned
// seed reproduces the exact schedule.
#pragma once

#include <algorithm>

#include "common/random.h"
#include "common/units.h"

namespace kvaccel::sim {

// Returns the next retry delay. `prev` is the delay used for the previous
// attempt (0 for the first retry, which always gets `base`). `rng` must be
// owned by the caller; each retrier keeps its own stream so concurrent
// backoffs decorrelate.
inline Nanos NextDecorrelatedDelay(Random64* rng, Nanos base, Nanos cap,
                                   Nanos prev) {
  if (base == 0) base = 1;
  if (cap < base) cap = base;
  if (prev == 0) return base;
  if (prev > cap) prev = cap;
  // uniform over [base, prev * 3]; prev >= base so the span is well-formed.
  Nanos span = prev * 3 - base + 1;
  Nanos next = base + rng->Uniform(span);
  return std::min(next, cap);
}

}  // namespace kvaccel::sim
