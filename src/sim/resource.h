// RateResource: a FIFO bandwidth server modeling a transfer medium — the PCIe
// link, a NAND channel, the device DRAM bus. A Transfer() blocks the calling
// simulated thread behind earlier transfers (deterministic FIFO order under
// the cooperative scheduler) for bytes/rate seconds and logs traffic into a
// per-second TimeSeries, which is how the reproduction "measures Intel PCM".
//
// State is mutated only between scheduler yield points, so no locking is
// required (see SimEnv header).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>

#include "common/units.h"
#include "sim/sim_env.h"
#include "sim/timeseries.h"

namespace kvaccel::sim {

class RateResource {
 public:
  RateResource(SimEnv* env, std::string name, double bytes_per_sec)
      : env_(env), name_(std::move(name)), bytes_per_sec_(bytes_per_sec) {
    assert(bytes_per_sec > 0);
  }

  // Blocks the calling simulated thread until `bytes` have moved through the
  // resource. Returns the virtual completion time.
  Nanos Transfer(uint64_t bytes) {
    if (bytes == 0) return env_->Now();
    double start = std::max(static_cast<double>(env_->Now()), busy_until_ns_);
    double dur = TransferNanosExact(bytes, bytes_per_sec_);
    double end = start + dur;
    busy_until_ns_ = end;
    total_bytes_ += bytes;
    busy_total_ns_ += dur;
    traffic_.AddRange(static_cast<Nanos>(start), static_cast<Nanos>(end),
                      static_cast<double>(bytes));
    traffic_fine_.AddRange(static_cast<Nanos>(start), static_cast<Nanos>(end),
                           static_cast<double>(bytes));
    if (busy_callback_) {
      busy_callback_(static_cast<Nanos>(start), static_cast<Nanos>(end),
                     bytes);
    }
    env_->SleepUntil(static_cast<Nanos>(end + 0.999));
    return env_->Now();
  }

  // Accounts traffic and occupies the resource without blocking the caller
  // past `bytes`' completion — used for fire-and-forget DMA where the device
  // side tracks completion separately. Returns completion time.
  Nanos TransferAsync(uint64_t bytes) {
    if (bytes == 0) return env_->Now();
    double start = std::max(static_cast<double>(env_->Now()), busy_until_ns_);
    double end = start + TransferNanosExact(bytes, bytes_per_sec_);
    busy_until_ns_ = end;
    total_bytes_ += bytes;
    busy_total_ns_ += end - start;
    traffic_.AddRange(static_cast<Nanos>(start), static_cast<Nanos>(end),
                      static_cast<double>(bytes));
    traffic_fine_.AddRange(static_cast<Nanos>(start), static_cast<Nanos>(end),
                           static_cast<double>(bytes));
    if (busy_callback_) {
      busy_callback_(static_cast<Nanos>(start), static_cast<Nanos>(end),
                     bytes);
    }
    return static_cast<Nanos>(end + 0.999);
  }

  double bytes_per_sec() const { return bytes_per_sec_; }

  // Fine-grained traffic series (125 ms buckets): the scale-adjusted
  // equivalent of Intel PCM's 1 s sampling when experiments shrink by ~8x.
  const TimeSeries& traffic_fine() const { return traffic_fine_; }
  void set_bytes_per_sec(double r) {
    assert(r > 0);
    bytes_per_sec_ = r;
  }

  uint64_t total_bytes() const { return total_bytes_; }
  const std::string& name() const { return name_; }
  const TimeSeries& traffic() const { return traffic_; }
  TimeSeries& traffic() { return traffic_; }

  // Earliest time a new transfer could start.
  Nanos busy_until() const { return static_cast<Nanos>(busy_until_ns_); }

  // Cumulative time the medium has spent transferring (the `*.busy_ns`
  // metric): transfers are FIFO and never overlap, so this is exact.
  Nanos busy_ns() const { return static_cast<Nanos>(busy_total_ns_); }

  // Observes every transfer's [start, end) busy window as it is scheduled.
  // The tracing layer hooks this to draw per-link busy bands; the resource
  // itself stays ignorant of obs.
  using BusyCallback = std::function<void(Nanos start, Nanos end,
                                          uint64_t bytes)>;
  void set_busy_callback(BusyCallback cb) { busy_callback_ = std::move(cb); }

 private:
  SimEnv* env_;
  std::string name_;
  double bytes_per_sec_;
  double busy_until_ns_ = 0;  // fractional ns to avoid rounding drift
  double busy_total_ns_ = 0;
  uint64_t total_bytes_ = 0;
  BusyCallback busy_callback_;
  TimeSeries traffic_;
  TimeSeries traffic_fine_{kNanosPerSec / 8};
};

}  // namespace kvaccel::sim
