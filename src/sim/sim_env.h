// Deterministic cooperative discrete-event executor.
//
// Every actor in the reproduction — db_bench client threads, the LSM flush
// and compaction workers, the KVACCEL detector/rollback threads, the SSD
// firmware — is a *simulated thread*: a real std::thread whose execution is
// serialized by this scheduler so that exactly one runs at any instant,
// ordered by virtual wake-up time (ties broken by spawn order). Virtual time
// is a uint64 nanosecond clock that only the scheduler advances.
//
// This gives three properties the evaluation needs:
//  1. Determinism — identical runs produce bit-identical time series.
//  2. Speed — 600 virtual seconds of a 150 Kops/s workload executes in
//     seconds of wall-clock, because "sleeping" is just a clock jump.
//  3. Natural blocking code — LSM/SSD code is written with ordinary
//     mutex/condvar idioms (SimMutex/SimCondVar), not callbacks.
//
// Threads may interact only through the Sim* primitives; plain std::mutex
// inside simulated code would deadlock the cooperative schedule.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"

namespace kvaccel::obs {
class Tracer;
}  // namespace kvaccel::obs

namespace kvaccel::sim {

// Thrown out of blocked daemon threads when the environment shuts down; the
// thread wrapper catches it. Structured shutdown (explicit stop flags) is the
// primary mechanism — this is the backstop.
struct ShutdownSignal {};

class SimMutex;
class SimCondVar;
class FaultInjector;

class SimEnv {
 public:
  struct Thread;

  SimEnv();
  ~SimEnv();
  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  // Current virtual time in nanoseconds.
  Nanos Now() const { return now_.load(std::memory_order_relaxed); }

  // Spawns a simulated thread, ready to run at the current virtual time.
  // Daemon threads do not keep Run() alive: once only daemons remain they
  // receive ShutdownSignal at their next blocking call.
  Thread* Spawn(std::string name, std::function<void()> fn,
                bool daemon = false);

  // Scheduler loop; call from the owning (non-simulated) thread. Returns when
  // every non-daemon thread has finished. Throws std::runtime_error on
  // deadlock (no runnable thread, non-daemon threads still blocked).
  void Run();

  // ---- Callable only from within simulated threads ----
  void SleepFor(Nanos d);
  void SleepUntil(Nanos t);
  void Yield() { SleepFor(0); }
  // Blocks until `t` finishes.
  void Join(Thread* t);

  // Environment of the simulated thread currently executing (nullptr outside).
  static SimEnv* Current();
  // Name of the currently executing simulated thread ("" outside).
  static const std::string& CurrentThreadName();

  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_relaxed);
  }

  // Optional fault injector (see sim/fault.h). Not owned; null by default.
  // Components reach it through their SimEnv* so arming faults needs no
  // constructor plumbing.
  void set_fault_injector(FaultInjector* f) { fault_injector_ = f; }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // Optional span tracer (see obs/trace.h). Not owned; null by default, in
  // which case instrumentation sites reduce to a pointer comparison.
  // Forward-declared so sim never links against obs.
  void set_tracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  friend class SimMutex;
  friend class SimCondVar;

  enum class State { kReady, kRunning, kBlocked, kDone };

  void ThreadMain(Thread* t);
  // Parks the current thread as kBlocked; if `deadline` is non-zero-optional
  // the scheduler resumes it at that virtual time with timed_out set.
  // Precondition: caller holds `lock` on mu_. Returns with the lock held and
  // the thread kRunning again.
  void BlockCurrentLocked(std::unique_lock<std::mutex>& lock, Thread* self,
                          bool has_deadline, Nanos deadline);
  void SleepUntilLocked(std::unique_lock<std::mutex>& lock, Thread* self,
                        Nanos t);
  // Moves a blocked thread to kReady at the current time. mu_ must be held.
  void WakeLocked(Thread* t);
  // Smallest (time, seq) over runnable candidates other than `exclude`.
  bool MinCandidateLocked(const Thread* exclude, Nanos* time,
                          uint64_t* seq) const;
  void CheckInSimThread() const;

  mutable std::mutex mu_;
  std::condition_variable sched_cv_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::atomic<Nanos> now_{0};
  std::atomic<bool> shutting_down_{false};
  bool running_ = false;
  uint64_t next_seq_ = 0;
  FaultInjector* fault_injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

struct SimEnv::Thread {
  std::string name;
  uint64_t seq = 0;
  bool daemon = false;
  std::function<void()> fn;
  std::thread real;
  State state = State::kReady;
  Nanos wake_time = 0;       // when kReady: earliest virtual run time
  bool has_deadline = false;  // when kBlocked: timed wait in progress
  Nanos deadline = 0;
  bool timed_out = false;     // set by scheduler when a timed wait expires
  std::condition_variable cv;
  std::deque<Thread*> joiners;
};

// Cooperative mutex for simulated threads. FIFO handoff keeps scheduling
// deterministic.
class SimMutex {
 public:
  SimMutex() = default;
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  void Lock();
  void Unlock();
  // True iff held by the calling simulated thread.
  bool HeldByCurrent() const;

 private:
  friend class SimCondVar;
  void LockLocked(std::unique_lock<std::mutex>& lock, SimEnv* env,
                  SimEnv::Thread* self);
  void UnlockLocked(SimEnv* env);

  SimEnv::Thread* owner_ = nullptr;
  std::deque<SimEnv::Thread*> waiters_;
};

class SimLockGuard {
 public:
  explicit SimLockGuard(SimMutex& m) : m_(m) { m_.Lock(); }
  ~SimLockGuard() { m_.Unlock(); }
  SimLockGuard(const SimLockGuard&) = delete;
  SimLockGuard& operator=(const SimLockGuard&) = delete;

 private:
  SimMutex& m_;
};

// Condition variable for simulated threads. Wakeups are FIFO.
class SimCondVar {
 public:
  SimCondVar() = default;
  SimCondVar(const SimCondVar&) = delete;
  SimCondVar& operator=(const SimCondVar&) = delete;

  void Wait(SimMutex& m);
  // Returns false if the timeout elapsed before a notification.
  bool WaitFor(SimMutex& m, Nanos timeout);
  void NotifyOne();
  void NotifyAll();

 private:
  std::deque<SimEnv::Thread*> waiters_;
};

}  // namespace kvaccel::sim
