// CpuPool: a k-server CPU model. Consume(work) occupies the least-loaded core
// for `work` virtual nanoseconds, queueing behind earlier work when all cores
// are busy, and blocks the calling simulated thread until its work retires.
//
// Busy-time accounting yields the CPU-utilisation percentages behind the
// paper's Efficiency metric (Eq. 1) and the ADOC-uses-more-CPU result
// (Fig. 12c). The host pool models the 8 cores of Table II; a separate 1-core
// pool models the Cosmos+ ARM Cortex-A9 running Dev-LSM firmware.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/sim_env.h"
#include "sim/timeseries.h"

namespace kvaccel::sim {

class CpuPool {
 public:
  CpuPool(SimEnv* env, std::string name, int cores,
          double speed_factor = 1.0)
      : env_(env), name_(std::move(name)),
        speed_factor_(speed_factor), core_free_ns_(cores, 0.0) {
    assert(cores > 0);
    assert(speed_factor > 0);
  }

  // Executes `work_ns` of nominal CPU work (scaled by 1/speed_factor — a
  // 0.5-speed core takes twice as long). Blocks until the work completes.
  Nanos Consume(double work_ns) {
    if (work_ns <= 0) return env_->Now();
    double scaled = work_ns / speed_factor_;
    size_t core = PickCore();
    double start =
        std::max(static_cast<double>(env_->Now()), core_free_ns_[core]);
    double end = start + scaled;
    core_free_ns_[core] = end;
    busy_ns_ += scaled;
    busy_series_.AddRange(static_cast<Nanos>(start), static_cast<Nanos>(end),
                          scaled);
    env_->SleepUntil(static_cast<Nanos>(end + 0.999));
    return env_->Now();
  }

  // Accounts CPU busy-time without modeling queueing delay for the caller —
  // for sub-microsecond bookkeeping costs (Table VI) where queueing at op
  // granularity is below the model's resolution. The caller adds the latency
  // itself (typically via an accumulated sleep).
  void Charge(double work_ns) {
    if (work_ns <= 0) return;
    double scaled = work_ns / speed_factor_;
    busy_ns_ += scaled;
    Nanos now = env_->Now();
    busy_series_.AddRange(now, now + static_cast<Nanos>(scaled + 0.5), scaled);
  }

  int cores() const { return static_cast<int>(core_free_ns_.size()); }
  double busy_seconds() const { return busy_ns_ / 1e9; }
  const std::string& name() const { return name_; }
  const TimeSeries& busy_series() const { return busy_series_; }

  // Mean utilisation in [0,1] over [start, end).
  double UtilizationBetween(Nanos start, Nanos end) const {
    if (end <= start) return 0.0;
    double busy = busy_series_.SumBetween(start, end);
    double capacity =
        static_cast<double>(end - start) * static_cast<double>(cores());
    return std::min(1.0, busy / capacity);
  }

 private:
  size_t PickCore() {
    size_t best = 0;
    for (size_t i = 1; i < core_free_ns_.size(); i++) {
      if (core_free_ns_[i] < core_free_ns_[best]) best = i;
    }
    return best;
  }

  SimEnv* env_;
  std::string name_;
  double speed_factor_;
  std::vector<double> core_free_ns_;
  double busy_ns_ = 0;
  TimeSeries busy_series_;
};

}  // namespace kvaccel::sim
