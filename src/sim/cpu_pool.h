// CpuPool: a k-server CPU model. Consume(work) occupies the least-loaded core
// for `work` virtual nanoseconds, queueing behind earlier work when all cores
// are busy, and blocks the calling simulated thread until its work retires.
//
// Busy-time accounting yields the CPU-utilisation percentages behind the
// paper's Efficiency metric (Eq. 1) and the ADOC-uses-more-CPU result
// (Fig. 12c). The host pool models the 8 cores of Table II; a separate 1-core
// pool models the Cosmos+ ARM Cortex-A9 running Dev-LSM firmware.
//
// Accounting is exact: every Consume books one closed busy interval on the
// core that ran it (intervals on a core never overlap — core_free_ns_ is
// monotone per core — and back-to-back intervals coalesce), so
// UtilizationBetween / CoreUtilizationBetween over an arbitrary virtual-time
// window return the true busy fraction, not a bucket approximation. The
// NDP OffloadPlanner keys its host-vs-device placement off short trailing
// windows of this signal (DESIGN.md §13). Charge() costs are sub-resolution
// bookkeeping without a core assignment; concurrent charges may overlap one
// another, so they are accumulated additively in fine (10 ms) prorated
// buckets rather than as intervals (utilization is clamped to 1).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/sim_env.h"
#include "sim/timeseries.h"

namespace kvaccel::sim {

class CpuPool {
 public:
  CpuPool(SimEnv* env, std::string name, int cores,
          double speed_factor = 1.0)
      : env_(env), name_(std::move(name)),
        speed_factor_(speed_factor), core_free_ns_(cores, 0.0),
        core_busy_(static_cast<size_t>(cores)) {
    assert(cores > 0);
    assert(speed_factor > 0);
  }

  // Executes `work_ns` of nominal CPU work (scaled by 1/speed_factor — a
  // 0.5-speed core takes twice as long). Blocks until the work completes.
  Nanos Consume(double work_ns) {
    if (work_ns <= 0) return env_->Now();
    double scaled = work_ns / speed_factor_;
    size_t core = PickCore();
    double start =
        std::max(static_cast<double>(env_->Now()), core_free_ns_[core]);
    double end = start + scaled;
    core_free_ns_[core] = end;
    busy_ns_ += scaled;
    busy_series_.AddRange(static_cast<Nanos>(start), static_cast<Nanos>(end),
                          scaled);
    AppendInterval(&core_busy_[core], start, end);
    env_->SleepUntil(static_cast<Nanos>(end + 0.999));
    return env_->Now();
  }

  // Accounts CPU busy-time without modeling queueing delay for the caller —
  // for sub-microsecond bookkeeping costs (Table VI) where queueing at op
  // granularity is below the model's resolution. The caller adds the latency
  // itself (typically via an accumulated sleep).
  void Charge(double work_ns) {
    if (work_ns <= 0) return;
    double scaled = work_ns / speed_factor_;
    busy_ns_ += scaled;
    Nanos now = env_->Now();
    busy_series_.AddRange(now, now + static_cast<Nanos>(scaled + 0.5), scaled);
    charge_series_.AddRange(now, now + static_cast<Nanos>(scaled + 0.5),
                            scaled);
  }

  int cores() const { return static_cast<int>(core_free_ns_.size()); }
  double busy_seconds() const { return busy_ns_ / 1e9; }
  const std::string& name() const { return name_; }
  const TimeSeries& busy_series() const { return busy_series_; }

  // Exact busy nanoseconds core `core` spent on Consume work inside
  // [start, end) — interval-clipped, not bucketed.
  double CoreBusyBetween(int core, Nanos start, Nanos end) const {
    return OverlapSum(core_busy_[static_cast<size_t>(core)],
                      static_cast<double>(start), static_cast<double>(end));
  }

  // Exact utilisation of one core in [0, 1] over [start, end).
  double CoreUtilizationBetween(int core, Nanos start, Nanos end) const {
    if (end <= start) return 0.0;
    return CoreBusyBetween(core, start, end) /
           static_cast<double>(end - start);
  }

  // Mean pool utilisation in [0,1] over [start, end): exact sum of per-core
  // busy intervals plus Charge() costs, over the window's capacity. Clamped
  // only because concurrent Charges may overlap one another.
  double UtilizationBetween(Nanos start, Nanos end) const {
    if (end <= start) return 0.0;
    double busy = charge_series_.ProratedSumBetween(start, end);
    for (const auto& core : core_busy_) {
      busy += OverlapSum(core, static_cast<double>(start),
                         static_cast<double>(end));
    }
    double capacity =
        static_cast<double>(end - start) * static_cast<double>(cores());
    return std::min(1.0, busy / capacity);
  }

  // Mean per-core backlog at instant `now`: booked-but-unfinished work, in
  // nanoseconds. >0 means new work queues before it runs — the saturation
  // signal the offload planner reads alongside trailing utilisation.
  double BacklogNanos(Nanos now) const {
    double backlog = 0;
    for (double free_at : core_free_ns_) {
      backlog += std::max(0.0, free_at - static_cast<double>(now));
    }
    return backlog / static_cast<double>(cores());
  }

 private:
  struct Interval {
    double start;
    double end;
  };

  // Intervals are appended in non-decreasing start order per list; a new
  // interval starting at (or before) the previous end extends it, so a
  // saturated core stays O(1) intervals per busy run.
  static void AppendInterval(std::vector<Interval>* list, double start,
                             double end) {
    if (!list->empty() && start <= list->back().end) {
      list->back().end = std::max(list->back().end, end);
      return;
    }
    list->push_back({start, end});
  }

  static double OverlapSum(const std::vector<Interval>& list, double start,
                           double end) {
    // Intervals are start-sorted: binary-search the first that can overlap.
    auto it = std::lower_bound(
        list.begin(), list.end(), start,
        [](const Interval& iv, double t) { return iv.end <= t; });
    double sum = 0;
    for (; it != list.end() && it->start < end; ++it) {
      sum += std::min(end, it->end) - std::max(start, it->start);
    }
    return sum;
  }

  size_t PickCore() {
    size_t best = 0;
    for (size_t i = 1; i < core_free_ns_.size(); i++) {
      if (core_free_ns_[i] < core_free_ns_[best]) best = i;
    }
    return best;
  }

  SimEnv* env_;
  std::string name_;
  double speed_factor_;
  std::vector<double> core_free_ns_;
  double busy_ns_ = 0;
  TimeSeries busy_series_;
  // Charge() costs at 10 ms resolution; read back prorated so short planner
  // windows see the right fraction of a boundary bucket.
  TimeSeries charge_series_{FromMillis(10)};
  std::vector<std::vector<Interval>> core_busy_;
};

}  // namespace kvaccel::sim
