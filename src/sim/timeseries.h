// Bucketed time-series accumulators and interval recorders. These back the
// paper's time-series figures: per-second throughput (Figs 2, 11), per-second
// PCIe traffic (Figs 4, 14), write-stall regions (Fig 4's green boxes) and
// the stall-period bandwidth CDF (Fig 5).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace kvaccel::sim {

// Accumulates double-valued samples into fixed-width time buckets.
// Not internally synchronized: safe under the cooperative scheduler as long
// as callers do not yield mid-update (they don't — updates are plain code).
class TimeSeries {
 public:
  explicit TimeSeries(Nanos bucket_width = kNanosPerSec)
      : bucket_width_(bucket_width) {}

  // Adds `value` at instant `t`.
  void Add(Nanos t, double value) {
    size_t b = static_cast<size_t>(t / bucket_width_);
    EnsureBucket(b);
    buckets_[b] += value;
    total_ += value;
  }

  // Spreads `value` uniformly over [start, end); used for transfers so that a
  // 3-bucket-long DMA contributes to all three buckets proportionally.
  void AddRange(Nanos start, Nanos end, double value) {
    if (end <= start) {
      Add(start, value);
      return;
    }
    double per_ns = value / static_cast<double>(end - start);
    size_t first = static_cast<size_t>(start / bucket_width_);
    size_t last = static_cast<size_t>((end - 1) / bucket_width_);
    EnsureBucket(last);
    for (size_t b = first; b <= last; b++) {
      Nanos bucket_start = static_cast<Nanos>(b) * bucket_width_;
      Nanos bucket_end = bucket_start + bucket_width_;
      Nanos lo = std::max(start, bucket_start);
      Nanos hi = std::min(end, bucket_end);
      buckets_[b] += per_ns * static_cast<double>(hi - lo);
    }
    total_ += value;
  }

  Nanos bucket_width() const { return bucket_width_; }
  size_t NumBuckets() const { return buckets_.size(); }
  double Bucket(size_t i) const { return i < buckets_.size() ? buckets_[i] : 0.0; }
  double total() const { return total_; }
  const std::vector<double>& buckets() const { return buckets_; }

  // Bucket-wise accumulation of another series (shard roll-ups). Bucket
  // widths must match; mismatched series would mis-align instants.
  void MergeFrom(const TimeSeries& other) {
    if (other.bucket_width_ != bucket_width_ || other.buckets_.empty()) return;
    EnsureBucket(other.buckets_.size() - 1);
    for (size_t b = 0; b < other.buckets_.size(); b++) {
      buckets_[b] += other.buckets_[b];
    }
    total_ += other.total_;
  }

  // Sum over [start, end) with boundary buckets prorated by their overlap
  // fraction — assumes a bucket's value is spread uniformly across it (true
  // for AddRange; a point Add is smeared over its bucket). Exact-enough
  // windowed reads for accounting series whose writes are themselves ranges.
  double ProratedSumBetween(Nanos start, Nanos end) const {
    if (end <= start) return 0.0;
    double sum = 0;
    size_t first = static_cast<size_t>(start / bucket_width_);
    size_t last = static_cast<size_t>((end - 1) / bucket_width_);
    last = std::min(last, buckets_.empty() ? 0 : buckets_.size() - 1);
    for (size_t b = first; b < buckets_.size() && b <= last; b++) {
      Nanos bucket_start = static_cast<Nanos>(b) * bucket_width_;
      Nanos bucket_end = bucket_start + bucket_width_;
      Nanos lo = std::max(start, bucket_start);
      Nanos hi = std::min(end, bucket_end);
      if (hi <= lo) continue;
      sum += buckets_[b] * static_cast<double>(hi - lo) /
             static_cast<double>(bucket_width_);
    }
    return sum;
  }

  // Sum of bucket values over the instants covered by [start, end), at bucket
  // granularity (buckets whose start lies in the range).
  double SumBetween(Nanos start, Nanos end) const {
    double sum = 0;
    for (size_t b = 0; b < buckets_.size(); b++) {
      Nanos bucket_start = static_cast<Nanos>(b) * bucket_width_;
      if (bucket_start >= start && bucket_start < end) sum += buckets_[b];
    }
    return sum;
  }

 private:
  void EnsureBucket(size_t b) {
    if (b >= buckets_.size()) buckets_.resize(b + 1, 0.0);
  }

  Nanos bucket_width_;
  std::vector<double> buckets_;
  double total_ = 0;
};

// Records half-open time intervals (e.g. write-stall regions).
class IntervalRecorder {
 public:
  struct Interval {
    Nanos start;
    Nanos end;
  };

  // Begin/End must alternate. A Begin with no matching End is closed by
  // CloseAt().
  void Begin(Nanos t) {
    if (open_) return;  // idempotent: nested begins merge
    open_ = true;
    open_start_ = t;
  }

  void End(Nanos t) {
    if (!open_) return;
    open_ = false;
    if (t > open_start_) intervals_.push_back({open_start_, t});
  }

  void CloseAt(Nanos t) {
    if (open_) End(t);
  }

  bool open() const { return open_; }
  const std::vector<Interval>& intervals() const { return intervals_; }

  Nanos TotalDuration() const {
    Nanos total = 0;
    for (const auto& iv : intervals_) total += iv.end - iv.start;
    return total;
  }

  bool Contains(Nanos t) const {
    for (const auto& iv : intervals_) {
      if (t >= iv.start && t < iv.end) return true;
    }
    return open_ && t >= open_start_;
  }

  size_t Count() const { return intervals_.size(); }

 private:
  bool open_ = false;
  Nanos open_start_ = 0;
  std::vector<Interval> intervals_;
};

}  // namespace kvaccel::sim
