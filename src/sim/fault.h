// Seeded, deterministic fault injection for the simulation.
//
// A FaultInjector is registered on a SimEnv (SimEnv::set_fault_injector) and
// consulted at *named fault sites* sprinkled through the storage stack:
//
//   device    ssd.block.write.transient   BlockWrite fails with IOError
//             ssd.block.read.transient    BlockRead fails with IOError
//             ssd.block.flush.transient   BlockFlush fails with IOError
//             ssd.block.read.timeout      BlockRead stalls ~10ms then IOError
//   dev-lsm   devlsm.put.transient        Put/Delete/PutCompound fail
//             devlsm.get.transient        Get fails
//   fs        simfs.read.bitflip          one bit of the returned payload flips
//             simfs.read.short            read returns a prefix of the request
//             simfs.powercut.torn         DropAllDirty also tears a suffix of
//                                         written-back-but-unflushed bytes
//   crash     crash.wal.post_append       leader commit: after WAL append,
//                                         before sync
//             crash.wal.post_sync         after WAL sync, before memtable apply
//             crash.flush.mid             mid-way through an L0 flush
//             crash.manifest.pre_sync     MANIFEST record appended, not synced
//             crash.manifest.post_sync    MANIFEST synced, version not applied
//             crash.compaction.mid        mid-way through a compaction
//             crash.subcompaction.mid     mid-way through one sub-range of a
//                                         range-partitioned compaction
//             crash.rollback.mid          mid-way through a rollback drain
//             crash.redirect.mid          redirected batch durable on the
//                                         device, metadata records not yet
//                                         flipped
//   net       net.send.transient          NetLink::Send drops the message
//             net.partition.sym           symmetric partition: the wire is cut
//                                         in both directions
//             net.partition.tx            asymmetric partition: outbound
//                                         messages are eaten on the wire
//             net.partition.ack           asymmetric partition: the record is
//                                         applied on the peer but the ack is
//                                         lost on the way back
//             net.delay                   a seeded 100µs–1ms delay spike rides
//                                         on this message
//             net.dup                     the record is delivered (and
//                                         applied) twice
//             net.reorder                 two queued async records swap places
//                                         on the wire
//             crash.net.send.mid          pair-wide power loss while a
//                                         replication record is in flight
//                                         (sent, never applied)
//
// Sites whose name starts with "crash." model whole-machine power loss: when
// one fires the injector latches `crashed`, and while latched every device
// command in the stack fails (checked via SimCrashed()). The test harness
// then closes the DB (tolerating errors), calls SimFs::DropAllDirty(),
// ClearCrash()es the injector, and reopens to verify recovery.
//
// All randomness flows through one seeded Random64 and the simulation is
// single-threaded-at-a-time, so a given (seed, workload) pair replays the
// exact same fault schedule — no mutex needed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"

namespace kvaccel::sim {

class SimEnv;

// When a site should fire. All conditions are ANDed: the hit must land inside
// the virtual-time window (if any), satisfy nth_hit (if set) or the
// probability draw, and the site must not have exhausted max_fires.
struct FaultRule {
  // Fire with this probability per hit (evaluated when nth_hit == 0).
  double probability = 0.0;
  // If non-zero: fire deterministically on exactly the nth hit (1-based)
  // counted from when the rule was armed, instead of the probability draw.
  uint64_t nth_hit = 0;
  // Virtual-time window [start, end); 0/0 means "always".
  Nanos window_start = 0;
  Nanos window_end = 0;
  // Stop firing after this many fires; -1 = unlimited.
  int max_fires = -1;
};

class FaultInjector {
 public:
  FaultInjector(SimEnv* env, uint64_t seed) : env_(env), rng_(seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms (or replaces) the rule for `site`. Hit/fire counters reset.
  void Arm(const std::string& site, const FaultRule& rule);
  void Disarm(const std::string& site);
  // Disarms every site and clears the crash latch. Counters survive so a
  // harness can still report totals.
  void Clear();

  // Called at a fault site. Returns true if the fault fires this hit.
  // Firing a "crash."-prefixed site also latches crashed().
  bool ShouldFail(const std::string& site);

  // Whole-machine crash latch (see file comment).
  bool crashed() const { return crashed_; }
  void ClearCrash() { crashed_ = false; }

  uint64_t hits(const std::string& site) const;
  uint64_t fires(const std::string& site) const;
  uint64_t total_fires() const { return total_fires_; }

  // Deterministic draw in [0, n) from the injector's stream — used by sites
  // that need a payload choice (which bit to flip, where to tear).
  uint64_t Rand(uint64_t n) { return rng_.Uniform(n); }

 private:
  struct SiteState {
    FaultRule rule;
    bool armed = false;
    uint64_t hits = 0;   // since armed
    uint64_t fires = 0;  // since armed
  };

  SimEnv* env_;
  Random64 rng_;
  std::map<std::string, SiteState> sites_;
  bool crashed_ = false;
  uint64_t total_fires_ = 0;
};

// One row of the fault-site catalog: the exact site string checked in code
// plus a one-line description. KnownFaultSites() is the authoritative list
// of every named site sprinkled through the stack — tools print it for
// --list_fault_sites, and a docs-drift test asserts DESIGN.md cites only
// (and all of) the crash.* rows. Keep this table in sync with the header
// comment above when adding a site.
struct FaultSiteInfo {
  const char* site;
  const char* what;
};
const std::vector<FaultSiteInfo>& KnownFaultSites();

// Null-safe site check: false when `env` is null or has no injector armed.
bool FaultAt(SimEnv* env, const std::string& site);

// True while the whole-machine crash latch is set; device commands must fail.
bool SimCrashed(SimEnv* env);

}  // namespace kvaccel::sim
