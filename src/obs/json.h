// Minimal deterministic JSON writer used by the observability subsystem for
// metric snapshots and run reports. Deliberately tiny: no DOM, no parsing —
// a streaming emitter whose output is byte-stable for identical inputs, which
// is what makes run reports diffable across seeds and machines.
//
// Usage:
//   JsonWriter w;
//   w.BeginObject();
//   w.Field("name", "fillrandom");
//   w.Key("series"); w.BeginArray(); w.Double(1.5); w.EndArray();
//   w.EndObject();
//   fputs(w.str().c_str(), f);
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace kvaccel::obs {

class JsonWriter {
 public:
  JsonWriter() { stack_.push_back(kTop); }

  void BeginObject() {
    Sep();
    out_ += '{';
    stack_.push_back(kFirst);
  }
  void EndObject() {
    stack_.pop_back();
    out_ += '}';
  }
  void BeginArray() {
    Sep();
    out_ += '[';
    stack_.push_back(kFirst);
  }
  void EndArray() {
    stack_.pop_back();
    out_ += ']';
  }

  void Key(const std::string& k) {
    Sep();
    AppendEscaped(k);
    out_ += ':';
    pending_value_ = true;
  }

  void String(const std::string& v) {
    Sep();
    AppendEscaped(v);
  }
  void Uint(uint64_t v) {
    Sep();
    char buf[24];
    snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
  }
  void Int(int64_t v) {
    Sep();
    char buf[24];
    snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_ += buf;
  }
  // Fixed "%.10g" format: enough precision for every quantity we report while
  // staying byte-identical across runs. Non-finite values (which JSON cannot
  // represent) are emitted as 0.
  void Double(double v) {
    Sep();
    if (!std::isfinite(v)) {
      out_ += '0';
      return;
    }
    char buf[40];
    snprintf(buf, sizeof(buf), "%.10g", v);
    out_ += buf;
  }
  void Bool(bool v) {
    Sep();
    out_ += v ? "true" : "false";
  }
  void Null() {
    Sep();
    out_ += "null";
  }

  void Field(const std::string& k, const std::string& v) {
    Key(k);
    String(v);
  }
  void Field(const std::string& k, const char* v) {
    Key(k);
    String(v);
  }
  void Field(const std::string& k, uint64_t v) {
    Key(k);
    Uint(v);
  }
  void Field(const std::string& k, int64_t v) {
    Key(k);
    Int(v);
  }
  void Field(const std::string& k, int v) {
    Key(k);
    Int(v);
  }
  void Field(const std::string& k, unsigned v) {
    Key(k);
    Uint(v);
  }
  void Field(const std::string& k, double v) {
    Key(k);
    Double(v);
  }
  void Field(const std::string& k, bool v) {
    Key(k);
    Bool(v);
  }

  const std::string& str() const { return out_; }

  static void Escape(const std::string& in, std::string* out) {
    out->push_back('"');
    for (char c : in) {
      switch (c) {
        case '"':
          *out += "\\\"";
          break;
        case '\\':
          *out += "\\\\";
          break;
        case '\n':
          *out += "\\n";
          break;
        case '\r':
          *out += "\\r";
          break;
        case '\t':
          *out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            snprintf(buf, sizeof(buf), "\\u%04x", c);
            *out += buf;
          } else {
            out->push_back(c);
          }
      }
    }
    out->push_back('"');
  }

 private:
  enum State : uint8_t { kTop, kFirst, kRest };

  // Emits the separating comma demanded by the enclosing container, unless
  // this value completes a just-written key.
  void Sep() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (stack_.back() == kFirst) {
      stack_.back() = kRest;
    } else if (stack_.back() == kRest) {
      out_ += ',';
    }
  }

  void AppendEscaped(const std::string& s) { Escape(s, &out_); }

  std::string out_;
  std::vector<State> stack_;
  bool pending_value_ = false;
};

}  // namespace kvaccel::obs
