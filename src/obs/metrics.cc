#include "obs/metrics.h"

#include "obs/json.h"

namespace kvaccel::obs {

HistogramSummary HistogramSummary::From(const Histogram& h) {
  HistogramSummary s;
  s.count = h.Count();
  s.min = h.Min();
  s.max = h.Max();
  s.avg = h.Average();
  s.p50 = h.Percentile(50);
  s.p99 = h.Percentile(99);
  s.p999 = h.Percentile(99.9);
  return s;
}

void MetricsSnapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, v] : counters) w->Field(name, v);
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, v] : gauges) w->Field(name, v);
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, h] : histograms) {
    w->Key(name);
    w->BeginObject();
    w->Field("count", h.count);
    w->Field("min", h.min);
    w->Field("max", h.max);
    w->Field("avg", h.avg);
    w->Field("p50", h.p50);
    w->Field("p99", h.p99);
    w->Field("p999", h.p999);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.str();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) snap.SetHistogram(name, h);
  for (const auto& source : sources_) source(&snap);
  return snap;
}

}  // namespace kvaccel::obs
