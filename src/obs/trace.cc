#include "obs/trace.h"

#include <cerrno>
#include <cinttypes>
#include <cstring>

#include "obs/json.h"

namespace kvaccel::obs {

Tracer::Tracer(sim::SimEnv* env, size_t max_events)
    : env_(env), max_events_(max_events) {
  events_.reserve(max_events_ < (1u << 16) ? max_events_ : (1u << 16));
}

uint32_t Tracer::RegisterTrack(const std::string& name) {
  for (size_t i = 0; i < track_names_.size(); i++) {
    if (track_names_[i] == name) return static_cast<uint32_t>(i);
  }
  track_names_.push_back(name);
  return static_cast<uint32_t>(track_names_.size() - 1);
}

uint64_t Tracer::CountEvents(const char* name) const {
  uint64_t n = 0;
  for (const Event& e : events_) {
    if (strcmp(e.name, name) == 0) n++;
  }
  return n;
}

bool Tracer::WriteChromeTrace(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = path + ": " + std::strerror(errno);
    return false;
  }
  WriteChromeTrace(f);
  bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok && error != nullptr) *error = path + ": write failed";
  return ok;
}

void Tracer::WriteChromeTrace(std::FILE* f) {
  for (const auto& flusher : flushers_) flusher();

  fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  // Metadata: process name plus one named, ordered thread per track.
  fprintf(f,
          "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"kvaccel-sim\"}}");
  for (size_t i = 0; i < track_names_.size(); i++) {
    std::string escaped;
    JsonWriter::Escape(track_names_[i], &escaped);
    unsigned tid = static_cast<unsigned>(i) + 1;
    fprintf(f,
            ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
            "\"args\":{\"name\":%s}}",
            tid, escaped.c_str());
    fprintf(f,
            ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
            "\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%u}}",
            tid, tid);
  }
  for (const Event& e : events_) {
    unsigned tid = e.track + 1;
    // Chrome timestamps are microseconds; three decimals keep 1 ns exact.
    double ts_us = static_cast<double>(e.ts) / 1000.0;
    fprintf(f, ",\n{\"ph\":\"%c\",\"pid\":1,\"tid\":%u,\"ts\":%.3f", e.phase,
            tid, ts_us);
    if (e.phase == 'X') {
      fprintf(f, ",\"dur\":%.3f", static_cast<double>(e.dur) / 1000.0);
    }
    if (e.phase == 'i') {
      fprintf(f, ",\"s\":\"t\"");
    }
    fprintf(f, ",\"cat\":\"sim\",\"name\":\"%s\"", e.name);
    if (e.bytes != 0) {
      fprintf(f, ",\"args\":{\"bytes\":%" PRIu64 "}", e.bytes);
    }
    fprintf(f, "}");
  }
  fprintf(f,
          "\n],\"otherData\":{\"clock\":\"virtual\",\"dropped_events\":%" PRIu64
          "}}\n",
          dropped_);
}

}  // namespace kvaccel::obs
