// Virtual-time span tracer emitting Chrome trace-event-format JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev.
//
// Each subsystem registers one or more named *tracks* (rendered as threads of
// a single "kvaccel-sim" process, in registration order) and records events
// against them:
//   Begin/End   B/E span pair (stall windows, redirect windows)
//   Complete    X span with explicit [start, end) (flush, compaction phases)
//   Instant     i marker (memtable switch, device reset)
//
// Cost model:
//  - Disabled: no Tracer is attached to the SimEnv; every instrumentation
//    site is a `tracer == nullptr` branch. No allocation, no virtual call,
//    no clock read on the hot path.
//  - Enabled: one POD append into a pre-reserved bounded buffer. Event names
//    must be string literals (the tracer stores the pointer, never copies),
//    so recording never allocates either. When the buffer fills, further
//    events are counted in dropped_events() and discarded — a run can never
//    OOM because of tracing.
//
// High-frequency activity (per-write WAL appends, per-page NAND/PCIe DMA)
// goes through CoalescingSpan, which merges busy intervals separated by less
// than a configurable gap into one span, turning millions of micro-transfers
// into a readable "link busy" band whose gaps are the idle windows the paper
// reads off Fig. 4.
//
// Timestamps are virtual nanoseconds from SimEnv::Now(), emitted in the
// microseconds Chrome expects with 1 ns resolution (three decimals), so a
// trace is bit-identical across identical runs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/sim_env.h"

namespace kvaccel::obs {

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 20;

  explicit Tracer(sim::SimEnv* env, size_t max_events = kDefaultCapacity);

  sim::SimEnv* env() const { return env_; }

  // Returns a stable track id; registering the same name twice returns the
  // same id. Track ids map to Chrome tids in registration order, which is
  // deterministic because world construction is.
  uint32_t RegisterTrack(const std::string& name);

  // `name` must be a string literal (or otherwise outlive the tracer).
  void Begin(uint32_t track, const char* name) {
    Push(Event{env_->Now(), 0, name, track, 'B', 0});
  }
  void End(uint32_t track, const char* name) {
    Push(Event{env_->Now(), 0, name, track, 'E', 0});
  }
  void Complete(uint32_t track, const char* name, Nanos start, Nanos end,
                uint64_t bytes = 0) {
    if (end < start) end = start;
    Push(Event{start, end - start, name, track, 'X', bytes});
  }
  void Instant(uint32_t track, const char* name) {
    Push(Event{env_->Now(), 0, name, track, 'i', 0});
  }

  // Registered callbacks run at serialization time, before events are
  // written — CoalescingSpans owned by long-lived components (the SSD) flush
  // their open interval here. The callback's target must still be alive when
  // the trace is written; short-lived components (the DB) must instead flush
  // explicitly on Close and not register here.
  void AddFlusher(std::function<void()> flusher) {
    flushers_.push_back(std::move(flusher));
  }

  size_t num_events() const { return events_.size(); }
  uint64_t dropped_events() const { return dropped_; }
  size_t num_tracks() const { return track_names_.size(); }

  // Test helpers: scan the buffer for events by exact name.
  bool HasEvent(const char* name) const { return CountEvents(name) > 0; }
  uint64_t CountEvents(const char* name) const;

  // Writes `{"traceEvents":[...]}`. Returns false (with *error set) if the
  // file cannot be written. Runs flushers first.
  bool WriteChromeTrace(const std::string& path, std::string* error = nullptr);
  void WriteChromeTrace(std::FILE* f);

 private:
  struct Event {
    Nanos ts;
    Nanos dur;
    const char* name;
    uint32_t track;
    char phase;  // 'B' | 'E' | 'X' | 'i'
    uint64_t bytes;
  };

  void Push(const Event& e) {
    if (events_.size() >= max_events_) {
      dropped_++;
      return;
    }
    events_.push_back(e);
  }

  sim::SimEnv* env_;
  size_t max_events_;
  std::vector<Event> events_;
  std::vector<std::string> track_names_;
  std::vector<std::function<void()>> flushers_;
  uint64_t dropped_ = 0;
};

// Merges bursts of short busy intervals into single spans. Intervals must
// arrive in non-decreasing start order (true for any FIFO resource). Safe to
// call when not Init-ed: every operation is a no-op, so call sites need no
// tracer null checks of their own.
class CoalescingSpan {
 public:
  CoalescingSpan() = default;

  void Init(Tracer* tracer, uint32_t track, const char* name, Nanos max_gap) {
    tracer_ = tracer;
    track_ = track;
    name_ = name;
    max_gap_ = max_gap;
  }

  void Add(Nanos start, Nanos end, uint64_t bytes) {
    if (tracer_ == nullptr) return;
    if (open_ && start <= end_ + max_gap_) {
      if (end > end_) end_ = end;
      bytes_ += bytes;
      return;
    }
    Flush();
    open_ = true;
    start_ = start;
    end_ = end;
    bytes_ = bytes;
  }

  // Emits the pending interval, if any. Idempotent.
  void Flush() {
    if (tracer_ != nullptr && open_) {
      tracer_->Complete(track_, name_, start_, end_, bytes_);
    }
    open_ = false;
    bytes_ = 0;
  }

 private:
  Tracer* tracer_ = nullptr;
  uint32_t track_ = 0;
  const char* name_ = nullptr;
  Nanos max_gap_ = 0;
  bool open_ = false;
  Nanos start_ = 0;
  Nanos end_ = 0;
  uint64_t bytes_ = 0;
};

// RAII Complete-span covering a scope. Null tracer → both ends are no-ops.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, uint32_t track, const char* name)
      : tracer_(tracer), track_(track), name_(name) {
    if (tracer_ != nullptr) start_ = tracer_->env()->Now();
  }
  ~SpanScope() {
    if (tracer_ != nullptr) {
      tracer_->Complete(track_, name_, start_, tracer_->env()->Now(), bytes_);
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void set_bytes(uint64_t b) { bytes_ = b; }

 private:
  Tracer* tracer_;
  uint32_t track_;
  const char* name_;
  Nanos start_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace kvaccel::obs
