// MetricsRegistry: hierarchical named counters / gauges / histograms with a
// point-in-time Snapshot() and JSON serialization.
//
// Names are dot-separated paths mirroring the subsystem layout, e.g.
// `lsm.compaction.bytes_written`, `ssd.link.busy_ns`,
// `kvaccel.redirect.active` (the full scheme is DESIGN.md §8).
//
// Two ways for a component to publish:
//  1. Native instruments — GetCounter()/GetGauge()/GetHistogram() return
//     stable pointers the component updates directly. Counter::Inc is a
//     single relaxed atomic add, cheap enough for hot paths.
//  2. Snapshot sources — AddSource() registers a callback invoked at
//     Snapshot() time that mirrors an existing stats struct (DbStats,
//     DevLsmStats, KvaccelStats, FTL counters, ...) into the snapshot. This
//     is how legacy counters migrate without rewriting every update site.
//
// Registration and Snapshot() are not internally synchronized: like the rest
// of the simulation state they are safe under the cooperative scheduler
// (exactly one simulated thread runs at a time and map operations never
// yield). Counter values themselves are atomics, so reading a snapshot from
// the harness while actors run is well-defined.
//
// Snapshots use std::map (sorted keys), so serialization order — and
// therefore report bytes — is deterministic for identical runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace kvaccel::obs {

class JsonWriter;

class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Compact percentile summary of a Histogram, cheap to snapshot and serialize.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double avg = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  static HistogramSummary From(const Histogram& h);
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  void SetCounter(const std::string& name, uint64_t v) { counters[name] = v; }
  void SetGauge(const std::string& name, double v) { gauges[name] = v; }
  void SetHistogram(const std::string& name, const Histogram& h) {
    histograms[name] = HistogramSummary::From(h);
  }

  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returned pointers are stable for the registry's lifetime (map nodes).
  Counter* GetCounter(const std::string& name) { return &counters_[name]; }
  Gauge* GetGauge(const std::string& name) { return &gauges_[name]; }
  Histogram* GetHistogram(const std::string& name) {
    return &histograms_[name];
  }

  using Source = std::function<void(MetricsSnapshot*)>;
  void AddSource(Source source) { sources_.push_back(std::move(source)); }

  // Native instruments first, then sources in registration order; a source
  // writing a name that already exists overwrites it (sources win).
  MetricsSnapshot Snapshot() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::vector<Source> sources_;
};

}  // namespace kvaccel::obs
