// Tuning knobs of the host LSM-KVS, mirroring the RocksDB options the paper
// exercises (Table III plus the write-stall trigger family of [9]).
// Sizes are *logical* bytes (synthetic values count at full size).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "common/units.h"

namespace kvaccel::lsm {

class WriteBatch;

constexpr int kNumLevels = 7;

// --- Device-offloaded compaction vocabulary (NDP, DESIGN.md §13) ---
// The lsm layer stays free of ndp types: the planner/device live behind
// std::function hooks, mirroring compaction_io_arbiter / wal_shipper.

// What the planner sees about a picked job before any work starts.
struct OffloadJobInfo {
  int level = 0;         // inputs[0] level
  int output_level = 0;
  uint64_t input_bytes = 0;  // logical bytes across both input sides
  int input_files = 0;
  int subranges = 1;     // sub-range streams the job will run (PR-5 split)
  bool is_intra_l0 = false;
};

// Execution handles for one granted (offloaded) job.
struct OffloadGrant {
  // Burns the merge + checksum-verify cycles for `bytes` logical bytes on
  // the device's NDP cores; blocks the calling actor in virtual time.
  std::function<void(uint64_t bytes)> merge_cpu;
  // Completion, exactly once per grant: ok=true ships the output metadata
  // back over PCIe (its Status is the shipment's — a crash there aborts the
  // install); ok=false reports a device-side failure before host fallback.
  std::function<Status(bool ok, uint64_t output_files, uint64_t output_bytes)>
      finish;
};

// Per-job placement decision. Returning false = host path; returning true
// fills *grant and commits the device (the COMPACT command has shipped).
using CompactionOffloadFn =
    std::function<bool(const OffloadJobInfo& job, OffloadGrant* grant)>;

struct DbOptions {
  // --- Memtable / flush ---
  uint64_t write_buffer_size = 128ull << 20;  // Table III: MT size 128 MB
  int max_write_buffer_number = 2;            // active + 1 immutable

  // --- Leveled compaction shape ---
  int l0_compaction_trigger = 4;   // L0 file count that scores a compaction
  uint64_t max_bytes_for_level_base = 256ull << 20;  // L1 target
  double max_bytes_for_level_multiplier = 10.0;
  uint64_t target_file_size = 64ull << 20;

  // --- Write stall & slowdown triggers (paper §II-A events 1/2/3) ---
  int l0_slowdown_writes_trigger = 8;
  int l0_stop_writes_trigger = 12;
  uint64_t soft_pending_compaction_bytes_limit = 4ull << 30;
  uint64_t hard_pending_compaction_bytes_limit = 16ull << 30;
  // RocksDB's delayed-write mechanism [9]: when true, writes are throttled to
  // delayed_write_rate while any slowdown condition holds. The paper's
  // "w/o slowdown" variants set this false (only hard stops remain).
  bool enable_slowdown = true;
  double delayed_write_rate = 8.0 * 1e6;  // bytes/sec (~2 Kops/s at 4 KB)

  // --- Background work ---
  int compaction_threads = 1;  // Table III: 1 / 2 / 4
  // Host CPU cost of the compaction merge loop, nominal ns per logical byte.
  // ~2 ns/B ≈ 500 MB/s per thread of merge throughput, in line with
  // uncompressed RocksDB compaction; this is what leaves the device idle
  // during the CPU phase (paper §III-B).
  double compaction_cpu_ns_per_byte = 1.2;
  // Logical bytes per read->merge->write cycle of a compaction job. The
  // paper's implementation (§III-B) operates at file scale — inputs are
  // loaded, merge-sorted in memory, then written back — which is what leaves
  // the device idle for whole seconds during the merge phase. Smaller chunks
  // pipeline the phases more finely (see bench_ablation_merge_overlap).
  uint64_t compaction_io_chunk = 1ull << 30;
  // RocksDB-style subcompactions (DESIGN.md §10): a picked job whose input
  // exceeds max_subcompaction_input is split at file/index-block boundaries
  // into up to max_subcompactions disjoint key ranges, each merged by its own
  // simulated actor. Requires compaction_threads > 1 to take effect; all
  // sub-range outputs still install atomically in one VersionEdit.
  int max_subcompactions = 4;
  uint64_t max_subcompaction_input = 0;  // 0 = auto: 2 * target_file_size
  // Aggregate compaction-I/O rate limit for levels below L0, as a fraction of
  // the device's NAND bandwidth (GenericRateLimiter analogue). 0 disables.
  // L0->L1 and intra-L0 jobs are exempt: they are exactly the work that
  // un-gates stalled writers, so throttling them would be self-defeating.
  double compaction_rate_limit = 0.0;
  // Shared-device bandwidth arbitration (sharded engine, DESIGN.md §11).
  // When set, deep-compaction I/O reserves bandwidth through this callback —
  // typically one client slot of a sim::FairShareArbiter shared by every
  // shard on the device — instead of the per-DB compaction_rate_limit
  // bucket. The callback blocks in virtual time until the reservation is
  // granted and returns the ns spent queued (accounted as throttle time).
  std::function<Nanos(uint64_t bytes)> compaction_io_arbiter;
  // External-store guard for tombstone elision. Compaction normally drops a
  // tombstone once no level below the output can hold the key — but a
  // collaborating external store (KVACCEL's Dev-LSM) may hold an OLDER
  // version of a deleted key that recovery later re-ingests ordered by
  // sequence number; eliding the tombstone first would resurrect it. When
  // set, a compaction job elides tombstones only if this returns true at the
  // start of the job (KVACCEL wires it to "the Dev-LSM is empty"). Unset =
  // always allowed.
  std::function<bool()> allow_tombstone_elision;

  // --- Device-offloaded compaction (NDP, DESIGN.md §13) ---
  // When set, RunCompaction consults this hook once per picked job. Returning
  // true grants the job to the device: the merge loop then burns its CPU
  // through OffloadGrant::merge_cpu (firmware/NDP cores instead of the host
  // pool), SST reads and writes run device-side (NAND only, no PCIe), and the
  // job's crash sites become crash.ndp.*. The outputs land in the same file
  // system and install through the same single VersionEdit, so crash
  // atomicity is unchanged. On a failed offloaded attempt the job falls back
  // to the host path once (OffloadGrant::finish(false, ...) first, so the
  // planner can open its circuit breaker). Unset = host-only compaction.
  CompactionOffloadFn compaction_offload;

  // --- Table / cache ---
  uint64_t block_size = 16 << 10;          // logical bytes per data block
  int bloom_bits_per_key = 10;
  uint64_t block_cache_capacity = 64ull << 20;  // logical bytes

  // --- WAL ---
  bool wal_enabled = true;
  bool wal_sync = false;  // db_bench default: buffered, unsynced WAL

  // --- Group commit ---
  // Byte budget for one leader-coalesced write group (RocksDB
  // max_write_batch_group_size_bytes analogue). A small leading batch caps
  // the group lower so tiny writes aren't delayed behind huge merges.
  uint64_t max_group_commit_bytes = 1ull << 20;

  // --- Per-operation host CPU costs (nominal ns) ---
  // Put: key-gen/batch/WAL encode/skiplist insert on the client thread.
  double put_cpu_ns = 2500;
  // Get: hashing, memtable probe, per-level seek overhead.
  double get_cpu_ns = 2000;
  // Per-entry cost of iterator Next().
  double next_cpu_ns = 350;

  // Verify CRCs when reading blocks (costs host CPU in the model).
  bool verify_checksums = true;

  // --- Transient-error retry policy ---
  // Retryable device errors (IOError/Busy/TryAgain) in WAL sync, flush and
  // compaction are retried up to this many times with exponential backoff in
  // virtual time, starting at io_retry_backoff and doubling per attempt.
  // Exhausting the budget (or a non-retryable error such as Corruption)
  // latches the background error and the DB becomes read-only.
  int max_io_retries = 5;
  Nanos io_retry_backoff = FromMicros(100);
  // Per-retry delays use decorrelated jitter (sim/backoff.h) bounded by this
  // cap, so N shards/nodes hitting the same transient don't retry in
  // lockstep. The jitter stream is seeded per DB instance; sharded/replicated
  // engines offset the seed per shard/node to decorrelate their schedules.
  Nanos io_retry_backoff_cap = FromMillis(10);
  uint64_t io_retry_jitter_seed = 0xBACC0FF;

  // --- Replication hooks (HA pair, DESIGN.md §12) ---
  // When set, the group-commit leader ships every locally-originated write
  // group (after WAL append/sync, before memtable apply) with the group's
  // first sequence number. A non-OK return fails the group: the write is
  // durable in the local WAL but unacked — exactly the crash.wal.post_sync
  // ambiguity window, which recovery already tolerates. Writes applied FROM
  // replication (WriteOptions::replicated_seq != 0) are not re-shipped.
  std::function<Status(const WriteBatch& group, uint64_t first_seq)>
      wal_shipper;
  // When set, every applied VersionEdit is streamed out (serialized payload +
  // last sequence) after LogAndApply installs it. Advisory/best-effort: the
  // backup rebuilds its own versions from replicated writes, so delivery
  // failures don't fail the commit.
  std::function<void(const std::string& edit, uint64_t last_seq)>
      manifest_shipper;
};

// Per-read options.
struct ReadOptions {
  bool fill_cache = true;
  // Verify block CRCs on this read (ANDed with DbOptions::verify_checksums).
  bool verify_checksums = true;
  // Blocks fetched per device read by iterators (1 = none). Compaction uses
  // a large value (RocksDB compaction_readahead_size) so sequential reads
  // amortize the NAND access latency.
  uint32_t readahead_blocks = 1;
};

// Per-write options.
struct WriteOptions {
  bool sync = false;
  bool disable_wal = false;
  // Non-zero marks a write applied FROM the replication stream: the batch is
  // committed at exactly this first sequence number (advancing last_sequence
  // past the batch if needed) instead of allocating fresh sequences, is never
  // coalesced with other writers, and is not re-shipped. 0 = normal write.
  uint64_t replicated_seq = 0;
};

}  // namespace kvaccel::lsm
