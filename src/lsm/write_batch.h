// WriteBatch: the unit of atomic ingestion. Groups Puts/Deletes, carries
// their logical size, serializes into a WAL payload, and replays into a
// memtable with consecutive sequence numbers (also the WAL recovery path).
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "common/value.h"
#include "lsm/dbformat.h"
#include "lsm/memtable.h"

namespace kvaccel::lsm {

class WriteBatch {
 public:
  WriteBatch();

  void Put(const Slice& key, const Value& value);
  void Delete(const Slice& key);
  void Clear();

  // Appends every entry of `other` to this batch (group-commit coalescing).
  // The merged batch keeps this batch's sequence slot; entry order is this
  // batch's entries followed by `other`'s.
  void Append(const WriteBatch& other);

  uint32_t Count() const;
  // Logical bytes of all entries (keys + full value sizes + trailers).
  uint64_t LogicalSize() const { return logical_size_; }
  // Serialized payload (compact encoding) for WAL/replay.
  const std::string& Contents() const { return rep_; }

  // Sets the sequence number of the first entry.
  void SetSequence(SequenceNumber seq);
  SequenceNumber Sequence() const;

  // Applies every entry to `mem` with sequence numbers Sequence()..+Count-1.
  Status InsertInto(MemTable* mem) const;

  // Rebuilds a batch from a serialized payload (WAL recovery).
  static Status ParseFrom(const Slice& payload, WriteBatch* batch);

  // Walks entries without a memtable; `fn(type, key, value)` per entry.
  template <typename Fn>
  Status ForEach(Fn fn) const {
    Slice input(rep_);
    if (input.size() < kHeaderSize) return Status::Corruption("batch header");
    input.remove_prefix(kHeaderSize);
    uint32_t count = Count();
    for (uint32_t i = 0; i < count; i++) {
      if (input.empty()) return Status::Corruption("batch short");
      auto type = static_cast<ValueType>(input[0]);
      input.remove_prefix(1);
      Slice key;
      if (!GetLengthPrefixedSlice(&input, &key)) {
        return Status::Corruption("batch key");
      }
      Value value;
      if (type == ValueType::kValue) {
        if (!Value::DecodeFrom(&input, &value)) {
          return Status::Corruption("batch value");
        }
      }
      fn(type, key, value);
    }
    return input.empty() ? Status::OK() : Status::Corruption("batch trailer");
  }

 private:
  static constexpr size_t kHeaderSize = 12;  // fixed64 seq + fixed32 count

  std::string rep_;
  uint64_t logical_size_ = 0;
};

}  // namespace kvaccel::lsm
