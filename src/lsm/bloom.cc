#include "lsm/bloom.h"

#include <algorithm>

#include "common/hash.h"

namespace kvaccel::lsm {

BloomFilter::BloomFilter(int bits_per_key) : bits_per_key_(bits_per_key) {
  // k = ln(2) * bits/key rounded, clamped to a sane range.
  k_ = static_cast<int>(bits_per_key * 0.69);
  k_ = std::clamp(k_, 1, 30);
}

uint32_t BloomFilter::HashKey(const Slice& user_key) {
  return Hash32(user_key.data(), user_key.size(), 0xbc9f1d34);
}

void BloomFilter::CreateFilter(const std::vector<uint32_t>& key_hashes,
                               std::string* dst) const {
  size_t bits = key_hashes.size() * static_cast<size_t>(bits_per_key_);
  bits = std::max<size_t>(bits, 64);
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  const size_t init_size = dst->size();
  dst->resize(init_size + bytes, 0);
  dst->push_back(static_cast<char>(k_));  // remember probe count
  char* array = dst->data() + init_size;
  for (uint32_t h : key_hashes) {
    uint32_t delta = (h >> 17) | (h << 15);  // double hashing
    for (int j = 0; j < k_; j++) {
      uint32_t bitpos = h % bits;
      array[bitpos / 8] |= static_cast<char>(1 << (bitpos % 8));
      h += delta;
    }
  }
}

bool BloomFilter::KeyMayMatch(uint32_t h, const Slice& filter) const {
  if (filter.size() < 2) return true;  // degenerate: cannot exclude
  const size_t bits = (filter.size() - 1) * 8;
  const int k = filter[filter.size() - 1];
  if (k > 30) return true;  // reserved for future encodings
  uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    uint32_t bitpos = h % bits;
    if ((filter[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace kvaccel::lsm
