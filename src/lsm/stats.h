// DbStats: everything the evaluation figures read out of a run — per-second
// op counts (Figs 2, 11, 13), latency histograms (Figs 3, 12), stall and
// slowdown regions (Figs 2, 4), and background-work byte counters.
// All times are virtual nanoseconds.
#pragma once

#include <cstdint>

#include "common/histogram.h"
#include "sim/timeseries.h"

namespace kvaccel::lsm {

struct DbStats {
  // Completed foreground operations, bucketed per virtual second.
  sim::TimeSeries writes_completed{kNanosPerSec};
  sim::TimeSeries reads_completed{kNanosPerSec};
  sim::TimeSeries seeks_completed{kNanosPerSec};

  // Latency distributions (ns).
  Histogram put_latency;
  Histogram get_latency;
  Histogram seek_latency;

  // Write-stall bookkeeping (paper §II-A / §III-A).
  sim::IntervalRecorder stall_regions;     // writers fully blocked
  sim::IntervalRecorder slowdown_regions;  // delayed-write throttling active
  uint64_t stall_events = 0;
  uint64_t slowdown_events = 0;  // paper: 258 (RocksDB) / 433 (ADOC) delays

  // Background work.
  uint64_t flush_count = 0;
  uint64_t flush_bytes = 0;  // logical
  uint64_t compaction_count = 0;
  uint64_t compaction_bytes_read = 0;
  uint64_t compaction_bytes_written = 0;

  // Subcompactions & priority scheduler (DESIGN.md §10).
  uint64_t split_compactions = 0;     // jobs that ran range-partitioned
  uint64_t subcompaction_count = 0;   // sub-ranges executed by split jobs
  uint64_t intra_l0_compactions = 0;  // L0->L0 pressure-relief merges
  // Virtual ns compaction actors spent waiting on the shared compaction-bytes
  // rate limiter (only deep jobs are subject to it).
  uint64_t compaction_throttle_ns = 0;
  // Stranded files (uninstalled SSTs, superseded WALs) removed at recovery.
  uint64_t orphan_files_removed = 0;

  // Device-offloaded compaction (NDP, DESIGN.md §13).
  uint64_t ndp_compactions = 0;      // jobs that completed on the device
  uint64_t ndp_bytes_written = 0;    // output bytes produced device-side
  uint64_t ndp_fallbacks = 0;        // offloaded jobs rerun on the host

  uint64_t writes_total = 0;
  uint64_t write_bytes_total = 0;  // logical
  uint64_t reads_total = 0;
  uint64_t seeks_total = 0;

  // Fault handling: transient-error retries performed (foreground WAL sync
  // plus background flush/compaction attempts) and background errors latched
  // (each one moves the DB to read-only until reopened).
  uint64_t io_retries = 0;
  uint64_t background_errors = 0;

  // Group commit: one "group" is one WAL append + memtable apply performed
  // by a leader on behalf of itself and any coalesced followers. With a
  // single writer every group has size 1 and write_groups == writes_total.
  uint64_t write_groups = 0;
  Histogram group_commit_size;  // entries per group
};

}  // namespace kvaccel::lsm
