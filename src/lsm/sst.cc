#include "lsm/sst.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "common/crc32c.h"

namespace kvaccel::lsm {

namespace {
constexpr uint64_t kTableMagic = 0x6b766163636c5353ull;  // "kvaccSS"
}

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, physical);
  PutVarint64(dst, logical);
}

bool BlockHandle::DecodeFrom(Slice* input, BlockHandle* out) {
  return GetVarint64(input, &out->offset) &&
         GetVarint64(input, &out->physical) &&
         GetVarint64(input, &out->logical);
}

// ---------------- SstBuilder ----------------

SstBuilder::SstBuilder(const DbOptions& options,
                       std::unique_ptr<fs::WritableFile> file)
    : options_(options), file_(std::move(file)),
      bloom_(options.bloom_bits_per_key) {}

Status SstBuilder::Add(const Slice& internal_key, const Slice& value_encoding,
                       uint64_t entry_logical) {
  assert(!finished_);
  if (smallest_.empty()) smallest_.assign(internal_key.data(),
                                          internal_key.size());
  largest_.assign(internal_key.data(), internal_key.size());

  PutVarint32(&block_buf_, static_cast<uint32_t>(internal_key.size()));
  block_buf_.append(internal_key.data(), internal_key.size());
  PutVarint32(&block_buf_, static_cast<uint32_t>(value_encoding.size()));
  block_buf_.append(value_encoding.data(), value_encoding.size());

  key_hashes_.push_back(BloomFilter::HashKey(ExtractUserKey(internal_key)));
  max_seq_ = std::max(max_seq_, ExtractSequence(internal_key));
  block_logical_ += entry_logical;
  total_logical_ += entry_logical;
  num_entries_++;

  if (block_logical_ >= options_.block_size) return FlushBlock();
  return Status::OK();
}

Status SstBuilder::FlushBlock() {
  if (block_buf_.empty()) return Status::OK();
  uint32_t crc = crc32c::Value(block_buf_.data(), block_buf_.size());
  BlockHandle handle;
  handle.offset = file_offset_;
  handle.physical = block_buf_.size();
  handle.logical = block_logical_;
  index_.emplace_back(largest_, handle);

  Status s = file_->Append(block_buf_, block_logical_);
  if (!s.ok()) return s;
  std::string trailer;
  PutFixed32(&trailer, crc32c::Mask(crc));
  s = file_->Append(trailer, trailer.size());
  if (!s.ok()) return s;

  file_offset_ += block_buf_.size() + trailer.size();
  block_buf_.clear();
  block_logical_ = 0;
  return Status::OK();
}

Status SstBuilder::Finish() {
  assert(!finished_);
  finished_ = true;
  Status s = FlushBlock();
  if (!s.ok()) return s;

  // Filter block.
  std::string filter;
  bloom_.CreateFilter(key_hashes_, &filter);
  uint64_t filter_offset = file_offset_;
  s = file_->Append(filter, filter.size());
  if (!s.ok()) return s;
  file_offset_ += filter.size();

  // Index block.
  std::string index;
  PutVarint32(&index, static_cast<uint32_t>(index_.size()));
  for (const auto& [last_key, handle] : index_) {
    PutLengthPrefixedSlice(&index, last_key);
    handle.EncodeTo(&index);
  }
  uint64_t index_offset = file_offset_;
  s = file_->Append(index, index.size());
  if (!s.ok()) return s;
  file_offset_ += index.size();

  // Meta footer.
  std::string meta;
  PutVarint64(&meta, filter_offset);
  PutVarint64(&meta, filter.size());
  PutVarint64(&meta, index_offset);
  PutVarint64(&meta, index.size());
  PutVarint64(&meta, num_entries_);
  PutVarint64(&meta, total_logical_);
  PutLengthPrefixedSlice(&meta, smallest_);
  PutLengthPrefixedSlice(&meta, largest_);
  s = file_->Append(meta, meta.size());
  if (!s.ok()) return s;

  std::string tail;
  PutFixed32(&tail, static_cast<uint32_t>(meta.size()));
  PutFixed64(&tail, kTableMagic);
  s = file_->Append(tail, tail.size());
  if (!s.ok()) return s;
  // SSTs are synced before being installed (RocksDB use_fsync behaviour);
  // this is also what puts flush/compaction writes on the device.
  s = file_->Sync();
  if (!s.ok()) return s;
  return file_->Close();
}

// ---------------- SstReader ----------------

Status SstReader::Open(const DbOptions& options, fs::SimFs* fs,
                       const std::string& filename, uint64_t file_number,
                       BlockCache* cache, std::shared_ptr<SstReader>* reader) {
  auto r = std::shared_ptr<SstReader>(
      new SstReader(options, file_number, cache));
  Status s = fs->NewRandomAccessFile(filename, &r->file_);
  if (!s.ok()) return s;
  uint64_t physical = r->file_->physical_size();
  if (physical < 12) return Status::Corruption("sst too small");

  std::string tail;
  s = r->file_->Read(physical - 12, 12, &tail);
  if (!s.ok()) return s;
  uint32_t meta_len = DecodeFixed32(tail.data());
  uint64_t magic = DecodeFixed64(tail.data() + 4);
  if (magic != kTableMagic) return Status::Corruption("bad sst magic");
  if (physical < 12 + meta_len) return Status::Corruption("bad sst meta len");

  std::string meta;
  s = r->file_->Read(physical - 12 - meta_len, meta_len, &meta);
  if (!s.ok()) return s;
  Slice in(meta);
  uint64_t filter_offset, filter_size, index_offset, index_size;
  Slice smallest, largest;
  if (!GetVarint64(&in, &filter_offset) || !GetVarint64(&in, &filter_size) ||
      !GetVarint64(&in, &index_offset) || !GetVarint64(&in, &index_size) ||
      !GetVarint64(&in, &r->num_entries_) ||
      !GetVarint64(&in, &r->total_logical_) ||
      !GetLengthPrefixedSlice(&in, &smallest) ||
      !GetLengthPrefixedSlice(&in, &largest)) {
    return Status::Corruption("bad sst meta");
  }
  r->smallest_ = smallest.ToString();
  r->largest_ = largest.ToString();

  s = r->file_->Read(filter_offset, filter_size, &r->filter_);
  if (!s.ok()) return s;

  std::string index;
  s = r->file_->Read(index_offset, index_size, &index);
  if (!s.ok()) return s;
  Slice iin(index);
  uint32_t n;
  if (!GetVarint32(&iin, &n)) return Status::Corruption("bad sst index");
  r->index_.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    Slice last_key;
    BlockHandle handle;
    if (!GetLengthPrefixedSlice(&iin, &last_key) ||
        !BlockHandle::DecodeFrom(&iin, &handle)) {
      return Status::Corruption("bad sst index entry");
    }
    r->index_.emplace_back(last_key.ToString(), handle);
  }
  *reader = std::move(r);
  return Status::OK();
}

size_t SstReader::FindBlock(const Slice& internal_key) const {
  InternalKeyComparator cmp;
  // First block whose last key is >= internal_key.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cmp.Compare(Slice(index_[mid].first), internal_key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status SstReader::ReadBlock(size_t index_pos, const ReadOptions& ropts,
                            std::shared_ptr<BlockCache::Block>* block) {
  const BlockHandle& handle = index_[index_pos].second;
  if (cache_ != nullptr) {
    auto cached = cache_->Lookup(file_number_, handle.offset);
    if (cached != nullptr) {
      *block = std::move(cached);
      return Status::OK();
    }
  }
  auto fresh = std::make_shared<BlockCache::Block>();
  fresh->logical = handle.logical;
  Status s = file_->Read(handle.offset, handle.physical, &fresh->physical);
  if (!s.ok()) return s;
  if (fresh->physical.size() != handle.physical) {
    return Status::Corruption("short block read");
  }
  if (options_.verify_checksums && ropts.verify_checksums) {
    std::string crc_bytes;
    s = file_->Read(handle.offset + handle.physical, 4, &crc_bytes);
    if (!s.ok()) return s;
    uint32_t expected = crc32c::Unmask(DecodeFixed32(crc_bytes.data()));
    if (expected != crc32c::Value(fresh->physical.data(),
                                  fresh->physical.size())) {
      return Status::Corruption("block checksum mismatch");
    }
  }
  if (cache_ != nullptr && ropts.fill_cache) {
    cache_->Insert(file_number_, handle.offset, fresh);
  }
  *block = std::move(fresh);
  return Status::OK();
}

Status SstReader::ReadBlocksRange(
    size_t first, size_t count, const ReadOptions& ropts,
    std::vector<std::shared_ptr<BlockCache::Block>>* out) {
  out->clear();
  if (first >= index_.size()) return Status::OK();
  count = std::min(count, index_.size() - first);
  // Data blocks are laid out back-to-back (block + 4-byte crc trailer), so
  // the whole span is one contiguous physical read.
  const BlockHandle& head = index_[first].second;
  const BlockHandle& tail = index_[first + count - 1].second;
  uint64_t span = tail.offset + tail.physical + 4 - head.offset;
  std::string buf;
  Status s = file_->Read(head.offset, span, &buf);
  if (!s.ok()) return s;
  for (size_t i = 0; i < count; i++) {
    const BlockHandle& h = index_[first + i].second;
    uint64_t rel = h.offset - head.offset;
    if (rel + h.physical + 4 > buf.size()) {
      return Status::Corruption("readahead span short");
    }
    auto block = std::make_shared<BlockCache::Block>();
    block->logical = h.logical;
    block->physical.assign(buf, rel, h.physical);
    if (options_.verify_checksums && ropts.verify_checksums) {
      uint32_t expected =
          crc32c::Unmask(DecodeFixed32(buf.data() + rel + h.physical));
      if (expected !=
          crc32c::Value(block->physical.data(), block->physical.size())) {
        return Status::Corruption("block checksum mismatch");
      }
    }
    out->push_back(std::move(block));
  }
  return Status::OK();
}

Status SstReader::Get(const ReadOptions& ropts, const Slice& seek_key,
                      bool* found, ValueType* type, Value* value,
                      SequenceNumber* seq) {
  *found = false;
  InternalKeyComparator cmp;
  Slice user_key = ExtractUserKey(seek_key);
  if (!bloom_.KeyMayMatch(BloomFilter::HashKey(user_key), filter_)) {
    return Status::OK();
  }
  size_t pos = FindBlock(seek_key);
  if (pos == index_.size()) return Status::OK();
  std::shared_ptr<BlockCache::Block> block;
  Status s = ReadBlock(pos, ropts, &block);
  if (!s.ok()) return s;

  BlockEntryCursor cur(block->physical);
  while (cur.Next()) {
    if (cmp.Compare(cur.key(), seek_key) < 0) continue;
    if (ExtractUserKey(cur.key()) != user_key) return Status::OK();
    *found = true;
    *type = ExtractValueType(cur.key());
    if (seq != nullptr) *seq = ExtractSequence(cur.key());
    if (*type == ValueType::kValue) {
      Slice v = cur.value();
      if (!Value::DecodeFrom(&v, value)) {
        return Status::Corruption("bad value encoding");
      }
    }
    return Status::OK();
  }
  if (cur.corrupt()) return Status::Corruption("bad block entry");
  return Status::OK();
}

// ---------------- BlockEntryCursor ----------------

bool BlockEntryCursor::Next() {
  if (input_.empty() || corrupt_) return false;
  uint32_t klen;
  if (!GetVarint32(&input_, &klen) || input_.size() < klen) {
    corrupt_ = true;
    return false;
  }
  key_ = Slice(input_.data(), klen);
  input_.remove_prefix(klen);
  uint32_t vlen;
  if (!GetVarint32(&input_, &vlen) || input_.size() < vlen) {
    corrupt_ = true;
    return false;
  }
  value_ = Slice(input_.data(), vlen);
  input_.remove_prefix(vlen);
  return true;
}

// ---------------- SstIterator ----------------

class SstIterator : public Iterator {
 public:
  SstIterator(std::shared_ptr<SstReader> table, ReadOptions ropts)
      : table_(std::move(table)), ropts_(ropts) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    block_pos_ = 0;
    LoadBlockAndSeek(nullptr);
  }

  void Seek(const Slice& target) override {
    block_pos_ = table_->FindBlock(target);
    LoadBlockAndSeek(&target);
  }

  void Next() override {
    assert(valid_);
    if (AdvanceWithinBlock()) return;
    block_pos_++;
    LoadBlockAndSeek(nullptr);
  }

  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  // Loads block_pos_ (and following blocks if empty) and positions at the
  // first entry >= *target (or the first entry when target == nullptr).
  void LoadBlockAndSeek(const Slice* target) {
    InternalKeyComparator cmp;
    valid_ = false;
    while (block_pos_ < table_->index_.size()) {
      std::shared_ptr<BlockCache::Block> block;
      status_ = FetchBlock(block_pos_, &block);
      if (!status_.ok()) return;
      block_ = std::move(block);
      cursor_ = std::make_unique<BlockEntryCursor>(Slice(block_->physical));
      while (cursor_->Next()) {
        if (target == nullptr || cmp.Compare(cursor_->key(), *target) >= 0) {
          Capture();
          return;
        }
      }
      if (cursor_->corrupt()) {
        status_ = Status::Corruption("bad block entry");
        return;
      }
      block_pos_++;
    }
  }

  bool AdvanceWithinBlock() {
    if (cursor_ != nullptr && cursor_->Next()) {
      Capture();
      return true;
    }
    if (cursor_ != nullptr && cursor_->corrupt()) {
      status_ = Status::Corruption("bad block entry");
      valid_ = false;
      return true;  // stop: status is set
    }
    return false;
  }

  void Capture() {
    key_.assign(cursor_->key().data(), cursor_->key().size());
    value_.assign(cursor_->value().data(), cursor_->value().size());
    valid_ = true;
  }

  // Serves a block from the readahead window, refilling it (one device read
  // per window) when the position moves outside.
  Status FetchBlock(size_t pos, std::shared_ptr<BlockCache::Block>* block) {
    if (ropts_.readahead_blocks <= 1) {
      return table_->ReadBlock(pos, ropts_, block);
    }
    if (pos < prefetch_base_ || pos >= prefetch_base_ + prefetch_.size()) {
      prefetch_base_ = pos;
      Status s = table_->ReadBlocksRange(pos, ropts_.readahead_blocks, ropts_,
                                         &prefetch_);
      if (!s.ok()) return s;
    }
    *block = prefetch_[pos - prefetch_base_];
    return Status::OK();
  }

  std::shared_ptr<SstReader> table_;
  ReadOptions ropts_;
  size_t prefetch_base_ = 0;
  std::vector<std::shared_ptr<BlockCache::Block>> prefetch_;
  size_t block_pos_ = 0;
  std::shared_ptr<BlockCache::Block> block_;
  std::unique_ptr<BlockEntryCursor> cursor_;
  std::string key_, value_;
  bool valid_ = false;
  Status status_;
};

std::unique_ptr<Iterator> SstReader::NewIterator(const ReadOptions& ropts) {
  return std::make_unique<SstIterator>(shared_from_this(), ropts);
}

}  // namespace kvaccel::lsm
