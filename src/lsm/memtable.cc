#include "lsm/memtable.h"

#include <cstring>

#include "common/coding.h"

namespace kvaccel::lsm {
namespace {

// Entry layout in arena memory:
//   varint32 internal_key_len | internal_key | varint32 val_len | value_enc
Slice GetLengthPrefixed(const char* p) {
  uint32_t len;
  const char* q = GetVarint32Ptr(p, p + 5, &len);
  return Slice(q, len);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  return comparator.Compare(GetLengthPrefixed(a), GetLengthPrefixed(b));
}

MemTable::MemTable() : table_(comparator_, &arena_) {}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& user_key,
                   const Value& value) {
  std::string val_enc;
  if (type == ValueType::kValue) value.EncodeTo(&val_enc);

  size_t ikey_len = user_key.size() + 8;
  size_t encoded_len = VarintLength(ikey_len) + ikey_len +
                       VarintLength(val_enc.size()) + val_enc.size();
  char* buf = arena_.Allocate(encoded_len);
  char* p = buf;

  std::string header;
  PutVarint32(&header, static_cast<uint32_t>(ikey_len));
  memcpy(p, header.data(), header.size());
  p += header.size();
  memcpy(p, user_key.data(), user_key.size());
  p += user_key.size();
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;
  std::string vlen;
  PutVarint32(&vlen, static_cast<uint32_t>(val_enc.size()));
  memcpy(p, vlen.data(), vlen.size());
  p += vlen.size();
  memcpy(p, val_enc.data(), val_enc.size());
  p += val_enc.size();
  assert(static_cast<size_t>(p - buf) == encoded_len);

  table_.Insert(buf);
  num_entries_++;
  // Logical accounting: key + full value + per-entry trailer.
  logical_size_ += user_key.size() + 8 +
                   (type == ValueType::kValue ? value.logical_size() : 0);
}

bool MemTable::Get(const LookupKey& key, Value* value, Status* status,
                   SequenceNumber* seq) const {
  // Build a probe entry: length-prefixed internal key (value part unused by
  // the comparator).
  std::string probe;
  Slice ikey = key.internal_key();
  PutVarint32(&probe, static_cast<uint32_t>(ikey.size()));
  probe.append(ikey.data(), ikey.size());

  Table::Iterator iter(&table_);
  iter.Seek(probe.data());
  if (!iter.Valid()) return false;

  const char* entry = iter.key();
  Slice found_ikey = GetLengthPrefixed(entry);
  if (ExtractUserKey(found_ikey) != key.user_key()) return false;

  if (seq != nullptr) *seq = ExtractSequence(found_ikey);
  switch (ExtractValueType(found_ikey)) {
    case ValueType::kValue: {
      const char* val_ptr = found_ikey.data() + found_ikey.size();
      Slice val = GetLengthPrefixed(val_ptr);
      *value = Value::DecodeOrDie(val);
      *status = Status::OK();
      return true;
    }
    case ValueType::kDeletion:
      *status = Status::NotFound("tombstone");
      return true;
  }
  return false;
}

namespace {

class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(const MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void Seek(const Slice& target) override {
    probe_.clear();
    PutVarint32(&probe_, static_cast<uint32_t>(target.size()));
    probe_.append(target.data(), target.size());
    iter_.Seek(probe_.data());
  }
  void Next() override { iter_.Next(); }
  Slice key() const override { return GetLengthPrefixed(iter_.key()); }
  Slice value() const override {
    Slice k = GetLengthPrefixed(iter_.key());
    return GetLengthPrefixed(k.data() + k.size());
  }
  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string probe_;
};

}  // namespace

std::unique_ptr<Iterator> MemTable::NewIterator() const {
  return std::make_unique<MemTableIterator>(table());
}

}  // namespace kvaccel::lsm
