// Versions: immutable snapshots of the LSM file layout (which SSTs live at
// which level), the VersionEdit log persisted in the MANIFEST, and the
// compaction picker. L0 files may overlap (newest first); L1+ files are
// disjoint and sorted. The stall triggers and the KVACCEL Detector both read
// their signals (L0 count, pending compaction bytes) from here.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "fs/simfs.h"
#include "lsm/dbformat.h"
#include "lsm/options.h"

namespace kvaccel::lsm {

struct FileMetaData {
  uint64_t number = 0;
  uint64_t logical_size = 0;
  uint64_t num_entries = 0;
  // Largest sequence number contained in the file. Flushed files respect the
  // invariant "newer L0 file => newer data"; bulk-ingested files (historical
  // sequences) may not, and lookups use max_seq to stay seq-correct.
  SequenceNumber max_seq = 0;
  std::string smallest;  // internal keys
  std::string largest;
  // Runtime-only: set while the file is an input of a running compaction.
  bool being_compacted = false;
};

using FileMetaPtr = std::shared_ptr<FileMetaData>;

// A delta between two versions; serialized into the MANIFEST.
class VersionEdit {
 public:
  void AddFile(int level, FileMetaPtr file) {
    added_.emplace_back(level, std::move(file));
  }
  void DeleteFile(int level, uint64_t number) {
    deleted_.emplace_back(level, number);
  }
  void SetLogNumber(uint64_t n) { log_number_ = n; has_log_number_ = true; }
  void SetNextFileNumber(uint64_t n) {
    next_file_number_ = n;
    has_next_file_number_ = true;
  }
  void SetLastSequence(SequenceNumber s) {
    last_sequence_ = s;
    has_last_sequence_ = true;
  }

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(const Slice& src, VersionEdit* edit);

  const std::vector<std::pair<int, FileMetaPtr>>& added() const {
    return added_;
  }
  const std::vector<std::pair<int, uint64_t>>& deleted() const {
    return deleted_;
  }
  // Pointer accessors (offline MANIFEST replay, check/db_checker.cc).
  bool has_log_number() const { return has_log_number_; }
  uint64_t log_number() const { return log_number_; }
  bool has_next_file_number() const { return has_next_file_number_; }
  uint64_t next_file_number() const { return next_file_number_; }
  bool has_last_sequence() const { return has_last_sequence_; }
  SequenceNumber last_sequence() const { return last_sequence_; }

 private:
  friend class VersionSet;
  std::vector<std::pair<int, FileMetaPtr>> added_;
  std::vector<std::pair<int, uint64_t>> deleted_;
  uint64_t log_number_ = 0;
  bool has_log_number_ = false;
  uint64_t next_file_number_ = 0;
  bool has_next_file_number_ = false;
  SequenceNumber last_sequence_ = 0;
  bool has_last_sequence_ = false;
};

class Version {
 public:
  Version() : files_(kNumLevels) {}

  const std::vector<FileMetaPtr>& files(int level) const {
    return files_[level];
  }
  int NumLevelFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }
  uint64_t LevelBytes(int level) const;

  // Files possibly containing `user_key`, in the order Get must probe them:
  // every overlapping L0 file newest-first, then at most one file per level.
  void ForEachOverlapping(
      const Slice& user_key,
      const std::function<bool(int level, const FileMetaPtr&)>& fn) const;

  // All files in `level` whose range intersects [smallest, largest]
  // (user-key comparison).
  std::vector<FileMetaPtr> OverlappingInputs(int level, const Slice& smallest,
                                             const Slice& largest) const;

  uint64_t TotalBytes() const;

 private:
  friend class VersionSet;
  std::vector<std::vector<FileMetaPtr>> files_;
};

// A picked compaction: inputs_[0] from `level`, inputs_[1] from
// `output_level`. Normally output_level == level + 1; an intra-L0
// pressure-relief job (DESIGN.md §10) has level == output_level == 0 and an
// empty inputs_[1] — it merges idle L0 files among themselves to cut the file
// count the stop trigger watches while the real L0->L1 job is busy.
struct Compaction {
  int level = 0;
  int output_level = 1;
  bool is_intra_l0 = false;
  std::vector<FileMetaPtr> inputs[2];

  uint64_t InputBytes() const {
    uint64_t total = 0;
    for (const auto& side : inputs) {
      for (const auto& f : side) total += f->logical_size;
    }
    return total;
  }
  void MarkBeingCompacted(bool flag) const {
    for (const auto& side : inputs) {
      for (const auto& f : side) f->being_compacted = flag;
    }
  }
};

class VersionSet {
 public:
  VersionSet(const DbOptions& options, fs::SimFs* fs);

  // Creates a fresh DB (empty manifest) or recovers an existing one.
  Status Create();
  Status Recover();

  // Applies `edit`, persists it to the MANIFEST, installs the new version.
  Status LogAndApply(VersionEdit* edit);

  // Flushes and closes the MANIFEST; call from a simulated thread before the
  // VersionSet is destroyed (destructors must not perform device I/O).
  Status CloseManifest();

  std::shared_ptr<const Version> current() const { return current_; }

  uint64_t NewFileNumber() { return next_file_number_++; }
  // Recovery guard: the counter is durable only as of the last manifest
  // write, but WAL numbers are allocated without one. A reopened DB must
  // bump past every file it finds on disk, or a fresh WAL can reuse (and
  // truncate) a live log whose contents exist nowhere else yet.
  void MarkFileNumberUsed(uint64_t number) {
    if (number >= next_file_number_) next_file_number_ = number + 1;
  }
  SequenceNumber last_sequence() const { return last_sequence_; }
  void SetLastSequence(SequenceNumber s) { last_sequence_ = s; }
  uint64_t log_number() const { return log_number_; }

  // --- Stall/tuning signals ---
  // Score >= 1.0 means the level wants compaction; returns the max level
  // score and the level that carries it.
  double MaxCompactionScore(int* level) const;
  // RocksDB-style estimate of bytes compaction still must move.
  uint64_t EstimatedPendingCompactionBytes() const;
  // Number of levels currently scoring >= 1.0 (distinct runnable jobs).
  int CompactionQueueDepth() const;

  // Picks a compaction by priority (or nullptr if nothing to do / inputs
  // busy): (1) L0->L1 whenever L0 is at its trigger — L0 depth is what gates
  // writer stalls; (2) intra-L0 relief when L0->L1 is blocked on busy inputs
  // and pressure keeps building; (3) deeper levels in descending score order,
  // only when `allow_deep` (the worker loop withholds the last free slot from
  // deep jobs under L0 pressure). The returned compaction's files are marked
  // being_compacted.
  std::unique_ptr<Compaction> PickCompaction(bool allow_deep = true);

  // Target size of a level (level >= 1).
  uint64_t MaxBytesForLevel(int level) const;

 private:
  Status ReplayManifest(const std::string& manifest_name);
  std::shared_ptr<Version> BuildAfter(const VersionEdit& edit) const;
  std::unique_ptr<Compaction> PickL0Compaction() const;
  std::unique_ptr<Compaction> PickIntraL0Compaction() const;
  std::unique_ptr<Compaction> PickLevelCompaction(int level);

  const DbOptions& options_;
  fs::SimFs* fs_;
  std::shared_ptr<const Version> current_;
  std::unique_ptr<class LogWriter> manifest_;
  std::string manifest_name_;
  uint64_t next_file_number_ = 1;
  uint64_t log_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  std::vector<size_t> compact_cursor_;  // round-robin pick position per level
};

}  // namespace kvaccel::lsm
