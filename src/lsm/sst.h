// Sorted String Table: block-based on-device format with a per-table bloom
// filter, an index block, and CRC-protected data blocks.
//
// Physical layout (compact bytes in SimFs):
//   [data block 0][crc] ... [data block N][crc]
//   [filter block][index block][meta footer][fixed32 meta len][fixed64 magic]
//
// Data block entries: varint32 key_len | internal_key | varint32 vlen | value
// Index entries:      lenpref last_internal_key | BlockHandle
// BlockHandle:        varint64 offset | varint64 physical | varint64 logical
//
// Every block carries both sizes; reads charge the device at logical bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/value.h"
#include "fs/simfs.h"
#include "lsm/bloom.h"
#include "lsm/cache.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/options.h"

namespace kvaccel::lsm {

struct BlockHandle {
  uint64_t offset = 0;    // physical offset in file
  uint64_t physical = 0;  // physical (stored) bytes, excluding crc trailer
  uint64_t logical = 0;   // device-accounted bytes

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, BlockHandle* out);
};

class SstBuilder {
 public:
  SstBuilder(const DbOptions& options,
             std::unique_ptr<fs::WritableFile> file);

  // Keys must arrive in ascending internal-key order.
  // `entry_logical` is the device-accounted size of this entry.
  Status Add(const Slice& internal_key, const Slice& value_encoding,
             uint64_t entry_logical);
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t logical_size() const { return total_logical_; }
  SequenceNumber max_seq() const { return max_seq_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }

 private:
  Status FlushBlock();

  const DbOptions& options_;
  std::unique_ptr<fs::WritableFile> file_;
  BloomFilter bloom_;
  std::string block_buf_;
  uint64_t block_logical_ = 0;
  uint64_t file_offset_ = 0;  // physical
  std::vector<std::pair<std::string, BlockHandle>> index_;
  std::vector<uint32_t> key_hashes_;
  std::string smallest_, largest_;
  uint64_t num_entries_ = 0;
  uint64_t total_logical_ = 0;
  SequenceNumber max_seq_ = 0;
  bool finished_ = false;
};

class SstReader : public std::enable_shared_from_this<SstReader> {
 public:
  // Opens the table: reads footer, index and filter (device-charged once).
  static Status Open(const DbOptions& options, fs::SimFs* fs,
                     const std::string& filename, uint64_t file_number,
                     BlockCache* cache, std::shared_ptr<SstReader>* reader);

  // Point lookup. On return:
  //  - !found: key not in this table (search older tables);
  //  - found && *type == kValue: *value set;
  //  - found && *type == kDeletion: tombstone.
  Status Get(const ReadOptions& ropts, const Slice& internal_seek_key,
             bool* found, ValueType* type, Value* value,
             SequenceNumber* seq = nullptr);

  std::unique_ptr<Iterator> NewIterator(const ReadOptions& ropts);

  uint64_t num_entries() const { return num_entries_; }
  uint64_t logical_size() const { return total_logical_; }
  Slice smallest() const { return smallest_; }
  Slice largest() const { return largest_; }

  // Routes this reader's data-block reads device-side (NAND only, no PCIe)
  // for NDP-offloaded compaction inputs. The footer/index read in Open has
  // already happened host-side — that is the command-setup metadata the
  // COMPACT descriptor ships anyway.
  void set_device_side(bool v) {
    if (file_ != nullptr) file_->set_device_side(v);
  }

  // Appends the last internal key of every data block — natural split points
  // for range-partitioned subcompactions (blocks are near-equal logical
  // size, so evenly spaced boundaries balance bytes). Costs no device I/O:
  // the index is resident from Open.
  void AppendBlockBoundaries(std::vector<std::string>* keys) const {
    for (const auto& [last_key, handle] : index_) keys->push_back(last_key);
  }

 private:
  friend class SstIterator;
  SstReader(const DbOptions& options, uint64_t file_number, BlockCache* cache)
      : options_(options), file_number_(file_number), cache_(cache),
        bloom_(options.bloom_bits_per_key) {}

  // Loads (possibly from cache) the data block for index position `i`.
  // CRCs are verified iff both DbOptions::verify_checksums and
  // ropts.verify_checksums are set.
  Status ReadBlock(size_t index_pos, const ReadOptions& ropts,
                   std::shared_ptr<BlockCache::Block>* block);
  // Sequential readahead: loads `count` consecutive blocks starting at
  // `first` with a single device read (one access latency for the whole
  // span), parsing and CRC-checking each block.
  Status ReadBlocksRange(size_t first, size_t count, const ReadOptions& ropts,
                         std::vector<std::shared_ptr<BlockCache::Block>>* out);
  // First index position whose block may contain `internal_key`.
  size_t FindBlock(const Slice& internal_key) const;

  const DbOptions& options_;
  uint64_t file_number_;
  BlockCache* cache_;
  BloomFilter bloom_;
  std::unique_ptr<fs::RandomAccessFile> file_;
  std::vector<std::pair<std::string, BlockHandle>> index_;
  std::string filter_;
  std::string smallest_, largest_;
  uint64_t num_entries_ = 0;
  uint64_t total_logical_ = 0;
};

// Parses the entries of one data block (used by reader and its iterator).
class BlockEntryCursor {
 public:
  explicit BlockEntryCursor(Slice contents) : input_(contents) {}

  // Advances to the next entry; false at end or on corruption.
  bool Next();
  Slice key() const { return key_; }
  Slice value() const { return value_; }
  bool corrupt() const { return corrupt_; }

 private:
  Slice input_;
  Slice key_, value_;
  bool corrupt_ = false;
};

}  // namespace kvaccel::lsm
