// LRU block cache: caches SST data blocks (keyed by file number + offset) in
// host memory, charged at *logical* size so the paper-scale 64 MB cache holds
// the same number of 4 KB-value blocks a real run would. Paper Table V's
// analysis hinges on the Dev-LSM iterator *lacking* exactly this cache.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

namespace kvaccel::lsm {

class BlockCache {
 public:
  struct Block {
    std::string physical;   // compact block contents
    uint64_t logical = 0;   // charged size
  };

  explicit BlockCache(uint64_t capacity) : capacity_(capacity) {}

  std::shared_ptr<Block> Lookup(uint64_t file_number, uint64_t offset) {
    auto it = index_.find(KeyOf(file_number, offset));
    if (it == index_.end()) {
      misses_++;
      return nullptr;
    }
    hits_++;
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->block;
  }

  void Insert(uint64_t file_number, uint64_t offset,
              std::shared_ptr<Block> block) {
    if (capacity_ == 0) return;
    uint64_t key = KeyOf(file_number, offset);
    auto it = index_.find(key);
    if (it != index_.end()) return;  // already cached
    usage_ += block->logical;
    lru_.push_front(Entry{key, std::move(block)});
    index_[key] = lru_.begin();
    while (usage_ > capacity_ && !lru_.empty()) {
      Entry& victim = lru_.back();
      usage_ -= victim.block->logical;
      index_.erase(victim.key);
      lru_.pop_back();
    }
  }

  void Erase(uint64_t file_number, uint64_t offset) {
    auto it = index_.find(KeyOf(file_number, offset));
    if (it == index_.end()) return;
    usage_ -= it->second->block->logical;
    lru_.erase(it->second);
    index_.erase(it);
  }

  uint64_t usage() const { return usage_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    uint64_t key;
    std::shared_ptr<Block> block;
  };

  static uint64_t KeyOf(uint64_t file_number, uint64_t offset) {
    // Offsets are < 2^40 at our scale; file numbers < 2^24.
    return (file_number << 40) ^ offset;
  }

  uint64_t capacity_;
  uint64_t usage_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<Entry> lru_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace kvaccel::lsm
