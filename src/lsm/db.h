// Public API of the host LSM-KVS — the RocksDB stand-in the paper builds on.
// Open a DB against a DbEnv (simulation clock, hybrid SSD, file system, host
// CPU pool); use it from simulated threads only.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/value.h"
#include "fs/simfs.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/stats.h"
#include "lsm/write_batch.h"
#include "sim/cpu_pool.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

namespace kvaccel::lsm {

// Bundle of simulated resources a DB instance runs against.
struct DbEnv {
  sim::SimEnv* env = nullptr;
  ssd::HybridSsd* ssd = nullptr;
  fs::SimFs* fs = nullptr;
  sim::CpuPool* host_cpu = nullptr;
};

// Snapshot of the Main-LSM internals the KVACCEL Detector polls (paper §V-C:
// "the number of SSTs in L0, MT size, and pending compaction size") plus the
// stall state itself, which baselines and ADOC also consume.
struct StallSignals {
  int l0_files = 0;
  int immutable_memtables = 0;
  uint64_t active_memtable_bytes = 0;  // logical
  uint64_t pending_compaction_bytes = 0;
  bool stalled = false;            // writers fully blocked right now
  bool slowdown_active = false;    // delayed-write throttling in effect
  bool stall_imminent = false;     // any trigger at/over its slowdown bound
  // Trigger configuration, so observers can judge proximity to a stop.
  int l0_slowdown_trigger = 0;
  int l0_stop_trigger = 0;
  int max_write_buffer_number = 0;
  uint64_t hard_pending_limit = 0;
  // Number of levels currently scoring >= 1.0, i.e. distinct compaction jobs
  // the scheduler wants to run right now (obs: `lsm.compaction.queue_depth`).
  int compaction_queue_depth = 0;
};

// Point-in-time view of the SST block cache (obs: `lsm.cache.*`).
struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t usage_bytes = 0;
  uint64_t capacity_bytes = 0;

  double hit_rate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

// One live SST as described by the current version — what the scrubber and
// the integrity checker walk (DESIGN.md §9).
struct SstFileInfo {
  uint64_t number = 0;
  int level = 0;
  uint64_t logical_size = 0;
  uint64_t num_entries = 0;
  SequenceNumber max_seq = 0;
  std::string smallest;  // internal keys
  std::string largest;
};

// One entry of a sorted-batch ingestion (see DB::IngestSortedBatch).
struct IngestEntry {
  std::string key;
  Value value;
  bool tombstone = false;
  // Sequence number the entry was originally written with; must come from
  // this DB's sequence space (AllocateSequence) so global ordering holds.
  SequenceNumber seq = 0;
};

class DB {
 public:
  // Opens (creating or recovering) the database stored in `env.fs`.
  static Status Open(const DbOptions& options, const DbEnv& env,
                     std::unique_ptr<DB>* db);

  virtual ~DB() = default;

  virtual Status Put(const WriteOptions& wopts, const Slice& key,
                     const Value& value) = 0;
  virtual Status Delete(const WriteOptions& wopts, const Slice& key) = 0;
  virtual Status Write(const WriteOptions& wopts, WriteBatch* batch) = 0;
  virtual Status Get(const ReadOptions& ropts, const Slice& key,
                     Value* value) = 0;
  // Get that also reports the sequence number of the deciding entry: the
  // found value's sequence, a tombstone's sequence (status NotFound), or 0
  // when the key never existed. KVACCEL's crash recovery compares these
  // against redirected-write sequences (DESIGN.md §5).
  virtual Status GetWithSequence(const ReadOptions& ropts, const Slice& key,
                                 Value* value, SequenceNumber* seq) = 0;
  // Reserves `count` consecutive sequence numbers from this DB's sequence
  // space and returns the first; used to version writes that bypass the
  // normal write path (KVACCEL redirection).
  virtual SequenceNumber AllocateSequence(uint32_t count) = 0;
  // The highest sequence number this DB has assigned or applied — the
  // replication/reconciliation frontier probe (reads the clock without
  // advancing it the way AllocateSequence would).
  virtual SequenceNumber LastSequence() = 0;
  // Forward iterator over live user keys (tombstones/old versions hidden).
  virtual std::unique_ptr<Iterator> NewIterator(const ReadOptions& ropts) = 0;

  // Bulk-loads already-sorted, already-versioned entries as one L0 SST,
  // bypassing WAL and memtable (RocksDB external-file-ingestion style).
  // KVACCEL's rollback uses this to merge the Dev-LSM scan stream without
  // paying the write path twice. Keys must be strictly ascending.
  virtual Status IngestSortedBatch(const std::vector<IngestEntry>& entries) = 0;

  // Blocks until every buffered write reaches an SST.
  virtual Status FlushAll() = 0;
  // Blocks until no level wants compaction (test/bootstrap helper).
  virtual Status WaitForCompactionIdle() = 0;
  // Stops background work and joins the DB's simulated threads. Must be
  // called before SimEnv::Run() can return.
  virtual Status Close() = 0;

  // The latched background error, if any (RocksDB-style): once a flush or
  // compaction fails unrecoverably the DB refuses further writes with this
  // status until reopened. Reads keep working.
  virtual Status GetBackgroundError() = 0;

  // --- Integrity hooks (scrubber / checker, DESIGN.md §9) ---
  // Every SST in the current version, L0 downward.
  virtual std::vector<SstFileInfo> ListSstFiles() = 0;
  // Re-reads every block of SST `number` with checksum verification on and
  // cross-checks the file's contents against its version metadata (key
  // order within range, entry count, max sequence). Returns NotFound when
  // the file is no longer part of the current version (compacted away since
  // it was listed — benign for an incremental scrubber), Corruption on any
  // mismatch. `*bytes_read` (optional) reports the logical bytes scanned.
  virtual Status VerifySstFile(uint64_t number,
                               uint64_t* bytes_read = nullptr) = 0;

  virtual const DbStats& stats() const = 0;
  virtual DbStats& mutable_stats() = 0;
  virtual BlockCacheStats GetBlockCacheStats() = 0;
  virtual StallSignals GetStallSignals() = 0;
  virtual uint64_t TotalSstBytes() = 0;

  // --- Dynamic tuning hooks (used by the ADOC baseline, paper §II-B) ---
  virtual void SetCompactionThreads(int n) = 0;
  virtual int compaction_threads() const = 0;
  virtual void SetWriteBufferSize(uint64_t bytes) = 0;
  virtual uint64_t write_buffer_size() const = 0;
  virtual void SetSlowdownEnabled(bool enabled) = 0;
  // Width cap for range-partitioned subcompactions (DESIGN.md §10). The ADOC
  // tuner moves this together with the thread budget.
  virtual void SetMaxSubcompactions(int n) = 0;
  virtual int max_subcompactions() const = 0;
};

}  // namespace kvaccel::lsm
