#include "lsm/db_impl.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "sim/backoff.h"
#include "sim/fault.h"

namespace kvaccel::lsm {

using sim::SimLockGuard;

namespace {
// Device errors worth retrying; Corruption/NoSpace/InvalidArgument are not.
bool IsTransient(const Status& s) {
  return s.IsIOError() || s.IsBusy() || s.IsTryAgain();
}
}  // namespace

// ---------------- Open / lifecycle ----------------

Status DB::Open(const DbOptions& options, const DbEnv& env,
                std::unique_ptr<DB>* db) {
  auto impl = std::make_unique<DbImpl>(options, env);
  Status s = impl->OpenImpl();
  if (!s.ok()) return s;
  *db = std::move(impl);
  return Status::OK();
}

DbImpl::DbImpl(const DbOptions& options, const DbEnv& env)
    : options_(options), denv_(env), env_(env.env),
      retry_rng_(options.io_retry_jitter_seed),
      active_compaction_threads_(options.compaction_threads),
      write_buffer_size_(options.write_buffer_size),
      slowdown_enabled_(options.enable_slowdown),
      max_compaction_workers_(std::max(8, options.compaction_threads)),
      max_subcompactions_(std::max(1, options.max_subcompactions)) {}

DbImpl::~DbImpl() {
  // Close() must have run inside the simulation; assert-level check only.
  assert(closed_ || bg_threads_.empty());
}

std::string DbImpl::SstName(uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%06" PRIu64 ".sst", number);
  return buf;
}

std::string DbImpl::LogName(uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%06" PRIu64 ".log", number);
  return buf;
}

Status DbImpl::OpenImpl() {
  tracer_ = env_->tracer();
  if (tracer_ != nullptr) {
    tr_wal_ = tracer_->RegisterTrack("lsm.wal");
    tr_mem_ = tracer_->RegisterTrack("lsm.memtable");
    tr_flush_ = tracer_->RegisterTrack("lsm.flush");
    tr_stall_ = tracer_->RegisterTrack("lsm.stall");
    tr_slowdown_ = tracer_->RegisterTrack("lsm.slowdown");
    for (int i = 0; i < max_compaction_workers_; i++) {
      tr_compact_.push_back(
          tracer_->RegisterTrack("lsm.compaction-" + std::to_string(i)));
    }
    // Helper-actor lanes for range-partitioned subcompactions; sized at the
    // worker pool so even every-worker-split jobs get distinct lanes.
    for (int i = 0; i < max_compaction_workers_; i++) {
      tr_subcompact_.push_back(
          tracer_->RegisterTrack("lsm.subcompact-" + std::to_string(i)));
    }
    wal_append_span_.Init(tracer_, tr_wal_, "wal.append", FromMicros(50));
    wal_sync_span_.Init(tracer_, tr_wal_, "wal.sync", FromMicros(50));
  }
  if (options_.compaction_rate_limit > 0 && denv_.ssd != nullptr) {
    compaction_rate_bps_ =
        options_.compaction_rate_limit * denv_.ssd->config().nand_bytes_per_sec;
  }
  block_cache_ =
      std::make_unique<BlockCache>(options_.block_cache_capacity);
  versions_ = std::make_unique<VersionSet>(options_, denv_.fs);

  Status s;
  mem_ = std::make_shared<MemTable>();
  if (denv_.fs->FileExists("CURRENT")) {
    s = versions_->Recover();
    if (!s.ok()) return s;
    // The manifest's next-file counter lags any allocation that crashed
    // before its LogAndApply — in particular WAL numbers, which are never
    // recorded in an edit at all. Reusing such a number for the fresh WAL
    // below would truncate a just-replayed log while its records still live
    // only in the memtable; a second crash then loses acknowledged writes.
    for (const std::string& name : denv_.fs->GetChildren()) {
      if (name.size() != 10) continue;
      if (name.substr(6) != ".log" && name.substr(6) != ".sst") continue;
      versions_->MarkFileNumberUsed(strtoull(name.c_str(), nullptr, 10));
    }
    // Replay WALs newer than the manifest's log number into the memtable.
    for (const std::string& name : denv_.fs->GetChildren()) {
      if (name.size() != 10 || name.substr(6) != ".log") continue;
      uint64_t number = strtoull(name.c_str(), nullptr, 10);
      if (number < versions_->log_number()) continue;
      std::unique_ptr<fs::RandomAccessFile> file;
      s = denv_.fs->NewRandomAccessFile(name, &file);
      if (!s.ok()) return s;
      LogReader reader(std::move(file));
      std::string payload;
      Status rs;
      while (reader.ReadRecord(&payload, &rs)) {
        WriteBatch batch;
        rs = WriteBatch::ParseFrom(payload, &batch);
        if (!rs.ok()) return rs;
        rs = batch.InsertInto(mem_.get());
        if (!rs.ok()) return rs;
        SequenceNumber max_seq = batch.Sequence() + batch.Count() - 1;
        if (max_seq > versions_->last_sequence()) {
          versions_->SetLastSequence(max_seq);
        }
      }
      if (!rs.ok()) return rs;
    }
    // A crash can strand SSTs a flush/compaction wrote but never installed
    // (e.g. some sub-ranges of a split job finished, the atomic install did
    // not) and WALs the manifest already superseded. Recovery is the only
    // point where "referenced by nothing" is decidable without tracking
    // in-flight writers, so reap them here.
    std::vector<std::string> orphans;
    auto version = versions_->current();
    for (const std::string& name : denv_.fs->GetChildren()) {
      if (name.size() != 10) continue;
      uint64_t number = strtoull(name.c_str(), nullptr, 10);
      if (name.substr(6) == ".sst") {
        bool live = false;
        for (int level = 0; level < kNumLevels && !live; level++) {
          for (const auto& f : version->files(level)) {
            if (f->number == number) {
              live = true;
              break;
            }
          }
        }
        if (!live) orphans.push_back(name);
      } else if (name.substr(6) == ".log" &&
                 number < versions_->log_number()) {
        orphans.push_back(name);
      }
    }
    for (const std::string& name : orphans) {
      denv_.fs->DeleteFile(name);
      stats_.orphan_files_removed++;
    }
  } else {
    s = versions_->Create();
    if (!s.ok()) return s;
  }

  // Fresh WAL for the (possibly replayed) active memtable.
  wal_number_ = versions_->NewFileNumber();
  std::unique_ptr<fs::WritableFile> wal_file;
  s = denv_.fs->NewWritableFile(LogName(wal_number_), &wal_file);
  if (!s.ok()) return s;
  // Unsynced WAL rides the page cache (db_bench default); a WAL deleted
  // after its memtable flushes may never touch the device.
  wal_file->set_writeback_chunk(fs::kLazyWriteback);
  wal_ = std::make_unique<LogWriter>(std::move(wal_file));

  bg_threads_.push_back(
      env_->Spawn("lsm-flush", [this] { FlushThreadLoop(); }));
  for (int i = 0; i < max_compaction_workers_; i++) {
    bg_threads_.push_back(env_->Spawn(
        "lsm-compact-" + std::to_string(i),
        [this, i] { CompactionThreadLoop(i); }));
  }
  return Status::OK();
}

Status DbImpl::Close() {
  {
    SimLockGuard l(mu_);
    if (closed_) return Status::OK();
    shutting_down_ = true;
    bg_cv_.NotifyAll();
    stall_cv_.NotifyAll();
    work_done_cv_.NotifyAll();
  }
  for (auto* t : bg_threads_) env_->Join(t);
  bg_threads_.clear();
  {
    SimLockGuard l(mu_);
    if (tracer_ != nullptr) {
      // Close any span the shutdown interrupted and drain the WAL
      // coalescers: the tracer may outlive this DB, so nothing here may be
      // deferred to serialization time.
      if (stats_.stall_regions.open()) tracer_->End(tr_stall_, "stall");
      if (in_slowdown_region_) tracer_->End(tr_slowdown_, "slowdown");
      wal_append_span_.Flush();
      wal_sync_span_.Flush();
    }
    stats_.stall_regions.CloseAt(env_->Now());
    stats_.slowdown_regions.CloseAt(env_->Now());
    closed_ = true;
  }
  ReapObsoleteFiles();
  if (wal_ != nullptr) wal_->Close();
  return versions_->CloseManifest();
}

Status DbImpl::GetBackgroundError() {
  SimLockGuard l(mu_);
  return bg_error_;
}

Status DbImpl::RetryTransient(const std::function<Status()>& fn) {
  Status s = fn();
  Nanos backoff = 0;
  for (int attempt = 0;
       !s.ok() && IsTransient(s) && attempt < options_.max_io_retries;
       attempt++) {
    {
      SimLockGuard l(mu_);
      if (shutting_down_) return s;
      stats_.io_retries++;
      // Decorrelated jitter, capped: retriers across shards/nodes share the
      // device but not the rng stream, so their waves spread out instead of
      // colliding in lockstep. Drawn under mu_ for a deterministic stream.
      backoff = sim::NextDecorrelatedDelay(&retry_rng_,
                                           options_.io_retry_backoff,
                                           options_.io_retry_backoff_cap,
                                           backoff);
    }
    env_->SleepFor(backoff);
    s = fn();
  }
  return s;
}

// ---------------- Write path ----------------

Status DbImpl::Put(const WriteOptions& wopts, const Slice& key,
                   const Value& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(wopts, &batch);
}

Status DbImpl::Delete(const WriteOptions& wopts, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(wopts, &batch);
}

Status DbImpl::Write(const WriteOptions& wopts, WriteBatch* batch) {
  Nanos start = env_->Now();
  // Client-side CPU: key generation, batch/WAL encoding, skiplist insert.
  denv_.host_cpu->Consume(options_.put_cpu_ns * batch->Count());

  Writer w(batch, wopts);
  mu_.Lock();
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.Wait(mu_);
  }
  if (w.done) {
    // A leader committed this batch on our behalf.
    Status s = w.status;
    Nanos now = env_->Now();
    stats_.writes_total += batch->Count();
    stats_.write_bytes_total += batch->LogicalSize();
    stats_.writes_completed.Add(now, batch->Count());
    stats_.put_latency.Add(now - start);
    mu_.Unlock();
    return s;
  }

  // Leader: gate once for the group, merge followers, commit once.
  Status s = MakeRoomForWrite(batch->LogicalSize());
  Writer* last_writer = &w;
  if (s.ok()) {
    WriteBatch* group = BuildBatchGroup(&last_writer);
    // Reserve the group's sequence range before releasing mu_: the KVACCEL
    // redirect path allocates from the same space concurrently, so the range
    // must be published immediately even though the insert completes later.
    // A batch applied FROM replication commits at the primary's sequence
    // instead (never coalesced, see BuildBatchGroup), advancing
    // last_sequence past it so local allocation continues above.
    if (wopts.replicated_seq != 0) {
      group->SetSequence(wopts.replicated_seq);
      SequenceNumber last = wopts.replicated_seq + group->Count() - 1;
      if (last > versions_->last_sequence()) versions_->SetLastSequence(last);
    } else {
      group->SetSequence(AllocateSequenceLocked(group->Count()));
    }
    stats_.write_groups++;
    stats_.group_commit_size.Add(group->Count());

    // The queue front (this leader) owns the write path, so mem_/wal_ are
    // stable while unlocked: memtable switches happen only under this
    // leadership (FlushAll waits out an in-flight commit). Releasing mu_
    // here is what lets followers enqueue — the queueing group commit
    // coalesces.
    commit_in_flight_ = true;
    mu_.Unlock();
    if (options_.wal_enabled && !wopts.disable_wal) {
      Nanos append_start = tracer_ != nullptr ? env_->Now() : 0;
      s = wal_->AddRecord(group->Contents(), group->LogicalSize());
      if (tracer_ != nullptr) {
        wal_append_span_.Add(append_start, env_->Now(),
                             group->LogicalSize());
      }
      if (s.ok() && sim::FaultAt(env_, "crash.wal.post_append")) {
        // Power lost after the append, before it could become durable: the
        // group is never acknowledged.
        s = Status::IOError("simulated crash");
      }
      if (s.ok() && (wopts.sync || options_.wal_sync)) {
        Nanos sync_start = tracer_ != nullptr ? env_->Now() : 0;
        s = RetryTransient([this] { return wal_->Sync(); });
        if (tracer_ != nullptr) {
          wal_sync_span_.Add(sync_start, env_->Now(), 0);
        }
      }
      if (s.ok() && sim::FaultAt(env_, "crash.wal.post_sync")) {
        // Power lost after the sync, before the memtable apply: the group is
        // durable in the WAL but never acknowledged.
        s = Status::IOError("simulated crash");
      }
    }
    // Ship the group to the replication peer (HA pair). A shipper failure
    // fails the group: locally WAL-durable but unacked — the same ambiguity
    // window as crash.wal.post_sync, which recovery already tolerates.
    // Batches applied FROM replication are not re-shipped.
    if (s.ok() && options_.wal_shipper && wopts.replicated_seq == 0) {
      s = options_.wal_shipper(*group, group->Sequence());
    }
    if (s.ok()) s = group->InsertInto(mem_.get());
    mu_.Lock();
    commit_in_flight_ = false;
    work_done_cv_.NotifyAll();
    if (group == &group_scratch_) group_scratch_.Clear();
  }

  // Complete the whole group; the next queued writer (if any) leads.
  Nanos now = env_->Now();
  for (;;) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = s;
      ready->done = true;
      ready->cv.NotifyOne();
    } else {
      stats_.writes_total += batch->Count();
      stats_.write_bytes_total += batch->LogicalSize();
      stats_.writes_completed.Add(now, batch->Count());
      stats_.put_latency.Add(now - start);
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) writers_.front()->cv.NotifyOne();
  mu_.Unlock();
  return s;
}

WriteBatch* DbImpl::BuildBatchGroup(Writer** last_writer) {
  assert(!writers_.empty());
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  uint64_t size = first->batch->LogicalSize();

  // A small leading batch caps the group lower, so a latency-sensitive tiny
  // write is not committed behind megabytes of followers.
  uint64_t max_size = options_.max_group_commit_bytes;
  if (size <= max_size / 8) max_size = size + max_size / 8;

  *last_writer = first;
  for (auto it = writers_.begin() + 1; it != writers_.end(); ++it) {
    Writer* wr = *it;
    // Never fold a sync write into a non-sync group (its durability demand
    // would be silently dropped), and keep WAL usage uniform per group.
    if (wr->wopts.sync && !first->wopts.sync) break;
    if (wr->wopts.disable_wal != first->wopts.disable_wal) break;
    // Replicated batches carry a fixed sequence range; never coalesce them
    // with anything (their range is not contiguous with a fresh allocation).
    if (first->wopts.replicated_seq != 0 || wr->wopts.replicated_seq != 0) {
      break;
    }
    if (size + wr->batch->LogicalSize() > max_size) break;
    size += wr->batch->LogicalSize();
    if (result == first->batch) {
      group_scratch_.Clear();
      group_scratch_.Append(*first->batch);
      result = &group_scratch_;
    }
    result->Append(*wr->batch);
    *last_writer = wr;
  }
  return result;
}

bool DbImpl::StopConditionLocked(std::string* reason) const {
  auto version = versions_->current();
  if (version->NumLevelFiles(0) >= options_.l0_stop_writes_trigger) {
    if (reason != nullptr) *reason = "L0 stop trigger";
    return true;
  }
  if (versions_->EstimatedPendingCompactionBytes() >=
      options_.hard_pending_compaction_bytes_limit) {
    if (reason != nullptr) *reason = "pending compaction bytes hard limit";
    return true;
  }
  return false;
}

bool DbImpl::SlowdownConditionLocked() const {
  auto version = versions_->current();
  if (version->NumLevelFiles(0) >= options_.l0_slowdown_writes_trigger) {
    return true;
  }
  if (versions_->EstimatedPendingCompactionBytes() >=
      options_.soft_pending_compaction_bytes_limit) {
    return true;
  }
  if (static_cast<int>(imm_.size()) >= options_.max_write_buffer_number - 1 &&
      options_.max_write_buffer_number > 1) {
    return true;
  }
  return false;
}

Status DbImpl::SwitchMemtableLocked() {
  uint64_t new_wal = versions_->NewFileNumber();
  std::unique_ptr<fs::WritableFile> wal_file;
  Status s = denv_.fs->NewWritableFile(LogName(new_wal), &wal_file);
  if (!s.ok()) return s;
  wal_file->set_writeback_chunk(fs::kLazyWriteback);
  wal_->Close();
  imm_.push_back({mem_, wal_number_});
  mem_ = std::make_shared<MemTable>();
  wal_ = std::make_unique<LogWriter>(std::move(wal_file));
  wal_number_ = new_wal;
  if (tracer_ != nullptr) tracer_->Instant(tr_mem_, "memtable.switch");
  bg_cv_.NotifyAll();
  return Status::OK();
}

Status DbImpl::MakeRoomForWrite(uint64_t batch_logical) {
  bool delayed_once = false;
  for (;;) {
    if (shutting_down_) return Status::Aborted("db closing");
    if (!bg_error_.ok()) return bg_error_;

    std::string reason;
    bool stop = StopConditionLocked(&reason);

    // RocksDB's delayed-write mechanism: pace this write at
    // delayed_write_rate while any slowdown trigger holds (once per write).
    if (!stop && !delayed_once && slowdown_enabled_ &&
        SlowdownConditionLocked()) {
      delayed_once = true;
      stats_.slowdown_events++;
      if (!in_slowdown_region_) {
        in_slowdown_region_ = true;
        stats_.slowdown_regions.Begin(env_->Now());
        if (tracer_ != nullptr) tracer_->Begin(tr_slowdown_, "slowdown");
      }
      uint64_t bytes = batch_logical == 0 ? 4096 : batch_logical;
      // RocksDB escalates the delay as conditions approach the stop trigger
      // (its write controller repeatedly decays the delayed rate); model
      // that with a factor growing over the slowdown->stop window so hard
      // stops are genuinely prevented rather than merely postponed.
      double escalate = 1.0;
      int l0 = versions_->current()->NumLevelFiles(0);
      if (l0 >= options_.l0_slowdown_writes_trigger &&
          options_.l0_stop_writes_trigger >
              options_.l0_slowdown_writes_trigger) {
        double frac = static_cast<double>(
                          l0 - options_.l0_slowdown_writes_trigger) /
                      static_cast<double>(options_.l0_stop_writes_trigger -
                                          options_.l0_slowdown_writes_trigger);
        escalate = 1.0 + 7.0 * std::min(1.0, frac);
      }
      Nanos delay = static_cast<Nanos>(
          static_cast<double>(TransferNanos(bytes,
                                            options_.delayed_write_rate)) *
          escalate);
      bg_cv_.NotifyAll();
      mu_.Unlock();
      env_->SleepFor(delay);
      mu_.Lock();
      continue;
    }
    if (in_slowdown_region_ && !SlowdownConditionLocked()) {
      in_slowdown_region_ = false;
      stats_.slowdown_regions.End(env_->Now());
      if (tracer_ != nullptr) tracer_->End(tr_slowdown_, "slowdown");
    }

    if (stop) {
      // Full write stall (paper events 2/3).
      stats_.stall_events++;
      stats_.stall_regions.Begin(env_->Now());
      if (tracer_ != nullptr) tracer_->Begin(tr_stall_, "stall");
      while (!shutting_down_ && bg_error_.ok() &&
             StopConditionLocked(nullptr)) {
        bg_cv_.NotifyAll();
        stall_cv_.Wait(mu_);
      }
      stats_.stall_regions.End(env_->Now());
      if (tracer_ != nullptr) tracer_->End(tr_stall_, "stall");
      continue;
    }

    if (mem_->LogicalSize() + batch_logical <= write_buffer_size_) {
      return Status::OK();  // room in the active memtable
    }

    if (static_cast<int>(imm_.size()) >=
        options_.max_write_buffer_number - 1) {
      // Flush cannot keep up (paper event 1): block until an immutable
      // memtable drains.
      stats_.stall_events++;
      stats_.stall_regions.Begin(env_->Now());
      if (tracer_ != nullptr) tracer_->Begin(tr_stall_, "stall");
      while (!shutting_down_ && bg_error_.ok() &&
             static_cast<int>(imm_.size()) >=
                 options_.max_write_buffer_number - 1) {
        bg_cv_.NotifyAll();
        stall_cv_.Wait(mu_);
      }
      stats_.stall_regions.End(env_->Now());
      if (tracer_ != nullptr) tracer_->End(tr_stall_, "stall");
      continue;
    }

    Status s = SwitchMemtableLocked();
    if (!s.ok()) return s;
  }
}

// ---------------- Read path ----------------

Status DbImpl::GetTable(uint64_t number, std::shared_ptr<SstReader>* reader) {
  {
    auto it = table_cache_.find(number);
    if (it != table_cache_.end()) {
      *reader = it->second;
      return Status::OK();
    }
  }
  std::shared_ptr<SstReader> fresh;
  Status s = SstReader::Open(options_, denv_.fs, SstName(number), number,
                             block_cache_.get(), &fresh);
  if (!s.ok()) return s;
  // Another thread may have opened it while we yielded in I/O; keep one.
  auto [it, inserted] = table_cache_.emplace(number, fresh);
  *reader = it->second;
  return Status::OK();
}

Status DbImpl::SearchSstsLocked(const ReadOptions& ropts,
                                const LookupKey& lkey,
                                std::shared_ptr<const Version> version,
                                Value* value, SequenceNumber* seq) {
  // mu_ NOT held here despite the name pattern: `version` is an immutable
  // snapshot; table opens/reads yield freely.
  //
  // Every overlapping file in every level is probed and the highest-sequence
  // decider wins. Level order does NOT imply sequence order here: rollback
  // re-ingests device pairs at their historical host sequences (DESIGN.md §5
  // extension 3), and compaction can carry such a file to L1+ while a stale
  // WAL-replayed version of the same key is later flushed to L0 with a
  // LOWER sequence — so neither "newest L0 file first" nor "L1 before L2"
  // may stop at the first hit. Files that cannot beat the current best
  // (max_seq <= *seq, seeded by the caller with any memtable hit) are
  // skipped before any I/O; the rest are bloom-guarded, so extra probes
  // rarely cost device reads.
  Slice user_key = lkey.user_key();
  SequenceNumber best = *seq;
  Status result = Status::NotFound("key absent");
  Status io_error;
  version->ForEachOverlapping(
      user_key, [&](int /*level*/, const FileMetaPtr& f) {
        if (f->max_seq <= best) return true;
        std::shared_ptr<SstReader> table;
        Status s = GetTable(f->number, &table);
        if (!s.ok()) {
          io_error = s;
          return false;
        }
        bool found = false;
        ValueType type;
        Value v;
        SequenceNumber s2 = 0;
        s = table->Get(ropts, lkey.internal_key(), &found, &type, &v, &s2);
        if (!s.ok()) {
          io_error = s;
          return false;
        }
        if (found && s2 > best) {
          best = s2;
          if (type == ValueType::kValue) {
            *value = std::move(v);
            result = Status::OK();
          } else {
            result = Status::NotFound("tombstone");
          }
        }
        return true;
      });
  if (!io_error.ok()) return io_error;
  if (best > *seq) *seq = best;
  return result;
}

Status DbImpl::Get(const ReadOptions& ropts, const Slice& key, Value* value) {
  SequenceNumber seq = 0;
  return GetWithSequence(ropts, key, value, &seq);
}

SequenceNumber DbImpl::AllocateSequence(uint32_t count) {
  SimLockGuard l(mu_);
  return AllocateSequenceLocked(count);
}

SequenceNumber DbImpl::LastSequence() {
  SimLockGuard l(mu_);
  return versions_->last_sequence();
}

SequenceNumber DbImpl::AllocateSequenceLocked(uint32_t count) {
  SequenceNumber first = versions_->last_sequence() + 1;
  versions_->SetLastSequence(first + count - 1);
  return first;
}

Status DbImpl::GetWithSequence(const ReadOptions& ropts, const Slice& key,
                               Value* value, SequenceNumber* entry_seq) {
  Nanos start = env_->Now();
  denv_.host_cpu->Consume(options_.get_cpu_ns);
  *entry_seq = 0;

  mu_.Lock();
  std::shared_ptr<MemTable> mem = mem_;
  std::vector<std::shared_ptr<MemTable>> imms;
  for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {
    imms.push_back(it->mem);  // newest first
  }
  std::shared_ptr<const Version> version = versions_->current();
  SequenceNumber snapshot = versions_->last_sequence();
  mu_.Unlock();

  LookupKey lkey(key, snapshot);
  Status s;
  bool hit = mem->Get(lkey, value, &s, entry_seq);
  if (!hit) {
    for (const auto& imm : imms) {
      if (imm->Get(lkey, value, &s, entry_seq)) {
        hit = true;
        break;
      }
    }
  }
  // The SST sweep runs even on a memtable hit: a bulk-ingested file may hold
  // a NEWER sequence for this key than a WAL-replayed memtable entry (see
  // SearchSstsLocked). The memtable sequence floors the sweep, so files that
  // cannot supersede it are skipped without I/O.
  SequenceNumber mem_seq = *entry_seq;
  Status sst = SearchSstsLocked(ropts, lkey, version, value, entry_seq);
  if (!hit || *entry_seq > mem_seq || (!sst.ok() && !sst.IsNotFound())) {
    s = sst;
  }

  Nanos now = env_->Now();
  mu_.Lock();
  stats_.reads_total++;
  stats_.reads_completed.Add(now, 1);
  stats_.get_latency.Add(now - start);
  mu_.Unlock();
  return s;
}

// ---------------- Iterators ----------------

namespace {

// Lazily concatenates the (sorted, disjoint) files of one L1+ level.
class LevelConcatIterator : public Iterator {
 public:
  using TableOpener =
      std::function<Status(uint64_t, std::shared_ptr<SstReader>*)>;

  LevelConcatIterator(std::vector<FileMetaPtr> files, TableOpener opener,
                      ReadOptions ropts)
      : files_(std::move(files)), opener_(std::move(opener)), ropts_(ropts) {}

  bool Valid() const override { return iter_ != nullptr && iter_->Valid(); }

  void SeekToFirst() override {
    file_pos_ = 0;
    InitFileIter(nullptr);
  }

  void Seek(const Slice& target) override {
    InternalKeyComparator cmp;
    // First file whose largest >= target.
    size_t lo = 0, hi = files_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cmp.Compare(Slice(files_[mid]->largest), target) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    file_pos_ = lo;
    InitFileIter(&target);
  }

  void Next() override {
    assert(Valid());
    iter_->Next();
    while (status_.ok() && (iter_ == nullptr || !iter_->Valid()) &&
           file_pos_ + 1 < files_.size()) {
      file_pos_++;
      OpenCurrent(nullptr);
    }
  }

  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return status_; }

 private:
  void InitFileIter(const Slice* target) {
    iter_.reset();
    while (file_pos_ < files_.size()) {
      OpenCurrent(target);
      if (!status_.ok() || iter_ == nullptr) return;
      if (iter_->Valid()) return;
      file_pos_++;
      target = nullptr;
    }
  }

  void OpenCurrent(const Slice* target) {
    std::shared_ptr<SstReader> table;
    status_ = opener_(files_[file_pos_]->number, &table);
    if (!status_.ok()) {
      iter_.reset();
      return;
    }
    iter_ = table->NewIterator(ropts_);
    if (target != nullptr) {
      iter_->Seek(*target);
    } else {
      iter_->SeekToFirst();
    }
  }

  std::vector<FileMetaPtr> files_;
  TableOpener opener_;
  ReadOptions ropts_;
  size_t file_pos_ = 0;
  std::unique_ptr<Iterator> iter_;
  Status status_;
};

// User-facing iterator: hides sequence numbers, old versions and tombstones.
class DbIter : public Iterator {
 public:
  DbIter(std::unique_ptr<Iterator> internal, SequenceNumber snapshot,
         sim::CpuPool* cpu, double next_cpu_ns, DbStats* stats,
         sim::SimEnv* env,
         std::vector<std::shared_ptr<MemTable>> pinned_mems,
         std::shared_ptr<const Version> pinned_version)
      : internal_(std::move(internal)), snapshot_(snapshot), cpu_(cpu),
        next_cpu_ns_(next_cpu_ns), stats_(stats), env_(env),
        pinned_mems_(std::move(pinned_mems)),
        pinned_version_(std::move(pinned_version)) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    saved_user_key_.clear();
    have_saved_ = false;
    internal_->SeekToFirst();
    FindNextUserEntry();
  }

  void Seek(const Slice& target) override {
    saved_user_key_.clear();
    have_saved_ = false;
    LookupKey lkey(target, snapshot_);
    internal_->Seek(lkey.internal_key());
    FindNextUserEntry();
  }

  void Next() override {
    assert(valid_);
    cpu_->Consume(next_cpu_ns_);
    internal_->Next();
    FindNextUserEntry();
  }

  // Returns the *user* key.
  Slice key() const override { return ExtractUserKey(internal_->key()); }
  // Returns the encoded Value payload; decode with Value::DecodeOrDie.
  Slice value() const override { return internal_->value(); }
  Status status() const override { return internal_->status(); }

 private:
  void FindNextUserEntry() {
    valid_ = false;
    while (internal_->Valid()) {
      Slice ikey = internal_->key();
      if (ExtractSequence(ikey) > snapshot_) {
        internal_->Next();
        continue;
      }
      Slice ukey = ExtractUserKey(ikey);
      if (have_saved_ && ukey == Slice(saved_user_key_)) {
        internal_->Next();  // an older version of a key already decided
        continue;
      }
      saved_user_key_.assign(ukey.data(), ukey.size());
      have_saved_ = true;
      if (ExtractValueType(ikey) == ValueType::kDeletion) {
        internal_->Next();  // tombstone hides everything older
        continue;
      }
      valid_ = true;
      if (stats_ != nullptr) {
        // Count produced entries for scan-throughput accounting.
        stats_->seeks_completed.Add(env_->Now(), 0);
      }
      return;
    }
  }

  std::unique_ptr<Iterator> internal_;
  SequenceNumber snapshot_;
  sim::CpuPool* cpu_;
  double next_cpu_ns_;
  DbStats* stats_;
  sim::SimEnv* env_;
  // Keep the snapshot alive: memtable arenas and SST metadata must outlive
  // this iterator even if a flush/compaction retires them meanwhile.
  std::vector<std::shared_ptr<MemTable>> pinned_mems_;
  std::shared_ptr<const Version> pinned_version_;
  std::string saved_user_key_;
  bool have_saved_ = false;
  bool valid_ = false;
};

}  // namespace

std::unique_ptr<Iterator> DbImpl::NewIterator(const ReadOptions& ropts) {
  mu_.Lock();
  std::shared_ptr<MemTable> mem = mem_;
  std::vector<std::shared_ptr<MemTable>> imms;
  for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {
    imms.push_back(it->mem);
  }
  std::shared_ptr<const Version> version = versions_->current();
  SequenceNumber snapshot = versions_->last_sequence();
  mu_.Unlock();

  auto opener = [this](uint64_t number, std::shared_ptr<SstReader>* out) {
    return GetTable(number, out);
  };

  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem->NewIterator());
  for (const auto& imm : imms) children.push_back(imm->NewIterator());
  for (const auto& f : version->files(0)) {
    std::shared_ptr<SstReader> table;
    Status s = GetTable(f->number, &table);
    if (s.ok()) children.push_back(table->NewIterator(ropts));
  }
  for (int level = 1; level < kNumLevels; level++) {
    if (version->files(level).empty()) continue;
    children.push_back(std::make_unique<LevelConcatIterator>(
        version->files(level), opener, ropts));
  }
  auto merged = std::make_unique<MergingIterator<InternalKeyComparator>>(
      InternalKeyComparator(), std::move(children));
  std::vector<std::shared_ptr<MemTable>> pinned;
  pinned.push_back(mem);
  for (const auto& imm : imms) pinned.push_back(imm);
  return std::make_unique<DbIter>(std::move(merged), snapshot, denv_.host_cpu,
                                  options_.next_cpu_ns, &stats_, env_,
                                  std::move(pinned), version);
}

// ---------------- Flush ----------------

void DbImpl::FlushThreadLoop() {
  mu_.Lock();
  while (!shutting_down_) {
    // A latched background error parks the thread: retrying forever against
    // a dead device would spin without advancing virtual time.
    if (imm_.empty() || !bg_error_.ok()) {
      bg_cv_.Wait(mu_);
      continue;
    }
    ImmEntry imm = imm_.front();
    flush_running_ = true;
    mu_.Unlock();

    Nanos flush_start = tracer_ != nullptr ? env_->Now() : 0;
    Status s = FlushImmToL0(imm);
    if (tracer_ != nullptr) {
      tracer_->Complete(tr_flush_, "flush", flush_start, env_->Now(),
                        imm.mem->LogicalSize());
    }

    mu_.Lock();
    flush_running_ = false;
    if (!s.ok()) {
      if (bg_error_.ok()) {
        bg_error_ = s;
        stats_.background_errors++;
      }
      LogError("flush failed: %s", s.ToString().c_str());
    } else {
      imm_.pop_front();
    }
    stall_cv_.NotifyAll();
    bg_cv_.NotifyAll();
    work_done_cv_.NotifyAll();
    if (s.ok()) {
      std::string old_log = LogName(imm.log_number);
      mu_.Unlock();
      denv_.fs->DeleteFile(old_log);  // WAL no longer needed
      ReapObsoleteFiles();
      mu_.Lock();
    }
  }
  mu_.Unlock();
}

Status DbImpl::BuildL0Sst(const ImmEntry& imm, uint64_t number,
                          FileMetaData* meta) {
  std::unique_ptr<fs::WritableFile> file;
  Status s = denv_.fs->NewWritableFile(SstName(number), &file);
  if (!s.ok()) return s;
  file->set_writeback_chunk(1 << 20);  // stream like bytes_per_sync
  SstBuilder builder(options_, std::move(file));

  auto iter = imm.mem->NewIterator();
  uint64_t cpu_debt_bytes = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (sim::FaultAt(env_, "crash.flush.mid")) {
      return Status::IOError("simulated crash");
    }
    Slice ikey = iter->key();
    Slice val = iter->value();
    Value decoded;
    uint64_t entry_logical = ikey.size();
    if (ExtractValueType(ikey) == ValueType::kValue) {
      Slice tmp = val;
      if (Value::DecodeFrom(&tmp, &decoded)) {
        entry_logical += decoded.logical_size();
      }
    }
    s = builder.Add(ikey, val, entry_logical);
    if (!s.ok()) return s;
    cpu_debt_bytes += entry_logical;
    if (cpu_debt_bytes >= options_.compaction_io_chunk) {
      // Flush is I/O-dominated; charge a light encode cost.
      denv_.host_cpu->Consume(0.5 * static_cast<double>(cpu_debt_bytes));
      cpu_debt_bytes = 0;
    }
  }
  if (cpu_debt_bytes > 0) {
    denv_.host_cpu->Consume(0.5 * static_cast<double>(cpu_debt_bytes));
  }
  s = builder.Finish();
  if (!s.ok()) return s;

  meta->number = number;
  meta->logical_size = builder.logical_size();
  meta->num_entries = builder.num_entries();
  meta->max_seq = builder.max_seq();
  meta->smallest = builder.smallest();
  meta->largest = builder.largest();
  return Status::OK();
}

Status DbImpl::FlushImmToL0(const ImmEntry& imm) {
  mu_.Lock();
  uint64_t number = versions_->NewFileNumber();
  mu_.Unlock();

  auto meta = std::make_shared<FileMetaData>();
  Status s = RetryTransient([&] {
    Status bs = BuildL0Sst(imm, number, meta.get());
    if (!bs.ok() && !sim::SimCrashed(env_)) {
      // Drop the partial output so a retry (or reopened DB) starts clean.
      denv_.fs->DeleteFile(SstName(number));
    }
    return bs;
  });
  if (!s.ok()) return s;

  mu_.Lock();
  VersionEdit edit;
  edit.AddFile(0, meta);
  // WALs older than every remaining memtable's log are obsolete.
  uint64_t min_log = wal_number_;
  for (size_t i = 1; i < imm_.size(); i++) {
    min_log = std::min(min_log, imm_[i].log_number);
  }
  edit.SetLogNumber(min_log);
  Status vs = versions_->LogAndApply(&edit);
  stats_.flush_count++;
  stats_.flush_bytes += meta->logical_size;
  mu_.Unlock();
  return vs;
}

// ---------------- Compaction ----------------

void DbImpl::CompactionThreadLoop(int worker_id) {
  mu_.Lock();
  while (!shutting_down_) {
    if (worker_id >= active_compaction_threads_ || !bg_error_.ok()) {
      // Parked: beyond the currently configured thread budget (ADOC shrink),
      // or the DB has latched a background error.
      bg_cv_.Wait(mu_);
      continue;
    }
    std::unique_ptr<Compaction> c =
        versions_->PickCompaction(AllowDeepCompactionLocked());
    if (c == nullptr) {
      bg_cv_.Wait(mu_);
      continue;
    }
    running_compactions_++;
    mu_.Unlock();

    uint32_t track = tracer_ != nullptr ? tr_compact_[worker_id] : 0;
    Nanos comp_start = tracer_ != nullptr ? env_->Now() : 0;
    Status s = RunCompaction(c.get(), track);
    if (tracer_ != nullptr) {
      tracer_->Complete(track, "compaction", comp_start, env_->Now());
    }

    mu_.Lock();
    running_compactions_--;
    c->MarkBeingCompacted(false);
    if (!s.ok()) {
      if (bg_error_.ok()) {
        bg_error_ = s;
        stats_.background_errors++;
      }
      LogError("compaction failed: %s", s.ToString().c_str());
    }
    stall_cv_.NotifyAll();
    bg_cv_.NotifyAll();
    work_done_cv_.NotifyAll();
  }
  mu_.Unlock();
}

bool DbImpl::AllowDeepCompactionLocked() const {
  // Slot reservation: while L0 pressure is building, hold the last free
  // worker slot back for the L0->L1 (or intra-L0) job that becomes pickable
  // the moment the current L0 work finishes. With nothing running there is
  // nothing to wait for, so any job may start.
  if (running_compactions_ == 0) return true;
  if (running_compactions_ + 1 < active_compaction_threads_) return true;
  return versions_->current()->NumLevelFiles(0) <
         options_.l0_slowdown_writes_trigger;
}

void DbImpl::ThrottleCompactionIo(uint64_t bytes) {
  if (bytes == 0) return;
  if (options_.compaction_io_arbiter) {
    // Shared-device fair-share path: the arbiter blocks until the
    // reservation is granted; the queue time still lands in this DB's
    // throttle accounting so per-shard reports stay comparable.
    Nanos waited = options_.compaction_io_arbiter(bytes);
    if (waited > 0) {
      mu_.Lock();
      stats_.compaction_throttle_ns += static_cast<uint64_t>(waited);
      mu_.Unlock();
    }
    return;
  }
  if (compaction_rate_bps_ <= 0) return;
  mu_.Lock();
  double now = static_cast<double>(env_->Now());
  double start = std::max(now, limiter_busy_until_ns_);
  limiter_busy_until_ns_ =
      start + static_cast<double>(bytes) * 1e9 / compaction_rate_bps_;
  double wake = limiter_busy_until_ns_;
  if (wake > now) stats_.compaction_throttle_ns +=
      static_cast<uint64_t>(wake - now);
  mu_.Unlock();
  if (wake > now) env_->SleepUntil(static_cast<Nanos>(wake));
}

Status DbImpl::RunCompaction(Compaction* c, uint32_t trace_track) {
  // Deep-level jobs are subject to the shared rate limiter; L0 relief work
  // (L0->L1, intra-L0) is exactly what un-gates stalled writers and runs
  // unthrottled.
  const bool throttled = c->level > 0;

  // Elision verdict for the whole job, decided before any work starts.
  // Intra-L0 merges only a subset of L0, so an older version of a deleted
  // key may live in an L0 file outside the job. The options hook lets an
  // external store (KVACCEL's Dev-LSM) veto elision while it holds redirected
  // pairs that recovery would re-ingest at their original sequence numbers.
  const bool elide_tombstones =
      !c->is_intra_l0 && (options_.allow_tombstone_elision == nullptr ||
                          options_.allow_tombstone_elision());

  // Decide the split up front — it only depends on the (immutable) inputs.
  std::vector<std::string> bounds;
  {
    SimLockGuard l(mu_);
    uint64_t threshold = options_.max_subcompaction_input != 0
                             ? options_.max_subcompaction_input
                             : 2 * options_.target_file_size;
    uint64_t input = c->InputBytes();
    if (!c->is_intra_l0 && max_subcompactions_ > 1 &&
        active_compaction_threads_ > 1 && threshold > 0 &&
        input > threshold) {
      int want = static_cast<int>(
          std::min<uint64_t>(static_cast<uint64_t>(max_subcompactions_),
                             (input + threshold - 1) / threshold));
      if (want > 1) {
        mu_.Unlock();
        bounds = SubcompactionBoundaries(c, want);
        mu_.Lock();
      }
    }
  }

  std::vector<FileMetaPtr> outputs;
  std::vector<uint64_t> created;
  uint64_t read_bytes = 0;
  uint64_t written_bytes = 0;

  // NDP placement (DESIGN.md §13): consult the planner once per job, after
  // the split decision so the COMPACT descriptor carries the sub-range count
  // — a split job runs its deep sub-ranges as independent device streams.
  OffloadGrant grant;
  bool offloaded = false;
  if (options_.compaction_offload) {
    OffloadJobInfo info;
    info.level = c->level;
    info.output_level = c->output_level;
    info.input_bytes = c->InputBytes();
    info.input_files =
        static_cast<int>(c->inputs[0].size() + c->inputs[1].size());
    info.subranges = static_cast<int>(bounds.size()) + 1;
    info.is_intra_l0 = c->is_intra_l0;
    offloaded = options_.compaction_offload(info, &grant);
  }

  auto attempt = [&](const OffloadGrant* ndp) {
    return RetryTransient([&] {
      outputs.clear();
      read_bytes = 0;
      written_bytes = 0;
      Status ws;
      if (!bounds.empty()) {
        ws = RunSubcompactions(c, bounds, throttled, elide_tombstones,
                               trace_track, ndp, &outputs, &created,
                               &read_bytes, &written_bytes);
      } else {
        ws = DoCompactionWork(c, KeyRange{},
                              ndp != nullptr ? "crash.ndp.merge.mid"
                                             : "crash.compaction.mid",
                              throttled, elide_tombstones, trace_track, ndp,
                              &outputs, &created, &read_bytes,
                              &written_bytes);
      }
      if (!ws.ok() && !sim::SimCrashed(env_)) {
        // Drop partial outputs so a retry (or reopened DB) starts clean.
        for (uint64_t n : created) denv_.fs->DeleteFile(SstName(n));
      }
      if (!ws.ok()) created.clear();
      return ws;
    });
  };
  Status s = attempt(offloaded ? &grant : nullptr);
  if (offloaded && !s.ok() && !sim::SimCrashed(env_)) {
    // Per-job fallback: report the device failure first (the planner opens
    // its circuit breaker), then rerun the whole job on the host path.
    grant.finish(false, 0, 0);
    mu_.Lock();
    stats_.ndp_fallbacks++;
    mu_.Unlock();
    offloaded = false;
    s = attempt(nullptr);
  }
  if (s.ok() && offloaded) {
    // Ship the output metadata back to the host. A crash while the result is
    // in flight (crash.ndp.result.pre) aborts before the install: the output
    // SSTs stay uninstalled strays that recovery reaps.
    s = grant.finish(true, outputs.size(), written_bytes);
  }
  if (!s.ok()) return s;

  // Install the result — all sub-ranges in ONE VersionEdit. MANIFEST
  // failures are not retried: a possibly half-appended edit must not be
  // followed by a duplicate. Crash atomicity: either the edit is durable and
  // every output is live, or none is and recovery reaps the strays.
  mu_.Lock();
  VersionEdit edit;
  for (const auto& f : c->inputs[0]) edit.DeleteFile(c->level, f->number);
  for (const auto& f : c->inputs[1]) {
    edit.DeleteFile(c->output_level, f->number);
  }
  for (const auto& meta : outputs) edit.AddFile(c->output_level, meta);
  s = versions_->LogAndApply(&edit);
  stats_.compaction_count++;
  stats_.compaction_bytes_read += read_bytes;
  stats_.compaction_bytes_written += written_bytes;
  if (offloaded) {
    stats_.ndp_compactions++;
    stats_.ndp_bytes_written += written_bytes;
  }
  if (c->is_intra_l0) stats_.intra_l0_compactions++;
  if (!bounds.empty()) {
    stats_.split_compactions++;
    stats_.subcompaction_count += bounds.size() + 1;
  }
  mu_.Unlock();
  if (!s.ok()) return s;

  // Retire the inputs; actual deletion waits until no pinned version can
  // still reference them.
  for (int which = 0; which < 2; which++) {
    for (const auto& f : c->inputs[which]) DeferObsoleteFile(f);
  }
  ReapObsoleteFiles();
  return Status::OK();
}

std::vector<std::string> DbImpl::SubcompactionBoundaries(Compaction* c,
                                                         int want) {
  // Candidate split points: the last user key of every data block of every
  // input (the index is resident, so this costs no device I/O). Blocks are
  // near-equal logical size, so evenly spaced candidates balance bytes.
  std::vector<std::string> candidates;
  std::string smallest_ukey;
  bool has_smallest = false;
  std::vector<std::string> block_keys;
  for (const auto& side : c->inputs) {
    for (const auto& f : side) {
      Slice file_smallest = ExtractUserKey(f->smallest);
      if (!has_smallest || file_smallest.compare(Slice(smallest_ukey)) < 0) {
        smallest_ukey.assign(file_smallest.data(), file_smallest.size());
        has_smallest = true;
      }
      std::shared_ptr<SstReader> table;
      block_keys.clear();
      if (GetTable(f->number, &table).ok()) {
        table->AppendBlockBoundaries(&block_keys);
        for (const std::string& ikey : block_keys) {
          candidates.push_back(ExtractUserKey(ikey).ToString());
        }
      } else {
        // Degraded: fall back to the file's own range end; the split is
        // coarser but still valid.
        candidates.push_back(ExtractUserKey(f->largest).ToString());
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // A boundary at (or before) the global smallest user key yields an empty
  // first range; drop such candidates.
  while (!candidates.empty() && has_smallest &&
         candidates.front() <= smallest_ukey) {
    candidates.erase(candidates.begin());
  }
  if (candidates.empty()) return {};
  std::vector<std::string> bounds;
  size_t n = candidates.size();
  if (n <= static_cast<size_t>(want - 1)) {
    bounds = std::move(candidates);
  } else {
    for (int i = 1; i < want; i++) {
      bounds.push_back(candidates[i * n / want]);
    }
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  }
  return bounds;
}

Status DbImpl::RunSubcompactions(Compaction* c,
                                 const std::vector<std::string>& bounds,
                                 bool throttled, bool elide_tombstones,
                                 uint32_t trace_track, const OffloadGrant* ndp,
                                 std::vector<FileMetaPtr>* outputs,
                                 std::vector<uint64_t>* created,
                                 uint64_t* read_bytes_out,
                                 uint64_t* written_bytes_out) {
  const size_t k = bounds.size() + 1;
  const char* sub_site = ndp != nullptr ? "crash.ndp.submerge.mid"
                                        : "crash.subcompaction.mid";
  struct Sub {
    KeyRange range;
    std::vector<FileMetaPtr> outputs;
    std::vector<uint64_t> created;
    uint64_t read = 0;
    uint64_t written = 0;
    Status status;
  };
  std::vector<Sub> subs(k);
  for (size_t i = 0; i < k; i++) {
    if (i > 0) {
      subs[i].range.begin = bounds[i - 1];
      subs[i].range.has_begin = true;
    }
    if (i < bounds.size()) {
      subs[i].range.end = bounds[i];
      subs[i].range.has_end = true;
    }
  }
  // Helpers run every range but the last; this worker runs the last range
  // itself, so a k-way split occupies exactly k actors.
  std::vector<sim::SimEnv::Thread*> helpers;
  for (size_t i = 0; i + 1 < k; i++) {
    Sub* sub = &subs[i];
    uint32_t track = trace_track;
    if (tracer_ != nullptr && !tr_subcompact_.empty()) {
      SimLockGuard l(mu_);
      track = tr_subcompact_[next_subtrack_++ % tr_subcompact_.size()];
    }
    helpers.push_back(env_->Spawn(
        "lsm-subcompact-" + std::to_string(i),
        [this, c, sub, throttled, elide_tombstones, track, ndp, sub_site] {
          Nanos start = tracer_ != nullptr ? env_->Now() : 0;
          sub->status = DoCompactionWork(
              c, sub->range, sub_site, throttled, elide_tombstones, track,
              ndp, &sub->outputs, &sub->created, &sub->read, &sub->written);
          if (tracer_ != nullptr) {
            tracer_->Complete(track, "subcompaction", start, env_->Now());
          }
        }));
  }
  Sub* tail = &subs[k - 1];
  tail->status = DoCompactionWork(c, tail->range, sub_site, throttled,
                                  elide_tombstones, trace_track, ndp,
                                  &tail->outputs, &tail->created, &tail->read,
                                  &tail->written);
  for (auto* t : helpers) env_->Join(t);

  // Merge in range order (deterministic): keep the first failure, but always
  // account every created file so a failed attempt's cleanup sees them all.
  Status s;
  for (Sub& sub : subs) {
    if (s.ok() && !sub.status.ok()) s = sub.status;
    created->insert(created->end(), sub.created.begin(), sub.created.end());
    outputs->insert(outputs->end(), sub.outputs.begin(), sub.outputs.end());
    *read_bytes_out += sub.read;
    *written_bytes_out += sub.written;
  }
  return s;
}

Status DbImpl::DoCompactionWork(Compaction* c, const KeyRange& range,
                                const char* crash_site, bool throttled,
                                bool elide_tombstones, uint32_t trace_track,
                                const OffloadGrant* ndp,
                                std::vector<FileMetaPtr>* outputs,
                                std::vector<uint64_t>* created,
                                uint64_t* read_bytes_out,
                                uint64_t* written_bytes_out) {
  const int output_level = c->output_level;
  ReadOptions ropts;
  ropts.fill_cache = false;  // compaction reads must not wipe the cache
  // Compaction verifies block CRCs: rewriting a corrupt block into a new SST
  // would silently launder bad data into wrong-but-checksummed data.
  ropts.verify_checksums = true;
  // RocksDB compaction_readahead_size (2 MB): amortize NAND access latency
  // over large sequential spans.
  ropts.readahead_blocks = static_cast<uint32_t>(
      std::max<uint64_t>(1, (2ull << 20) / options_.block_size));

  std::vector<std::unique_ptr<Iterator>> children;
  std::vector<std::shared_ptr<SstReader>> device_tables;
  for (const auto& side : c->inputs) {
    for (const auto& f : side) {
      std::shared_ptr<SstReader> table;
      if (ndp != nullptr) {
        // Device-side stream: a dedicated reader (no block cache — firmware
        // reads must not populate the host cache) whose data-block reads run
        // NAND-only, skipping PCIe.
        Status s = SstReader::Open(options_, denv_.fs, SstName(f->number),
                                   f->number, nullptr, &table);
        if (!s.ok()) return s;
        table->set_device_side(true);
        device_tables.push_back(table);
      } else {
        Status s = GetTable(f->number, &table);
        if (!s.ok()) return s;
      }
      children.push_back(table->NewIterator(ropts));
    }
  }
  MergingIterator<InternalKeyComparator> merged(InternalKeyComparator(),
                                                std::move(children));

  // Snapshot for tombstone elision: a delete can be dropped when no level
  // below the output can contain the key.
  mu_.Lock();
  std::shared_ptr<const Version> version = versions_->current();
  mu_.Unlock();
  auto is_base_level_for = [&](const Slice& user_key) {
    for (int level = output_level + 1; level < kNumLevels; level++) {
      for (const auto& f : version->files(level)) {
        if (user_key.compare(ExtractUserKey(f->smallest)) >= 0 &&
            user_key.compare(ExtractUserKey(f->largest)) <= 0) {
          return false;
        }
      }
    }
    return true;
  };
  // Rolled-back (ingested) data re-enters L0 at its ORIGINAL sequence
  // numbers, so — unlike a plain LSM — a level above this job may hold an
  // OLDER version of a key. A deep job must therefore keep any tombstone
  // whose key also appears above it; an L0 job's inputs already contain
  // every L0/L1 copy, so the scan range is empty there.
  auto key_above_job = [&](const Slice& user_key) {
    for (int level = 0; level < c->level; level++) {
      for (const auto& f : version->files(level)) {
        if (user_key.compare(ExtractUserKey(f->smallest)) >= 0 &&
            user_key.compare(ExtractUserKey(f->largest)) <= 0) {
          return true;
        }
      }
    }
    return false;
  };

  std::unique_ptr<SstBuilder> builder;
  uint64_t builder_number = 0;
  std::string last_user_key;
  bool has_last = false;
  Status s;

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status fs_status = builder->Finish();
    if (!fs_status.ok()) return fs_status;
    auto meta = std::make_shared<FileMetaData>();
    meta->number = builder_number;
    meta->logical_size = builder->logical_size();
    meta->num_entries = builder->num_entries();
    meta->max_seq = builder->max_seq();
    meta->smallest = builder->smallest();
    meta->largest = builder->largest();
    *written_bytes_out += meta->logical_size;
    if (meta->num_entries > 0) outputs->push_back(meta);
    builder.reset();
    return Status::OK();
  };

  // Phase-structured processing, per paper §III-B: "SSTables are loaded from
  // the storage device to memory, where a merge-sort operation is performed;
  // newly created SSTs are then written back". Each batch of
  // compaction_io_chunk logical bytes runs as read-phase (device I/O),
  // merge-phase (pure host CPU — the device-idle window KVACCEL exploits),
  // then write-phase (device I/O).
  struct BatchEntry {
    std::string ikey;
    std::string val;
    uint64_t logical;
  };
  std::vector<BatchEntry> batch;
  uint64_t batch_bytes = 0;
  // Read-phase start for tracing: the span from here (or from the end of the
  // previous write phase) to the batch boundary is dominated by SST reads.
  Nanos phase_start = tracer_ != nullptr ? env_->Now() : 0;

  auto write_batch_out = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    const uint64_t bytes = batch_bytes;
    // Rate limiter: pace the job at its aggregate device traffic (the batch
    // is read once and written once) so deep compactions can't starve host
    // writes of bandwidth.
    if (throttled) ThrottleCompactionIo(2 * bytes);
    Nanos merge_start = 0;
    if (tracer_ != nullptr) {
      merge_start = env_->Now();
      tracer_->Complete(trace_track, "compaction.read", phase_start,
                        merge_start, bytes);
    }
    // Merge phase: one CPU burst for the whole batch, no device traffic.
    // Offloaded jobs burn the device's NDP cores instead of the host pool —
    // this is exactly the cycle/PCIe relief near-data compaction buys.
    if (ndp != nullptr) {
      ndp->merge_cpu(batch_bytes);
    } else {
      denv_.host_cpu->Consume(options_.compaction_cpu_ns_per_byte *
                              static_cast<double>(batch_bytes));
    }
    Nanos write_start = 0;
    if (tracer_ != nullptr) {
      write_start = env_->Now();
      tracer_->Complete(trace_track, "compaction.merge", merge_start,
                        write_start, bytes);
    }
    // Write phase.
    for (const BatchEntry& e : batch) {
      if (builder == nullptr) {
        mu_.Lock();
        builder_number = versions_->NewFileNumber();
        mu_.Unlock();
        created->push_back(builder_number);
        std::unique_ptr<fs::WritableFile> file;
        Status ws = denv_.fs->NewWritableFile(SstName(builder_number), &file);
        if (!ws.ok()) return ws;
        file->set_writeback_chunk(1 << 20);  // stream like bytes_per_sync
        if (ndp != nullptr) file->set_device_side(true);
        builder = std::make_unique<SstBuilder>(options_, std::move(file));
      }
      Status ws = builder->Add(e.ikey, e.val, e.logical);
      if (!ws.ok()) return ws;
      if (builder->logical_size() >= options_.target_file_size) {
        ws = finish_output();
        if (!ws.ok()) return ws;
      }
    }
    batch.clear();
    batch_bytes = 0;
    if (tracer_ != nullptr) {
      phase_start = env_->Now();
      tracer_->Complete(trace_track, "compaction.write", write_start,
                        phase_start, bytes);
    }
    return Status::OK();
  };

  // Position at the first entry of the sub-range: (begin, max-seq) sorts
  // before every version of `begin`, so all versions of a boundary key land
  // in exactly one sub-range.
  if (range.has_begin) {
    std::string seek_key;
    AppendInternalKey(&seek_key, range.begin, kMaxSequenceNumber,
                      kValueTypeForSeek);
    merged.Seek(seek_key);
  } else {
    merged.SeekToFirst();
  }
  for (; merged.Valid(); merged.Next()) {
    if (sim::FaultAt(env_, crash_site)) {
      return Status::IOError("simulated crash");
    }
    Slice ikey = merged.key();
    Slice ukey = ExtractUserKey(ikey);
    if (range.has_end && ukey.compare(Slice(range.end)) >= 0) break;
    Slice val = merged.value();

    uint64_t entry_logical = ikey.size();
    if (ExtractValueType(ikey) == ValueType::kValue) {
      Value decoded;
      Slice tmp = val;
      if (Value::DecodeFrom(&tmp, &decoded)) {
        entry_logical += decoded.logical_size();
      }
    }
    *read_bytes_out += entry_logical;

    if (has_last && ukey == Slice(last_user_key)) continue;  // shadowed
    last_user_key.assign(ukey.data(), ukey.size());
    has_last = true;

    if (elide_tombstones && ExtractValueType(ikey) == ValueType::kDeletion &&
        is_base_level_for(ukey) && !key_above_job(ukey)) {
      continue;  // tombstone has nothing left to hide
    }

    batch.push_back({ikey.ToString(), val.ToString(), entry_logical});
    batch_bytes += entry_logical;
    if (batch_bytes >= options_.compaction_io_chunk) {
      s = write_batch_out();
      if (!s.ok()) return s;
    }
  }
  if (!merged.status().ok()) return merged.status();
  s = write_batch_out();
  if (!s.ok()) return s;
  return finish_output();
}

void DbImpl::DeferObsoleteFile(const FileMetaPtr& meta) {
  SimLockGuard l(mu_);
  deferred_deletions_.push_back(meta);
}

void DbImpl::ReapObsoleteFiles() {
  std::vector<uint64_t> reap;
  {
    SimLockGuard l(mu_);
    auto it = deferred_deletions_.begin();
    while (it != deferred_deletions_.end()) {
      // use_count == 1: only the deferred list itself still references the
      // file, so no version/iterator can lazily open it anymore.
      if (it->use_count() == 1) {
        reap.push_back((*it)->number);
        table_cache_.erase((*it)->number);
        it = deferred_deletions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (uint64_t number : reap) denv_.fs->DeleteFile(SstName(number));
}

// ---------------- Maintenance / introspection ----------------

Status DbImpl::IngestSortedBatch(const std::vector<IngestEntry>& entries) {
  if (entries.empty()) return Status::OK();
  mu_.Lock();
  uint64_t number = versions_->NewFileNumber();
  mu_.Unlock();

  std::unique_ptr<fs::WritableFile> file;
  Status s = denv_.fs->NewWritableFile(SstName(number), &file);
  if (!s.ok()) return s;
  file->set_writeback_chunk(1 << 20);
  SstBuilder builder(options_, std::move(file));

  std::string prev_key;
  for (const IngestEntry& e : entries) {
    if (!prev_key.empty() && e.key <= prev_key) {
      return Status::InvalidArgument("ingest batch not strictly sorted");
    }
    prev_key = e.key;
    std::string ikey;
    AppendInternalKey(
        &ikey, e.key, e.seq,
        e.tombstone ? ValueType::kDeletion : ValueType::kValue);
    std::string val_enc;
    uint64_t logical = e.key.size() + 8;
    if (!e.tombstone) {
      e.value.EncodeTo(&val_enc);
      logical += e.value.logical_size();
    }
    s = builder.Add(ikey, val_enc, logical);
    if (!s.ok()) break;
  }
  if (s.ok()) s = builder.Finish();
  if (!s.ok()) {
    if (!sim::SimCrashed(env_)) denv_.fs->DeleteFile(SstName(number));
    return s;
  }

  auto meta = std::make_shared<FileMetaData>();
  meta->number = number;
  meta->logical_size = builder.logical_size();
  meta->num_entries = builder.num_entries();
  meta->max_seq = builder.max_seq();
  meta->smallest = builder.smallest();
  meta->largest = builder.largest();

  mu_.Lock();
  VersionEdit edit;
  edit.AddFile(0, meta);
  // Ingested entries carry historical sequences; after a crash-recovery
  // ingest those may exceed the recovered last_sequence, and fresh writes
  // must never be allocated below them.
  if (meta->max_seq > versions_->last_sequence()) {
    versions_->SetLastSequence(meta->max_seq);
  }
  s = versions_->LogAndApply(&edit);
  bg_cv_.NotifyAll();
  mu_.Unlock();
  return s;
}

Status DbImpl::FlushAll() {
  mu_.Lock();
  // A group leader may be applying its batch with mu_ released; switching
  // the memtable (and WAL) underneath it would lose the in-flight group.
  while (commit_in_flight_) work_done_cv_.Wait(mu_);
  if (!mem_->Empty()) {
    Status s = SwitchMemtableLocked();
    if (!s.ok()) {
      mu_.Unlock();
      return s;
    }
  }
  while (!shutting_down_ && !imm_.empty() && bg_error_.ok()) {
    bg_cv_.NotifyAll();
    work_done_cv_.Wait(mu_);
  }
  Status s = bg_error_;
  mu_.Unlock();
  return s;
}

Status DbImpl::WaitForCompactionIdle() {
  mu_.Lock();
  for (;;) {
    if (shutting_down_ || !bg_error_.ok()) break;
    bool idle = imm_.empty() && !flush_running_ && running_compactions_ == 0 &&
                versions_->MaxCompactionScore(nullptr) < 1.0;
    if (idle) break;
    bg_cv_.NotifyAll();
    work_done_cv_.Wait(mu_);
  }
  Status s = bg_error_;
  mu_.Unlock();
  return s;
}

BlockCacheStats DbImpl::GetBlockCacheStats() {
  SimLockGuard l(mu_);
  BlockCacheStats cs;
  cs.hits = block_cache_->hits();
  cs.misses = block_cache_->misses();
  cs.usage_bytes = block_cache_->usage();
  cs.capacity_bytes = block_cache_->capacity();
  return cs;
}

StallSignals DbImpl::GetStallSignals() {
  SimLockGuard l(mu_);
  StallSignals sig;
  auto version = versions_->current();
  sig.l0_files = version->NumLevelFiles(0);
  sig.immutable_memtables = static_cast<int>(imm_.size());
  sig.active_memtable_bytes = mem_->LogicalSize();
  sig.pending_compaction_bytes = versions_->EstimatedPendingCompactionBytes();
  sig.stalled = stats_.stall_regions.open();
  sig.slowdown_active = in_slowdown_region_;
  sig.stall_imminent = SlowdownConditionLocked() || StopConditionLocked(nullptr);
  sig.l0_slowdown_trigger = options_.l0_slowdown_writes_trigger;
  sig.l0_stop_trigger = options_.l0_stop_writes_trigger;
  sig.max_write_buffer_number = options_.max_write_buffer_number;
  sig.hard_pending_limit = options_.hard_pending_compaction_bytes_limit;
  sig.compaction_queue_depth = versions_->CompactionQueueDepth();
  return sig;
}

uint64_t DbImpl::TotalSstBytes() {
  SimLockGuard l(mu_);
  return versions_->current()->TotalBytes();
}

std::vector<SstFileInfo> DbImpl::ListSstFiles() {
  SimLockGuard l(mu_);
  auto version = versions_->current();
  std::vector<SstFileInfo> out;
  for (int level = 0; level < kNumLevels; level++) {
    for (const auto& f : version->files(level)) {
      SstFileInfo info;
      info.number = f->number;
      info.level = level;
      info.logical_size = f->logical_size;
      info.num_entries = f->num_entries;
      info.max_seq = f->max_seq;
      info.smallest = f->smallest;
      info.largest = f->largest;
      out.push_back(std::move(info));
    }
  }
  return out;
}

Status DbImpl::VerifySstFile(uint64_t number, uint64_t* bytes_read) {
  if (bytes_read != nullptr) *bytes_read = 0;
  FileMetaPtr meta;
  {
    SimLockGuard l(mu_);
    auto version = versions_->current();
    for (int level = 0; level < kNumLevels && meta == nullptr; level++) {
      for (const auto& f : version->files(level)) {
        if (f->number == number) {
          meta = f;
          break;
        }
      }
    }
  }
  if (meta == nullptr) {
    return Status::NotFound("file not in current version");
  }
  std::shared_ptr<SstReader> table;
  Status s = GetTable(number, &table);
  if (!s.ok()) return s;
  // Scrub read: force CRC verification and skip the block cache so the scan
  // exercises the media, not cached copies.
  ReadOptions ropts;
  ropts.verify_checksums = true;
  ropts.fill_cache = false;
  InternalKeyComparator icmp;
  auto iter = table->NewIterator(ropts);
  uint64_t entries = 0;
  SequenceNumber max_seq = 0;
  std::string prev_key;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    Slice key = iter->key();
    if (!prev_key.empty() && icmp.Compare(Slice(prev_key), key) >= 0) {
      return Status::Corruption("sst keys out of order");
    }
    if (icmp.Compare(key, Slice(meta->smallest)) < 0 ||
        icmp.Compare(key, Slice(meta->largest)) > 0) {
      return Status::Corruption("sst key outside recorded range");
    }
    max_seq = std::max(max_seq, ExtractSequence(key));
    prev_key.assign(key.data(), key.size());
    entries++;
  }
  if (!iter->status().ok()) return iter->status();
  if (entries != meta->num_entries) {
    return Status::Corruption("sst entry count mismatch");
  }
  if (entries > 0 && max_seq != meta->max_seq) {
    return Status::Corruption("sst max sequence mismatch");
  }
  if (bytes_read != nullptr) *bytes_read = meta->logical_size;
  return Status::OK();
}

void DbImpl::SetCompactionThreads(int n) {
  SimLockGuard l(mu_);
  active_compaction_threads_ = std::clamp(n, 1, max_compaction_workers_);
  // Wake everything that keys off the budget: parked workers (a grow must
  // un-park them), idle-waiters and stalled writers (a shrink changes what
  // "idle" and the deep-job slot reservation mean, and a waiter blocked on
  // work_done_cv_ with an empty queue must re-evaluate rather than hang).
  bg_cv_.NotifyAll();
  work_done_cv_.NotifyAll();
  stall_cv_.NotifyAll();
}

void DbImpl::SetMaxSubcompactions(int n) {
  SimLockGuard l(mu_);
  max_subcompactions_ = std::clamp(n, 1, 64);
}

void DbImpl::SetWriteBufferSize(uint64_t bytes) {
  SimLockGuard l(mu_);
  write_buffer_size_ = bytes;
}

}  // namespace kvaccel::lsm
