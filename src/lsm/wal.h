// Write-ahead log: CRC-framed records over a SimFs file. One log per
// memtable generation (RocksDB style); the log is deleted once its memtable
// is flushed. Physical framing is compact; logical bytes ride along for
// device accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "fs/simfs.h"

namespace kvaccel::lsm {

class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<fs::WritableFile> file)
      : file_(std::move(file)) {}

  // Appends one record whose payload represents `logical_bytes` on-device.
  Status AddRecord(const Slice& payload, uint64_t logical_bytes);
  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<fs::WritableFile> file_;
};

class LogReader {
 public:
  explicit LogReader(std::unique_ptr<fs::RandomAccessFile> file);

  // Reads the next record payload; returns false at clean EOF. A torn *tail*
  // — a truncated or CRC-failing record with nothing valid after it — ends
  // iteration without error (the standard crash-recovery posture). A bad
  // record with a valid record after it cannot be a torn tail: that is data
  // corruption, reported via `status` as Status::Corruption.
  bool ReadRecord(std::string* payload, Status* status);

 private:
  // True if any well-formed (length-fitting, CRC-passing) record starts at
  // or after `from`.
  bool HasValidRecordAfter(size_t from) const;

  std::string contents_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace kvaccel::lsm
