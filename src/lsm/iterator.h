// Iterator: the abstract cursor shared by memtables, SST blocks, merged
// views and the public DB scan API (paper §V-F builds its hybrid range query
// from two of these).
#pragma once

#include <memory>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace kvaccel::lsm {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;
  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  // Key/value of the current position; only valid while Valid().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual Status status() const = 0;
};

// K-way forward merge over child iterators, smallest key first (per `cmp`).
// Ties are won by the earliest child, which callers exploit by ordering
// children newest-first.
template <typename Comparator>
class MergingIterator : public Iterator {
 public:
  MergingIterator(Comparator cmp,
                  std::vector<std::unique_ptr<Iterator>> children)
      : cmp_(cmp), children_(std::move(children)) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& c : children_) c->SeekToFirst();
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& c : children_) c->Seek(target);
    FindSmallest();
  }

  void Next() override {
    current_->Next();
    FindSmallest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& c : children_) {
      Status s = c->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    current_ = nullptr;
    for (auto& c : children_) {
      if (!c->Valid()) continue;
      if (current_ == nullptr || cmp_.Compare(c->key(), current_->key()) < 0) {
        current_ = c.get();
      }
    }
  }

  Comparator cmp_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_ = nullptr;
};

}  // namespace kvaccel::lsm
