// MemTable: arena skiplist over length-prefixed internal-key entries.
// Tracks two sizes: arena (host memory) and logical bytes (what the flush
// will write to the device) — the write_buffer_size threshold and the
// Detector's "MT size" signal (paper §V-C) use the logical size.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/arena.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/value.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/skiplist.h"

namespace kvaccel::lsm {

class MemTable {
 public:
  MemTable();
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Value& value);

  // Returns true if this memtable decides the lookup: *status is OK with
  // *value set for a live entry, NotFound for a tombstone. False: keep
  // searching older structures. `seq` (optional) receives the deciding
  // entry's sequence number.
  bool Get(const LookupKey& key, Value* value, Status* status,
           SequenceNumber* seq = nullptr) const;

  // Logical bytes this memtable represents on the device.
  uint64_t LogicalSize() const { return logical_size_; }
  uint64_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  uint64_t NumEntries() const { return num_entries_; }
  bool Empty() const { return num_entries_ == 0; }

  // Iterator over internal keys (ascending internal-key order). Keys returned
  // are internal keys; values are encoded Value payloads.
  std::unique_ptr<Iterator> NewIterator() const;

  struct KeyComparator {
    InternalKeyComparator comparator;
    // Entries are length-prefixed internal keys in arena memory.
    int operator()(const char* a, const char* b) const;
  };
  using Table = SkipList<const char*, KeyComparator>;
  const Table* table() const { return &table_; }

 private:
  KeyComparator comparator_;
  Arena arena_;
  Table table_;
  uint64_t logical_size_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace kvaccel::lsm
