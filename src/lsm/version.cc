#include "lsm/version.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/coding.h"
#include "lsm/wal.h"
#include "sim/fault.h"

namespace kvaccel::lsm {

namespace {

enum EditTag : uint32_t {
  kLogNumber = 1,
  kNextFileNumber = 2,
  kLastSequence = 3,
  kDeletedFile = 4,
  kAddedFile = 5,
};

std::string ManifestFileName(uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "MANIFEST-%06llu",
           static_cast<unsigned long long>(number));
  return buf;
}

int CompareUserKeys(const Slice& a_internal, const Slice& b_internal) {
  return ExtractUserKey(a_internal).compare(ExtractUserKey(b_internal));
}

}  // namespace

// ---------------- VersionEdit ----------------

void VersionEdit::EncodeTo(std::string* dst) const {
  if (has_log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, log_number_);
  }
  if (has_next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, next_file_number_);
  }
  if (has_last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, last_sequence_);
  }
  for (const auto& [level, number] : deleted_) {
    PutVarint32(dst, kDeletedFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, number);
  }
  for (const auto& [level, f] : added_) {
    PutVarint32(dst, kAddedFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, f->number);
    PutVarint64(dst, f->logical_size);
    PutVarint64(dst, f->num_entries);
    PutVarint64(dst, f->max_seq);
    PutLengthPrefixedSlice(dst, f->smallest);
    PutLengthPrefixedSlice(dst, f->largest);
  }
}

Status VersionEdit::DecodeFrom(const Slice& src, VersionEdit* edit) {
  Slice input = src;
  while (!input.empty()) {
    uint32_t tag;
    if (!GetVarint32(&input, &tag)) return Status::Corruption("edit tag");
    switch (tag) {
      case kLogNumber:
        if (!GetVarint64(&input, &edit->log_number_)) {
          return Status::Corruption("edit log number");
        }
        edit->has_log_number_ = true;
        break;
      case kNextFileNumber:
        if (!GetVarint64(&input, &edit->next_file_number_)) {
          return Status::Corruption("edit next file");
        }
        edit->has_next_file_number_ = true;
        break;
      case kLastSequence:
        if (!GetVarint64(&input, &edit->last_sequence_)) {
          return Status::Corruption("edit last seq");
        }
        edit->has_last_sequence_ = true;
        break;
      case kDeletedFile: {
        uint32_t level;
        uint64_t number;
        if (!GetVarint32(&input, &level) || !GetVarint64(&input, &number)) {
          return Status::Corruption("edit deleted file");
        }
        edit->deleted_.emplace_back(static_cast<int>(level), number);
        break;
      }
      case kAddedFile: {
        uint32_t level;
        auto f = std::make_shared<FileMetaData>();
        Slice smallest, largest;
        if (!GetVarint32(&input, &level) || !GetVarint64(&input, &f->number) ||
            !GetVarint64(&input, &f->logical_size) ||
            !GetVarint64(&input, &f->num_entries) ||
            !GetVarint64(&input, &f->max_seq) ||
            !GetLengthPrefixedSlice(&input, &smallest) ||
            !GetLengthPrefixedSlice(&input, &largest)) {
          return Status::Corruption("edit added file");
        }
        f->smallest = smallest.ToString();
        f->largest = largest.ToString();
        edit->added_.emplace_back(static_cast<int>(level), std::move(f));
        break;
      }
      default:
        return Status::Corruption("unknown edit tag");
    }
  }
  return Status::OK();
}

// ---------------- Version ----------------

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& f : files_[level]) total += f->logical_size;
  return total;
}

uint64_t Version::TotalBytes() const {
  uint64_t total = 0;
  for (int l = 0; l < kNumLevels; l++) total += LevelBytes(l);
  return total;
}

void Version::ForEachOverlapping(
    const Slice& user_key,
    const std::function<bool(int, const FileMetaPtr&)>& fn) const {
  // L0: newest-first, any overlapping file.
  for (const auto& f : files_[0]) {
    if (user_key.compare(ExtractUserKey(f->smallest)) >= 0 &&
        user_key.compare(ExtractUserKey(f->largest)) <= 0) {
      if (!fn(0, f)) return;
    }
  }
  // L1+: files are disjoint and sorted by smallest — binary search.
  for (int level = 1; level < kNumLevels; level++) {
    const auto& files = files_[level];
    if (files.empty()) continue;
    auto it = std::lower_bound(
        files.begin(), files.end(), user_key,
        [](const FileMetaPtr& f, const Slice& k) {
          return ExtractUserKey(f->largest).compare(k) < 0;
        });
    if (it == files.end()) continue;
    if (user_key.compare(ExtractUserKey((*it)->smallest)) >= 0) {
      if (!fn(level, *it)) return;
    }
  }
}

std::vector<FileMetaPtr> Version::OverlappingInputs(
    int level, const Slice& smallest, const Slice& largest) const {
  std::vector<FileMetaPtr> result;
  for (const auto& f : files_[level]) {
    if (ExtractUserKey(f->largest).compare(ExtractUserKey(smallest)) < 0) {
      continue;
    }
    if (ExtractUserKey(f->smallest).compare(ExtractUserKey(largest)) > 0) {
      continue;
    }
    result.push_back(f);
  }
  return result;
}

// ---------------- VersionSet ----------------

VersionSet::VersionSet(const DbOptions& options, fs::SimFs* fs)
    : options_(options), fs_(fs), current_(std::make_shared<Version>()),
      compact_cursor_(kNumLevels, 0) {}

Status VersionSet::Create() {
  manifest_name_ = ManifestFileName(next_file_number_++);
  std::unique_ptr<fs::WritableFile> file;
  Status s = fs_->NewWritableFile(manifest_name_, &file);
  if (!s.ok()) return s;
  manifest_ = std::make_unique<LogWriter>(std::move(file));

  VersionEdit bootstrap;
  bootstrap.SetNextFileNumber(next_file_number_);
  bootstrap.SetLastSequence(last_sequence_);
  std::string payload;
  bootstrap.EncodeTo(&payload);
  s = manifest_->AddRecord(payload, payload.size());
  if (!s.ok()) return s;
  s = manifest_->Sync();
  if (!s.ok()) return s;

  std::unique_ptr<fs::WritableFile> current_file;
  s = fs_->NewWritableFile("CURRENT", &current_file);
  if (!s.ok()) return s;
  s = current_file->Append(manifest_name_);
  if (!s.ok()) return s;
  s = current_file->Sync();  // CURRENT must survive power loss
  if (!s.ok()) return s;
  return current_file->Close();
}

Status VersionSet::ReplayManifest(const std::string& manifest_name) {
  std::unique_ptr<fs::RandomAccessFile> file;
  Status s = fs_->NewRandomAccessFile(manifest_name, &file);
  if (!s.ok()) return s;
  LogReader reader(std::move(file));
  std::string payload;
  auto version = std::make_shared<Version>();
  while (reader.ReadRecord(&payload, &s)) {
    VersionEdit edit;
    s = VersionEdit::DecodeFrom(payload, &edit);
    if (!s.ok()) return s;
    if (edit.has_log_number_) log_number_ = edit.log_number_;
    if (edit.has_next_file_number_) next_file_number_ = edit.next_file_number_;
    if (edit.has_last_sequence_) last_sequence_ = edit.last_sequence_;
    current_ = version;  // BuildAfter reads current_
    version = BuildAfter(edit);
  }
  if (!s.ok()) return s;
  current_ = version;
  return Status::OK();
}

Status VersionSet::Recover() {
  std::unique_ptr<fs::RandomAccessFile> current_file;
  Status s = fs_->NewRandomAccessFile("CURRENT", &current_file);
  if (!s.ok()) return s;
  std::string manifest_name;
  s = current_file->Read(0, current_file->physical_size(), &manifest_name);
  if (!s.ok()) return s;
  s = ReplayManifest(manifest_name);
  if (!s.ok()) return s;

  // Start a fresh manifest holding a snapshot of the recovered state, then
  // atomically repoint CURRENT (LevelDB recovery idiom).
  manifest_name_ = ManifestFileName(next_file_number_++);
  std::unique_ptr<fs::WritableFile> file;
  s = fs_->NewWritableFile(manifest_name_, &file);
  if (!s.ok()) return s;
  manifest_ = std::make_unique<LogWriter>(std::move(file));
  VersionEdit snapshot;
  snapshot.SetLogNumber(log_number_);
  snapshot.SetNextFileNumber(next_file_number_);
  snapshot.SetLastSequence(last_sequence_);
  for (int level = 0; level < kNumLevels; level++) {
    for (const auto& f : current_->files(level)) snapshot.AddFile(level, f);
  }
  std::string payload;
  snapshot.EncodeTo(&payload);
  s = manifest_->AddRecord(payload, payload.size());
  if (!s.ok()) return s;
  s = manifest_->Sync();
  if (!s.ok()) return s;

  std::unique_ptr<fs::WritableFile> tmp;
  s = fs_->NewWritableFile("CURRENT.tmp", &tmp);
  if (!s.ok()) return s;
  s = tmp->Append(manifest_name_);
  if (!s.ok()) return s;
  s = tmp->Sync();  // CURRENT must survive power loss
  if (!s.ok()) return s;
  s = tmp->Close();
  if (!s.ok()) return s;
  return fs_->RenameFile("CURRENT.tmp", "CURRENT");
}

std::shared_ptr<Version> VersionSet::BuildAfter(
    const VersionEdit& edit) const {
  auto v = std::make_shared<Version>();
  for (int level = 0; level < kNumLevels; level++) {
    for (const auto& f : current_->files(level)) {
      bool deleted = false;
      for (const auto& [dl, dn] : edit.deleted_) {
        if (dl == level && dn == f->number) {
          deleted = true;
          break;
        }
      }
      if (!deleted) v->files_[level].push_back(f);
    }
  }
  for (const auto& [level, f] : edit.added_) {
    v->files_[level].push_back(f);
  }
  // L0 newest-first (file numbers are monotone); L1+ by smallest key.
  std::sort(v->files_[0].begin(), v->files_[0].end(),
            [](const FileMetaPtr& a, const FileMetaPtr& b) {
              return a->number > b->number;
            });
  InternalKeyComparator icmp;
  for (int level = 1; level < kNumLevels; level++) {
    std::sort(v->files_[level].begin(), v->files_[level].end(),
              [&](const FileMetaPtr& a, const FileMetaPtr& b) {
                return icmp.Compare(Slice(a->smallest), Slice(b->smallest)) <
                       0;
              });
  }
  return v;
}

Status VersionSet::CloseManifest() {
  if (manifest_ == nullptr) return Status::OK();
  Status s = manifest_->Close();
  manifest_.reset();
  return s;
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  edit->SetNextFileNumber(next_file_number_);
  edit->SetLastSequence(last_sequence_);
  std::string payload;
  edit->EncodeTo(&payload);
  Status s = manifest_->AddRecord(payload, payload.size());
  if (!s.ok()) return s;
  sim::SimEnv* env = fs_->ssd()->env();
  if (sim::FaultAt(env, "crash.manifest.pre_sync")) {
    // Edit appended but not durable: reopen must not observe it.
    return Status::IOError("simulated crash");
  }
  // Durable before the WAL it obsoletes can be deleted.
  s = manifest_->Sync();
  if (!s.ok()) return s;
  if (sim::FaultAt(env, "crash.manifest.post_sync")) {
    // Edit durable but never applied in memory: reopen must observe it.
    return Status::IOError("simulated crash");
  }
  current_ = BuildAfter(*edit);
  // Stream the applied edit to the replication peer (advisory: the backup
  // rebuilds its own versions, so delivery failure doesn't fail the commit).
  if (options_.manifest_shipper) {
    options_.manifest_shipper(payload, last_sequence_);
  }
  return Status::OK();
}

uint64_t VersionSet::MaxBytesForLevel(int level) const {
  assert(level >= 1);
  double bytes = static_cast<double>(options_.max_bytes_for_level_base);
  for (int l = 1; l < level; l++) {
    bytes *= options_.max_bytes_for_level_multiplier;
  }
  return static_cast<uint64_t>(bytes);
}

double VersionSet::MaxCompactionScore(int* level_out) const {
  double best = 0;
  int best_level = 0;
  // L0 scores by file count.
  double l0 = static_cast<double>(current_->NumLevelFiles(0)) /
              static_cast<double>(options_.l0_compaction_trigger);
  best = l0;
  best_level = 0;
  for (int level = 1; level < kNumLevels - 1; level++) {
    double score = static_cast<double>(current_->LevelBytes(level)) /
                   static_cast<double>(MaxBytesForLevel(level));
    if (score > best) {
      best = score;
      best_level = level;
    }
  }
  if (level_out != nullptr) *level_out = best_level;
  return best;
}

uint64_t VersionSet::EstimatedPendingCompactionBytes() const {
  uint64_t pending = 0;
  if (current_->NumLevelFiles(0) >=
      options_.l0_compaction_trigger) {
    // Everything in L0 must move to L1 (plus the overlap it drags along;
    // approximate with the L0 bytes themselves).
    pending += current_->LevelBytes(0);
  }
  for (int level = 1; level < kNumLevels - 1; level++) {
    uint64_t bytes = current_->LevelBytes(level);
    uint64_t limit = MaxBytesForLevel(level);
    if (bytes > limit) pending += bytes - limit;
  }
  return pending;
}

int VersionSet::CompactionQueueDepth() const {
  int depth = 0;
  if (current_->NumLevelFiles(0) >= options_.l0_compaction_trigger) depth++;
  for (int level = 1; level < kNumLevels - 1; level++) {
    if (current_->LevelBytes(level) >= MaxBytesForLevel(level)) depth++;
  }
  return depth;
}

std::unique_ptr<Compaction> VersionSet::PickL0Compaction() const {
  // L0->L1 is serialized (paper §II-A event 2): bail if anything in L0 or
  // L1 is already compacting.
  for (const auto& f : current_->files(0)) {
    if (f->being_compacted) return nullptr;
  }
  for (const auto& f : current_->files(1)) {
    if (f->being_compacted) return nullptr;
  }
  auto c = std::make_unique<Compaction>();
  c->level = 0;
  c->output_level = 1;
  c->inputs[0] = current_->files(0);
  if (c->inputs[0].empty()) return nullptr;
  // Key range of all inputs determines the L1 overlap.
  std::string smallest = c->inputs[0][0]->smallest;
  std::string largest = c->inputs[0][0]->largest;
  for (const auto& f : c->inputs[0]) {
    if (CompareUserKeys(f->smallest, smallest) < 0) smallest = f->smallest;
    if (CompareUserKeys(f->largest, largest) > 0) largest = f->largest;
  }
  c->inputs[1] = current_->OverlappingInputs(1, smallest, largest);
  c->MarkBeingCompacted(true);
  return c;
}

std::unique_ptr<Compaction> VersionSet::PickIntraL0Compaction() const {
  // Only worthwhile once the file count threatens the slowdown trigger; the
  // output is still one L0 file, so below that this is wasted write amp.
  if (current_->NumLevelFiles(0) < options_.l0_slowdown_writes_trigger) {
    return nullptr;
  }
  auto c = std::make_unique<Compaction>();
  c->level = 0;
  c->output_level = 0;
  c->is_intra_l0 = true;
  for (const auto& f : current_->files(0)) {
    if (!f->being_compacted) c->inputs[0].push_back(f);
  }
  if (c->inputs[0].size() < 2) return nullptr;
  c->MarkBeingCompacted(true);
  return c;
}

std::unique_ptr<Compaction> VersionSet::PickLevelCompaction(int level) {
  const auto& files = current_->files(level);
  if (files.empty()) return nullptr;
  auto c = std::make_unique<Compaction>();
  c->level = level;
  c->output_level = level + 1;
  size_t n = files.size();
  for (size_t attempt = 0; attempt < n; attempt++) {
    size_t idx = (compact_cursor_[level] + attempt) % n;
    const FileMetaPtr& f = files[idx];
    if (f->being_compacted) continue;
    auto overlaps =
        current_->OverlappingInputs(level + 1, f->smallest, f->largest);
    bool busy = false;
    for (const auto& o : overlaps) busy = busy || o->being_compacted;
    if (busy) continue;
    c->inputs[0] = {f};
    c->inputs[1] = std::move(overlaps);
    compact_cursor_[level] = (idx + 1) % n;
    c->MarkBeingCompacted(true);
    return c;
  }
  return nullptr;
}

std::unique_ptr<Compaction> VersionSet::PickCompaction(bool allow_deep) {
  // Priority 1: L0->L1 whenever L0 is at its trigger, even if a deeper level
  // scores higher — L0 depth is what gates writer stalls.
  if (current_->NumLevelFiles(0) >= options_.l0_compaction_trigger) {
    auto c = PickL0Compaction();
    if (c != nullptr) return c;
    // Priority 2: L0->L1 is blocked on busy inputs while pressure keeps
    // building. Merge the idle L0 files among themselves (RocksDB intra-L0)
    // to cut the file count the slowdown/stop triggers watch.
    c = PickIntraL0Compaction();
    if (c != nullptr) return c;
  }
  if (!allow_deep) return nullptr;
  // Priority 3: deeper levels in descending score order (round-robin within
  // a level via compact_cursor_), so the most oversubscribed level drains
  // first instead of whichever level a FIFO scan happened to hit.
  std::vector<std::pair<double, int>> ranked;
  for (int level = 1; level < kNumLevels - 1; level++) {
    double score = static_cast<double>(current_->LevelBytes(level)) /
                   static_cast<double>(MaxBytesForLevel(level));
    if (score >= 1.0) ranked.emplace_back(score, level);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const std::pair<double, int>& a, const std::pair<double, int>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;  // tie: shallower level first
            });
  for (const auto& [score, level] : ranked) {
    auto c = PickLevelCompaction(level);
    if (c != nullptr) return c;
  }
  return nullptr;
}

}  // namespace kvaccel::lsm
