// Arena-backed skiplist, the memtable's core index (LevelDB lineage).
// Keys are const char* into arena memory; the comparator defines order.
// Inserts and reads are serialized by the caller (the DB writer mutex and the
// cooperative scheduler), so no atomics are needed here.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/arena.h"
#include "common/random.h"

namespace kvaccel::lsm {

template <typename Key, class Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(0, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; i++) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // REQUIRES: no equal key already in the list.
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || !Equal(key, x->key));
    int height = RandomHeight();
    if (height > max_height_) {
      for (int i = max_height_; i < height; i++) prev[i] = head_;
      max_height_ = height;
    }
    x = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      x->SetNext(i, prev[i]->Next(i));
      prev[i]->SetNext(i, x);
    }
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    Key const key;

    Node* Next(int n) { return next_[n]; }
    void SetNext(int n, Node* x) { next_[n] = x; }

   private:
    Node* next_[1];  // length == node height; tail-allocated
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(sizeof(Node) +
                                        sizeof(Node*) * (height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.OneIn(kBranching)) height++;
    return height;
  }

  bool Equal(const Key& a, const Key& b) const {
    return compare_(a, b) == 0;
  }

  // Returns the first node >= key; fills prev[] when non-null.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = max_height_ - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Comparator const compare_;  // returns <0, 0, >0
  Arena* const arena_;
  Node* const head_;
  int max_height_;
  Random64 rnd_;
};

}  // namespace kvaccel::lsm
