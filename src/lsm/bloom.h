// Bloom filter policy (double-hashing variant) protecting SST point lookups,
// built per table over user-key hashes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace kvaccel::lsm {

class BloomFilter {
 public:
  explicit BloomFilter(int bits_per_key);

  // Builds the filter bytes for the given key hashes (Hash32 of user keys).
  void CreateFilter(const std::vector<uint32_t>& key_hashes,
                    std::string* dst) const;

  bool KeyMayMatch(uint32_t key_hash, const Slice& filter) const;

  static uint32_t HashKey(const Slice& user_key);

 private:
  int bits_per_key_;
  int k_;  // number of probes
};

}  // namespace kvaccel::lsm
