#include "lsm/write_batch.h"

#include "common/coding.h"

namespace kvaccel::lsm {

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeaderSize, '\0');
  logical_size_ = 0;
}

void WriteBatch::Put(const Slice& key, const Value& value) {
  EncodeFixed32(&rep_[8], Count() + 1);
  rep_.push_back(static_cast<char>(ValueType::kValue));
  PutLengthPrefixedSlice(&rep_, key);
  value.EncodeTo(&rep_);
  logical_size_ += key.size() + 8 + value.logical_size();
}

void WriteBatch::Delete(const Slice& key) {
  EncodeFixed32(&rep_[8], Count() + 1);
  rep_.push_back(static_cast<char>(ValueType::kDeletion));
  PutLengthPrefixedSlice(&rep_, key);
  logical_size_ += key.size() + 8;
}

uint32_t WriteBatch::Count() const { return DecodeFixed32(&rep_[8]); }

void WriteBatch::Append(const WriteBatch& other) {
  EncodeFixed32(&rep_[8], Count() + other.Count());
  rep_.append(other.rep_.data() + kHeaderSize,
              other.rep_.size() - kHeaderSize);
  logical_size_ += other.logical_size_;
}

void WriteBatch::SetSequence(SequenceNumber seq) {
  EncodeFixed64(&rep_[0], seq);
}

SequenceNumber WriteBatch::Sequence() const { return DecodeFixed64(&rep_[0]); }

Status WriteBatch::InsertInto(MemTable* mem) const {
  SequenceNumber seq = Sequence();
  return ForEach([&](ValueType type, const Slice& key, const Value& value) {
    mem->Add(seq++, type, key, value);
  });
}

Status WriteBatch::ParseFrom(const Slice& payload, WriteBatch* batch) {
  if (payload.size() < kHeaderSize) {
    return Status::Corruption("write batch payload too short");
  }
  batch->rep_.assign(payload.data(), payload.size());
  // Recompute logical size by walking entries (also validates structure).
  batch->logical_size_ = 0;
  uint64_t logical = 0;
  Status s = batch->ForEach(
      [&](ValueType type, const Slice& key, const Value& value) {
        logical += key.size() + 8 +
                   (type == ValueType::kValue ? value.logical_size() : 0);
      });
  if (!s.ok()) return s;
  batch->logical_size_ = logical;
  return Status::OK();
}

}  // namespace kvaccel::lsm
