// DbImpl: the concrete LSM engine. One writer path with RocksDB-style
// slowdown/stop gating, one flush thread, a pool of compaction workers whose
// active count can change at runtime (the ADOC hook), and snapshot-consistent
// reads over {memtable, immutables, versioned SSTs}.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "lsm/cache.h"
#include "lsm/db.h"
#include "lsm/memtable.h"
#include "lsm/sst.h"
#include "lsm/version.h"
#include "lsm/wal.h"
#include "obs/trace.h"
#include "sim/sim_env.h"

namespace kvaccel::lsm {

class DbImpl : public DB {
 public:
  DbImpl(const DbOptions& options, const DbEnv& env);
  ~DbImpl() override;

  Status OpenImpl();

  Status Put(const WriteOptions& wopts, const Slice& key,
             const Value& value) override;
  Status Delete(const WriteOptions& wopts, const Slice& key) override;
  Status Write(const WriteOptions& wopts, WriteBatch* batch) override;
  Status Get(const ReadOptions& ropts, const Slice& key,
             Value* value) override;
  Status GetWithSequence(const ReadOptions& ropts, const Slice& key,
                         Value* value, SequenceNumber* seq) override;
  SequenceNumber AllocateSequence(uint32_t count) override;
  SequenceNumber LastSequence() override;
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& ropts) override;

  Status IngestSortedBatch(const std::vector<IngestEntry>& entries) override;
  Status FlushAll() override;
  Status WaitForCompactionIdle() override;
  Status Close() override;

  Status GetBackgroundError() override;

  std::vector<SstFileInfo> ListSstFiles() override;
  Status VerifySstFile(uint64_t number, uint64_t* bytes_read) override;

  const DbStats& stats() const override { return stats_; }
  DbStats& mutable_stats() override { return stats_; }
  BlockCacheStats GetBlockCacheStats() override;
  StallSignals GetStallSignals() override;
  uint64_t TotalSstBytes() override;

  void SetCompactionThreads(int n) override;
  int compaction_threads() const override { return active_compaction_threads_; }
  void SetWriteBufferSize(uint64_t bytes) override;
  uint64_t write_buffer_size() const override { return write_buffer_size_; }
  void SetSlowdownEnabled(bool enabled) override { slowdown_enabled_ = enabled; }
  void SetMaxSubcompactions(int n) override;
  int max_subcompactions() const override { return max_subcompactions_; }

 private:
  struct ImmEntry {
    std::shared_ptr<MemTable> mem;
    uint64_t log_number = 0;
  };

  // One queued foreground write. Writers enqueue under mu_; the front writer
  // becomes the group leader, coalesces followers into one batch, performs
  // the WAL append + memtable apply for the whole group, and completes the
  // followers with the shared status (LevelDB/RocksDB group commit).
  struct Writer {
    Writer(WriteBatch* b, const WriteOptions& o) : batch(b), wopts(o) {}
    WriteBatch* batch;
    WriteOptions wopts;
    bool done = false;
    Status status;
    sim::SimCondVar cv;
  };

  // --- Write-path gating (mu_ held; may release while sleeping/waiting) ---
  Status MakeRoomForWrite(uint64_t batch_logical);
  // mu_ held. Merges queued followers behind the leader (writers_.front())
  // into one batch, bounded by max_group_commit_bytes and compatible write
  // options. Returns the batch to commit (the leader's own, or
  // group_scratch_) and sets *last_writer to the last coalesced writer.
  WriteBatch* BuildBatchGroup(Writer** last_writer);
  SequenceNumber AllocateSequenceLocked(uint32_t count);
  bool StopConditionLocked(std::string* reason) const;
  bool SlowdownConditionLocked() const;
  Status SwitchMemtableLocked();

  // Half-open user-key slice of a compaction's key space; an unset bound is
  // unbounded. Sub-ranges of a split job partition the space (DESIGN.md §10).
  struct KeyRange {
    std::string begin, end;
    bool has_begin = false;
    bool has_end = false;
  };

  // --- Background work ---
  void FlushThreadLoop();
  void CompactionThreadLoop(int worker_id);
  Status FlushImmToL0(const ImmEntry& imm);
  // mu_ held. False withholds the last free worker slot from deep-level jobs
  // while L0 pressure is building (priority scheduler, DESIGN.md §10).
  bool AllowDeepCompactionLocked() const;
  // `trace_track` is the worker's compaction track (unused when tracing is
  // off): sub-phase spans land on the worker that runs them.
  Status RunCompaction(Compaction* c, uint32_t trace_track);
  // Builds the L0 SST file for `imm` and fills `meta`; retryable — the
  // caller deletes the partial file between attempts.
  Status BuildL0Sst(const ImmEntry& imm, uint64_t number, FileMetaData* meta);
  // Merge phase of a compaction restricted to `range`: produces output SSTs
  // without touching the version set. `created` records every file number
  // written so a failed attempt can be cleaned up and retried. `crash_site`
  // names the per-entry fault-injection point; `throttled` subjects the
  // range's I/O to the shared compaction rate limiter; `elide_tombstones`
  // is the per-JOB elision verdict (options_.allow_tombstone_elision and the
  // intra-L0 rule), evaluated once before any sub-range starts so a device
  // drain completing mid-job cannot flip it between sub-ranges. A non-null
  // `ndp` runs the range device-side (DESIGN.md §13): input reads and output
  // writes skip PCIe, and the merge burns ndp->merge_cpu instead of host CPU.
  Status DoCompactionWork(Compaction* c, const KeyRange& range,
                          const char* crash_site, bool throttled,
                          bool elide_tombstones, uint32_t trace_track,
                          const OffloadGrant* ndp,
                          std::vector<FileMetaPtr>* outputs,
                          std::vector<uint64_t>* created,
                          uint64_t* read_bytes, uint64_t* written_bytes);
  // User keys splitting `c`'s key space into up to `want` sub-ranges, chosen
  // evenly from the inputs' index-block boundaries. May return fewer (never
  // more than want-1); empty means the job cannot usefully be split.
  std::vector<std::string> SubcompactionBoundaries(Compaction* c, int want);
  // Runs the sub-ranges defined by `bounds` as parallel actors and merges
  // their results in range order (deterministic).
  Status RunSubcompactions(Compaction* c, const std::vector<std::string>& bounds,
                           bool throttled, bool elide_tombstones,
                           uint32_t trace_track, const OffloadGrant* ndp,
                           std::vector<FileMetaPtr>* outputs,
                           std::vector<uint64_t>* created,
                           uint64_t* read_bytes, uint64_t* written_bytes);
  // Charges `bytes` against the shared compaction-bytes rate limiter and
  // sleeps (virtual time) until the reservation's slot. mu_ must NOT be held.
  void ThrottleCompactionIo(uint64_t bytes);
  // Runs `fn`, retrying transient device errors (IOError/Busy/TryAgain) up
  // to options_.max_io_retries times with exponential virtual-time backoff.
  // mu_ must NOT be held.
  Status RetryTransient(const std::function<Status()>& fn);
  // Obsolete SSTs are deleted only once no live version (and hence no
  // iterator/snapshot) can still lazily open them: files retire to a
  // deferred list and are reaped when their metadata refcount drops to the
  // list's own reference.
  void DeferObsoleteFile(const FileMetaPtr& meta);
  void ReapObsoleteFiles();

  // --- Tables ---
  Status GetTable(uint64_t number, std::shared_ptr<SstReader>* reader);
  static std::string SstName(uint64_t number);
  static std::string LogName(uint64_t number);

  Status SearchSstsLocked(const ReadOptions& ropts, const LookupKey& lkey,
                          std::shared_ptr<const Version> version,
                          Value* value, SequenceNumber* seq);

  DbOptions options_;
  DbEnv denv_;
  sim::SimEnv* env_;

  sim::SimMutex mu_;
  sim::SimCondVar bg_cv_;     // wakes flush/compaction workers
  sim::SimCondVar stall_cv_;  // wakes stalled writers
  sim::SimCondVar work_done_cv_;  // FlushAll / WaitForCompactionIdle

  std::deque<Writer*> writers_;   // front = current group leader
  WriteBatch group_scratch_;      // leader's merge buffer (reused)

  std::shared_ptr<MemTable> mem_;
  std::deque<ImmEntry> imm_;
  std::unique_ptr<LogWriter> wal_;
  uint64_t wal_number_ = 0;

  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<BlockCache> block_cache_;
  std::map<uint64_t, std::shared_ptr<SstReader>> table_cache_;

  std::vector<FileMetaPtr> deferred_deletions_;
  std::vector<sim::SimEnv::Thread*> bg_threads_;
  bool shutting_down_ = false;
  bool closed_ = false;
  Status bg_error_;

  // Decorrelated-jitter stream for RetryTransient backoff (sim/backoff.h).
  // Drawn under mu_, so the schedule is deterministic per instance.
  Random64 retry_rng_;

  // Dynamically tunable copies (ADOC).
  int active_compaction_threads_;
  uint64_t write_buffer_size_;
  bool slowdown_enabled_;
  int max_compaction_workers_;
  int max_subcompactions_;

  // Shared compaction-bytes rate limiter (deep jobs only): classic
  // busy-until accumulator — a reservation starts at max(now, busy_until)
  // and pushes busy_until forward by bytes/rate. 0 rate = disabled.
  double compaction_rate_bps_ = 0;
  double limiter_busy_until_ns_ = 0;

  int running_compactions_ = 0;
  bool flush_running_ = false;
  bool in_slowdown_region_ = false;
  // True while the group leader is committing (WAL + memtable apply) with
  // mu_ released; FlushAll must not switch the memtable underneath it.
  bool commit_in_flight_ = false;

  DbStats stats_;

  // Tracing (obs/trace.h). tracer_ is null unless a Tracer was attached to
  // the SimEnv before Open; every site below guards on that, so the disabled
  // cost is one pointer compare and the hot write path never allocates.
  obs::Tracer* tracer_ = nullptr;
  uint32_t tr_wal_ = 0;
  uint32_t tr_mem_ = 0;
  uint32_t tr_flush_ = 0;
  uint32_t tr_stall_ = 0;
  uint32_t tr_slowdown_ = 0;
  std::vector<uint32_t> tr_compact_;  // one track per compaction worker
  // Track pool for subcompaction helper actors; helpers borrow slots
  // round-robin (next_subtrack_) since split jobs come and go.
  std::vector<uint32_t> tr_subcompact_;
  size_t next_subtrack_ = 0;
  obs::CoalescingSpan wal_append_span_;
  obs::CoalescingSpan wal_sync_span_;
};

}  // namespace kvaccel::lsm
