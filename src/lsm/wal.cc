#include "lsm/wal.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace kvaccel::lsm {

// Record framing: [masked crc32c: fixed32][payload len: fixed32][payload]
static constexpr size_t kRecordHeader = 8;

Status LogWriter::AddRecord(const Slice& payload, uint64_t logical_bytes) {
  std::string rec;
  rec.reserve(kRecordHeader + payload.size());
  uint32_t crc = crc32c::Value(payload.data(), payload.size());
  PutFixed32(&rec, crc32c::Mask(crc));
  PutFixed32(&rec, static_cast<uint32_t>(payload.size()));
  rec.append(payload.data(), payload.size());
  return file_->Append(rec, logical_bytes + kRecordHeader);
}

LogReader::LogReader(std::unique_ptr<fs::RandomAccessFile> file) {
  status_ = file->Read(0, file->physical_size(), &contents_);
}

bool LogReader::ReadRecord(std::string* payload, Status* status) {
  *status = status_;
  if (!status_.ok()) return false;
  if (pos_ + kRecordHeader > contents_.size()) return false;  // clean/torn EOF
  uint32_t masked_crc = DecodeFixed32(contents_.data() + pos_);
  uint32_t len = DecodeFixed32(contents_.data() + pos_ + 4);
  if (pos_ + kRecordHeader + len > contents_.size()) {
    // Torn tail record: stop without error.
    return false;
  }
  const char* data = contents_.data() + pos_ + kRecordHeader;
  if (crc32c::Unmask(masked_crc) != crc32c::Value(data, len)) {
    // Corrupt (likely torn) record ends recovery.
    return false;
  }
  payload->assign(data, len);
  pos_ += kRecordHeader + len;
  return true;
}

}  // namespace kvaccel::lsm
