#include "lsm/wal.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace kvaccel::lsm {

// Record framing: [masked crc32c: fixed32][payload len: fixed32][payload]
static constexpr size_t kRecordHeader = 8;

Status LogWriter::AddRecord(const Slice& payload, uint64_t logical_bytes) {
  std::string rec;
  rec.reserve(kRecordHeader + payload.size());
  uint32_t crc = crc32c::Value(payload.data(), payload.size());
  PutFixed32(&rec, crc32c::Mask(crc));
  PutFixed32(&rec, static_cast<uint32_t>(payload.size()));
  rec.append(payload.data(), payload.size());
  return file_->Append(rec, logical_bytes + kRecordHeader);
}

LogReader::LogReader(std::unique_ptr<fs::RandomAccessFile> file) {
  status_ = file->Read(0, file->physical_size(), &contents_);
}

bool LogReader::ReadRecord(std::string* payload, Status* status) {
  *status = status_;
  if (!status_.ok()) return false;
  if (pos_ + kRecordHeader > contents_.size()) return false;  // clean/torn EOF
  uint32_t masked_crc = DecodeFixed32(contents_.data() + pos_);
  uint32_t len = DecodeFixed32(contents_.data() + pos_ + 4);
  if (pos_ + kRecordHeader + len > contents_.size() ||
      crc32c::Unmask(masked_crc) !=
          crc32c::Value(contents_.data() + pos_ + kRecordHeader, len)) {
    // A bad record at the very end of the log is a torn tail — the expected
    // shape after a crash mid-append — and ends recovery cleanly. A bad
    // record *followed by* a valid one cannot have been torn by a crash:
    // that is mid-log corruption and must not be silently truncated.
    if (HasValidRecordAfter(pos_ + 1)) {
      status_ = Status::Corruption("WAL record corrupt before valid data");
      *status = status_;
    }
    return false;
  }
  payload->assign(contents_.data() + pos_ + kRecordHeader, len);
  pos_ += kRecordHeader + len;
  return true;
}

bool LogReader::HasValidRecordAfter(size_t from) const {
  if (contents_.size() < kRecordHeader) return false;
  for (size_t p = from; p + kRecordHeader <= contents_.size(); p++) {
    uint32_t masked_crc = DecodeFixed32(contents_.data() + p);
    uint32_t len = DecodeFixed32(contents_.data() + p + 4);
    if (len == 0 || p + kRecordHeader + len > contents_.size()) continue;
    if (crc32c::Unmask(masked_crc) ==
        crc32c::Value(contents_.data() + p + kRecordHeader, len)) {
      return true;
    }
  }
  return false;
}

}  // namespace kvaccel::lsm
