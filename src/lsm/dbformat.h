// Internal key format: user_key ++ 8-byte trailer (sequence<<8 | type).
// Internal ordering is (user_key ascending, sequence descending) so the
// newest version of a key sorts first — the invariant every merge path
// (memtable, SST, compaction, DB iterator) relies on.
#pragma once

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"

namespace kvaccel::lsm {

using SequenceNumber = uint64_t;
constexpr SequenceNumber kMaxSequenceNumber = (1ull << 56) - 1;

enum class ValueType : uint8_t {
  kDeletion = 0x0,
  kValue = 0x1,
};

// kValue > kDeletion so that, at equal (user_key, seq), a Put sorts before a
// Delete when scanning forward (matters only for artificial duplicates).
constexpr ValueType kValueTypeForSeek = ValueType::kValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | static_cast<uint64_t>(t);
}

inline void UnpackSequenceAndType(uint64_t packed, SequenceNumber* seq,
                                  ValueType* t) {
  *seq = packed >> 8;
  *t = static_cast<ValueType>(packed & 0xff);
}

// Appends the internal-key encoding of (user_key, seq, type) to *result.
inline void AppendInternalKey(std::string* result, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  result->append(user_key.data(), user_key.size());
  PutFixed64(result, PackSequenceAndType(seq, t));
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline uint64_t ExtractTag(const Slice& internal_key) {
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  return static_cast<ValueType>(ExtractTag(internal_key) & 0xff);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return ExtractTag(internal_key) >> 8;
}

// Orders internal keys by (user_key asc, tag desc).
class InternalKeyComparator {
 public:
  int Compare(const Slice& a, const Slice& b) const {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    uint64_t atag = ExtractTag(a);
    uint64_t btag = ExtractTag(b);
    if (atag > btag) return -1;
    if (atag < btag) return +1;
    return 0;
  }
  bool operator()(const Slice& a, const Slice& b) const {
    return Compare(a, b) < 0;
  }
};

// A key for memtable/SST lookups: user_key with a max-sequence trailer, so a
// Seek lands on the newest visible entry.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber seq) {
    key_.reserve(user_key.size() + 8);
    AppendInternalKey(&key_, user_key, seq, kValueTypeForSeek);
  }

  Slice internal_key() const { return Slice(key_); }
  Slice user_key() const { return ExtractUserKey(internal_key()); }

 private:
  std::string key_;
};

}  // namespace kvaccel::lsm
