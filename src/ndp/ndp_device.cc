#include "ndp/ndp_device.h"

#include "obs/trace.h"
#include "sim/fault.h"

namespace kvaccel::ndp {

NdpDevice::NdpDevice(ssd::HybridSsd* ssd, const NdpConfig& config)
    : ssd_(ssd), env_(ssd->env()), config_(config) {
  if (config_.cores > 0) {
    double speed = config_.speed_factor > 0 ? config_.speed_factor
                                            : ssd_->config().firmware_speed;
    ndp_pool_ = std::make_unique<sim::CpuPool>(env_, "ssd-ndp", config_.cores,
                                               speed);
  }
  if (env_->tracer() != nullptr) {
    tr_track_ = env_->tracer()->RegisterTrack("ssd.ndp");
    traced_ = true;
  }
}

Status NdpDevice::BeginCompact(const CompactDescriptor& d, uint64_t* cmd_id) {
  if (sim::SimCrashed(env_)) return Status::IOError("simulated crash");
  if (sim::FaultAt(env_, "ndp.compact.transient")) {
    stats_.rejected++;
    return Status::IOError("ndp: COMPACT rejected");
  }
  uint64_t bytes = config_.command_bytes_base +
                   config_.command_bytes_per_file *
                       static_cast<uint64_t>(std::max(0, d.input_files));
  ssd_->PcieToDevice(bytes);
  stats_.commands++;
  stats_.command_bytes += bytes;
  *cmd_id = next_cmd_id_++;
  inflight_[*cmd_id] = env_->Now();
  return Status::OK();
}

void NdpDevice::MergeCpu(uint64_t bytes) {
  stats_.merge_bytes += bytes;
  cpu()->Consume((config_.merge_ns_per_byte + config_.verify_ns_per_byte) *
                 static_cast<double>(bytes));
}

Status NdpDevice::FinishCompact(uint64_t cmd_id, bool ok,
                                uint64_t output_files, uint64_t output_bytes) {
  (void)output_bytes;
  Nanos start = 0;
  auto it = inflight_.find(cmd_id);
  if (it != inflight_.end()) {
    start = it->second;
    inflight_.erase(it);
  }
  if (!ok) {
    stats_.jobs_failed++;
    return Status::OK();
  }
  // Result capsule in flight: a power cut here loses the metadata while the
  // output SSTs already sit on NAND — recovery must reap them as strays.
  if (sim::FaultAt(env_, "crash.ndp.result.pre")) {
    stats_.jobs_failed++;
    return Status::IOError("simulated crash");
  }
  uint64_t bytes =
      config_.result_bytes_base + config_.result_bytes_per_file * output_files;
  ssd_->PcieToHost(bytes);
  stats_.jobs_completed++;
  stats_.result_bytes += bytes;
  if (traced_) {
    env_->tracer()->Complete(tr_track_, "ndp.compact", start, env_->Now(),
                             stats_.merge_bytes);
  }
  return Status::OK();
}

}  // namespace kvaccel::ndp
