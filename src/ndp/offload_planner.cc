#include "ndp/offload_planner.h"

namespace kvaccel::ndp {

bool OffloadPlanner::HostPressureHigh() {
  Nanos now = env_->Now();
  Nanos start = now > opts_.window ? now - opts_.window : 0;
  double util = host_->UtilizationBetween(start, now);
  // Backlog counts as pressure too: booked-but-unfinished work means new
  // merge bursts would queue even if the trailing window looks moderate.
  bool sample_high = util > opts_.cpu_high_water ||
                     host_->BacklogNanos(now) >
                         static_cast<double>(opts_.window) / 4.0;
  bool sample_low = util < opts_.cpu_low_water;
  if (pressure_high_ ? sample_low : sample_high) {
    if (++streak_ >= opts_.flip_streak) {
      pressure_high_ = !pressure_high_;
      stats_.flips++;
      streak_ = 0;
    }
  } else {
    streak_ = 0;
  }
  return pressure_high_;
}

bool OffloadPlanner::ShouldOffload(const lsm::OffloadJobInfo& job) {
  if (opts_.mode == OffloadMode::kOff) {
    stats_.host_jobs++;
    return false;
  }
  if (opts_.mode == OffloadMode::kForce) {
    stats_.device_jobs++;
    return true;
  }
  Nanos now = env_->Now();
  if (now < cooldown_until_) {
    stats_.cooldown_rejects++;
    stats_.host_jobs++;
    return false;
  }
  // Update the hysteresis state on every decision so the streak counter sees
  // a steady sample stream even when only deep jobs arrive.
  bool host_pressed = HostPressureHigh();
  if (job.input_bytes < opts_.min_job_bytes) {
    stats_.host_jobs++;
    return false;
  }
  Nanos start = now > opts_.window ? now - opts_.window : 0;
  if (device_ != nullptr &&
      device_->UtilizationBetween(start, now) >= opts_.dev_high_water) {
    stats_.host_jobs++;
    return false;
  }
  bool offload;
  if (!job.is_intra_l0) {
    // Bulk merges (L0->L1 and deeper): throughput work whose host cost is
    // pure overhead — the device takes them whenever it has headroom.
    offload = true;
  } else {
    // Intra-L0 jobs un-gate stalled writers: host cores are faster, so keep
    // them local unless the host itself is the bottleneck — and even then,
    // not while a stall is already in progress.
    offload = host_pressed;
    if (offload && signals_) {
      lsm::StallSignals sig = signals_();
      if (sig.stalled) offload = false;
    }
  }
  if (offload) {
    stats_.device_jobs++;
  } else {
    stats_.host_jobs++;
  }
  return offload;
}

}  // namespace kvaccel::ndp
