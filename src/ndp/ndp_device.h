// NdpDevice: the device side of offloaded compaction (DESIGN.md §13).
//
// Models a vendor COMPACT command on the hybrid SSD: the host ships a small
// descriptor (input file set + sub-range plan) over PCIe, firmware cores run
// the k-way merge reading and writing NAND directly — no data ever crosses
// the link — and a result capsule (output SST metadata) returns to the host
// for the single atomic VersionEdit install. The LSM's merge loop itself
// stays host-code (single-sourced semantics); what moves to the device is
// the *cost*: merge/verify cycles land on the NDP cores and block I/O runs
// through HybridSsd::Block{Read,Write}Internal.
//
// Fault sites:
//   ndp.compact.transient  — device rejects the command; planner falls back
//   crash.ndp.result.pre   — merge finished, result capsule still in flight;
//                            the outputs are uninstalled strays recovery reaps
// (crash.ndp.merge.mid / crash.ndp.submerge.mid fire inside the merge loop,
// see lsm/db_impl.cc.)
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "common/status.h"
#include "common/units.h"
#include "sim/cpu_pool.h"
#include "ssd/hybrid_ssd.h"

namespace kvaccel::ndp {

struct NdpConfig {
  // Dedicated NDP cores. 0 = share the SSD's single firmware pool (merges
  // then queue behind Dev-LSM command processing).
  int cores = 2;
  // Relative speed of a dedicated NDP core. Unlike the control-path firmware
  // core (SsdConfig::firmware_speed, 0.25), the merge engines run at host
  // clock: the COMPACT path is what the silicon exists for. 0 = inherit
  // firmware_speed (only sensible together with cores = 0).
  double speed_factor = 1.0;
  // Firmware merge loop cost, nominal ns per logical byte (host loop is
  // DbOptions::compaction_cpu_ns_per_byte).
  double merge_ns_per_byte = 1.2;
  // Device-side CRC verification of every block read and written.
  double verify_ns_per_byte = 0.3;
  // COMPACT descriptor / result capsule sizes shipped over PCIe.
  uint64_t command_bytes_base = 512;
  uint64_t command_bytes_per_file = 64;
  uint64_t result_bytes_base = 256;
  uint64_t result_bytes_per_file = 64;
};

struct NdpStats {
  uint64_t commands = 0;        // COMPACT descriptors accepted
  uint64_t rejected = 0;        // transient device rejections
  uint64_t jobs_completed = 0;  // result capsules delivered to the host
  uint64_t jobs_failed = 0;     // jobs reported failed (host fell back)
  uint64_t merge_bytes = 0;     // logical bytes merged on NDP cores
  uint64_t command_bytes = 0;   // PCIe bytes, host -> device
  uint64_t result_bytes = 0;    // PCIe bytes, device -> host
};

// What one COMPACT command describes (mirrors lsm::OffloadJobInfo).
struct CompactDescriptor {
  int level = 0;
  int output_level = 0;
  uint64_t input_bytes = 0;
  int input_files = 0;
  int subranges = 1;
};

class NdpDevice {
 public:
  NdpDevice(ssd::HybridSsd* ssd, const NdpConfig& config = NdpConfig());

  // Ships one COMPACT descriptor to the device. Blocks for the PCIe
  // transfer; fails at ndp.compact.transient (device busy/reject — the
  // caller runs the job on the host instead). On success *cmd_id names the
  // in-flight command for FinishCompact.
  Status BeginCompact(const CompactDescriptor& d, uint64_t* cmd_id);

  // Burns merge + verify cycles for `bytes` logical bytes on the NDP cores;
  // blocks the calling actor until the work retires (k-server queueing).
  void MergeCpu(uint64_t bytes);

  // Completes a command. ok=true ships the result capsule device -> host
  // (crash.ndp.result.pre fires before the transfer: output metadata lost in
  // flight, SSTs already on NAND stay uninstalled). ok=false records a
  // device-side failure; nothing crosses the link.
  Status FinishCompact(uint64_t cmd_id, bool ok, uint64_t output_files,
                       uint64_t output_bytes);

  // Pool the merge cycles land on (dedicated, or the SSD firmware pool).
  sim::CpuPool* cpu() {
    return ndp_pool_ != nullptr ? ndp_pool_.get() : ssd_->firmware();
  }
  ssd::HybridSsd* ssd() { return ssd_; }
  const NdpConfig& config() const { return config_; }
  const NdpStats& stats() const { return stats_; }

 private:
  ssd::HybridSsd* ssd_;
  sim::SimEnv* env_;
  NdpConfig config_;
  std::unique_ptr<sim::CpuPool> ndp_pool_;  // null = share firmware()
  NdpStats stats_;
  uint64_t next_cmd_id_ = 1;
  std::map<uint64_t, Nanos> inflight_;  // cmd_id -> start time (for tracing)
  uint32_t tr_track_ = 0;
  bool traced_ = false;
};

}  // namespace kvaccel::ndp
