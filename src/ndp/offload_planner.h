// OffloadPlanner: the host-side placement policy for compaction jobs
// (DESIGN.md §13). Decides per picked job whether the merge runs on the host
// CPU pool or is shipped to the device's NDP cores, from the same live
// resource picture the Detector reads: trailing host-CPU utilisation and
// backlog, trailing NDP-core utilisation, and LSM stall signals.
//
// Policy (auto mode):
//  - Bulk merges (L0->L1 and deeper) of at least min_job_bytes offload
//    whenever the NDP cores have headroom — they are throughput work, and
//    moving them off the host frees cycles and PCIe bandwidth for the
//    foreground.
//  - Intra-L0 jobs are latency-critical — they un-gate stalled writers — so
//    they stay host-side unless the host itself is the bottleneck: sustained
//    utilisation above cpu_high_water (with hysteresis so the decision
//    doesn't flap around the threshold).
//  - A reported device failure opens a cooldown window during which every
//    job runs host-side (circuit breaker; force mode ignores it so fault
//    drills still arm the device path).
//
// Every input is virtual-time-deterministic, so same-seed runs make
// identical placement decisions (the CI byte-identity gate covers this).
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.h"
#include "lsm/db.h"
#include "lsm/options.h"
#include "sim/cpu_pool.h"
#include "sim/sim_env.h"

namespace kvaccel::ndp {

enum class OffloadMode { kOff, kAuto, kForce };

struct PlannerOptions {
  OffloadMode mode = OffloadMode::kAuto;
  // Hysteresis band for "the host is the bottleneck".
  double cpu_high_water = 0.60;
  double cpu_low_water = 0.40;
  // NDP cores above this trailing utilisation have no headroom.
  double dev_high_water = 0.90;
  // Trailing window the utilisation signals are read over.
  Nanos window = FromMillis(500);
  // Consecutive same-side samples before the hysteresis state flips.
  int flip_streak = 2;
  // Circuit-breaker window after a device failure.
  Nanos failure_cooldown = FromSecs(2);
  // Jobs smaller than this aren't worth a command round-trip.
  uint64_t min_job_bytes = 1ull << 20;
};

struct PlannerStats {
  uint64_t device_jobs = 0;      // decisions that granted the device
  uint64_t host_jobs = 0;        // decisions that kept the host
  uint64_t flips = 0;            // hysteresis state changes
  uint64_t cooldown_rejects = 0; // jobs kept host-side by the breaker
  uint64_t failures = 0;         // device failures reported
};

class OffloadPlanner {
 public:
  OffloadPlanner(sim::SimEnv* env, sim::CpuPool* host_cpu,
                 sim::CpuPool* device_cpu, const PlannerOptions& opts)
      : env_(env), host_(host_cpu), device_(device_cpu), opts_(opts) {}

  // Optional: LSM stall signals sharpen the L0 decision (an imminent stall
  // keeps L0 work on the faster host cores even under CPU pressure).
  void set_signals_provider(std::function<lsm::StallSignals()> fn) {
    signals_ = std::move(fn);
  }

  bool ShouldOffload(const lsm::OffloadJobInfo& job);

  void ReportDeviceFailure() {
    stats_.failures++;
    cooldown_until_ = env_->Now() + opts_.failure_cooldown;
  }
  void ReportDeviceSuccess() {}

  const PlannerOptions& options() const { return opts_; }
  const PlannerStats& stats() const { return stats_; }

 private:
  bool HostPressureHigh();  // hysteresis-filtered host-CPU signal

  sim::SimEnv* env_;
  sim::CpuPool* host_;
  sim::CpuPool* device_;
  PlannerOptions opts_;
  std::function<lsm::StallSignals()> signals_;
  PlannerStats stats_;
  Nanos cooldown_until_ = 0;
  bool pressure_high_ = false;
  int streak_ = 0;
};

}  // namespace kvaccel::ndp
