# Empty compiler generated dependencies file for kvaccel_dbbench.
# This may be replaced when dependencies are built.
