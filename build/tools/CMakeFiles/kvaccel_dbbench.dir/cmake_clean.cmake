file(REMOVE_RECURSE
  "CMakeFiles/kvaccel_dbbench.dir/kvaccel_dbbench.cc.o"
  "CMakeFiles/kvaccel_dbbench.dir/kvaccel_dbbench.cc.o.d"
  "kvaccel_dbbench"
  "kvaccel_dbbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvaccel_dbbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
