file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multi_device.dir/bench_ablation_multi_device.cc.o"
  "CMakeFiles/bench_ablation_multi_device.dir/bench_ablation_multi_device.cc.o.d"
  "bench_ablation_multi_device"
  "bench_ablation_multi_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multi_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
