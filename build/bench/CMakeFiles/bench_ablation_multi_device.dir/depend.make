# Empty dependencies file for bench_ablation_multi_device.
# This may be replaced when dependencies are built.
