# Empty dependencies file for bench_fig11_kvaccel_timeseries.
# This may be replaced when dependencies are built.
