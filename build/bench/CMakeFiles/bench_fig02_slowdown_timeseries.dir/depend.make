# Empty dependencies file for bench_fig02_slowdown_timeseries.
# This may be replaced when dependencies are built.
