# Empty compiler generated dependencies file for bench_fig13_rollback_schemes.
# This may be replaced when dependencies are built.
