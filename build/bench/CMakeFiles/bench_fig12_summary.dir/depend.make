# Empty dependencies file for bench_fig12_summary.
# This may be replaced when dependencies are built.
