file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stall_triggers.dir/bench_ablation_stall_triggers.cc.o"
  "CMakeFiles/bench_ablation_stall_triggers.dir/bench_ablation_stall_triggers.cc.o.d"
  "bench_ablation_stall_triggers"
  "bench_ablation_stall_triggers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stall_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
