# Empty dependencies file for bench_ablation_stall_triggers.
# This may be replaced when dependencies are built.
