file(REMOVE_RECURSE
  "CMakeFiles/bench_tab06_overheads.dir/bench_tab06_overheads.cc.o"
  "CMakeFiles/bench_tab06_overheads.dir/bench_tab06_overheads.cc.o.d"
  "bench_tab06_overheads"
  "bench_tab06_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab06_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
