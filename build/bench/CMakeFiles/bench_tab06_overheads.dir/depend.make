# Empty dependencies file for bench_tab06_overheads.
# This may be replaced when dependencies are built.
