# Empty dependencies file for bench_fig04_pcie_timeseries.
# This may be replaced when dependencies are built.
