# Empty compiler generated dependencies file for bench_fig03_slowdown_summary.
# This may be replaced when dependencies are built.
