file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bandwidth_share.dir/bench_ablation_bandwidth_share.cc.o"
  "CMakeFiles/bench_ablation_bandwidth_share.dir/bench_ablation_bandwidth_share.cc.o.d"
  "bench_ablation_bandwidth_share"
  "bench_ablation_bandwidth_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bandwidth_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
