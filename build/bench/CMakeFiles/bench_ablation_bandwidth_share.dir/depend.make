# Empty dependencies file for bench_ablation_bandwidth_share.
# This may be replaced when dependencies are built.
