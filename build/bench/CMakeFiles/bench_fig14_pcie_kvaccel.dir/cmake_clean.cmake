file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_pcie_kvaccel.dir/bench_fig14_pcie_kvaccel.cc.o"
  "CMakeFiles/bench_fig14_pcie_kvaccel.dir/bench_fig14_pcie_kvaccel.cc.o.d"
  "bench_fig14_pcie_kvaccel"
  "bench_fig14_pcie_kvaccel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_pcie_kvaccel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
