# Empty dependencies file for bench_tab05_range_query.
# This may be replaced when dependencies are built.
