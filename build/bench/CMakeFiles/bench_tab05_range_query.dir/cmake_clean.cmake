file(REMOVE_RECURSE
  "CMakeFiles/bench_tab05_range_query.dir/bench_tab05_range_query.cc.o"
  "CMakeFiles/bench_tab05_range_query.dir/bench_tab05_range_query.cc.o.d"
  "bench_tab05_range_query"
  "bench_tab05_range_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_range_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
