# Empty dependencies file for kvx_fs.
# This may be replaced when dependencies are built.
