file(REMOVE_RECURSE
  "CMakeFiles/kvx_fs.dir/simfs.cc.o"
  "CMakeFiles/kvx_fs.dir/simfs.cc.o.d"
  "libkvx_fs.a"
  "libkvx_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvx_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
