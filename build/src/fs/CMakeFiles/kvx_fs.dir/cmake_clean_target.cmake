file(REMOVE_RECURSE
  "libkvx_fs.a"
)
