file(REMOVE_RECURSE
  "libkvx_sim.a"
)
