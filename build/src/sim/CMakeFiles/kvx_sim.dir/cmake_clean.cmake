file(REMOVE_RECURSE
  "CMakeFiles/kvx_sim.dir/sim_env.cc.o"
  "CMakeFiles/kvx_sim.dir/sim_env.cc.o.d"
  "libkvx_sim.a"
  "libkvx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
