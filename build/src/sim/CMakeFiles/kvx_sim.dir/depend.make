# Empty dependencies file for kvx_sim.
# This may be replaced when dependencies are built.
