file(REMOVE_RECURSE
  "CMakeFiles/kvx_adoc.dir/adoc_tuner.cc.o"
  "CMakeFiles/kvx_adoc.dir/adoc_tuner.cc.o.d"
  "libkvx_adoc.a"
  "libkvx_adoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvx_adoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
