file(REMOVE_RECURSE
  "libkvx_adoc.a"
)
