# Empty compiler generated dependencies file for kvx_adoc.
# This may be replaced when dependencies are built.
