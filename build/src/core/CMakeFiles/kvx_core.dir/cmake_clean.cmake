file(REMOVE_RECURSE
  "CMakeFiles/kvx_core.dir/hybrid_iterator.cc.o"
  "CMakeFiles/kvx_core.dir/hybrid_iterator.cc.o.d"
  "CMakeFiles/kvx_core.dir/kvaccel_db.cc.o"
  "CMakeFiles/kvx_core.dir/kvaccel_db.cc.o.d"
  "libkvx_core.a"
  "libkvx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
