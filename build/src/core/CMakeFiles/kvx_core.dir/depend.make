# Empty dependencies file for kvx_core.
# This may be replaced when dependencies are built.
