file(REMOVE_RECURSE
  "libkvx_core.a"
)
