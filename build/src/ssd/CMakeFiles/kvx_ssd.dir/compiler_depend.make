# Empty compiler generated dependencies file for kvx_ssd.
# This may be replaced when dependencies are built.
