file(REMOVE_RECURSE
  "CMakeFiles/kvx_ssd.dir/ftl.cc.o"
  "CMakeFiles/kvx_ssd.dir/ftl.cc.o.d"
  "CMakeFiles/kvx_ssd.dir/hybrid_ssd.cc.o"
  "CMakeFiles/kvx_ssd.dir/hybrid_ssd.cc.o.d"
  "CMakeFiles/kvx_ssd.dir/nand_flash.cc.o"
  "CMakeFiles/kvx_ssd.dir/nand_flash.cc.o.d"
  "CMakeFiles/kvx_ssd.dir/nvme.cc.o"
  "CMakeFiles/kvx_ssd.dir/nvme.cc.o.d"
  "libkvx_ssd.a"
  "libkvx_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvx_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
