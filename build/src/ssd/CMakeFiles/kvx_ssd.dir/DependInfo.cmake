
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/ftl.cc" "src/ssd/CMakeFiles/kvx_ssd.dir/ftl.cc.o" "gcc" "src/ssd/CMakeFiles/kvx_ssd.dir/ftl.cc.o.d"
  "/root/repo/src/ssd/hybrid_ssd.cc" "src/ssd/CMakeFiles/kvx_ssd.dir/hybrid_ssd.cc.o" "gcc" "src/ssd/CMakeFiles/kvx_ssd.dir/hybrid_ssd.cc.o.d"
  "/root/repo/src/ssd/nand_flash.cc" "src/ssd/CMakeFiles/kvx_ssd.dir/nand_flash.cc.o" "gcc" "src/ssd/CMakeFiles/kvx_ssd.dir/nand_flash.cc.o.d"
  "/root/repo/src/ssd/nvme.cc" "src/ssd/CMakeFiles/kvx_ssd.dir/nvme.cc.o" "gcc" "src/ssd/CMakeFiles/kvx_ssd.dir/nvme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kvx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kvx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
