file(REMOVE_RECURSE
  "libkvx_ssd.a"
)
