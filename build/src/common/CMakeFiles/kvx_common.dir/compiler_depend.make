# Empty compiler generated dependencies file for kvx_common.
# This may be replaced when dependencies are built.
