file(REMOVE_RECURSE
  "libkvx_common.a"
)
