file(REMOVE_RECURSE
  "CMakeFiles/kvx_common.dir/coding.cc.o"
  "CMakeFiles/kvx_common.dir/coding.cc.o.d"
  "CMakeFiles/kvx_common.dir/crc32c.cc.o"
  "CMakeFiles/kvx_common.dir/crc32c.cc.o.d"
  "CMakeFiles/kvx_common.dir/hash.cc.o"
  "CMakeFiles/kvx_common.dir/hash.cc.o.d"
  "CMakeFiles/kvx_common.dir/histogram.cc.o"
  "CMakeFiles/kvx_common.dir/histogram.cc.o.d"
  "CMakeFiles/kvx_common.dir/logging.cc.o"
  "CMakeFiles/kvx_common.dir/logging.cc.o.d"
  "CMakeFiles/kvx_common.dir/random.cc.o"
  "CMakeFiles/kvx_common.dir/random.cc.o.d"
  "CMakeFiles/kvx_common.dir/value.cc.o"
  "CMakeFiles/kvx_common.dir/value.cc.o.d"
  "libkvx_common.a"
  "libkvx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
