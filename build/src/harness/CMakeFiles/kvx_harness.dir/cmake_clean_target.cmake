file(REMOVE_RECURSE
  "libkvx_harness.a"
)
