# Empty compiler generated dependencies file for kvx_harness.
# This may be replaced when dependencies are built.
