file(REMOVE_RECURSE
  "CMakeFiles/kvx_harness.dir/report.cc.o"
  "CMakeFiles/kvx_harness.dir/report.cc.o.d"
  "CMakeFiles/kvx_harness.dir/workload.cc.o"
  "CMakeFiles/kvx_harness.dir/workload.cc.o.d"
  "libkvx_harness.a"
  "libkvx_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvx_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
