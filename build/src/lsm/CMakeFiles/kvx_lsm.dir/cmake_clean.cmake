file(REMOVE_RECURSE
  "CMakeFiles/kvx_lsm.dir/bloom.cc.o"
  "CMakeFiles/kvx_lsm.dir/bloom.cc.o.d"
  "CMakeFiles/kvx_lsm.dir/db_impl.cc.o"
  "CMakeFiles/kvx_lsm.dir/db_impl.cc.o.d"
  "CMakeFiles/kvx_lsm.dir/memtable.cc.o"
  "CMakeFiles/kvx_lsm.dir/memtable.cc.o.d"
  "CMakeFiles/kvx_lsm.dir/sst.cc.o"
  "CMakeFiles/kvx_lsm.dir/sst.cc.o.d"
  "CMakeFiles/kvx_lsm.dir/version.cc.o"
  "CMakeFiles/kvx_lsm.dir/version.cc.o.d"
  "CMakeFiles/kvx_lsm.dir/wal.cc.o"
  "CMakeFiles/kvx_lsm.dir/wal.cc.o.d"
  "CMakeFiles/kvx_lsm.dir/write_batch.cc.o"
  "CMakeFiles/kvx_lsm.dir/write_batch.cc.o.d"
  "libkvx_lsm.a"
  "libkvx_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvx_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
