file(REMOVE_RECURSE
  "libkvx_lsm.a"
)
