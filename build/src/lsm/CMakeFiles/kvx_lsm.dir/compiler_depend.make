# Empty compiler generated dependencies file for kvx_lsm.
# This may be replaced when dependencies are built.
