
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/bloom.cc" "src/lsm/CMakeFiles/kvx_lsm.dir/bloom.cc.o" "gcc" "src/lsm/CMakeFiles/kvx_lsm.dir/bloom.cc.o.d"
  "/root/repo/src/lsm/db_impl.cc" "src/lsm/CMakeFiles/kvx_lsm.dir/db_impl.cc.o" "gcc" "src/lsm/CMakeFiles/kvx_lsm.dir/db_impl.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/lsm/CMakeFiles/kvx_lsm.dir/memtable.cc.o" "gcc" "src/lsm/CMakeFiles/kvx_lsm.dir/memtable.cc.o.d"
  "/root/repo/src/lsm/sst.cc" "src/lsm/CMakeFiles/kvx_lsm.dir/sst.cc.o" "gcc" "src/lsm/CMakeFiles/kvx_lsm.dir/sst.cc.o.d"
  "/root/repo/src/lsm/version.cc" "src/lsm/CMakeFiles/kvx_lsm.dir/version.cc.o" "gcc" "src/lsm/CMakeFiles/kvx_lsm.dir/version.cc.o.d"
  "/root/repo/src/lsm/wal.cc" "src/lsm/CMakeFiles/kvx_lsm.dir/wal.cc.o" "gcc" "src/lsm/CMakeFiles/kvx_lsm.dir/wal.cc.o.d"
  "/root/repo/src/lsm/write_batch.cc" "src/lsm/CMakeFiles/kvx_lsm.dir/write_batch.cc.o" "gcc" "src/lsm/CMakeFiles/kvx_lsm.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kvx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kvx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/kvx_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/kvx_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
