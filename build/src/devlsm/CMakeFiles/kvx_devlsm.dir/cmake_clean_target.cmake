file(REMOVE_RECURSE
  "libkvx_devlsm.a"
)
