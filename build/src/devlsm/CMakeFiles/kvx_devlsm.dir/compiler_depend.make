# Empty compiler generated dependencies file for kvx_devlsm.
# This may be replaced when dependencies are built.
