file(REMOVE_RECURSE
  "CMakeFiles/kvx_devlsm.dir/dev_lsm.cc.o"
  "CMakeFiles/kvx_devlsm.dir/dev_lsm.cc.o.d"
  "libkvx_devlsm.a"
  "libkvx_devlsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvx_devlsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
