# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/ssd_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/lsm_format_test[1]_include.cmake")
include("/root/repo/build/tests/sst_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/devlsm_test[1]_include.cmake")
include("/root/repo/build/tests/adoc_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/version_test[1]_include.cmake")
include("/root/repo/build/tests/ingest_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
