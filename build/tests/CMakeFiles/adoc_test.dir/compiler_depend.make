# Empty compiler generated dependencies file for adoc_test.
# This may be replaced when dependencies are built.
