file(REMOVE_RECURSE
  "CMakeFiles/adoc_test.dir/adoc_test.cc.o"
  "CMakeFiles/adoc_test.dir/adoc_test.cc.o.d"
  "adoc_test"
  "adoc_test.pdb"
  "adoc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adoc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
