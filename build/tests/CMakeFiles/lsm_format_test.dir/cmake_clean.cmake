file(REMOVE_RECURSE
  "CMakeFiles/lsm_format_test.dir/lsm_format_test.cc.o"
  "CMakeFiles/lsm_format_test.dir/lsm_format_test.cc.o.d"
  "lsm_format_test"
  "lsm_format_test.pdb"
  "lsm_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
