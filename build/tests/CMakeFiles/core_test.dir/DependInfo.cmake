
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/core_test.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kvx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/kvx_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/kvx_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/devlsm/CMakeFiles/kvx_devlsm.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/kvx_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kvx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kvx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
