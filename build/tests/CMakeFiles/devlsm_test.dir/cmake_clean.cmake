file(REMOVE_RECURSE
  "CMakeFiles/devlsm_test.dir/devlsm_test.cc.o"
  "CMakeFiles/devlsm_test.dir/devlsm_test.cc.o.d"
  "devlsm_test"
  "devlsm_test.pdb"
  "devlsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devlsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
