# Empty dependencies file for devlsm_test.
# This may be replaced when dependencies are built.
