file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_namespaces.dir/multi_tenant_namespaces.cpp.o"
  "CMakeFiles/multi_tenant_namespaces.dir/multi_tenant_namespaces.cpp.o.d"
  "multi_tenant_namespaces"
  "multi_tenant_namespaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_namespaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
