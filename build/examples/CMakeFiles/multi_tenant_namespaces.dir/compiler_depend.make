# Empty compiler generated dependencies file for multi_tenant_namespaces.
# This may be replaced when dependencies are built.
