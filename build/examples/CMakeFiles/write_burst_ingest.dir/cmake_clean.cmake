file(REMOVE_RECURSE
  "CMakeFiles/write_burst_ingest.dir/write_burst_ingest.cpp.o"
  "CMakeFiles/write_burst_ingest.dir/write_burst_ingest.cpp.o.d"
  "write_burst_ingest"
  "write_burst_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_burst_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
