# Empty compiler generated dependencies file for write_burst_ingest.
# This may be replaced when dependencies are built.
