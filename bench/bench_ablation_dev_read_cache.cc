// Ablation / future-work (paper Table V discussion): the paper attributes
// KVACCEL's 3x range-query deficit to the Dev-LSM iterator's lack of a
// device-side read cache. This bench implements that cache and quantifies
// the claim: range-query throughput with 0 / 8 MB / 64 MB of device DRAM
// read cache.
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

namespace {

// Custom run: plant a fixed Dev-LSM population, then scan.
double ScanKopsWithCache(double scale, uint64_t cache_bytes,
                         uint64_t* hits_out) {
  sim::SimEnv env;
  ssd::HybridSsd ssd(&env, PaperSsdConfig(scale));
  fs::SimFs fs(&ssd, 0);
  sim::CpuPool cpu(&env, "host", 8);
  lsm::DbEnv denv{&env, &ssd, &fs, &cpu};
  double kops = 0;
  uint64_t hits = 0;

  env.Spawn("main", [&] {
    lsm::DbOptions opts = PaperDbOptions(4, false, scale);
    core::KvaccelOptions kv_opts =
        PaperKvaccelOptions(core::RollbackScheme::kDisabled, scale);
    kv_opts.dev.read_cache_bytes = cache_bytes;
    std::unique_ptr<core::KvaccelDB> db;
    if (!core::KvaccelDB::Open(opts, kv_opts, denv, &db).ok()) return;

    // Interleaved population: even keys in Main-LSM, odd keys device-side.
    const uint64_t kKeys = 60000;
    for (uint64_t i = 0; i < kKeys; i += 2) {
      db->Put({}, MakeKey(i, 8), Value::Synthetic(i, 4096));
    }
    db->WaitForCompactionIdle();
    for (uint64_t i = 1; i < kKeys; i += 2) {
      lsm::SequenceNumber seq = db->main()->AllocateSequence(1);
      db->dev()->Put(MakeKey(i, 8), Value::Synthetic(i, 4096), seq);
      db->metadata()->Insert(MakeKey(i, 8), seq);
    }

    Random64 rng(99);
    lsm::ReadOptions ropts;
    ropts.readahead_blocks = 16;
    Nanos t0 = env.Now();
    uint64_t ops = 0;
    const int kSeeks = 400;
    for (int s = 0; s < kSeeks; s++) {
      auto it = db->NewIterator(ropts);
      it->Seek(MakeKey(rng.Uniform(kKeys - 2000), 8));
      ops++;
      for (int n = 0; n < 1024 && it->Valid(); n++) {
        it->Next();
        ops++;
      }
    }
    kops = static_cast<double>(ops) / ToSecs(env.Now() - t0) / 1e3;
    hits = db->dev()->stats().read_cache_hits;
    db->Close();
  });
  env.Run();
  *hits_out = hits;
  return kops;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 0);
  PrintBanner("Ablation: Dev-LSM device read cache (the paper's named "
              "range-query bottleneck)");

  struct Row {
    uint64_t cache;
    double kops = 0;
    uint64_t hits = 0;
  } rows[] = {{0, 0, 0}, {8ull << 20, 0, 0}, {64ull << 20, 0, 0}};

  printf("%-14s %14s %14s\n", "read cache", "scan Kops/s", "cache hits");
  for (Row& row : rows) {
    row.kops = ScanKopsWithCache(flags.scale, row.cache, &row.hits);
    printf("%-14llu %14.1f %14llu\n",
           static_cast<unsigned long long>(row.cache >> 20), row.kops,
           static_cast<unsigned long long>(row.hits));
  }

  CheckShape(rows[0].hits == 0, "paper configuration: no cache, no hits");
  CheckShape(rows[2].hits > 0, "a configured cache absorbs repeat reads");
  CheckShape(rows[2].kops > rows[0].kops * 1.2,
             "a device read cache recovers a substantial share of the "
             "range-query deficit (the paper's hypothesis)");
  return 0;
}
