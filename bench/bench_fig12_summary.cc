// Figure 12: throughput (a), P99 latency (b) and Efficiency (c, Eq. 1 =
// MB/s / CPU%) for RocksDB/ADOC/KVACCEL at 1, 2 and 4 compaction threads,
// workload A, with KVACCEL's rollback and Dev-LSM compaction disabled
// (paper §VI-C).
//
// Expected shape: KVACCEL(1) beats RocksDB(1) (+37%) and ADOC(1) (+17%) in
// throughput, has the lowest P99 (-30%/-20%), and KVACCEL(1) posts the best
// efficiency of all nine configurations; KVACCEL(1) is comparable to
// ADOC(4); gains shrink as compaction threads increase.
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/report_json.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 60);
  PrintBanner("Figure 12: throughput / P99 / efficiency matrix (workload A)");

  RunResult grid[3][3];  // [thread index][system index]
  std::vector<RunResult> all_runs;
  const int threads_of[3] = {1, 2, 4};
  const SystemKind kinds[3] = {SystemKind::kRocksDB, SystemKind::kAdoc,
                               SystemKind::kKvaccel};

  PrintResultHeader();
  for (int ti = 0; ti < 3; ti++) {
    if (flags.threads != 0 && flags.threads != threads_of[ti]) continue;
    for (int si = 0; si < 3; si++) {
      BenchConfig c;
      c.scale = flags.scale;
      c.sut.kind = kinds[si];
      c.sut.compaction_threads = threads_of[ti];
      c.sut.rollback = core::RollbackScheme::kDisabled;
      c.workload.duration = FromSecs(flags.seconds);
      // --trace_out traces the KVACCEL(1) cell of the matrix.
      if (kinds[si] == SystemKind::kKvaccel && threads_of[ti] == 1) {
        c.trace_out = flags.trace_out;
      }
      grid[ti][si] = RunBenchmark(c);
      all_runs.push_back(grid[ti][si]);
      PrintResultRow(grid[ti][si]);
    }
  }
  auto dump_json = [&]() {
    if (flags.json_out.empty()) return true;
    BenchConfig echo;
    echo.scale = flags.scale;
    echo.sut.kind = SystemKind::kKvaccel;
    echo.sut.compaction_threads = 1;
    echo.workload.duration = FromSecs(flags.seconds);
    return WriteJsonReport(flags.json_out, echo, all_runs);
  };
  if (flags.threads != 0) return dump_json() ? 0 : 1;

  const RunResult& r1 = grid[0][0];
  const RunResult& a1 = grid[0][1];
  const RunResult& k1 = grid[0][2];
  const RunResult& a4 = grid[2][1];

  printf("\nKVAccel(1) vs RocksDB(1): %+.0f%% throughput (paper: +37%%), "
         "%+.0f%% P99 (paper: -30%%)\n",
         (k1.write_kops / r1.write_kops - 1) * 100,
         (k1.put_p99_us / r1.put_p99_us - 1) * 100);
  printf("KVAccel(1) vs ADOC(1):    %+.0f%% throughput (paper: +17%%), "
         "%+.0f%% P99 (paper: -20%%)\n",
         (k1.write_kops / a1.write_kops - 1) * 100,
         (k1.put_p99_us / a1.put_p99_us - 1) * 100);
  printf("KVAccel(1) vs ADOC(4):    %+.0f%% throughput (paper: comparable)\n",
         (k1.write_kops / a4.write_kops - 1) * 100);

  CheckShape(k1.write_kops > r1.write_kops,
             "KVACCEL(1) throughput > RocksDB(1)");
  CheckShape(k1.write_kops > a1.write_kops,
             "KVACCEL(1) throughput > ADOC(1)");
  CheckShape(a1.write_kops > r1.write_kops,
             "ADOC(1) throughput > RocksDB(1)");
  CheckShape(k1.put_p99_us < r1.put_p99_us && k1.put_p99_us < a1.put_p99_us,
             "KVACCEL(1) has the lowest P99 latency");
  CheckShape(k1.write_kops >= a4.write_kops * 0.85,
             "KVACCEL(1) throughput comparable to ADOC(4)");

  // Efficiency: KVACCEL(1) best of all nine configurations (paper Fig 12c).
  bool k1_best_eff = true;
  for (int ti = 0; ti < 3; ti++) {
    for (int si = 0; si < 3; si++) {
      if (&grid[ti][si] == &k1) continue;
      if (grid[ti][si].efficiency >= k1.efficiency) k1_best_eff = false;
    }
  }
  CheckShape(k1_best_eff, "KVACCEL(1) posts the best efficiency score");

  // KVACCEL beats the same-thread baselines on efficiency at every count.
  for (int ti = 0; ti < 3; ti++) {
    char msg[96];
    snprintf(msg, sizeof(msg),
             "KVACCEL(%d) efficiency beats RocksDB/ADOC at %d threads",
             threads_of[ti], threads_of[ti]);
    CheckShape(grid[ti][2].efficiency > grid[ti][0].efficiency &&
                   grid[ti][2].efficiency > grid[ti][1].efficiency,
               msg);
  }
  return dump_json() ? 0 : 1;
}
