// Ablation (DESIGN.md §4.2): the chunked read->merge(CPU)->write compaction
// model is what creates the idle-bandwidth windows KVACCEL exploits. Sweeping
// the per-cycle chunk size varies how coarsely CPU and device phases
// interleave: larger chunks -> longer pure-CPU stretches -> more idle PCIe
// seconds during stalls.
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 40);
  PrintBanner("Ablation: compaction read/merge/write interleave granularity");

  struct Row {
    uint64_t chunk;
    RunResult r;
  } rows[] = {
      {4ull << 20, {}},    // fine pipeline: phases overlap within buckets
      {32ull << 20, {}},   // intermediate
      {1ull << 30, {}},    // file-scale phases (the paper's behaviour)
  };

  printf("%-12s %10s %14s %16s\n", "chunk", "Kops/s", "stall secs",
         "idle-PCIe stall s");
  for (Row& row : rows) {
    BenchConfig c;
    c.scale = flags.scale;
    c.sut.kind = SystemKind::kRocksDB;
    c.sut.compaction_threads = 1;
    c.sut.enable_slowdown = false;
    c.sut.db_tweak = [&row](lsm::DbOptions& o) {
      o.compaction_io_chunk = row.chunk;
    };
    c.workload.duration = FromSecs(flags.seconds);
    row.r = RunBenchmark(c);
    printf("%-12llu %10.1f %14.1f %16.1f\n",
           static_cast<unsigned long long>(row.chunk >> 20),
           row.r.write_kops, row.r.stalled_seconds,
           row.r.zero_traffic_stall_seconds);
  }

  CheckShape(rows[2].r.zero_traffic_stall_seconds >=
                 rows[0].r.zero_traffic_stall_seconds,
             "coarser interleave leaves at least as many idle-PCIe stall "
             "seconds (the window KVACCEL uses)");
  CheckShape(rows[0].r.write_kops > 0 && rows[2].r.write_kops > 0,
             "all interleave granularities complete the workload");
  return 0;
}
