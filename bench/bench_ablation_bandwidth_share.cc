// Ablation (DESIGN.md §4.4): KVACCEL's win exists only because stall windows
// leave device bandwidth idle. Sweeping the device bandwidth shows the
// dependency: a slower device stalls the host more (bigger redirection
// opportunity); a faster device drains compaction quickly and KVACCEL's
// relative advantage shrinks — matching the paper's §VI-A observation that
// extra headroom (their PCIe-vs-CPU mismatch discussion) modulates
// KVACCEL's effectiveness.
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 40);
  PrintBanner("Ablation: device bandwidth sweep, RocksDB vs KVACCEL "
              "(1 compaction thread)");

  struct Row {
    double mbps;
    RunResult rocks, kvacc;
  } rows[] = {{315, {}, {}}, {630, {}, {}}, {1890, {}, {}}};

  printf("%-10s %14s %14s %10s %14s\n", "MB/s", "RocksDB Kops/s",
         "KVAccel Kops/s", "gain", "redirected");
  for (Row& row : rows) {
    for (int which = 0; which < 2; which++) {
      BenchConfig c;
      c.scale = flags.scale;
      c.nand_mbps = row.mbps;
      c.sut.kind = which == 0 ? SystemKind::kRocksDB : SystemKind::kKvaccel;
      c.sut.compaction_threads = 1;
      c.sut.rollback = core::RollbackScheme::kDisabled;
      c.workload.duration = FromSecs(flags.seconds);
      (which == 0 ? row.rocks : row.kvacc) = RunBenchmark(c);
    }
    printf("%-10.0f %14.1f %14.1f %9.0f%% %14llu\n", row.mbps,
           row.rocks.write_kops, row.kvacc.write_kops,
           (row.kvacc.write_kops / row.rocks.write_kops - 1) * 100,
           static_cast<unsigned long long>(row.kvacc.redirected_writes));
  }

  double gain_slow = rows[0].kvacc.write_kops / rows[0].rocks.write_kops;
  double gain_fast = rows[2].kvacc.write_kops / rows[2].rocks.write_kops;
  CheckShape(rows[0].kvacc.write_kops > rows[0].rocks.write_kops,
             "KVACCEL wins on the constrained device");
  CheckShape(gain_slow > gain_fast,
             "KVACCEL's relative gain shrinks as device headroom grows");
  CheckShape(rows[0].kvacc.redirected_writes > rows[2].kvacc.redirected_writes,
             "less redirection happens when the device is fast (fewer "
             "stalls to bypass)");
  return 0;
}
