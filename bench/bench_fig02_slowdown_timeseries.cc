// Figure 2: per-second throughput time series for RocksDB and ADOC with the
// slowdown feature disabled ((a),(b)) and enabled ((c),(d)), workload A.
//
// Expected shape (paper §III-A): without slowdown, throughput repeatedly
// drops to zero (hard write stalls); with slowdown, the zero drops disappear
// and a low-but-nonzero floor (~2 Kops/s at the delayed write rate) remains,
// at the cost of lower peaks.
#include <algorithm>
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

namespace {

RunResult RunPanel(SystemKind kind, bool slowdown, const BenchFlags& flags) {
  BenchConfig c;
  c.scale = flags.scale;
  c.sut.kind = kind;
  c.sut.compaction_threads = 1;
  c.sut.enable_slowdown = slowdown;
  c.workload.type = WorkloadConfig::Type::kFillRandom;
  c.workload.duration = FromSecs(flags.seconds);
  return RunBenchmark(c);
}

// Zero-throughput seconds, excluding the final (partial) window bucket.
int CountZeroSeconds(const RunResult& r) {
  int zeros = 0;
  for (size_t i = 0; i + 1 < r.per_sec_write_kops.size(); i++) {
    if (r.per_sec_write_kops[i] < 0.05) zeros++;
  }
  return zeros;
}

double MinNonLeadingSecond(const RunResult& r) {
  double min = 1e18;
  // Skip ramp-up and the final partial bucket.
  for (size_t i = 2; i + 1 < r.per_sec_write_kops.size(); i++) {
    min = std::min(min, r.per_sec_write_kops[i]);
  }
  return min;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, /*default_seconds=*/60);
  PrintBanner("Figure 2: per-second throughput vs. slowdown usage "
              "(workload A, 1 compaction thread)");

  RunResult rocks_ns = RunPanel(SystemKind::kRocksDB, false, flags);
  RunResult adoc_ns = RunPanel(SystemKind::kAdoc, false, flags);
  RunResult rocks_sd = RunPanel(SystemKind::kRocksDB, true, flags);
  RunResult adoc_sd = RunPanel(SystemKind::kAdoc, true, flags);

  PrintSeries("(a) RocksDB w/o slowdown", rocks_ns.per_sec_write_kops,
              "Kops/s");
  PrintStallRegions(rocks_ns);
  PrintSeries("(b) ADOC w/o slowdown", adoc_ns.per_sec_write_kops, "Kops/s");
  PrintStallRegions(adoc_ns);
  PrintSeries("(c) RocksDB w/ slowdown", rocks_sd.per_sec_write_kops,
              "Kops/s");
  printf("  slowdown periods=%llu delayed writes=%llu\n",
         static_cast<unsigned long long>(rocks_sd.slowdown_periods),
         static_cast<unsigned long long>(rocks_sd.slowdown_events));
  PrintSeries("(d) ADOC w/ slowdown", adoc_sd.per_sec_write_kops, "Kops/s");
  printf("  slowdown periods=%llu delayed writes=%llu\n",
         static_cast<unsigned long long>(adoc_sd.slowdown_periods),
         static_cast<unsigned long long>(adoc_sd.slowdown_events));

  printf("\n");
  CheckShape(CountZeroSeconds(rocks_ns) >= 3,
             "RocksDB w/o slowdown suffers zero-throughput stall seconds");
  CheckShape(CountZeroSeconds(adoc_ns) >= 3,
             "ADOC w/o slowdown suffers zero-throughput stall seconds");
  CheckShape(CountZeroSeconds(rocks_sd) == 0,
             "RocksDB w/ slowdown never halts (no zero seconds)");
  CheckShape(CountZeroSeconds(adoc_sd) == 0,
             "ADOC w/ slowdown never halts (no zero seconds)");
  CheckShape(MinNonLeadingSecond(rocks_sd) > 0.5,
             "RocksDB w/ slowdown keeps a nonzero service floor (~2 Kops/s)");
  CheckShape(rocks_sd.slowdown_periods > 0 && adoc_sd.slowdown_periods > 0,
             "slowdown mechanism engaged repeatedly (paper: 258/433 events)");
  CheckShape(rocks_ns.stall_events > 0 && rocks_sd.stall_events == 0,
             "slowdown converts hard stalls into throttling for RocksDB");
  return 0;
}
