// Table V: range-query throughput (workload D: seekrandom, Seek + 1024 Next
// after an initial bulk fill) for RocksDB, ADOC and KVACCEL.
//
// Paper: RocksDB 302 Kops/s, ADOC 351 Kops/s, KVACCEL 100 Kops/s — KVACCEL
// fully supports hybrid range queries but is ~3x slower, bottlenecked by the
// Dev-LSM iterator's lack of a device-side read cache.
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 60);
  PrintBanner("Table V: range query throughput (workload D)");

  // Ensure KVACCEL has data on BOTH interfaces when the scan runs: the
  // preload drives the Main-LSM into stalls, redirecting a slice of pairs to
  // the Dev-LSM, and rollback is disabled so they stay there (the paper's
  // scenario: scans must span the hybrid interfaces).
  struct Row {
    const char* name;
    SystemKind kind;
    double kops = 0;
    uint64_t redirected = 0;
  } rows[] = {
      {"RocksDB", SystemKind::kRocksDB},
      {"ADOC", SystemKind::kAdoc},
      {"KVACCEL", SystemKind::kKvaccel},
  };

  for (Row& row : rows) {
    BenchConfig c;
    c.scale = flags.scale;
    c.sut.kind = row.kind;
    c.sut.compaction_threads = 4;
    c.sut.rollback = core::RollbackScheme::kDisabled;
    c.workload.type = WorkloadConfig::Type::kSeekRandom;
    c.workload.preload_bytes = 20ull << 30;  // paper: 20 GB fill (scaled)
    c.workload.seek_ops =
        static_cast<uint64_t>(6000 * flags.scale * 8);  // 60 K at scale 1
    c.workload.nexts_per_seek = 1024;
    RunResult r = RunBenchmark(c);
    row.kops = r.scan_kops;
    row.redirected = r.redirected_writes;
  }

  printf("%-10s %26s\n", "LSM-KVS", "Range Query Throughput (Kops/s)");
  printf("%-10s %26.0f   (paper: 302)\n", rows[0].name, rows[0].kops);
  printf("%-10s %26.0f   (paper: 351)\n", rows[1].name, rows[1].kops);
  printf("%-10s %26.0f   (paper: 100)\n", rows[2].name, rows[2].kops);
  printf("KVACCEL pairs resident in Dev-LSM during scans: %llu\n",
         static_cast<unsigned long long>(rows[2].redirected));

  CheckShape(rows[2].kops > 0,
             "KVACCEL fully supports range queries across the hybrid "
             "interfaces");
  CheckShape(rows[2].redirected > 0,
             "scans actually spanned both interfaces (Dev-LSM non-empty)");
  CheckShape(rows[2].kops < rows[0].kops,
             "KVACCEL range queries slower than RocksDB (no Dev-LSM read "
             "cache)");
  CheckShape(rows[2].kops * 1.8 < rows[0].kops,
             "KVACCEL at least ~2x slower (paper: ~3x)");
  double lo = std::min(rows[0].kops, rows[1].kops);
  double hi = std::max(rows[0].kops, rows[1].kops);
  CheckShape(lo >= 0.6 * hi, "RocksDB and ADOC range throughput comparable");
  return 0;
}
