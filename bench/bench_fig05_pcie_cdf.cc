// Figure 5: CDF of PCIe bandwidth utilisation during write-stall periods for
// RocksDB(1) and RocksDB(4), slowdown disabled.
//
// Paper: RocksDB(1) — 30% of stall time with no PCIe usage, 49% above 90%;
// RocksDB(4) — 21% with none, 55% above 90%. I.e. a strongly bimodal
// distribution with a large idle mass: the opportunity KVACCEL exploits.
#include <algorithm>
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 60);
  PrintBanner("Figure 5: CDF of PCIe utilisation during write stalls "
              "(RocksDB w/o slowdown)");

  for (int threads : {1, 4}) {
    if (flags.threads != 0 && flags.threads != threads) continue;
    BenchConfig c;
    c.scale = flags.scale;
    c.sut.kind = SystemKind::kRocksDB;
    c.sut.compaction_threads = threads;
    c.sut.enable_slowdown = false;
    c.workload.duration = FromSecs(flags.seconds);
    RunResult r = RunBenchmark(c);

    char label[64];
    snprintf(label, sizeof(label), "RocksDB(%d) stall-period PCIe util",
             threads);
    PrintCdf(label, r.stall_pcie_util,
             {0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 1.0});

    size_t n = r.stall_pcie_util.size();
    size_t idle = 0, high = 0;
    for (double u : r.stall_pcie_util) {
      if (u < 0.10) idle++;
      if (u > 0.60) high++;
    }
    double idle_frac = n == 0 ? 0 : static_cast<double>(idle) / n;
    double high_frac = n == 0 ? 0 : static_cast<double>(high) / n;
    printf("  idle(<10%%)=%.0f%%  high(>60%%)=%.0f%%\n", idle_frac * 100,
           high_frac * 100);
    CheckShape(n >= 5, "enough stall seconds to form a CDF");
    CheckShape(idle_frac >= 0.05,
               "a significant share of stall time leaves PCIe idle "
               "(paper: 21-30%)");
    CheckShape(high_frac >= 0.10,
               "a significant share of stall time runs PCIe hot "
               "(paper: ~50% above 90%)");
  }
  return 0;
}
