// §VI-D Recovery Process: after a crash the Metadata Manager's hash table
// (volatile) is lost; recovery rolls every Dev-LSM pair back into Main-LSM.
//
// Paper: restoring 10,000 KV pairs from Dev-LSM to Main-LSM took 1.1 s.
#include <cstdio>

#include "core/kvaccel_db.h"
#include "fs/simfs.h"
#include "harness/flags.h"
#include "harness/presets.h"
#include "harness/report.h"
#include "harness/workload.h"
#include "sim/cpu_pool.h"

using namespace kvaccel;
using namespace kvaccel::harness;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 60);
  PrintBanner("Recovery (paper §VI-D): metadata loss -> full Dev-LSM "
              "rollback");

  sim::SimEnv env;
  ssd::HybridSsd ssd(&env, PaperSsdConfig(flags.scale));
  fs::SimFs fs(&ssd, 0);
  sim::CpuPool host_cpu(&env, "host", 8);
  lsm::DbEnv denv{&env, &ssd, &fs, &host_cpu};

  double recovery_s = -1;
  uint64_t restored = 0;
  bool verified = true;

  env.Spawn("main", [&] {
    lsm::DbOptions opts = PaperDbOptions(4, false, flags.scale);
    core::KvaccelOptions kv_opts =
        PaperKvaccelOptions(core::RollbackScheme::kDisabled, flags.scale);
    std::unique_ptr<core::KvaccelDB> db;
    if (!core::KvaccelDB::Open(opts, kv_opts, denv, &db).ok()) return;

    // Plant exactly 10,000 redirected pairs in the Dev-LSM, as a stall
    // window would, with metadata records to lose.
    const int kPairs = 10000;
    for (int i = 0; i < kPairs; i++) {
      lsm::SequenceNumber seq = db->main()->AllocateSequence(1);
      std::string key = MakeKey(static_cast<uint64_t>(i), 4);
      if (!db->dev()->Put(key, Value::Synthetic(i, 4096), seq).ok()) return;
      db->metadata()->Insert(key, seq);
    }

    Nanos dur = 0;
    if (!db->CrashMetadataAndRecover(&dur).ok()) return;
    recovery_s = ToSecs(dur);
    restored = db->kv_stats().rollback_entries;

    // Integrity: every pair must now be served by Main-LSM.
    for (int i = 0; i < kPairs; i += 97) {
      Value v;
      Status s = db->Get({}, MakeKey(static_cast<uint64_t>(i), 4), &v);
      if (!s.ok() || v.seed() != static_cast<uint64_t>(i)) verified = false;
    }
    if (!db->dev()->Empty()) verified = false;
    db->Close();
  });
  env.Run();

  printf("restored %llu / 10000 KV pairs in %.2f s (paper: 1.1 s)\n",
         static_cast<unsigned long long>(restored), recovery_s);
  CheckShape(restored == 10000, "all 10,000 pairs restored to Main-LSM");
  CheckShape(verified, "restored data readable and Dev-LSM empty");
  CheckShape(recovery_s > 0.05 && recovery_s < 5.0,
             "recovery completes in ~1 second (paper: 1.1 s)");
  return 0;
}
