// Figure 11: per-second throughput of RocksDB(1), ADOC(1) and KVACCEL(1)
// under workload A.
//
// Expected shape (paper §VI-B): the baselines slow to ~2 Kops/s during
// slowdown phases; in the same phases KVACCEL keeps writing at tens of
// Kops/s via I/O redirection, and it employs no slowdown mechanism at all.
#include <algorithm>
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/report_json.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 60);
  PrintBanner("Figure 11: per-second throughput, workload A "
              "(1 compaction thread)");

  RunResult results[3];
  SystemKind kinds[] = {SystemKind::kRocksDB, SystemKind::kAdoc,
                        SystemKind::kKvaccel};
  for (int i = 0; i < 3; i++) {
    BenchConfig c;
    c.scale = flags.scale;
    c.sut.kind = kinds[i];
    c.sut.compaction_threads = 1;
    c.sut.enable_slowdown = true;  // baselines at their defaults
    c.sut.rollback = core::RollbackScheme::kDisabled;  // §VI-C setup
    c.workload.duration = FromSecs(flags.seconds);
    // --trace_out traces the KVACCEL run (the one with redirect/rollback
    // phases); the baselines would overwrite the same file.
    if (kinds[i] == SystemKind::kKvaccel) c.trace_out = flags.trace_out;
    results[i] = RunBenchmark(c);
  }

  const RunResult& rocks = results[0];
  const RunResult& adoc = results[1];
  const RunResult& kvacc = results[2];

  PrintSeries("(a) RocksDB(1)", rocks.per_sec_write_kops, "Kops/s");
  PrintSeries("(b) ADOC(1)", adoc.per_sec_write_kops, "Kops/s");
  PrintSeries("(c) KVAccel(1)", kvacc.per_sec_write_kops, "Kops/s");
  printf("\nKVAccel: redirected=%llu detector checks=%llu slowdowns=%llu\n",
         static_cast<unsigned long long>(kvacc.redirected_writes),
         static_cast<unsigned long long>(kvacc.detector_checks),
         static_cast<unsigned long long>(kvacc.slowdown_events));

  // Seconds in which the baselines crawl at the delayed-write floor.
  auto slow_seconds = [](const RunResult& r) {
    int n = 0;
    for (size_t i = 2; i < r.per_sec_write_kops.size(); i++) {
      if (r.per_sec_write_kops[i] < 4.0) n++;
    }
    return n;
  };
  // KVACCEL's worst per-second rate outside ramp-up.
  double kv_min = 1e18;
  for (size_t i = 2; i + 1 < kvacc.per_sec_write_kops.size(); i++) {
    kv_min = std::min(kv_min, kvacc.per_sec_write_kops[i]);
  }
  printf("baseline slow seconds: RocksDB=%d ADOC=%d; KVAccel min=%0.1f "
         "Kops/s\n",
         slow_seconds(rocks), slow_seconds(adoc), kv_min);

  CheckShape(slow_seconds(rocks) > 0,
             "RocksDB(1) spends seconds at the ~2 Kops/s slowdown floor");
  CheckShape(kvacc.slowdown_events == 0,
             "KVACCEL employs no slowdown mechanism (paper §VI-B)");
  CheckShape(kvacc.redirected_writes > 0,
             "KVACCEL redirected writes to the Dev-LSM during stalls");
  CheckShape(kv_min > 2.5,
             "KVACCEL's worst second beats the baselines' slowdown floor");
  CheckShape(kvacc.write_kops > rocks.write_kops,
             "KVACCEL(1) aggregate beats RocksDB(1)");
  CheckShape(kvacc.write_kops > adoc.write_kops,
             "KVACCEL(1) aggregate beats ADOC(1) (paper: +17%)");
  if (!flags.json_out.empty()) {
    BenchConfig echo;
    echo.scale = flags.scale;
    echo.sut.kind = SystemKind::kKvaccel;
    echo.sut.compaction_threads = 1;
    echo.workload.duration = FromSecs(flags.seconds);
    if (!WriteJsonReport(flags.json_out, echo, {rocks, adoc, kvacc})) {
      return 1;
    }
  }
  return 0;
}
