// Figure 3: aggregate throughput (a) and tail latency (b) of RocksDB and
// ADOC with and without the slowdown mechanism, workload A.
//
// Paper: enabling slowdown cost RocksDB 34% and ADOC 47% of throughput and
// elongated P99 tails by 48% / 28% — slowdowns actively harm performance.
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 60);
  PrintBanner("Figure 3: throughput & tail latency vs. slowdown usage "
              "(workload A, 1 compaction thread)");

  struct Cell {
    const char* label;
    SystemKind kind;
    bool slowdown;
    RunResult r;
  };
  Cell cells[] = {
      {"RocksDB", SystemKind::kRocksDB, false, {}},
      {"ADOC", SystemKind::kAdoc, false, {}},
      {"RocksDB w/ Slowdown", SystemKind::kRocksDB, true, {}},
      {"ADOC w/ Slowdown", SystemKind::kAdoc, true, {}},
  };
  for (Cell& cell : cells) {
    BenchConfig c;
    c.scale = flags.scale;
    c.sut.kind = cell.kind;
    c.sut.compaction_threads = 1;
    c.sut.enable_slowdown = cell.slowdown;
    c.workload.duration = FromSecs(flags.seconds);
    cell.r = RunBenchmark(c);
    cell.r.name = cell.label;
  }

  printf("%-22s %10s %12s %12s\n", "variant", "Kops/s", "P99 (us)",
         "P99.9 (us)");
  for (const Cell& cell : cells) {
    printf("%-22s %10.1f %12.1f %12.1f\n", cell.label, cell.r.write_kops,
           cell.r.put_p99_us, cell.r.put_p999_us);
  }

  const RunResult& rocks_ns = cells[0].r;
  const RunResult& adoc_ns = cells[1].r;
  const RunResult& rocks_sd = cells[2].r;
  const RunResult& adoc_sd = cells[3].r;

  double rocks_drop = 1.0 - rocks_sd.write_kops / rocks_ns.write_kops;
  double adoc_drop = 1.0 - adoc_sd.write_kops / adoc_ns.write_kops;
  printf("\nthroughput drop with slowdown: RocksDB %.0f%% (paper: 34%%), "
         "ADOC %.0f%% (paper: 47%%)\n",
         rocks_drop * 100, adoc_drop * 100);

  CheckShape(rocks_sd.write_kops < rocks_ns.write_kops,
             "slowdown lowers RocksDB aggregate throughput");
  CheckShape(adoc_sd.write_kops < adoc_ns.write_kops,
             "slowdown lowers ADOC aggregate throughput");
  CheckShape(rocks_drop > 0.10 && rocks_drop < 0.70,
             "RocksDB slowdown penalty in the paper's ballpark (34%)");
  CheckShape(rocks_sd.put_p99_us > rocks_ns.put_p99_us,
             "slowdown elongates RocksDB P99 latency");
  CheckShape(adoc_sd.put_p99_us > adoc_ns.put_p99_us,
             "slowdown elongates ADOC P99 latency");
  return 0;
}
