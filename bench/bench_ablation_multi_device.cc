// Ablation (paper §V-D): KVACCEL "can be run in a multi-device setup" with
// the block region on one SSD and the key-value interface on another.
// Compares single-device (redirected writes contend with Main-LSM
// compaction for one NAND budget) against dual-device (dedicated bandwidth
// for the KV interface).
#include <algorithm>
#include <cstdio>
#include <memory>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

namespace {

double FillKops(double scale, double seconds, bool dual_device,
                uint64_t* redirected) {
  sim::SimEnv env;
  ssd::HybridSsd main_ssd(&env, PaperSsdConfig(scale));
  std::unique_ptr<ssd::HybridSsd> kv_ssd;
  if (dual_device) {
    kv_ssd = std::make_unique<ssd::HybridSsd>(&env, PaperSsdConfig(scale));
  }
  fs::SimFs fs(&main_ssd, 0);
  sim::CpuPool cpu(&env, "host", 8);
  lsm::DbEnv denv{&env, &main_ssd, &fs, &cpu};
  double kops = 0;

  env.Spawn("main", [&] {
    lsm::DbOptions opts = PaperDbOptions(1, false, scale);
    core::KvaccelOptions kv_opts =
        PaperKvaccelOptions(core::RollbackScheme::kDisabled, scale);
    kv_opts.dev.compaction_enabled = false;
    kv_opts.kv_device = kv_ssd.get();
    std::unique_ptr<core::KvaccelDB> db;
    if (!core::KvaccelDB::Open(opts, kv_opts, denv, &db).ok()) return;
    Random64 rng(7);
    uint64_t writes = 0;
    Nanos end = env.Now() + FromSecs(seconds);
    uint64_t seed = 0;
    while (env.Now() < end) {
      if (!db->Put({}, MakeKey(rng.Uniform(1ull << 31), 4),
                   Value::Synthetic(seed++, 4096)).ok()) {
        break;
      }
      writes++;
    }
    kops = static_cast<double>(writes) / seconds / 1e3;
    *redirected = db->kv_stats().redirected_writes;
    db->Close();
  });
  env.Run();
  return kops;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 40);
  PrintBanner("Ablation: single hybrid device vs. multi-device KV interface "
              "(paper §V-D)");

  uint64_t redir_single = 0, redir_dual = 0;
  double single = FillKops(flags.scale, flags.seconds, false, &redir_single);
  double dual = FillKops(flags.scale, flags.seconds, true, &redir_dual);

  printf("%-16s %12s %14s\n", "deployment", "Kops/s", "redirected");
  printf("%-16s %12.1f %14llu\n", "single-device", single,
         static_cast<unsigned long long>(redir_single));
  printf("%-16s %12.1f %14llu\n", "dual-device", dual,
         static_cast<unsigned long long>(redir_dual));

  CheckShape(redir_single > 0 && redir_dual > 0,
             "redirection active in both deployments");
  // Mechanism check rather than a direction check: with a dedicated KV
  // device the Main-LSM's compaction is less contended, stalls clear
  // sooner, and LESS traffic is served by the steady redirected path — the
  // two deployments trade duty cycle, landing within ~25% of each other.
  CheckShape(redir_dual < redir_single,
             "a dedicated KV device shortens stall windows (fewer "
             "redirected writes)");
  double lo = std::min(single, dual), hi = std::max(single, dual);
  CheckShape(lo >= 0.75 * hi,
             "single- and multi-device deployments land within ~25% "
             "(contention share is small at 630 MB/s)");
  return 0;
}
