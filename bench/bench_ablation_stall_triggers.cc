// Ablation (DESIGN.md §4.3): the RocksDB-style stall trigger family. Sweeping
// the L0 stop trigger shows the throughput/stall trade-off the write
// controller navigates: a lower trigger stalls earlier and more often; a
// higher one admits deeper L0 backlogs (fewer, longer stalls and more read
// amplification).
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 40);
  PrintBanner("Ablation: L0 stop-trigger sweep (RocksDB w/o slowdown)");

  struct Row {
    int stop_trigger;
    RunResult r;
  } rows[] = {{6, {}}, {12, {}}, {24, {}}};

  printf("%-14s %10s %12s %14s\n", "stop trigger", "Kops/s", "stalls",
         "stalled secs");
  for (Row& row : rows) {
    BenchConfig c;
    c.scale = flags.scale;
    c.sut.kind = SystemKind::kRocksDB;
    c.sut.compaction_threads = 1;
    c.sut.enable_slowdown = false;
    c.sut.db_tweak = [&row](lsm::DbOptions& o) {
      o.l0_stop_writes_trigger = row.stop_trigger;
      o.l0_slowdown_writes_trigger = row.stop_trigger * 2 / 3;
    };
    c.workload.duration = FromSecs(flags.seconds);
    row.r = RunBenchmark(c);
    printf("%-14d %10.1f %12llu %14.1f\n", row.stop_trigger,
           row.r.write_kops,
           static_cast<unsigned long long>(row.r.stall_events),
           row.r.stalled_seconds);
  }

  CheckShape(rows[0].r.stall_events > 0 && rows[2].r.stall_events > 0,
             "stalls occur at every trigger setting under this load");
  CheckShape(rows[2].r.write_kops > rows[0].r.write_kops,
             "a higher L0 stop trigger admits more backlog and buys write "
             "throughput (RocksDB's tuning trade-off)");
  CheckShape(rows[2].r.stalled_seconds <= rows[0].r.stalled_seconds * 1.1,
             "total stalled time does not grow with a higher trigger");
  CheckShape(rows[0].r.write_kops > 0 && rows[2].r.write_kops > 0,
             "all trigger settings complete the workload");
  return 0;
}
