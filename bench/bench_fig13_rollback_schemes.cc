// Figure 13: read/write throughput of RocksDB, ADOC, KVACCEL-L (lazy
// rollback) and KVACCEL-E (eager rollback) under workloads A (write-only),
// B (mixed, ~9:1) and C (mixed, ~8:2), all with 4 compaction threads.
//
// Expected shape (paper §VI-C): for the write-only workload the lazy scheme
// wins (rollback steals bandwidth from writes); for mixed workloads both
// schemes write comparably but the eager scheme reads faster, because early
// rollback moves data back where Main-LSM (with its caches) can serve it.
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

namespace {

struct Variant {
  const char* name;
  SystemKind kind;
  core::RollbackScheme rollback;
};

const Variant kVariants[] = {
    {"RocksDB", SystemKind::kRocksDB, core::RollbackScheme::kDisabled},
    {"ADOC", SystemKind::kAdoc, core::RollbackScheme::kDisabled},
    {"KVAccel-L", SystemKind::kKvaccel, core::RollbackScheme::kLazy},
    {"KVAccel-E", SystemKind::kKvaccel, core::RollbackScheme::kEager},
};

struct WorkloadDef {
  const char* name;
  WorkloadConfig::Type type;
  int read_threads;
};

const WorkloadDef kWorkloads[] = {
    {"A (fillrandom)", WorkloadConfig::Type::kFillRandom, 0},
    {"B (readwhilewriting ~9:1)", WorkloadConfig::Type::kReadWhileWriting, 1},
    {"C (readwhilewriting ~8:2)", WorkloadConfig::Type::kReadWhileWriting, 2},
};

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 60);
  PrintBanner("Figure 13: rollback scheme comparison (4 compaction threads)");

  RunResult grid[3][4];
  for (int w = 0; w < 3; w++) {
    printf("\n--- Workload %s ---\n", kWorkloads[w].name);
    printf("%-12s %12s %12s %10s\n", "system", "write Kops/s", "read Kops/s",
           "rollbacks");
    for (int v = 0; v < 4; v++) {
      BenchConfig c;
      c.scale = flags.scale;
      c.sut.kind = kVariants[v].kind;
      c.sut.compaction_threads = 4;
      c.sut.rollback = kVariants[v].rollback;
      c.workload.type = kWorkloads[w].type;
      c.workload.read_threads = kWorkloads[w].read_threads;
      c.workload.duration = FromSecs(flags.seconds);
      grid[w][v] = RunBenchmark(c);
      printf("%-12s %12.1f %12.1f %10llu\n", kVariants[v].name,
             grid[w][v].write_kops, grid[w][v].read_kops,
             static_cast<unsigned long long>(grid[w][v].rollbacks));
    }
  }

  printf("\n");
  // Workload A: lazy >= eager on writes.
  CheckShape(grid[0][2].write_kops >= grid[0][3].write_kops * 0.95,
             "workload A: lazy rollback writes >= eager (rollback steals "
             "write bandwidth)");
  // Mixed workloads: eager reads beat lazy reads.
  CheckShape(grid[1][3].read_kops >= grid[1][2].read_kops,
             "workload B: eager rollback reads >= lazy");
  // (small tolerance: read rates are low absolute numbers at 1/8 scale)
  CheckShape(grid[2][3].read_kops >= grid[2][2].read_kops * 0.9,
             "workload C: eager rollback reads >= lazy (within 10%)");
  // Both schemes write comparably on mixed workloads.
  for (int w : {1, 2}) {
    double lo = std::min(grid[w][2].write_kops, grid[w][3].write_kops);
    double hi = std::max(grid[w][2].write_kops, grid[w][3].write_kops);
    char msg[80];
    snprintf(msg, sizeof(msg),
             "workload %c: lazy and eager write throughput comparable",
             'A' + w);
    CheckShape(lo >= 0.75 * hi, msg);
  }
  // Paper: KVACCEL leads ADOC on writes in mixed workloads (+36%/+51%).
  // See EXPERIMENTS.md: at 1/8 scale the stall fraction (and hence the
  // rolled-back volume) is larger than on the testbed, which narrows this
  // margin; the check below asserts KVACCEL stays within the ADOC ballpark.
  CheckShape(grid[1][2].write_kops >= grid[1][1].write_kops * 0.8,
             "workload B: KVACCEL-L write throughput at least near ADOC "
             "(paper: +36%)");
  CheckShape(grid[2][3].write_kops >= grid[2][1].write_kops * 0.8,
             "workload C: KVACCEL-E write throughput at least near ADOC "
             "(paper: +51%)");
  return 0;
}
