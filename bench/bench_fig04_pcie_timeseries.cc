// Figure 4: PCIe bandwidth utilisation time series with write-stall regions
// marked, for RocksDB(1) and RocksDB(4), slowdown disabled, workload A.
//
// Expected shape (paper §III-B): within stall regions (green boxes) traffic
// alternates between ~zero (merge phase: CPU only) and near the device
// maximum (read/write phases) — significant bandwidth goes unused while
// writes are blocked.
#include <algorithm>
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

namespace {

RunResult RunPanel(int threads, const BenchFlags& flags) {
  BenchConfig c;
  c.scale = flags.scale;
  c.sut.kind = SystemKind::kRocksDB;
  c.sut.compaction_threads = threads;
  c.sut.enable_slowdown = false;
  c.workload.duration = FromSecs(flags.seconds);
  return RunBenchmark(c);
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 60);
  PrintBanner("Figure 4: PCIe traffic during write stalls, RocksDB w/o "
              "slowdown (device max = 630 MB/s)");

  for (int threads : {1, 4}) {
    if (flags.threads != 0 && flags.threads != threads) continue;
    RunResult r = RunPanel(threads, flags);
    char label[64];
    snprintf(label, sizeof(label), "RocksDB(%d) PCIe MB/s", threads);
    PrintSeries(label, r.per_sec_pcie_mbps, "MB/s");
    PrintStallRegions(r);

    // Quantify the paper's observation inside stall regions.
    int idle = 0, busy = 0;
    for (double util : r.stall_pcie_util) {
      if (util < 0.10) idle++;
      if (util > 0.50) busy++;
    }
    printf("  stall seconds: %zu (idle<10%%: %d, busy>50%%: %d)\n",
           r.stall_pcie_util.size(), idle, busy);
    CheckShape(!r.stall_regions_sec.empty(),
               "write stalls occur without slowdown");
    CheckShape(idle > 0,
               "stall regions contain near-zero PCIe traffic intervals");
    CheckShape(busy > 0,
               "stall regions also contain high-traffic intervals "
               "(compaction I/O phases)");
    double max_mbps = *std::max_element(r.per_sec_pcie_mbps.begin(),
                                        r.per_sec_pcie_mbps.end());
    CheckShape(max_mbps <= 650.0,
               "traffic bounded by the 630 MB/s device ceiling");
  }
  return 0;
}
