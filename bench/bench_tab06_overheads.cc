// Table VI: KVACCEL operation overheads.
//
//   Operation   | paper (avg us)
//   Detector    | 1.37
//   Key Insert  | 0.45
//   Key Check   | 0.20
//   Key Delete  | 0.28
//
// Two views are produced:
//  1. Virtual-cost verification: the simulation charges exactly the paper's
//     measured costs — asserted by driving the real modules in a SimEnv.
//  2. google-benchmark microbenchmarks of the underlying host data
//     structures (hash-table insert/check/delete, detector signal read),
//     demonstrating the costs are of the right physical magnitude on real
//     hardware too.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <unordered_map>

#include "core/detector.h"
#include "core/kvaccel_db.h"
#include "core/metadata_manager.h"
#include "harness/report.h"
#include "harness/workload.h"
#include "tests/test_util.h"

using namespace kvaccel;

namespace {

// ---- View 2: real-hardware microbenchmarks ----

std::string BenchKey(uint64_t i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "%08llx", static_cast<unsigned long long>(i));
  return buf;
}

void BM_MetadataInsert(benchmark::State& state) {
  std::unordered_map<std::string, uint64_t> table;
  uint64_t i = 0;
  for (auto _ : state) {
    table[BenchKey(i & 0xfffff)] = i;
    i++;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_MetadataInsert);

void BM_MetadataCheck(benchmark::State& state) {
  std::unordered_map<std::string, uint64_t> table;
  for (uint64_t i = 0; i < 100000; i++) table[BenchKey(i)] = i;
  uint64_t i = 0;
  bool found = false;
  for (auto _ : state) {
    found ^= table.count(BenchKey(i++ % 200000)) > 0;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_MetadataCheck);

void BM_MetadataDelete(benchmark::State& state) {
  std::unordered_map<std::string, uint64_t> table;
  uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string key = BenchKey(i++);
    table[key] = i;
    state.ResumeTiming();
    table.erase(key);
  }
}
BENCHMARK(BM_MetadataDelete);

// ---- View 1: virtual-cost verification against Table VI ----

void VerifyModeledCosts() {
  using namespace kvaccel::core;
  using namespace kvaccel::harness;
  test::SimWorld world;
  double detector_us = 0, insert_us = 0, check_us = 0, delete_us = 0;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    KvaccelOptions kv_opts;
    kv_opts.rollback = RollbackScheme::kDisabled;
    std::unique_ptr<KvaccelDB> db;
    if (!KvaccelDB::Open(opts, kv_opts, world.MakeDbEnv(), &db).ok()) return;

    const int kOps = 1000;
    Nanos t0 = world.env.Now();
    for (int i = 0; i < kOps; i++) db->detector()->PollNow();
    detector_us = ToMicros(world.env.Now() - t0) / kOps;

    t0 = world.env.Now();
    for (int i = 0; i < kOps; i++) {
      db->metadata()->Insert(harness::MakeKey(i, 8), i + 1);
    }
    insert_us = ToMicros(world.env.Now() - t0) / kOps;

    t0 = world.env.Now();
    for (int i = 0; i < kOps; i++) {
      db->metadata()->Check(harness::MakeKey(i, 8));
    }
    check_us = ToMicros(world.env.Now() - t0) / kOps;

    t0 = world.env.Now();
    for (int i = 0; i < kOps; i++) {
      db->metadata()->Delete(harness::MakeKey(i, 8));
    }
    delete_us = ToMicros(world.env.Now() - t0) / kOps;
    db->Close();
  });

  harness::PrintBanner("Table VI: KVACCEL operation overheads "
                       "(modeled virtual cost, paper-calibrated)");
  printf("%-12s %18s %12s\n", "Operation", "measured (us)", "paper (us)");
  printf("%-12s %18.2f %12s\n", "Detector", detector_us, "1.37");
  printf("%-12s %18.2f %12s\n", "Key Insert", insert_us, "0.45");
  printf("%-12s %18.2f %12s\n", "Key Check", check_us, "0.20");
  printf("%-12s %18.2f %12s\n", "Key Delete", delete_us, "0.28");
  harness::CheckShape(std::abs(detector_us - 1.37) < 0.05,
                      "Detector check ~1.37 us");
  harness::CheckShape(std::abs(insert_us - 0.45) < 0.02,
                      "Metadata key insert ~0.45 us");
  harness::CheckShape(std::abs(check_us - 0.20) < 0.02,
                      "Metadata key check ~0.20 us");
  harness::CheckShape(std::abs(delete_us - 0.28) < 0.02,
                      "Metadata key delete ~0.28 us");
  // Combined check+delete, the paper's worst observed composite (0.48 us).
  harness::CheckShape(std::abs((check_us + delete_us) - 0.48) < 0.04,
                      "key check + delete composite ~0.48 us");
}

}  // namespace

int main(int argc, char** argv) {
  VerifyModeledCosts();
  printf("\n-- google-benchmark: host-hardware metadata ops --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
