// Figure 14: PCIe bandwidth usage over time (log scale in the paper) for
// RocksDB(1) vs KVACCEL(1), workload A.
//
// Paper: KVACCEL achieves a 45% reduction in zero-traffic intervals during
// write-stall periods — its dual interface keeps the link busy where
// RocksDB leaves it idle.
#include <cstdio>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workload.h"

using namespace kvaccel;
using namespace kvaccel::harness;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv, 60);
  PrintBanner("Figure 14: PCIe usage, RocksDB(1) vs KVACCEL(1) (workload A)");

  RunResult rocks, kvacc;
  {
    BenchConfig c;
    c.scale = flags.scale;
    c.sut.kind = SystemKind::kRocksDB;
    c.sut.compaction_threads = 1;
    c.sut.enable_slowdown = false;  // stall-prone baseline, as in Fig. 4
    c.workload.duration = FromSecs(flags.seconds);
    rocks = RunBenchmark(c);
  }
  {
    BenchConfig c;
    c.scale = flags.scale;
    c.sut.kind = SystemKind::kKvaccel;
    c.sut.compaction_threads = 1;
    c.sut.rollback = core::RollbackScheme::kDisabled;
    c.workload.duration = FromSecs(flags.seconds);
    kvacc = RunBenchmark(c);
  }

  PrintSeries("(a) RocksDB(1) PCIe", rocks.per_sec_pcie_mbps, "MB/s");
  PrintSeries("(b) KVAccel(1) PCIe", kvacc.per_sec_pcie_mbps, "MB/s");

  // Zero-traffic seconds over the whole run (the paper's log-scale plot makes
  // zero/near-zero intervals visually prominent).
  auto near_zero_seconds = [](const RunResult& r) {
    int n = 0;
    for (double v : r.per_sec_pcie_mbps) {
      if (v < 1.0) n++;
    }
    return n;
  };
  int rocks_zero = near_zero_seconds(rocks);
  int kv_zero = near_zero_seconds(kvacc);
  printf("\nnear-zero PCIe seconds: RocksDB=%d KVAccel=%d\n", rocks_zero,
         kv_zero);
  printf("zero-traffic *stall* seconds: RocksDB=%.0f KVAccel=%.0f",
         rocks.zero_traffic_stall_seconds, kvacc.zero_traffic_stall_seconds);
  if (rocks.zero_traffic_stall_seconds > 0) {
    printf("  (reduction: %.0f%%, paper: 45%%)",
           (1.0 - kvacc.zero_traffic_stall_seconds /
                      rocks.zero_traffic_stall_seconds) *
               100);
  }
  printf("\n");

  CheckShape(kvacc.zero_traffic_stall_seconds <=
                 rocks.zero_traffic_stall_seconds * 0.55,
             "KVACCEL cuts zero-traffic stall intervals by >=45% (paper)");
  CheckShape(kv_zero <= rocks_zero + 2,
             "KVACCEL leaves no more idle-PCIe seconds overall");
  CheckShape(kvacc.redirected_writes > 0,
             "the extra traffic comes from redirected KV-interface writes");
  return 0;
}
