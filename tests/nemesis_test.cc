// Model-oracle simulation testing (DESIGN.md §9): the nemesis harness runs
// seeded crash-recovery cycles against the full KVACCEL stack and verifies
// key-for-key, scan-for-scan equivalence with an in-memory oracle. These
// tests pin the seeds; a failure message carries everything needed to replay
// the exact schedule (see kNemesisSeed below and the dumped trace header).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "check/nemesis.h"

namespace kvaccel {
namespace {

using check::NemesisOptions;
using check::NemesisResult;
using check::ParseNemesisTrace;
using check::RunNemesis;

// The pinned schedule seed. To reproduce a failure locally:
//   kvaccel_nemesis --nemesis_seed=0x4E454D15 --cycles=30
constexpr uint64_t kNemesisSeed = 0x4E454D15;

TEST(NemesisTest, ThirtyCrashRecoveryCyclesMatchOracle) {
  NemesisOptions opt;
  opt.seed = kNemesisSeed;
  opt.cycles = 30;
  NemesisResult r = RunNemesis(opt);
  EXPECT_TRUE(r.ok) << "seed=" << opt.seed << " cycle=" << r.cycles_run
                    << ": " << r.error;
  EXPECT_EQ(r.cycles_run, 30) << "seed=" << opt.seed;
  // The schedule must actually kill the DB a meaningful number of times, or
  // the recovery equivalence above verified nothing interesting.
  EXPECT_GE(r.crashes, 10) << "seed=" << opt.seed
                           << ": crash schedule went quiet";
  EXPECT_GE(r.ops_executed, 1000u) << "seed=" << opt.seed;
}

TEST(NemesisTest, SameSeedReplaysIdenticalTrace) {
  NemesisOptions opt;
  opt.seed = kNemesisSeed;
  opt.cycles = 8;
  NemesisResult a = RunNemesis(opt);
  NemesisResult b = RunNemesis(opt);
  ASSERT_TRUE(a.ok) << "seed=" << opt.seed << ": " << a.error;
  ASSERT_TRUE(b.ok) << "seed=" << opt.seed << ": " << b.error;
  // Determinism is the whole reproducibility story: same seed, same ops,
  // same fault schedule, same virtual-time interleaving, byte-equal trace.
  EXPECT_EQ(a.trace, b.trace) << "seed=" << opt.seed
                              << ": nondeterministic schedule";
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
}

TEST(NemesisTest, InjectedDivergenceIsCaughtAndDumpReplays) {
  NemesisOptions opt;
  opt.seed = kNemesisSeed;
  opt.cycles = 5;
  opt.corrupt_model_at_cycle = 2;  // force the oracle out of sync
  opt.trace_dump_dir = ::testing::TempDir() + "nemesis_dump";
  NemesisResult r = RunNemesis(opt);
  // The harness MUST notice the planted divergence...
  ASSERT_FALSE(r.ok) << "seed=" << opt.seed
                     << ": planted divergence went undetected";
  EXPECT_NE(r.error.find("cycle 2"), std::string::npos) << r.error;
  EXPECT_LT(r.cycles_run, opt.cycles);
  // ...and dump a replayable trace.
  ASSERT_FALSE(r.trace_path.empty());
  std::ifstream dumped(r.trace_path);
  ASSERT_TRUE(dumped.good()) << r.trace_path;

  // The dump's header alone reproduces the failing schedule.
  NemesisOptions replay;
  ASSERT_TRUE(ParseNemesisTrace(r.trace_path, &replay).ok());
  EXPECT_EQ(replay.seed, opt.seed);
  EXPECT_EQ(replay.cycles, opt.cycles);
  EXPECT_EQ(replay.corrupt_model_at_cycle, 2);
  NemesisResult again = RunNemesis(replay);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.error, r.error) << "replay reached a different divergence";
  std::remove(r.trace_path.c_str());
}

TEST(NemesisTest, ParseRejectsNonTraceFiles) {
  NemesisOptions out;
  EXPECT_TRUE(ParseNemesisTrace("/nonexistent/nemesis.trace", &out)
                  .IsNotFound());
  std::string path = ::testing::TempDir() + "not_a_trace";
  std::ofstream(path) << "something else entirely\n";
  EXPECT_TRUE(ParseNemesisTrace(path, &out).IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kvaccel

