#include <gtest/gtest.h>

#include "harness/flags.h"
#include "harness/presets.h"
#include "harness/workload.h"

namespace kvaccel::harness {
namespace {

TEST(MakeKeyTest, LexicographicEqualsNumeric) {
  std::string prev;
  for (uint64_t v : {0ull, 1ull, 255ull, 256ull, 65535ull, 1ull << 24,
                     (1ull << 31) - 1}) {
    std::string k = MakeKey(v, 4);
    EXPECT_EQ(k.size(), 4u);
    if (!prev.empty()) EXPECT_LT(prev, k) << v;
    prev = k;
  }
}

TEST(MakeKeyTest, WidthsAndRoundTrip) {
  EXPECT_EQ(MakeKey(0x01020304, 4), std::string("\x01\x02\x03\x04", 4));
  EXPECT_EQ(MakeKey(7, 8).size(), 8u);
  EXPECT_EQ(MakeKey(7, 8).substr(0, 7), std::string(7, '\0'));
}

TEST(PresetsTest, PaperDefaultsMatchTables) {
  ssd::SsdConfig ssd = PaperSsdConfig(1.0);
  EXPECT_EQ(ssd.channels, 4);             // Table I: 4 channel
  EXPECT_EQ(ssd.ways_per_channel, 8);     // Table I: 8 way
  EXPECT_NEAR(ssd.nand_bytes_per_sec, 630e6, 1);   // §III-A: 630 MB/s
  EXPECT_NEAR(ssd.pcie_bytes_per_sec, 4e9, 1);     // PCIe Gen2 x8
  EXPECT_EQ(ssd.firmware_cores, 1);       // single ARM core

  lsm::DbOptions db = PaperDbOptions(4, true, 1.0);
  EXPECT_EQ(db.write_buffer_size, 128ull << 20);   // Table III: MT 128 MB
  EXPECT_EQ(db.compaction_threads, 4);
  EXPECT_TRUE(db.enable_slowdown);

  core::KvaccelOptions kv = PaperKvaccelOptions(core::RollbackScheme::kLazy);
  EXPECT_EQ(kv.detector_period, FromMillis(100));  // §VI-A: every 0.1 s
  EXPECT_EQ(kv.dev.dma_chunk, 512u << 10);         // §V-E: 512 KB DMA
  EXPECT_NEAR(kv.detector_cpu_ns, 1370, 0.1);      // Table VI
  EXPECT_NEAR(kv.md_insert_ns, 450, 0.1);
  EXPECT_NEAR(kv.md_check_ns, 200, 0.1);
  EXPECT_NEAR(kv.md_delete_ns, 280, 0.1);
}

TEST(PresetsTest, ScaleShrinksSizesNotRates) {
  lsm::DbOptions full = PaperDbOptions(1, true, 1.0);
  lsm::DbOptions eighth = PaperDbOptions(1, true, 0.125);
  EXPECT_EQ(eighth.write_buffer_size * 8, full.write_buffer_size);
  EXPECT_EQ(eighth.max_bytes_for_level_base * 8, full.max_bytes_for_level_base);
  EXPECT_EQ(eighth.l0_stop_writes_trigger, full.l0_stop_writes_trigger);
  EXPECT_DOUBLE_EQ(eighth.delayed_write_rate, full.delayed_write_rate);
  ssd::SsdConfig s_full = PaperSsdConfig(1.0);
  ssd::SsdConfig s_eighth = PaperSsdConfig(0.125);
  EXPECT_DOUBLE_EQ(s_eighth.nand_bytes_per_sec, s_full.nand_bytes_per_sec);
}

TEST(FlagsTest, ParseAll) {
  const char* argv[] = {"bench", "--scale=0.5", "--seconds=42",
                        "--threads=2"};
  BenchFlags f = BenchFlags::Parse(4, const_cast<char**>(argv), 60);
  EXPECT_DOUBLE_EQ(f.scale, 0.5);
  EXPECT_DOUBLE_EQ(f.seconds, 42);
  EXPECT_EQ(f.threads, 2);

  const char* argv2[] = {"bench", "--paper"};
  BenchFlags p = BenchFlags::Parse(2, const_cast<char**>(argv2), 60);
  EXPECT_DOUBLE_EQ(p.scale, 1.0);
  EXPECT_DOUBLE_EQ(p.seconds, 600);
}

// End-to-end harness run, small but real; twice for determinism.
TEST(RunBenchmarkTest, DeterministicAcrossRuns) {
  auto run = [] {
    BenchConfig c;
    c.scale = 0.03125;  // tiny
    c.sut.kind = SystemKind::kRocksDB;
    c.sut.compaction_threads = 1;
    c.workload.duration = FromSecs(5);
    return RunBenchmark(c);
  };
  RunResult a = run();
  RunResult b = run();
  EXPECT_GT(a.write_kops, 0);
  EXPECT_DOUBLE_EQ(a.write_kops, b.write_kops);
  EXPECT_EQ(a.per_sec_write_kops, b.per_sec_write_kops);
  EXPECT_EQ(a.stall_events, b.stall_events);
  EXPECT_DOUBLE_EQ(a.cpu_pct, b.cpu_pct);
}

TEST(RunBenchmarkTest, KvaccelRunCollectsItsStats) {
  BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = SystemKind::kKvaccel;
  c.sut.compaction_threads = 1;
  c.sut.rollback = core::RollbackScheme::kDisabled;
  c.workload.duration = FromSecs(8);
  RunResult r = RunBenchmark(c);
  EXPECT_GT(r.write_kops, 0);
  EXPECT_GT(r.detector_checks, 0u);
  EXPECT_EQ(r.slowdown_events, 0u);  // KVACCEL never throttles
  EXPECT_FALSE(r.per_sec_pcie_mbps.empty());
}

TEST(RunBenchmarkTest, MixedWorkloadProducesReads) {
  BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = SystemKind::kRocksDB;
  c.workload.type = WorkloadConfig::Type::kReadWhileWriting;
  c.workload.read_threads = 1;
  c.workload.duration = FromSecs(5);
  RunResult r = RunBenchmark(c);
  EXPECT_GT(r.write_kops, 0);
  EXPECT_GT(r.read_kops, 0);
}

TEST(RunBenchmarkTest, SeekRandomReportsScanThroughput) {
  BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = SystemKind::kRocksDB;
  c.workload.type = WorkloadConfig::Type::kSeekRandom;
  c.workload.preload_bytes = 2ull << 30;  // scaled to 64 MiB
  c.workload.seek_ops = 20;
  c.workload.nexts_per_seek = 64;
  RunResult r = RunBenchmark(c);
  EXPECT_GT(r.scan_kops, 0);
}

}  // namespace
}  // namespace kvaccel::harness
