#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/random.h"
#include "lsm/bloom.h"
#include "lsm/cache.h"
#include "lsm/dbformat.h"
#include "lsm/memtable.h"
#include "lsm/skiplist.h"
#include "lsm/write_batch.h"

namespace kvaccel::lsm {
namespace {

TEST(DbFormatTest, PackUnpack) {
  uint64_t packed = PackSequenceAndType(12345, ValueType::kValue);
  SequenceNumber seq;
  ValueType t;
  UnpackSequenceAndType(packed, &seq, &t);
  EXPECT_EQ(seq, 12345u);
  EXPECT_EQ(t, ValueType::kValue);
}

TEST(DbFormatTest, InternalKeyExtraction) {
  std::string ikey;
  AppendInternalKey(&ikey, "mykey", 42, ValueType::kDeletion);
  EXPECT_EQ(ikey.size(), 5u + 8u);
  EXPECT_EQ(ExtractUserKey(ikey).ToString(), "mykey");
  EXPECT_EQ(ExtractSequence(ikey), 42u);
  EXPECT_EQ(ExtractValueType(ikey), ValueType::kDeletion);
}

TEST(DbFormatTest, ComparatorOrdersUserKeyAscSeqDesc) {
  InternalKeyComparator cmp;
  std::string a, b, c;
  AppendInternalKey(&a, "aaa", 100, ValueType::kValue);
  AppendInternalKey(&b, "aaa", 50, ValueType::kValue);
  AppendInternalKey(&c, "bbb", 1, ValueType::kValue);
  EXPECT_LT(cmp.Compare(a, b), 0);  // newer sorts first for same user key
  EXPECT_LT(cmp.Compare(b, c), 0);  // user key dominates
  EXPECT_EQ(cmp.Compare(a, a), 0);
}

TEST(DbFormatTest, LookupKeySeeksNewest) {
  InternalKeyComparator cmp;
  LookupKey lk("k", 100);
  std::string newer, exact, older;
  AppendInternalKey(&newer, "k", 150, ValueType::kValue);
  AppendInternalKey(&exact, "k", 100, ValueType::kValue);
  AppendInternalKey(&older, "k", 50, ValueType::kValue);
  // Seek key must land after entries newer than the snapshot but at/before
  // the snapshot version.
  EXPECT_GT(cmp.Compare(lk.internal_key(), newer), 0);
  EXPECT_LE(cmp.Compare(lk.internal_key(), exact), 0);
  EXPECT_LT(cmp.Compare(lk.internal_key(), older), 0);
}

struct IntComparator {
  int operator()(const uint64_t& a, const uint64_t& b) const {
    if (a < b) return -1;
    if (a > b) return +1;
    return 0;
  }
};

TEST(SkipListTest, InsertAndIterateSorted) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  Random64 rng(301);
  std::set<uint64_t> keys;
  for (int i = 0; i < 2000; i++) {
    uint64_t k = rng.Uniform(100000);
    if (keys.insert(k).second) list.Insert(k);
  }
  for (uint64_t k : keys) EXPECT_TRUE(list.Contains(k));
  EXPECT_FALSE(list.Contains(1000001));

  SkipList<uint64_t, IntComparator>::Iterator it(&list);
  it.SeekToFirst();
  for (uint64_t k : keys) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, Seek) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  for (uint64_t k : {10u, 20u, 30u}) list.Insert(k);
  SkipList<uint64_t, IntComparator>::Iterator it(&list);
  it.Seek(15);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 20u);
  it.Seek(30);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30u);
  it.Seek(31);
  EXPECT_FALSE(it.Valid());
}

TEST(MemTableTest, AddGet) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "apple", Value::Inline("red"));
  mem.Add(2, ValueType::kValue, "banana", Value::Inline("yellow"));
  Value v;
  Status s;
  EXPECT_TRUE(mem.Get(LookupKey("apple", 10), &v, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(v.Materialize(), "red");
  EXPECT_FALSE(mem.Get(LookupKey("cherry", 10), &v, &s));
  EXPECT_EQ(mem.NumEntries(), 2u);
}

TEST(MemTableTest, NewerVersionWins) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "k", Value::Inline("v1"));
  mem.Add(5, ValueType::kValue, "k", Value::Inline("v2"));
  Value v;
  Status s;
  ASSERT_TRUE(mem.Get(LookupKey("k", 100), &v, &s));
  EXPECT_EQ(v.Materialize(), "v2");
  // Snapshot below the second version sees the first.
  ASSERT_TRUE(mem.Get(LookupKey("k", 3), &v, &s));
  EXPECT_EQ(v.Materialize(), "v1");
}

TEST(MemTableTest, TombstoneDecides) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "k", Value::Inline("v"));
  mem.Add(2, ValueType::kDeletion, "k", Value());
  Value v;
  Status s;
  ASSERT_TRUE(mem.Get(LookupKey("k", 100), &v, &s));
  EXPECT_TRUE(s.IsNotFound());
}

TEST(MemTableTest, LogicalSizeCountsSyntheticValues) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "abcd", Value::Synthetic(7, 4096));
  EXPECT_EQ(mem.LogicalSize(), 4u + 8u + 4096u);
  // Host memory stays compact.
  EXPECT_LT(mem.ApproximateMemoryUsage(), 2u << 20);
}

TEST(MemTableTest, IteratorSortedByInternalKey) {
  MemTable mem;
  mem.Add(3, ValueType::kValue, "b", Value::Inline("b3"));
  mem.Add(1, ValueType::kValue, "a", Value::Inline("a1"));
  mem.Add(2, ValueType::kValue, "c", Value::Inline("c2"));
  auto it = mem.NewIterator();
  std::vector<std::string> keys;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    keys.push_back(ExtractUserKey(it->key()).ToString());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(WriteBatchTest, PutDeleteRoundTrip) {
  WriteBatch batch;
  batch.Put("k1", Value::Inline("v1"));
  batch.Delete("k2");
  batch.Put("k3", Value::Synthetic(9, 100));
  batch.SetSequence(50);
  EXPECT_EQ(batch.Count(), 3u);
  EXPECT_EQ(batch.LogicalSize(), (2 + 8 + 2) + (2 + 8) + (2 + 8 + 100));

  WriteBatch parsed;
  ASSERT_TRUE(WriteBatch::ParseFrom(batch.Contents(), &parsed).ok());
  EXPECT_EQ(parsed.Count(), 3u);
  EXPECT_EQ(parsed.Sequence(), 50u);
  EXPECT_EQ(parsed.LogicalSize(), batch.LogicalSize());

  MemTable mem;
  ASSERT_TRUE(parsed.InsertInto(&mem).ok());
  Value v;
  Status s;
  ASSERT_TRUE(mem.Get(LookupKey("k1", 100), &v, &s));
  EXPECT_EQ(v.Materialize(), "v1");
  ASSERT_TRUE(mem.Get(LookupKey("k2", 100), &v, &s));
  EXPECT_TRUE(s.IsNotFound());
}

TEST(WriteBatchTest, SequencesAreConsecutive) {
  WriteBatch batch;
  batch.Put("a", Value::Inline("1"));
  batch.Put("a", Value::Inline("2"));
  batch.SetSequence(10);
  MemTable mem;
  ASSERT_TRUE(batch.InsertInto(&mem).ok());
  Value v;
  Status s;
  ASSERT_TRUE(mem.Get(LookupKey("a", 100), &v, &s));
  EXPECT_EQ(v.Materialize(), "2");  // seq 11 wins
  ASSERT_TRUE(mem.Get(LookupKey("a", 10), &v, &s));
  EXPECT_EQ(v.Materialize(), "1");
}

TEST(WriteBatchTest, ParseRejectsGarbage) {
  WriteBatch batch;
  EXPECT_TRUE(WriteBatch::ParseFrom(Slice("xy"), &batch).IsCorruption());
  std::string bad(12, '\0');
  bad[8] = 2;  // claims 2 entries, provides none
  EXPECT_TRUE(WriteBatch::ParseFrom(bad, &batch).IsCorruption());
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(10);
  std::vector<uint32_t> hashes;
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; i++) {
    keys.push_back("key" + std::to_string(i));
    hashes.push_back(BloomFilter::HashKey(keys.back()));
  }
  std::string filter;
  bloom.CreateFilter(hashes, &filter);
  for (const auto& k : keys) {
    EXPECT_TRUE(bloom.KeyMayMatch(BloomFilter::HashKey(k), filter));
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilter bloom(10);
  std::vector<uint32_t> hashes;
  for (int i = 0; i < 1000; i++) {
    hashes.push_back(BloomFilter::HashKey("in" + std::to_string(i)));
  }
  std::string filter;
  bloom.CreateFilter(hashes, &filter);
  int false_positives = 0;
  for (int i = 0; i < 10000; i++) {
    if (bloom.KeyMayMatch(BloomFilter::HashKey("out" + std::to_string(i)),
                          filter)) {
      false_positives++;
    }
  }
  // ~1% expected at 10 bits/key; allow generous slack.
  EXPECT_LT(false_positives, 300);
}

TEST(BlockCacheTest, HitMissAndLru) {
  BlockCache cache(100);
  auto block = [](uint64_t logical) {
    auto b = std::make_shared<BlockCache::Block>();
    b->logical = logical;
    return b;
  };
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 0, block(40));
  cache.Insert(1, 100, block(40));
  EXPECT_NE(cache.Lookup(1, 0), nullptr);   // refresh: (1,0) is MRU
  cache.Insert(2, 0, block(40));            // evicts LRU (1,100)
  EXPECT_EQ(cache.Lookup(1, 100), nullptr);
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(2, 0), nullptr);
  EXPECT_LE(cache.usage(), 100u);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

TEST(BlockCacheTest, ZeroCapacityCachesNothing) {
  BlockCache cache(0);
  auto b = std::make_shared<BlockCache::Block>();
  b->logical = 10;
  cache.Insert(1, 0, b);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
}

TEST(BlockCacheTest, Erase) {
  BlockCache cache(1000);
  auto b = std::make_shared<BlockCache::Block>();
  b->logical = 10;
  cache.Insert(3, 7, b);
  EXPECT_NE(cache.Lookup(3, 7), nullptr);
  cache.Erase(3, 7);
  EXPECT_EQ(cache.Lookup(3, 7), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
}

}  // namespace
}  // namespace kvaccel::lsm
