// Edge cases and regressions for bugs found during development:
//  - iterator survives compaction deleting its files (deferred reaping)
//  - page-cache semantics (lazy writeback, dirty drop on crash)
//  - concurrent redirection during rollback (snapshot-bounded reset)
//  - tombstones retained by compaction while deeper data exists
#include <gtest/gtest.h>

#include <memory>

#include "core/kvaccel_db.h"
#include "lsm/db.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using lsm::DB;
using lsm::DbOptions;
using test::SimWorld;
using test::TestKey;

// Regression: a long-lived iterator must keep working while compaction
// retires the SSTs it has not yet opened (lazy LevelConcatIterator opens).
TEST(IteratorLifetimeTest, ScanSurvivesConcurrentCompaction) {
  SimWorld world;
  DbOptions opts = test::SmallDbOptions();
  opts.compaction_threads = 2;
  std::unique_ptr<DB> db;
  uint64_t scanned = 0;
  bool scan_ok = true;

  world.env.Spawn("writer", [&] {
    ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 1500; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    // Open an iterator over the current state, then churn hard so
    // compaction rewrites everything underneath it.
    auto it = db->NewIterator({});
    it->SeekToFirst();
    for (int i = 0; i < 2500; i++) {
      ASSERT_TRUE(
          db->Put({}, TestKey(i % 1500), Value::Synthetic(9999, 4096)).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    // Drain the old iterator: it must see its snapshot, in order, intact.
    std::string prev;
    for (; it->Valid(); it->Next()) {
      std::string k = it->key().ToString();
      if (!prev.empty() && prev >= k) scan_ok = false;
      prev = k;
      scanned++;
    }
    if (!it->status().ok()) scan_ok = false;
    ASSERT_TRUE(db->Close().ok());
  });
  world.env.Run();
  EXPECT_TRUE(scan_ok);
  EXPECT_EQ(scanned, 1500u);
}

TEST(PageCacheTest, LazyFileNeverTouchesDeviceUntilSync) {
  SimWorld world;
  world.Run([&] {
    fs::SimFs& fs = *world.fs;
    std::unique_ptr<fs::WritableFile> w;
    ASSERT_TRUE(fs.NewWritableFile("lazy.log", &w).ok());
    w->set_writeback_chunk(fs::kLazyWriteback);
    uint64_t nand0 = world.ssd->nand().bytes_written();
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(w->Append(std::string(100, 'x'), 4096).ok());
    }
    ASSERT_TRUE(w->Close().ok());
    EXPECT_EQ(world.ssd->nand().bytes_written(), nand0);  // all in page cache
    // Deleting the file drops ~4 MB of dirty data with zero device I/O —
    // the short-lived-WAL behaviour the write-burst dynamics rely on.
    ASSERT_TRUE(fs.DeleteFile("lazy.log").ok());
    EXPECT_EQ(world.ssd->nand().bytes_written(), nand0);
  });
}

TEST(PageCacheTest, DropAllDirtyModelsPowerCut) {
  SimWorld world;
  world.Run([&] {
    fs::SimFs& fs = *world.fs;
    std::unique_ptr<fs::WritableFile> w;
    ASSERT_TRUE(fs.NewWritableFile("f", &w).ok());
    w->set_writeback_chunk(fs::kLazyWriteback);
    ASSERT_TRUE(w->Append("durable-part").ok());
    ASSERT_TRUE(w->Sync().ok());  // on device
    ASSERT_TRUE(w->Append("dirty-tail").ok());
    ASSERT_TRUE(w->Close().ok());

    fs.DropAllDirty();  // power cut

    std::unique_ptr<fs::RandomAccessFile> r;
    ASSERT_TRUE(fs.NewRandomAccessFile("f", &r).ok());
    std::string out;
    ASSERT_TRUE(r->Read(0, 100, &out).ok());
    EXPECT_EQ(out, "durable-part");  // dirty tail lost, synced prefix kept
  });
}

TEST(WalSyncTest, SyncedWalSurvivesPowerCut) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    {
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
      // Synced write: must survive; unsynced tail: legitimately lost.
      ASSERT_TRUE(db->Put(lsm::WriteOptions{.sync = true}, "durable",
                          Value::Inline("yes")).ok());
      ASSERT_TRUE(db->Put({}, "maybe-lost", Value::Inline("tail")).ok());
      ASSERT_TRUE(db->Close().ok());
    }
    world.fs->DropAllDirty();  // power cut after close
    {
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
      Value v;
      ASSERT_TRUE(db->Get({}, "durable", &v).ok());
      EXPECT_EQ(v.Materialize(), "yes");
      // "maybe-lost" may or may not survive (it shared a sector with the
      // synced record); what matters is no corruption either way.
      Status s = db->Get({}, "maybe-lost", &v);
      EXPECT_TRUE(s.ok() || s.IsNotFound());
      ASSERT_TRUE(db->Close().ok());
    }
  });
}

// Regression: redirection stays live DURING rollback; pairs redirected
// mid-drain survive the snapshot-bounded reset and remain readable.
TEST(RollbackConcurrencyTest, RedirectDuringRollbackSurvives) {
  SimWorld world;
  world.Run([&] {
    DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 2;
    core::KvaccelOptions kv_opts;
    kv_opts.dev.memtable_bytes = 128 << 10;
    kv_opts.dev.dma_chunk = 16 << 10;  // many chunks -> long scan
    kv_opts.rollback = core::RollbackScheme::kDisabled;
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(
        core::KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db)
            .ok());
    // Plant pre-rollback device pairs.
    for (int i = 0; i < 400; i++) {
      lsm::SequenceNumber seq = db->main()->AllocateSequence(1);
      ASSERT_TRUE(
          db->dev()->Put(TestKey(i), Value::Synthetic(i, 4096), seq).ok());
      db->metadata()->Insert(TestKey(i), seq);
    }
    // Start the rollback in one thread; redirect new pairs from another
    // while the scan is in flight.
    bool rollback_done = false;
    auto* roller = world.env.Spawn("roller", [&] {
      ASSERT_TRUE(db->RollbackNow().ok());
      rollback_done = true;
    });
    auto* injector = world.env.Spawn("injector", [&] {
      world.env.SleepFor(FromMicros(500));  // land mid-scan
      for (int i = 1000; i < 1050; i++) {
        lsm::SequenceNumber seq = db->main()->AllocateSequence(1);
        ASSERT_TRUE(
            db->dev()->Put(TestKey(i), Value::Synthetic(i, 4096), seq).ok());
        db->metadata()->Insert(TestKey(i), seq);
      }
    });
    world.env.Join(roller);
    world.env.Join(injector);
    ASSERT_TRUE(rollback_done);

    // Mid-drain pairs survive in the device, readable through the facade.
    Value v;
    for (int i = 1000; i < 1050; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(i));
    }
    EXPECT_FALSE(db->dev()->Empty());  // they were not reset
    // Pre-rollback pairs moved to Main-LSM.
    for (int i = 0; i < 400; i += 37) {
      ASSERT_TRUE(db->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(i));
    }
    // A second rollback drains the survivors too.
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    ASSERT_TRUE(db->RollbackNow().ok());
    EXPECT_TRUE(db->dev()->Empty());
    for (int i = 1000; i < 1050; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(i), &v).ok()) << i;
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

// Compaction must NOT drop a tombstone while deeper levels still hold older
// versions of the key.
TEST(CompactionSemanticsTest, TombstoneRetainedWhileDeeperDataExists) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
    // Push a first generation deep (several flush/compaction rounds).
    for (int round = 0; round < 4; round++) {
      for (int i = 0; i < 300; i++) {
        ASSERT_TRUE(db->Put({}, TestKey(i),
                            Value::Synthetic(round * 1000 + i, 4096)).ok());
      }
      ASSERT_TRUE(db->FlushAll().ok());
    }
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    // Delete half the keys; force the tombstones through compactions.
    for (int i = 0; i < 300; i += 2) {
      ASSERT_TRUE(db->Delete({}, TestKey(i)).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    Value v;
    for (int i = 0; i < 300; i++) {
      Status s = db->Get({}, TestKey(i), &v);
      if (i % 2 == 0) {
        EXPECT_TRUE(s.IsNotFound()) << i;
      } else {
        ASSERT_TRUE(s.ok()) << i;
        EXPECT_EQ(v.seed(), static_cast<uint64_t>(3000 + i)) << i;
      }
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(FineTrafficTest, FineSeriesTracksCoarseSeries) {
  SimWorld world;
  world.Run([&] {
    world.ssd->PcieToDevice(10 << 20);  // 10 MiB burst
    const auto& coarse = world.ssd->pcie().traffic();
    const auto& fine = world.ssd->pcie().traffic_fine();
    EXPECT_NEAR(coarse.total(), fine.total(), 1.0);
    EXPECT_EQ(fine.bucket_width(), kNanosPerSec / 8);
  });
}

TEST(DetectorEdgeTest, RedirectsOnlyNearStopTriggers) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
    core::KvaccelOptions kv_opts;
    core::KvaccelStats stats;
    core::Detector detector(db.get(), &world.env, world.host_cpu.get(),
                            kv_opts, &stats);
    detector.PollNow();
    EXPECT_FALSE(detector.stall_detected());  // empty DB: calm
    EXPECT_GT(detector.calm_streak(), 0);
    EXPECT_EQ(stats.detector_checks, 1u);
    lsm::StallSignals sig = detector.last_signals();
    EXPECT_EQ(sig.l0_stop_trigger, opts.l0_stop_writes_trigger);
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace kvaccel
