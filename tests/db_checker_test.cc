// Offline consistency checker + repair (DESIGN.md §9): each corruption class
// the issue names — truncated SST, bit-flipped block, MANIFEST referencing a
// missing file, orphaned Dev-LSM entry — must be detected, and Repair() must
// restore a checker-passing state with every uncorrupted key still readable.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/db_checker.h"
#include "core/kvaccel_db.h"
#include "lsm/db.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using check::CheckReport;
using check::DbChecker;
using test::SimWorld;
using test::TestKey;

// Writes `files` batches of `per_file` keys, each batch flushed into its own
// L0 SST. Keys are TestKey(0 .. files*per_file-1), value seed == key index.
void BuildDb(SimWorld& world, const lsm::DbOptions& opts, int files,
             int per_file) {
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
  for (int f = 0; f < files; f++) {
    for (int i = 0; i < per_file; i++) {
      int k = f * per_file + i;
      ASSERT_TRUE(db->Put({}, TestKey(k), Value::Synthetic(k, 4096)).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
  }
  ASSERT_TRUE(db->WaitForCompactionIdle().ok());
  ASSERT_TRUE(db->Close().ok());
}

std::vector<std::string> LiveSsts(fs::SimFs& fs) {
  std::vector<std::string> out;
  for (const std::string& name : fs.GetChildren()) {
    if (name.size() == 10 && name.substr(6) == ".sst") out.push_back(name);
  }
  return out;
}

std::string ReadRaw(fs::SimFs& fs, const std::string& name) {
  std::unique_ptr<fs::RandomAccessFile> f;
  EXPECT_TRUE(fs.NewRandomAccessFile(name, &f).ok());
  std::string raw;
  EXPECT_TRUE(f->Read(0, f->physical_size(), &raw).ok());
  return raw;
}

void WriteRaw(fs::SimFs& fs, const std::string& name,
              const std::string& bytes) {
  std::unique_ptr<fs::WritableFile> f;
  ASSERT_TRUE(fs.NewWritableFile(name, &f).ok());
  ASSERT_TRUE(f->Append(Slice(bytes)).ok());
  ASSERT_TRUE(f->Close().ok());
}

// After a repair, every key must be either gone (it lived in a quarantined
// file) or intact at its original value — never wrong, never a read error.
void VerifySurvivors(SimWorld& world, const lsm::DbOptions& opts,
                     int total_keys, int min_survivors) {
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
  int found = 0;
  for (int k = 0; k < total_keys; k++) {
    Value v;
    Status s = db->Get({}, TestKey(k), &v);
    if (s.IsNotFound()) continue;
    ASSERT_TRUE(s.ok()) << TestKey(k) << ": " << s.ToString();
    EXPECT_EQ(v.seed(), static_cast<uint64_t>(k)) << TestKey(k);
    found++;
  }
  EXPECT_GE(found, min_survivors);
  ASSERT_TRUE(db->Close().ok());
}

TEST(DbCheckerTest, CleanDbPassesWithFilesActuallyExamined) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    BuildDb(world, opts, 3, 50);
    DbChecker checker(opts, world.MakeDbEnv());
    CheckReport report = checker.Check();
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_GT(report.sst_files_checked, 0) << report.ToString();
    EXPECT_GT(report.manifest_edits, 0);
  });
}

TEST(DbCheckerTest, TruncatedSstDetectedAndRepaired) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    BuildDb(world, opts, 4, 50);
    std::vector<std::string> ssts = LiveSsts(*world.fs);
    ASSERT_GE(ssts.size(), 2u);
    std::string victim = ssts[0];
    std::string raw = ReadRaw(*world.fs, victim);
    WriteRaw(*world.fs, victim, raw.substr(0, raw.size() / 2));

    DbChecker checker(opts, world.MakeDbEnv());
    CheckReport report = checker.Check();
    EXPECT_FALSE(report.ok()) << "truncation not detected";

    ASSERT_TRUE(checker.Repair(&report).ok()) << report.ToString();
    EXPECT_TRUE(world.fs->FileExists(victim + ".bad")) << "not quarantined";
    CheckReport after = checker.Check();
    EXPECT_TRUE(after.ok()) << after.ToString();
    // One file of four quarantined: at least the other ~3/4 survive intact.
    VerifySurvivors(world, opts, 200, 100);
  });
}

TEST(DbCheckerTest, BitFlippedBlockDetectedAndRepaired) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    BuildDb(world, opts, 4, 50);
    std::vector<std::string> ssts = LiveSsts(*world.fs);
    ASSERT_GE(ssts.size(), 2u);
    std::string victim = ssts.back();
    std::string raw = ReadRaw(*world.fs, victim);
    raw[raw.size() / 3] ^= 0x10;  // one bit, inside a data block
    WriteRaw(*world.fs, victim, raw);

    DbChecker checker(opts, world.MakeDbEnv());
    CheckReport report = checker.Check();
    EXPECT_FALSE(report.ok()) << "bit flip not detected";

    ASSERT_TRUE(checker.Repair(&report).ok()) << report.ToString();
    CheckReport after = checker.Check();
    EXPECT_TRUE(after.ok()) << after.ToString();
    VerifySurvivors(world, opts, 200, 100);
  });
}

TEST(DbCheckerTest, ManifestReferencingMissingSstDetectedAndRepaired) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    BuildDb(world, opts, 4, 50);
    std::vector<std::string> ssts = LiveSsts(*world.fs);
    ASSERT_GE(ssts.size(), 2u);
    ASSERT_TRUE(world.fs->DeleteFile(ssts[0]).ok());

    DbChecker checker(opts, world.MakeDbEnv());
    CheckReport report = checker.Check();
    EXPECT_FALSE(report.ok()) << "dangling MANIFEST reference not detected";
    bool mentions_missing = false;
    for (const auto& issue : report.issues) {
      if (issue.what.find("missing") != std::string::npos) {
        mentions_missing = true;
      }
    }
    EXPECT_TRUE(mentions_missing) << report.ToString();

    ASSERT_TRUE(checker.Repair(&report).ok()) << report.ToString();
    CheckReport after = checker.Check();
    EXPECT_TRUE(after.ok()) << after.ToString();
    VerifySurvivors(world, opts, 200, 100);
  });
}

TEST(DbCheckerTest, OrphanSstIsWarningNotError) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    BuildDb(world, opts, 2, 40);
    // A stranded file with an SST name but no MANIFEST reference: a power
    // cut legally leaves these behind, so it must not fail the check.
    WriteRaw(*world.fs, "999990.sst", "not really a table");
    DbChecker checker(opts, world.MakeDbEnv());
    CheckReport report = checker.Check();
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_GT(report.warnings(), 0) << "orphan not surfaced at all";
  });
}

TEST(DbCheckerTest, WalMidLogCorruptionDetectedAndSalvaged) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.write_buffer_size = 4 << 20;  // keep everything in the WAL
    opts.wal_sync = true;
    {
      std::unique_ptr<lsm::DB> db;
      ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
      for (int k = 0; k < 40; k++) {
        ASSERT_TRUE(db->Put({}, TestKey(k), Value::Synthetic(k, 4096)).ok());
      }
      ASSERT_TRUE(db->Close().ok());
    }
    std::string wal;
    for (const std::string& name : world.fs->GetChildren()) {
      if (name.size() == 10 && name.substr(6) == ".log") wal = name;
    }
    ASSERT_FALSE(wal.empty());
    std::string raw = ReadRaw(*world.fs, wal);
    raw[raw.size() / 2] ^= 0x01;  // mid-log: valid records follow the damage
    WriteRaw(*world.fs, wal, raw);

    DbChecker checker(opts, world.MakeDbEnv());
    CheckReport report = checker.Check();
    EXPECT_FALSE(report.ok()) << "mid-WAL corruption not detected";

    ASSERT_TRUE(checker.Repair(&report).ok()) << report.ToString();
    CheckReport after = checker.Check();
    EXPECT_TRUE(after.ok()) << after.ToString();

    // The salvaged WAL holds a clean prefix of the write order: recovered
    // keys must form a gap-free prefix at their original values.
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    bool missing_seen = false;
    int found = 0;
    for (int k = 0; k < 40; k++) {
      Value v;
      Status s = db->Get({}, TestKey(k), &v);
      if (s.IsNotFound()) {
        missing_seen = true;
        continue;
      }
      ASSERT_TRUE(s.ok()) << s.ToString();
      EXPECT_FALSE(missing_seen) << "hole in salvaged WAL prefix at " << k;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(k));
      found++;
    }
    EXPECT_GT(found, 0) << "salvage kept nothing";
    EXPECT_LT(found, 40) << "corrupt suffix was not actually dropped";
    ASSERT_TRUE(db->Close().ok());
  });
}

// ---------------------------------------------------------------------------
// Dual-interface invariant (live KvaccelDB)
// ---------------------------------------------------------------------------

TEST(DbCheckerTest, OrphanedDevLsmEntryDetectedAndDrainedByRepair) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    core::KvaccelOptions kv_opts;
    kv_opts.rollback = core::RollbackScheme::kDisabled;
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(
        core::KvaccelDB::Open(opts, kv_opts, world.MakeDbEnv(), &db).ok());
    for (int k = 0; k < 20; k++) {
      ASSERT_TRUE(db->Put({}, TestKey(k), Value::Synthetic(k, 4096)).ok());
    }
    {
      CheckReport clean;
      DbChecker::CheckDualInterface(db.get(), &clean);
      ASSERT_TRUE(clean.ok()) << clean.ToString();
    }

    // Orphaned residue: the device holds the NEWEST version of key 3 but the
    // volatile metadata table has no record of it — no read path reaches it
    // and a trusted rollback would drop it.
    uint64_t newest = db->main()->AllocateSequence(1);
    ASSERT_TRUE(
        db->dev()->Put(TestKey(3), Value::Synthetic(777, 4096), newest).ok());
    // Dangling metadata: a record whose key the device cannot resolve.
    db->metadata()->Insert(TestKey(99), newest);

    CheckReport report;
    DbChecker::CheckDualInterface(db.get(), &report);
    EXPECT_GE(report.errors(), 2) << report.ToString();

    ASSERT_TRUE(DbChecker::RepairDualInterface(db.get()).ok());
    CheckReport after;
    DbChecker::CheckDualInterface(db.get(), &after);
    EXPECT_TRUE(after.ok()) << after.ToString();
    EXPECT_TRUE(db->dev()->Empty()) << "orphaned residue not drained";
    // The orphaned newest version is now authoritative host-side.
    Value v;
    ASSERT_TRUE(db->Get({}, TestKey(3), &v).ok());
    EXPECT_EQ(v.seed(), 777u);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbCheckerTest, SupersededDeviceResidueIsWarningNotError) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    core::KvaccelOptions kv_opts;
    kv_opts.rollback = core::RollbackScheme::kDisabled;
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(
        core::KvaccelDB::Open(opts, kv_opts, world.MakeDbEnv(), &db).ok());
    // Device pair at host_seq 1, then a newer host write of the same key:
    // the residue is stale (3-1 path), not lost data.
    ASSERT_TRUE(
        db->dev()->Put(TestKey(5), Value::Synthetic(111, 4096), 1).ok());
    ASSERT_TRUE(db->Put({}, TestKey(5), Value::Synthetic(222, 4096)).ok());

    CheckReport report;
    DbChecker::CheckDualInterface(db.get(), &report);
    EXPECT_EQ(report.errors(), 0) << report.ToString();
    EXPECT_GT(report.warnings(), 0) << report.ToString();
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace kvaccel

