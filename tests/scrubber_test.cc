// Online scrubber (DESIGN.md §9): idle-bandwidth SST re-reads with checksum
// verification, scrub.* stats, and escalation through the Detector's
// device-health circuit breaker on persistent per-file failures.
#include <gtest/gtest.h>

#include <memory>

#include "core/kvaccel_db.h"
#include "core/scrubber.h"
#include "sim/fault.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using test::SimWorld;
using test::TestKey;

core::KvaccelOptions ScrubKvOptions() {
  core::KvaccelOptions o;
  o.rollback = core::RollbackScheme::kDisabled;
  o.scrub.period = FromMillis(5);
  return o;
}

TEST(ScrubberTest, BackgroundScrubSweepsLiveFilesWhenEnabled) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    core::KvaccelOptions kv_opts = ScrubKvOptions();
    kv_opts.scrub.enabled = true;
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(
        core::KvaccelDB::Open(opts, kv_opts, world.MakeDbEnv(), &db).ok());
    ASSERT_NE(db->scrubber(), nullptr);
    for (int f = 0; f < 3; f++) {
      for (int i = 0; i < 50; i++) {
        ASSERT_TRUE(
            db->Put({}, TestKey(f * 50 + i), Value::Synthetic(i, 4096)).ok());
      }
      ASSERT_TRUE(db->FlushAll().ok());
    }
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    // Idle virtual time: the scrubber wakes every 5 ms and verifies one file
    // per wake-up, so a full pass completes well inside a second.
    world.env.SleepFor(FromSecs(1));
    const core::ScrubStats& st = db->scrubber()->stats();
    EXPECT_GT(st.files_scanned, 0u);
    EXPECT_GT(st.bytes_scanned, 0u);
    EXPECT_GE(st.passes, 1u);
    EXPECT_EQ(st.corruptions, 0u);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(ScrubberTest, DisabledByDefaultLeavesNoScrubber) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(core::KvaccelDB::Open(test::SmallDbOptions(), ScrubKvOptions(),
                                      world.MakeDbEnv(), &db)
                    .ok());
    EXPECT_EQ(db->scrubber(), nullptr);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(ScrubberTest, PersistentCorruptionEscalatesThroughDetector) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 21);
    world.env.set_fault_injector(&inj);
    lsm::DbOptions opts = test::SmallDbOptions();
    core::KvaccelOptions kv_opts = ScrubKvOptions();
    kv_opts.scrub.escalate_after = 2;
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(
        core::KvaccelDB::Open(opts, kv_opts, world.MakeDbEnv(), &db).ok());
    // One SST, so every scrub step lands on the same file and the per-file
    // failure streak actually accumulates.
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());

    core::Scrubber scrub(db->main(), db->detector(), &world.env, kv_opts);
    ASSERT_TRUE(scrub.StepOnce().ok());
    EXPECT_EQ(scrub.stats().files_scanned, 1u);

    // Persistent media trouble: every read of the file comes back flipped.
    sim::FaultRule rot;
    rot.probability = 1.0;
    inj.Arm("simfs.read.bitflip", rot);
    EXPECT_TRUE(scrub.StepOnce().IsCorruption());
    EXPECT_EQ(scrub.stats().corruptions, 1u);
    EXPECT_EQ(scrub.stats().escalations, 0u);  // streak 1 < escalate_after
    EXPECT_TRUE(db->detector()->device_healthy(world.env.Now()));
    EXPECT_TRUE(scrub.StepOnce().IsCorruption());
    EXPECT_EQ(scrub.stats().corruptions, 2u);
    EXPECT_EQ(scrub.stats().escalations, 1u);
    // The circuit breaker opened: redirection stops until the cooldown.
    EXPECT_FALSE(db->detector()->device_healthy(world.env.Now()));

    // Trouble clears: the file verifies again and the streak resets.
    inj.Disarm("simfs.read.bitflip");
    ASSERT_TRUE(scrub.StepOnce().ok());
    EXPECT_EQ(scrub.stats().files_scanned, 2u);
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace kvaccel

