// Crash monkey: randomized crash/recover cycles against the LSM engine.
//
// Each cycle arms one randomly chosen kill point to fire on a random hit,
// writes a random synced workload until the crash (or cycle end), then runs
// the crash protocol — close the dead DB, drop the page cache, clear the
// crash latch, reopen — and checks the recovery invariants:
//
//   1. every acknowledged write (wal_sync=true) is recovered, at its
//      acknowledged version or a later attempted one;
//   2. no alien values appear (every recovered seed was actually written);
//   3. reopen itself succeeds — no torn SST/MANIFEST state survives.
//
// The whole schedule is deterministic from the two fixed seeds below.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/random.h"
#include "lsm/db.h"
#include "sim/fault.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using test::SimWorld;
using test::TestKey;

// The two seeds pin the whole schedule (fault draws and workload draws).
// Every assertion below carries them plus the cycle index, so any failure in
// a ctest log is reproducible by rerunning this test with the same binary —
// and bisectable by editing exactly these two constants.
constexpr uint64_t kMonkeyFaultSeed = 0xC0FFEE;
constexpr uint64_t kMonkeyWorkloadSeed = 0xDECAF;

TEST(CrashMonkeyTest, RandomizedCrashRecoverCycles) {
  const char* kSites[] = {
      "crash.wal.post_append",   "crash.wal.post_sync",
      "crash.flush.mid",         "crash.manifest.pre_sync",
      "crash.manifest.post_sync", "crash.compaction.mid",
      "crash.subcompaction.mid",
  };
  SimWorld world;
  world.Run([&] {
    SCOPED_TRACE(::testing::Message()
                 << "fault_seed=0x" << std::hex << kMonkeyFaultSeed
                 << " workload_seed=0x" << kMonkeyWorkloadSeed << std::dec);
    sim::FaultInjector inj(&world.env, kMonkeyFaultSeed);
    world.env.set_fault_injector(&inj);
    Random64 rng(kMonkeyWorkloadSeed);
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.wal_sync = true;

    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());

    // Acknowledged state, and every seed ever attempted per key (a
    // durable-but-unacknowledged overwrite is a legal survivor).
    std::map<std::string, uint64_t> model;
    std::map<std::string, std::set<uint64_t>> attempted;

    const int kCycles = 60;
    const uint64_t kKeys = 300;
    uint64_t next_seed = 1;
    int crashes = 0;
    for (int cycle = 0; cycle < kCycles; cycle++) {
      const char* site = kSites[rng.Uniform(sizeof(kSites) / sizeof(kSites[0]))];
      sim::FaultRule rule;
      rule.nth_hit = 1 + rng.Uniform(40);
      rule.max_fires = 1;
      inj.Arm(site, rule);

      bool crashed = false;
      for (int i = 0; i < 150 && !crashed; i++) {
        std::string key = TestKey(rng.Uniform(kKeys));
        uint64_t seed = next_seed++;
        attempted[key].insert(seed);
        Status s = db->Put({}, key, Value::Synthetic(seed, 4096));
        if (s.ok()) {
          model[key] = seed;
        } else {
          crashed = true;
        }
        if (!db->GetBackgroundError().ok()) crashed = true;
      }
      inj.Disarm(site);
      if (crashed) crashes++;

      // Crash/recover protocol (clean cycles exercise plain reopen).
      (void)db->Close();
      db.reset();
      world.fs->DropAllDirty();
      inj.ClearCrash();
      ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok())
          << "cycle " << cycle << " site " << site;

      for (uint64_t k = 0; k < kKeys; k++) {
        std::string key = TestKey(k);
        Value v;
        Status s = db->Get({}, key, &v);
        auto m = model.find(key);
        if (s.IsNotFound()) {
          ASSERT_TRUE(m == model.end())
              << "cycle " << cycle << " site " << site
              << ": acknowledged key " << key << " lost";
          continue;
        }
        ASSERT_TRUE(s.ok())
            << "cycle " << cycle << " site " << site << ": " << s.ToString();
        ASSERT_TRUE(attempted[key].count(v.seed()) > 0)
            << "cycle " << cycle << ": key " << key << " has alien value "
            << v.seed();
        if (m != model.end()) {
          ASSERT_GE(v.seed(), m->second)
              << "cycle " << cycle << " site " << site << ": key " << key
              << " regressed below its acknowledged version";
        }
        model[key] = v.seed();  // adopt durable-but-unacked survivors
      }
    }
    // The schedule must actually have killed the DB a meaningful number of
    // times, or the invariants above checked nothing.
    EXPECT_GE(crashes, 10);
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace kvaccel
