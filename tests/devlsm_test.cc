#include <gtest/gtest.h>

#include <set>
#include <string>

#include "devlsm/dev_lsm.h"
#include "tests/test_util.h"

namespace kvaccel::devlsm {
namespace {

using test::SimWorld;
using test::TestKey;

DevLsmOptions SmallDevOptions() {
  DevLsmOptions o;
  o.memtable_bytes = 128 << 10;  // flush quickly in tests
  o.dma_chunk = 64 << 10;
  return o;
}

TEST(DevLsmTest, PutGetDelete) {
  SimWorld world;
  world.Run([&] {
    DevLsm dev(world.ssd.get(), 0, SmallDevOptions());
    ASSERT_TRUE(dev.Put("k1", Value::Inline("v1")).ok());
    ASSERT_TRUE(dev.Put("k2", Value::Synthetic(7, 4096)).ok());
    Value v;
    ASSERT_TRUE(dev.Get("k1", &v).ok());
    EXPECT_EQ(v.Materialize(), "v1");
    ASSERT_TRUE(dev.Get("k2", &v).ok());
    EXPECT_EQ(v.logical_size(), 4096u);
    EXPECT_TRUE(dev.Get("absent", &v).IsNotFound());
    ASSERT_TRUE(dev.Delete("k1").ok());
    EXPECT_TRUE(dev.Get("k1", &v).IsNotFound());
    EXPECT_TRUE(dev.Exist("k2"));
    EXPECT_FALSE(dev.Exist("k1"));
  });
}

TEST(DevLsmTest, OverwriteKeepsNewest) {
  SimWorld world;
  world.Run([&] {
    DevLsm dev(world.ssd.get(), 0, SmallDevOptions());
    for (int i = 0; i < 5; i++) {
      ASSERT_TRUE(dev.Put("k", Value::Synthetic(i, 100)).ok());
    }
    Value v;
    ASSERT_TRUE(dev.Get("k", &v).ok());
    EXPECT_EQ(v.seed(), 4u);
  });
}

TEST(DevLsmTest, FlushSpillsToNandAndSurvivesInRuns) {
  SimWorld world;
  world.Run([&] {
    DevLsm dev(world.ssd.get(), 0, SmallDevOptions());
    uint64_t nand_before = world.ssd->nand().bytes_written();
    // 128 KiB threshold: 40 x 4 KiB values forces at least one flush.
    for (int i = 0; i < 40; i++) {
      ASSERT_TRUE(dev.Put(TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_GE(dev.stats().flushes, 1u);
    EXPECT_GT(world.ssd->nand().bytes_written(), nand_before);
    EXPECT_GT(dev.used_pages(), 0u);
    // Keys in flushed runs are still readable (with a device page read).
    Value v;
    ASSERT_TRUE(dev.Get(TestKey(0), &v).ok());
    EXPECT_EQ(v.seed(), 0u);
  });
}

TEST(DevLsmTest, RunCompactionMergesAndReclaims) {
  SimWorld world;
  world.Run([&] {
    DevLsmOptions opts = SmallDevOptions();
    opts.compaction_enabled = true;
    opts.l0_run_trigger = 3;
    DevLsm dev(world.ssd.get(), 0, opts);
    // Overwrite the same small key set across many flush generations.
    for (int round = 0; round < 8; round++) {
      for (int i = 0; i < 40; i++) {
        ASSERT_TRUE(
            dev.Put(TestKey(i), Value::Synthetic(round * 100 + i, 4096)).ok());
      }
    }
    EXPECT_GT(dev.stats().compactions, 0u);
    Value v;
    ASSERT_TRUE(dev.Get(TestKey(5), &v).ok());
    EXPECT_EQ(v.seed(), 705u);  // round 7
  });
}

TEST(DevLsmTest, BulkScanStreamsSortedNewestOnly) {
  SimWorld world;
  world.Run([&] {
    DevLsm dev(world.ssd.get(), 0, SmallDevOptions());
    for (int i = 50; i > 0; i--) {
      ASSERT_TRUE(dev.Put(TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_TRUE(dev.Put(TestKey(25), Value::Synthetic(999, 4096)).ok());
    ASSERT_TRUE(dev.Delete(TestKey(10)).ok());

    std::vector<std::string> keys;
    int tombstones = 0;
    uint64_t seed25 = 0;
    ASSERT_TRUE(dev.BulkScan([&](const DevLsm::ScanEntry& e) {
                    keys.push_back(e.key);
                    if (e.tombstone) tombstones++;
                    if (e.key == TestKey(25)) seed25 = e.value.seed();
                  })
                    .ok());
    EXPECT_EQ(keys.size(), 50u);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(tombstones, 1);  // the deleted key streams as a tombstone
    EXPECT_EQ(seed25, 999u);   // newest version only
    EXPECT_GT(dev.stats().scan_chunks, 1u);  // multiple 64 KiB DMA chunks
  });
}

TEST(DevLsmTest, ResetFreesEverything) {
  SimWorld world;
  world.Run([&] {
    DevLsm dev(world.ssd.get(), 0, SmallDevOptions());
    for (int i = 0; i < 60; i++) {
      ASSERT_TRUE(dev.Put(TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_FALSE(dev.Empty());
    EXPECT_GT(dev.used_pages(), 0u);
    ASSERT_TRUE(dev.Reset().ok());
    EXPECT_TRUE(dev.Empty());
    EXPECT_EQ(dev.used_pages(), 0u);
    Value v;
    EXPECT_TRUE(dev.Get(TestKey(1), &v).IsNotFound());
    // Usable again after reset.
    ASSERT_TRUE(dev.Put("fresh", Value::Inline("x")).ok());
    ASSERT_TRUE(dev.Get("fresh", &v).ok());
  });
}

TEST(DevLsmTest, IteratorBatchedSeekNext) {
  SimWorld world;
  world.Run([&] {
    DevLsm dev(world.ssd.get(), 0, SmallDevOptions());
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(dev.Put(TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    auto it = dev.NewIterator();
    it->Seek(TestKey(30));
    int count = 0;
    for (; it->Valid(); it->Next()) {
      EXPECT_EQ(it->key(), TestKey(30 + count));
      count++;
    }
    EXPECT_EQ(count, 70);
    it->SeekToFirst();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key(), TestKey(0));
  });
}

TEST(DevLsmTest, IteratorPaysDevicePerBatch) {
  SimWorld world;
  world.Run([&] {
    DevLsm dev(world.ssd.get(), 0, SmallDevOptions());
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(dev.Put(TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    uint64_t reads_before = world.ssd->nand().bytes_read();
    auto it = dev.NewIterator();
    it->SeekToFirst();
    while (it->Valid()) it->Next();
    // 100 * ~4 KiB entries at 64 KiB batches -> several uncached NAND reads.
    EXPECT_GT(world.ssd->nand().bytes_read(), reads_before + 300'000);
  });
}

TEST(DevLsmTest, QuotaExhaustionSurfacesNoSpace) {
  ssd::SsdConfig cfg = SimWorld::DefaultSsdConfig();
  cfg.capacity_bytes = 16ull << 20;  // tiny device: 4 MiB KV region
  SimWorld world(cfg);
  world.Run([&] {
    DevLsmOptions opts = SmallDevOptions();
    opts.compaction_enabled = false;
    DevLsm dev(world.ssd.get(), 0, opts);
    Status s;
    for (int i = 0; i < 4000 && s.ok(); i++) {
      s = dev.Put(TestKey(i), Value::Synthetic(i, 4096));
    }
    EXPECT_TRUE(s.IsNoSpace());
  });
}

TEST(DevLsmTest, CommandsRideTheSharedPcieLink) {
  SimWorld world;
  world.Run([&] {
    DevLsm dev(world.ssd.get(), 0, SmallDevOptions());
    uint64_t pcie_before = world.ssd->pcie().total_bytes();
    ASSERT_TRUE(dev.Put("k", Value::Synthetic(1, 4096)).ok());
    // PUT moved ~4 KiB + command overhead over PCIe.
    EXPECT_GE(world.ssd->pcie().total_bytes(), pcie_before + 4096);
    EXPECT_EQ(world.ssd->trace().CountOf(ssd::nvme::Opcode::kKvStore), 1u);
  });
}

}  // namespace
}  // namespace kvaccel::devlsm
