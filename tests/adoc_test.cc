#include <gtest/gtest.h>

#include <memory>

#include "adoc/adoc_tuner.h"
#include "tests/test_util.h"

namespace kvaccel::adoc {
namespace {

using test::SimWorld;
using test::TestKey;

AdocOptions SmallAdocOptions() {
  AdocOptions o;
  o.tuning_period = FromMillis(10);
  o.min_write_buffer = 256 << 10;
  o.max_write_buffer = 1 << 20;
  return o;
}

TEST(AdocTest, ScalesThreadsUpUnderPressure) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    AdocOptions aopts = SmallAdocOptions();
    aopts.max_compaction_threads = 4;
    AdocTuner tuner(db.get(), &world.env, opts, aopts);
    tuner.Start();

    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_GT(tuner.stats().tuning_rounds, 0u);
    EXPECT_GT(tuner.stats().thread_increases, 0u);
    EXPECT_GT(db->compaction_threads(), 1);
    tuner.Stop();
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(AdocTest, DecaysWhenCalm) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    AdocOptions aopts = SmallAdocOptions();
    aopts.calm_periods_to_decay = 3;
    AdocTuner tuner(db.get(), &world.env, opts, aopts);
    tuner.Start();

    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    int peak = db->compaction_threads();
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    world.env.SleepFor(FromSecs(2));  // calm: tuner should decay
    EXPECT_LE(db->compaction_threads(), peak);
    EXPECT_GT(tuner.stats().thread_decreases + tuner.stats().buffer_decreases,
              0u);
    tuner.Stop();
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(AdocTest, RespectsThreadBudget) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    AdocOptions aopts = SmallAdocOptions();
    aopts.max_compaction_threads = 2;
    AdocTuner tuner(db.get(), &world.env, opts, aopts);
    tuner.Start();
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_LE(db->compaction_threads(), 2);
    tuner.Stop();
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(AdocTest, GrowsBufferWhenThreadsSaturated) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    AdocOptions aopts = SmallAdocOptions();
    aopts.max_compaction_threads = 1;  // thread knob pinned
    AdocTuner tuner(db.get(), &world.env, opts, aopts);
    tuner.Start();
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_GT(tuner.stats().buffer_increases, 0u);
    EXPECT_GT(db->write_buffer_size(), 256u << 10);
    tuner.Stop();
    ASSERT_TRUE(db->Close().ok());
  });
}

// With a tight hard pending-compaction limit, the "absorb the burst with a
// bigger batch" move would steer straight into the hard stall, so every
// growth attempt must be vetoed (and counted) instead of applied.
TEST(AdocTest, ClampsBufferGrowthAgainstHardPendingLimit) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    // Headroom to the hard limit is at most 512 KiB; split across the two
    // queueable write buffers and halved for safety, the ceiling lands
    // below the current 256 KiB buffer — growth must always clamp.
    opts.hard_pending_compaction_bytes_limit = 512 << 10;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    AdocOptions aopts = SmallAdocOptions();
    aopts.max_compaction_threads = 1;  // thread knob pinned: buffer path only
    AdocTuner tuner(db.get(), &world.env, opts, aopts);
    tuner.Start();
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_GT(tuner.stats().buffer_growth_clamped, 0u);
    EXPECT_EQ(tuner.stats().buffer_increases, 0u);
    EXPECT_EQ(db->write_buffer_size(), 256u << 10);
    tuner.Stop();
    ASSERT_TRUE(db->Close().ok());
  });
}

// Calm decay moves one knob per calm window, in LIFO order: the buffer
// (grown last) must be fully back at its floor before the first thread
// decrease happens.
TEST(AdocTest, CalmDecayShrinksBufferBeforeThreads) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    AdocOptions aopts = SmallAdocOptions();
    aopts.max_compaction_threads = 2;  // saturates fast, then buffer grows
    aopts.calm_periods_to_decay = 2;
    AdocTuner tuner(db.get(), &world.env, opts, aopts);
    tuner.Start();

    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_GT(db->compaction_threads(), 1);
    ASSERT_GT(db->write_buffer_size(), aopts.min_write_buffer);
    int peak_threads = db->compaction_threads();

    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    // Walk calm time in small steps and catch the first thread decrease:
    // by then the buffer knob must already have decayed all the way down.
    bool threads_decayed = false;
    for (int step = 0; step < 400 && !threads_decayed; step++) {
      world.env.SleepFor(FromMillis(10));
      if (db->compaction_threads() < peak_threads) {
        threads_decayed = true;
        EXPECT_EQ(db->write_buffer_size(), aopts.min_write_buffer)
            << "thread knob decayed before the buffer knob finished";
      }
    }
    EXPECT_TRUE(threads_decayed);
    EXPECT_GT(tuner.stats().buffer_decreases, 0u);
    tuner.Stop();
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace kvaccel::adoc
