#include <gtest/gtest.h>

#include <memory>

#include "adoc/adoc_tuner.h"
#include "tests/test_util.h"

namespace kvaccel::adoc {
namespace {

using test::SimWorld;
using test::TestKey;

AdocOptions SmallAdocOptions() {
  AdocOptions o;
  o.tuning_period = FromMillis(10);
  o.min_write_buffer = 256 << 10;
  o.max_write_buffer = 1 << 20;
  return o;
}

TEST(AdocTest, ScalesThreadsUpUnderPressure) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    AdocOptions aopts = SmallAdocOptions();
    aopts.max_compaction_threads = 4;
    AdocTuner tuner(db.get(), &world.env, opts, aopts);
    tuner.Start();

    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_GT(tuner.stats().tuning_rounds, 0u);
    EXPECT_GT(tuner.stats().thread_increases, 0u);
    EXPECT_GT(db->compaction_threads(), 1);
    tuner.Stop();
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(AdocTest, DecaysWhenCalm) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    AdocOptions aopts = SmallAdocOptions();
    aopts.calm_periods_to_decay = 3;
    AdocTuner tuner(db.get(), &world.env, opts, aopts);
    tuner.Start();

    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    int peak = db->compaction_threads();
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    world.env.SleepFor(FromSecs(2));  // calm: tuner should decay
    EXPECT_LE(db->compaction_threads(), peak);
    EXPECT_GT(tuner.stats().thread_decreases + tuner.stats().buffer_decreases,
              0u);
    tuner.Stop();
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(AdocTest, RespectsThreadBudget) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    AdocOptions aopts = SmallAdocOptions();
    aopts.max_compaction_threads = 2;
    AdocTuner tuner(db.get(), &world.env, opts, aopts);
    tuner.Start();
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_LE(db->compaction_threads(), 2);
    tuner.Stop();
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(AdocTest, GrowsBufferWhenThreadsSaturated) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    AdocOptions aopts = SmallAdocOptions();
    aopts.max_compaction_threads = 1;  // thread knob pinned
    AdocTuner tuner(db.get(), &world.env, opts, aopts);
    tuner.Start();
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_GT(tuner.stats().buffer_increases, 0u);
    EXPECT_GT(db->write_buffer_size(), 256u << 10);
    tuner.Stop();
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace kvaccel::adoc
