// Shared fixtures: spin up a simulation world (env, hybrid SSD, file system,
// host CPU) and run a test body inside a simulated thread.
#pragma once

#include <functional>

#include "fs/simfs.h"
#include "lsm/db.h"
#include "sim/cpu_pool.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

namespace kvaccel::test {

struct SimWorld {
  sim::SimEnv env;
  ssd::SsdConfig ssd_config;
  std::unique_ptr<ssd::HybridSsd> ssd;
  std::unique_ptr<fs::SimFs> fs;
  std::unique_ptr<sim::CpuPool> host_cpu;

  explicit SimWorld(ssd::SsdConfig config = DefaultSsdConfig()) {
    ssd_config = config;
    ssd = std::make_unique<ssd::HybridSsd>(&env, ssd_config);
    fs = std::make_unique<fs::SimFs>(ssd.get(), 0);
    host_cpu = std::make_unique<sim::CpuPool>(&env, "host", 8);
  }

  static ssd::SsdConfig DefaultSsdConfig() {
    ssd::SsdConfig c;
    c.capacity_bytes = 2ull << 30;  // 2 GiB: quick tests, room for levels
    return c;
  }

  lsm::DbEnv MakeDbEnv() {
    return lsm::DbEnv{&env, ssd.get(), fs.get(), host_cpu.get()};
  }

  // Runs `body` as the main simulated thread and drives the sim to completion.
  void Run(std::function<void()> body) {
    env.Spawn("test-main", std::move(body));
    env.Run();
  }
};

// Small DbOptions so flush/compaction trigger quickly in tests.
inline lsm::DbOptions SmallDbOptions() {
  lsm::DbOptions o;
  o.write_buffer_size = 256 << 10;  // 256 KiB
  o.max_bytes_for_level_base = 1 << 20;
  o.target_file_size = 256 << 10;
  o.block_size = 4 << 10;
  o.block_cache_capacity = 1 << 20;
  o.l0_compaction_trigger = 4;
  o.l0_slowdown_writes_trigger = 8;
  o.l0_stop_writes_trigger = 12;
  o.compaction_threads = 2;
  return o;
}

inline std::string TestKey(uint64_t n) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(n));
  return buf;
}

}  // namespace kvaccel::test
