// Device-offloaded compaction (DESIGN.md §13): the NDP COMPACT engine, the
// host/device placement planner, and the integrated KvaccelDB offload path —
// including the device-error fallback and same-seed report byte-identity.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/kvaccel_db.h"
#include "harness/report_json.h"
#include "harness/workload.h"
#include "ndp/ndp_device.h"
#include "ndp/offload_planner.h"
#include "sim/fault.h"
#include "tests/test_util.h"

namespace kvaccel::ndp {
namespace {

using test::SimWorld;
using test::TestKey;

lsm::OffloadJobInfo BulkJob(uint64_t bytes = 8 << 20) {
  lsm::OffloadJobInfo j;
  j.level = 0;
  j.output_level = 1;
  j.input_bytes = bytes;
  j.input_files = 4;
  return j;
}

lsm::OffloadJobInfo IntraL0Job(uint64_t bytes = 8 << 20) {
  lsm::OffloadJobInfo j = BulkJob(bytes);
  j.output_level = 0;
  j.is_intra_l0 = true;
  return j;
}

TEST(NdpDeviceTest, CompactLifecycleBurnsNdpCoresAndShipsCapsules) {
  SimWorld world;
  NdpDevice dev(world.ssd.get());
  world.Run([&] {
    CompactDescriptor d;
    d.level = 0;
    d.output_level = 1;
    d.input_bytes = 4 << 20;
    d.input_files = 4;
    uint64_t cmd_id = 0;
    ASSERT_TRUE(dev.BeginCompact(d, &cmd_id).ok());
    EXPECT_GT(cmd_id, 0u);
    Nanos before = world.env.Now();
    dev.MergeCpu(1 << 20);
    EXPECT_GT(world.env.Now(), before);  // merge cost is real virtual time
    ASSERT_TRUE(dev.FinishCompact(cmd_id, true, 2, 1 << 20).ok());

    const NdpStats& s = dev.stats();
    EXPECT_EQ(s.commands, 1u);
    EXPECT_EQ(s.jobs_completed, 1u);
    EXPECT_EQ(s.jobs_failed, 0u);
    EXPECT_EQ(s.merge_bytes, static_cast<uint64_t>(1 << 20));
    // Only the descriptor and the result capsule cross PCIe — never data.
    EXPECT_GT(s.command_bytes, 0u);
    EXPECT_GT(s.result_bytes, 0u);
    EXPECT_LT(s.command_bytes + s.result_bytes, 8u << 10);
    EXPECT_GT(dev.cpu()->busy_seconds(), 0.0);
  });
}

TEST(NdpDeviceTest, FailedJobReportsNoCapsule) {
  SimWorld world;
  NdpDevice dev(world.ssd.get());
  world.Run([&] {
    uint64_t cmd_id = 0;
    ASSERT_TRUE(dev.BeginCompact(CompactDescriptor(), &cmd_id).ok());
    ASSERT_TRUE(dev.FinishCompact(cmd_id, false, 0, 0).ok());
    EXPECT_EQ(dev.stats().jobs_failed, 1u);
    EXPECT_EQ(dev.stats().jobs_completed, 0u);
    EXPECT_EQ(dev.stats().result_bytes, 0u);
  });
}

TEST(OffloadPlannerTest, BulkJobsOffloadIntraL0StaysHostWhenIdle) {
  SimWorld world;
  NdpDevice dev(world.ssd.get());
  world.Run([&] {
    OffloadPlanner planner(&world.env, world.host_cpu.get(), dev.cpu(),
                           PlannerOptions());
    // Idle host: bulk merges go to the device, intra-L0 stays local, and
    // jobs under min_job_bytes aren't worth the command round-trip.
    EXPECT_TRUE(planner.ShouldOffload(BulkJob()));
    EXPECT_FALSE(planner.ShouldOffload(IntraL0Job()));
    EXPECT_FALSE(planner.ShouldOffload(BulkJob(/*bytes=*/4 << 10)));
    EXPECT_EQ(planner.stats().device_jobs, 1u);
    EXPECT_EQ(planner.stats().host_jobs, 2u);
  });
}

TEST(OffloadPlannerTest, CpuPressureFlipsIntraL0ToDeviceWithHysteresis) {
  SimWorld world;
  NdpDevice dev(world.ssd.get());
  // Saturate every host core for the first simulated second.
  for (int i = 0; i < 8; i++) {
    world.env.Spawn("burn" + std::to_string(i),
                    [&] { world.host_cpu->Consume(1e9); });
  }
  world.Run([&] {
    OffloadPlanner planner(&world.env, world.host_cpu.get(), dev.cpu(),
                           PlannerOptions());
    world.env.SleepFor(FromMillis(400));  // trailing window is now all-busy
    // flip_streak = 2: the first high sample doesn't flip yet.
    EXPECT_FALSE(planner.ShouldOffload(IntraL0Job()));
    EXPECT_TRUE(planner.ShouldOffload(IntraL0Job()));
    EXPECT_EQ(planner.stats().flips, 1u);

    // A stall already in progress vetoes the offload: host cores un-gate
    // writers faster.
    planner.set_signals_provider([] {
      lsm::StallSignals s;
      s.stalled = true;
      return s;
    });
    EXPECT_FALSE(planner.ShouldOffload(IntraL0Job()));
  });
}

TEST(OffloadPlannerTest, DeviceFailureOpensCooldownThatExpires) {
  SimWorld world;
  NdpDevice dev(world.ssd.get());
  world.Run([&] {
    OffloadPlanner planner(&world.env, world.host_cpu.get(), dev.cpu(),
                           PlannerOptions());
    ASSERT_TRUE(planner.ShouldOffload(BulkJob()));
    planner.ReportDeviceFailure();
    EXPECT_FALSE(planner.ShouldOffload(BulkJob()));  // circuit breaker open
    EXPECT_EQ(planner.stats().cooldown_rejects, 1u);
    EXPECT_EQ(planner.stats().failures, 1u);
    world.env.SleepFor(PlannerOptions().failure_cooldown + FromMillis(1));
    EXPECT_TRUE(planner.ShouldOffload(BulkJob()));  // breaker closed again
  });
}

TEST(OffloadPlannerTest, ForceModeIgnoresSizeAndCooldown) {
  SimWorld world;
  NdpDevice dev(world.ssd.get());
  world.Run([&] {
    PlannerOptions opts;
    opts.mode = OffloadMode::kForce;
    OffloadPlanner planner(&world.env, world.host_cpu.get(), dev.cpu(), opts);
    planner.ReportDeviceFailure();
    EXPECT_TRUE(planner.ShouldOffload(BulkJob(/*bytes=*/1)));
    EXPECT_TRUE(planner.ShouldOffload(IntraL0Job()));
  });
}

core::KvaccelOptions NdpKvOptions(NdpDevice* dev, OffloadMode mode) {
  core::KvaccelOptions o;
  o.dev.memtable_bytes = 128 << 10;
  o.dev.dma_chunk = 64 << 10;
  o.rollback = core::RollbackScheme::kDisabled;
  o.ndp_device = dev;
  o.ndp_planner.mode = mode;
  return o;
}

// Writes enough overlapping data to force compactions, then verifies the
// newest version of every key.
void FillAndVerify(core::KvaccelDB* db, int writes, int keys) {
  for (int i = 0; i < writes; i++) {
    ASSERT_TRUE(db->Put({}, TestKey(i % keys),
                        Value::Synthetic(static_cast<uint64_t>(i), 4096))
                    .ok());
  }
  Value v;
  for (int k = 0; k < keys; k++) {
    int last = (writes - keys) + k;
    ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
    EXPECT_EQ(v.seed(), static_cast<uint64_t>(last)) << k;
  }
}

TEST(NdpIntegrationTest, ForceModeRunsCompactionsDeviceSide) {
  SimWorld world;
  NdpDevice dev(world.ssd.get());
  world.Run([&] {
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(core::KvaccelDB::Open(test::SmallDbOptions(),
                                      NdpKvOptions(&dev, OffloadMode::kForce),
                                      world.MakeDbEnv(), &db)
                    .ok());
    FillAndVerify(db.get(), 2000, 500);
    const lsm::DbStats& s = db->main()->stats();
    EXPECT_GT(s.ndp_compactions, 0u);
    EXPECT_GT(s.ndp_bytes_written, 0u);
    EXPECT_EQ(s.ndp_fallbacks, 0u);
    EXPECT_EQ(dev.stats().jobs_completed, s.ndp_compactions);
    EXPECT_GT(dev.cpu()->busy_seconds(), 0.0);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(NdpIntegrationTest, TransientRejectsFallBackToHostAndPreserveData) {
  SimWorld world;
  NdpDevice dev(world.ssd.get());
  sim::FaultInjector inj(&world.env, /*seed=*/17);
  world.env.set_fault_injector(&inj);
  // Every COMPACT command is rejected: the planner reports the failure and
  // the whole stream of compactions runs host-side instead.
  sim::FaultRule rule;
  rule.probability = 1.0;
  inj.Arm("ndp.compact.transient", rule);
  world.Run([&] {
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(core::KvaccelDB::Open(test::SmallDbOptions(),
                                      NdpKvOptions(&dev, OffloadMode::kForce),
                                      world.MakeDbEnv(), &db)
                    .ok());
    FillAndVerify(db.get(), 2000, 500);
    const lsm::DbStats& s = db->main()->stats();
    EXPECT_EQ(s.ndp_compactions, 0u);   // nothing completed device-side
    EXPECT_GT(s.compaction_count, 0u);  // the host did the work instead
    EXPECT_GT(dev.stats().rejected, 0u);
    EXPECT_GT(db->offload_planner()->stats().failures, 0u);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(NdpIntegrationTest, OffAndForceConvergeToSameData) {
  auto run = [](OffloadMode mode, uint64_t* device_jobs) {
    SimWorld world;
    NdpDevice dev(world.ssd.get());
    std::string digest;
    world.Run([&] {
      std::unique_ptr<core::KvaccelDB> db;
      ASSERT_TRUE(core::KvaccelDB::Open(test::SmallDbOptions(),
                                        NdpKvOptions(&dev, mode),
                                        world.MakeDbEnv(), &db)
                      .ok());
      for (int i = 0; i < 2000; i++) {
        ASSERT_TRUE(db->Put({}, TestKey(i % 500),
                            Value::Synthetic(static_cast<uint64_t>(i), 4096))
                        .ok());
      }
      auto it = db->NewIterator({});
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        digest += it->key().ToString();
        digest += ':';
        digest += std::to_string(Value::DecodeOrDie(it->value()).seed());
        digest += '\n';
      }
      ASSERT_TRUE(it->status().ok());
      *device_jobs = db->main()->stats().ndp_compactions;
      ASSERT_TRUE(db->Close().ok());
    });
    return digest;
  };
  uint64_t off_jobs = 0, force_jobs = 0;
  std::string off = run(OffloadMode::kOff, &off_jobs);
  std::string force = run(OffloadMode::kForce, &force_jobs);
  EXPECT_EQ(off_jobs, 0u);
  EXPECT_GT(force_jobs, 0u);
  EXPECT_FALSE(off.empty());
  EXPECT_EQ(off, force);  // placement never changes the logical contents
}

TEST(NdpReportTest, SameSeedAutoReportsAreByteIdentical) {
  auto report = [] {
    harness::BenchConfig c;
    c.scale = 0.03125;
    c.sut.kind = harness::SystemKind::kKvaccel;
    c.sut.compaction_threads = 1;
    c.sut.rollback = core::RollbackScheme::kDisabled;
    c.sut.ndp_mode = OffloadMode::kAuto;
    c.workload.duration = FromSecs(8);
    harness::RunResult r = harness::RunBenchmark(c);
    return harness::JsonReportString(c, {r});
  };
  std::string a = report();
  std::string b = report();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"ndp\""), std::string::npos);
}

}  // namespace
}  // namespace kvaccel::ndp
