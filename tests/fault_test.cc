// Fault-injection coverage: injector semantics, transient-error retries,
// background-error latching, checksum verification, power-cut reopen, named
// crash points with recovery verification, and KVACCEL's Dev-LSM degradation
// (retry -> circuit breaker -> host-path fallback) plus external-device crash
// recovery. All runs are deterministic from the injector seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/db_checker.h"
#include "common/random.h"
#include "core/kvaccel_db.h"
#include "lsm/db.h"
#include "lsm/wal.h"
#include "sim/fault.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using test::SimWorld;
using test::TestKey;

core::KvaccelOptions SmallKvOptions() {
  core::KvaccelOptions o;
  o.dev.memtable_bytes = 128 << 10;
  o.dev.dma_chunk = 64 << 10;
  o.rollback = core::RollbackScheme::kDisabled;
  return o;
}

// ---------------------------------------------------------------------------
// FaultInjector semantics
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, NthHitFiresExactlyOnce) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 1);
    sim::FaultRule rule;
    rule.nth_hit = 3;
    rule.max_fires = 1;
    inj.Arm("x", rule);
    EXPECT_FALSE(inj.ShouldFail("x"));
    EXPECT_FALSE(inj.ShouldFail("x"));
    EXPECT_TRUE(inj.ShouldFail("x"));
    EXPECT_FALSE(inj.ShouldFail("x"));
    EXPECT_EQ(inj.hits("x"), 4u);
    EXPECT_EQ(inj.fires("x"), 1u);
    EXPECT_EQ(inj.total_fires(), 1u);
    EXPECT_FALSE(inj.ShouldFail("unarmed"));
  });
}

TEST(FaultInjectorTest, ProbabilityStreamIsDeterministic) {
  SimWorld world;
  world.Run([&] {
    sim::FaultRule rule;
    rule.probability = 0.3;
    std::vector<bool> a, b;
    for (int run = 0; run < 2; run++) {
      sim::FaultInjector inj(&world.env, 77);
      inj.Arm("x", rule);
      for (int i = 0; i < 200; i++) {
        (run == 0 ? a : b).push_back(inj.ShouldFail("x"));
      }
    }
    EXPECT_EQ(a, b);
    EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
    EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
  });
}

TEST(FaultInjectorTest, WindowAndDisarmAndCrashLatch) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 5);
    sim::FaultRule rule;
    rule.probability = 1.0;
    rule.window_start = world.env.Now() + FromMillis(10);
    rule.window_end = world.env.Now() + FromMillis(20);
    inj.Arm("x", rule);
    EXPECT_FALSE(inj.ShouldFail("x"));  // before the window
    world.env.SleepFor(FromMillis(15));
    EXPECT_TRUE(inj.ShouldFail("x"));  // inside
    world.env.SleepFor(FromMillis(10));
    EXPECT_FALSE(inj.ShouldFail("x"));  // after

    inj.Disarm("x");
    world.env.SleepFor(FromMillis(1));
    EXPECT_FALSE(inj.ShouldFail("x"));

    sim::FaultRule crash;
    crash.nth_hit = 1;
    inj.Arm("crash.test", crash);
    EXPECT_FALSE(inj.crashed());
    EXPECT_TRUE(inj.ShouldFail("crash.test"));
    EXPECT_TRUE(inj.crashed());
    EXPECT_TRUE(sim::SimCrashed(&world.env) == false);  // not registered yet
    world.env.set_fault_injector(&inj);
    EXPECT_TRUE(sim::SimCrashed(&world.env));
    inj.ClearCrash();
    EXPECT_FALSE(sim::SimCrashed(&world.env));
  });
}

// ---------------------------------------------------------------------------
// LogReader: torn tail vs mid-log corruption (regression)
// ---------------------------------------------------------------------------

TEST(WalReaderTest, TornTailToleratedCorruptionReported) {
  SimWorld world;
  world.Run([&] {
    fs::SimFs& fs = *world.fs;
    {
      std::unique_ptr<fs::WritableFile> f;
      ASSERT_TRUE(fs.NewWritableFile("wal", &f).ok());
      lsm::LogWriter w(std::move(f));
      ASSERT_TRUE(w.AddRecord("one", 3).ok());
      ASSERT_TRUE(w.AddRecord("two", 3).ok());
      ASSERT_TRUE(w.AddRecord("three", 5).ok());
      ASSERT_TRUE(w.Close().ok());
    }
    std::string raw;
    {
      std::unique_ptr<fs::RandomAccessFile> r;
      ASSERT_TRUE(fs.NewRandomAccessFile("wal", &r).ok());
      ASSERT_TRUE(r->Read(0, 1 << 20, &raw).ok());
    }
    ASSERT_EQ(raw.size(), 3u * 8 + 3 + 3 + 5);  // [crc32|len] framing

    auto write_file = [&](const std::string& name, const std::string& bytes) {
      std::unique_ptr<fs::WritableFile> f;
      ASSERT_TRUE(fs.NewWritableFile(name, &f).ok());
      ASSERT_TRUE(f->Append(Slice(bytes)).ok());
      ASSERT_TRUE(f->Close().ok());
    };

    // Shape 1: torn tail. The last record loses its final 3 bytes — the two
    // whole records read back and iteration ends cleanly (the normal
    // crash-recovery posture).
    write_file("wal-torn", raw.substr(0, raw.size() - 3));
    {
      std::unique_ptr<fs::RandomAccessFile> r;
      ASSERT_TRUE(fs.NewRandomAccessFile("wal-torn", &r).ok());
      lsm::LogReader reader(std::move(r));
      std::string payload;
      Status s;
      ASSERT_TRUE(reader.ReadRecord(&payload, &s));
      EXPECT_EQ(payload, "one");
      ASSERT_TRUE(reader.ReadRecord(&payload, &s));
      EXPECT_EQ(payload, "two");
      EXPECT_FALSE(reader.ReadRecord(&payload, &s));
      EXPECT_TRUE(s.ok()) << s.ToString();
    }

    // Shape 2: a CRC-failing record with a valid record after it cannot be a
    // torn tail — that is data corruption and must be reported, not silently
    // treated as end-of-log (which would drop record three).
    std::string corrupt = raw;
    corrupt[11 + 8] ^= 0x40;  // flip a bit inside record two's payload
    write_file("wal-corrupt", corrupt);
    {
      std::unique_ptr<fs::RandomAccessFile> r;
      ASSERT_TRUE(fs.NewRandomAccessFile("wal-corrupt", &r).ok());
      lsm::LogReader reader(std::move(r));
      std::string payload;
      Status s;
      ASSERT_TRUE(reader.ReadRecord(&payload, &s));
      EXPECT_EQ(payload, "one");
      EXPECT_FALSE(reader.ReadRecord(&payload, &s));
      EXPECT_TRUE(s.IsCorruption()) << s.ToString();
    }
  });
}

// ---------------------------------------------------------------------------
// Transient-error retries and the background-error latch
// ---------------------------------------------------------------------------

TEST(RetryTest, TransientFlushErrorRetriesAndSucceeds) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 11);
    world.env.set_fault_injector(&inj);
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db)
                    .ok());
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    // One transient device-write failure: the flush must retry and succeed.
    sim::FaultRule rule;
    rule.probability = 1.0;
    rule.max_fires = 1;
    inj.Arm("ssd.block.write.transient", rule);
    ASSERT_TRUE(db->FlushAll().ok());
    EXPECT_EQ(inj.fires("ssd.block.write.transient"), 1u);
    EXPECT_GE(db->stats().io_retries, 1u);
    EXPECT_EQ(db->stats().background_errors, 0u);
    EXPECT_TRUE(db->GetBackgroundError().ok());
    Value v;
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(i));
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(RetryTest, ExhaustedRetriesLatchBackgroundErrorAndGoReadOnly) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 12);
    world.env.set_fault_injector(&inj);
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db)
                    .ok());
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    // Hard device-write failure: the retry budget runs out, the background
    // error latches (RocksDB-style) and the DB refuses further writes.
    sim::FaultRule rule;
    rule.probability = 1.0;
    inj.Arm("ssd.block.write.transient", rule);
    Status s = db->FlushAll();
    EXPECT_FALSE(s.ok());
    EXPECT_FALSE(db->GetBackgroundError().ok());
    EXPECT_EQ(db->stats().background_errors, 1u);
    EXPECT_GE(db->stats().io_retries,
              static_cast<uint64_t>(test::SmallDbOptions().max_io_retries));
    EXPECT_FALSE(db->Put({}, "new-key", Value::Inline("v")).ok());
    // Reads keep working (data is still host-side in the retained memtable).
    Value v;
    ASSERT_TRUE(db->Get({}, TestKey(7), &v).ok());
    EXPECT_EQ(v.seed(), 7u);
    inj.Disarm("ssd.block.write.transient");
    ASSERT_TRUE(db->Close().ok());
  });
}

// ---------------------------------------------------------------------------
// Checksum verification end to end
// ---------------------------------------------------------------------------

TEST(ChecksumTest, BitFlipSurfacesCorruptionOnGet) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 13);
    world.env.set_fault_injector(&inj);
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db)
                    .ok());
    for (int i = 0; i < 60; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    sim::FaultRule rot;
    rot.probability = 1.0;
    inj.Arm("simfs.read.bitflip", rot);
    Value v;
    Status s = db->Get({}, TestKey(5), &v);
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
    inj.Disarm("simfs.read.bitflip");
    ASSERT_TRUE(db->Get({}, TestKey(5), &v).ok());
    EXPECT_EQ(v.seed(), 5u);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(ChecksumTest, CompactionReadSurfacesCorruption) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 14);
    world.env.set_fault_injector(&inj);
    lsm::DbOptions opts = test::SmallDbOptions();
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    // Three quiet L0 files (trigger is 4), then arm bitrot and add the
    // fourth: the compaction's verified reads must surface Corruption as a
    // latched background error instead of writing garbage downhill.
    for (int f = 0; f < 3; f++) {
      for (int i = 0; i < 60; i++) {
        ASSERT_TRUE(
            db->Put({}, TestKey(f * 1000 + i), Value::Synthetic(i, 4096))
                .ok());
      }
      ASSERT_TRUE(db->FlushAll().ok());
    }
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    sim::FaultRule rot;
    rot.probability = 1.0;
    inj.Arm("simfs.read.bitflip", rot);
    for (int i = 0; i < 60; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(3000 + i), Value::Synthetic(i, 4096))
                      .ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    for (int i = 0; i < 5000 && db->GetBackgroundError().ok(); i++) {
      world.env.SleepFor(FromMillis(1));
    }
    Status bg = db->GetBackgroundError();
    EXPECT_TRUE(bg.IsCorruption()) << bg.ToString();
    EXPECT_GE(db->stats().background_errors, 1u);
    inj.Disarm("simfs.read.bitflip");
    ASSERT_TRUE(db->Close().ok());
  });
}

// ---------------------------------------------------------------------------
// Full power-cut reopen (SimFs::DropAllDirty + DB reopen)
// ---------------------------------------------------------------------------

TEST(PowerCutTest, SyncedWalSurvivesUnsyncedTailIsPrefix) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 15);
    world.env.set_fault_injector(&inj);
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.write_buffer_size = 4 << 20;  // no flush: pure WAL recovery
    {
      std::unique_ptr<lsm::DB> db;
      ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
      for (int i = 0; i < 10; i++) {
        ASSERT_TRUE(db->Put(lsm::WriteOptions{.sync = true}, TestKey(i),
                            Value::Synthetic(i, 4096))
                        .ok());
      }
      // Unsynced tail, big enough that part of the WAL was written back to
      // the device (256 KiB chunks) but never covered by a cache flush.
      for (int i = 100; i < 180; i++) {
        ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
      }
      ASSERT_TRUE(db->Close().ok());
    }
    // Power cut that additionally tears the device write cache.
    sim::FaultRule torn;
    torn.probability = 1.0;
    inj.Arm("simfs.powercut.torn", torn);
    world.fs->DropAllDirty();
    inj.Disarm("simfs.powercut.torn");

    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    Value v;
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(i), &v).ok()) << i;  // synced: durable
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(i));
    }
    // The unsynced tail may survive partially, but only as a prefix of the
    // write order — a gap would mean recovery replayed past a torn record.
    bool missing_seen = false;
    for (int i = 100; i < 180; i++) {
      Status s = db->Get({}, TestKey(i), &v);
      if (s.IsNotFound()) {
        missing_seen = true;
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        EXPECT_FALSE(missing_seen) << "hole in recovered WAL tail at " << i;
        EXPECT_EQ(v.seed(), static_cast<uint64_t>(i));
      }
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(PowerCutTest, SstAndManifestSurviveTornPowerCut) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 16);
    world.env.set_fault_injector(&inj);
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.wal_sync = true;
    {
      std::unique_ptr<lsm::DB> db;
      ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
      // Several flushes + manifest edits, then more synced WAL-only writes.
      for (int i = 0; i < 200; i++) {
        ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
      }
      ASSERT_TRUE(db->FlushAll().ok());
      ASSERT_TRUE(db->WaitForCompactionIdle().ok());
      for (int i = 200; i < 250; i++) {
        ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
      }
      ASSERT_TRUE(db->Close().ok());
    }
    sim::FaultRule torn;
    torn.probability = 1.0;
    inj.Arm("simfs.powercut.torn", torn);
    world.fs->DropAllDirty();
    inj.Disarm("simfs.powercut.torn");

    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    // Everything was acknowledged with a synced WAL (or sits in synced
    // SSTs + manifest): the recovered key set matches exactly.
    Value v;
    for (int i = 0; i < 250; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(i));
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

// Regression: the manifest's next-file counter is durable only as of the
// last LogAndApply, but WAL numbers are allocated without one. A reopen
// after a crash that outran every manifest write used to recycle the
// just-replayed WAL's number for its fresh log, truncating the only durable
// copy of the replayed records; a second crash before the next flush then
// lost acknowledged writes (nemesis seed 1317456661, cycle 17).
TEST(PowerCutTest, ReplayedWalSurvivesSecondCrashBeforeFlush) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 0xBADC0DE);
    world.env.set_fault_injector(&inj);
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.wal_sync = true;
    sim::FaultRule rule;
    rule.nth_hit = 1;
    rule.max_fires = 1;
    std::map<std::string, uint64_t> acked;

    // Session 1: fill the memtable until the first flush starts and crash
    // inside it, so neither the flush nor any manifest edit lands.
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    inj.Arm("crash.flush.mid", rule);
    for (int i = 0; i < 400; i++) {
      uint64_t seed = 1000 + i;
      Status s = db->Put({}, TestKey(i), Value::Synthetic(seed, 4096));
      if (!s.ok()) break;
      acked[TestKey(i)] = seed;
      if (!db->GetBackgroundError().ok()) break;
    }
    EXPECT_EQ(inj.fires("crash.flush.mid"), 1u) << "first flush never ran";
    (void)db->Close();
    db.reset();
    world.fs->DropAllDirty();
    inj.ClearCrash();

    // Session 2: recovery replays the old WAL into the memtable and opens a
    // fresh log, whose number must not collide with the replayed one. Crash
    // the first flush again so nothing advances the manifest.
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    inj.Arm("crash.flush.mid", rule);
    for (int i = 0; i < 400; i++) {
      Status s = db->Put({}, TestKey(500 + i), Value::Synthetic(i, 4096));
      if (!s.ok() || !db->GetBackgroundError().ok()) break;
    }
    EXPECT_EQ(inj.fires("crash.flush.mid"), 1u) << "second flush never ran";
    (void)db->Close();
    db.reset();
    world.fs->DropAllDirty();
    inj.ClearCrash();

    // Session 3: every write acknowledged in session 1 must still be there.
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    for (const auto& [key, seed] : acked) {
      Value v;
      ASSERT_TRUE(db->Get({}, key, &v).ok()) << key;
      EXPECT_EQ(v.seed(), seed) << key;
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

// ---------------------------------------------------------------------------
// Named crash points: kill, recover, verify
// ---------------------------------------------------------------------------

// Arms `site` to fire on its nth hit while a write workload runs, then
// executes the crash protocol (close, drop page cache, clear latch, reopen)
// and verifies every acknowledged write survived. `max_subcompactions`
// pins the split width: 1 forces every job down the single-range path
// (site crash.compaction.mid), >1 exercises crash.subcompaction.mid.
void RunCrashSiteTest(const std::string& site, uint64_t nth_hit,
                      int max_subcompactions = 0) {
  SCOPED_TRACE(site);
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 0x5eed ^ nth_hit);
    world.env.set_fault_injector(&inj);
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.wal_sync = true;  // every acknowledged write is durable
    if (max_subcompactions > 0) opts.max_subcompactions = max_subcompactions;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());

    sim::FaultRule rule;
    rule.nth_hit = nth_hit;
    rule.max_fires = 1;
    inj.Arm(site, rule);

    std::map<std::string, uint64_t> acked;
    bool crashed = false;
    for (int i = 0; i < 400 && !crashed; i++) {
      std::string key = TestKey(i % 100);
      uint64_t seed = 1000 + i;
      Status s = db->Put({}, key, Value::Synthetic(seed, 4096));
      if (s.ok()) {
        acked[key] = seed;
      } else {
        crashed = true;
      }
      if (!db->GetBackgroundError().ok()) crashed = true;
    }
    EXPECT_EQ(inj.fires(site), 1u) << "crash site never reached";
    inj.Disarm(site);

    (void)db->Close();  // the machine is "dead": tolerate errors
    db.reset();
    world.fs->DropAllDirty();
    inj.ClearCrash();

    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    for (const auto& [key, seed] : acked) {
      Value v;
      ASSERT_TRUE(db->Get({}, key, &v).ok()) << key;
      // A durable-but-unacknowledged overwrite may legally be newer.
      EXPECT_GE(v.seed(), seed) << key;
      EXPECT_EQ(v.logical_size(), 4096u) << key;
    }
    ASSERT_TRUE(db->Close().ok());
    db.reset();

    // Recovery returning the right values is necessary, not sufficient: the
    // on-disk state itself must also pass the full consistency check
    // (MANIFEST vs SSTs, level non-overlap, sequence monotonicity, WAL tail).
    check::DbChecker checker(opts, world.MakeDbEnv());
    check::CheckReport report = checker.Check();
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_GT(report.manifest_edits, 0) << "checker examined nothing";
  });
}

TEST(CrashPointTest, WalPostAppend) { RunCrashSiteTest("crash.wal.post_append", 37); }
TEST(CrashPointTest, WalPostSync) { RunCrashSiteTest("crash.wal.post_sync", 53); }
TEST(CrashPointTest, FlushMid) { RunCrashSiteTest("crash.flush.mid", 20); }
TEST(CrashPointTest, ManifestPreSync) { RunCrashSiteTest("crash.manifest.pre_sync", 2); }
TEST(CrashPointTest, ManifestPostSync) { RunCrashSiteTest("crash.manifest.post_sync", 2); }
TEST(CrashPointTest, CompactionMid) {
  RunCrashSiteTest("crash.compaction.mid", 100, /*max_subcompactions=*/1);
}
TEST(CrashPointTest, SubcompactionMid) {
  RunCrashSiteTest("crash.subcompaction.mid", 100, /*max_subcompactions=*/4);
}

// ---------------------------------------------------------------------------
// KVACCEL: Dev-LSM degradation and crash recovery
// ---------------------------------------------------------------------------

TEST(KvaccelFaultTest, DevLsmHardFailureFallsBackToHostPath) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 17);
    world.env.set_fault_injector(&inj);
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    core::KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.detector_period = FromMillis(1);
    kv_opts.device_unhealthy_cooldown = FromMillis(50);
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(
        core::KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db)
            .ok());

    std::map<std::string, uint64_t> expected;
    auto put = [&](int i) {
      std::string key = TestKey(i % 400);
      uint64_t seed = static_cast<uint64_t>(i) << 16;
      ASSERT_TRUE(db->Put({}, key, Value::Synthetic(seed, 4096)).ok());
      expected[key] = seed;
    };
    // Build stall pressure so redirection engages, then kill the device.
    for (int i = 0; i < 1000; i++) put(i);
    sim::FaultRule dead;
    dead.probability = 1.0;
    inj.Arm("devlsm.put.transient", dead);
    // Every write still succeeds — past the retry budget the circuit breaker
    // opens and the batch reroutes to the (stalling) host path.
    for (int i = 1000; i < 3000; i++) put(i);

    const core::KvaccelStats& ks = db->kv_stats();
    EXPECT_GT(ks.fallback_writes, 0u);
    EXPECT_GT(ks.dev_retries, 0u);
    EXPECT_GE(ks.device_unhealthy_events, 1u);

    inj.Disarm("devlsm.put.transient");
    Value v;
    for (const auto& [key, seed] : expected) {
      ASSERT_TRUE(db->Get({}, key, &v).ok()) << key;
      EXPECT_EQ(v.seed(), seed) << key;
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(KvaccelFaultTest, ExternalDevDrainedOnReopenAfterHostCrash) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    main_opts.wal_sync = true;  // host-path writes are durable when acked
    core::KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.detector_period = FromMillis(1);
    // The Dev-LSM lives on the device and outlives the host process.
    devlsm::DevLsm dev(world.ssd.get(), 0, kv_opts.dev);
    kv_opts.external_dev = &dev;

    std::map<std::string, uint64_t> expected;
    {
      std::unique_ptr<core::KvaccelDB> db;
      ASSERT_TRUE(
          core::KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db)
              .ok());
      for (int i = 0; i < 2500; i++) {
        std::string key = TestKey(i % 400);
        uint64_t seed = static_cast<uint64_t>(i) << 16;
        ASSERT_TRUE(db->Put({}, key, Value::Synthetic(seed, 4096)).ok());
        expected[key] = seed;
      }
      EXPECT_GT(db->kv_stats().redirected_writes, 0u);
      ASSERT_TRUE(db->Close().ok());
    }
    ASSERT_FALSE(dev.Empty());  // redirected pairs still cached device-side
    world.fs->DropAllDirty();   // host reboot: page cache gone, metadata gone

    {
      std::unique_ptr<core::KvaccelDB> db;
      ASSERT_TRUE(
          core::KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db)
              .ok());
      // Recovery-on-open drained the device; the rebuilt metadata table
      // (empty) agrees with a full Dev-LSM scan (also empty).
      EXPECT_TRUE(dev.Empty());
      EXPECT_EQ(dev.NumLiveEntries(), 0u);
      EXPECT_GE(db->kv_stats().rollbacks, 1u);
      Value v;
      for (const auto& [key, seed] : expected) {
        ASSERT_TRUE(db->Get({}, key, &v).ok()) << key;
        EXPECT_EQ(v.seed(), seed) << key;
      }
      ASSERT_TRUE(db->Close().ok());
    }
  });
}

TEST(KvaccelFaultTest, CrashMidRollbackDrainKeepsDevicePairs) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 18);
    world.env.set_fault_injector(&inj);
    lsm::DbOptions main_opts = test::SmallDbOptions();
    core::KvaccelOptions kv_opts = SmallKvOptions();
    devlsm::DevLsm dev(world.ssd.get(), 0, kv_opts.dev);
    kv_opts.external_dev = &dev;
    for (uint64_t i = 0; i < 50; i++) {
      ASSERT_TRUE(
          dev.Put(TestKey(i), Value::Synthetic(i, 1024), /*host_seq=*/i + 1)
              .ok());
    }

    // First open dies mid-drain: the recovery rollback crashes before its
    // final ResetUpTo, so every pair must still be on the device.
    sim::FaultRule rule;
    rule.nth_hit = 20;
    rule.max_fires = 1;
    inj.Arm("crash.rollback.mid", rule);
    {
      std::unique_ptr<core::KvaccelDB> db;
      Status s =
          core::KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db);
      EXPECT_FALSE(s.ok());
    }
    EXPECT_EQ(inj.fires("crash.rollback.mid"), 1u);
    EXPECT_FALSE(dev.Empty());
    inj.Disarm("crash.rollback.mid");
    world.fs->DropAllDirty();
    inj.ClearCrash();

    // Second open completes the drain.
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(
        core::KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db)
            .ok());
    EXPECT_TRUE(dev.Empty());
    Value v;
    for (uint64_t i = 0; i < 50; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v.seed(), i);
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace kvaccel
